// End-to-end integration: full inference runs over generated TPC-H-style
// and synthetic workloads, plus the semijoin pipeline — the same paths the
// benches take, at reduced scale.

#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/lattice.h"
#include "relational/csv.h"
#include "semijoin/interactive.h"
#include "workload/experiment.h"
#include "workload/synthetic.h"
#include "workload/tpch.h"

namespace jinfer {
namespace {

using core::StrategyKind;

TEST(TpchEndToEndTest, AllFiveJoinsAllStrategies) {
  workload::TpchScale tiny{"tiny", 40, 40, 2, 50, 120, 3};
  auto db = workload::GenerateTpch(tiny, 99);
  ASSERT_TRUE(db.ok());
  for (const auto& join : workload::PaperTpchJoins(*db)) {
    auto index = core::SignatureIndex::Build(*join.r, *join.p);
    ASSERT_TRUE(index.ok()) << join.description;
    auto goal = index->omega().PredicateFromNames(join.equalities);
    ASSERT_TRUE(goal.ok());
    for (StrategyKind kind : core::PaperStrategies()) {
      // L2S is cubic in class count; keep it to the smaller indexes.
      if (kind == StrategyKind::kLookahead2 && index->num_classes() > 60) {
        continue;
      }
      auto strategy = core::MakeStrategy(kind, 3);
      core::GoalOracle oracle{*goal};
      auto result = core::RunInference(*index, *strategy, oracle);
      ASSERT_TRUE(result.ok())
          << join.description << " " << core::StrategyKindName(kind);
      EXPECT_TRUE(index->EquivalentOnInstance(result->predicate, *goal))
          << join.description << " " << core::StrategyKindName(kind);
      EXPECT_LT(result->num_interactions, index->num_classes() + 1);
    }
  }
}

TEST(SyntheticEndToEndTest, GoalsOfEverySizeAreRecovered) {
  workload::SyntheticConfig config{3, 3, 30, 60};
  auto inst = workload::GenerateSynthetic(config, 5);
  ASSERT_TRUE(inst.ok());
  auto index = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());
  auto by_size = workload::SampleGoalsBySize(*index, /*max_per_size=*/2, 3);
  ASSERT_TRUE(by_size.ok());
  ASSERT_FALSE(by_size->empty());
  for (const auto& [size, goals] : *by_size) {
    for (const auto& goal : goals) {
      for (StrategyKind kind :
           {StrategyKind::kTopDown, StrategyKind::kLookahead1}) {
        auto stats = workload::MeasureStrategy(*index, goal, kind, 1, 17);
        ASSERT_TRUE(stats.ok())
            << "size " << size << " " << core::StrategyKindName(kind);
      }
    }
  }
}

TEST(SyntheticEndToEndTest, JoinRatioIsComputableOnPaperConfig) {
  auto inst = workload::GenerateSynthetic({3, 3, 50, 100}, 11);
  ASSERT_TRUE(inst.ok());
  auto index = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());
  double ratio = core::JoinRatio(*index);
  // The paper reports 1.341 for this configuration; generators differ, so
  // only the ballpark is checked.
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 3.0);
}

TEST(SemijoinEndToEndTest, TinyTpchSemijoinInference) {
  workload::TpchScale tiny{"tiny", 12, 12, 2, 10, 15, 2};
  auto db = workload::GenerateTpch(tiny, 41);
  ASSERT_TRUE(db.ok());
  // Part ⋉ Partsupp on partkey: "parts with at least one offering".
  auto inst = semi::SemijoinInstance::Build(db->part, db->partsupp);
  ASSERT_TRUE(inst.ok());
  auto goal = inst->omega().PredicateFromNames({{"p_partkey", "ps_partkey"}});
  ASSERT_TRUE(goal.ok());
  semi::GoalSemijoinOracle oracle(*inst, *goal);
  auto result = semi::RunSemijoinInference(*inst, oracle);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(inst->EquivalentOnInstance(result->predicate, *goal));
}

TEST(CsvPipelineEndToEndTest, LoadInferRoundTrip) {
  // A user loads two CSVs and infers a join — the quickstart path.
  auto flights = rel::ReadRelationCsvText(
      "From,To,Airline\nParis,Lille,AF\nLille,NYC,AA\nNYC,Paris,AA\n"
      "Paris,NYC,AF\n",
      "Flight");
  auto hotels = rel::ReadRelationCsvText(
      "City,Discount\nNYC,AA\nParis,None\nLille,AF\n", "Hotel");
  ASSERT_TRUE(flights.ok());
  ASSERT_TRUE(hotels.ok());
  auto index = core::SignatureIndex::Build(*flights, *hotels);
  ASSERT_TRUE(index.ok());
  auto goal = index->omega().PredicateFromNames({{"To", "City"}});
  ASSERT_TRUE(goal.ok());
  auto strategy = core::MakeStrategy(StrategyKind::kLookahead2, 1);
  core::GoalOracle oracle{*goal};
  auto result = core::RunInference(*index, *strategy, oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(index->EquivalentOnInstance(result->predicate, *goal));
}

}  // namespace
}  // namespace jinfer
