// Integration test reproducing the paper's §1 flight&hotel walkthrough end
// to end: the travel-agency user disambiguates Q1 from Q2 by labeling
// tuples of Flight × Hotel.

#include <gtest/gtest.h>

#include "core/consistency.h"
#include "core/inference.h"
#include "core/lattice.h"
#include "testing/paper_fixtures.h"

namespace jinfer {
namespace {

using core::ClassId;
using core::JoinPredicate;
using core::Label;

class FlightHotelTest : public ::testing::Test {
 protected:
  FlightHotelTest() {
    auto index = core::SignatureIndex::Build(testing::FlightTable(),
                                             testing::HotelTable());
    JINFER_CHECK(index.ok(), "fixture");
    index_ = std::make_unique<core::SignatureIndex>(
        std::move(index).ValueOrDie());
    auto q1 = index_->omega().PredicateFromNames({{"To", "City"}});
    auto q2 = index_->omega().PredicateFromNames(
        {{"To", "City"}, {"Airline", "Discount"}});
    JINFER_CHECK(q1.ok() && q2.ok(), "fixture predicates");
    q1_ = *q1;
    q2_ = *q2;
  }

  /// Class of the Cartesian-product tuple numbered as in Figure 2
  /// (1-based, row-major: flight index * 3 + hotel index).
  ClassId Tuple(int figure2_number) const {
    int k = figure2_number - 1;
    return testing::ClassOf(*index_, static_cast<size_t>(k / 3),
                            static_cast<size_t>(k % 3));
  }

  std::unique_ptr<core::SignatureIndex> index_;
  JoinPredicate q1_, q2_;
};

TEST_F(FlightHotelTest, CartesianProductHasTwelveTuples) {
  EXPECT_EQ(index_->num_tuples(), 12u);
}

TEST_F(FlightHotelTest, BothQueriesSelectTuple3) {
  // Tuple (3) = (Paris,Lille,AF | Lille,AF): consistent with Q1 and Q2.
  EXPECT_TRUE(index_->Selects(q1_, Tuple(3)));
  EXPECT_TRUE(index_->Selects(q2_, Tuple(3)));
}

TEST_F(FlightHotelTest, Tuple4IsUninformativeAfterTuple3) {
  // §1: after labeling (3) positive, labeling (4) "+ contributes no new
  // information" — it cannot distinguish Q1 from Q2 and both still apply.
  EXPECT_TRUE(index_->Selects(q1_, Tuple(4)));
  EXPECT_TRUE(index_->Selects(q2_, Tuple(4)));
}

TEST_F(FlightHotelTest, Tuple8DistinguishesQ1FromQ2) {
  // Tuple (8) = (NYC,Paris,AA | Paris,None): selected by Q1 but not Q2.
  EXPECT_TRUE(index_->Selects(q1_, Tuple(8)));
  EXPECT_FALSE(index_->Selects(q2_, Tuple(8)));
}

TEST_F(FlightHotelTest, Q2IsContainedInQ1OnTheInstance) {
  // §1: Q2 ⊆ Q1, so positive examples alone cannot separate them —
  // negatives are necessary.
  for (ClassId c = 0; c < index_->num_classes(); ++c) {
    if (index_->Selects(q2_, c)) {
      EXPECT_TRUE(index_->Selects(q1_, c));
    }
  }
  EXPECT_FALSE(index_->EquivalentOnInstance(q1_, q2_));
}

TEST_F(FlightHotelTest, LabelingTuple3ThenTuple8ResolvesTheQuery) {
  // The walkthrough: + on (3), then the label of (8) decides Q1 vs Q2.
  {
    core::Sample with_8_negative = {{Tuple(3), Label::kPositive},
                                    {Tuple(8), Label::kNegative}};
    auto theta = core::MostSpecificConsistent(*index_, with_8_negative);
    ASSERT_TRUE(theta.ok());
    EXPECT_TRUE(index_->EquivalentOnInstance(*theta, q2_));
  }
  {
    core::Sample with_8_positive = {{Tuple(3), Label::kPositive},
                                    {Tuple(8), Label::kPositive}};
    auto theta = core::MostSpecificConsistent(*index_, with_8_positive);
    ASSERT_TRUE(theta.ok());
    EXPECT_TRUE(index_->EquivalentOnInstance(*theta, q1_));
  }
}

TEST_F(FlightHotelTest, FullInferenceRecoversQ1) {
  for (core::StrategyKind kind : core::PaperStrategies()) {
    auto strategy = core::MakeStrategy(kind, 1);
    core::GoalOracle oracle{q1_};
    auto result = core::RunInference(*index_, *strategy, oracle);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(index_->EquivalentOnInstance(result->predicate, q1_))
        << core::StrategyKindName(kind);
  }
}

TEST_F(FlightHotelTest, FullInferenceRecoversQ2) {
  for (core::StrategyKind kind : core::PaperStrategies()) {
    auto strategy = core::MakeStrategy(kind, 1);
    core::GoalOracle oracle{q2_};
    auto result = core::RunInference(*index_, *strategy, oracle);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(index_->EquivalentOnInstance(result->predicate, q2_))
        << core::StrategyKindName(kind);
  }
}

TEST_F(FlightHotelTest, SmartStrategiesNeedFewInteractions) {
  // The point of the paper: TD and L2S resolve the goal without labeling
  // anywhere near all 12 tuples.
  for (core::StrategyKind kind :
       {core::StrategyKind::kTopDown, core::StrategyKind::kLookahead2}) {
    auto strategy = core::MakeStrategy(kind, 1);
    core::GoalOracle oracle{q2_};
    auto result = core::RunInference(*index_, *strategy, oracle);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->num_interactions, 6u) << core::StrategyKindName(kind);
  }
}

}  // namespace
}  // namespace jinfer
