// Broad-coverage property sweep: random synthetic instances across shapes
// and densities, random goals of every available size, all strategies —
// every session must terminate, stay consistent, and return an
// instance-equivalent predicate. This is the "fuzz" layer above the
// per-lemma property suites.

#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/lattice.h"
#include "workload/experiment.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace {

struct SweepCase {
  workload::SyntheticConfig config;
  uint64_t seed;
};

class RandomSweepTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {
 protected:
  static workload::SyntheticConfig ConfigFor(int shape) {
    switch (shape) {
      case 0:
        return {2, 2, 15, 4};   // Dense matches, tiny domain.
      case 1:
        return {3, 3, 25, 12};  // Medium.
      case 2:
        return {2, 5, 20, 8};   // Wide P.
      case 3:
        return {4, 2, 20, 6};   // Wide R.
      default:
        return {3, 3, 40, 100};  // Sparse.
    }
  }
};

TEST_P(RandomSweepTest, AllStrategiesRecoverRandomGoals) {
  auto [shape, seed] = GetParam();
  auto inst = workload::GenerateSynthetic(ConfigFor(shape), seed);
  ASSERT_TRUE(inst.ok());
  auto index = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());

  auto by_size = workload::SampleGoalsBySize(*index, /*max_per_size=*/1,
                                             seed ^ 0xf00d);
  ASSERT_TRUE(by_size.ok());

  for (const auto& [size, goals] : *by_size) {
    for (const auto& goal : goals) {
      for (core::StrategyKind kind : core::PaperStrategies()) {
        // L2S is cubic in class count; bound it on the dense shapes.
        if (kind == core::StrategyKind::kLookahead2 &&
            index->num_classes() > 80) {
          continue;
        }
        auto strategy = core::MakeStrategy(kind, seed);
        core::GoalOracle oracle{goal};
        auto result = core::RunInference(*index, *strategy, oracle);
        ASSERT_TRUE(result.ok())
            << core::StrategyKindName(kind) << " size " << size << ": "
            << result.status().ToString();
        EXPECT_TRUE(index->EquivalentOnInstance(result->predicate, goal))
            << core::StrategyKindName(kind) << " on "
            << index->omega().Format(goal);
        EXPECT_LE(result->num_interactions, index->num_classes());
      }
    }
  }
}

TEST_P(RandomSweepTest, OmegaGoalAlwaysRecoverable) {
  // The all-negative user (goal Ω) is a paper-called-out corner: the
  // session must halt well before labeling every tuple under TD.
  auto [shape, seed] = GetParam();
  auto inst = workload::GenerateSynthetic(ConfigFor(shape), seed);
  ASSERT_TRUE(inst.ok());
  auto index = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());
  auto strategy = core::MakeStrategy(core::StrategyKind::kTopDown, seed);
  core::GoalOracle oracle{index->omega().Full()};
  auto result = core::RunInference(*index, *strategy, oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(index->EquivalentOnInstance(result->predicate,
                                          index->omega().Full()));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSeeds, RandomSweepTest,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{3})));

}  // namespace
}  // namespace jinfer
