// Dual-write discipline under chaos (DESIGN.md §13.1): every site that
// bumps a SessionManager::Stats field also Incs the matching global
// registry counter, so across any RunAll — including one riding a dense
// transient-fault schedule — the registry deltas must equal the manager's
// own stats deltas exactly. A drifting pair means an instrumentation site
// updated one sink and not the other.
//
// Chaos-suite conventions apply: arming is additive, never Reset() — the
// assertions are all deltas around the measured region, so ambient
// JINFER_FAILPOINTS schedules and leftover arms from sibling tests do not
// perturb them (gtest runs tests serially in one process).

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "core/strategy.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "runtime/session.h"
#include "runtime/session_manager.h"
#include "util/failpoint.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace runtime {
namespace {

/// The counter pairs under test: registry name vs. Stats field reader.
struct ManagerCounters {
  uint64_t completed, failed, shed, deadline_exceeded, factory_retries,
      slice_faults, hosted_opened, hosted_closed, hosted_aborted,
      hosted_reaped, hosted_shed;
};

ManagerCounters ReadRegistry() {
  obs::Registry& r = obs::Registry::Global();
  return ManagerCounters{
      r.counter(obs::kManagerCompletedTotal).Value(),
      r.counter(obs::kManagerFailedTotal).Value(),
      r.counter(obs::kManagerShedTotal).Value(),
      r.counter(obs::kManagerDeadlineExceededTotal).Value(),
      r.counter(obs::kManagerFactoryRetriesTotal).Value(),
      r.counter(obs::kManagerSliceFaultsTotal).Value(),
      r.counter(obs::kManagerHostedOpenedTotal).Value(),
      r.counter(obs::kManagerHostedClosedTotal).Value(),
      r.counter(obs::kManagerHostedAbortedTotal).Value(),
      r.counter(obs::kManagerHostedReapedTotal).Value(),
      r.counter(obs::kManagerHostedShedTotal).Value(),
  };
}

ManagerCounters ReadStats(const SessionManager& manager) {
  const SessionManager::Stats s = manager.stats();
  return ManagerCounters{s.completed,        s.failed,
                         s.shed,             s.deadline_exceeded,
                         s.factory_retries,  s.slice_faults,
                         s.hosted_opened,    s.hosted_closed,
                         s.hosted_aborted,   s.hosted_reaped,
                         s.hosted_shed};
}

void ExpectDeltasMatch(const ManagerCounters& registry_before,
                       const ManagerCounters& registry_after,
                       const ManagerCounters& stats_before,
                       const ManagerCounters& stats_after) {
  EXPECT_EQ(registry_after.completed - registry_before.completed,
            stats_after.completed - stats_before.completed);
  EXPECT_EQ(registry_after.failed - registry_before.failed,
            stats_after.failed - stats_before.failed);
  EXPECT_EQ(registry_after.shed - registry_before.shed,
            stats_after.shed - stats_before.shed);
  EXPECT_EQ(
      registry_after.deadline_exceeded - registry_before.deadline_exceeded,
      stats_after.deadline_exceeded - stats_before.deadline_exceeded);
  EXPECT_EQ(registry_after.factory_retries - registry_before.factory_retries,
            stats_after.factory_retries - stats_before.factory_retries);
  EXPECT_EQ(registry_after.slice_faults - registry_before.slice_faults,
            stats_after.slice_faults - stats_before.slice_faults);
  EXPECT_EQ(registry_after.hosted_opened - registry_before.hosted_opened,
            stats_after.hosted_opened - stats_before.hosted_opened);
  EXPECT_EQ(registry_after.hosted_closed - registry_before.hosted_closed,
            stats_after.hosted_closed - stats_before.hosted_closed);
  EXPECT_EQ(registry_after.hosted_aborted - registry_before.hosted_aborted,
            stats_after.hosted_aborted - stats_before.hosted_aborted);
  EXPECT_EQ(registry_after.hosted_reaped - registry_before.hosted_reaped,
            stats_after.hosted_reaped - stats_before.hosted_reaped);
  EXPECT_EQ(registry_after.hosted_shed - registry_before.hosted_shed,
            stats_after.hosted_shed - stats_before.hosted_shed);
}

TEST(MetricsChaosTest, RegistryDeltasMatchManagerStatsUnderFaults) {
  auto inst = workload::GenerateSynthetic({3, 3, 25, 5}, 404);
  ASSERT_TRUE(inst.ok());

  ASSERT_TRUE(util::Failpoints::ArmFromSpec("cache.build=prob:0.3:41;"
                                            "manager.step=prob:0.2:43")
                  .ok());

  SessionManager::Options options;
  options.threads = 4;
  options.steps_per_slice = 1;  // Finest slicing: the most dual-writes.
  options.cache_options.failure_backoff_base = std::chrono::milliseconds(1);
  options.cache_options.failure_backoff_max = std::chrono::milliseconds(10);
  options.factory_retry.max_attempts = 0;  // Transient by contract.
  options.factory_retry.base_backoff = std::chrono::microseconds(200);
  options.factory_retry.max_backoff = std::chrono::microseconds(2000);
  SessionManager manager(options);

  const ManagerCounters registry_before = ReadRegistry();
  const ManagerCounters stats_before = ReadStats(manager);

  constexpr size_t kJobs = 24;
  std::vector<SessionJob> jobs;
  for (size_t j = 0; j < kJobs; ++j) {
    SessionJob job;
    job.make = [&manager, &inst]() -> util::Result<Session> {
      JINFER_ASSIGN_OR_RETURN(auto shared,
                              manager.cache().GetOrBuild(inst->r, inst->p));
      return Session(std::move(shared),
                     core::MakeStrategy(core::StrategyKind::kTopDown));
    };
    job.oracle = std::make_unique<core::GoalOracle>(
        core::JoinPredicate::Singleton(j % 3));
    jobs.push_back(std::move(job));
  }
  auto results = manager.RunAll(std::move(jobs));
  ASSERT_EQ(results.size(), kJobs);
  for (const auto& result : results) {
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }

  const ManagerCounters registry_after = ReadRegistry();
  const ManagerCounters stats_after = ReadStats(manager);
  ExpectDeltasMatch(registry_before, registry_after, stats_before,
                    stats_after);
  // Every job finished, and the schedule actually bit (otherwise this test
  // silently degrades to the fault-free case).
  EXPECT_EQ(stats_after.completed - stats_before.completed, kJobs);
  EXPECT_GT((registry_after.factory_retries + registry_after.slice_faults) -
                (registry_before.factory_retries +
                 registry_before.slice_faults),
            0u);
}

TEST(MetricsChaosTest, RegistryDeltasMatchSheddingAndHostedLifecycle) {
  auto inst = workload::GenerateSynthetic({2, 2, 15, 4}, 777);
  ASSERT_TRUE(inst.ok());
  auto index = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());

  SessionManager::Options options;
  options.threads = 2;
  options.max_queue = 2;     // Admission sheds 3 of the 5 batch jobs.
  options.max_sessions = 2;  // The third hosted open is refused.
  SessionManager manager(options);

  const ManagerCounters registry_before = ReadRegistry();
  const ManagerCounters stats_before = ReadStats(manager);

  // Batch path: 5 jobs, 2 admitted, 3 shed (shed jobs count as failed too).
  std::vector<SessionJob> jobs;
  for (size_t j = 0; j < 5; ++j) {
    SessionJob job;
    job.make = [&index]() -> util::Result<Session> {
      return Session(*index,
                     core::MakeStrategy(core::StrategyKind::kTopDown));
    };
    job.oracle = std::make_unique<core::GoalOracle>(
        core::JoinPredicate::Singleton(0));
    jobs.push_back(std::move(job));
  }
  auto results = manager.RunAll(std::move(jobs));
  ASSERT_EQ(results.size(), 5u);

  // Hosted path: open to the bound, shed one, then close / abort / reap.
  auto make = [&index]() -> util::Result<Session> {
    return Session(*index,
                   core::MakeStrategy(core::StrategyKind::kTopDown));
  };
  auto a = manager.OpenHosted(make);
  auto b = manager.OpenHosted(make);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(manager.OpenHosted(make).status().IsResourceExhausted());
  ASSERT_TRUE(manager.CloseHosted(*a).ok());
  ASSERT_TRUE(manager.AbortHosted(*b).ok());
  auto c = manager.OpenHosted(make);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(manager.ReapIdleHosted(std::chrono::nanoseconds(0)), 1u);

  const ManagerCounters registry_after = ReadRegistry();
  const ManagerCounters stats_after = ReadStats(manager);
  ExpectDeltasMatch(registry_before, registry_after, stats_before,
                    stats_after);
  EXPECT_EQ(stats_after.shed - stats_before.shed, 3u);
  EXPECT_EQ(stats_after.hosted_opened - stats_before.hosted_opened, 3u);
  EXPECT_EQ(stats_after.hosted_shed - stats_before.hosted_shed, 1u);
  EXPECT_EQ(stats_after.hosted_closed - stats_before.hosted_closed, 1u);
  EXPECT_EQ(stats_after.hosted_aborted - stats_before.hosted_aborted, 1u);
  EXPECT_EQ(stats_after.hosted_reaped - stats_before.hosted_reaped, 1u);
}

}  // namespace
}  // namespace runtime
}  // namespace jinfer
