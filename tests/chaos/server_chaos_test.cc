// Protocol chaos suite (DESIGN.md §11.3): the serving front end under an
// adversarial schedule — socket-edge failpoints (accept, read, write,
// frame-decode) plus clients that randomly kill their own connections
// mid-session. The property, at 1 worker and at 4: every transcript that
// COMPLETES is bit-identical to the fault-free in-process baseline. Faults
// may kill a connection (its session aborts, the client retries with a
// fresh session), but a killed neighbor must never perturb another
// tenant's question sequence, labels, or final predicate — and after the
// storm, a graceful drain must end with zero hosted sessions.
//
// Like chaos_test.cc, this file never Reset()s the failpoint registry:
// arming is additive over any ambient JINFER_FAILPOINTS schedule, and
// fault-free baselines run under Failpoints::PauseScope.

#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "core/signature_index.h"
#include "core/strategy.h"
#include "relational/csv.h"
#include "runtime/session.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "testing/paper_fixtures.h"
#include "util/failpoint.h"
#include "workload/experiment.h"

namespace jinfer {
namespace server {
namespace {

using std::chrono::milliseconds;

struct Spec {
  core::StrategyKind kind;
  uint64_t seed;
  core::JoinPredicate goal;
};

/// One completed transcript: the (class, label) sequence plus the outcome.
struct Transcript {
  std::vector<std::pair<uint32_t, bool>> steps;
  core::JoinPredicate predicate;
  uint64_t num_interactions = 0;

  bool operator==(const Transcript& other) const {
    return steps == other.steps && predicate == other.predicate &&
           num_interactions == other.num_interactions;
  }
};

/// The fault-free reference: an in-process Session run under PauseScope.
Transcript Baseline(const core::SignatureIndex& index, const Spec& spec) {
  util::Failpoints::PauseScope paused;
  runtime::Session session(index, core::MakeStrategy(spec.kind, spec.seed));
  core::GoalOracle oracle(spec.goal);
  Transcript out;
  while (auto q = session.NextQuestion()) {
    const core::Label label = oracle.LabelClass(index, *q);
    out.steps.emplace_back(static_cast<uint32_t>(*q),
                           label == core::Label::kPositive);
    JINFER_CHECK(session.Answer(label).ok(), "baseline answer failed");
  }
  out.predicate = session.Result().predicate;
  out.num_interactions = session.num_interactions();
  return out;
}

/// One attempt at driving a session over the wire. Any transport or
/// transient failure aborts the attempt (the caller retries from scratch
/// with a fresh session — determinism makes the retry equivalent).
/// `killer`, when nonnull, hangs up on purpose with probability ~1/5 per
/// step — the random connection kills of the chaos schedule.
util::Result<Transcript> DriveOnce(uint16_t port, const OpenSessionBody& body,
                                   const core::SignatureIndex& index,
                                   const core::JoinPredicate& goal,
                                   std::mt19937* killer) {
  JINFER_ASSIGN_OR_RETURN(Client client, Client::Connect("127.0.0.1", port));
  JINFER_RETURN_NOT_OK(client.OpenSession(body).status());
  core::GoalOracle oracle(goal);
  Transcript out;
  while (true) {
    if (killer != nullptr && (*killer)() % 5 == 0) {
      return util::Status::Unavailable("self-inflicted connection kill");
    }
    JINFER_ASSIGN_OR_RETURN(QuestionBody question, client.NextQuestion());
    if (question.finished) break;
    const core::Label label = oracle.LabelClass(index, question.class_id);
    const bool positive = label == core::Label::kPositive;
    out.steps.emplace_back(question.class_id, positive);
    JINFER_RETURN_NOT_OK(client.Answer(positive).status());
  }
  JINFER_ASSIGN_OR_RETURN(CloseOkBody closed, client.CloseSession());
  out.predicate = PredicateFromWords(closed.predicate_words);
  out.num_interactions = closed.num_interactions;
  return out;
}

/// Retries DriveOnce until a transcript completes. Under the armed
/// schedule every fault is transient by contract, so persistent failure is
/// a bug, not weather — hence the generous but finite attempt bound.
Transcript DriveToCompletion(uint16_t port, const OpenSessionBody& body,
                             const core::SignatureIndex& index,
                             const core::JoinPredicate& goal,
                             std::mt19937* killer) {
  for (int attempt = 0; attempt < 500; ++attempt) {
    auto result = DriveOnce(port, body, index, goal, killer);
    if (result.ok()) return std::move(result).ValueOrDie();
    std::this_thread::sleep_for(milliseconds(1 + attempt % 5));
  }
  ADD_FAILURE() << "no attempt completed under the fault schedule";
  return {};
}

OpenSessionBody BodyFor(const Spec& spec) {
  OpenSessionBody body;
  body.strategy = core::StrategyKindName(spec.kind);
  body.seed = spec.seed;
  body.compress = 1;
  body.r_name = "R";
  body.p_name = "P";
  body.r_csv = rel::WriteRelationCsv(testing::Example21R());
  body.p_csv = rel::WriteRelationCsv(testing::Example21P());
  return body;
}

std::vector<Spec> MakeSpecs(const core::SignatureIndex& index) {
  auto buckets =
      workload::SampleGoalsBySize(index, /*max_per_size=*/1, /*seed=*/5);
  JINFER_CHECK(buckets.ok() && !buckets->empty(), "no goals sampled");
  std::vector<Spec> specs;
  for (size_t i = 0; i < buckets->size() && specs.size() < 4; ++i) {
    for (const core::JoinPredicate& goal : (*buckets)[i].goals) {
      specs.push_back({core::StrategyKind::kBottomUp, 0, goal});
      specs.push_back({core::StrategyKind::kRandom, 40 + i, goal});
      break;
    }
  }
  return specs;
}

class ServerChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Socket-edge faults, additive over any env schedule. Periods are
    // relatively prime so the four streams drift across each other, and
    // coarse enough that short sessions complete within the retry bound.
    ASSERT_TRUE(util::Failpoints::ArmFromSpec(
                    "server.accept=every:5;server.conn.read=every:23;"
                    "server.conn.write=every:29;server.frame.decode=every:31")
                    .ok());
  }
  void TearDown() override {
    util::Failpoints::Disarm("server.accept");
    util::Failpoints::Disarm("server.conn.read");
    util::Failpoints::Disarm("server.conn.write");
    util::Failpoints::Disarm("server.frame.decode");
  }
};

TEST_F(ServerChaosTest, FaultScheduleNeverCorruptsCompletedTranscripts) {
  auto index = core::SignatureIndex::Build(testing::Example21R(),
                                           testing::Example21P());
  ASSERT_TRUE(index.ok());
  const std::vector<Spec> specs = MakeSpecs(*index);
  std::vector<Transcript> baselines;
  baselines.reserve(specs.size());
  for (const Spec& spec : specs) baselines.push_back(Baseline(*index, spec));

  for (int workers : {1, 4}) {
    SCOPED_TRACE(::testing::Message() << "workers=" << workers);
    ServerOptions options;
    options.workers = workers;
    Server server(options);
    ASSERT_TRUE(server.Start().ok());

    // Fault-free remote sanity first: with faults paused, the wire adds
    // nothing to the transcript.
    {
      util::Failpoints::PauseScope paused;
      for (size_t i = 0; i < specs.size(); ++i) {
        Transcript remote = DriveToCompletion(
            server.port(), BodyFor(specs[i]), *index, specs[i].goal,
            /*killer=*/nullptr);
        EXPECT_TRUE(remote == baselines[i]) << "spec " << i;
      }
    }

    // The storm: one tenant per spec, concurrently, under live faults and
    // self-inflicted hangups. Every completed transcript must equal its
    // baseline — neighbors dying is invisible.
    std::vector<Transcript> outcomes(specs.size());
    std::vector<std::thread> tenants;
    tenants.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      tenants.emplace_back([&, i] {
        std::mt19937 killer(static_cast<uint32_t>(1000 + i));
        outcomes[i] =
            DriveToCompletion(server.port(), BodyFor(specs[i]), *index,
                              specs[i].goal, &killer);
      });
    }
    for (auto& t : tenants) t.join();
    for (size_t i = 0; i < specs.size(); ++i) {
      EXPECT_TRUE(outcomes[i] == baselines[i])
          << "tenant " << i << " transcript corrupted by the schedule";
    }

    // After the storm: drain gracefully. No connection is live, so the
    // drain completes immediately, with nothing leaked.
    {
      util::Failpoints::PauseScope paused;
      server.RequestDrain();
      EXPECT_TRUE(server.Wait().ok());
      EXPECT_EQ(server.manager().hosted_open(), 0u);
      StatsOkBody stats = server.Stats();
      EXPECT_EQ(stats.sessions_open, 0u);
      EXPECT_EQ(stats.connections_open, 0u);
    }
  }
}

}  // namespace
}  // namespace server
}  // namespace jinfer
