// Chaos suite (DESIGN.md §10): property tests that must hold under ANY
// all-transient fault schedule — the ones armed below, and any ambient
// JINFER_FAILPOINTS schedule the CI chaos job layers on top. Unlike the
// unit suites, these tests never Reset() the registry: arming is additive
// (same-name arms replace, env-armed extras stay live), and fault-free
// baselines/validation run under Failpoints::PauseScope instead of
// disarming. The properties:
//
//   1. Transcripts are bit-identical to the fault-free baseline — faults
//      may delay a session, never change what it asks or concludes.
//   2. Single-flight never wedges: a failed resolution is delivered and
//      evicted; no caller blocks forever on a poisoned entry.
//   3. The store never exposes a partial file: every published .jidx
//      validates, and no temp files survive a faulted Put.
//   4. Deadlines are enforced within one slice of their expiry.

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "core/oracle.h"
#include "core/signature_index.h"
#include "runtime/index_cache.h"
#include "runtime/session.h"
#include "runtime/session_manager.h"
#include "store/index_store.h"
#include "util/failpoint.h"
#include "util/status.h"
#include "workload/experiment.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace runtime {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& tag) {
  return (fs::temp_directory_path() /
          (tag + "_" + std::to_string(::getpid())))
      .string();
}

struct Spec {
  core::StrategyKind kind;
  uint64_t seed;
  core::JoinPredicate goal;
};

std::vector<Spec> MakeSpecs(const core::SignatureIndex& index) {
  auto goals = workload::SampleGoalsBySize(index, /*max_per_size=*/2,
                                           /*seed=*/424242);
  JINFER_CHECK(goals.ok(), "goals");
  std::vector<Spec> specs;
  uint64_t seed = 0;
  for (const auto& [size, bucket_goals] : *goals) {
    for (const core::JoinPredicate& goal : bucket_goals) {
      for (core::StrategyKind kind :
           {core::StrategyKind::kBottomUp, core::StrategyKind::kTopDown,
            core::StrategyKind::kLookahead1}) {
        specs.push_back(Spec{kind, ++seed, goal});
      }
    }
  }
  return specs;
}

void ExpectSameResult(const core::InferenceResult& a,
                      const core::InferenceResult& b, size_t job) {
  EXPECT_EQ(a.predicate, b.predicate) << "job " << job;
  EXPECT_EQ(a.num_interactions, b.num_interactions) << "job " << job;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << "job " << job;
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].cls, b.trace[i].cls)
        << "job " << job << " interaction " << i;
    EXPECT_EQ(a.trace[i].label, b.trace[i].label)
        << "job " << job << " interaction " << i;
  }
}

// Property 1 + 2: a store-backed SessionManager under a dense all-transient
// schedule — injected build failures, mmap failures, publish failures, and
// scheduler slice faults — still completes every job with a transcript
// bit-identical to the fault-free baseline, at 1 and at 4 threads.
TEST(ChaosTest, TransientFaultsPreserveTranscripts) {
  auto inst = workload::GenerateSynthetic({3, 3, 30, 6}, 99);
  ASSERT_TRUE(inst.ok());
  auto index = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());
  const std::vector<Spec> specs = MakeSpecs(*index);
  ASSERT_GE(specs.size(), 6u);

  // Fault-free baseline, no cache or store involved.
  std::vector<core::InferenceResult> baseline;
  for (const Spec& spec : specs) {
    Session session(*index, core::MakeStrategy(spec.kind, spec.seed));
    core::GoalOracle oracle(spec.goal);
    while (std::optional<core::ClassId> question = session.NextQuestion()) {
      ASSERT_TRUE(session.Answer(oracle.LabelClass(*index, *question)).ok());
    }
    baseline.push_back(session.Result());
  }

  const std::string dir = TempDir("jinfer_chaos_transcripts");
  ASSERT_TRUE(
      util::Failpoints::ArmFromSpec("cache.build=prob:0.3:17;"
                                    "store.load.mmap=prob:0.3:23;"
                                    "store.put.fsync=every:2;"
                                    "manager.step=prob:0.1:29")
          .ok());

  for (int threads : {1, 4}) {
    auto opened = store::IndexStore::Open(dir + std::to_string(threads));
    ASSERT_TRUE(opened.ok());

    SessionManager::Options options;
    options.threads = threads;
    options.steps_per_slice = 1;  // Finest interleaving, most slice faults.
    options.cache_options.store =
        std::make_shared<store::IndexStore>(std::move(opened).ValueOrDie());
    // Short backoff windows and unlimited factory retries: every fault is
    // transient by contract, so jobs must always get through eventually.
    options.cache_options.failure_backoff_base = std::chrono::milliseconds(1);
    options.cache_options.failure_backoff_max = std::chrono::milliseconds(10);
    options.factory_retry.max_attempts = 0;
    options.factory_retry.base_backoff = std::chrono::microseconds(200);
    options.factory_retry.max_backoff = std::chrono::microseconds(2000);
    SessionManager manager(options);

    std::vector<SessionJob> jobs;
    for (const Spec& spec : specs) {
      SessionJob job;
      job.make = [&manager, &inst, spec]() -> util::Result<Session> {
        JINFER_ASSIGN_OR_RETURN(auto shared,
                                manager.cache().GetOrBuild(inst->r, inst->p));
        return Session(std::move(shared),
                       core::MakeStrategy(spec.kind, spec.seed));
      };
      job.oracle = std::make_unique<core::GoalOracle>(spec.goal);
      jobs.push_back(std::move(job));
    }

    auto results = manager.RunAll(std::move(jobs));
    ASSERT_EQ(results.size(), specs.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok())
          << "job " << i << " at " << threads
          << " threads: " << results[i].status().ToString();
      ExpectSameResult(baseline[i], *results[i], i);
    }
  }

  std::error_code ec;
  for (int threads : {1, 4}) fs::remove_all(dir + std::to_string(threads), ec);
}

// Property 2, pointed at the cache directly: racing lookups on one
// fingerprint under a dense injected build-failure schedule either get the
// shared index or a clean transient error — never a hang — and the
// fingerprint recovers fully once faults stop.
TEST(ChaosTest, SingleFlightNeverWedgesUnderBuildFaults) {
  ASSERT_TRUE(util::Failpoints::Arm("cache.build", "prob:0.5:7").ok());

  IndexCacheOptions options;
  options.failure_backoff_base = std::chrono::milliseconds(1);
  options.failure_backoff_max = std::chrono::milliseconds(10);
  IndexCache cache(options);
  auto inst = workload::GenerateSynthetic({2, 2, 20, 5}, 5);
  ASSERT_TRUE(inst.ok());

  std::atomic<uint64_t> oks{0}, transients{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 30; ++i) {
        auto got = cache.GetOrBuild(inst->r, inst->p);
        if (got.ok()) {
          ++oks;
        } else if (util::IsTransient(got.status())) {
          ++transients;
        } else {
          ADD_FAILURE() << "non-transient escape: "
                        << got.status().ToString();
          return;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(oks + transients, 8u * 30u);  // Every lookup returned.

  // Faults off: the fingerprint must serve (past any residual backoff).
  util::Failpoints::PauseScope pause;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto final_lookup = cache.GetOrBuild(inst->r, inst->p);
  EXPECT_TRUE(final_lookup.ok());
}

// Property 3: a Put bombarded with publish-path faults (fsync, rename,
// dirsync) either reports success — in which case the file is present and
// valid — or fails cleanly; either way the store directory contains no
// temp files and no invalid .jidx afterwards.
TEST(ChaosTest, NoPartialFilesUnderPutFaults) {
  const std::string dir = TempDir("jinfer_chaos_put");
  auto opened = store::IndexStore::Open(dir);
  ASSERT_TRUE(opened.ok());
  store::IndexStore store = std::move(opened).ValueOrDie();

  ASSERT_TRUE(
      util::Failpoints::ArmFromSpec("store.put.fsync=every:2;"
                                    "store.put.rename=every:3;"
                                    "store.put.dirsync=every:2")
          .ok());

  std::vector<store::InstanceFingerprint> succeeded;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    auto inst = workload::GenerateSynthetic({2, 2, 15, 4}, seed);
    ASSERT_TRUE(inst.ok());
    auto index = core::SignatureIndex::Build(inst->r, inst->p);
    ASSERT_TRUE(index.ok());
    const auto fingerprint =
        store::FingerprintInstance(inst->r, inst->p, /*compress=*/true);
    util::Status put = store.Put(*index, fingerprint);
    if (put.ok()) {
      succeeded.push_back(fingerprint);
    } else {
      EXPECT_TRUE(util::IsTransient(put)) << put.ToString();
    }
  }

  // Validation runs fault-free: the invariants are about what the faulted
  // Puts left on disk, not about whether validation itself can fault.
  util::Failpoints::PauseScope pause;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_directory()) continue;  // quarantine/ (should stay empty).
    const std::string name = entry.path().filename().string();
    EXPECT_NE(name.rfind(".tmp-", 0), 0u)
        << "leaked temp file: " << name;
  }
  for (const auto& fingerprint : succeeded) {
    auto loaded = store.Load(fingerprint);
    EXPECT_TRUE(loaded.ok())
        << "Put reported durable success but Load failed: "
        << loaded.status().ToString();
  }
  EXPECT_EQ(store.stats().quarantined, 0u);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

/// Oracle with a fixed per-label delay — the clock the deadline test runs
/// against.
class SlowOracle : public core::Oracle {
 public:
  SlowOracle(core::JoinPredicate goal, std::chrono::milliseconds delay)
      : inner_(goal), delay_(delay) {}

  core::Label LabelClass(const core::SignatureIndex& index,
                         core::ClassId cls) override {
    std::this_thread::sleep_for(delay_);
    return inner_.LabelClass(index, cls);
  }

 private:
  core::GoalOracle inner_;
  std::chrono::milliseconds delay_;
};

// Property 4: with one-step slices, a job whose deadline expires is
// cancelled at the next slice boundary — total run time is bounded by
// deadline + one slice (+ scheduling slack), nowhere near the time a full
// run would take.
TEST(ChaosTest, DeadlinesEnforcedWithinOneSlice) {
  auto inst = workload::GenerateSynthetic({3, 3, 30, 6}, 321);
  ASSERT_TRUE(inst.ok());
  auto index = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());

  // A spec that needs >= 8 interactions: a full run costs >= 8 slices.
  const std::vector<Spec> specs = MakeSpecs(*index);
  const Spec* long_spec = nullptr;
  size_t long_interactions = 0;
  for (const Spec& spec : specs) {
    Session session(*index, core::MakeStrategy(spec.kind, spec.seed));
    core::GoalOracle oracle(spec.goal);
    size_t interactions = 0;
    while (std::optional<core::ClassId> question = session.NextQuestion()) {
      ASSERT_TRUE(session.Answer(oracle.LabelClass(*index, *question)).ok());
      ++interactions;
    }
    if (interactions > long_interactions) {
      long_interactions = interactions;
      long_spec = &spec;
    }
  }
  ASSERT_NE(long_spec, nullptr);
  if (long_interactions < 8) {
    GTEST_SKIP() << "no spec long enough to discriminate cancellation";
  }

  constexpr auto kSliceDelay = std::chrono::milliseconds(60);
  constexpr auto kDeadline = std::chrono::milliseconds(150);

  std::vector<SessionJob> jobs;
  SessionJob job;
  job.make = [&index, long_spec] {
    return util::Result<Session>(Session(
        *index, core::MakeStrategy(long_spec->kind, long_spec->seed)));
  };
  job.oracle = std::make_unique<SlowOracle>(long_spec->goal, kSliceDelay);
  jobs.push_back(std::move(job));

  SessionManager::Options options;
  options.threads = 1;
  options.steps_per_slice = 1;
  options.job_deadline = kDeadline;
  SessionManager manager(options);
  const auto start = std::chrono::steady_clock::now();
  auto results = manager.RunAll(std::move(jobs));
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_EQ(results.size(), 1u);
  ASSERT_FALSE(results[0].ok());
  EXPECT_TRUE(results[0].status().IsDeadlineExceeded());
  EXPECT_EQ(manager.stats().deadline_exceeded, 1u);
  // A full run is >= 8 * 60ms = 480ms of oracle time alone; cancellation
  // within one slice of the 150ms deadline stays clearly under that.
  EXPECT_LT(elapsed, std::chrono::milliseconds(400));
}

// Property 1 for the packed word-kernel sweeps at scale: a multi-word
// (|Omega| = 72, 900-class) L1S session and the 18-class OPT minimax
// session, run through the manager under slice faults at 1 and 4 threads,
// reproduce their fault-free transcripts bit-for-bit. Guards the batched
// u+/u- sweep and the delta-frame apply/undo path: a fault-induced retry
// or reordering that perturbed candidate evaluation would change what the
// session asks.
TEST(ChaosTest, LargeOmegaTranscriptsSurviveFaults) {
  struct Case {
    workload::SyntheticConfig config;
    uint64_t seed;
    core::StrategyKind kind;
  };
  const std::vector<Case> cases = {
      {{9, 8, 30, 3}, 101, core::StrategyKind::kLookahead1},
      {{3, 2, 8, 4}, 20140324, core::StrategyKind::kOptimal},
  };

  std::vector<std::shared_ptr<core::SignatureIndex>> indexes;
  std::vector<core::JoinPredicate> goals;
  std::vector<core::InferenceResult> baseline;
  for (const Case& c : cases) {
    auto inst = workload::GenerateSynthetic(c.config, c.seed);
    ASSERT_TRUE(inst.ok());
    auto index = core::SignatureIndex::Build(inst->r, inst->p);
    ASSERT_TRUE(index.ok());
    indexes.push_back(
        std::make_shared<core::SignatureIndex>(std::move(*index)));
    goals.push_back(indexes.back()->omega().PredicateFromPairs({{0, 0},
                                                                {1, 1}}));
    // Baseline on the direct session path, which crosses no failpoints.
    Session session(*indexes.back(), core::MakeStrategy(c.kind));
    core::GoalOracle oracle(goals.back());
    while (std::optional<core::ClassId> question = session.NextQuestion()) {
      ASSERT_TRUE(
          session.Answer(oracle.LabelClass(*indexes.back(), *question)).ok());
    }
    baseline.push_back(session.Result());
  }
  ASSERT_GE(baseline[0].num_interactions, 8u);  // A real multi-word session.

  ASSERT_TRUE(util::Failpoints::Arm("manager.step", "prob:0.2:37").ok());
  for (int threads : {1, 4}) {
    std::vector<SessionJob> jobs;
    for (size_t i = 0; i < cases.size(); ++i) {
      SessionJob job;
      auto index = indexes[i];
      auto kind = cases[i].kind;
      job.make = [index, kind] {
        return util::Result<Session>(Session(*index, core::MakeStrategy(kind)));
      };
      job.oracle = std::make_unique<core::GoalOracle>(goals[i]);
      jobs.push_back(std::move(job));
    }
    SessionManager::Options options;
    options.threads = threads;
    options.steps_per_slice = 1;
    SessionManager manager(options);
    auto results = manager.RunAll(std::move(jobs));
    ASSERT_EQ(results.size(), cases.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok())
          << "case " << i << " at " << threads
          << " threads: " << results[i].status().ToString();
      ExpectSameResult(baseline[i], *results[i], i);
    }
  }
}

// Load-shedding composes with faults: an oversubscribed batch under an
// ambient fault schedule sheds its tail deterministically and still
// completes or cleanly fails every admitted job — the pool never deadlocks.
TEST(ChaosTest, BoundedQueueNeverDeadlocksUnderFaults) {
  ASSERT_TRUE(util::Failpoints::Arm("manager.step", "prob:0.2:31").ok());
  auto inst = workload::GenerateSynthetic({2, 2, 20, 5}, 77);
  ASSERT_TRUE(inst.ok());
  auto index = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());

  std::vector<SessionJob> jobs;
  for (int i = 0; i < 16; ++i) {
    SessionJob job;
    job.make = [&index] {
      return util::Result<Session>(Session(
          *index, core::MakeStrategy(core::StrategyKind::kBottomUp,
                                     static_cast<uint64_t>(1))));
    };
    job.oracle = std::make_unique<core::GoalOracle>(
        core::JoinPredicate::Singleton(0));
    jobs.push_back(std::move(job));
  }

  SessionManager::Options options;
  options.threads = 4;
  options.steps_per_slice = 1;
  options.max_queue = 6;
  SessionManager manager(options);
  auto results = manager.RunAll(std::move(jobs));
  ASSERT_EQ(results.size(), 16u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(results[i].ok()) << "admitted job " << i;
  }
  for (size_t i = 6; i < 16; ++i) {
    ASSERT_FALSE(results[i].ok());
    EXPECT_TRUE(results[i].status().IsResourceExhausted());
  }
  EXPECT_EQ(manager.stats().shed, 10u);
}

}  // namespace
}  // namespace runtime
}  // namespace jinfer
