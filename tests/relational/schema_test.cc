#include "relational/schema.h"

#include <gtest/gtest.h>

namespace jinfer {
namespace rel {
namespace {

TEST(SchemaTest, MakeValid) {
  auto s = Schema::Make("R", {"A1", "A2"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->relation_name(), "R");
  EXPECT_EQ(s->num_attributes(), 2u);
  EXPECT_EQ(s->attribute_names()[1], "A2");
}

TEST(SchemaTest, EmptyRelationNameRejected) {
  EXPECT_TRUE(Schema::Make("", {"A"}).status().IsInvalidArgument());
}

TEST(SchemaTest, EmptyAttributeListRejected) {
  EXPECT_TRUE(Schema::Make("R", {}).status().IsInvalidArgument());
}

TEST(SchemaTest, EmptyAttributeNameRejected) {
  EXPECT_TRUE(Schema::Make("R", {"A", ""}).status().IsInvalidArgument());
}

TEST(SchemaTest, DuplicateAttributeRejected) {
  auto s = Schema::Make("R", {"A", "B", "A"});
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.status().IsInvalidArgument());
  EXPECT_NE(s.status().message().find("duplicate"), std::string::npos);
}

TEST(SchemaTest, IndexOf) {
  auto s = Schema::Make("R", {"A", "B", "C"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->IndexOf("B"), 1u);
  EXPECT_EQ(s->IndexOf("Z"), std::nullopt);
}

TEST(SchemaTest, ToString) {
  auto s = Schema::Make("Flight", {"From", "To"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ToString(), "Flight(From, To)");
}

TEST(SchemaTest, Equality) {
  auto a = Schema::Make("R", {"A"});
  auto b = Schema::Make("R", {"A"});
  auto c = Schema::Make("R", {"B"});
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *c);
}

}  // namespace
}  // namespace rel
}  // namespace jinfer
