#include "relational/relation.h"

#include <gtest/gtest.h>

namespace jinfer {
namespace rel {
namespace {

TEST(RelationTest, MakeWithRows) {
  auto r = Relation::Make("R", {"A", "B"}, {{1, 2}, {3, 4}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->num_attributes(), 2u);
  EXPECT_EQ(r->at(1, 0), Value(3));
}

TEST(RelationTest, MakeEmptyRelation) {
  auto r = Relation::Make("R", {"A"}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0u);
}

TEST(RelationTest, MakePropagatesSchemaError) {
  EXPECT_FALSE(Relation::Make("", {"A"}, {}).ok());
}

TEST(RelationTest, AppendRowArityMismatch) {
  auto r = Relation::Make("R", {"A", "B"}, {});
  ASSERT_TRUE(r.ok());
  util::Status st = r->AppendRow({Value(1)});
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("arity"), std::string::npos);
  EXPECT_EQ(r->num_rows(), 0u);
}

TEST(RelationTest, MakeRejectsRaggedRows) {
  EXPECT_FALSE(Relation::Make("R", {"A", "B"}, {{1, 2}, {3}}).ok());
}

TEST(RelationTest, MixedTypesInColumn) {
  auto r = Relation::Make("R", {"A"}, {{1}, {"one"}, {Value()}});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->at(0, 0).is_int());
  EXPECT_TRUE(r->at(1, 0).is_string());
  EXPECT_TRUE(r->at(2, 0).is_null());
}

TEST(RelationTest, ToStringContainsHeaderAndRows) {
  auto r = Relation::Make("R", {"Alpha", "B"}, {{1, 2}});
  std::string s = r->ToString();
  EXPECT_NE(s.find("Alpha"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("(1 rows)"), std::string::npos);
}

TEST(RelationTest, ToStringTruncates) {
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) rows.push_back({Value(i)});
  auto r = Relation::Make("R", {"A"}, std::move(rows));
  std::string s = r->ToString(3);
  EXPECT_NE(s.find("7 more rows"), std::string::npos);
}

}  // namespace
}  // namespace rel
}  // namespace jinfer
