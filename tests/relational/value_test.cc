#include "relational/value.h"

#include <gtest/gtest.h>

namespace jinfer {
namespace rel {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int());
}

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(5).is_int());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(std::string("x")).is_string());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, EqualSameTypeSamePayload) {
  EXPECT_EQ(Value(3), Value(3));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_EQ(Value(1.5), Value(1.5));
}

TEST(ValueTest, UnequalSameTypeDifferentPayload) {
  EXPECT_NE(Value(3), Value(4));
  EXPECT_NE(Value("a"), Value("b"));
}

TEST(ValueTest, CrossTypeNeverEqual) {
  EXPECT_NE(Value(1), Value(1.0));
  EXPECT_NE(Value(1), Value("1"));
  EXPECT_NE(Value(1.0), Value("1"));
}

TEST(ValueTest, NullNeverEqualIncludingToItself) {
  Value null1, null2;
  EXPECT_NE(null1, null2);
  EXPECT_NE(null1, null1);
  EXPECT_NE(null1, Value(0));
  EXPECT_NE(null1, Value(""));
}

TEST(ValueTest, HashAgreesWithEquality) {
  EXPECT_EQ(Value(42).Hash(), Value(42).Hash());
  EXPECT_EQ(Value("join").Hash(), Value("join").Hash());
  EXPECT_NE(Value(42).Hash(), Value(43).Hash());
  // Cross-type payloads should not collide (1 vs "1" vs 1.0).
  EXPECT_NE(Value(1).Hash(), Value("1").Hash());
  EXPECT_NE(Value(1).Hash(), Value(1.0).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(7).ToString(), "7");
  EXPECT_EQ(Value(-3).ToString(), "-3");
  EXPECT_EQ(Value("abc").ToString(), "abc");
  EXPECT_EQ(Value().ToString(), "");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ValueFromCsvFieldTest, EmptyIsNull) {
  EXPECT_TRUE(Value::FromCsvField("").is_null());
}

TEST(ValueFromCsvFieldTest, IntegerLiterals) {
  Value v = Value::FromCsvField("123");
  ASSERT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 123);
  EXPECT_EQ(Value::FromCsvField("-5").AsInt(), -5);
}

TEST(ValueFromCsvFieldTest, DoubleLiterals) {
  Value v = Value::FromCsvField("1.25");
  ASSERT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 1.25);
}

TEST(ValueFromCsvFieldTest, StringsOtherwise) {
  EXPECT_TRUE(Value::FromCsvField("12a").is_string());
  EXPECT_TRUE(Value::FromCsvField("NYC").is_string());
  EXPECT_TRUE(Value::FromCsvField("1 2").is_string());
}

TEST(ValueFromCsvFieldTest, IntTakesPrecedenceOverDouble) {
  EXPECT_TRUE(Value::FromCsvField("7").is_int());
  EXPECT_TRUE(Value::FromCsvField("7.0").is_double());
}

// --- The shared value-semantics layer (hash primitives, CellView) -------

TEST(HashPrimitivesTest, AgreeWithValueHashForEveryType) {
  EXPECT_EQ(HashNull(), Value().Hash());
  EXPECT_EQ(HashInt(42), Value(42).Hash());
  EXPECT_EQ(HashDouble(2.5), Value(2.5).Hash());
  EXPECT_EQ(HashString("join"), Value("join").Hash());
}

TEST(HashPrimitivesTest, BottomValueRuleAllNullsHashAlike) {
  // The appendix A.1 rule, centralized: every NULL hashes identically —
  // through Value, through CellView, through the raw primitive — while no
  // two NULLs ever compare equal anywhere.
  EXPECT_EQ(Value().Hash(), Value(Null{}).Hash());
  EXPECT_EQ(CellView{}.Hash(), HashNull());
  EXPECT_EQ(CellView::Of(Value()).Hash(), HashNull());
  EXPECT_NE(Value(), Value());
  EXPECT_NE(CellView{}, CellView{});
  EXPECT_NE(CellView::Of(Value()), CellView::Of(Value()));
}

TEST(CellViewTest, EqualityMirrorsValueEquality) {
  Value iv(3), sv("3"), dv(3.0), nv;
  EXPECT_EQ(CellView::Of(iv), CellView::Of(Value(3)));
  EXPECT_NE(CellView::Of(iv), CellView::Of(sv));
  EXPECT_NE(CellView::Of(iv), CellView::Of(dv));
  EXPECT_NE(CellView::Of(nv), CellView::Of(nv));
  EXPECT_NE(CellView::Of(nv), CellView::Of(Value(0)));
  // IEEE corner the bit pattern would get wrong: -0.0 == +0.0.
  EXPECT_EQ(CellView::Of(Value(-0.0)), CellView::Of(Value(0.0)));
}

TEST(CellViewTest, RoundTripsThroughValue) {
  for (const Value& v :
       {Value(7), Value(-2.25), Value("abc"), Value(""), Value()}) {
    CellView view = CellView::Of(v);
    Value back = view.ToValue();
    EXPECT_EQ(back.is_null(), v.is_null());
    if (!v.is_null()) {
      EXPECT_EQ(back, v);
      EXPECT_EQ(view.Hash(), v.Hash());
    }
  }
}

}  // namespace
}  // namespace rel
}  // namespace jinfer
