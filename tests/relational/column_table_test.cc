#include "relational/column_table.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "relational/relation.h"

namespace jinfer {
namespace rel {
namespace {

TEST(ColumnDictionaryTest, InternsDistinctValuesOnce) {
  ColumnDictionary d;
  EXPECT_EQ(d.EncodeInt(7), 0u);
  EXPECT_EQ(d.EncodeString("x"), 1u);
  EXPECT_EQ(d.EncodeDouble(2.5), 2u);
  EXPECT_EQ(d.EncodeInt(7), 0u);
  EXPECT_EQ(d.EncodeString("x"), 1u);
  EXPECT_EQ(d.EncodeDouble(2.5), 2u);
  EXPECT_EQ(d.size(), 3u);
}

TEST(ColumnDictionaryTest, CrossTypePayloadsStayDistinct) {
  ColumnDictionary d;
  uint32_t i = d.EncodeInt(1);
  uint32_t s = d.EncodeString("1");
  uint32_t f = d.EncodeDouble(1.0);
  EXPECT_NE(i, s);
  EXPECT_NE(i, f);
  EXPECT_NE(s, f);
}

TEST(ColumnDictionaryTest, ViewRoundTripsValues) {
  ColumnDictionary d;
  uint32_t i = d.EncodeValue(Value(42));
  uint32_t s = d.EncodeValue(Value("join"));
  uint32_t f = d.EncodeValue(Value(0.125));
  EXPECT_EQ(d.ToValue(i), Value(42));
  EXPECT_EQ(d.ToValue(s), Value("join"));
  EXPECT_EQ(d.ToValue(f), Value(0.125));
  EXPECT_EQ(d.view(s).AsString(), "join");
  EXPECT_EQ(d.type(f), ValueType::kDouble);
}

TEST(ColumnDictionaryTest, CachedHashMatchesValueHash) {
  ColumnDictionary d;
  uint32_t i = d.EncodeInt(42);
  uint32_t s = d.EncodeString("join");
  EXPECT_EQ(d.value_hash(i), Value(42).Hash());
  EXPECT_EQ(d.value_hash(s), Value("join").Hash());
}

TEST(ColumnDictionaryTest, StringArenaSurvivesGrowth) {
  ColumnDictionary d;
  std::vector<uint32_t> codes;
  for (int i = 0; i < 200; ++i) {
    codes.push_back(d.EncodeString("value-" + std::to_string(i)));
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(d.view(codes[i]).AsString(), "value-" + std::to_string(i));
  }
  // Re-encoding returns the original codes (no duplicate interning).
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(d.EncodeString("value-" + std::to_string(i)), codes[i]);
  }
}

TEST(ColumnDictionaryTest, EmptyStringIsARealEntry) {
  ColumnDictionary d;
  uint32_t e = d.EncodeString("");
  EXPECT_EQ(d.EncodeString(""), e);
  EXPECT_NE(d.EncodeString("a"), e);
  EXPECT_EQ(d.view(e).AsString(), "");
  EXPECT_FALSE(d.view(e).is_null());  // "" is a string, not a bottom value.
}

TEST(ColumnDictionaryTest, NaNGetsAFreshCodePerOccurrence) {
  // NaN equals nothing, so two NaN cells sharing a code would start
  // joining each other. Each encode appends a fresh entry (the bottom-
  // value treatment, with the payload preserved).
  ColumnDictionary d;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  uint32_t a = d.EncodeDouble(nan);
  uint32_t b = d.EncodeDouble(nan);
  EXPECT_NE(a, b);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(std::isnan(d.view(a).AsDouble()));
  EXPECT_NE(d.view(a), d.view(b));  // CellView keeps IEEE NaN != NaN.
  // Ordinary doubles still intern: one entry, shared code.
  EXPECT_EQ(d.EncodeDouble(2.5), d.EncodeDouble(2.5));
}

TEST(ColumnDictionaryTest, DenseSeedMakesCodeEqualValue) {
  ColumnDictionary d;
  d.SeedDenseIntDomain(100);
  EXPECT_EQ(d.size(), 100u);
  for (int64_t v : {int64_t{0}, int64_t{17}, int64_t{99}}) {
    EXPECT_EQ(d.view(static_cast<uint32_t>(v)).AsInt(), v);
    EXPECT_EQ(d.EncodeInt(v), static_cast<uint32_t>(v));
  }
}

TEST(ColumnTableTest, StreamingAppendAndDecode) {
  ColumnTable t(3);
  t.AppendInt(1);
  t.AppendString("x");
  t.AppendDouble(3.5);
  t.FinishRow();
  t.AppendNull();
  t.AppendString("x");
  t.AppendInt(2);
  t.FinishRow();

  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.ValueAt(0, 0), Value(1));
  EXPECT_EQ(t.ValueAt(0, 1), Value("x"));
  EXPECT_EQ(t.ValueAt(0, 2), Value(3.5));
  EXPECT_TRUE(t.ValueAt(1, 0).is_null());
  EXPECT_EQ(t.ValueAt(1, 2), Value(2));

  // Equal values in one column share a code; the dictionary holds it once.
  EXPECT_EQ(t.codes(1)[0], t.codes(1)[1]);
  EXPECT_EQ(t.dictionary(1).size(), 1u);
}

TEST(ColumnTableTest, NullBitmapAndSentinelAgree) {
  ColumnTable t(2);
  for (int i = 0; i < 130; ++i) {  // Spans three bitmap words.
    if (i % 3 == 0) {
      t.AppendNull();
    } else {
      t.AppendInt(i);
    }
    t.AppendInt(-i);
    t.FinishRow();
  }
  ASSERT_EQ(t.num_rows(), 130u);
  EXPECT_TRUE(t.column_has_nulls(0));
  EXPECT_FALSE(t.column_has_nulls(1));
  EXPECT_EQ(t.null_words(0).size(), (130u + 63) / 64);
  for (size_t i = 0; i < 130; ++i) {
    bool expect_null = i % 3 == 0;
    EXPECT_EQ(t.IsNull(i, 0), expect_null) << i;
    EXPECT_EQ(t.codes(0)[i] == kNullCellCode, expect_null) << i;
    EXPECT_FALSE(t.IsNull(i, 1));
  }
}

TEST(ColumnTableTest, CellViewEqualityFollowsValueSemantics) {
  ColumnTable t(2);
  t.AppendInt(5);
  t.AppendInt(5);
  t.FinishRow();
  t.AppendNull();
  t.AppendNull();
  t.FinishRow();

  EXPECT_EQ(t.cell(0, 0), t.cell(0, 1));
  // The bottom-value rule: NULL cells never compare equal, not even to
  // themselves (appendix A.1 depends on it).
  EXPECT_NE(t.cell(1, 0), t.cell(1, 1));
  EXPECT_NE(t.cell(1, 0), t.cell(1, 0));
  EXPECT_NE(t.cell(1, 0), t.cell(0, 0));
  // ... but they all hash alike, through the one shared HashNull().
  EXPECT_EQ(t.cell(1, 0).Hash(), t.cell(1, 1).Hash());
  EXPECT_EQ(t.cell(1, 0).Hash(), Value().Hash());
}

TEST(ColumnTableTest, MixedTypeColumnKeepsRuntimeTypes) {
  ColumnTable t(1);
  t.AppendInt(1);
  t.FinishRow();
  t.AppendString("1");
  t.FinishRow();
  t.AppendDouble(1.0);
  t.FinishRow();
  EXPECT_EQ(t.dictionary(0).size(), 3u);
  EXPECT_NE(t.cell(0, 0), t.cell(1, 0));
  EXPECT_NE(t.cell(0, 0), t.cell(2, 0));
  EXPECT_EQ(t.ValueAt(1, 0), Value("1"));
}

TEST(ColumnTableTest, AppendCodeFastPathMatchesAppendInt) {
  ColumnTable fast(2), slow(2);
  for (size_t c = 0; c < 2; ++c) fast.dictionary(c).SeedDenseIntDomain(8);
  for (uint32_t i = 0; i < 64; ++i) {
    fast.AppendCode(i % 8);
    fast.AppendCode((i * 3) % 8);
    fast.FinishRow();
    slow.AppendInt(i % 8);
    slow.AppendInt((i * 3) % 8);
    slow.FinishRow();
  }
  for (size_t i = 0; i < 64; ++i) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(fast.ValueAt(i, c), slow.ValueAt(i, c));
    }
  }
}

TEST(RelationFacadeTest, RowViewsDecodeColumnarStorage) {
  auto r = Relation::Make("R", {"A", "B"},
                          {{1, "x"}, {Value(), 2.5}, {1, "x"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 3u);
  Row row0 = r->row(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0], Value(1));
  EXPECT_EQ(row0[1], Value("x"));
  EXPECT_TRUE(r->at(1, 0).is_null());
  EXPECT_EQ(r->rows().size(), 3u);
  // Identical rows share column codes end to end.
  EXPECT_EQ(r->columns().codes(0)[0], r->columns().codes(0)[2]);
  EXPECT_EQ(r->columns().codes(1)[0], r->columns().codes(1)[2]);
}

TEST(RelationFacadeTest, InitializerListAppendEncodesDirectly) {
  auto r = Relation::Make("R", {"A", "B"}, {});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->AppendRow({Value(3), Value("y")}).ok());
  ASSERT_TRUE(r->AppendRow({3, "y"}).ok());
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->columns().dictionary(0).size(), 1u);
  EXPECT_EQ(r->columns().dictionary(1).size(), 1u);
  // Arity errors reject the row before any cell lands.
  EXPECT_TRUE(r->AppendRow({Value(1)}).IsInvalidArgument());
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->columns().codes(0).size(), 2u);
}

}  // namespace
}  // namespace rel
}  // namespace jinfer
