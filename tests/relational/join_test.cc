#include "relational/join.h"

#include <gtest/gtest.h>

#include "testing/paper_fixtures.h"
#include "util/rng.h"

namespace jinfer {
namespace rel {
namespace {

using IndexPairs = std::vector<std::pair<size_t, size_t>>;

// --- Example 2.1 expected results (§2 of the paper) ------------------------

TEST(EquijoinTest, Example21Theta1) {
  // θ1 = {(A1,B1),(A2,B3)}: R0 ⋈θ1 P0 = {(t2,t2'), (t4,t1')}.
  auto r = testing::Example21R();
  auto p = testing::Example21P();
  auto idx = EquijoinIndices(r, p, {{0, 0}, {1, 2}});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, (IndexPairs{{1, 1}, {3, 0}}));
}

TEST(EquijoinTest, Example21Theta2) {
  // θ2 = {(A2,B2)}: R0 ⋈θ2 P0 = {(t1,t1'), (t1,t2'), (t4,t3')}.
  auto r = testing::Example21R();
  auto p = testing::Example21P();
  auto idx = EquijoinIndices(r, p, {{1, 1}});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, (IndexPairs{{0, 0}, {0, 1}, {3, 2}}));
}

TEST(EquijoinTest, Example21Theta3Empty) {
  // θ3 = {(A2,B1),(A2,B2),(A2,B3)}: empty result.
  auto r = testing::Example21R();
  auto p = testing::Example21P();
  auto idx = EquijoinIndices(r, p, {{1, 0}, {1, 1}, {1, 2}});
  ASSERT_TRUE(idx.ok());
  EXPECT_TRUE(idx->empty());
}

TEST(SemijoinTest, Example21AllThree) {
  auto r = testing::Example21R();
  auto p = testing::Example21P();
  // R0 ⋉θ1 P0 = {t2, t4}
  auto s1 = SemijoinIndices(r, p, {{0, 0}, {1, 2}});
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(*s1, (std::vector<size_t>{1, 3}));
  // R0 ⋉θ2 P0 = {t1, t4}
  auto s2 = SemijoinIndices(r, p, {{1, 1}});
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, (std::vector<size_t>{0, 3}));
  // R0 ⋉θ3 P0 = {}
  auto s3 = SemijoinIndices(r, p, {{1, 0}, {1, 1}, {1, 2}});
  ASSERT_TRUE(s3.ok());
  EXPECT_TRUE(s3->empty());
}

// --- Degenerate predicates --------------------------------------------------

TEST(EquijoinTest, EmptyThetaIsCartesianProduct) {
  auto r = testing::Example21R();
  auto p = testing::Example21P();
  auto idx = EquijoinIndices(r, p, {});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->size(), 12u);
}

TEST(SemijoinTest, EmptyThetaSelectsAllWhenPNonEmpty) {
  auto r = testing::Example21R();
  auto p = testing::Example21P();
  auto s = SemijoinIndices(r, p, {});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), r.num_rows());
}

TEST(SemijoinTest, EmptyThetaSelectsNothingWhenPEmpty) {
  auto r = testing::Example21R();
  auto empty = Relation::Make("P", {"B1"}, {});
  auto s = SemijoinIndices(r, *empty, {});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->empty());
}

// --- Validation -------------------------------------------------------------

TEST(JoinValidationTest, OutOfRangeRAttribute) {
  auto r = testing::Example21R();
  auto p = testing::Example21P();
  EXPECT_TRUE(EquijoinIndices(r, p, {{2, 0}}).status().IsOutOfRange());
}

TEST(JoinValidationTest, OutOfRangePAttribute) {
  auto r = testing::Example21R();
  auto p = testing::Example21P();
  EXPECT_TRUE(SemijoinIndices(r, p, {{0, 3}}).status().IsOutOfRange());
}

// --- NULL semantics ---------------------------------------------------------

TEST(JoinNullTest, NullNeverJoins) {
  auto r = Relation::Make("R", {"A"}, {{Value()}, {1}});
  auto p = Relation::Make("P", {"B"}, {{Value()}, {1}});
  auto idx = EquijoinIndices(*r, *p, {{0, 0}});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, (IndexPairs{{1, 1}}));  // Only 1=1; NULL matches nothing.
}

TEST(JoinNullTest, NaiveAgreesOnNulls) {
  auto r = Relation::Make("R", {"A"}, {{Value()}, {1}});
  auto p = Relation::Make("P", {"B"}, {{Value()}, {1}});
  EXPECT_EQ(*EquijoinIndices(*r, *p, {{0, 0}}),
            *EquijoinIndicesNaive(*r, *p, {{0, 0}}));
}

// --- Cross-type columns -----------------------------------------------------

TEST(JoinTypeTest, IntNeverJoinsString) {
  auto r = Relation::Make("R", {"A"}, {{1}});
  auto p = Relation::Make("P", {"B"}, {{"1"}});
  auto idx = EquijoinIndices(*r, *p, {{0, 0}});
  ASSERT_TRUE(idx.ok());
  EXPECT_TRUE(idx->empty());
}

// --- Duplicates (bag semantics on indices) ----------------------------------

TEST(JoinDuplicateTest, DuplicateRowsYieldAllPairs) {
  auto r = Relation::Make("R", {"A"}, {{1}, {1}});
  auto p = Relation::Make("P", {"B"}, {{1}, {1}});
  auto idx = EquijoinIndices(*r, *p, {{0, 0}});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->size(), 4u);
}

// --- Materialized results ---------------------------------------------------

TEST(EquijoinRelationTest, QualifiedSchemaAndRows) {
  auto r = testing::Example21R();
  auto p = testing::Example21P();
  auto joined = EquijoinRelation(r, p, {{0, 0}, {1, 2}}, "J");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->schema().attribute_names()[0], "R0.A1");
  EXPECT_EQ(joined->schema().attribute_names()[2], "P0.B1");
  EXPECT_EQ(joined->num_rows(), 2u);
  EXPECT_EQ(joined->at(0, 0), Value(0));  // t2 = (0,2)
}

TEST(CartesianProductTest, SizeAndContent) {
  auto r = testing::Example21R();
  auto p = testing::Example21P();
  auto d = CartesianProduct(r, p, "D0");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_rows(), 12u);
  EXPECT_EQ(d->num_attributes(), 5u);
}

// --- Properties: hash join ≡ nested loop; anti-monotonicity ----------------

struct RandomJoinCase {
  uint64_t seed;
};

class JoinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

Relation RandomRelation(const std::string& name, size_t attrs, size_t rows,
                        int64_t domain, util::Rng& rng) {
  std::vector<std::string> names;
  for (size_t i = 0; i < attrs; ++i) {
    names.push_back(name + "c" + std::to_string(i));
  }
  std::vector<Row> data;
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    for (size_t c = 0; c < attrs; ++c) {
      if (rng.NextBool(0.1)) {
        row.emplace_back(Value());  // Sprinkle NULLs.
      } else {
        row.emplace_back(rng.NextInRange(0, domain - 1));
      }
    }
    data.push_back(std::move(row));
  }
  auto rel = Relation::Make(name, std::move(names), std::move(data));
  return std::move(rel).ValueOrDie();
}

TEST_P(JoinPropertyTest, HashJoinMatchesNestedLoop) {
  util::Rng rng(GetParam());
  Relation r = RandomRelation("R", 3, 30, 6, rng);
  Relation p = RandomRelation("P", 2, 25, 6, rng);
  for (const std::vector<AttrPair>& theta :
       {std::vector<AttrPair>{{0, 0}}, std::vector<AttrPair>{{1, 1}},
        std::vector<AttrPair>{{0, 1}, {2, 0}}}) {
    auto fast = EquijoinIndices(r, p, theta);
    auto slow = EquijoinIndicesNaive(r, p, theta);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(*fast, *slow);
  }
}

TEST_P(JoinPropertyTest, AntiMonotonicityEquijoin) {
  // θ1 ⊆ θ2 implies R ⋈θ2 P ⊆ R ⋈θ1 P (§2).
  util::Rng rng(GetParam() ^ 0xabc);
  Relation r = RandomRelation("R", 3, 25, 5, rng);
  Relation p = RandomRelation("P", 3, 25, 5, rng);
  std::vector<AttrPair> theta1 = {{0, 0}};
  std::vector<AttrPair> theta2 = {{0, 0}, {1, 1}};
  auto big = EquijoinIndices(r, p, theta1);
  auto small = EquijoinIndices(r, p, theta2);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(small.ok());
  for (const auto& pair : *small) {
    EXPECT_NE(std::find(big->begin(), big->end(), pair), big->end());
  }
  EXPECT_LE(small->size(), big->size());
}

TEST_P(JoinPropertyTest, AntiMonotonicitySemijoin) {
  util::Rng rng(GetParam() ^ 0xdef);
  Relation r = RandomRelation("R", 3, 25, 5, rng);
  Relation p = RandomRelation("P", 3, 25, 5, rng);
  auto big = SemijoinIndices(r, p, {{1, 1}});
  auto small = SemijoinIndices(r, p, {{1, 1}, {2, 2}});
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(small.ok());
  for (size_t row : *small) {
    EXPECT_NE(std::find(big->begin(), big->end(), row), big->end());
  }
}

TEST_P(JoinPropertyTest, SemijoinIsProjectionOfEquijoin) {
  // R ⋉θ P = Π_R(R ⋈θ P) (§2).
  util::Rng rng(GetParam() ^ 0x123);
  Relation r = RandomRelation("R", 2, 20, 4, rng);
  Relation p = RandomRelation("P", 2, 20, 4, rng);
  std::vector<AttrPair> theta = {{0, 1}};
  auto join = EquijoinIndices(r, p, theta);
  auto semi = SemijoinIndices(r, p, theta);
  ASSERT_TRUE(join.ok());
  ASSERT_TRUE(semi.ok());
  std::vector<size_t> projected;
  for (const auto& [i, j] : *join) {
    if (projected.empty() || projected.back() != i) projected.push_back(i);
  }
  EXPECT_EQ(*semi, projected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace rel
}  // namespace jinfer
