#include "relational/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace jinfer {
namespace rel {
namespace {

TEST(CsvReadTest, BasicTypedFields) {
  auto r = ReadRelationCsvText("A,B,C\n1,2.5,NYC\n-3,0.25,Lille\n", "R");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->at(0, 0), Value(1));
  EXPECT_EQ(r->at(0, 1), Value(2.5));
  EXPECT_EQ(r->at(0, 2), Value("NYC"));
  EXPECT_EQ(r->at(1, 0), Value(-3));
}

TEST(CsvReadTest, EmptyFieldIsNull) {
  auto r = ReadRelationCsvText("A,B\n1,\n,2\n", "R");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->at(0, 1).is_null());
  EXPECT_TRUE(r->at(1, 0).is_null());
}

TEST(CsvReadTest, QuotedFieldsStayStrings) {
  auto r = ReadRelationCsvText("A,B\n\"1\",\"\"\n", "R");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->at(0, 0).is_string());
  EXPECT_EQ(r->at(0, 0).AsString(), "1");
  EXPECT_TRUE(r->at(0, 1).is_string());  // Quoted empty is "", not NULL.
  EXPECT_EQ(r->at(0, 1).AsString(), "");
}

TEST(CsvReadTest, QuotedCommaAndEscapedQuote) {
  auto r = ReadRelationCsvText("A\n\"a,b\"\n\"say \"\"hi\"\"\"\n", "R");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0, 0).AsString(), "a,b");
  EXPECT_EQ(r->at(1, 0).AsString(), "say \"hi\"");
}

TEST(CsvReadTest, CrLfLineEndings) {
  auto r = ReadRelationCsvText("A,B\r\n1,2\r\n", "R");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0, 1), Value(2));
}

TEST(CsvReadTest, BlankLinesSkipped) {
  auto r = ReadRelationCsvText("A\n1\n\n2\n", "R");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
}

TEST(CsvReadTest, HeaderWhitespaceTrimmed) {
  auto r = ReadRelationCsvText(" A , B \n1,2\n", "R");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().attribute_names()[0], "A");
}

TEST(CsvReadTest, EmptyInputRejected) {
  EXPECT_TRUE(ReadRelationCsvText("", "R").status().IsParseError());
}

TEST(CsvReadTest, FieldCountMismatchRejected) {
  auto r = ReadRelationCsvText("A,B\n1\n", "R");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(CsvReadTest, UnterminatedQuoteRejected) {
  EXPECT_TRUE(ReadRelationCsvText("A\n\"abc\n", "R").status().IsParseError());
}

TEST(CsvReadTest, DuplicateHeaderRejected) {
  EXPECT_TRUE(
      ReadRelationCsvText("A,A\n1,2\n", "R").status().IsInvalidArgument());
}

TEST(CsvWriteTest, RoundTripsTypedData) {
  auto original = Relation::Make(
      "R", {"A", "B", "C"},
      {{1, "x,y", Value()}, {2, "plain", 3.5}});
  ASSERT_TRUE(original.ok());
  std::string text = WriteRelationCsv(*original);
  auto reparsed = ReadRelationCsvText(text, "R");
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->num_rows(), 2u);
  EXPECT_EQ(reparsed->at(0, 0), Value(1));
  EXPECT_EQ(reparsed->at(0, 1), Value("x,y"));
  EXPECT_TRUE(reparsed->at(0, 2).is_null());
  EXPECT_EQ(reparsed->at(1, 2), Value(3.5));
}

TEST(CsvWriteTest, ColumnTableRoundTripPreservesEveryCell) {
  // CSV -> ColumnTable -> WriteRelationCsv -> ColumnTable: cells that have
  // a faithful CSV rendering (ints, fractional doubles, non-numeric
  // strings, NULLs) survive exactly — same types, same codes structure.
  const std::string text =
      "K,Name,Score\n"
      "1,alice,0.5\n"
      ",\"b,ob\",-2\n"
      "3,alice,\n"
      "1,\"say \"\"hi\"\"\",0.5\n";
  auto first = ReadRelationCsvText(text, "T");
  ASSERT_TRUE(first.ok());
  auto second = ReadRelationCsvText(WriteRelationCsv(*first), "T");
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->num_rows(), first->num_rows());
  for (size_t r = 0; r < first->num_rows(); ++r) {
    for (size_t c = 0; c < first->num_attributes(); ++c) {
      if (first->at(r, c).is_null()) {
        EXPECT_TRUE(second->at(r, c).is_null()) << r << "," << c;
      } else {
        EXPECT_EQ(first->at(r, c), second->at(r, c)) << r << "," << c;
      }
    }
  }
  // The reparse interned the same distinct values per column.
  for (size_t c = 0; c < first->num_attributes(); ++c) {
    EXPECT_EQ(first->columns().dictionary(c).size(),
              second->columns().dictionary(c).size());
  }
}

TEST(CsvReadTest, StreamingParseSharesDictionaryCodes) {
  auto r = ReadRelationCsvText("City,N\nNYC,1\nParis,2\nNYC,1\n", "R");
  ASSERT_TRUE(r.ok());
  const ColumnTable& t = r->columns();
  EXPECT_EQ(t.dictionary(0).size(), 2u);  // NYC, Paris — interned once.
  EXPECT_EQ(t.codes(0)[0], t.codes(0)[2]);
  EXPECT_EQ(t.codes(1)[0], t.codes(1)[2]);
  EXPECT_NE(t.codes(0)[0], t.codes(0)[1]);
}

TEST(CsvReadTest, ArityErrorLeavesNoPartialRow) {
  auto r = ReadRelationCsvText("A,B\n1,2\n3\n", "R");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  auto r2 = ReadRelationCsvText("A,B\n1,2\n3,4,5\n", "R");
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("got 3"), std::string::npos);
}

TEST(CsvFileTest, MissingFileIsIoError) {
  EXPECT_TRUE(ReadRelationCsvFile("/nonexistent/path.csv", "R")
                  .status()
                  .IsIoError());
}

TEST(CsvFileTest, ReadsFromDisk) {
  std::string path = ::testing::TempDir() + "/jinfer_csv_test.csv";
  {
    std::ofstream out(path);
    out << "City,Discount\nNYC,AA\nParis,None\n";
  }
  auto r = ReadRelationCsvFile(path, "Hotel");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->at(0, 0), Value("NYC"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rel
}  // namespace jinfer
