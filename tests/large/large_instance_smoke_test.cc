// Large-instance smoke target, built only under -DJINFER_LARGE_TESTS=ON:
// a Fig. 7-scale 10⁶-row synthetic instance must ingest (columnar
// generator), fingerprint, and build into a ready SignatureIndex, then
// answer a full inference session. This is the scale the ColumnTable
// refactor (DESIGN.md §9) exists for: 3M cells per relation stream into
// code vectors with a 10-entry dictionary per column, and signature-class
// compression collapses the 10¹² tuples of D into ≤10⁶ distinct R'×P'
// pairs for classification.

#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/oracle.h"
#include "core/strategy.h"
#include "store/fingerprint.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace {

TEST(LargeInstanceSmoke, MillionRowIngestFingerprintAndBuild) {
  constexpr size_t kRows = 1'000'000;
  auto inst = workload::GenerateSynthetic({3, 3, kRows, 10}, 31337);
  ASSERT_TRUE(inst.ok());
  ASSERT_EQ(inst->r.num_rows(), kRows);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(inst->r.columns().dictionary(c).size(), 10u);
  }

  store::InstanceFingerprint fp =
      store::FingerprintInstance(inst->r, inst->p, true);
  EXPECT_NE(fp.ToHex(), store::InstanceFingerprint{}.ToHex());

  auto index = core::SignatureIndex::Build(inst->r, inst->p,
                                           {.compress = true, .threads = 0});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_tuples(),
            static_cast<uint64_t>(kRows) * static_cast<uint64_t>(kRows));
  // v=10 over 3 attributes: at most 10³ distinct rows per side, so the
  // class table is tiny despite |D| = 10¹².
  EXPECT_LE(index->num_classes(), 1000u * 1000u);
  EXPECT_GE(index->num_classes(), 2u);

  core::JoinPredicate goal = index->cls(0).signature;
  auto strategy = core::MakeStrategy(core::StrategyKind::kTopDown);
  core::GoalOracle oracle(goal);
  auto result = core::RunInference(*index, *strategy, oracle, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(index->EquivalentOnInstance(result->predicate, goal));
}

}  // namespace
}  // namespace jinfer
