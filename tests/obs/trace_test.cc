// Flight recorder (DESIGN.md §13.2): ring wraparound keeps the newest
// spans and counts the overwritten ones, snapshots never return torn
// records under concurrent writers, and EmitFlightDump names the slowest
// span — the line the deadline/error paths exist to produce.

#include "obs/trace.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace jinfer {
namespace obs {
namespace {

SpanRecord MakeSpan(uint64_t trace_id, uint64_t duration,
                    SpanKind kind = SpanKind::kCacheProbe,
                    uint64_t detail = 0) {
  SpanRecord r;
  r.trace_id = trace_id;
  r.start_nanos = trace_id * 10;
  r.duration_nanos = duration;
  r.detail = detail;
  r.kind = kind;
  return r;
}

TEST(TraceTest, WraparoundKeepsNewestAndCountsDropped) {
  FlightRecorder recorder(8);
  ASSERT_EQ(recorder.capacity(), 8u);
  for (uint64_t i = 1; i <= 20; ++i) {
    recorder.Record(MakeSpan(i, i * 100));
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  EXPECT_EQ(recorder.dropped(), 12u);
  std::vector<SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // The retained window is the last 8 records, oldest first.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].trace_id, 13 + i);
    EXPECT_EQ(spans[i].duration_nanos, (13 + i) * 100);
  }
}

TEST(TraceTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder recorder(5);
  EXPECT_EQ(recorder.capacity(), 8u);
}

TEST(TraceTest, SnapshotFiltersByTraceId) {
  FlightRecorder recorder(16);
  recorder.Record(MakeSpan(1, 100));
  recorder.Record(MakeSpan(2, 200));
  recorder.Record(MakeSpan(1, 300, SpanKind::kQuestionCompute));
  std::vector<SpanRecord> mine = recorder.Snapshot(1);
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_EQ(mine[0].duration_nanos, 100u);
  EXPECT_EQ(mine[1].duration_nanos, 300u);
  EXPECT_EQ(mine[1].kind, SpanKind::kQuestionCompute);
  EXPECT_EQ(recorder.Snapshot(2).size(), 1u);
  // trace_id 0 means no filter, not "spans with id 0".
  EXPECT_EQ(recorder.Snapshot(0).size(), 3u);
}

TEST(TraceTest, KindAndDetailSurviveThePackedWord) {
  FlightRecorder recorder(4);
  recorder.Record(
      MakeSpan(7, 42, SpanKind::kFrameExecute, /*detail=*/0x123456));
  std::vector<SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, SpanKind::kFrameExecute);
  EXPECT_EQ(spans[0].detail, 0x123456u);
}

TEST(TraceTest, ConcurrentRecordersNeverYieldTornRecords) {
  FlightRecorder recorder(64);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> pool;
  // Writers encode trace_id == duration == detail, so any cross-record
  // mixing is detectable in the snapshot below. A reader thread snapshots
  // continuously while the writers hammer the ring.
  std::atomic<bool> stop{false};
  std::thread reader([&recorder, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const SpanRecord& r : recorder.Snapshot()) {
        if (r.trace_id != r.duration_nanos || r.trace_id != r.detail) {
          ADD_FAILURE() << "torn record escaped the seqlock";
          return;
        }
      }
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&recorder, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t v = static_cast<uint64_t>(t) * kPerThread + i + 1;
        recorder.Record(MakeSpan(v, v, SpanKind::kCacheProbe, v));
      }
    });
  }
  for (auto& t : pool) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(recorder.recorded(), kThreads * kPerThread);
  EXPECT_EQ(recorder.dropped(), kThreads * kPerThread - 64);
  for (const SpanRecord& r : recorder.Snapshot()) {
    EXPECT_EQ(r.trace_id, r.duration_nanos);
    EXPECT_EQ(r.trace_id, r.detail);
  }
}

TEST(TraceTest, DisabledRecordIsANoOp) {
  FlightRecorder recorder(8);
  SetMetricsEnabled(false);
  recorder.Record(MakeSpan(1, 100));
  SetMetricsEnabled(true);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceTest, RenderFlightDumpNamesTheSlowestSpan) {
  std::vector<SpanRecord> spans = {
      MakeSpan(3, 1000, SpanKind::kCacheProbe),
      MakeSpan(3, 5000000, SpanKind::kMinimaxSearch, /*detail=*/777),
      MakeSpan(3, 2000, SpanKind::kAnswerApply),
  };
  const std::string dump = RenderFlightDump("test reason", spans);
  EXPECT_NE(dump.find("flight recorder dump: test reason (3 spans)"),
            std::string::npos);
  EXPECT_NE(dump.find("slowest span: minimax_search trace=3"),
            std::string::npos);
  EXPECT_NE(dump.find("detail=777"), std::string::npos);
}

TEST(TraceTest, EmitFlightDumpStoresTheRenderingFilteredByTraceId) {
  // A unique trace id keeps this test independent of whatever other spans
  // the suite has already dropped into the global recorder.
  const uint64_t trace = 0xDEADBEEF;
  FlightRecorder::Global().Record(
      MakeSpan(trace, 123456789, SpanKind::kIndexBuild));
  FlightRecorder::Global().Record(
      MakeSpan(trace, 10, SpanKind::kCacheProbe));
  EmitFlightDump("unit-test dump", trace);
  const std::string dump = LastFlightDump();
  EXPECT_NE(dump.find("unit-test dump (2 spans)"), std::string::npos);
  EXPECT_NE(dump.find("slowest span: index_build"), std::string::npos);
}

TEST(TraceTest, SpanKindNamesAreStable) {
  EXPECT_STREQ(SpanKindName(SpanKind::kIndexBuild), "index_build");
  EXPECT_STREQ(SpanKindName(SpanKind::kFrameQueue), "frame_queue");
  EXPECT_STREQ(SpanKindName(SpanKind::kQuestionCompute),
               "question_compute");
}

TEST(TraceTest, ScopedSpanRecordsHistogramAndFlightRecord) {
  Histogram histogram;
  const uint64_t trace = 0xFEEDFACE;
  {
    ScopedSpan span(SpanKind::kStoreLoad, trace, &histogram);
    span.set_detail(99);
  }
  EXPECT_EQ(histogram.Snapshot().count, 1u);
  std::vector<SpanRecord> spans = FlightRecorder::Global().Snapshot(trace);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, SpanKind::kStoreLoad);
  EXPECT_EQ(spans[0].detail, 99u);
}

}  // namespace
}  // namespace obs
}  // namespace jinfer
