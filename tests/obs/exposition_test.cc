// Exposition goldens (DESIGN.md §13.3): the Prometheus text format is a
// wire format operators' scrapers parse, so it is pinned byte-for-byte
// here, and SummarizeHistograms must agree with HistogramSnapshot's own
// quantile arithmetic — one definition of p50/p99 everywhere.

#include "obs/exposition.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace jinfer {
namespace obs {
namespace {

TEST(ExpositionTest, RendersCounterAndGaugeGolden) {
  std::vector<MetricSnapshot> metrics(2);
  metrics[0].name = "test_requests_total";
  metrics[0].kind = MetricKind::kCounter;
  metrics[0].counter = 42;
  metrics[1].name = "test_connections_open";
  metrics[1].kind = MetricKind::kGauge;
  metrics[1].gauge = -3;
  EXPECT_EQ(RenderPrometheusText(metrics),
            "# TYPE test_requests_total counter\n"
            "test_requests_total 42\n"
            "# TYPE test_connections_open gauge\n"
            "test_connections_open -3\n");
}

TEST(ExpositionTest, RendersHistogramGolden) {
  // Samples 0 and 3: bucket 0 and bucket 2. Buckets render cumulatively up
  // to the highest populated one, then +Inf; quantiles are p50/p90/p99
  // under the shared interpolation (rank 1 -> 0.0, rank 2 -> top of
  // [2,3] = 3.0).
  MetricSnapshot m;
  m.name = "test_latency_nanos";
  m.kind = MetricKind::kHistogram;
  m.histogram.count = 2;
  m.histogram.sum = 3;
  m.histogram.buckets[0] = 1;
  m.histogram.buckets[2] = 1;
  EXPECT_EQ(RenderPrometheusText({m}),
            "# TYPE test_latency_nanos histogram\n"
            "test_latency_nanos_bucket{le=\"0\"} 1\n"
            "test_latency_nanos_bucket{le=\"1\"} 1\n"
            "test_latency_nanos_bucket{le=\"3\"} 2\n"
            "test_latency_nanos_bucket{le=\"+Inf\"} 2\n"
            "test_latency_nanos_sum 3\n"
            "test_latency_nanos_count 2\n"
            "test_latency_nanos{quantile=\"0.5\"} 0.0\n"
            "test_latency_nanos{quantile=\"0.9\"} 3.0\n"
            "test_latency_nanos{quantile=\"0.99\"} 3.0\n");
}

TEST(ExpositionTest, EmptyHistogramRendersOneBucketAndZeroQuantiles) {
  MetricSnapshot m;
  m.name = "test_empty_nanos";
  m.kind = MetricKind::kHistogram;
  EXPECT_EQ(RenderPrometheusText({m}),
            "# TYPE test_empty_nanos histogram\n"
            "test_empty_nanos_bucket{le=\"0\"} 0\n"
            "test_empty_nanos_bucket{le=\"+Inf\"} 0\n"
            "test_empty_nanos_sum 0\n"
            "test_empty_nanos_count 0\n"
            "test_empty_nanos{quantile=\"0.5\"} 0.0\n"
            "test_empty_nanos{quantile=\"0.9\"} 0.0\n"
            "test_empty_nanos{quantile=\"0.99\"} 0.0\n");
}

TEST(ExpositionTest, GlobalRenderIncludesRegisteredMetrics) {
  Registry::Global().counter("test_exposition_global_total").Inc(5);
  Registry::Global().histogram("test_exposition_global_nanos").Record(100);
  const std::string text = RenderPrometheusText();
  EXPECT_NE(text.find("test_exposition_global_total 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_exposition_global_nanos_count"),
            std::string::npos);
}

TEST(ExpositionTest, SummarizeHistogramsMatchesSnapshotQuantiles) {
  Histogram& histogram =
      Registry::Global().histogram("test_exposition_summary_nanos");
  histogram.Record(1);
  histogram.Record(2);
  histogram.Record(4);
  const HistogramSnapshot snap = histogram.Snapshot();
  bool found = false;
  for (const HistogramSummary& s : SummarizeHistograms()) {
    if (s.name != "test_exposition_summary_nanos") continue;
    found = true;
    EXPECT_EQ(s.count, snap.count);
    EXPECT_EQ(s.sum, snap.sum);
    EXPECT_DOUBLE_EQ(s.p50, snap.Quantile(0.5));
    EXPECT_DOUBLE_EQ(s.p99, snap.Quantile(0.99));
  }
  EXPECT_TRUE(found);
}

TEST(ExpositionTest, SummarizeHistogramsSkipsCountersAndGauges) {
  Registry::Global().counter("test_exposition_skip_total").Inc();
  Registry::Global().gauge("test_exposition_skip_level").Set(1);
  for (const HistogramSummary& s : SummarizeHistograms()) {
    EXPECT_NE(s.name, "test_exposition_skip_total");
    EXPECT_NE(s.name, "test_exposition_skip_level");
  }
}

}  // namespace
}  // namespace obs
}  // namespace jinfer
