// The clock seam (util/stopwatch.h): FakeClock makes every duration
// decision in the runtime an exact assertion instead of a sleep — span
// timing through Stopwatch, the cache's failure-backoff window, and the
// hosted-session idle reaper all crank the same injected clock here.

#include "util/stopwatch.h"

#include <chrono>

#include <gtest/gtest.h>

#include "core/strategy.h"
#include "runtime/index_cache.h"
#include "runtime/session.h"
#include "runtime/session_manager.h"
#include "util/failpoint.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace obs {
namespace {

using std::chrono::milliseconds;

class ClockTest : public ::testing::Test {
 protected:
  void SetUp() override { util::Failpoints::Reset(); }
  void TearDown() override { util::Failpoints::Reset(); }
};

TEST_F(ClockTest, SystemClockIsMonotonicAndNonNull) {
  const util::MonotonicClock* clock = util::SystemClock();
  ASSERT_NE(clock, nullptr);
  const uint64_t a = clock->NowNanos();
  const uint64_t b = clock->NowNanos();
  EXPECT_LE(a, b);
}

TEST_F(ClockTest, FakeClockAdvancesOnlyWhenTold) {
  util::FakeClock clock(1000);
  EXPECT_EQ(clock.NowNanos(), 1000u);
  EXPECT_EQ(clock.NowNanos(), 1000u);
  clock.AdvanceNanos(500);
  EXPECT_EQ(clock.NowNanos(), 1500u);
  clock.Advance(milliseconds(2));
  EXPECT_EQ(clock.NowNanos(), 1500u + 2000000u);
}

TEST_F(ClockTest, StopwatchOnFakeClockIsExact) {
  util::FakeClock clock(42);
  util::Stopwatch watch(&clock);
  EXPECT_EQ(watch.StartNanos(), 42u);
  EXPECT_EQ(watch.ElapsedNanos(), 0u);
  clock.AdvanceNanos(1234567);
  EXPECT_EQ(watch.ElapsedNanos(), 1234567u);
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 1234567e-9);
  EXPECT_EQ(watch.ElapsedMicros(), 1234);
  watch.Reset();
  EXPECT_EQ(watch.StartNanos(), 42u + 1234567u);
  EXPECT_EQ(watch.ElapsedNanos(), 0u);
}

TEST_F(ClockTest, StopwatchClampsABackwardClockToZero) {
  // MonotonicClock promises non-decreasing, but Stopwatch still refuses to
  // return a negative-wrapped duration if an implementation misbehaves.
  util::FakeClock clock(100);
  util::Stopwatch watch(&clock);
  EXPECT_EQ(watch.ElapsedNanos(), 0u);
}

TEST_F(ClockTest, CacheBackoffWindowExpiresOnTheInjectedClock) {
  auto inst = workload::GenerateSynthetic({2, 2, 15, 4}, 3);
  ASSERT_TRUE(inst.ok());

  util::FakeClock clock;
  runtime::IndexCacheOptions options;
  options.clock = &clock;
  options.failure_backoff_base = milliseconds(100);
  options.failure_backoff_max = milliseconds(5000);
  runtime::IndexCache cache(options);

  // One injected transient build failure arms a 100 ms window.
  ASSERT_TRUE(util::Failpoints::Arm("cache.build", "count:1").ok());
  EXPECT_FALSE(cache.GetOrBuild(inst->r, inst->p).ok());

  // Inside the window every lookup fails fast without building.
  EXPECT_TRUE(
      cache.GetOrBuild(inst->r, inst->p).status().IsUnavailable());
  clock.Advance(milliseconds(99));
  EXPECT_TRUE(
      cache.GetOrBuild(inst->r, inst->p).status().IsUnavailable());
  EXPECT_EQ(cache.stats().fail_fast, 2u);

  // One more tick crosses the boundary: the next lookup retries for real
  // and succeeds (the failpoint retired itself after one trip).
  clock.Advance(milliseconds(2));
  EXPECT_TRUE(cache.GetOrBuild(inst->r, inst->p).ok());
  EXPECT_EQ(cache.stats().fail_fast, 2u);
}

TEST_F(ClockTest, ReapIdleHostedIsDeterministicOnTheInjectedClock) {
  auto inst = workload::GenerateSynthetic({2, 2, 15, 4}, 5);
  ASSERT_TRUE(inst.ok());
  auto index = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());

  util::FakeClock clock;
  runtime::SessionManager::Options options;
  options.clock = &clock;
  runtime::SessionManager manager(options);

  auto make = [&index]() -> util::Result<runtime::Session> {
    return runtime::Session(
        *index, core::MakeStrategy(core::StrategyKind::kTopDown));
  };
  auto first = manager.OpenHosted(make);
  ASSERT_TRUE(first.ok());
  clock.Advance(milliseconds(500));
  auto second = manager.OpenHosted(make);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(manager.hosted_open(), 2u);

  // At t=1500ms the first session is 1500ms idle, the second 1000ms: a
  // 1200ms window reaps exactly the first — no sleeps, no slack.
  clock.Advance(milliseconds(1000));
  EXPECT_EQ(manager.ReapIdleHosted(milliseconds(1200)), 1u);
  EXPECT_EQ(manager.hosted_open(), 1u);
  EXPECT_FALSE(manager.AcquireHosted(*first).ok());
  ASSERT_TRUE(manager.AcquireHosted(*second).ok());
  manager.ReleaseHosted(*second);

  // Touching a session (the release above) restarts its idle clock.
  clock.Advance(milliseconds(1100));
  EXPECT_EQ(manager.ReapIdleHosted(milliseconds(1200)), 0u);
  clock.Advance(milliseconds(200));
  EXPECT_EQ(manager.ReapIdleHosted(milliseconds(1200)), 1u);
  EXPECT_EQ(manager.hosted_open(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace jinfer
