// Registry, counter/gauge/histogram semantics, and the quantile arithmetic
// the exposition layer and the server's StatsOk summaries both rely on
// (DESIGN.md §13.1). The concurrency tests pin the wait-free contract:
// sharded increments lose nothing under 8 writers, and readers only ever
// see sums of completed relaxed adds.

#include "obs/metrics.h"

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace jinfer {
namespace obs {
namespace {

/// Tests that flip the kill switch must restore it — the suites share one
/// process and every later recording depends on the default-on state.
class MetricsTest : public ::testing::Test {
 protected:
  void TearDown() override { SetMetricsEnabled(true); }
};

TEST_F(MetricsTest, CounterSumsConcurrentIncrementsExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Inc();
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, CounterIncByNAccumulates) {
  Counter counter;
  counter.Inc(3);
  counter.Inc(0);
  counter.Inc(39);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), -3);
  gauge.Set(0);
  EXPECT_EQ(gauge.Value(), 0);
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds exactly 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(HistogramBucket(0), 0u);
  EXPECT_EQ(HistogramBucket(1), 1u);
  EXPECT_EQ(HistogramBucket(2), 2u);
  EXPECT_EQ(HistogramBucket(3), 2u);
  EXPECT_EQ(HistogramBucket(4), 3u);
  EXPECT_EQ(HistogramBucket(7), 3u);
  EXPECT_EQ(HistogramBucket(8), 4u);
  EXPECT_EQ(HistogramBucket((uint64_t{1} << 63) - 1), 63u);
  EXPECT_EQ(HistogramBucket(uint64_t{1} << 63), 64u);
  EXPECT_EQ(HistogramBucket(UINT64_MAX), 64u);

  EXPECT_EQ(HistogramSnapshot::BucketLower(0), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketUpper(0), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketLower(1), 1u);
  EXPECT_EQ(HistogramSnapshot::BucketUpper(1), 1u);
  EXPECT_EQ(HistogramSnapshot::BucketLower(4), 8u);
  EXPECT_EQ(HistogramSnapshot::BucketUpper(4), 15u);
  EXPECT_EQ(HistogramSnapshot::BucketLower(64), uint64_t{1} << 63);
  EXPECT_EQ(HistogramSnapshot::BucketUpper(64), UINT64_MAX);
}

TEST_F(MetricsTest, HistogramRecordsExtremesWithoutLoss) {
  Histogram histogram;
  histogram.Record(0);
  histogram.Record(UINT64_MAX);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[64], 1u);
  EXPECT_EQ(snap.sum, UINT64_MAX);  // 0 + max, wrap-free.
}

TEST_F(MetricsTest, QuantileGoldens) {
  // One sample per bucket 1/2/3: values 1, 2, 4. Rank selection is
  // ceil(q*count) clamped to >= 1; interpolation is the rank's position
  // among the bucket's own samples — all deterministic, so exact doubles.
  Histogram histogram;
  histogram.Record(1);
  histogram.Record(2);
  histogram.Record(4);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 7u);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 1.0);   // rank 1 -> bucket 1.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 3.0);   // rank 2 -> top of [2,3].
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 7.0);  // rank 3 -> top of [4,7].
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 7.0);
}

TEST_F(MetricsTest, QuantileInterpolatesWithinABucket) {
  // 100 samples all in bucket 10 ([512, 1023]): p50 sits halfway up the
  // bucket, p99 at the 99% position — linear interpolation, not midpoint.
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Record(1000);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 512.0 + 511.0 * 0.5);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 512.0 + 511.0 * 0.99);
}

TEST_F(MetricsTest, QuantileOfEmptyHistogramIsZero) {
  Histogram histogram;
  EXPECT_DOUBLE_EQ(histogram.Snapshot().Quantile(0.5), 0.0);
}

TEST_F(MetricsTest, HistogramSumsConcurrentRecordsExactly) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&histogram, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<uint64_t>(t) + 1);
      }
    });
  }
  for (auto& t : pool) t.join();
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  // Sum of t+1 for t in [0, 8) times kPerThread.
  EXPECT_EQ(snap.sum, kPerThread * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
}

TEST_F(MetricsTest, DisabledRecordingIsANoOp) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
  counter.Inc();
  gauge.Set(5);
  histogram.Record(123);
  SetMetricsEnabled(true);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(histogram.Snapshot().count, 0u);
}

TEST_F(MetricsTest, LocalHistogramMergeMatchesDirectRecording) {
  // Batched recording must be observationally identical to direct
  // recording: same per-bucket counts, sum, count and quantiles.
  Histogram direct;
  Histogram batched;
  LocalHistogram local;
  const uint64_t samples[] = {0, 1, 7, 8, 9, 1023, 1024, 4096, 4097, 1u << 20};
  for (uint64_t v : samples) {
    direct.Record(v);
    local.Record(v);
  }
  EXPECT_EQ(local.count(), 10u);
  batched.Merge(local);
  EXPECT_EQ(local.count(), 0u);  // Merge consumes the batch.
  const HistogramSnapshot a = direct.Snapshot();
  const HistogramSnapshot b = batched.Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST_F(MetricsTest, LocalHistogramReusableAcrossMerges) {
  // The session hot path merges every few dozen samples into the same
  // accumulator object; totals must accumulate, never double-count.
  Histogram shared;
  LocalHistogram local;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t v = 0; v < 100; ++v) local.Record(v);
    shared.Merge(local);
  }
  const HistogramSnapshot snap = shared.Snapshot();
  EXPECT_EQ(snap.count, 300u);
  EXPECT_EQ(snap.sum, 3u * (99 * 100 / 2));
}

TEST_F(MetricsTest, LocalHistogramMoveResetsSourceSoFlushIsNoOp) {
  Histogram shared;
  LocalHistogram a;
  a.Record(42);
  a.Record(7);
  LocalHistogram b = std::move(a);
  shared.Merge(a);  // Moved-from flush: must contribute nothing.
  EXPECT_EQ(shared.Snapshot().count, 0u);
  shared.Merge(b);
  const HistogramSnapshot snap = shared.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 49u);
}

TEST_F(MetricsTest, LocalHistogramMergeWhileDisabledDiscardsBatch) {
  // The kill switch drops batched samples too — a re-enable must not
  // resurrect measurements taken while disabled.
  Histogram shared;
  LocalHistogram local;
  local.Record(5);
  SetMetricsEnabled(false);
  shared.Merge(local);
  SetMetricsEnabled(true);
  EXPECT_EQ(local.count(), 0u);
  EXPECT_EQ(shared.Snapshot().count, 0u);
}

TEST_F(MetricsTest, RegistryReturnsSameObjectForSameName) {
  Registry& registry = Registry::Global();
  Counter& a = registry.counter("test_metrics_same_name_total");
  Counter& b = registry.counter("test_metrics_same_name_total");
  EXPECT_EQ(&a, &b);
  Histogram& ha = registry.histogram("test_metrics_same_name_nanos");
  Histogram& hb = registry.histogram("test_metrics_same_name_nanos");
  EXPECT_EQ(&ha, &hb);
}

TEST_F(MetricsTest, RegistrySnapshotSeesRegisteredValues) {
  Registry& registry = Registry::Global();
  registry.counter("test_metrics_snapshot_total").Inc(5);
  registry.gauge("test_metrics_snapshot_level").Set(-2);
  registry.histogram("test_metrics_snapshot_nanos").Record(9);
  bool saw_counter = false, saw_gauge = false, saw_histogram = false;
  for (const MetricSnapshot& m : registry.Snapshot()) {
    if (m.name == "test_metrics_snapshot_total") {
      saw_counter = true;
      EXPECT_EQ(m.kind, MetricKind::kCounter);
      EXPECT_EQ(m.counter, 5u);
    } else if (m.name == "test_metrics_snapshot_level") {
      saw_gauge = true;
      EXPECT_EQ(m.kind, MetricKind::kGauge);
      EXPECT_EQ(m.gauge, -2);
    } else if (m.name == "test_metrics_snapshot_nanos") {
      saw_histogram = true;
      EXPECT_EQ(m.kind, MetricKind::kHistogram);
      EXPECT_EQ(m.histogram.count, 1u);
      EXPECT_EQ(m.histogram.sum, 9u);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histogram);
}

TEST_F(MetricsTest, RegistryRegistrationIsThreadSafe) {
  // 8 threads race to register and increment the same name; exactly one
  // object must win and every increment must land on it.
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 1000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      Counter& counter =
          Registry::Global().counter("test_metrics_race_total");
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Inc();
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(Registry::Global().counter("test_metrics_race_total").Value(),
            kThreads * kPerThread);
}

}  // namespace
}  // namespace obs
}  // namespace jinfer
