#include "semijoin/semijoin_instance.h"

#include <gtest/gtest.h>

#include "relational/join.h"
#include "testing/paper_fixtures.h"
#include "util/rng.h"

namespace jinfer {
namespace semi {
namespace {

SemijoinInstance Example21Instance() {
  auto inst = SemijoinInstance::Build(testing::Example21R(),
                                      testing::Example21P());
  JINFER_CHECK(inst.ok(), "fixture");
  return std::move(inst).ValueOrDie();
}

TEST(SemijoinInstanceTest, Example21SemijoinsFromSection2) {
  SemijoinInstance inst = Example21Instance();
  const core::Omega& omega = inst.omega();
  // R0 ⋉θ1 P0 = {t2, t4}; θ1 = {(A1,B1),(A2,B3)}.
  EXPECT_EQ(inst.Semijoin(testing::Pred(omega, {{0, 0}, {1, 2}})),
            (std::vector<size_t>{1, 3}));
  // R0 ⋉θ2 P0 = {t1, t4}; θ2 = {(A2,B2)}.
  EXPECT_EQ(inst.Semijoin(testing::Pred(omega, {{1, 1}})),
            (std::vector<size_t>{0, 3}));
  // R0 ⋉θ3 P0 = ∅; θ3 = {(A2,B1),(A2,B2),(A2,B3)}.
  EXPECT_TRUE(inst.Semijoin(testing::Pred(omega, {{1, 0}, {1, 1}, {1, 2}}))
                  .empty());
}

TEST(SemijoinInstanceTest, EmptyPredicateSelectsAllRows) {
  SemijoinInstance inst = Example21Instance();
  EXPECT_EQ(inst.Semijoin(core::JoinPredicate()).size(), 4u);
}

TEST(SemijoinInstanceTest, MaximalSignaturesAreMaximal) {
  SemijoinInstance inst = Example21Instance();
  for (size_t row = 0; row < inst.num_rows(); ++row) {
    const auto& sigs = inst.MaximalSignatures(row);
    EXPECT_FALSE(sigs.empty());
    for (size_t a = 0; a < sigs.size(); ++a) {
      for (size_t b = 0; b < sigs.size(); ++b) {
        if (a != b) EXPECT_FALSE(sigs[a].IsStrictSubsetOf(sigs[b]));
      }
    }
  }
}

TEST(SemijoinInstanceTest, SelectsAgreesWithRelationalEvaluation) {
  // Cross-validate against rel::SemijoinIndices on random predicates.
  rel::Relation r = testing::Example21R();
  rel::Relation p = testing::Example21P();
  SemijoinInstance inst = Example21Instance();
  const core::Omega& omega = inst.omega();
  util::Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    core::JoinPredicate theta;
    for (size_t b = 0; b < omega.size(); ++b) {
      if (rng.NextBool(0.35)) theta.Set(b);
    }
    auto expected = rel::SemijoinIndices(r, p, omega.ToAttrPairs(theta));
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(inst.Semijoin(theta), *expected) << omega.Format(theta);
  }
}

TEST(SemijoinInstanceTest, ConsistentWithSection6Sample) {
  // §6: S'+ = {t1, t2}, S'− = {t3}; θ' = {(A1,B2)} is consistent.
  SemijoinInstance inst = Example21Instance();
  RowSample sample = {{0, core::Label::kPositive},
                      {1, core::Label::kPositive},
                      {2, core::Label::kNegative}};
  EXPECT_TRUE(inst.ConsistentWith(testing::Pred(inst.omega(), {{0, 1}}),
                                  sample));
  // Sanity: the empty predicate selects t3 too, hence is inconsistent.
  EXPECT_FALSE(inst.ConsistentWith(core::JoinPredicate(), sample));
}

TEST(SemijoinInstanceTest, EquivalentOnInstance) {
  SemijoinInstance inst = Example21Instance();
  const core::Omega& omega = inst.omega();
  core::JoinPredicate theta3 = testing::Pred(omega, {{1, 0}, {1, 1}, {1, 2}});
  EXPECT_TRUE(inst.EquivalentOnInstance(theta3, omega.Full()));
  EXPECT_FALSE(inst.EquivalentOnInstance(theta3, core::JoinPredicate()));
}

TEST(SemijoinInstanceTest, EmptyRelationRejected) {
  auto r = rel::Relation::Make("R", {"A"}, {});
  auto p = rel::Relation::Make("P", {"B"}, {{1}});
  EXPECT_FALSE(SemijoinInstance::Build(*r, *p).ok());
}

}  // namespace
}  // namespace semi
}  // namespace jinfer
