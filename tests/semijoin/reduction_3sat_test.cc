#include "semijoin/reduction_3sat.h"

#include <gtest/gtest.h>

#include "sat/dpll.h"
#include "sat/random_cnf.h"
#include "semijoin/consistency.h"
#include "util/rng.h"

namespace jinfer {
namespace semi {
namespace {

/// The appendix example φ0 (with negations recovered from the Pφ0 table):
/// (x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ ¬x3 ∨ x4).
sat::Cnf Phi0() {
  sat::Cnf cnf(4);
  cnf.AddTernary(1, 2, 3);
  cnf.AddTernary(-1, -3, 4);
  return cnf;
}

TEST(ReductionShapeTest, Phi0TableDimensions) {
  auto out = ReduceFrom3Sat(Phi0());
  ASSERT_TRUE(out.ok());
  // Rφ0: k + 1 + n = 2 + 1 + 4 = 7 rows, 1 + n = 5 attributes.
  EXPECT_EQ(out->r.num_rows(), 7u);
  EXPECT_EQ(out->r.num_attributes(), 5u);
  // Pφ0: 3k + 1 + n = 6 + 1 + 4 = 11 rows, 1 + 2n = 9 attributes.
  EXPECT_EQ(out->p.num_rows(), 11u);
  EXPECT_EQ(out->p.num_attributes(), 9u);
  // Sφ0: k positives, n + 1 negatives.
  size_t positives = 0, negatives = 0;
  for (const auto& ex : out->sample) {
    (ex.label == core::Label::kPositive ? positives : negatives) += 1;
  }
  EXPECT_EQ(positives, 2u);
  EXPECT_EQ(negatives, 5u);
}

TEST(ReductionShapeTest, Phi0CellValuesMatchAppendix) {
  auto out = ReduceFrom3Sat(Phi0());
  ASSERT_TRUE(out.ok());
  // tR,1 = (c1+, 1, 2, 3, 4).
  EXPECT_EQ(out->r.at(0, 0), rel::Value("c1+"));
  EXPECT_EQ(out->r.at(0, 2), rel::Value(2));
  // t'R,0 = (X, 1, 2, 3, 4).
  EXPECT_EQ(out->r.at(2, 0), rel::Value("X"));
  // tP,11 (clause 1, literal x1, positive): B1t = 1, B1f = ⊥.
  EXPECT_EQ(out->p.at(0, 0), rel::Value("c1+"));
  EXPECT_EQ(out->p.at(0, 1), rel::Value(1));
  EXPECT_TRUE(out->p.at(0, 2).is_null());
  // tP,21 (clause 2, literal ¬x1): B1t = ⊥, B1f = 1.
  EXPECT_EQ(out->p.at(3, 0), rel::Value("c2+"));
  EXPECT_TRUE(out->p.at(3, 1).is_null());
  EXPECT_EQ(out->p.at(3, 2), rel::Value(1));
  // t'P,0 = (Y, 1,1,2,2,3,3,4,4).
  EXPECT_EQ(out->p.at(6, 0), rel::Value("Y"));
  EXPECT_EQ(out->p.at(6, 8), rel::Value(4));
  // t'P,1 = (x1*, ⊥,⊥,2,2,3,3,4,4).
  EXPECT_EQ(out->p.at(7, 0), rel::Value("x1*"));
  EXPECT_TRUE(out->p.at(7, 1).is_null());
  EXPECT_TRUE(out->p.at(7, 2).is_null());
  EXPECT_EQ(out->p.at(7, 3), rel::Value(2));
}

TEST(ReductionTest, Phi0IsSatisfiableAndReductionConsistent) {
  sat::Cnf phi0 = Phi0();
  EXPECT_TRUE(sat::DpllSolver().Solve(phi0).satisfiable);
  auto out = ReduceFrom3Sat(phi0);
  ASSERT_TRUE(out.ok());
  auto inst = SemijoinInstance::Build(out->r, out->p);
  ASSERT_TRUE(inst.ok());
  ConsistencyResult result = CheckConsistencySat(*inst, out->sample);
  EXPECT_TRUE(result.consistent);
}

TEST(ReductionTest, UnsatisfiableFormulaGivesInconsistentInstance) {
  // (x∨y∨z) ∧ all-negative combinations forces UNSAT with 3 vars:
  // enumerate all 8 sign patterns of a 3-clause — jointly unsatisfiable.
  sat::Cnf cnf(3);
  for (int mask = 0; mask < 8; ++mask) {
    cnf.AddTernary((mask & 1) ? 1 : -1, (mask & 2) ? 2 : -2,
                   (mask & 4) ? 3 : -3);
  }
  ASSERT_FALSE(sat::DpllSolver().Solve(cnf).satisfiable);
  auto out = ReduceFrom3Sat(cnf);
  ASSERT_TRUE(out.ok());
  auto inst = SemijoinInstance::Build(out->r, out->p);
  ASSERT_TRUE(inst.ok());
  EXPECT_FALSE(CheckConsistencySat(*inst, out->sample).consistent);
}

TEST(ReductionTest, WitnessDecodesToSatisfyingValuation) {
  sat::Cnf phi0 = Phi0();
  auto out = ReduceFrom3Sat(phi0);
  ASSERT_TRUE(out.ok());
  auto inst = SemijoinInstance::Build(out->r, out->p);
  ASSERT_TRUE(inst.ok());
  ConsistencyResult result = CheckConsistencySat(*inst, out->sample);
  ASSERT_TRUE(result.consistent);
  std::vector<bool> valuation =
      ValuationFromPredicate(phi0, inst->omega(), result.witness);
  EXPECT_TRUE(phi0.IsSatisfiedBy(valuation));
}

TEST(ReductionValidationTest, RejectsNon3Cnf) {
  sat::Cnf two(2);
  two.AddBinary(1, 2);
  EXPECT_TRUE(ReduceFrom3Sat(two).status().IsInvalidArgument());

  sat::Cnf repeated(3);
  repeated.AddTernary(1, 1, 2);
  EXPECT_TRUE(ReduceFrom3Sat(repeated).status().IsInvalidArgument());

  sat::Cnf empty(3);
  EXPECT_TRUE(ReduceFrom3Sat(empty).status().IsInvalidArgument());
}

// --- Property: φ satisfiable ⇔ reduction ∈ CONS⋉ ------------------------------

class ReductionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReductionPropertyTest, RoundTripMatchesDpll) {
  util::Rng rng(GetParam());
  // 5 variables, clause counts straddling the threshold.
  for (size_t clauses : {8u, 15u, 21u, 30u}) {
    sat::Cnf phi = sat::Random3Cnf(5, clauses, rng);
    bool sat_direct = sat::DpllSolver().Solve(phi).satisfiable;

    auto out = ReduceFrom3Sat(phi);
    ASSERT_TRUE(out.ok());
    auto inst = SemijoinInstance::Build(out->r, out->p);
    ASSERT_TRUE(inst.ok());
    ConsistencyResult via_semijoin = CheckConsistencySat(*inst, out->sample);
    EXPECT_EQ(via_semijoin.consistent, sat_direct) << "clauses=" << clauses;

    if (via_semijoin.consistent) {
      std::vector<bool> valuation =
          ValuationFromPredicate(phi, inst->omega(), via_semijoin.witness);
      EXPECT_TRUE(phi.IsSatisfiedBy(valuation));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionPropertyTest,
                         ::testing::Range(uint64_t{400}, uint64_t{410}));

}  // namespace
}  // namespace semi
}  // namespace jinfer
