#include "semijoin/interactive.h"

#include <gtest/gtest.h>

#include "testing/paper_fixtures.h"
#include "util/rng.h"

namespace jinfer {
namespace semi {
namespace {

SemijoinInstance Example21Instance() {
  auto inst = SemijoinInstance::Build(testing::Example21R(),
                                      testing::Example21P());
  JINFER_CHECK(inst.ok(), "fixture");
  return std::move(inst).ValueOrDie();
}

TEST(SemijoinInferenceTest, InfersEquivalentOfSection6Goal) {
  SemijoinInstance inst = Example21Instance();
  core::JoinPredicate goal = testing::Pred(inst.omega(), {{0, 1}});
  GoalSemijoinOracle oracle(inst, goal);
  auto result = RunSemijoinInference(inst, oracle);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(inst.EquivalentOnInstance(result->predicate, goal));
  EXPECT_LE(result->num_interactions, inst.num_rows());
  EXPECT_GT(result->sat_calls, 0u);
}

TEST(SemijoinInferenceTest, EmptyGoalSelectsEverything) {
  SemijoinInstance inst = Example21Instance();
  core::JoinPredicate goal;  // selects all rows
  GoalSemijoinOracle oracle(inst, goal);
  auto result = RunSemijoinInference(inst, oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(inst.EquivalentOnInstance(result->predicate, goal));
  EXPECT_EQ(inst.Semijoin(result->predicate).size(), inst.num_rows());
}

TEST(SemijoinInferenceTest, FullOmegaGoalSelectsNothing) {
  SemijoinInstance inst = Example21Instance();
  core::JoinPredicate goal = inst.omega().Full();
  GoalSemijoinOracle oracle(inst, goal);
  auto result = RunSemijoinInference(inst, oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(inst.EquivalentOnInstance(result->predicate, goal));
  EXPECT_TRUE(inst.Semijoin(result->predicate).empty());
}

TEST(SemijoinInferenceTest, SampleStaysWithinRowBounds) {
  SemijoinInstance inst = Example21Instance();
  core::JoinPredicate goal = testing::Pred(inst.omega(), {{0, 0}, {1, 2}});
  GoalSemijoinOracle oracle(inst, goal);
  auto result = RunSemijoinInference(inst, oracle);
  ASSERT_TRUE(result.ok());
  for (const auto& ex : result->sample) {
    EXPECT_LT(ex.r_row, inst.num_rows());
  }
  EXPECT_EQ(result->sample.size(), result->num_interactions);
}

/// Lies on every answer.
class AdversarialOracle : public SemijoinOracle {
 public:
  AdversarialOracle(const SemijoinInstance& instance,
                    core::JoinPredicate goal)
      : truth_(instance, goal) {}
  core::Label LabelRow(size_t r_row) override {
    return truth_.LabelRow(r_row) == core::Label::kPositive
               ? core::Label::kNegative
               : core::Label::kPositive;
  }

 private:
  GoalSemijoinOracle truth_;
};

TEST(SemijoinInferenceTest, AdversarialOracleEitherFailsOrStaysConsistent) {
  // As with equijoins, lies on informative rows are individually
  // consistent; the run must either error with InconsistentSample or end
  // with a predicate consistent with the (lied) labels.
  SemijoinInstance inst = Example21Instance();
  core::JoinPredicate goal = testing::Pred(inst.omega(), {{1, 1}});
  AdversarialOracle oracle(inst, goal);
  auto result = RunSemijoinInference(inst, oracle);
  if (result.ok()) {
    EXPECT_TRUE(inst.ConsistentWith(result->predicate, result->sample));
  } else {
    EXPECT_TRUE(result.status().IsInconsistentSample());
  }
}

class SemijoinInferencePropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SemijoinInferencePropertyTest, RandomGoalsOnRandomInstances) {
  util::Rng rng(GetParam());
  std::vector<rel::Row> r_rows, p_rows;
  for (int i = 0; i < 6; ++i) {
    r_rows.push_back({rng.NextInRange(0, 3), rng.NextInRange(0, 3)});
    p_rows.push_back({rng.NextInRange(0, 3), rng.NextInRange(0, 3)});
  }
  auto r = rel::Relation::Make("R", {"A1", "A2"}, std::move(r_rows));
  auto p = rel::Relation::Make("P", {"B1", "B2"}, std::move(p_rows));
  auto inst = SemijoinInstance::Build(*r, *p);
  ASSERT_TRUE(inst.ok());

  for (int trial = 0; trial < 4; ++trial) {
    core::JoinPredicate goal;
    for (size_t b = 0; b < inst->omega().size(); ++b) {
      if (rng.NextBool(0.4)) goal.Set(b);
    }
    GoalSemijoinOracle oracle(*inst, goal);
    auto result = RunSemijoinInference(*inst, oracle);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(inst->EquivalentOnInstance(result->predicate, goal))
        << inst->omega().Format(goal) << " vs "
        << inst->omega().Format(result->predicate);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemijoinInferencePropertyTest,
                         ::testing::Range(uint64_t{500}, uint64_t{508}));

}  // namespace
}  // namespace semi
}  // namespace jinfer
