#include "semijoin/consistency.h"

#include <gtest/gtest.h>

#include "testing/paper_fixtures.h"
#include "util/rng.h"

namespace jinfer {
namespace semi {
namespace {

SemijoinInstance Example21Instance() {
  auto inst = SemijoinInstance::Build(testing::Example21R(),
                                      testing::Example21P());
  JINFER_CHECK(inst.ok(), "fixture");
  return std::move(inst).ValueOrDie();
}

TEST(SemijoinConsistencyTest, Section6SampleIsConsistent) {
  SemijoinInstance inst = Example21Instance();
  RowSample sample = {{0, core::Label::kPositive},
                      {1, core::Label::kPositive},
                      {2, core::Label::kNegative}};
  ConsistencyResult result = CheckConsistencySat(inst, sample);
  ASSERT_TRUE(result.consistent);
  EXPECT_TRUE(inst.ConsistentWith(result.witness, sample));
}

TEST(SemijoinConsistencyTest, EmptySampleIsConsistent) {
  SemijoinInstance inst = Example21Instance();
  EXPECT_TRUE(CheckConsistencySat(inst, {}).consistent);
}

TEST(SemijoinConsistencyTest, AllPositiveIsConsistentViaEmptyPredicate) {
  SemijoinInstance inst = Example21Instance();
  RowSample sample;
  for (size_t i = 0; i < inst.num_rows(); ++i) {
    sample.push_back({i, core::Label::kPositive});
  }
  ConsistencyResult result = CheckConsistencySat(inst, sample);
  ASSERT_TRUE(result.consistent);
}

TEST(SemijoinConsistencyTest, ConflictingLabelsOnOneRowInconsistent) {
  SemijoinInstance inst = Example21Instance();
  RowSample sample = {{0, core::Label::kPositive},
                      {0, core::Label::kNegative}};
  EXPECT_FALSE(CheckConsistencySat(inst, sample).consistent);
}

TEST(SemijoinConsistencyTest, IndistinguishableRowsWithOppositeLabels) {
  // Two identical R rows cannot be separated by any predicate.
  auto r = rel::Relation::Make("R", {"A"}, {{1}, {1}});
  auto p = rel::Relation::Make("P", {"B"}, {{1}});
  auto inst = SemijoinInstance::Build(*r, *p);
  ASSERT_TRUE(inst.ok());
  RowSample sample = {{0, core::Label::kPositive},
                      {1, core::Label::kNegative}};
  EXPECT_FALSE(CheckConsistencySat(*inst, sample).consistent);
  EXPECT_EQ(CheckConsistencyBruteForce(*inst, sample), std::nullopt);
}

TEST(SemijoinConsistencyTest, BruteForceFindsMostGeneralWitness) {
  SemijoinInstance inst = Example21Instance();
  RowSample sample = {{0, core::Label::kPositive},
                      {1, core::Label::kPositive},
                      {2, core::Label::kNegative}};
  auto witness = CheckConsistencyBruteForce(inst, sample);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(inst.ConsistentWith(*witness, sample));
  // Enumeration is by size: a singleton witness must exist ({(A1,B2)} per
  // §6), so the returned one has size ≤ 1 — and size 0 is inconsistent.
  EXPECT_EQ(witness->Count(), 1u);
}

// --- Property: SAT encoding ≡ brute force -------------------------------------

class SemijoinConsistencyPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SemijoinConsistencyPropertyTest, SatMatchesBruteForce) {
  util::Rng rng(GetParam());
  // Small random instances: 2x2 attributes (|Ω| = 4), 6x5 rows.
  std::vector<rel::Row> r_rows, p_rows;
  for (int i = 0; i < 6; ++i) {
    r_rows.push_back({rng.NextInRange(0, 3), rng.NextInRange(0, 3)});
  }
  for (int i = 0; i < 5; ++i) {
    p_rows.push_back({rng.NextInRange(0, 3), rng.NextInRange(0, 3)});
  }
  auto r = rel::Relation::Make("R", {"A1", "A2"}, std::move(r_rows));
  auto p = rel::Relation::Make("P", {"B1", "B2"}, std::move(p_rows));
  auto inst = SemijoinInstance::Build(*r, *p);
  ASSERT_TRUE(inst.ok());

  // Try many random labelings, consistent and not.
  for (int trial = 0; trial < 20; ++trial) {
    RowSample sample;
    for (size_t row = 0; row < inst->num_rows(); ++row) {
      if (rng.NextBool(0.7)) {
        sample.push_back({row, rng.NextBool(0.5) ? core::Label::kPositive
                                                 : core::Label::kNegative});
      }
    }
    ConsistencyResult sat = CheckConsistencySat(*inst, sample);
    auto brute = CheckConsistencyBruteForce(*inst, sample);
    EXPECT_EQ(sat.consistent, brute.has_value()) << "trial " << trial;
    if (sat.consistent) {
      EXPECT_TRUE(inst->ConsistentWith(sat.witness, sample));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemijoinConsistencyPropertyTest,
                         ::testing::Range(uint64_t{300}, uint64_t{315}));

// --- Maximal specificity (extension) --------------------------------------------

TEST(MaximalSpecificityTest, OmegaSubsetIsMaximalWhenNothingExtends) {
  SemijoinInstance inst = Example21Instance();
  const core::Omega& omega = inst.omega();
  RowSample positives = {{1, core::Label::kPositive}};  // t2
  // T-signatures of t2's partners: the atoms present in some partner.
  // θ = {(A1,B1),(A2,B3)} selects t2 (via t2'); is it maximally specific?
  core::JoinPredicate theta = testing::Pred(omega, {{0, 0}, {1, 2}});
  EXPECT_TRUE(inst.ConsistentWith(theta, positives));
  EXPECT_TRUE(IsMaximallySpecificForPositives(inst, positives, theta));
}

TEST(MaximalSpecificityTest, EmptyPredicateIsNotMaximal) {
  SemijoinInstance inst = Example21Instance();
  RowSample positives = {{1, core::Label::kPositive}};
  EXPECT_FALSE(IsMaximallySpecificForPositives(inst, positives,
                                               core::JoinPredicate()));
}

TEST(MaximalSpecificityDeathTest, RequiresPositiveOnlySample) {
  SemijoinInstance inst = Example21Instance();
  RowSample mixed = {{0, core::Label::kNegative}};
  EXPECT_DEATH(
      IsMaximallySpecificForPositives(inst, mixed, core::JoinPredicate()),
      "positive-only");
}

}  // namespace
}  // namespace semi
}  // namespace jinfer
