// Randomized cross-validation of the predicate bitsets against reference
// models — SmallBitset and BitVector underlie every lemma in the core, so
// their set algebra gets differential fuzz suites on top of the unit tests.
//
// Two layers:
//   1. The original SmallBitset-vs-std::bitset<256> algebra fuzz.
//   2. A shared op-sequence fuzzer driving either bitset type and the
//      naive testing::BoolVecModel through identical random op sequences,
//      comparing every observable after every op. Universes are chosen to
//      straddle the word boundaries (63/64/65, 255/256/257) where prefix
//      and growth bugs live, plus the degenerate empty/full sets.

#include <bitset>

#include <gtest/gtest.h>

#include "testing/bitset_model.h"
#include "testing/kernel_backends.h"
#include "util/bit_vector.h"
#include "util/bitset.h"
#include "util/rng.h"
#include "util/simd/dispatch.h"

namespace jinfer {
namespace util {
namespace {

using jinfer::testing::BoolVecModel;
using jinfer::testing::ExpectMatchesModel;

constexpr size_t kBits = SmallBitset::kMaxBits;

struct ModelPair {
  SmallBitset mine;
  std::bitset<kBits> ref;
};

ModelPair RandomSet(Rng& rng, double density) {
  ModelPair out;
  for (size_t b = 0; b < kBits; ++b) {
    if (rng.NextBool(density)) {
      out.mine.Set(b);
      out.ref.set(b);
    }
  }
  return out;
}

class BitsetFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitsetFuzzTest, AlgebraMatchesReference) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    double density = rng.NextDouble();
    ModelPair a = RandomSet(rng, density);
    ModelPair b = RandomSet(rng, density * 0.5);

    EXPECT_EQ((a.mine & b.mine).Count(), (a.ref & b.ref).count());
    EXPECT_EQ((a.mine | b.mine).Count(), (a.ref | b.ref).count());
    EXPECT_EQ((a.mine ^ b.mine).Count(), (a.ref ^ b.ref).count());
    EXPECT_EQ((a.mine - b.mine).Count(), (a.ref & ~b.ref).count());
    EXPECT_EQ(a.mine.Count(), a.ref.count());
    EXPECT_EQ(a.mine.Empty(), a.ref.none());
    EXPECT_EQ(a.mine.Intersects(b.mine), (a.ref & b.ref).any());
    EXPECT_EQ(a.mine.IsSubsetOf(b.mine), (a.ref & ~b.ref).none());
    EXPECT_EQ(a.mine == b.mine, a.ref == b.ref);
  }
}

TEST_P(BitsetFuzzTest, IterationMatchesReference) {
  Rng rng(GetParam() ^ 0x17);
  ModelPair a = RandomSet(rng, 0.2);
  std::vector<size_t> via_foreach;
  a.mine.ForEachSetBit([&](size_t bit) { via_foreach.push_back(bit); });
  std::vector<size_t> via_next;
  for (size_t b = a.mine.FirstSetBit(); b < kBits;
       b = a.mine.NextSetBit(b + 1)) {
    via_next.push_back(b);
  }
  std::vector<size_t> expected;
  for (size_t b = 0; b < kBits; ++b) {
    if (a.ref.test(b)) expected.push_back(b);
  }
  EXPECT_EQ(via_foreach, expected);
  EXPECT_EQ(via_next, expected);
}

TEST_P(BitsetFuzzTest, SubsetIsAPartialOrder) {
  Rng rng(GetParam() ^ 0x99);
  ModelPair a = RandomSet(rng, 0.3);
  ModelPair b = RandomSet(rng, 0.3);
  ModelPair c = RandomSet(rng, 0.3);
  // Reflexivity, antisymmetry, transitivity (via union/intersection).
  EXPECT_TRUE(a.mine.IsSubsetOf(a.mine));
  EXPECT_TRUE((a.mine & b.mine).IsSubsetOf(a.mine));
  EXPECT_TRUE(a.mine.IsSubsetOf(a.mine | b.mine));
  SmallBitset ab = a.mine & b.mine;
  SmallBitset abc = ab & c.mine;
  EXPECT_TRUE(abc.IsSubsetOf(ab));
  EXPECT_TRUE(abc.IsSubsetOf(a.mine));
  if (a.mine.IsSubsetOf(b.mine) && b.mine.IsSubsetOf(a.mine)) {
    EXPECT_EQ(a.mine, b.mine);
  }
}

TEST_P(BitsetFuzzTest, HashEqualityContract) {
  Rng rng(GetParam() ^ 0xfe);
  ModelPair a = RandomSet(rng, 0.4);
  SmallBitset copy = a.mine;
  EXPECT_EQ(copy.Hash(), a.mine.Hash());
  // Flipping any single bit changes the hash (for this mixer, with
  // overwhelming probability; deterministic here since seeds are fixed).
  size_t bit = rng.NextBelow(kBits);
  SmallBitset flipped = a.mine;
  if (flipped.Test(bit)) {
    flipped.Reset(bit);
  } else {
    flipped.Set(bit);
  }
  EXPECT_NE(flipped.Hash(), a.mine.Hash());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsetFuzzTest,
                         ::testing::Range(uint64_t{1000}, uint64_t{1010}));

// ---------------------------------------------------------------------------
// Shared op-sequence fuzzer: both bitset types vs BoolVecModel.
// ---------------------------------------------------------------------------

/// The "no bit" sentinel of each type's search operations.
template <typename B>
size_t NposOf();
template <>
size_t NposOf<SmallBitset>() {
  return SmallBitset::kMaxBits;
}
template <>
size_t NposOf<BitVector>() {
  return BitVector::kNpos;
}

/// Random set of the given universe, mirrored into the model.
template <typename B>
void FillRandom(Rng& rng, size_t universe, double density, B& mine,
                BoolVecModel& ref) {
  for (size_t b = 0; b < universe; ++b) {
    if (rng.NextBool(density)) {
      mine.Set(b);
      ref.Set(b);
    }
  }
}

/// Drives one production bitset and the model through `rounds` random
/// mutating/combining ops over [0, universe), comparing every observable
/// after each op. Also cross-checks the binary predicates and operators
/// against model results each round.
template <typename B>
void RunOpSequence(uint64_t seed, size_t universe, int rounds) {
  SCOPED_TRACE(::testing::Message()
               << "universe=" << universe << " seed=" << seed);
  Rng rng(seed);
  const size_t npos = NposOf<B>();
  B x{};
  BoolVecModel mx;
  FillRandom(rng, universe, rng.NextDouble(), x, mx);
  for (int round = 0; round < rounds; ++round) {
    B y{};
    BoolVecModel my;
    FillRandom(rng, universe, rng.NextDouble(), y, my);
    switch (rng.NextBelow(7)) {
      case 0: {
        size_t bit = rng.NextBelow(universe);
        x.Set(bit);
        mx.Set(bit);
        break;
      }
      case 1: {
        size_t bit = rng.NextBelow(universe);
        x.Reset(bit);
        mx.Reset(bit);
        break;
      }
      case 2:
        x &= y;
        mx = BoolVecModel::And(mx, my);
        break;
      case 3:
        x |= y;
        mx = BoolVecModel::Or(mx, my);
        break;
      case 4:
        x = x - y;
        mx = BoolVecModel::Minus(mx, my);
        break;
      case 5:
        x = x ^ y;
        mx = BoolVecModel::Xor(mx, my);
        break;
      case 6:  // Degenerate endpoints: jump to empty or full.
        if (rng.NextBool(0.5)) {
          x = B{};
          mx = BoolVecModel{};
        } else {
          x = B::AllSet(universe);
          mx = BoolVecModel::AllSet(universe);
        }
        break;
    }
    ASSERT_NO_FATAL_FAILURE(ExpectMatchesModel(x, mx, universe, npos));
    // Binary observables against the model, including the self cases.
    ASSERT_EQ(x.IsSubsetOf(y), mx.IsSubsetOf(my));
    ASSERT_EQ(y.IsSubsetOf(x), my.IsSubsetOf(mx));
    ASSERT_EQ(x.Intersects(y), mx.Intersects(my));
    ASSERT_EQ(x == y, mx.Equals(my));
    ASSERT_EQ((x & y).Count(), BoolVecModel::And(mx, my).Count());
    ASSERT_EQ((x | y).Count(), BoolVecModel::Or(mx, my).Count());
    ASSERT_TRUE(x.IsSubsetOf(x));
    ASSERT_TRUE((x & y).IsSubsetOf(x));
  }
}

/// Universes straddling every word boundary the kernels care about. The
/// SmallBitset instantiation stops at its 256-bit capacity; BitVector
/// continues past it — 511/512/513 straddle the kSimdMinWords dispatch
/// threshold (8 words) where the predicates start routing through the
/// runtime-selected SIMD backend, and 1024/1025 exercise the vector
/// kernels' full-stride and tail paths.
constexpr size_t kSmallUniverses[] = {1, 7, 63, 64, 65, 255, 256};
constexpr size_t kVectorUniverses[] = {1,   7,   63,  64,  65,  127,  128,
                                       129, 255, 256, 257, 300,  511,  512,
                                       513, 1024, 1025};

class SharedBitsetFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SharedBitsetFuzzTest, SmallBitsetOpSequencesMatchModel) {
  for (size_t universe : kSmallUniverses) {
    RunOpSequence<SmallBitset>(GetParam() ^ universe, universe, 40);
  }
}

TEST_P(SharedBitsetFuzzTest, BitVectorOpSequencesMatchModel) {
  for (size_t universe : kVectorUniverses) {
    RunOpSequence<BitVector>(GetParam() ^ universe, universe, 40);
  }
}

TEST_P(SharedBitsetFuzzTest, BitVectorOpSequencesMatchModelOnEveryBackend) {
  // Identical seeds replayed under every supported kernel backend: the
  // op-sequence outcomes must not depend on which backend the word
  // predicates dispatch to. Universes at and past the dispatch threshold
  // only — below it the backends are not involved.
  for (simd::KernelBackend backend : simd::SupportedKernelBackends()) {
    jinfer::testing::ScopedKernelBackend forced(backend);
    for (size_t universe : {511, 512, 513, 1024, 1025}) {
      SCOPED_TRACE(simd::KernelBackendName(backend));
      RunOpSequence<BitVector>(GetParam() ^ universe, universe, 25);
    }
  }
}

TEST_P(SharedBitsetFuzzTest, BitVectorAgreesWithSmallBitsetInsideCapacity) {
  // Inside 256 bits the two types must agree op for op; BitVector is the
  // widening of SmallBitset the >256-bit route depends on.
  Rng rng(GetParam() ^ 0xb1d);
  for (size_t universe : {63, 64, 65, 255, 256}) {
    SmallBitset s;
    BitVector v;
    for (int round = 0; round < 60; ++round) {
      size_t bit = rng.NextBelow(universe);
      if (rng.NextBool(0.7)) {
        s.Set(bit);
        v.Set(bit);
      } else {
        s.Reset(bit);
        v.Reset(bit);
      }
    }
    ASSERT_EQ(BitVector::FromSmall(s, universe), v);
    ASSERT_EQ(v.ToSmall(), s);
    ASSERT_EQ(v.Count(), s.Count());
    for (size_t b = 0; b < universe; ++b) ASSERT_EQ(v.Test(b), s.Test(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedBitsetFuzzTest,
                         ::testing::Range(uint64_t{2000}, uint64_t{2010}));

// ---------------------------------------------------------------------------
// BitVector-specific contracts the model can't express.
// ---------------------------------------------------------------------------

TEST(BitVectorTest, SetAutoGrowsPastSmallBitsetCapacity) {
  // The routing story for |Ω| > 256: where SmallBitset::Set(300) is a
  // capacity violation, BitVector grows and carries on.
  BitVector b;
  b.Set(300);
  EXPECT_TRUE(b.Test(300));
  EXPECT_EQ(b.Count(), 1u);
  EXPECT_FALSE(b.Test(299));
  b.Set(1000);
  b.Set(0);
  EXPECT_EQ(b.Count(), 3u);
  EXPECT_EQ(b.FirstSetBit(), 0u);
  EXPECT_EQ(b.NextSetBit(1), 300u);
  EXPECT_EQ(b.NextSetBit(301), 1000u);
  EXPECT_EQ(b.NextSetBit(1001), BitVector::kNpos);
}

TEST(BitVectorTest, ComparisonsIgnoreCapacity) {
  BitVector narrow;
  narrow.Set(3);
  BitVector wide(512);
  wide.Set(3);
  EXPECT_EQ(narrow, wide);
  EXPECT_EQ(narrow.Hash(), wide.Hash());
  EXPECT_FALSE(narrow < wide);
  EXPECT_FALSE(wide < narrow);
  EXPECT_TRUE(narrow.IsSubsetOf(wide));
  EXPECT_TRUE(wide.IsSubsetOf(narrow));
  wide.Set(400);
  EXPECT_NE(narrow, wide);
  EXPECT_TRUE(narrow < wide);
  EXPECT_TRUE(narrow.IsSubsetOf(wide));
  EXPECT_FALSE(wide.IsSubsetOf(narrow));
}

TEST(BitVectorTest, OutOfCapacityReadsAreZeroNotUB) {
  BitVector b(64);
  EXPECT_FALSE(b.Test(1 << 20));
  b.Reset(1 << 20);  // No-op, not a growth.
  EXPECT_LE(b.num_words(), 1u);
  BitVector empty;
  EXPECT_EQ(empty.FirstSetBit(), BitVector::kNpos);
  EXPECT_TRUE(empty.Empty());
  EXPECT_EQ(empty.Hash(), BitVector(640).Hash());
}

TEST(BitVectorTest, WordBoundaryAllSet) {
  for (size_t n : {63u, 64u, 65u, 255u, 256u, 257u}) {
    BitVector b = BitVector::AllSet(n);
    EXPECT_EQ(b.Count(), n) << n;
    EXPECT_TRUE(b.Test(n - 1));
    EXPECT_FALSE(b.Test(n));
    EXPECT_EQ(b, BitVector::AllSet(n));
    EXPECT_TRUE(BitVector::AllSet(n - 1).IsStrictSubsetOf(b));
  }
}

TEST(BitVectorTest, ToSmallRejectsWideValues) {
  BitVector b;
  b.Set(256);
  EXPECT_DEATH(b.ToSmall(), "exceeds SmallBitset capacity");
}

TEST(BitVectorTest, ToStringMatchesSmallBitsetFormat) {
  BitVector b;
  EXPECT_EQ(b.ToString(), "{}");
  b.Set(0);
  b.Set(17);
  b.Set(257);
  EXPECT_EQ(b.ToString(), "{0,17,257}");
}

}  // namespace
}  // namespace util
}  // namespace jinfer
