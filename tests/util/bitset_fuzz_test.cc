// Randomized cross-validation of SmallBitset against std::bitset<256> —
// the predicate bitset underlies every lemma in the core, so its set
// algebra gets a reference-model fuzz suite on top of the unit tests.

#include <bitset>

#include <gtest/gtest.h>

#include "util/bitset.h"
#include "util/rng.h"

namespace jinfer {
namespace util {
namespace {

constexpr size_t kBits = SmallBitset::kMaxBits;

struct ModelPair {
  SmallBitset mine;
  std::bitset<kBits> ref;
};

ModelPair RandomSet(Rng& rng, double density) {
  ModelPair out;
  for (size_t b = 0; b < kBits; ++b) {
    if (rng.NextBool(density)) {
      out.mine.Set(b);
      out.ref.set(b);
    }
  }
  return out;
}

class BitsetFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitsetFuzzTest, AlgebraMatchesReference) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    double density = rng.NextDouble();
    ModelPair a = RandomSet(rng, density);
    ModelPair b = RandomSet(rng, density * 0.5);

    EXPECT_EQ((a.mine & b.mine).Count(), (a.ref & b.ref).count());
    EXPECT_EQ((a.mine | b.mine).Count(), (a.ref | b.ref).count());
    EXPECT_EQ((a.mine ^ b.mine).Count(), (a.ref ^ b.ref).count());
    EXPECT_EQ((a.mine - b.mine).Count(), (a.ref & ~b.ref).count());
    EXPECT_EQ(a.mine.Count(), a.ref.count());
    EXPECT_EQ(a.mine.Empty(), a.ref.none());
    EXPECT_EQ(a.mine.Intersects(b.mine), (a.ref & b.ref).any());
    EXPECT_EQ(a.mine.IsSubsetOf(b.mine), (a.ref & ~b.ref).none());
    EXPECT_EQ(a.mine == b.mine, a.ref == b.ref);
  }
}

TEST_P(BitsetFuzzTest, IterationMatchesReference) {
  Rng rng(GetParam() ^ 0x17);
  ModelPair a = RandomSet(rng, 0.2);
  std::vector<size_t> via_foreach;
  a.mine.ForEachSetBit([&](size_t bit) { via_foreach.push_back(bit); });
  std::vector<size_t> via_next;
  for (size_t b = a.mine.FirstSetBit(); b < kBits;
       b = a.mine.NextSetBit(b + 1)) {
    via_next.push_back(b);
  }
  std::vector<size_t> expected;
  for (size_t b = 0; b < kBits; ++b) {
    if (a.ref.test(b)) expected.push_back(b);
  }
  EXPECT_EQ(via_foreach, expected);
  EXPECT_EQ(via_next, expected);
}

TEST_P(BitsetFuzzTest, SubsetIsAPartialOrder) {
  Rng rng(GetParam() ^ 0x99);
  ModelPair a = RandomSet(rng, 0.3);
  ModelPair b = RandomSet(rng, 0.3);
  ModelPair c = RandomSet(rng, 0.3);
  // Reflexivity, antisymmetry, transitivity (via union/intersection).
  EXPECT_TRUE(a.mine.IsSubsetOf(a.mine));
  EXPECT_TRUE((a.mine & b.mine).IsSubsetOf(a.mine));
  EXPECT_TRUE(a.mine.IsSubsetOf(a.mine | b.mine));
  SmallBitset ab = a.mine & b.mine;
  SmallBitset abc = ab & c.mine;
  EXPECT_TRUE(abc.IsSubsetOf(ab));
  EXPECT_TRUE(abc.IsSubsetOf(a.mine));
  if (a.mine.IsSubsetOf(b.mine) && b.mine.IsSubsetOf(a.mine)) {
    EXPECT_EQ(a.mine, b.mine);
  }
}

TEST_P(BitsetFuzzTest, HashEqualityContract) {
  Rng rng(GetParam() ^ 0xfe);
  ModelPair a = RandomSet(rng, 0.4);
  SmallBitset copy = a.mine;
  EXPECT_EQ(copy.Hash(), a.mine.Hash());
  // Flipping any single bit changes the hash (for this mixer, with
  // overwhelming probability; deterministic here since seeds are fixed).
  size_t bit = rng.NextBelow(kBits);
  SmallBitset flipped = a.mine;
  if (flipped.Test(bit)) {
    flipped.Reset(bit);
  } else {
    flipped.Set(bit);
  }
  EXPECT_NE(flipped.Hash(), a.mine.Hash());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsetFuzzTest,
                         ::testing::Range(uint64_t{1000}, uint64_t{1010}));

}  // namespace
}  // namespace util
}  // namespace jinfer
