#include "util/frequency_sketch.h"

#include <gtest/gtest.h>

#include "util/bitset.h"

namespace jinfer {
namespace util {
namespace {

TEST(FrequencySketchTest, EstimateTracksIncrements) {
  FrequencySketch sketch(256);
  const uint64_t hot = Mix64(1);
  const uint64_t cold = Mix64(2);
  EXPECT_EQ(sketch.Estimate(hot), 0u);
  for (int i = 0; i < 10; ++i) sketch.Increment(hot);
  sketch.Increment(cold);
  // Count-min never under-counts.
  EXPECT_GE(sketch.Estimate(hot), 10u);
  EXPECT_GE(sketch.Estimate(cold), 1u);
  EXPECT_GT(sketch.Estimate(hot), sketch.Estimate(cold));
}

TEST(FrequencySketchTest, CountersSaturateInsteadOfWrapping) {
  FrequencySketch sketch(16);
  const uint64_t key = Mix64(7);
  for (int i = 0; i < 5000; ++i) sketch.Increment(key);
  // 8-bit counters cap at 255 (minus any aging halvings on the way).
  EXPECT_LE(sketch.Estimate(key), 255u);
  EXPECT_GT(sketch.Estimate(key), 0u);
}

TEST(FrequencySketchTest, AgingHalvesEstimates) {
  FrequencySketch sketch(16);  // Window = 8 * 16 = 128 increments.
  const uint64_t key = Mix64(42);
  for (int i = 0; i < 100; ++i) sketch.Increment(key);
  const uint32_t before = sketch.Estimate(key);
  ASSERT_GE(before, 100u);
  // Push unrelated keys until a halving pass fires.
  uint64_t filler = 1000;
  while (sketch.agings() == 0) sketch.Increment(Mix64(++filler));
  EXPECT_LE(sketch.Estimate(key), before / 2 + 1);
  // The decayed key can be out-competed by a newly hot one now.
  for (int i = 0; i < 100; ++i) sketch.Increment(Mix64(4242));
  EXPECT_GT(sketch.Estimate(Mix64(4242)), sketch.Estimate(key));
}

TEST(FrequencySketchTest, DeterministicForAGivenSequence) {
  FrequencySketch a(64), b(64);
  for (uint64_t i = 0; i < 500; ++i) {
    a.Increment(Mix64(i % 17));
    b.Increment(Mix64(i % 17));
  }
  for (uint64_t k = 0; k < 17; ++k) {
    EXPECT_EQ(a.Estimate(Mix64(k)), b.Estimate(Mix64(k)));
  }
  EXPECT_EQ(a.agings(), b.agings());
  EXPECT_EQ(a.total_increments(), b.total_increments());
}

}  // namespace
}  // namespace util
}  // namespace jinfer
