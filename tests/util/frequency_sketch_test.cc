#include "util/frequency_sketch.h"

#include <gtest/gtest.h>

#include "util/bitset.h"

namespace jinfer {
namespace util {
namespace {

TEST(FrequencySketchTest, EstimateTracksIncrements) {
  FrequencySketch sketch(256);
  const uint64_t hot = Mix64(1);
  const uint64_t cold = Mix64(2);
  EXPECT_EQ(sketch.Estimate(hot), 0u);
  for (int i = 0; i < 10; ++i) sketch.Increment(hot);
  sketch.Increment(cold);
  // Count-min never under-counts.
  EXPECT_GE(sketch.Estimate(hot), 10u);
  EXPECT_GE(sketch.Estimate(cold), 1u);
  EXPECT_GT(sketch.Estimate(hot), sketch.Estimate(cold));
}

TEST(FrequencySketchTest, CountersSaturateInsteadOfWrapping) {
  FrequencySketch sketch(16);
  const uint64_t key = Mix64(7);
  for (int i = 0; i < 5000; ++i) sketch.Increment(key);
  // 8-bit counters cap at 255 (minus any aging halvings on the way).
  EXPECT_LE(sketch.Estimate(key), 255u);
  EXPECT_GT(sketch.Estimate(key), 0u);
}

TEST(FrequencySketchTest, AgingHalvesEstimates) {
  FrequencySketch sketch(16);  // Window = 8 * 16 = 128 increments.
  const uint64_t key = Mix64(42);
  for (int i = 0; i < 100; ++i) sketch.Increment(key);
  const uint32_t before = sketch.Estimate(key);
  ASSERT_GE(before, 100u);
  // Push unrelated keys until a halving pass fires.
  uint64_t filler = 1000;
  while (sketch.agings() == 0) sketch.Increment(Mix64(++filler));
  EXPECT_LE(sketch.Estimate(key), before / 2 + 1);
  // The decayed key can be out-competed by a newly hot one now.
  for (int i = 0; i < 100; ++i) sketch.Increment(Mix64(4242));
  EXPECT_GT(sketch.Estimate(Mix64(4242)), sketch.Estimate(key));
}

TEST(FrequencySketchTest, SaturatedCounterStaysOrderedAndStillAges) {
  FrequencySketch sketch(64);  // Window = 8 * 64 = 512 increments.
  const uint64_t hot = Mix64(3);
  const uint64_t warm = Mix64(5);
  // Saturate `hot` far past the 8-bit cap; give `warm` a modest count.
  for (int i = 0; i < 400; ++i) sketch.Increment(hot);
  for (int i = 0; i < 50; ++i) sketch.Increment(warm);
  const uint32_t hot_before = sketch.Estimate(hot);
  EXPECT_LE(hot_before, 255u);
  // Saturation must not invert the ordering admission decisions rely on.
  EXPECT_GT(hot_before, sketch.Estimate(warm));
  // Continue incrementing past saturation: estimate never wraps to small.
  for (int i = 0; i < 300; ++i) sketch.Increment(hot);
  EXPECT_LE(sketch.Estimate(hot), 255u);
  EXPECT_GE(sketch.Estimate(hot), sketch.Estimate(warm));
  // And a saturated counter still decays when the aging pass fires, so a
  // once-hot key cannot hold its slot forever.
  const uint64_t agings_before = sketch.agings();
  uint64_t filler = 9000;
  while (sketch.agings() == agings_before) sketch.Increment(Mix64(++filler));
  EXPECT_LE(sketch.Estimate(hot), 128u);
}

TEST(FrequencySketchTest, DeterministicForAGivenSequence) {
  FrequencySketch a(64), b(64);
  for (uint64_t i = 0; i < 500; ++i) {
    a.Increment(Mix64(i % 17));
    b.Increment(Mix64(i % 17));
  }
  for (uint64_t k = 0; k < 17; ++k) {
    EXPECT_EQ(a.Estimate(Mix64(k)), b.Estimate(Mix64(k)));
  }
  EXPECT_EQ(a.agings(), b.agings());
  EXPECT_EQ(a.total_increments(), b.total_increments());
}

}  // namespace
}  // namespace util
}  // namespace jinfer
