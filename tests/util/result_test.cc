#include "util/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace jinfer {
namespace util {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, DereferenceOperators) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(*r, "abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> r(std::string("abc"));
  r.ValueOrDie() += "d";
  EXPECT_EQ(*r, "abcd");
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto fails = []() -> Result<int> { return Status::ParseError("x"); };
  auto wrapper = [&]() -> Status {
    JINFER_ASSIGN_OR_RETURN(int v, fails());
    (void)v;
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsParseError());
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  auto succeeds = []() -> Result<int> { return 5; };
  int out = 0;
  auto wrapper = [&]() -> Status {
    JINFER_ASSIGN_OR_RETURN(int v, succeeds());
    out = v;
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().ok());
  EXPECT_EQ(out, 5);
}

TEST(ResultTest, AssignOrReturnChains) {
  auto one = []() -> Result<int> { return 1; };
  auto two = []() -> Result<int> { return 2; };
  int sum = 0;
  auto wrapper = [&]() -> Status {
    JINFER_ASSIGN_OR_RETURN(int a, one());
    JINFER_ASSIGN_OR_RETURN(int b, two());
    sum = a + b;
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().ok());
  EXPECT_EQ(sum, 3);
}

TEST(ResultDeathTest, ValueOrDieOnErrorAborts) {
  Result<int> r(Status::IoError("gone"));
  EXPECT_DEATH(r.ValueOrDie(), "ValueOrDie");
}

TEST(ResultDeathTest, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH(Result<int>(Status::OK()), "OK status");
}

}  // namespace
}  // namespace util
}  // namespace jinfer
