#include "util/failpoint.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace jinfer {
namespace util {
namespace {

/// Every test leaves the registry disarmed — the suites share one process.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Reset(); }
  void TearDown() override { Failpoints::Reset(); }
};

TEST_F(FailpointTest, DisarmedHitIsOkAndCostsNothing) {
  EXPECT_FALSE(FailpointsArmed());
  EXPECT_TRUE(FailpointHit("store.put.fsync").ok());
  // A disarmed hit must not even touch the registry: no stats recorded.
  EXPECT_EQ(Failpoints::Stats("store.put.fsync").hits, 0u);
}

TEST_F(FailpointTest, CountModeFailsExactlyNThenSelfRetires) {
  ASSERT_TRUE(Failpoints::Arm("test.point", "count:2").ok());
  EXPECT_TRUE(FailpointsArmed());
  EXPECT_TRUE(FailpointHit("test.point").IsUnavailable());
  EXPECT_TRUE(FailpointHit("test.point").IsUnavailable());
  // Exhausted: the point disarmed itself, restoring the fast path.
  EXPECT_TRUE(FailpointHit("test.point").ok());
  EXPECT_FALSE(FailpointsArmed());
  FailpointStats stats = Failpoints::Stats("test.point");
  EXPECT_EQ(stats.trips, 2u);
  EXPECT_EQ(stats.hits, 2u);  // The third hit took the disarmed fast path.
}

TEST_F(FailpointTest, EveryModeFailsPeriodically) {
  ASSERT_TRUE(Failpoints::Arm("test.point", "every:3").ok());
  std::vector<bool> tripped;
  for (int i = 0; i < 9; ++i) {
    tripped.push_back(!FailpointHit("test.point").ok());
  }
  EXPECT_EQ(tripped, (std::vector<bool>{false, false, true, false, false,
                                        true, false, false, true}));
}

TEST_F(FailpointTest, ProbModeIsSeededAndReproducible) {
  ASSERT_TRUE(Failpoints::Arm("test.point", "prob:0.5:42").ok());
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(!FailpointHit("test.point").ok());
  // Re-arming with the same seed replays the identical schedule.
  ASSERT_TRUE(Failpoints::Arm("test.point", "prob:0.5:42").ok());
  std::vector<bool> second;
  for (int i = 0; i < 64; ++i) {
    second.push_back(!FailpointHit("test.point").ok());
  }
  EXPECT_EQ(first, second);
  // And a 0.5 stream of length 64 is astronomically unlikely to be constant.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(FailpointTest, ProbZeroNeverTripsProbOneAlwaysTrips) {
  ASSERT_TRUE(Failpoints::Arm("never", "prob:0").ok());
  ASSERT_TRUE(Failpoints::Arm("always", "prob:1").ok());
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(FailpointHit("never").ok());
    EXPECT_TRUE(FailpointHit("always").IsUnavailable());
  }
}

TEST_F(FailpointTest, SleepModeDelaysButSucceeds) {
  ASSERT_TRUE(Failpoints::Arm("test.point", "sleep:20").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(FailpointHit("test.point").ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(20));
  EXPECT_EQ(Failpoints::Stats("test.point").trips, 1u);
}

TEST_F(FailpointTest, ArmFromSpecArmsMultiplePoints) {
  ASSERT_TRUE(
      Failpoints::ArmFromSpec("a=count:1;b=every:2,c=prob:0.0").ok());
  EXPECT_TRUE(FailpointHit("a").IsUnavailable());
  EXPECT_TRUE(FailpointHit("b").ok());
  EXPECT_TRUE(FailpointHit("b").IsUnavailable());
  EXPECT_TRUE(FailpointHit("c").ok());
}

TEST_F(FailpointTest, MalformedSpecIsRejected) {
  EXPECT_TRUE(Failpoints::ArmFromSpec("a=count:x").IsInvalidArgument());
  EXPECT_TRUE(Failpoints::ArmFromSpec("noequals").IsInvalidArgument());
  EXPECT_TRUE(Failpoints::ArmFromSpec("a=unknown:1").IsInvalidArgument());
  EXPECT_TRUE(Failpoints::ArmFromSpec("a=prob:1.5").IsInvalidArgument());
  EXPECT_TRUE(Failpoints::ArmFromSpec("=count:1").IsInvalidArgument());
}

TEST_F(FailpointTest, DisarmStopsTripsAndKeepsStats) {
  ASSERT_TRUE(Failpoints::Arm("test.point", "every:1").ok());
  EXPECT_TRUE(FailpointHit("test.point").IsUnavailable());
  Failpoints::Disarm("test.point");
  EXPECT_TRUE(FailpointHit("test.point").ok());
  EXPECT_EQ(Failpoints::Stats("test.point").trips, 1u);
}

TEST_F(FailpointTest, PauseScopeSuspendsTrips) {
  ASSERT_TRUE(Failpoints::Arm("test.point", "every:1").ok());
  {
    Failpoints::PauseScope pause;
    // Armed but paused: every hit succeeds (the fault-free baseline a
    // chaos test runs inside a process whose env schedule stays armed).
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(FailpointHit("test.point").ok());
  }
  EXPECT_TRUE(FailpointHit("test.point").IsUnavailable());
}

TEST_F(FailpointTest, InjectedStatusNamesThePoint) {
  ASSERT_TRUE(Failpoints::Arm("store.put.fsync", "count:1").ok());
  Status s = FailpointHit("store.put.fsync");
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_NE(s.message().find("store.put.fsync"), std::string::npos);
}

TEST_F(FailpointTest, ConcurrentHitsNeverOverOrUnderTrip) {
  // count:N under T threads must trip exactly N times in total — the
  // registry mutex makes the trigger decision atomic per hit.
  ASSERT_TRUE(Failpoints::Arm("test.point", "count:100").ok());
  std::atomic<int> trips{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (!FailpointHit("test.point").ok()) ++trips;
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(trips.load(), 100);
}

}  // namespace
}  // namespace util
}  // namespace jinfer
