#include "util/rng.h"

#include <set>

#include <gtest/gtest.h>

namespace jinfer {
namespace util {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextInRangeDegenerate) {
  Rng rng(3);
  EXPECT_EQ(rng.NextInRange(5, 5), 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // Uniform mean sanity check.
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngDeathTest, NextBelowZeroAborts) {
  Rng rng(1);
  EXPECT_DEATH(rng.NextBelow(0), "NextBelow");
}

}  // namespace
}  // namespace util
}  // namespace jinfer
