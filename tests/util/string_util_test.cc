#include "util/string_util.h"

#include <gtest/gtest.h>

namespace jinfer {
namespace util {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, EmptyFields) {
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
}

TEST(SplitTest, NoSeparator) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  abc \t\r\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_arg(1000, 'a');
  EXPECT_EQ(StrFormat("%s", long_arg.c_str()).size(), 1000u);
}

TEST(PadTest, PadLeft) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadLeft("abcdef", 3), "abc");
  EXPECT_EQ(PadLeft("abc", 3), "abc");
}

TEST(PadTest, PadRight) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadRight("abcdef", 3), "abc");
}

}  // namespace
}  // namespace util
}  // namespace jinfer
