#include "util/status.h"

#include <cerrno>
#include <sstream>

#include <gtest/gtest.h>

namespace jinfer {
namespace util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad arity");
}

TEST(StatusTest, EveryFactoryMatchesItsPredicate) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::InconsistentSample("x").IsInconsistentSample());
  EXPECT_TRUE(Status::CapacityExceeded("x").IsCapacityExceeded());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusCodeTest, FailureTaxonomyNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(IoStatusFromErrnoTest, TransientErrnosAreUnavailable) {
  EXPECT_TRUE(IoStatusFromErrno(EINTR, "x").IsUnavailable());
  EXPECT_TRUE(IoStatusFromErrno(EAGAIN, "x").IsUnavailable());
  EXPECT_TRUE(IoStatusFromErrno(EBUSY, "x").IsUnavailable());
  EXPECT_TRUE(IoStatusFromErrno(ENOMEM, "x").IsUnavailable());
  EXPECT_TRUE(IoStatusFromErrno(EMFILE, "x").IsUnavailable());
  EXPECT_TRUE(IoStatusFromErrno(ENFILE, "x").IsUnavailable());
}

TEST(IoStatusFromErrnoTest, ExhaustionErrnosAreResourceExhausted) {
  EXPECT_TRUE(IoStatusFromErrno(ENOSPC, "x").IsResourceExhausted());
  EXPECT_TRUE(IoStatusFromErrno(EDQUOT, "x").IsResourceExhausted());
}

TEST(IoStatusFromErrnoTest, PermanentErrnosStayIoError) {
  EXPECT_TRUE(IoStatusFromErrno(ENOENT, "x").IsIoError());
  EXPECT_TRUE(IoStatusFromErrno(EACCES, "x").IsIoError());
  EXPECT_TRUE(IoStatusFromErrno(EIO, "x").IsIoError());
}

TEST(IoStatusFromErrnoTest, MessageIsPreserved) {
  EXPECT_EQ(IoStatusFromErrno(EINTR, "open(/x)").message(), "open(/x)");
}

TEST(StatusTest, PredicatesAreExclusive) {
  Status s = Status::NotFound("x");
  EXPECT_FALSE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsInconsistentSample());
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, ToStringOk) { EXPECT_EQ(Status::OK().ToString(), "OK"); }

TEST(StatusTest, ToStringNonOk) {
  EXPECT_EQ(Status::ParseError("line 3").ToString(), "ParseError: line 3");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::IoError("disk");
  EXPECT_EQ(os.str(), "IoError: disk");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::IoError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::OutOfRange("idx"); };
  auto wrapper = [&]() -> Status {
    JINFER_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsOutOfRange());
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOk) {
  auto succeeds = [] { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    JINFER_RETURN_NOT_OK(succeeds());
    return Status::NotFound("sentinel");
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInconsistentSample),
            "InconsistentSample");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCapacityExceeded),
            "CapacityExceeded");
}

}  // namespace
}  // namespace util
}  // namespace jinfer
