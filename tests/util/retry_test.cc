#include "util/retry.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/deadline.h"
#include "util/result.h"

namespace jinfer {
namespace util {
namespace {

/// Records requested sleeps instead of performing them.
struct RecordingSleeper {
  std::vector<std::chrono::microseconds>* slept;
  void operator()(std::chrono::microseconds d) const { slept->push_back(d); }
};

TEST(TransiencyTest, OnlyUnavailableIsTransient) {
  EXPECT_TRUE(IsTransient(Status::Unavailable("x")));
  EXPECT_FALSE(IsTransient(Status::OK()));
  EXPECT_FALSE(IsTransient(Status::IoError("x")));
  EXPECT_FALSE(IsTransient(Status::ParseError("x")));
  EXPECT_FALSE(IsTransient(Status::ResourceExhausted("x")));
  EXPECT_FALSE(IsTransient(Status::DeadlineExceeded("x")));
}

TEST(BackoffTest, DoublesUpToCapWithJitterInRange) {
  RetryPolicy policy;
  policy.base_backoff = std::chrono::microseconds(100);
  policy.max_backoff = std::chrono::microseconds(1000);
  Backoff backoff(policy);
  std::vector<int64_t> raw = {100, 200, 400, 800, 1000, 1000};
  for (int64_t expected : raw) {
    const auto delay = backoff.Next().count();
    EXPECT_GE(delay, expected / 2);
    EXPECT_LT(delay, expected);
  }
}

TEST(BackoffTest, SameSeedSameSchedule) {
  RetryPolicy policy;
  Backoff a(policy), b(policy);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(BackoffTest, DifferentSeedsDecorrelate) {
  RetryPolicy a_policy, b_policy;
  b_policy.jitter_seed = a_policy.jitter_seed + 1;
  Backoff a(a_policy), b(b_policy);
  bool any_differ = false;
  for (int i = 0; i < 8; ++i) any_differ |= (a.Next() != b.Next());
  EXPECT_TRUE(any_differ);
}

TEST(RetryCallTest, SucceedsFirstTryNoSleep) {
  std::vector<std::chrono::microseconds> slept;
  int calls = 0;
  Status s = RetryCall(
      RetryPolicy{}, [&] { ++calls; return Status::OK(); }, nullptr,
      RecordingSleeper{&slept});
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(RetryCallTest, RetriesTransientUntilSuccess) {
  std::vector<std::chrono::microseconds> slept;
  uint64_t retries = 0;
  int calls = 0;
  Status s = RetryCall(
      RetryPolicy{},
      [&] {
        return ++calls < 3 ? Status::Unavailable("flaky") : Status::OK();
      },
      &retries, RecordingSleeper{&slept});
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
  EXPECT_EQ(slept.size(), 2u);
}

TEST(RetryCallTest, PermanentFailureIsNotRetried) {
  int calls = 0;
  std::vector<std::chrono::microseconds> slept;
  Status s = RetryCall(
      RetryPolicy{}, [&] { ++calls; return Status::ParseError("corrupt"); },
      nullptr, RecordingSleeper{&slept});
  EXPECT_TRUE(s.IsParseError());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(RetryCallTest, AttemptsExhaustReturnLastTransientError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  std::vector<std::chrono::microseconds> slept;
  Status s = RetryCall(
      policy, [&] { ++calls; return Status::Unavailable("still down"); },
      nullptr, RecordingSleeper{&slept});
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 3);      // max_attempts counts total tries.
  EXPECT_EQ(slept.size(), 2u);  // One sleep between consecutive tries.
}

TEST(RetryCallTest, SingleAttemptPolicyNeverRetries) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  int calls = 0;
  std::vector<std::chrono::microseconds> slept;
  Status s = RetryCall(
      policy, [&] { ++calls; return Status::Unavailable("down"); }, nullptr,
      RecordingSleeper{&slept});
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(RetryCallTest, WorksWithResultReturningFunctions) {
  int calls = 0;
  std::vector<std::chrono::microseconds> slept;
  Result<int> r = RetryCall(
      RetryPolicy{},
      [&]() -> Result<int> {
        return ++calls < 2 ? Result<int>(Status::Unavailable("flaky"))
                           : Result<int>(7);
      },
      nullptr, RecordingSleeper{&slept});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 7);
  EXPECT_EQ(calls, 2);
}

TEST(RetryCallTest, UnlimitedPolicyRunsUntilOutcomeChanges) {
  RetryPolicy policy;
  policy.max_attempts = 0;  // Unlimited: bounded here by the fn itself.
  int calls = 0;
  std::vector<std::chrono::microseconds> slept;
  Status s = RetryCall(
      policy,
      [&] { return ++calls < 20 ? Status::Unavailable("x") : Status::OK(); },
      nullptr, RecordingSleeper{&slept});
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 20);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), std::chrono::nanoseconds::max());
}

TEST(DeadlineTest, ZeroBudgetMeansNoDeadline) {
  EXPECT_TRUE(Deadline::After(std::chrono::nanoseconds::zero()).infinite());
  EXPECT_TRUE(Deadline::After(std::chrono::milliseconds(-5)).infinite());
}

TEST(DeadlineTest, PositiveBudgetExpires) {
  Deadline d = Deadline::After(std::chrono::nanoseconds(1));
  // A 1ns deadline is expired by the time we can observe it.
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), std::chrono::nanoseconds::zero());
}

TEST(DeadlineTest, GenerousBudgetNotYetExpired) {
  Deadline d = Deadline::After(std::chrono::hours(1));
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), std::chrono::minutes(59));
}

}  // namespace
}  // namespace util
}  // namespace jinfer
