#include "util/bitset.h"

#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

namespace jinfer {
namespace util {
namespace {

TEST(SmallBitsetTest, DefaultIsEmpty) {
  SmallBitset b;
  EXPECT_TRUE(b.Empty());
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_EQ(b.FirstSetBit(), SmallBitset::kMaxBits);
}

TEST(SmallBitsetTest, SetTestReset) {
  SmallBitset b;
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(255);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(255));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Reset(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(SmallBitsetTest, AllSetExactWidth) {
  for (size_t n : {0u, 1u, 5u, 63u, 64u, 65u, 128u, 200u, 256u}) {
    SmallBitset b = SmallBitset::AllSet(n);
    EXPECT_EQ(b.Count(), n) << n;
    if (n > 0) {
      EXPECT_TRUE(b.Test(n - 1));
    }
    if (n < SmallBitset::kMaxBits) {
      EXPECT_FALSE(b.Test(n));
    }
  }
}

TEST(SmallBitsetTest, Singleton) {
  SmallBitset b = SmallBitset::Singleton(100);
  EXPECT_EQ(b.Count(), 1u);
  EXPECT_TRUE(b.Test(100));
  EXPECT_EQ(b.FirstSetBit(), 100u);
}

TEST(SmallBitsetTest, SubsetReflexive) {
  SmallBitset b = SmallBitset::AllSet(77);
  EXPECT_TRUE(b.IsSubsetOf(b));
  EXPECT_FALSE(b.IsStrictSubsetOf(b));
}

TEST(SmallBitsetTest, SubsetBasics) {
  SmallBitset small, big;
  small.Set(3);
  small.Set(130);
  big = small;
  big.Set(200);
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_TRUE(small.IsStrictSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(SmallBitset().IsSubsetOf(small));  // ∅ ⊆ everything
}

TEST(SmallBitsetTest, IncomparableSetsAreNotSubsets) {
  SmallBitset a = SmallBitset::Singleton(1);
  SmallBitset b = SmallBitset::Singleton(2);
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
}

TEST(SmallBitsetTest, SetAlgebra) {
  SmallBitset a, b;
  a.Set(1);
  a.Set(2);
  a.Set(150);
  b.Set(2);
  b.Set(150);
  b.Set(255);

  SmallBitset inter = a & b;
  EXPECT_EQ(inter.Count(), 2u);
  EXPECT_TRUE(inter.Test(2));
  EXPECT_TRUE(inter.Test(150));

  SmallBitset uni = a | b;
  EXPECT_EQ(uni.Count(), 4u);

  SmallBitset diff = a - b;
  EXPECT_EQ(diff.Count(), 1u);
  EXPECT_TRUE(diff.Test(1));

  SmallBitset sym = a ^ b;
  EXPECT_EQ(sym.Count(), 2u);
  EXPECT_TRUE(sym.Test(1));
  EXPECT_TRUE(sym.Test(255));
}

TEST(SmallBitsetTest, CompoundAssignment) {
  SmallBitset a = SmallBitset::Singleton(5);
  SmallBitset b = SmallBitset::Singleton(6);
  a |= b;
  EXPECT_EQ(a.Count(), 2u);
  a &= b;
  EXPECT_EQ(a, b);
}

TEST(SmallBitsetTest, Intersects) {
  SmallBitset a = SmallBitset::Singleton(10);
  SmallBitset b = SmallBitset::Singleton(10);
  SmallBitset c = SmallBitset::Singleton(11);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(SmallBitset().Intersects(a));
}

TEST(SmallBitsetTest, NextSetBitWalksAllBits) {
  SmallBitset b;
  std::vector<size_t> bits = {0, 7, 63, 64, 65, 127, 128, 254, 255};
  for (size_t bit : bits) b.Set(bit);
  std::vector<size_t> seen;
  for (size_t i = b.FirstSetBit(); i < SmallBitset::kMaxBits;
       i = b.NextSetBit(i + 1)) {
    seen.push_back(i);
  }
  EXPECT_EQ(seen, bits);
}

TEST(SmallBitsetTest, ForEachSetBitInOrder) {
  SmallBitset b;
  b.Set(200);
  b.Set(3);
  b.Set(64);
  std::vector<size_t> seen;
  b.ForEachSetBit([&](size_t bit) { seen.push_back(bit); });
  EXPECT_EQ(seen, (std::vector<size_t>{3, 64, 200}));
}

TEST(SmallBitsetTest, EqualityAndOrdering) {
  SmallBitset a = SmallBitset::Singleton(9);
  SmallBitset b = SmallBitset::Singleton(9);
  SmallBitset c = SmallBitset::Singleton(10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c || c < a);
  EXPECT_FALSE(a < b);
}

TEST(SmallBitsetTest, HashDistinguishesAndAgrees) {
  SmallBitset a = SmallBitset::Singleton(9);
  SmallBitset b = SmallBitset::Singleton(9);
  EXPECT_EQ(a.Hash(), b.Hash());
  // Distinct sets of a small family all hash differently (sanity, not a
  // cryptographic claim).
  std::unordered_set<size_t> hashes;
  for (size_t i = 0; i < 256; ++i) {
    hashes.insert(SmallBitset::Singleton(i).Hash());
  }
  EXPECT_EQ(hashes.size(), 256u);
}

TEST(SmallBitsetTest, WorksAsUnorderedMapKey) {
  std::unordered_set<SmallBitset, SmallBitsetHash> set;
  set.insert(SmallBitset::Singleton(1));
  set.insert(SmallBitset::Singleton(1));
  set.insert(SmallBitset::Singleton(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(SmallBitsetTest, ToString) {
  SmallBitset b;
  EXPECT_EQ(b.ToString(), "{}");
  b.Set(0);
  b.Set(17);
  EXPECT_EQ(b.ToString(), "{0,17}");
}

TEST(SmallBitsetDeathTest, OutOfRangeAborts) {
  SmallBitset b;
  // Per-bit capacity checks are JINFER_DCHECKs: live wherever the Debug CI
  // jobs (sanitizers, chaos, TSan) build, compiled out of Release hot
  // loops. Bulk entry points keep full-time checks in every build type.
#if !defined(NDEBUG) || defined(JINFER_DEBUG_CHECKS)
  EXPECT_DEATH(b.Set(256), "out of range");
  EXPECT_DEATH(b.Test(256), "out of range");
#endif
  EXPECT_DEATH(SmallBitset::AllSet(257), "exceeds capacity");
}

}  // namespace
}  // namespace util
}  // namespace jinfer
