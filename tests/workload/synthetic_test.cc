#include "workload/synthetic.h"

#include <gtest/gtest.h>

#include "core/signature_index.h"

namespace jinfer {
namespace workload {
namespace {

TEST(SyntheticConfigTest, ToStringMatchesPaperNotation) {
  SyntheticConfig config{3, 4, 50, 100};
  EXPECT_EQ(config.ToString(), "(3,4,50,100)");
}

TEST(SyntheticConfigTest, PaperConfigsAreTheSixFromTable1) {
  auto configs = PaperSyntheticConfigs();
  ASSERT_EQ(configs.size(), 6u);
  EXPECT_EQ(configs[0].ToString(), "(3,3,100,100)");
  EXPECT_EQ(configs[1].ToString(), "(3,3,50,100)");
  EXPECT_EQ(configs[2].ToString(), "(3,4,50,100)");
  EXPECT_EQ(configs[3].ToString(), "(2,5,50,100)");
  EXPECT_EQ(configs[4].ToString(), "(2,4,50,50)");
  EXPECT_EQ(configs[5].ToString(), "(2,4,50,100)");
}

TEST(SyntheticGeneratorTest, ShapeMatchesConfig) {
  SyntheticConfig config{3, 4, 25, 10};
  auto inst = GenerateSynthetic(config, 1);
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->r.num_attributes(), 3u);
  EXPECT_EQ(inst->p.num_attributes(), 4u);
  EXPECT_EQ(inst->r.num_rows(), 25u);
  EXPECT_EQ(inst->p.num_rows(), 25u);
  EXPECT_EQ(inst->r.schema().attribute_names()[0], "A1");
  EXPECT_EQ(inst->p.schema().attribute_names()[3], "B4");
}

TEST(SyntheticGeneratorTest, ValuesWithinDomain) {
  SyntheticConfig config{2, 2, 40, 7};
  auto inst = GenerateSynthetic(config, 3);
  ASSERT_TRUE(inst.ok());
  for (const auto& rel : {inst->r, inst->p}) {
    for (const auto& row : rel.rows()) {
      for (const auto& v : row) {
        ASSERT_TRUE(v.is_int());
        EXPECT_GE(v.AsInt(), 0);
        EXPECT_LT(v.AsInt(), 7);
      }
    }
  }
}

TEST(SyntheticGeneratorTest, DeterministicInSeed) {
  SyntheticConfig config{3, 3, 20, 50};
  auto a = GenerateSynthetic(config, 42);
  auto b = GenerateSynthetic(config, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->r.rows(), b->r.rows());
  EXPECT_EQ(a->p.rows(), b->p.rows());
}

TEST(SyntheticGeneratorTest, DifferentSeedsDiffer) {
  SyntheticConfig config{3, 3, 20, 50};
  auto a = GenerateSynthetic(config, 1);
  auto b = GenerateSynthetic(config, 2);
  EXPECT_NE(a->r.rows(), b->r.rows());
}

TEST(SyntheticGeneratorTest, InvalidConfigsRejected) {
  EXPECT_FALSE(GenerateSynthetic({0, 3, 10, 10}, 1).ok());
  EXPECT_FALSE(GenerateSynthetic({3, 0, 10, 10}, 1).ok());
  EXPECT_FALSE(GenerateSynthetic({3, 3, 0, 10}, 1).ok());
  EXPECT_FALSE(GenerateSynthetic({3, 3, 10, 0}, 1).ok());
}

TEST(SyntheticGeneratorTest, IndexableByCore) {
  auto inst = GenerateSynthetic({3, 3, 50, 100}, 7);
  ASSERT_TRUE(inst.ok());
  auto index = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_tuples(), 2500u);
  EXPECT_GT(index->num_classes(), 1u);
}

}  // namespace
}  // namespace workload
}  // namespace jinfer
