#include "workload/crowd.h"

#include <gtest/gtest.h>

#include "testing/paper_fixtures.h"

namespace jinfer {
namespace workload {
namespace {

using core::Label;

TEST(CrowdOracleTest, PerfectWorkersMatchTruth) {
  core::SignatureIndex index = testing::Example21Index();
  core::JoinPredicate goal = testing::Pred(index.omega(), {{0, 2}});
  CrowdConfig config{/*num_workers=*/3, /*error_rate=*/0.0, /*seed=*/1};
  CrowdOracle crowd(goal, config);
  core::GoalOracle truth{goal};
  for (core::ClassId c = 0; c < index.num_classes(); ++c) {
    EXPECT_EQ(crowd.LabelClass(index, c), truth.LabelClass(index, c));
  }
  EXPECT_EQ(crowd.majority_errors(), 0u);
  EXPECT_EQ(crowd.votes_purchased(), 3u * index.num_classes());
}

TEST(CrowdOracleTest, AlwaysWrongWorkersInvertTruth) {
  core::SignatureIndex index = testing::Example21Index();
  core::JoinPredicate goal = testing::Pred(index.omega(), {{0, 2}});
  CrowdConfig config{3, 1.0, 1};
  CrowdOracle crowd(goal, config);
  core::GoalOracle truth{goal};
  for (core::ClassId c = 0; c < index.num_classes(); ++c) {
    EXPECT_NE(crowd.LabelClass(index, c), truth.LabelClass(index, c));
  }
  EXPECT_EQ(crowd.majority_errors(), index.num_classes());
}

TEST(CrowdOracleTest, MajorityBeatsIndividualError) {
  // With per-worker error 0.3, a 5-worker majority errs with probability
  // ≈ 0.163; over many questions the majority error rate must land well
  // below the individual rate.
  core::SignatureIndex index = testing::Example21Index();
  core::JoinPredicate goal = testing::Pred(index.omega(), {{0, 0}, {1, 2}});
  CrowdConfig config{5, 0.3, 42};
  CrowdOracle crowd(goal, config);
  const int kQuestionsPerClass = 200;
  for (int round = 0; round < kQuestionsPerClass; ++round) {
    for (core::ClassId c = 0; c < index.num_classes(); ++c) {
      crowd.LabelClass(index, c);
    }
  }
  double asked =
      static_cast<double>(kQuestionsPerClass) * index.num_classes();
  double majority_error = static_cast<double>(crowd.majority_errors()) /
                          asked;
  EXPECT_LT(majority_error, 0.23);
  EXPECT_GT(majority_error, 0.08);
}

TEST(CrowdOracleDeathTest, RejectsBadConfig) {
  core::SignatureIndex index = testing::Example21Index();
  core::JoinPredicate goal;
  EXPECT_DEATH(CrowdOracle(goal, CrowdConfig{0, 0.1, 1}), "worker");
  EXPECT_DEATH(CrowdOracle(goal, CrowdConfig{3, 1.5, 1}), "error rate");
}

TEST(CrowdTrialTest, NoiselessCrowdAlwaysRecovers) {
  core::SignatureIndex index = testing::Example21Index();
  core::JoinPredicate goal = testing::Pred(index.omega(), {{0, 2}});
  CrowdConfig config{1, 0.0, 9};
  auto trial =
      RunCrowdTrial(index, goal, core::StrategyKind::kTopDown, config);
  ASSERT_TRUE(trial.ok());
  EXPECT_TRUE(trial->recovered);
  EXPECT_GT(trial->interactions, 0u);
  EXPECT_EQ(trial->votes_purchased, trial->interactions);
}

TEST(CrowdTrialTest, HeavyNoiseSometimesMisleads) {
  // 1 worker at 40% error: across seeds, some sessions must fail to
  // recover (and the engine never crashes — wrong-but-consistent results).
  core::SignatureIndex index = testing::Example21Index();
  core::JoinPredicate goal = testing::Pred(index.omega(), {{0, 0}, {1, 2}});
  size_t failures = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    CrowdConfig config{1, 0.4, seed};
    auto trial =
        RunCrowdTrial(index, goal, core::StrategyKind::kTopDown, config);
    ASSERT_TRUE(trial.ok());
    if (!trial->recovered) ++failures;
  }
  EXPECT_GT(failures, 0u);
}

TEST(CrowdSweepTest, MoreWorkersBuyMoreRecovery) {
  core::SignatureIndex index = testing::Example21Index();
  core::JoinPredicate goal = testing::Pred(index.omega(), {{0, 0}, {1, 2}});
  auto solo = MeasureCrowdPoint(index, goal, core::StrategyKind::kTopDown,
                                /*num_workers=*/1, /*error_rate=*/0.3,
                                /*trials=*/60, /*seed=*/5);
  auto seven = MeasureCrowdPoint(index, goal, core::StrategyKind::kTopDown,
                                 /*num_workers=*/7, 0.3, 60, 5);
  ASSERT_TRUE(solo.ok());
  ASSERT_TRUE(seven.ok());
  EXPECT_GT(seven->recovery_rate, solo->recovery_rate);
  EXPECT_GT(seven->mean_votes, solo->mean_votes);  // Accuracy costs votes.
}

TEST(CrowdSweepTest, ZeroTrialsRejected) {
  core::SignatureIndex index = testing::Example21Index();
  EXPECT_FALSE(MeasureCrowdPoint(index, core::JoinPredicate(),
                                 core::StrategyKind::kTopDown, 1, 0.1, 0, 1)
                   .ok());
}

TEST(CrowdSweepTest, DeterministicInSeed) {
  core::SignatureIndex index = testing::Example21Index();
  core::JoinPredicate goal = testing::Pred(index.omega(), {{0, 2}});
  auto a = MeasureCrowdPoint(index, goal, core::StrategyKind::kTopDown, 3,
                             0.2, 20, 77);
  auto b = MeasureCrowdPoint(index, goal, core::StrategyKind::kTopDown, 3,
                             0.2, 20, 77);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->recovery_rate, b->recovery_rate);
  EXPECT_DOUBLE_EQ(a->mean_votes, b->mean_votes);
}

}  // namespace
}  // namespace workload
}  // namespace jinfer
