#include "workload/experiment.h"

#include <gtest/gtest.h>

#include "testing/paper_fixtures.h"

namespace jinfer {
namespace workload {
namespace {

using core::StrategyKind;

TEST(MeasureStrategyTest, DeterministicStrategyOneGoal) {
  core::SignatureIndex index = testing::Example21Index();
  core::JoinPredicate goal;  // ∅: BU needs exactly 1 interaction.
  auto stats = MeasureStrategy(index, goal, StrategyKind::kBottomUp,
                               /*runs=*/3, /*seed=*/1);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->mean_interactions, 1.0);
  EXPECT_EQ(stats->runs, 3u);
  EXPECT_GE(stats->mean_seconds, 0.0);
}

TEST(MeasureStrategyTest, RandomStrategyVariesButStaysCorrect) {
  core::SignatureIndex index = testing::Example21Index();
  core::JoinPredicate goal = testing::Pred(index.omega(), {{0, 2}});
  auto stats = MeasureStrategy(index, goal, StrategyKind::kRandom,
                               /*runs=*/10, /*seed=*/7);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->mean_interactions, 1.0);
  EXPECT_LE(stats->mean_interactions,
            static_cast<double>(index.num_classes()));
}

TEST(MeasureStrategyTest, ZeroRunsRejected) {
  core::SignatureIndex index = testing::Example21Index();
  EXPECT_TRUE(MeasureStrategy(index, core::JoinPredicate(),
                              StrategyKind::kBottomUp, 0, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(MeasureStrategyOverGoalsTest, PoolsAcrossGoals) {
  core::SignatureIndex index = testing::Example21Index();
  std::vector<core::JoinPredicate> goals = {
      core::JoinPredicate(), testing::Pred(index.omega(), {{0, 2}})};
  auto stats = MeasureStrategyOverGoals(index, goals,
                                        StrategyKind::kTopDown, 2, 1);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->runs, 4u);
  EXPECT_GT(stats->mean_interactions, 0.0);
}

TEST(MeasureStrategyOverGoalsTest, EmptyGoalSetRejected) {
  core::SignatureIndex index = testing::Example21Index();
  EXPECT_FALSE(
      MeasureStrategyOverGoals(index, {}, StrategyKind::kTopDown, 1, 1).ok());
}

TEST(BestStrategyIndexTest, FewestInteractionsWins) {
  std::vector<StrategyStats> stats(3);
  stats[0].mean_interactions = 5;
  stats[1].mean_interactions = 3;
  stats[2].mean_interactions = 4;
  EXPECT_EQ(BestStrategyIndex(stats), 1u);
}

TEST(BestStrategyIndexTest, TimeBreaksTies) {
  std::vector<StrategyStats> stats(2);
  stats[0].mean_interactions = 3;
  stats[0].mean_seconds = 0.9;
  stats[1].mean_interactions = 3;
  stats[1].mean_seconds = 0.1;
  EXPECT_EQ(BestStrategyIndex(stats), 1u);
}

TEST(SampleGoalsBySizeTest, Example21GroupsMatchLattice) {
  core::SignatureIndex index = testing::Example21Index();
  auto by_size = SampleGoalsBySize(index, /*max_per_size=*/0, 1);
  ASSERT_TRUE(by_size.ok());
  // 22 non-nullable predicates: 1 + 6 + 12 + 3 by size (the down-closure
  // of the 12 signatures), in ascending-size buckets.
  ASSERT_EQ(by_size->size(), 4u);
  const size_t expected_goals[] = {1, 6, 12, 3};
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*by_size)[i].size, i);
    EXPECT_EQ((*by_size)[i].goals.size(), expected_goals[i]);
  }
}

TEST(SampleGoalsBySizeTest, CapAppliesPerGroup) {
  core::SignatureIndex index = testing::Example21Index();
  auto by_size = SampleGoalsBySize(index, /*max_per_size=*/2, 1);
  ASSERT_TRUE(by_size.ok());
  for (const auto& [size, goals] : *by_size) {
    EXPECT_LE(goals.size(), 2u);
    for (const auto& goal : goals) {
      EXPECT_EQ(goal.Count(), size);
      EXPECT_TRUE(index.IsNonNullable(goal));
    }
  }
}

TEST(SampleGoalsBySizeTest, DeterministicInSeed) {
  core::SignatureIndex index = testing::Example21Index();
  auto a = SampleGoalsBySize(index, 2, 5);
  auto b = SampleGoalsBySize(index, 2, 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(MeasureStrategyTest, PaperStrategiesAllSolveExample21MidGoal) {
  core::SignatureIndex index = testing::Example21Index();
  core::JoinPredicate goal = testing::Pred(index.omega(), {{0, 0}, {1, 2}});
  for (StrategyKind kind : core::PaperStrategies()) {
    auto stats = MeasureStrategy(index, goal, kind, 2, 11);
    ASSERT_TRUE(stats.ok()) << core::StrategyKindName(kind);
    EXPECT_GE(stats->mean_interactions, 1.0);
  }
}

}  // namespace
}  // namespace workload
}  // namespace jinfer
