#include "workload/tpch.h"

#include <set>

#include <gtest/gtest.h>

#include "core/signature_index.h"

namespace jinfer {
namespace workload {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = GenerateTpch(MiniScaleA(), 2024);
    JINFER_CHECK(db.ok(), "generation failed");
    db_ = new TpchDatabase(std::move(db).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static TpchDatabase* db_;
};

TpchDatabase* TpchTest::db_ = nullptr;

TEST_F(TpchTest, RowCountsMatchScale) {
  TpchScale scale = MiniScaleA();
  EXPECT_EQ(db_->part.num_rows(), scale.parts);
  EXPECT_EQ(db_->supplier.num_rows(), scale.suppliers);
  EXPECT_EQ(db_->partsupp.num_rows(),
            scale.parts * scale.partsupp_per_part);
  EXPECT_EQ(db_->customer.num_rows(), scale.customers);
  EXPECT_EQ(db_->orders.num_rows(), scale.orders);
  EXPECT_GE(db_->lineitem.num_rows(), scale.orders);  // ≥1 line per order
  EXPECT_LE(db_->lineitem.num_rows(),
            scale.orders * scale.max_lineitems_per_order);
}

TEST_F(TpchTest, SchemasHaveTpchArities) {
  EXPECT_EQ(db_->part.num_attributes(), 9u);
  EXPECT_EQ(db_->supplier.num_attributes(), 7u);
  EXPECT_EQ(db_->partsupp.num_attributes(), 5u);
  EXPECT_EQ(db_->customer.num_attributes(), 8u);
  EXPECT_EQ(db_->orders.num_attributes(), 9u);
  EXPECT_EQ(db_->lineitem.num_attributes(), 16u);
}

TEST_F(TpchTest, PrimaryKeysAreUniqueAndDense) {
  std::set<int64_t> keys;
  for (const auto& row : db_->part.rows()) keys.insert(row[0].AsInt());
  EXPECT_EQ(keys.size(), db_->part.num_rows());
  EXPECT_EQ(*keys.begin(), 1);
  EXPECT_EQ(*keys.rbegin(), static_cast<int64_t>(db_->part.num_rows()));
}

TEST_F(TpchTest, PartsuppForeignKeysResolve) {
  for (const auto& row : db_->partsupp.rows()) {
    int64_t partkey = row[0].AsInt();
    int64_t suppkey = row[1].AsInt();
    EXPECT_GE(partkey, 1);
    EXPECT_LE(partkey, static_cast<int64_t>(db_->part.num_rows()));
    EXPECT_GE(suppkey, 1);
    EXPECT_LE(suppkey, static_cast<int64_t>(db_->supplier.num_rows()));
  }
}

TEST_F(TpchTest, PartsuppPairsAreDistinct) {
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const auto& row : db_->partsupp.rows()) {
    pairs.insert({row[0].AsInt(), row[1].AsInt()});
  }
  EXPECT_EQ(pairs.size(), db_->partsupp.num_rows());
}

TEST_F(TpchTest, OrdersForeignKeysResolve) {
  for (const auto& row : db_->orders.rows()) {
    int64_t custkey = row[1].AsInt();
    EXPECT_GE(custkey, 1);
    EXPECT_LE(custkey, static_cast<int64_t>(db_->customer.num_rows()));
  }
}

TEST_F(TpchTest, LineitemForeignKeyChainResolvesThroughPartsupp) {
  std::set<std::pair<int64_t, int64_t>> offerings;
  for (const auto& row : db_->partsupp.rows()) {
    offerings.insert({row[0].AsInt(), row[1].AsInt()});
  }
  for (const auto& row : db_->lineitem.rows()) {
    int64_t orderkey = row[0].AsInt();
    EXPECT_GE(orderkey, 1);
    EXPECT_LE(orderkey, static_cast<int64_t>(db_->orders.num_rows()));
    EXPECT_TRUE(offerings.contains({row[1].AsInt(), row[2].AsInt()}))
        << "lineitem (partkey,suppkey) not an actual offering";
  }
}

TEST_F(TpchTest, ValueDomainsOverlapAcrossRoles) {
  // The §5.1 ambiguity: p_size values must also occur as l_quantity values.
  std::set<int64_t> sizes, quantities;
  for (const auto& row : db_->part.rows()) sizes.insert(row[5].AsInt());
  for (const auto& row : db_->lineitem.rows()) {
    quantities.insert(row[4].AsInt());
  }
  std::vector<int64_t> overlap;
  std::set_intersection(sizes.begin(), sizes.end(), quantities.begin(),
                        quantities.end(), std::back_inserter(overlap));
  EXPECT_GT(overlap.size(), 10u);
}

TEST_F(TpchTest, StatusFlagVocabulariesOverlap) {
  // o_orderstatus shares "F"/"O" with l_linestatus.
  std::set<std::string> order_statuses, line_statuses;
  for (const auto& row : db_->orders.rows()) {
    order_statuses.insert(row[2].AsString());
  }
  for (const auto& row : db_->lineitem.rows()) {
    line_statuses.insert(row[9].AsString());
  }
  EXPECT_TRUE(order_statuses.contains("F"));
  EXPECT_TRUE(line_statuses.contains("F"));
  EXPECT_TRUE(order_statuses.contains("O"));
  EXPECT_TRUE(line_statuses.contains("O"));
}

TEST_F(TpchTest, DatesShareTheYyyymmddDomain) {
  for (const auto& row : db_->orders.rows()) {
    int64_t date = row[4].AsInt();
    EXPECT_GE(date, 19920101);
    EXPECT_LE(date, 19991231);
  }
  for (const auto& row : db_->lineitem.rows()) {
    EXPECT_GE(row[10].AsInt(), 19920101);  // l_shipdate
  }
}

TEST_F(TpchTest, DeterministicInSeed) {
  auto a = GenerateTpch(MiniScaleA(), 7);
  auto b = GenerateTpch(MiniScaleA(), 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->lineitem.rows(), b->lineitem.rows());
  auto c = GenerateTpch(MiniScaleA(), 8);
  EXPECT_NE(a->lineitem.rows(), c->lineitem.rows());
}

TEST_F(TpchTest, PaperJoinsAreWellFormedAndNonNullable) {
  auto joins = PaperTpchJoins(*db_);
  ASSERT_EQ(joins.size(), 5u);
  for (const auto& join : joins) {
    auto index = core::SignatureIndex::Build(*join.r, *join.p);
    ASSERT_TRUE(index.ok()) << join.description;
    std::vector<std::pair<std::string, std::string>> names(
        join.equalities.begin(), join.equalities.end());
    auto goal = index->omega().PredicateFromNames(names);
    ASSERT_TRUE(goal.ok()) << join.description;
    EXPECT_EQ(goal->Count(), join.number == 5 ? 2u : 1u);
    EXPECT_TRUE(index->IsNonNullable(*goal)) << join.description;
  }
}

TEST_F(TpchTest, CartesianProductOrderingMatchesPaper) {
  // |Join1| = |Join2| < |Join3| < |Join5| < |Join4| (Table 1 shape).
  auto joins = PaperTpchJoins(*db_);
  auto size = [&](int i) {
    return static_cast<uint64_t>(joins[i].r->num_rows()) *
           joins[i].p->num_rows();
  };
  EXPECT_EQ(size(0), size(1));
  EXPECT_LT(size(1), size(2));
  EXPECT_LT(size(2), size(4));
  EXPECT_LT(size(4), size(3));
}

TEST(TpchScaleTest, InvalidScaleRejected) {
  TpchScale zero;
  EXPECT_FALSE(GenerateTpch(zero, 1).ok());
}

TEST(TpchScaleTest, ScaleBIsLarger) {
  EXPECT_GT(MiniScaleB().parts, MiniScaleA().parts);
  EXPECT_GT(MiniScaleB().orders, MiniScaleA().orders);
}

}  // namespace
}  // namespace workload
}  // namespace jinfer
