// Integration tests for the serving front end: real sockets against a real
// Server. The load-bearing property is transcript bit-identity — a session
// driven over the wire must match an in-process Session step for step
// (same questions, same hypothesis words, same final predicate) — plus the
// lifecycle hardening: admission shedding, work-queue shedding, idle
// reaping, cross-tenant isolation, malformed-frame handling, and graceful
// drain (DESIGN.md §11.2, §11.3).

#include "server/server.h"

#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "core/signature_index.h"
#include "core/strategy.h"
#include "relational/csv.h"
#include "runtime/session.h"
#include "server/client.h"
#include "server/frame.h"
#include "server/protocol.h"
#include "testing/paper_fixtures.h"
#include "util/socket.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace server {
namespace {

using std::chrono::milliseconds;

struct Instance {
  rel::Relation r, p;
};

Instance Example21() {
  return {testing::Example21R(), testing::Example21P()};
}

OpenSessionBody OpenBodyFor(const Instance& inst,
                            const std::string& strategy, uint64_t seed) {
  OpenSessionBody body;
  body.strategy = strategy;
  body.seed = seed;
  body.compress = 1;
  body.r_name = inst.r.schema().relation_name();
  body.p_name = inst.p.schema().relation_name();
  body.r_csv = rel::WriteRelationCsv(inst.r);
  body.p_csv = rel::WriteRelationCsv(inst.p);
  return body;
}

std::unique_ptr<Server> StartServer(ServerOptions options) {
  auto server = std::make_unique<Server>(std::move(options));
  auto status = server->Start();
  JINFER_CHECK(status.ok(), "server start failed: %s",
               status.ToString().c_str());
  return server;
}

Client ConnectTo(const Server& server) {
  auto client = Client::Connect("127.0.0.1", server.port());
  JINFER_CHECK(client.ok(), "connect failed: %s",
               client.status().ToString().c_str());
  return std::move(client).ValueOrDie();
}

/// Drives a remote session to completion against an oracle over the local
/// twin index, asserting bit-identity with a local Session at every step.
void ExpectRemoteMatchesLocal(Client& client, const Instance& inst,
                              core::StrategyKind kind, uint64_t seed,
                              const core::JoinPredicate& goal) {
  auto local_index = core::SignatureIndex::Build(inst.r, inst.p);
  ASSERT_TRUE(local_index.ok());
  runtime::Session local(*local_index, core::MakeStrategy(kind, seed));
  core::GoalOracle local_oracle(goal);
  core::GoalOracle remote_oracle(goal);

  auto open = client.OpenSession(
      OpenBodyFor(inst, core::StrategyKindName(kind), seed));
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ(open->num_classes, local_index->num_classes());

  size_t steps = 0;
  while (true) {
    auto question = client.NextQuestion();
    ASSERT_TRUE(question.ok()) << question.status().ToString();
    auto local_q = local.NextQuestion();
    if (question->finished) {
      EXPECT_FALSE(local_q.has_value())
          << "remote finished but local has a question";
      break;
    }
    ASSERT_TRUE(local_q.has_value())
        << "local finished but remote asked a question";
    EXPECT_EQ(question->class_id, *local_q) << "step " << steps;
    EXPECT_EQ(PredicateFromWords(question->predicate_words),
              local.CurrentPredicate())
        << "hypothesis diverged at step " << steps;

    const core::Label label =
        remote_oracle.LabelClass(*local_index, question->class_id);
    ASSERT_TRUE(
        local.Answer(local_oracle.LabelClass(*local_index, *local_q)).ok());
    auto answered = client.Answer(label == core::Label::kPositive);
    ASSERT_TRUE(answered.ok()) << answered.status().ToString();
    EXPECT_EQ(PredicateFromWords(answered->predicate_words),
              local.CurrentPredicate())
        << "post-answer hypothesis diverged at step " << steps;
    ++steps;
  }

  auto closed = client.CloseSession();
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  EXPECT_EQ(closed->num_interactions, local.num_interactions());
  EXPECT_EQ(PredicateFromWords(closed->predicate_words),
            local.Result().predicate);
}

// --- Transcript bit-identity ------------------------------------------------

TEST(ServerTest, RemoteTranscriptsMatchInProcessRuns) {
  for (int workers : {1, 4}) {
    ServerOptions options;
    options.workers = workers;
    auto server = StartServer(options);

    const Instance inst = Example21();
    auto index = core::SignatureIndex::Build(inst.r, inst.p);
    ASSERT_TRUE(index.ok());
    const core::JoinPredicate goal =
        testing::Pred(index->omega(), {{0, 0}, {1, 1}});

    for (core::StrategyKind kind :
         {core::StrategyKind::kBottomUp, core::StrategyKind::kLookahead1,
          core::StrategyKind::kRandom}) {
      for (uint64_t seed : {7u, 42u}) {
        Client client = ConnectTo(*server);
        ExpectRemoteMatchesLocal(client, inst, kind, seed, goal);
      }
    }
    server->RequestDrain();
    EXPECT_TRUE(server->Wait().ok());
    EXPECT_EQ(server->manager().hosted_open(), 0u);
  }
}

TEST(ServerTest, SyntheticInstanceMatchesAcrossConcurrentClients) {
  auto inst_result = workload::GenerateSynthetic({3, 3, 30, 6}, 99);
  ASSERT_TRUE(inst_result.ok());
  const Instance inst{inst_result->r, inst_result->p};
  auto index = core::SignatureIndex::Build(inst.r, inst.p);
  ASSERT_TRUE(index.ok());
  const core::JoinPredicate goal = testing::Pred(index->omega(), {{1, 2}});

  ServerOptions options;
  options.workers = 4;
  auto server = StartServer(options);

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client = ConnectTo(*server);
      ExpectRemoteMatchesLocal(client, inst,
                               core::StrategyKind::kLookahead1,
                               /*seed=*/uint64_t(i), goal);
    });
  }
  for (auto& t : threads) t.join();

  // All four tenants uploaded the same instance; the fingerprint dedups
  // them onto one build through the tiered cache.
  StatsOkBody stats = server->Stats();
  EXPECT_EQ(stats.cache_builds, 1u);
  EXPECT_EQ(stats.sessions_completed, uint64_t(kClients));
  EXPECT_EQ(stats.sessions_open, 0u);
}

// --- Load shedding ----------------------------------------------------------

TEST(ServerTest, AdmissionControlShedsThenRecovers) {
  ServerOptions options;
  options.runtime.max_sessions = 1;
  auto server = StartServer(options);
  const Instance inst = Example21();

  Client first = ConnectTo(*server);
  ASSERT_TRUE(first.OpenSession(OpenBodyFor(inst, "BU", 0)).ok());

  Client second = ConnectTo(*server);
  auto shed = second.OpenSession(OpenBodyFor(inst, "BU", 0));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_TRUE(RetryLater(shed.status()));

  // Shedding refuses the open, it does not punish the connection: the same
  // client retries on the same socket once the slot frees. (CloseSession
  // on an unfinished session returns the partial predicate.)
  ASSERT_TRUE(first.CloseSession().ok());
  auto retried = second.OpenSession(OpenBodyFor(inst, "BU", 0));
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  ASSERT_TRUE(second.CloseSession().ok());

  StatsOkBody stats = server->Stats();
  EXPECT_EQ(stats.sessions_shed, 1u);
}

TEST(ServerTest, FullWorkQueueShedsWithoutClosing) {
  ServerOptions options;
  options.max_pending_work = 0;  // Everything sheds: the pathological floor.
  auto server = StartServer(options);

  Client client = ConnectTo(*server);
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto stats = client.ServerStats();
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), util::StatusCode::kResourceExhausted);
    EXPECT_TRUE(RetryLater(stats.status()));
    // The connection survives each shed — the next attempt reuses it.
  }
}

// --- Abandoned sessions -----------------------------------------------------

TEST(ServerTest, IdleConnectionsAreReapedAndSessionsAborted) {
  ServerOptions options;
  options.limits.idle_timeout = milliseconds(150);
  auto server = StartServer(options);
  const Instance inst = Example21();

  Client client = ConnectTo(*server);
  ASSERT_TRUE(client.OpenSession(OpenBodyFor(inst, "BU", 0)).ok());
  ASSERT_TRUE(client.NextQuestion().ok());

  // The client wanders off. The idle timeout must close the connection and
  // abort the hosted session, releasing its cache pin.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server->manager().hosted_open() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(20));
  }
  EXPECT_EQ(server->manager().hosted_open(), 0u);

  StatsOkBody stats = server->Stats();
  EXPECT_EQ(stats.sessions_aborted, 1u);
  EXPECT_EQ(stats.connections_open, 0u);
  EXPECT_GE(stats.deadline_closes, 1u);

  // Client-side, the socket is dead: the next round trip fails.
  EXPECT_FALSE(client.NextQuestion().ok());
}

// --- Protocol errors over a raw socket --------------------------------------

/// Sends raw bytes, then reads one response frame (expecting kError) and
/// asserts the connection is closed afterwards (EOF on the next read).
void ExpectErrorThenClose(const Server& server,
                          const std::vector<uint8_t>& wire,
                          util::StatusCode want_code) {
  auto sock = util::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(util::SetIoTimeout(*sock, milliseconds(5000)).ok());
  ASSERT_TRUE(util::WriteAll(*sock, wire).ok());

  uint8_t header_bytes[kFrameHeaderBytes];
  ASSERT_TRUE(
      util::ReadExact(*sock, std::span<uint8_t>(header_bytes)).ok());
  auto header = DecodeFrameHeader(std::span<const uint8_t>(header_bytes),
                                  kMaxFramePayload);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, static_cast<uint8_t>(FrameType::kError));
  std::vector<uint8_t> payload(header->payload_bytes);
  ASSERT_TRUE(util::ReadExact(*sock, std::span<uint8_t>(payload)).ok());
  auto frame = DecodeFramePayload(*header, payload);
  ASSERT_TRUE(frame.ok());
  auto err = DecodeError(frame->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, static_cast<uint32_t>(want_code));
  EXPECT_TRUE(err->flags & kErrorFlagWillClose)
      << "error should announce the close";

  // The server promised to close: the next read is EOF, not a hang.
  uint8_t byte;
  auto eof = util::ReadExact(*sock, std::span<uint8_t>(&byte, 1));
  EXPECT_FALSE(eof.ok());
}

TEST(ServerTest, MalformedFramesGetTypedErrorThenClose) {
  auto server = StartServer(ServerOptions{});

  // Bad magic.
  {
    auto wire = EncodeFrame(FrameType::kStats, {});
    uint32_t magic = 0x12345678;
    std::memcpy(wire.data(), &magic, sizeof(magic));
    ExpectErrorThenClose(*server, wire, util::StatusCode::kParseError);
  }
  // Oversized length prefix (hostile 4 GiB claim; only the header is sent).
  {
    auto wire = EncodeFrame(FrameType::kOpenSession, {});
    FrameHeader header;
    std::memcpy(&header, wire.data(), sizeof(header));
    header.payload_bytes = 0xffffff00u;
    std::memcpy(wire.data(), &header, sizeof(header));
    wire.resize(kFrameHeaderBytes);
    ExpectErrorThenClose(*server, wire, util::StatusCode::kParseError);
  }
  // Checksum mismatch.
  {
    const std::vector<uint8_t> payload = Encode(NextQuestionBody{1});
    auto wire = EncodeFrame(FrameType::kNextQuestion, payload);
    wire.back() ^= 0x80;
    ExpectErrorThenClose(*server, wire, util::StatusCode::kParseError);
  }
  // A response-type frame from a client is never legal.
  {
    auto wire = EncodeFrame(FrameType::kQuestion, Encode(QuestionBody{}));
    ExpectErrorThenClose(*server, wire, util::StatusCode::kParseError);
  }
  // Well-framed garbage: the frame parses, the body does not.
  {
    const std::vector<uint8_t> junk = {1, 2, 3};
    auto wire = EncodeFrame(FrameType::kAnswer, junk);
    ExpectErrorThenClose(*server, wire, util::StatusCode::kParseError);
  }

  StatsOkBody stats = server->Stats();
  EXPECT_GE(stats.protocol_errors, 5u);
}

TEST(ServerTest, MidFrameEofIsAProtocolErrorNotAHang) {
  auto server = StartServer(ServerOptions{});
  auto sock = util::ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(util::SetIoTimeout(*sock, milliseconds(5000)).ok());

  // A header promising 100 payload bytes, then half-close: the server sees
  // EOF mid-frame and must fail the connection cleanly.
  auto wire = EncodeFrame(FrameType::kAnswer,
                          std::vector<uint8_t>(100, 0xaa));
  wire.resize(kFrameHeaderBytes + 10);
  ASSERT_TRUE(util::WriteAll(*sock, wire).ok());
  ASSERT_EQ(::shutdown(sock->fd(), SHUT_WR), 0);

  // The server answers with a typed error (it can still write — only our
  // write side is closed), then closes.
  uint8_t header_bytes[kFrameHeaderBytes];
  ASSERT_TRUE(
      util::ReadExact(*sock, std::span<uint8_t>(header_bytes)).ok());
  auto header = DecodeFrameHeader(std::span<const uint8_t>(header_bytes),
                                  kMaxFramePayload);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, static_cast<uint8_t>(FrameType::kError));
}

// --- Cross-tenant isolation -------------------------------------------------

TEST(ServerTest, SessionOwnershipViolationClosesViolatorOnly) {
  auto server = StartServer(ServerOptions{});
  const Instance inst = Example21();
  auto index = core::SignatureIndex::Build(inst.r, inst.p);
  ASSERT_TRUE(index.ok());
  const core::JoinPredicate goal =
      testing::Pred(index->omega(), {{0, 0}, {1, 1}});

  Client victim = ConnectTo(*server);
  auto victim_open = victim.OpenSession(OpenBodyFor(inst, "BU", 0));
  ASSERT_TRUE(victim_open.ok());

  Client attacker = ConnectTo(*server);
  ASSERT_TRUE(attacker.OpenSession(OpenBodyFor(inst, "TD", 0)).ok());

  // The attacker names the victim's session in a NextQuestion frame.
  NextQuestionBody forged;
  forged.session_id = victim_open->session_id;
  auto stolen = attacker.RoundTrip(FrameType::kNextQuestion, Encode(forged));
  ASSERT_FALSE(stolen.ok());
  EXPECT_EQ(stolen.status().code(),
            util::StatusCode::kFailedPrecondition);
  // The violator's connection is closed...
  EXPECT_FALSE(attacker.NextQuestion().ok());

  // ...and the victim's transcript is untouched: it still completes
  // bit-identically to a fresh in-process run.
  runtime::Session local(*index,
                         core::MakeStrategy(core::StrategyKind::kBottomUp));
  core::GoalOracle oracle(goal);
  while (true) {
    auto q = victim.NextQuestion();
    ASSERT_TRUE(q.ok());
    auto lq = local.NextQuestion();
    if (q->finished) {
      EXPECT_FALSE(lq.has_value());
      break;
    }
    ASSERT_TRUE(lq.has_value());
    EXPECT_EQ(q->class_id, *lq);
    const core::Label label = oracle.LabelClass(*index, *lq);
    ASSERT_TRUE(local.Answer(label).ok());
    ASSERT_TRUE(victim.Answer(label == core::Label::kPositive).ok());
  }
  auto closed = victim.CloseSession();
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(PredicateFromWords(closed->predicate_words),
            local.Result().predicate);
}

// --- Graceful drain ---------------------------------------------------------

TEST(ServerTest, GracefulDrainFinishesInFlightSessions) {
  auto server = StartServer(ServerOptions{});
  const Instance inst = Example21();
  auto index = core::SignatureIndex::Build(inst.r, inst.p);
  ASSERT_TRUE(index.ok());
  const core::JoinPredicate goal =
      testing::Pred(index->omega(), {{0, 0}, {1, 1}});

  Client client = ConnectTo(*server);
  ASSERT_TRUE(client.OpenSession(OpenBodyFor(inst, "BU", 0)).ok());
  ASSERT_TRUE(client.NextQuestion().ok());

  server->RequestDrain();

  // In-flight work continues to completion during the drain...
  core::GoalOracle oracle(goal);
  while (true) {
    auto q = client.NextQuestion();
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    if (q->finished) break;
    ASSERT_TRUE(
        client
            .Answer(oracle.LabelClass(*index, q->class_id) ==
                    core::Label::kPositive)
            .ok());
  }
  ASSERT_TRUE(client.CloseSession().ok());

  // ...while a draining server refuses new sessions on a surviving
  // connection with a retryable refusal, not a slam.
  auto refused = client.OpenSession(OpenBodyFor(inst, "BU", 0));
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(RetryLater(refused.status()));

  // Dropping the last connection lets the drain complete with OK.
  { Client goner = std::move(client); }
  EXPECT_TRUE(server->Wait().ok());

  StatsOkBody stats = server->Stats();
  EXPECT_EQ(stats.sessions_completed, 1u);
  EXPECT_EQ(stats.sessions_open, 0u);
  EXPECT_EQ(stats.connections_open, 0u);
}

TEST(ServerTest, DrainDeadlineForcesStragglersOut) {
  ServerOptions options;
  options.drain_deadline = milliseconds(200);
  auto server = StartServer(options);

  // A client that connects and then stalls forever.
  auto sock = util::ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(util::SetIoTimeout(*sock, milliseconds(5000)).ok());

  // Let the server accept it before draining.
  std::this_thread::sleep_for(milliseconds(50));
  server->RequestDrain();

  // The drain deadline evicts the straggler with a goodbye frame...
  uint8_t header_bytes[kFrameHeaderBytes];
  ASSERT_TRUE(
      util::ReadExact(*sock, std::span<uint8_t>(header_bytes)).ok());
  auto header = DecodeFrameHeader(std::span<const uint8_t>(header_bytes),
                                  kMaxFramePayload);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, static_cast<uint8_t>(FrameType::kError));

  // ...and Wait still returns OK: a deadline-bounded drain is a success.
  EXPECT_TRUE(server->Wait().ok());
}

// --- Stats ------------------------------------------------------------------

TEST(ServerTest, StatsFrameReportsCounters) {
  auto server = StartServer(ServerOptions{});
  Client client = ConnectTo(*server);
  auto stats = client.ServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->connections_accepted, 1u);
  EXPECT_EQ(stats->connections_open, 1u);
  EXPECT_GE(stats->frames_read, 1u);
}

TEST(ServerTest, StatsFrameCarriesV2HistogramSummaries) {
  auto server = StartServer(ServerOptions{});
  Client client = ConnectTo(*server);
  const Instance inst = Example21();

  // Drive one frame-execute cycle so the server-side latency histograms
  // have something to summarize.
  auto open = client.OpenSession(OpenBodyFor(inst, "TD", 1));
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  auto question = client.NextQuestion();
  ASSERT_TRUE(question.ok()) << question.status().ToString();

  auto stats = client.ServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->version, kStatsOkVersion);
  ASSERT_FALSE(stats->histograms.empty());
  bool saw_execute = false;
  for (const StatsHistogramSummary& h : stats->histograms) {
    if (h.name != "jinfer_server_frame_execute_nanos") continue;
    saw_execute = true;
    // At least the open + question frames executed; quantiles are
    // well-formed (p50 <= p99, both inside the recorded range).
    EXPECT_GE(h.count, 2u);
    EXPECT_GT(h.sum, 0u);
    EXPECT_LE(h.p50, h.p99);
    EXPECT_GT(h.p99, 0.0);
  }
  EXPECT_TRUE(saw_execute);
  EXPECT_TRUE(client.CloseSession().ok());
}

TEST(ServerTest, MetricsFrameExposesPrometheusTextWhileSessionsRun) {
  auto server = StartServer(ServerOptions{});
  Client client = ConnectTo(*server);
  const Instance inst = Example21();

  auto open = client.OpenSession(OpenBodyFor(inst, "TD", 7));
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  auto question = client.NextQuestion();
  ASSERT_TRUE(question.ok()) << question.status().ToString();

  // kMetrics mid-session: the full Prometheus text rides back over the
  // same connection without disturbing the open session.
  auto metrics = client.ServerMetrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->text.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics->text.find("jinfer_server_frames_read_total"),
            std::string::npos);
  EXPECT_NE(metrics->text.find("jinfer_server_frame_execute_nanos"),
            std::string::npos);
  EXPECT_NE(metrics->text.find("jinfer_server_sessions_open"),
            std::string::npos);

  // The session is still live: keep stepping it after the scrape.
  auto next = client.NextQuestion();
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_TRUE(client.CloseSession().ok());
}

}  // namespace
}  // namespace server
}  // namespace jinfer
