// Frame codec: round-trip property tests plus the malformed-frame corpus
// (ISSUE: truncated length prefix, oversized length, bad magic, checksum
// mismatch, trailing garbage) — every malformed shape must decode to a
// typed ParseError, never a crash, and an oversized length must be
// rejected before any payload allocation.

#include "server/frame.h"

#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"
#include "util/status.h"

namespace jinfer {
namespace server {
namespace {

std::vector<uint8_t> RandomPayload(std::mt19937_64& rng, size_t n) {
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng());
  return bytes;
}

FrameHeader HeaderOf(const std::vector<uint8_t>& wire) {
  FrameHeader header;
  std::memcpy(&header, wire.data(), sizeof(header));
  return header;
}

std::vector<uint8_t> WithHeader(const FrameHeader& header,
                                const std::vector<uint8_t>& wire) {
  std::vector<uint8_t> out = wire;
  std::memcpy(out.data(), &header, sizeof(header));
  return out;
}

// --- Round-trip properties -------------------------------------------------

TEST(FrameCodecTest, RoundTripsRandomPayloadsAtEverySize) {
  std::mt19937_64 rng(7);
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{24}, size_t{255},
                   size_t{4096}, size_t{100000}}) {
    const std::vector<uint8_t> payload = RandomPayload(rng, n);
    const std::vector<uint8_t> wire =
        EncodeFrame(FrameType::kAnswer, payload);
    ASSERT_EQ(wire.size(), kFrameHeaderBytes + n);

    auto header = DecodeFrameHeader(
        std::span<const uint8_t>(wire.data(), kFrameHeaderBytes),
        kMaxFramePayload);
    ASSERT_TRUE(header.ok()) << header.status().ToString();
    EXPECT_EQ(header->payload_bytes, n);

    auto frame = DecodeFramePayload(
        *header,
        std::span<const uint8_t>(wire.data() + kFrameHeaderBytes, n));
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, FrameType::kAnswer);
    EXPECT_EQ(frame->payload, payload);
  }
}

TEST(FrameCodecTest, RoundTripsEveryFrameType) {
  for (uint8_t type : {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x41, 0x42, 0x43,
                       0x44, 0x45, 0x46, 0x47}) {
    const std::vector<uint8_t> payload = {1, 2, 3};
    const std::vector<uint8_t> wire =
        EncodeFrame(static_cast<FrameType>(type), payload);
    auto header = DecodeFrameHeader(
        std::span<const uint8_t>(wire.data(), kFrameHeaderBytes),
        kMaxFramePayload);
    ASSERT_TRUE(header.ok()) << "type " << int(type);
    EXPECT_EQ(header->type, type);
    EXPECT_TRUE(IsKnownFrameType(type));
  }
  EXPECT_TRUE(IsRequestType(0x01));
  EXPECT_FALSE(IsRequestType(0x41));
  EXPECT_FALSE(IsRequestType(0x00));
  EXPECT_FALSE(IsKnownFrameType(0x7f));
}

// --- The malformed-frame corpus --------------------------------------------

TEST(FrameCodecTest, RejectsBadMagic) {
  auto wire = EncodeFrame(FrameType::kStats, {});
  FrameHeader header = HeaderOf(wire);
  header.magic = 0xdeadbeef;
  wire = WithHeader(header, wire);
  auto decoded = DecodeFrameHeader(
      std::span<const uint8_t>(wire.data(), kFrameHeaderBytes),
      kMaxFramePayload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(decoded.status().ToString().find("magic"), std::string::npos);
}

TEST(FrameCodecTest, RejectsUnsupportedVersion) {
  auto wire = EncodeFrame(FrameType::kStats, {});
  FrameHeader header = HeaderOf(wire);
  header.version = 99;
  wire = WithHeader(header, wire);
  auto decoded = DecodeFrameHeader(
      std::span<const uint8_t>(wire.data(), kFrameHeaderBytes),
      kMaxFramePayload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kParseError);
}

TEST(FrameCodecTest, RejectsUnknownType) {
  auto wire = EncodeFrame(FrameType::kStats, {});
  FrameHeader header = HeaderOf(wire);
  header.type = 0x33;
  wire = WithHeader(header, wire);
  auto decoded = DecodeFrameHeader(
      std::span<const uint8_t>(wire.data(), kFrameHeaderBytes),
      kMaxFramePayload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kParseError);
}

TEST(FrameCodecTest, RejectsOversizedLengthBeforeBuffering) {
  // A hostile 4 GiB-ish length prefix must die at header validation — the
  // caller never allocates or waits for the claimed payload.
  auto wire = EncodeFrame(FrameType::kOpenSession, {});
  FrameHeader header = HeaderOf(wire);
  header.payload_bytes = 0xfffffff0u;
  wire = WithHeader(header, wire);
  auto decoded = DecodeFrameHeader(
      std::span<const uint8_t>(wire.data(), kFrameHeaderBytes),
      kMaxFramePayload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(decoded.status().ToString().find("oversized"),
            std::string::npos);
}

TEST(FrameCodecTest, HonorsPerServerPayloadBound) {
  // A deployment may lower the bound below kMaxFramePayload; a payload legal
  // globally but over the local bound is rejected the same way.
  const std::vector<uint8_t> payload(1024, 0xab);
  auto wire = EncodeFrame(FrameType::kOpenSession, payload);
  auto decoded = DecodeFrameHeader(
      std::span<const uint8_t>(wire.data(), kFrameHeaderBytes),
      /*max_payload=*/512);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kParseError);
}

TEST(FrameCodecTest, RejectsChecksumMismatch) {
  const std::vector<uint8_t> payload = {10, 20, 30, 40};
  auto wire = EncodeFrame(FrameType::kAnswer, payload);
  wire[kFrameHeaderBytes + 2] ^= 0x01;  // Corrupt one payload byte.
  auto header = DecodeFrameHeader(
      std::span<const uint8_t>(wire.data(), kFrameHeaderBytes),
      kMaxFramePayload);
  ASSERT_TRUE(header.ok());
  auto frame = DecodeFramePayload(
      *header, std::span<const uint8_t>(wire.data() + kFrameHeaderBytes,
                                        payload.size()));
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(frame.status().ToString().find("checksum"), std::string::npos);
}

TEST(FrameCodecTest, RejectsPayloadLengthMismatch) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  auto wire = EncodeFrame(FrameType::kAnswer, payload);
  auto header = DecodeFrameHeader(
      std::span<const uint8_t>(wire.data(), kFrameHeaderBytes),
      kMaxFramePayload);
  ASSERT_TRUE(header.ok());
  auto frame = DecodeFramePayload(
      *header,
      std::span<const uint8_t>(wire.data() + kFrameHeaderBytes, 3));
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), util::StatusCode::kParseError);
}

// --- WireReader bounds and exactness ---------------------------------------

TEST(WireReaderTest, RejectsTruncatedScalars) {
  const uint8_t three[3] = {1, 2, 3};
  WireReader r((std::span<const uint8_t>(three)));
  EXPECT_FALSE(r.U32().ok());
  EXPECT_FALSE(r.U64().ok());
  auto got = r.U8();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 1);
}

TEST(WireReaderTest, RejectsStringLengthPastEnd) {
  WireWriter w;
  w.U32(1000);  // Claims 1000 bytes; none follow.
  const auto bytes = std::move(w).Take();
  WireReader r((std::span<const uint8_t>(bytes)));
  auto s = r.Str();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), util::StatusCode::kParseError);
}

TEST(WireReaderTest, FinishRejectsTrailingGarbage) {
  WireWriter w;
  w.U8(1);
  w.U8(2);
  const auto bytes = std::move(w).Take();
  WireReader r((std::span<const uint8_t>(bytes)));
  ASSERT_TRUE(r.U8().ok());
  EXPECT_FALSE(r.Finish().ok());
  ASSERT_TRUE(r.U8().ok());
  EXPECT_TRUE(r.Finish().ok());
}

TEST(WireReaderTest, RoundTripsScalarsAndStrings) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const uint8_t a = static_cast<uint8_t>(rng());
    const uint32_t b = static_cast<uint32_t>(rng());
    const uint64_t c = rng();
    std::string s;
    for (size_t i = rng() % 40; i > 0; --i) {
      s.push_back(static_cast<char>(rng()));  // Arbitrary bytes, NULs too.
    }
    WireWriter w;
    w.U8(a);
    w.Str(s);
    w.U64(c);
    w.U32(b);
    const auto bytes = std::move(w).Take();
    WireReader r((std::span<const uint8_t>(bytes)));
    EXPECT_EQ(r.U8().ValueOrDie(), a);
    EXPECT_EQ(r.Str().ValueOrDie(), s);
    EXPECT_EQ(r.U64().ValueOrDie(), c);
    EXPECT_EQ(r.U32().ValueOrDie(), b);
    EXPECT_TRUE(r.Finish().ok());
  }
}

// --- Protocol bodies -------------------------------------------------------

TEST(ProtocolTest, RoundTripsOpenSession) {
  OpenSessionBody body;
  body.strategy = "L2S";
  body.seed = 0x1234567890abcdefULL;
  body.compress = 0;
  body.r_name = "Flight";
  body.p_name = "Hotel";
  body.r_csv = "From,To\nParis,Lille\n";
  body.p_csv = "City,Discount\nNYC,\"A,A\"\n";
  auto decoded = DecodeOpenSession(Encode(body));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->strategy, body.strategy);
  EXPECT_EQ(decoded->seed, body.seed);
  EXPECT_EQ(decoded->compress, body.compress);
  EXPECT_EQ(decoded->r_csv, body.r_csv);
  EXPECT_EQ(decoded->p_csv, body.p_csv);
}

TEST(ProtocolTest, RoundTripsQuestionWithPredicateWords) {
  QuestionBody body;
  body.session_id = 42;
  body.finished = 0;
  body.question_index = 7;
  body.class_id = 3;
  body.r_text = "R: A=1";
  body.p_text = "P: B=2";
  body.predicate_text = "{(A1,B2)}";
  body.predicate_words[0] = 0x8000000000000001ULL;
  body.predicate_words[3] = 0xf0f0f0f0f0f0f0f0ULL;
  auto decoded = DecodeQuestion(Encode(body));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->session_id, 42u);
  EXPECT_EQ(decoded->class_id, 3u);
  EXPECT_EQ(decoded->predicate_words[0], body.predicate_words[0]);
  EXPECT_EQ(decoded->predicate_words[3], body.predicate_words[3]);
}

TEST(ProtocolTest, RoundTripsStatsAndError) {
  StatsOkBody stats;
  stats.connections_accepted = 1;
  stats.frames_read = 99;
  stats.deadline_closes = 3;
  auto s = DecodeStatsOk(Encode(stats));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->connections_accepted, 1u);
  EXPECT_EQ(s->frames_read, 99u);
  EXPECT_EQ(s->deadline_closes, 3u);

  ErrorBody err;
  err.code = static_cast<uint32_t>(util::StatusCode::kResourceExhausted);
  err.flags = kErrorFlagRetryLater;
  err.message = "server overloaded";
  auto e = DecodeError(Encode(err));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->code, err.code);
  EXPECT_EQ(e->flags, kErrorFlagRetryLater);
  EXPECT_EQ(e->message, err.message);
}

TEST(ProtocolTest, RoundTripsStatsOkV2HistogramSummaries) {
  StatsOkBody stats;
  stats.frames_read = 7;
  StatsHistogramSummary h;
  h.name = "jinfer_server_frame_execute_nanos";
  h.count = 12;
  h.sum = 34567;
  h.p50 = 1536.5;
  h.p99 = 4096.25;
  stats.histograms.push_back(h);
  h.name = "jinfer_session_question_nanos";
  h.count = 0;
  h.p50 = 0.0;
  h.p99 = 0.0;
  stats.histograms.push_back(h);
  auto decoded = DecodeStatsOk(Encode(stats));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, kStatsOkVersion);
  ASSERT_EQ(decoded->histograms.size(), 2u);
  EXPECT_EQ(decoded->histograms[0].name,
            "jinfer_server_frame_execute_nanos");
  EXPECT_EQ(decoded->histograms[0].count, 12u);
  EXPECT_EQ(decoded->histograms[0].sum, 34567u);
  // Doubles travel bit_cast'd, so equality is exact, not approximate.
  EXPECT_EQ(decoded->histograms[0].p50, 1536.5);
  EXPECT_EQ(decoded->histograms[0].p99, 4096.25);
  EXPECT_EQ(decoded->histograms[1].name, "jinfer_session_question_nanos");
  EXPECT_EQ(decoded->histograms[1].count, 0u);
}

TEST(ProtocolTest, StatsOkDecoderRejectsUnknownVersion) {
  auto wire = Encode(StatsOkBody{});
  // The version word leads the payload, little-endian. A v3 server's reply
  // must fail loudly, not misparse as shifted counters.
  wire[0] = 3;
  auto decoded = DecodeStatsOk(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(decoded.status().ToString().find("version"), std::string::npos);
}

TEST(ProtocolTest, StatsOkDecoderRejectsHostileHistogramCount) {
  // A count claiming more histograms than the remaining bytes could hold
  // must be rejected before any allocation sized from it.
  auto wire = Encode(StatsOkBody{});
  ASSERT_GE(wire.size(), 4u);
  for (int i = 0; i < 4; ++i) wire[wire.size() - 4 + i] = 0xff;
  EXPECT_FALSE(DecodeStatsOk(wire).ok());
}

TEST(ProtocolTest, RoundTripsMetricsOkText) {
  MetricsOkBody body;
  body.text =
      "# TYPE jinfer_server_frames_read_total counter\n"
      "jinfer_server_frames_read_total 9\n";
  auto decoded = DecodeMetricsOk(Encode(body));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->text, body.text);
  EXPECT_TRUE(Encode(MetricsBody{}).empty());
}

TEST(ProtocolTest, DecodersRejectTruncatedAndTrailingBytes) {
  const auto full = Encode(CloseSessionBody{42});
  // Truncated at every prefix length.
  for (size_t n = 0; n < full.size(); ++n) {
    auto decoded =
        DecodeCloseSession(std::span<const uint8_t>(full.data(), n));
    EXPECT_FALSE(decoded.ok()) << "prefix " << n;
  }
  // One trailing byte.
  auto extra = full;
  extra.push_back(0);
  EXPECT_FALSE(DecodeCloseSession(extra).ok());
}

TEST(ProtocolTest, PredicateWordsRoundTrip) {
  core::JoinPredicate predicate;
  predicate.Set(0);
  predicate.Set(63);
  predicate.Set(64);
  predicate.Set(200);
  uint64_t words[4];
  PredicateToWords(predicate, words);
  EXPECT_EQ(PredicateFromWords(words), predicate);
}

}  // namespace
}  // namespace server
}  // namespace jinfer
