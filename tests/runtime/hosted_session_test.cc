// Hosted-session lifecycle (DESIGN.md §11.2): the handle model the serving
// front end drives — open / acquire / release / close, the detach/abort
// path for vanished clients, idle reaping, and the max_sessions admission
// bound. The load-bearing regression here is the leak test: an aborted or
// reaped session must release its index pin (the shared_ptr handed out by
// the cache), observed directly via weak_ptr expiry.

#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/oracle.h"
#include "core/signature_index.h"
#include "core/strategy.h"
#include "runtime/session_manager.h"
#include "testing/paper_fixtures.h"
#include "util/status.h"

namespace jinfer {
namespace runtime {
namespace {

std::shared_ptr<const core::SignatureIndex> SharedExample21Index() {
  auto index = core::SignatureIndex::Build(testing::Example21R(),
                                           testing::Example21P());
  JINFER_CHECK(index.ok(), "fixture build failed");
  return std::make_shared<const core::SignatureIndex>(
      std::move(index).ValueOrDie());
}

util::Result<Session> MakeHosted(
    std::shared_ptr<const core::SignatureIndex> index,
    core::StrategyKind kind = core::StrategyKind::kBottomUp,
    uint64_t seed = 0) {
  return Session(std::move(index), core::MakeStrategy(kind, seed));
}

TEST(HostedSessionTest, LifecycleMatchesInProcessRun) {
  auto index = SharedExample21Index();
  const core::JoinPredicate goal =
      testing::Pred(index->omega(), {{0, 0}, {1, 1}});

  // Reference: a plain in-process session.
  Session reference(index, core::MakeStrategy(core::StrategyKind::kBottomUp));
  core::GoalOracle ref_oracle(goal);
  while (auto q = reference.NextQuestion()) {
    ASSERT_TRUE(
        reference.Answer(ref_oracle.LabelClass(reference.index(), *q)).ok());
  }

  SessionManager manager;
  auto id = manager.OpenHosted([&] { return MakeHosted(index); });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(manager.hosted_open(), 1u);

  // Drive through the lease protocol, one acquire/release per step — the
  // exact cadence the server's workers use.
  core::GoalOracle oracle(goal);
  while (true) {
    auto session = manager.AcquireHosted(*id);
    ASSERT_TRUE(session.ok());
    auto q = (*session)->NextQuestion();
    if (!q.has_value()) {
      manager.ReleaseHosted(*id);
      break;
    }
    ASSERT_TRUE(
        (*session)->Answer(oracle.LabelClass((*session)->index(), *q)).ok());
    manager.ReleaseHosted(*id);
  }

  auto result = manager.CloseHosted(*id);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->predicate, reference.Result().predicate);
  EXPECT_EQ(result->num_interactions, reference.Result().num_interactions);
  EXPECT_EQ(manager.hosted_open(), 0u);
  EXPECT_EQ(manager.stats().hosted_opened, 1u);
  EXPECT_EQ(manager.stats().hosted_closed, 1u);
}

TEST(HostedSessionTest, SecondAcquireIsFailedPrecondition) {
  auto index = SharedExample21Index();
  SessionManager manager;
  auto id = manager.OpenHosted([&] { return MakeHosted(index); });
  ASSERT_TRUE(id.ok());

  ASSERT_TRUE(manager.AcquireHosted(*id).ok());
  auto second = manager.AcquireHosted(*id);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), util::StatusCode::kFailedPrecondition);

  manager.ReleaseHosted(*id);
  EXPECT_TRUE(manager.AcquireHosted(*id).ok());
  manager.ReleaseHosted(*id);
  ASSERT_TRUE(manager.CloseHosted(*id).ok());
}

TEST(HostedSessionTest, AbortWhileLeasedIsDeferredToRelease) {
  auto index = SharedExample21Index();
  SessionManager manager;
  auto id = manager.OpenHosted([&] { return MakeHosted(index); });
  ASSERT_TRUE(id.ok());

  ASSERT_TRUE(manager.AcquireHosted(*id).ok());
  // The connection dies while a worker holds the lease: the abort must not
  // yank the session out from under the worker...
  EXPECT_TRUE(manager.AbortHosted(*id).ok());
  // ...but must win at release time.
  manager.ReleaseHosted(*id);
  auto gone = manager.AcquireHosted(*id);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(manager.hosted_open(), 0u);
  EXPECT_EQ(manager.stats().hosted_aborted, 1u);
}

TEST(HostedSessionTest, AbortReleasesIndexPin) {
  // The leak regression for ISSUE satellite 2: a session dropped via the
  // abort path must release the index shared_ptr it pinned. The weak_ptr
  // is the witness — it expires exactly when the last pin drops.
  SessionManager manager;
  std::weak_ptr<const core::SignatureIndex> watch;
  {
    auto index = SharedExample21Index();
    watch = index;
    auto id = manager.OpenHosted(
        [index = std::move(index)]() mutable {
          return MakeHosted(std::move(index));
        });
    ASSERT_TRUE(id.ok());
    EXPECT_FALSE(watch.expired());
    ASSERT_TRUE(manager.AbortHosted(*id).ok());
  }
  EXPECT_TRUE(watch.expired())
      << "aborted hosted session leaked its index pin";
}

TEST(HostedSessionTest, ReapIdleEvictsAndReleasesPin) {
  SessionManager manager;
  std::weak_ptr<const core::SignatureIndex> watch;
  {
    auto index = SharedExample21Index();
    watch = index;
    auto id = manager.OpenHosted(
        [index = std::move(index)]() mutable {
          return MakeHosted(std::move(index));
        });
    ASSERT_TRUE(id.ok());

    // A busy (leased) session is never reaped, no matter how idle.
    ASSERT_TRUE(manager.AcquireHosted(*id).ok());
    EXPECT_EQ(manager.ReapIdleHosted(std::chrono::nanoseconds(0)), 0u);
    manager.ReleaseHosted(*id);

    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_EQ(manager.ReapIdleHosted(std::chrono::milliseconds(1)), 1u);
    auto gone = manager.AcquireHosted(*id);
    ASSERT_FALSE(gone.ok());
    EXPECT_EQ(gone.status().code(), util::StatusCode::kNotFound);
  }
  EXPECT_TRUE(watch.expired())
      << "reaped hosted session leaked its index pin";
  EXPECT_EQ(manager.stats().hosted_reaped, 1u);
  EXPECT_EQ(manager.hosted_open(), 0u);
}

TEST(HostedSessionTest, MaxSessionsShedsWithResourceExhausted) {
  auto index = SharedExample21Index();
  SessionManager::Options options;
  options.max_sessions = 1;
  SessionManager manager(options);

  auto first = manager.OpenHosted([&] { return MakeHosted(index); });
  ASSERT_TRUE(first.ok());
  auto second = manager.OpenHosted([&] { return MakeHosted(index); });
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(manager.stats().hosted_shed, 1u);

  // Closing the first frees the slot.
  ASSERT_TRUE(manager.CloseHosted(*first).ok());
  auto third = manager.OpenHosted([&] { return MakeHosted(index); });
  EXPECT_TRUE(third.ok());
  ASSERT_TRUE(manager.AbortHosted(*third).ok());
}

TEST(HostedSessionTest, FactoryFailureDoesNotHoldASlot) {
  SessionManager::Options options;
  options.max_sessions = 1;
  SessionManager manager(options);

  auto failed = manager.OpenHosted(
      []() -> util::Result<Session> {
        return util::Status::IoError("injected factory fault");
      });
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(manager.hosted_open(), 0u);

  auto index = SharedExample21Index();
  auto ok = manager.OpenHosted([&] { return MakeHosted(index); });
  EXPECT_TRUE(ok.ok()) << "failed open left the admission slot reserved";
  if (ok.ok()) ASSERT_TRUE(manager.AbortHosted(*ok).ok());
}

TEST(HostedSessionTest, UnknownIdIsNotFoundEverywhere) {
  SessionManager manager;
  EXPECT_EQ(manager.AcquireHosted(12345).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(manager.CloseHosted(12345).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(manager.AbortHosted(12345).code(),
            util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace runtime
}  // namespace jinfer
