#include "runtime/index_cache.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "testing/paper_fixtures.h"

namespace jinfer {
namespace runtime {
namespace {

TEST(FingerprintTest, EqualInstancesCollide) {
  InstanceFingerprint a = FingerprintInstance(testing::Example21R(),
                                              testing::Example21P(), true);
  InstanceFingerprint b = FingerprintInstance(testing::Example21R(),
                                              testing::Example21P(), true);
  EXPECT_EQ(a, b);
}

TEST(FingerprintTest, SensitiveToEveryComponent) {
  const rel::Relation r = testing::Example21R();
  const rel::Relation p = testing::Example21P();
  const InstanceFingerprint base = FingerprintInstance(r, p, true);

  // One changed cell.
  auto r_cell = rel::Relation::Make("R0", {"A1", "A2"},
                                    {{0, 1}, {0, 2}, {2, 3}, {1, 0}});
  ASSERT_TRUE(r_cell.ok());
  EXPECT_FALSE(FingerprintInstance(*r_cell, p, true) == base);

  // Same cells, different runtime type (int 0 vs string "0").
  auto r_type = rel::Relation::Make("R0", {"A1", "A2"},
                                    {{"0", 1}, {0, 2}, {2, 2}, {1, 0}});
  ASSERT_TRUE(r_type.ok());
  EXPECT_FALSE(FingerprintInstance(*r_type, p, true) == base);

  // Renamed attribute.
  auto r_attr = rel::Relation::Make("R0", {"A1", "AX"},
                                    {{0, 1}, {0, 2}, {2, 2}, {1, 0}});
  ASSERT_TRUE(r_attr.ok());
  EXPECT_FALSE(FingerprintInstance(*r_attr, p, true) == base);

  // Renamed relation.
  auto r_name = rel::Relation::Make("RX", {"A1", "A2"},
                                    {{0, 1}, {0, 2}, {2, 2}, {1, 0}});
  ASSERT_TRUE(r_name.ok());
  EXPECT_FALSE(FingerprintInstance(*r_name, p, true) == base);

  // Swapped sides and flipped compression flag.
  EXPECT_FALSE(FingerprintInstance(p, r, true) == base);
  EXPECT_FALSE(FingerprintInstance(r, p, false) == base);
}

TEST(IndexCacheTest, SecondLookupSharesTheBuild) {
  IndexCache cache;
  auto first = cache.GetOrBuild(testing::Example21R(), testing::Example21P());
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrBuild(testing::Example21R(), testing::Example21P());
  ASSERT_TRUE(second.ok());

  EXPECT_EQ(first->get(), second->get());  // The same object, not a rebuild.
  EXPECT_EQ((*first)->num_classes(), testing::Example21Index().num_classes());

  IndexCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(IndexCacheTest, DistinctInstancesGetDistinctEntries) {
  IndexCache cache;
  auto a = cache.GetOrBuild(testing::Example21R(), testing::Example21P());
  auto b = cache.GetOrBuild(testing::FlightTable(), testing::HotelTable());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->get(), b->get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().builds, 2u);
}

// Single-flight: racing requests for one fingerprint must run the build
// exactly once — every caller gets the same shared index object.
TEST(IndexCacheTest, SingleFlightUnderRacingRequests) {
  constexpr size_t kThreads = 8;
  constexpr size_t kLookupsPerThread = 16;

  IndexCache cache;
  const rel::Relation r = testing::Example21R();
  const rel::Relation p = testing::Example21P();

  std::vector<const core::SignatureIndex*> seen(kThreads * kLookupsPerThread,
                                                nullptr);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kLookupsPerThread; ++i) {
        auto index = cache.GetOrBuild(r, p);
        ASSERT_TRUE(index.ok());
        seen[t * kLookupsPerThread + i] = index->get();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (const core::SignatureIndex* ptr : seen) EXPECT_EQ(ptr, seen[0]);

  IndexCacheStats stats = cache.stats();
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.lookups, kThreads * kLookupsPerThread);
  EXPECT_EQ(stats.hits, stats.lookups - 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(IndexCacheTest, FailedBuildIsEvictedAndRetried) {
  IndexCache cache;
  auto empty = rel::Relation::Make("E", {"A"}, {});
  ASSERT_TRUE(empty.ok());

  auto first = cache.GetOrBuild(*empty, testing::Example21P());
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(cache.size(), 0u);  // The error is not cached.

  auto second = cache.GetOrBuild(*empty, testing::Example21P());
  EXPECT_FALSE(second.ok());

  IndexCacheStats stats = cache.stats();
  EXPECT_EQ(stats.builds, 2u);  // Retried, not served from a poisoned entry.
  EXPECT_EQ(stats.failures, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(IndexCacheTest, ClearDropsEntriesButHandoutsSurvive) {
  IndexCache cache;
  auto index = cache.GetOrBuild(testing::Example21R(), testing::Example21P());
  ASSERT_TRUE(index.ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  // The handed-out shared_ptr keeps the index alive past the eviction.
  EXPECT_EQ((*index)->num_classes(), testing::Example21Index().num_classes());

  auto rebuilt = cache.GetOrBuild(testing::Example21R(),
                                  testing::Example21P());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(cache.stats().builds, 2u);
}

}  // namespace
}  // namespace runtime
}  // namespace jinfer
