#include "runtime/index_cache.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "store/index_store.h"
#include "testing/paper_fixtures.h"
#include "util/failpoint.h"

namespace jinfer {
namespace runtime {
namespace {

TEST(FingerprintTest, EqualInstancesCollide) {
  InstanceFingerprint a = FingerprintInstance(testing::Example21R(),
                                              testing::Example21P(), true);
  InstanceFingerprint b = FingerprintInstance(testing::Example21R(),
                                              testing::Example21P(), true);
  EXPECT_EQ(a, b);
}

TEST(FingerprintTest, SensitiveToEveryComponent) {
  const rel::Relation r = testing::Example21R();
  const rel::Relation p = testing::Example21P();
  const InstanceFingerprint base = FingerprintInstance(r, p, true);

  // One changed cell.
  auto r_cell = rel::Relation::Make("R0", {"A1", "A2"},
                                    {{0, 1}, {0, 2}, {2, 3}, {1, 0}});
  ASSERT_TRUE(r_cell.ok());
  EXPECT_FALSE(FingerprintInstance(*r_cell, p, true) == base);

  // Same cells, different runtime type (int 0 vs string "0").
  auto r_type = rel::Relation::Make("R0", {"A1", "A2"},
                                    {{"0", 1}, {0, 2}, {2, 2}, {1, 0}});
  ASSERT_TRUE(r_type.ok());
  EXPECT_FALSE(FingerprintInstance(*r_type, p, true) == base);

  // Renamed attribute.
  auto r_attr = rel::Relation::Make("R0", {"A1", "AX"},
                                    {{0, 1}, {0, 2}, {2, 2}, {1, 0}});
  ASSERT_TRUE(r_attr.ok());
  EXPECT_FALSE(FingerprintInstance(*r_attr, p, true) == base);

  // Renamed relation.
  auto r_name = rel::Relation::Make("RX", {"A1", "A2"},
                                    {{0, 1}, {0, 2}, {2, 2}, {1, 0}});
  ASSERT_TRUE(r_name.ok());
  EXPECT_FALSE(FingerprintInstance(*r_name, p, true) == base);

  // Swapped sides and flipped compression flag.
  EXPECT_FALSE(FingerprintInstance(p, r, true) == base);
  EXPECT_FALSE(FingerprintInstance(r, p, false) == base);
}

TEST(IndexCacheTest, SecondLookupSharesTheBuild) {
  IndexCache cache;
  auto first = cache.GetOrBuild(testing::Example21R(), testing::Example21P());
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrBuild(testing::Example21R(), testing::Example21P());
  ASSERT_TRUE(second.ok());

  EXPECT_EQ(first->get(), second->get());  // The same object, not a rebuild.
  EXPECT_EQ((*first)->num_classes(), testing::Example21Index().num_classes());

  IndexCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(IndexCacheTest, DistinctInstancesGetDistinctEntries) {
  IndexCache cache;
  auto a = cache.GetOrBuild(testing::Example21R(), testing::Example21P());
  auto b = cache.GetOrBuild(testing::FlightTable(), testing::HotelTable());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->get(), b->get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().builds, 2u);
}

// Single-flight: racing requests for one fingerprint must run the build
// exactly once — every caller gets the same shared index object.
TEST(IndexCacheTest, SingleFlightUnderRacingRequests) {
  constexpr size_t kThreads = 8;
  constexpr size_t kLookupsPerThread = 16;

  IndexCache cache;
  const rel::Relation r = testing::Example21R();
  const rel::Relation p = testing::Example21P();

  std::vector<const core::SignatureIndex*> seen(kThreads * kLookupsPerThread,
                                                nullptr);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kLookupsPerThread; ++i) {
        auto index = cache.GetOrBuild(r, p);
        ASSERT_TRUE(index.ok());
        seen[t * kLookupsPerThread + i] = index->get();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (const core::SignatureIndex* ptr : seen) EXPECT_EQ(ptr, seen[0]);

  IndexCacheStats stats = cache.stats();
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.lookups, kThreads * kLookupsPerThread);
  EXPECT_EQ(stats.hits, stats.lookups - 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(IndexCacheTest, FailedBuildIsEvictedAndRetried) {
  IndexCache cache;
  auto empty = rel::Relation::Make("E", {"A"}, {});
  ASSERT_TRUE(empty.ok());

  auto first = cache.GetOrBuild(*empty, testing::Example21P());
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(cache.size(), 0u);  // The error is not cached.

  auto second = cache.GetOrBuild(*empty, testing::Example21P());
  EXPECT_FALSE(second.ok());

  IndexCacheStats stats = cache.stats();
  EXPECT_EQ(stats.builds, 2u);  // Retried, not served from a poisoned entry.
  EXPECT_EQ(stats.failures, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

// --- Tiering and the capacity bound (ISSUE 4) -------------------------

/// A second distinct instance with the same shape as Example 2.1.
rel::Relation AltR() {
  auto r = rel::Relation::Make("R0", {"A1", "A2"},
                               {{7, 8}, {8, 9}, {9, 7}, {7, 9}});
  JINFER_CHECK(r.ok(), "alt fixture");
  return std::move(r).ValueOrDie();
}

TEST(IndexCacheTest, TierIsReportedPerLookup) {
  IndexCache cache;
  auto first = cache.GetOrBuildTiered(testing::Example21R(),
                                      testing::Example21P());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->tier, IndexTier::kBuilt);
  auto second = cache.GetOrBuildTiered(testing::Example21R(),
                                       testing::Example21P());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->tier, IndexTier::kMemory);
  EXPECT_EQ(first->index.get(), second->index.get());
}

// The PR 3 cache never evicted; the bound + sketch admission is the fix.
// A cold newcomer must not displace a hot resident, and a newcomer that
// *becomes* hot must eventually displace it.
TEST(IndexCacheTest, ColdNewcomerDoesNotDisplaceAHotResident) {
  IndexCache cache(IndexCacheOptions{{}, /*capacity=*/1, nullptr});

  // Make the first instance hot: five lookups.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        cache.GetOrBuild(testing::Example21R(), testing::Example21P()).ok());
  }
  // One access of a second instance: resolved and returned, not admitted.
  auto cold = cache.GetOrBuildTiered(AltR(), testing::Example21P());
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->tier, IndexTier::kBuilt);
  EXPECT_EQ(cold->index->num_classes() > 0, true);  // Usable handout.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().rejected_admissions, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // The hot instance is still resident (memory-tier hit, no rebuild).
  auto hot = cache.GetOrBuildTiered(testing::Example21R(),
                                    testing::Example21P());
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->tier, IndexTier::kMemory);
}

TEST(IndexCacheTest, NewlyHotInstanceEventuallyEvictsTheColdOne) {
  IndexCache cache(IndexCacheOptions{{}, /*capacity=*/1, nullptr});
  ASSERT_TRUE(
      cache.GetOrBuild(testing::Example21R(), testing::Example21P()).ok());

  // Hammer the second instance until its sketch frequency beats the
  // resident's (1 access); the second access is already strictly hotter.
  IndexTier last = IndexTier::kBuilt;
  for (int i = 0; i < 4 && last != IndexTier::kMemory; ++i) {
    auto got = cache.GetOrBuildTiered(AltR(), testing::Example21P());
    ASSERT_TRUE(got.ok());
    last = got->tier;
  }
  EXPECT_EQ(last, IndexTier::kMemory);  // Admitted and then hit.
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(IndexCacheTest, ZeroCapacityOptsIntoUnbounded) {
  IndexCache cache(IndexCacheOptions{{}, /*capacity=*/0, nullptr});
  ASSERT_TRUE(
      cache.GetOrBuild(testing::Example21R(), testing::Example21P()).ok());
  ASSERT_TRUE(
      cache.GetOrBuild(testing::FlightTable(), testing::HotelTable()).ok());
  ASSERT_TRUE(cache.GetOrBuild(AltR(), testing::Example21P()).ok());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().rejected_admissions, 0u);
}

TEST(IndexCacheTest, StoreTierServesMappedAcrossCaches) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("jinfer_cache_store_test_" + std::to_string(::getpid())))
          .string();
  auto opened = store::IndexStore::Open(dir);
  ASSERT_TRUE(opened.ok());
  auto shared_store =
      std::make_shared<store::IndexStore>(std::move(opened).ValueOrDie());

  {
    // First process/cache: miss → build → persist.
    IndexCache cache(IndexCacheOptions{{}, kDefaultIndexCacheCapacity,
                                       shared_store});
    auto built = cache.GetOrBuildTiered(testing::Example21R(),
                                        testing::Example21P());
    ASSERT_TRUE(built.ok());
    EXPECT_EQ(built->tier, IndexTier::kBuilt);
    EXPECT_EQ(cache.stats().store_writes, 1u);
  }
  {
    // "Restarted" cache over the same store: miss → mmap, no rebuild.
    IndexCache cache(IndexCacheOptions{{}, kDefaultIndexCacheCapacity,
                                       shared_store});
    auto mapped = cache.GetOrBuildTiered(testing::Example21R(),
                                         testing::Example21P());
    ASSERT_TRUE(mapped.ok());
    EXPECT_EQ(mapped->tier, IndexTier::kMapped);
    EXPECT_EQ(cache.stats().builds, 0u);
    EXPECT_EQ(cache.stats().mapped_loads, 1u);
    // The mapped index serves classification like a built one.
    EXPECT_EQ(mapped->index->num_classes(),
              testing::Example21Index().num_classes());
    // And the next lookup is a plain memory hit.
    auto again = cache.GetOrBuildTiered(testing::Example21R(),
                                        testing::Example21P());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->tier, IndexTier::kMemory);
    EXPECT_EQ(again->index.get(), mapped->index.get());
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// --- Failure-domain hardening (DESIGN.md §10) -------------------------

/// Tests that arm failpoints must disarm them even on assertion failure.
class IndexCacheChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { util::Failpoints::Reset(); }
  void TearDown() override { util::Failpoints::Reset(); }
};

TEST_F(IndexCacheChaosTest, TransientBuildFailureArmsBackoffThenRecovers) {
  IndexCacheOptions options;
  options.failure_backoff_base = std::chrono::milliseconds(30);
  IndexCache cache(options);
  ASSERT_TRUE(util::Failpoints::Arm("cache.build", "count:1").ok());

  // First lookup: the injected fault fails the build transiently.
  auto first = cache.GetOrBuild(testing::Example21R(), testing::Example21P());
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsUnavailable());

  // Inside the backoff window: fail fast, no second build.
  auto second = cache.GetOrBuild(testing::Example21R(), testing::Example21P());
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsUnavailable());
  IndexCacheStats mid = cache.stats();
  EXPECT_EQ(mid.builds, 1u);
  EXPECT_EQ(mid.failures, 1u);
  EXPECT_EQ(mid.backoff_arms, 1u);
  EXPECT_EQ(mid.fail_fast, 1u);

  // Past the window (the failpoint exhausted itself): a real, successful
  // retry — and the backoff state is wiped by the success.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  auto third = cache.GetOrBuild(testing::Example21R(), testing::Example21P());
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(cache.stats().builds, 2u);
  auto fourth = cache.GetOrBuild(testing::Example21R(), testing::Example21P());
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(cache.stats().fail_fast, 1u);  // No new fail-fasts.
}

TEST_F(IndexCacheChaosTest, PermanentBuildFailureNeverArmsBackoff) {
  IndexCache cache;
  auto empty = rel::Relation::Make("E", {"A"}, {});
  ASSERT_TRUE(empty.ok());
  // Two immediate failures, both run for real: InvalidArgument is cheap to
  // reproduce and honest to report — backing off would only delay it.
  EXPECT_FALSE(cache.GetOrBuild(*empty, testing::Example21P()).ok());
  EXPECT_FALSE(cache.GetOrBuild(*empty, testing::Example21P()).ok());
  IndexCacheStats stats = cache.stats();
  EXPECT_EQ(stats.builds, 2u);
  EXPECT_EQ(stats.backoff_arms, 0u);
  EXPECT_EQ(stats.fail_fast, 0u);
}

TEST_F(IndexCacheChaosTest, ZeroBackoffBaseDisablesFailFast) {
  IndexCacheOptions options;
  options.failure_backoff_base = std::chrono::milliseconds(0);
  IndexCache cache(options);
  ASSERT_TRUE(util::Failpoints::Arm("cache.build", "count:2").ok());
  EXPECT_FALSE(
      cache.GetOrBuild(testing::Example21R(), testing::Example21P()).ok());
  EXPECT_FALSE(
      cache.GetOrBuild(testing::Example21R(), testing::Example21P()).ok());
  IndexCacheStats stats = cache.stats();
  EXPECT_EQ(stats.builds, 2u);  // Every lookup retried for real.
  EXPECT_EQ(stats.fail_fast, 0u);
  EXPECT_EQ(stats.backoff_arms, 0u);
}

TEST_F(IndexCacheChaosTest, TransientStoreLoadDegradesToABuild) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("jinfer_cache_degraded_test_" + std::to_string(::getpid())))
          .string();
  auto opened = store::IndexStore::Open(dir);
  ASSERT_TRUE(opened.ok());
  auto shared_store =
      std::make_shared<store::IndexStore>(std::move(opened).ValueOrDie());

  {
    // Persist the index so the next cache would normally mmap it.
    IndexCache cache(IndexCacheOptions{{}, kDefaultIndexCacheCapacity,
                                       shared_store});
    ASSERT_TRUE(
        cache.GetOrBuild(testing::Example21R(), testing::Example21P()).ok());
    ASSERT_EQ(cache.stats().store_writes, 1u);
  }

  // Exhaust the store's whole mmap retry budget (default 3 attempts):
  // the load comes back kUnavailable, and the cache serves a fresh build
  // instead of failing the lookup.
  ASSERT_TRUE(util::Failpoints::Arm("store.load.mmap", "count:3").ok());
  IndexCache cache(IndexCacheOptions{{}, kDefaultIndexCacheCapacity,
                                     shared_store});
  auto got = cache.GetOrBuildTiered(testing::Example21R(),
                                    testing::Example21P());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->tier, IndexTier::kBuilt);
  IndexCacheStats stats = cache.stats();
  EXPECT_EQ(stats.degraded_builds, 1u);
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.mapped_loads, 0u);
  // The stored file was NOT quarantined — nothing was wrong with it.
  EXPECT_TRUE(shared_store->Contains(
      FingerprintInstance(testing::Example21R(), testing::Example21P(),
                          cache.options().build.compress)));

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST_F(IndexCacheChaosTest, ClearRacingInFlightResolutionsNeverWedges) {
  // Builds are slowed (sleep mode trips never fail) so Clear() reliably
  // lands while resolutions are in flight. Every lookup must still get a
  // usable index or a clean error — never a hang or a poisoned entry.
  ASSERT_TRUE(util::Failpoints::Arm("cache.build", "sleep:2").ok());
  IndexCache cache;
  const rel::Relation r = testing::Example21R();
  const rel::Relation p = testing::Example21P();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> successes{0};
  std::vector<std::thread> lookups;
  for (int t = 0; t < 4; ++t) {
    lookups.emplace_back([&] {
      while (!stop.load()) {
        auto got = cache.GetOrBuild(r, p);
        if (!got.ok() || got->get() == nullptr) {
          ADD_FAILURE() << "lookup wedged or failed: "
                        << got.status().ToString();
          stop.store(true);
          return;
        }
        ++successes;
      }
    });
  }
  std::thread clearer([&] {
    for (int i = 0; i < 50; ++i) {
      cache.Clear();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop.store(true);
  });
  clearer.join();
  for (auto& t : lookups) t.join();

  EXPECT_GT(successes.load(), 0u);
  // After the dust settles, the cache still works normally.
  util::Failpoints::Reset();
  auto after = cache.GetOrBuild(r, p);
  ASSERT_TRUE(after.ok());
}

TEST(IndexCacheTest, ClearDropsEntriesButHandoutsSurvive) {
  IndexCache cache;
  auto index = cache.GetOrBuild(testing::Example21R(), testing::Example21P());
  ASSERT_TRUE(index.ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  // The handed-out shared_ptr keeps the index alive past the eviction.
  EXPECT_EQ((*index)->num_classes(), testing::Example21Index().num_classes());

  auto rebuilt = cache.GetOrBuild(testing::Example21R(),
                                  testing::Example21P());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(cache.stats().builds, 2u);
}

}  // namespace
}  // namespace runtime
}  // namespace jinfer
