#include "runtime/session_manager.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "runtime/index_cache.h"
#include "testing/paper_fixtures.h"
#include "util/status.h"
#include "workload/experiment.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace runtime {
namespace {

void ExpectSameResult(const core::InferenceResult& a,
                      const core::InferenceResult& b) {
  EXPECT_EQ(a.predicate, b.predicate);
  EXPECT_EQ(a.num_interactions, b.num_interactions);
  EXPECT_EQ(a.halted_early, b.halted_early);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].cls, b.trace[i].cls) << "interaction " << i;
    EXPECT_EQ(a.trace[i].label, b.trace[i].label) << "interaction " << i;
    EXPECT_EQ(a.trace[i].informative_before, b.trace[i].informative_before)
        << "interaction " << i;
  }
}

/// One parameterized workload cell: (strategy, seed, goal) on a shared
/// index. The job factory builds its session on the claiming worker, like
/// production jobs do.
struct Spec {
  core::StrategyKind kind;
  uint64_t seed;
  core::JoinPredicate goal;
};

std::vector<Spec> MakeSpecs(const core::SignatureIndex& index) {
  auto goals = workload::SampleGoalsBySize(index, /*max_per_size=*/2,
                                           /*seed=*/31337);
  JINFER_CHECK(goals.ok(), "goals");
  std::vector<Spec> specs;
  uint64_t seed = 0;
  for (const auto& [size, bucket_goals] : *goals) {
    for (const core::JoinPredicate& goal : bucket_goals) {
      for (core::StrategyKind kind :
           {core::StrategyKind::kBottomUp, core::StrategyKind::kTopDown,
            core::StrategyKind::kLookahead1, core::StrategyKind::kLookahead2,
            core::StrategyKind::kRandom}) {
        specs.push_back(Spec{kind, ++seed, goal});
      }
    }
  }
  return specs;
}

std::vector<SessionJob> MakeJobs(const core::SignatureIndex& index,
                                 const std::vector<Spec>& specs) {
  std::vector<SessionJob> jobs;
  jobs.reserve(specs.size());
  for (const Spec& spec : specs) {
    SessionJob job;
    job.make = [&index, spec] {
      return util::Result<Session>(
          Session(index, core::MakeStrategy(spec.kind, spec.seed)));
    };
    job.oracle = std::make_unique<core::GoalOracle>(spec.goal);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

// The acceptance property: a session's transcript is bit-identical whether
// it runs alone or among many concurrent sessions — at 1 and 4 threads,
// and under the finest slice (1 step) that maximizes interleaving.
TEST(SessionManagerTest, TranscriptsIdenticalSoloSerialAndConcurrent) {
  auto inst = workload::GenerateSynthetic({3, 3, 30, 6}, 777);
  ASSERT_TRUE(inst.ok());
  auto index = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());

  const std::vector<Spec> specs = MakeSpecs(*index);
  ASSERT_GE(specs.size(), 10u);

  // Baseline: every spec run alone, no manager involved.
  std::vector<core::InferenceResult> solo;
  for (const Spec& spec : specs) {
    Session session(*index, core::MakeStrategy(spec.kind, spec.seed));
    core::GoalOracle oracle(spec.goal);
    while (std::optional<core::ClassId> question = session.NextQuestion()) {
      ASSERT_TRUE(
          session.Answer(oracle.LabelClass(*index, *question)).ok());
    }
    solo.push_back(session.Result());
  }

  for (int threads : {1, 4}) {
    SessionManager::Options options;
    options.threads = threads;
    options.steps_per_slice = 1;
    SessionManager manager(options);
    auto results = manager.RunAll(MakeJobs(*index, specs));
    ASSERT_EQ(results.size(), specs.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << "job " << i << " at " << threads
                                   << " threads";
      ExpectSameResult(solo[i], *results[i]);
    }
  }
}

TEST(SessionManagerTest, StepsPerSliceZeroRunsClaimedSessionsToCompletion) {
  core::SignatureIndex index = testing::Example21Index();
  std::vector<Spec> specs = {
      {core::StrategyKind::kTopDown, 1,
       testing::Pred(index.omega(), {{0, 0}, {1, 1}})},
      {core::StrategyKind::kBottomUp, 2,
       testing::Pred(index.omega(), {{0, 2}})},
  };
  SessionManager::Options options;
  options.threads = 2;
  options.steps_per_slice = 0;
  auto results = SessionManager(options).RunAll(MakeJobs(index, specs));
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->num_interactions, 0u);
  }
}

TEST(SessionManagerTest, FactoryErrorFailsOnlyItsJob) {
  core::SignatureIndex index = testing::Example21Index();

  std::vector<SessionJob> jobs;
  SessionJob good;
  good.make = [&index] {
    return util::Result<Session>(
        Session(index, core::MakeStrategy(core::StrategyKind::kTopDown)));
  };
  good.oracle = std::make_unique<core::GoalOracle>(
      testing::Pred(index.omega(), {{0, 0}, {1, 1}}));
  jobs.push_back(std::move(good));

  SessionJob bad;
  bad.make = [] {
    return util::Result<Session>(
        util::Status::InvalidArgument("no such instance"));
  };
  bad.oracle = std::make_unique<core::GoalOracle>(core::JoinPredicate());
  jobs.push_back(std::move(bad));

  auto results = SessionManager().RunAll(std::move(jobs));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
}

// Production shape: jobs resolve their index through a shared IndexCache
// on the worker, so racing factories exercise the single-flight path.
TEST(SessionManagerTest, JobsShareIndexesThroughTheCache) {
  auto inst_a = workload::GenerateSynthetic({2, 2, 20, 5}, 1);
  auto inst_b = workload::GenerateSynthetic({2, 2, 20, 5}, 2);
  ASSERT_TRUE(inst_a.ok());
  ASSERT_TRUE(inst_b.ok());

  IndexCache cache;
  std::vector<SessionJob> jobs;
  for (size_t i = 0; i < 16; ++i) {
    const workload::SyntheticInstance& inst = i % 2 == 0 ? *inst_a : *inst_b;
    SessionJob job;
    job.make = [&cache, &inst]() -> util::Result<Session> {
      JINFER_ASSIGN_OR_RETURN(auto index,
                              cache.GetOrBuild(inst.r, inst.p));
      return Session(std::move(index),
                     core::MakeStrategy(core::StrategyKind::kTopDown));
    };
    job.oracle = std::make_unique<core::GoalOracle>(
        core::JoinPredicate::Singleton(0));
    jobs.push_back(std::move(job));
  }

  SessionManager::Options options;
  options.threads = 4;
  auto results = SessionManager(options).RunAll(std::move(jobs));
  for (const auto& result : results) EXPECT_TRUE(result.ok());

  IndexCacheStats stats = cache.stats();
  EXPECT_EQ(stats.builds, 2u);  // One per distinct instance, ever.
  EXPECT_EQ(stats.lookups, 16u);
  EXPECT_EQ(stats.hits, 14u);
}

// The manager-owned cache (ISSUE 4): capacity and store options flow in
// through SessionManager::Options, and jobs resolve through manager.cache()
// instead of a hand-carried cache object. The documented default is the
// bounded capacity; the assertions pin that the bound was applied.
TEST(SessionManagerTest, ManagerOwnedCacheHonorsTheCapacityBound) {
  auto inst_a = workload::GenerateSynthetic({2, 2, 20, 5}, 1);
  auto inst_b = workload::GenerateSynthetic({2, 2, 20, 5}, 2);
  ASSERT_TRUE(inst_a.ok());
  ASSERT_TRUE(inst_b.ok());

  SessionManager::Options options;
  options.threads = 2;
  EXPECT_EQ(options.cache_options.capacity, kDefaultIndexCacheCapacity);
  options.cache_options.capacity = 1;  // Force admission pressure.
  SessionManager manager(options);

  std::vector<SessionJob> jobs;
  for (size_t i = 0; i < 12; ++i) {
    const workload::SyntheticInstance& inst = i % 2 == 0 ? *inst_a : *inst_b;
    SessionJob job;
    job.make = [&manager, &inst]() -> util::Result<Session> {
      JINFER_ASSIGN_OR_RETURN(auto index,
                              manager.cache().GetOrBuild(inst.r, inst.p));
      return Session(std::move(index),
                     core::MakeStrategy(core::StrategyKind::kTopDown));
    };
    job.oracle = std::make_unique<core::GoalOracle>(
        core::JoinPredicate::Singleton(0));
    jobs.push_back(std::move(job));
  }
  auto results = manager.RunAll(std::move(jobs));
  for (const auto& result : results) EXPECT_TRUE(result.ok());

  IndexCacheStats stats = manager.cache().stats();
  EXPECT_EQ(stats.lookups, 12u);
  // Capacity 1 over two alternating instances: at most one stays resident,
  // so the bound must have rejected or evicted at least once — the
  // never-evicts bug this option fixes would show zeros here.
  EXPECT_GE(stats.evictions + stats.rejected_admissions, 1u);
  EXPECT_LE(manager.cache().size(), 1u);
}

// --- Failure-domain hardening (DESIGN.md §10) -------------------------

/// A GoalOracle that dawdles on every label — makes per-step wall time
/// controllable so deadline tests don't depend on machine speed.
class SlowOracle : public core::Oracle {
 public:
  SlowOracle(core::JoinPredicate goal, std::chrono::milliseconds delay)
      : inner_(goal), delay_(delay) {}

  core::Label LabelClass(const core::SignatureIndex& index,
                         core::ClassId cls) override {
    std::this_thread::sleep_for(delay_);
    return inner_.LabelClass(index, cls);
  }

 private:
  core::GoalOracle inner_;
  std::chrono::milliseconds delay_;
};

TEST(SessionManagerTest, AdmissionControlShedsTheExcessAndRunsTheRest) {
  core::SignatureIndex index = testing::Example21Index();
  std::vector<Spec> specs;
  for (uint64_t i = 0; i < 16; ++i) {
    specs.push_back(Spec{core::StrategyKind::kTopDown, i,
                         testing::Pred(index.omega(), {{0, 0}, {1, 1}})});
  }

  SessionManager::Options options;
  options.threads = 2;
  options.max_queue = 4;
  SessionManager manager(options);
  auto results = manager.RunAll(MakeJobs(index, specs));
  ASSERT_EQ(results.size(), 16u);
  // Deterministic split: the first max_queue jobs run, the tail is shed.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(results[i].ok()) << "admitted job " << i;
  }
  for (size_t i = 4; i < 16; ++i) {
    ASSERT_FALSE(results[i].ok()) << "job " << i << " should be shed";
    EXPECT_TRUE(results[i].status().IsResourceExhausted());
  }
  SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.shed, 12u);
  EXPECT_EQ(stats.completed, 4u);
}

TEST(SessionManagerTest, JobDeadlineCancelsOnlyTheSlowJob) {
  auto inst = workload::GenerateSynthetic({3, 3, 30, 6}, 777);
  ASSERT_TRUE(inst.ok());
  auto index = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());

  // Pick a spec that provably needs several interactions: the slow job
  // must survive its first one-step slice to be cancelled at the second.
  // Time the fault-free solo run while we are at it — the deadline below
  // is calibrated from it so the fast twin keeps a wide margin even under
  // sanitizer or CI slowdown.
  const std::vector<Spec> specs = MakeSpecs(*index);
  const Spec* multi_step = nullptr;
  std::chrono::steady_clock::duration fast_baseline{};
  for (const Spec& spec : specs) {
    const auto start = std::chrono::steady_clock::now();
    Session session(*index, core::MakeStrategy(spec.kind, spec.seed));
    core::GoalOracle oracle(spec.goal);
    size_t interactions = 0;
    while (std::optional<core::ClassId> question = session.NextQuestion()) {
      ASSERT_TRUE(session.Answer(oracle.LabelClass(*index, *question)).ok());
      ++interactions;
    }
    if (interactions >= 3) {
      multi_step = &spec;
      fast_baseline = std::chrono::steady_clock::now() - start;
      break;
    }
  }
  ASSERT_NE(multi_step, nullptr);

  // 10x the measured fast run (floor 100ms) — roomy for the fast job; the
  // slow job's oracle sleeps 1.5x the whole deadline per interaction, so
  // its second slice-boundary check is guaranteed to find the deadline
  // gone.
  const auto deadline = std::max(
      std::chrono::milliseconds(100),
      std::chrono::duration_cast<std::chrono::milliseconds>(10 *
                                                            fast_baseline));
  const auto slow_delay = 3 * deadline / 2;

  std::vector<SessionJob> jobs;
  SessionJob slow;
  slow.make = [&index, multi_step] {
    return util::Result<Session>(Session(
        *index, core::MakeStrategy(multi_step->kind, multi_step->seed)));
  };
  slow.oracle = std::make_unique<SlowOracle>(multi_step->goal, slow_delay);
  jobs.push_back(std::move(slow));

  SessionJob fast;
  fast.make = [&index, multi_step] {
    return util::Result<Session>(Session(
        *index, core::MakeStrategy(multi_step->kind, multi_step->seed)));
  };
  fast.oracle = std::make_unique<core::GoalOracle>(multi_step->goal);
  jobs.push_back(std::move(fast));

  SessionManager::Options options;
  options.threads = 2;
  options.steps_per_slice = 1;  // Deadline checked before every step.
  options.job_deadline = deadline;
  SessionManager manager(options);
  auto results = manager.RunAll(std::move(jobs));
  ASSERT_EQ(results.size(), 2u);
  ASSERT_FALSE(results[0].ok());
  EXPECT_TRUE(results[0].status().IsDeadlineExceeded());
  EXPECT_TRUE(results[1].ok());  // The fast neighbor is untouched.
  EXPECT_EQ(manager.stats().deadline_exceeded, 1u);
}

TEST(SessionManagerTest, RunDeadlineCancelsEveryUnfinishedJob) {
  core::SignatureIndex index = testing::Example21Index();
  const core::JoinPredicate goal =
      testing::Pred(index.omega(), {{0, 0}, {1, 1}});

  std::vector<SessionJob> jobs;
  for (int i = 0; i < 4; ++i) {
    SessionJob job;
    job.make = [&index] {
      return util::Result<Session>(
          Session(index, core::MakeStrategy(core::StrategyKind::kTopDown)));
    };
    job.oracle =
        std::make_unique<SlowOracle>(goal, std::chrono::milliseconds(100));
    jobs.push_back(std::move(job));
  }

  SessionManager::Options options;
  options.threads = 1;
  options.steps_per_slice = 1;
  options.run_deadline = std::chrono::milliseconds(50);
  SessionManager manager(options);
  const auto start = std::chrono::steady_clock::now();
  auto results = manager.RunAll(std::move(jobs));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_EQ(results.size(), 4u);
  size_t cancelled = 0;
  for (const auto& result : results) {
    if (!result.ok() && result.status().IsDeadlineExceeded()) ++cancelled;
  }
  EXPECT_GE(cancelled, 3u);  // 4 × 100ms of labels cannot fit in 50ms.
  // Cancellation is cooperative but prompt: bounded by deadline + one
  // in-flight slice per job, far under running everything to completion.
  EXPECT_LT(elapsed, std::chrono::milliseconds(1500));
}

TEST(SessionManagerTest, TransientFactoryFailureIsRetriedToSuccess) {
  core::SignatureIndex index = testing::Example21Index();
  auto attempts = std::make_shared<std::atomic<int>>(0);

  std::vector<SessionJob> jobs;
  SessionJob flaky;
  flaky.make = [&index, attempts]() -> util::Result<Session> {
    if (attempts->fetch_add(1) < 2) {
      return util::Status::Unavailable("cache backing off");
    }
    return Session(index, core::MakeStrategy(core::StrategyKind::kTopDown));
  };
  flaky.oracle = std::make_unique<core::GoalOracle>(
      testing::Pred(index.omega(), {{0, 0}, {1, 1}}));
  jobs.push_back(std::move(flaky));

  SessionManager::Options options;
  options.factory_retry.max_attempts = 5;
  options.factory_retry.base_backoff = std::chrono::microseconds(100);
  SessionManager manager(options);
  auto results = manager.RunAll(std::move(jobs));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(attempts->load(), 3);
  EXPECT_EQ(manager.stats().factory_retries, 2u);
  EXPECT_EQ(manager.stats().completed, 1u);
}

TEST(SessionManagerTest, TransientFactoryFailureExhaustsAttemptsThenFails) {
  core::SignatureIndex index = testing::Example21Index();
  auto attempts = std::make_shared<std::atomic<int>>(0);

  std::vector<SessionJob> jobs;
  SessionJob down;
  down.make = [attempts]() -> util::Result<Session> {
    attempts->fetch_add(1);
    return util::Status::Unavailable("store is down");
  };
  down.oracle = std::make_unique<core::GoalOracle>(core::JoinPredicate());
  jobs.push_back(std::move(down));

  SessionManager::Options options;
  options.factory_retry.max_attempts = 3;
  options.factory_retry.base_backoff = std::chrono::microseconds(100);
  SessionManager manager(options);
  auto results = manager.RunAll(std::move(jobs));
  ASSERT_EQ(results.size(), 1u);
  ASSERT_FALSE(results[0].ok());
  EXPECT_TRUE(results[0].status().IsUnavailable());
  EXPECT_EQ(attempts->load(), 3);  // max_attempts counts total tries.
}

TEST(SessionManagerTest, PermanentFactoryFailureIsNeverRetried) {
  auto attempts = std::make_shared<std::atomic<int>>(0);
  std::vector<SessionJob> jobs;
  SessionJob bad;
  bad.make = [attempts]() -> util::Result<Session> {
    attempts->fetch_add(1);
    return util::Status::InvalidArgument("no such instance");
  };
  bad.oracle = std::make_unique<core::GoalOracle>(core::JoinPredicate());
  jobs.push_back(std::move(bad));

  SessionManager::Options options;
  options.factory_retry.max_attempts = 5;
  auto results = SessionManager(options).RunAll(std::move(jobs));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_EQ(attempts->load(), 1);
}

}  // namespace
}  // namespace runtime
}  // namespace jinfer
