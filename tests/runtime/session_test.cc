#include "runtime/session.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/oracle.h"
#include "runtime/index_cache.h"
#include "testing/paper_fixtures.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace runtime {
namespace {

void ExpectSameResult(const core::InferenceResult& a,
                      const core::InferenceResult& b) {
  EXPECT_EQ(a.predicate, b.predicate);
  EXPECT_EQ(a.num_interactions, b.num_interactions);
  EXPECT_EQ(a.halted_early, b.halted_early);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].cls, b.trace[i].cls) << "interaction " << i;
    EXPECT_EQ(a.trace[i].label, b.trace[i].label) << "interaction " << i;
    EXPECT_EQ(a.trace[i].informative_before, b.trace[i].informative_before)
        << "interaction " << i;
  }
}

/// Drives a session to completion with an oracle — the canonical step loop.
core::InferenceResult DriveToCompletion(Session& session,
                                        core::Oracle& oracle) {
  while (std::optional<core::ClassId> question = session.NextQuestion()) {
    util::Status status =
        session.Answer(oracle.LabelClass(session.index(), *question));
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  return session.Result();
}

// The step loop must reproduce core::RunInference bit-for-bit: same
// strategy call sequence, same trace, same predicate — for deterministic
// strategies and for RND under an equal seed.
TEST(SessionTest, StepLoopMatchesRunInference) {
  core::SignatureIndex index = testing::Example21Index();
  const core::JoinPredicate goal =
      testing::Pred(index.omega(), {{0, 0}, {1, 1}});

  for (core::StrategyKind kind :
       {core::StrategyKind::kBottomUp, core::StrategyKind::kTopDown,
        core::StrategyKind::kLookahead1, core::StrategyKind::kLookahead2,
        core::StrategyKind::kExpectedGain, core::StrategyKind::kRandom}) {
    for (uint64_t seed : {1u, 7u, 42u}) {
      auto strategy = core::MakeStrategy(kind, seed);
      core::GoalOracle oracle(goal);
      auto reference = core::RunInference(index, *strategy, oracle);
      ASSERT_TRUE(reference.ok());

      Session session(index, core::MakeStrategy(kind, seed));
      core::GoalOracle session_oracle(goal);
      core::InferenceResult stepped =
          DriveToCompletion(session, session_oracle);

      ExpectSameResult(*reference, stepped);
      EXPECT_TRUE(session.Finished());
      EXPECT_TRUE(index.EquivalentOnInstance(stepped.predicate, goal));
    }
  }
}

TEST(SessionTest, StepLoopMatchesRunInferenceOnSynthetic) {
  auto inst = workload::GenerateSynthetic({3, 3, 60, 10}, 555);
  ASSERT_TRUE(inst.ok());
  auto index = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());
  const core::JoinPredicate goal = testing::Pred(index->omega(), {{1, 2}});

  for (core::StrategyKind kind :
       {core::StrategyKind::kTopDown, core::StrategyKind::kLookahead2,
        core::StrategyKind::kRandom}) {
    auto strategy = core::MakeStrategy(kind, 99);
    core::GoalOracle oracle(goal);
    auto reference = core::RunInference(*index, *strategy, oracle);
    ASSERT_TRUE(reference.ok());

    Session session(*index, core::MakeStrategy(kind, 99));
    core::GoalOracle session_oracle(goal);
    ExpectSameResult(*reference, DriveToCompletion(session, session_oracle));
  }
}

// NextQuestion must not advance anything until the pending question is
// answered: RND consumes RNG state in SelectNext, so repeated calls would
// diverge if the strategy were re-consulted.
TEST(SessionTest, NextQuestionIsIdempotentUntilAnswered) {
  core::SignatureIndex index = testing::Example21Index();
  Session session(index,
                  core::MakeStrategy(core::StrategyKind::kRandom, 2024));

  std::optional<core::ClassId> first = session.NextQuestion();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(session.NextQuestion(), first);
  EXPECT_EQ(session.NextQuestion(), first);
  EXPECT_EQ(session.num_interactions(), 0u);

  ASSERT_TRUE(session.Answer(core::Label::kNegative).ok());
  EXPECT_EQ(session.num_interactions(), 1u);
}

TEST(SessionTest, AnswerWithoutPendingQuestionFails) {
  core::SignatureIndex index = testing::Example21Index();
  Session session(index, core::MakeStrategy(core::StrategyKind::kTopDown));
  util::Status status = session.Answer(core::Label::kPositive);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(session.num_interactions(), 0u);
}

TEST(SessionTest, MaxInteractionsHaltsEarly) {
  core::SignatureIndex index = testing::Example21Index();
  SessionOptions options;
  options.max_interactions = 1;
  Session session(index, core::MakeStrategy(core::StrategyKind::kBottomUp),
                  options);
  core::GoalOracle oracle(testing::Pred(index.omega(), {{0, 0}, {1, 1}}));
  core::InferenceResult result = DriveToCompletion(session, oracle);

  EXPECT_EQ(result.num_interactions, 1u);
  EXPECT_TRUE(result.halted_early);
  EXPECT_TRUE(session.Finished());
  EXPECT_FALSE(session.NextQuestion().has_value());  // Stays finished.
}

// A parked session resumes exactly where it stopped: interleaving the
// steps of two sessions changes nothing about either transcript.
TEST(SessionTest, InterleavedSessionsMatchSoloRuns) {
  core::SignatureIndex index = testing::Example21Index();
  const core::JoinPredicate goal_a = testing::Pred(index.omega(), {{0, 2}});
  const core::JoinPredicate goal_b =
      testing::Pred(index.omega(), {{0, 0}, {1, 1}});

  auto solo = [&](core::StrategyKind kind, uint64_t seed,
                  const core::JoinPredicate& goal) {
    Session session(index, core::MakeStrategy(kind, seed));
    core::GoalOracle oracle(goal);
    return DriveToCompletion(session, oracle);
  };
  core::InferenceResult solo_a =
      solo(core::StrategyKind::kLookahead1, 5, goal_a);
  core::InferenceResult solo_b = solo(core::StrategyKind::kRandom, 6, goal_b);

  Session a(index, core::MakeStrategy(core::StrategyKind::kLookahead1, 5));
  Session b(index, core::MakeStrategy(core::StrategyKind::kRandom, 6));
  core::GoalOracle oracle_a(goal_a);
  core::GoalOracle oracle_b(goal_b);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& [session, oracle] :
         {std::pair<Session&, core::GoalOracle&>{a, oracle_a},
          std::pair<Session&, core::GoalOracle&>{b, oracle_b}}) {
      std::optional<core::ClassId> question = session.NextQuestion();
      if (!question) continue;
      ASSERT_TRUE(
          session.Answer(oracle.LabelClass(session.index(), *question)).ok());
      progressed = true;
    }
  }

  ExpectSameResult(solo_a, a.Result());
  ExpectSameResult(solo_b, b.Result());
}

// The shared-ownership constructor keeps the index alive after the cache
// and every other handle dropped it.
TEST(SessionTest, SharedIndexOutlivesTheCache) {
  std::optional<Session> session;
  {
    IndexCache cache;
    auto index =
        cache.GetOrBuild(testing::Example21R(), testing::Example21P());
    ASSERT_TRUE(index.ok());
    session.emplace(*index,
                    core::MakeStrategy(core::StrategyKind::kTopDown));
    cache.Clear();
  }  // Cache destroyed; the session's keepalive is the only reference.

  core::GoalOracle oracle(
      testing::Pred(session->index().omega(), {{0, 0}, {1, 1}}));
  core::InferenceResult result = DriveToCompletion(*session, oracle);
  EXPECT_GT(result.num_interactions, 0u);
}

}  // namespace
}  // namespace runtime
}  // namespace jinfer
