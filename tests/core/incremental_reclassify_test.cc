// Property tests for the incremental classification and the
// ApplyLabelScoped/UndoLabel delta stack:
//
//  (a) after any random ApplyLabel sequence, every class's TupleState
//      matches the paper's definitional (from-scratch) classification of
//      Lemmas 3.3/3.4;
//  (b) a random apply/undo walk leaves the state indistinguishable from a
//      fresh state replaying the surviving labels;
//  (c) the in-place EntropyKOf equals a reference implementation that
//      copies the state per simulation node (the seed algorithm).
//
// Runs on both a single-word Ω (3×3 attributes) and a multi-word Ω (9×10),
// which exercise the packed-array and prefix-bitset paths respectively.

#include <gtest/gtest.h>

#include <vector>

#include "core/entropy.h"
#include "core/inference_state.h"
#include "core/signature_index.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace core {
namespace {

/// Definitional classification straight from Lemmas 3.3/3.4, computed with
/// no incremental machinery at all.
TupleState ReferenceState(const SignatureIndex& index, const Sample& sample,
                          ClassId cls) {
  for (const auto& ex : sample) {
    if (ex.cls == cls) return TupleState::kLabeled;
  }
  JoinPredicate pos = index.omega().Full();
  std::vector<JoinPredicate> negs;
  for (const auto& ex : sample) {
    if (ex.label == Label::kPositive) {
      pos &= index.cls(ex.cls).signature;
    } else {
      negs.push_back(index.cls(ex.cls).signature);
    }
  }
  const JoinPredicate& sig = index.cls(cls).signature;
  if (pos.IsSubsetOf(sig)) return TupleState::kCertainPositive;
  JoinPredicate key = pos & sig;
  for (const JoinPredicate& neg : negs) {
    if (key.IsSubsetOf(neg)) return TupleState::kCertainNegative;
  }
  return TupleState::kInformative;
}

void ExpectMatchesReference(const SignatureIndex& index,
                            const InferenceState& state, const char* what) {
  uint64_t expected_weight = 0;
  size_t expected_informative = 0;
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    TupleState expected = ReferenceState(index, state.sample(), c);
    ASSERT_EQ(state.state(c), expected) << what << " class " << c;
    if (expected == TupleState::kInformative) {
      ++expected_informative;
      expected_weight += index.cls(c).count;
    }
  }
  EXPECT_EQ(state.NumInformativeClasses(), expected_informative) << what;
  EXPECT_EQ(state.InformativeTupleWeight(), expected_weight) << what;
  // The informative list is sorted, duplicate-free and consistent.
  auto informative = state.InformativeClasses();
  ASSERT_EQ(informative.size(), expected_informative) << what;
  for (size_t i = 0; i < informative.size(); ++i) {
    if (i > 0) EXPECT_LT(informative[i - 1], informative[i]) << what;
    EXPECT_TRUE(state.IsInformative(informative[i])) << what;
    EXPECT_EQ(state.InformativeClassAt(i), informative[i]) << what;
  }
}

/// Reference entropy^k: the seed implementation — copies the state at every
/// inner node and materializes the child entropies for SkylineMaxMin.
Entropy ReferenceEntropyRec(uint64_t root_weight, const InferenceState& state,
                            ClassId cls, int remaining, uint64_t depth) {
  if (remaining == 1) {
    uint64_t removed = root_weight - state.InformativeTupleWeight();
    uint64_t up = removed +
                  state.CountNewlyUninformative(cls, Label::kPositive) - depth;
    uint64_t un = removed +
                  state.CountNewlyUninformative(cls, Label::kNegative) - depth;
    return Entropy::OfCounts(up, un);
  }
  Entropy per_label[2];
  for (Label label : {Label::kPositive, Label::kNegative}) {
    InferenceState next = state.WithLabel(cls, label);
    std::vector<ClassId> informative = next.InformativeClasses();
    Entropy e;
    if (informative.empty()) {
      e = Entropy::Infinite();
    } else {
      std::vector<Entropy> inner;
      for (ClassId c2 : informative) {
        inner.push_back(
            ReferenceEntropyRec(root_weight, next, c2, remaining - 1,
                                depth + 1));
      }
      e = SkylineMaxMin(inner);
    }
    per_label[label == Label::kPositive ? 0 : 1] = e;
  }
  const Entropy& ep = per_label[0];
  const Entropy& en = per_label[1];
  if (ep.min_u != en.min_u) return ep.min_u < en.min_u ? ep : en;
  return ep.max_u <= en.max_u ? ep : en;
}

Entropy ReferenceEntropyK(const InferenceState& state, ClassId cls, int k) {
  return ReferenceEntropyRec(state.InformativeTupleWeight(), state, cls, k, 0);
}

struct CaseConfig {
  workload::SyntheticConfig config;
  uint64_t seed;
};

class IncrementalReclassifyTest
    : public ::testing::TestWithParam<CaseConfig> {};

TEST_P(IncrementalReclassifyTest, RandomLabelSequenceMatchesDefinitions) {
  auto inst = workload::GenerateSynthetic(GetParam().config, GetParam().seed);
  ASSERT_TRUE(inst.ok());
  auto index = SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());
  InferenceState state(*index);
  ExpectMatchesReference(*index, state, "fresh");

  util::Rng rng(GetParam().seed * 31 + 7);
  while (state.NumInformativeClasses() > 0) {
    auto informative = state.InformativeClasses();
    ClassId c = informative[rng.NextBelow(informative.size())];
    Label label = rng.NextBool(0.35) ? Label::kPositive : Label::kNegative;
    ASSERT_TRUE(state.ApplyLabel(c, label).ok());
    ExpectMatchesReference(*index, state, "after label");
  }
}

TEST_P(IncrementalReclassifyTest, ApplyUndoWalkMatchesReplayFromScratch) {
  auto inst = workload::GenerateSynthetic(GetParam().config, GetParam().seed);
  ASSERT_TRUE(inst.ok());
  auto index = SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());
  InferenceState state(*index);
  util::Rng rng(GetParam().seed * 131 + 3);

  std::vector<std::pair<ClassId, Label>> applied;
  for (int step = 0; step < 120; ++step) {
    bool can_apply = state.NumInformativeClasses() > 0;
    bool do_apply = can_apply && (applied.empty() || rng.NextBool(0.6));
    if (do_apply) {
      auto informative = state.InformativeClasses();
      ClassId c = informative[rng.NextBelow(informative.size())];
      Label label = rng.NextBool(0.3) ? Label::kPositive : Label::kNegative;
      state.ApplyLabelScoped(c, label);
      applied.emplace_back(c, label);
    } else if (!applied.empty()) {
      state.UndoLabel();
      applied.pop_back();
    } else {
      continue;
    }

    // The walked state must be indistinguishable from a fresh replay.
    InferenceState replay(*index);
    for (const auto& [c, label] : applied) {
      ASSERT_TRUE(replay.ApplyLabel(c, label).ok());
    }
    ASSERT_EQ(state.sample().size(), applied.size());
    EXPECT_EQ(state.InferredPredicate(), replay.InferredPredicate());
    EXPECT_EQ(state.HasPositiveExample(), replay.HasPositiveExample());
    EXPECT_EQ(state.InformativeTupleWeight(), replay.InformativeTupleWeight());
    EXPECT_EQ(state.InformativeClasses(), replay.InformativeClasses());
    for (ClassId c = 0; c < index->num_classes(); ++c) {
      ASSERT_EQ(state.state(c), replay.state(c)) << "class " << c;
    }
    ExpectMatchesReference(*index, state, "walk");
  }
}

TEST_P(IncrementalReclassifyTest, InPlaceEntropyMatchesReference) {
  auto inst = workload::GenerateSynthetic(GetParam().config, GetParam().seed);
  ASSERT_TRUE(inst.ok());
  auto index = SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());
  InferenceState state(*index);
  util::Rng rng(GetParam().seed * 17 + 1);

  // Compare at the fresh state and after each of a few random labels.
  for (int round = 0; round < 4 && state.NumInformativeClasses() > 1;
       ++round) {
    for (ClassId c : state.InformativeClasses()) {
      for (int k : {1, 2}) {
        Entropy expected = ReferenceEntropyK(state, c, k);
        Entropy in_place = EntropyKOf(state, c, k);
        EXPECT_EQ(in_place, expected)
            << "round " << round << " class " << c << " k=" << k;
      }
    }
    auto informative = state.InformativeClasses();
    ClassId c = informative[rng.NextBelow(informative.size())];
    Label label = rng.NextBool(0.3) ? Label::kPositive : Label::kNegative;
    ASSERT_TRUE(state.ApplyLabel(c, label).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Instances, IncrementalReclassifyTest,
    ::testing::Values(CaseConfig{{3, 3, 25, 5}, 11},   // 9-bit Ω, packed
                      CaseConfig{{3, 3, 40, 8}, 22},   // 9-bit Ω, packed
                      CaseConfig{{4, 4, 30, 6}, 33},   // 16-bit Ω, packed
                      CaseConfig{{9, 10, 15, 4}, 44},  // 90-bit Ω, prefix
                      CaseConfig{{9, 10, 20, 6}, 55}));  // 90-bit Ω, prefix

}  // namespace
}  // namespace core
}  // namespace jinfer
