// Property tests for the parallel signature-index build: for every thread
// count the built index must be bit-identical to the serial one — same
// class ids, signatures, counts, representatives and maximal flags — since
// the per-worker shards are merged in block order (global first-occurrence
// order). Covers both the single-word (|Ω| ≤ 64) and multi-word bitset
// paths and the uncompressed ablation mode.

#include <gtest/gtest.h>

#include "core/signature_index.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace core {
namespace {

void ExpectIdenticalIndexes(const SignatureIndex& serial,
                            const SignatureIndex& parallel,
                            const std::string& what) {
  ASSERT_EQ(serial.num_classes(), parallel.num_classes()) << what;
  EXPECT_EQ(serial.num_tuples(), parallel.num_tuples()) << what;
  for (ClassId c = 0; c < serial.num_classes(); ++c) {
    const SignatureClass& a = serial.cls(c);
    const SignatureClass& b = parallel.cls(c);
    EXPECT_EQ(a.signature, b.signature) << what << " class " << c;
    EXPECT_EQ(a.count, b.count) << what << " class " << c;
    EXPECT_EQ(a.rep_r, b.rep_r) << what << " class " << c;
    EXPECT_EQ(a.rep_p, b.rep_p) << what << " class " << c;
    EXPECT_EQ(a.maximal, b.maximal) << what << " class " << c;
    // The signature map must agree with the class table on both sides.
    auto found = parallel.ClassOfSignature(a.signature);
    ASSERT_TRUE(found.has_value()) << what << " class " << c;
    EXPECT_EQ(parallel.cls(*found).signature, a.signature)
        << what << " class " << c;
  }
}

class ParallelBuildPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelBuildPropertyTest, EveryThreadCountMatchesSerial) {
  // 3×3 attributes → 9-bit Ω (single-word hot path).
  auto inst = workload::GenerateSynthetic({3, 3, 60, 8}, GetParam());
  ASSERT_TRUE(inst.ok());
  SignatureIndexOptions serial_options;
  auto serial = SignatureIndex::Build(inst->r, inst->p, serial_options);
  ASSERT_TRUE(serial.ok());
  ASSERT_GT(serial->num_classes(), 1u);

  for (int threads : {2, 3, 8, 0}) {  // 0 = hardware concurrency.
    SignatureIndexOptions options;
    options.threads = threads;
    auto parallel = SignatureIndex::Build(inst->r, inst->p, options);
    ASSERT_TRUE(parallel.ok());
    ExpectIdenticalIndexes(*serial, *parallel,
                           "threads=" + std::to_string(threads));
  }
}

TEST_P(ParallelBuildPropertyTest, MultiWordOmegaMatchesSerial) {
  // 9×10 attributes → 90-bit Ω, exercising the multi-word bitset path.
  auto inst = workload::GenerateSynthetic({9, 10, 25, 5}, GetParam());
  ASSERT_TRUE(inst.ok());
  auto serial = SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 5}) {
    SignatureIndexOptions options;
    options.threads = threads;
    auto parallel = SignatureIndex::Build(inst->r, inst->p, options);
    ASSERT_TRUE(parallel.ok());
    ExpectIdenticalIndexes(*serial, *parallel,
                           "multiword threads=" + std::to_string(threads));
  }
}

TEST_P(ParallelBuildPropertyTest, UncompressedModeMatchesSerial) {
  auto inst = workload::GenerateSynthetic({3, 3, 20, 6}, GetParam());
  ASSERT_TRUE(inst.ok());
  SignatureIndexOptions serial_options;
  serial_options.compress = false;
  auto serial = SignatureIndex::Build(inst->r, inst->p, serial_options);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->num_classes(), serial->num_tuples());
  for (int threads : {2, 7}) {
    SignatureIndexOptions options;
    options.compress = false;
    options.threads = threads;
    auto parallel = SignatureIndex::Build(inst->r, inst->p, options);
    ASSERT_TRUE(parallel.ok());
    ExpectIdenticalIndexes(*serial, *parallel,
                           "uncompressed threads=" + std::to_string(threads));
  }
}

TEST_P(ParallelBuildPropertyTest, MoreThreadsThanRowsIsSafe) {
  auto inst = workload::GenerateSynthetic({3, 3, 3, 3}, GetParam());
  ASSERT_TRUE(inst.ok());
  auto serial = SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(serial.ok());
  SignatureIndexOptions options;
  options.threads = 16;  // Far more workers than distinct R rows.
  auto parallel = SignatureIndex::Build(inst->r, inst->p, options);
  ASSERT_TRUE(parallel.ok());
  ExpectIdenticalIndexes(*serial, *parallel, "threads>rows");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelBuildPropertyTest,
                         ::testing::Values(7, 19, 23, 101, 4242));

// Maximality must agree with the naive O(C²) definition — guards the
// popcount-bucketed sweep.
TEST(ParallelBuildTest, MaximalFlagsMatchNaiveDefinition) {
  util::Rng rng(99);
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto inst = workload::GenerateSynthetic({4, 3, 40, 6}, seed);
    ASSERT_TRUE(inst.ok());
    auto index = SignatureIndex::Build(inst->r, inst->p);
    ASSERT_TRUE(index.ok());
    for (ClassId a = 0; a < index->num_classes(); ++a) {
      bool expect_maximal = true;
      for (ClassId b = 0; b < index->num_classes(); ++b) {
        if (a != b && index->cls(a).signature.IsStrictSubsetOf(
                          index->cls(b).signature)) {
          expect_maximal = false;
          break;
        }
      }
      EXPECT_EQ(index->cls(a).maximal, expect_maximal) << "class " << a;
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace jinfer
