#include "core/path_inference.h"

#include <gtest/gtest.h>

#include "testing/paper_fixtures.h"
#include "workload/tpch.h"

namespace jinfer {
namespace core {
namespace {

TEST(PathInferenceTest, TwoRelationPathMatchesSingleEdgeInference) {
  rel::Relation r = testing::Example21R();
  rel::Relation p = testing::Example21P();
  auto index = SignatureIndex::Build(r, p);
  ASSERT_TRUE(index.ok());
  JoinPredicate goal = testing::Pred(index->omega(), {{0, 0}, {1, 2}});

  GoalPathOracle oracle({goal});
  auto path_result = RunPathInference({&r, &p}, StrategyKind::kTopDown,
                                      /*seed=*/1, oracle);
  ASSERT_TRUE(path_result.ok());
  ASSERT_EQ(path_result->steps.size(), 1u);

  auto strategy = MakeStrategy(StrategyKind::kTopDown, 1);
  GoalOracle single{goal};
  auto single_result = RunInference(*index, *strategy, single);
  ASSERT_TRUE(single_result.ok());
  EXPECT_EQ(path_result->steps[0].predicate, single_result->predicate);
  EXPECT_EQ(path_result->steps[0].num_interactions,
            single_result->num_interactions);
  EXPECT_EQ(path_result->total_interactions,
            single_result->num_interactions);
}

TEST(PathInferenceTest, TpchFkChainCustomerOrdersLineitem) {
  workload::TpchScale tiny{"tiny", 30, 30, 2, 40, 80, 3};
  auto db = workload::GenerateTpch(tiny, 11);
  ASSERT_TRUE(db.ok());
  std::vector<const rel::Relation*> path = {&db->customer, &db->orders,
                                            &db->lineitem};

  // Goals: c_custkey = o_custkey, then o_orderkey = l_orderkey.
  auto index01 = SignatureIndex::Build(db->customer, db->orders);
  auto index12 = SignatureIndex::Build(db->orders, db->lineitem);
  ASSERT_TRUE(index01.ok());
  ASSERT_TRUE(index12.ok());
  auto goal01 =
      index01->omega().PredicateFromNames({{"c_custkey", "o_custkey"}});
  auto goal12 =
      index12->omega().PredicateFromNames({{"o_orderkey", "l_orderkey"}});
  ASSERT_TRUE(goal01.ok());
  ASSERT_TRUE(goal12.ok());

  GoalPathOracle oracle({*goal01, *goal12});
  auto result =
      RunPathInference(path, StrategyKind::kLookahead1, 3, oracle);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->steps.size(), 2u);
  EXPECT_TRUE(
      index01->EquivalentOnInstance(result->steps[0].predicate, *goal01));
  EXPECT_TRUE(
      index12->EquivalentOnInstance(result->steps[1].predicate, *goal12));
  EXPECT_EQ(result->total_interactions,
            result->steps[0].num_interactions +
                result->steps[1].num_interactions);
}

TEST(PathInferenceTest, ThreeEdgeSyntheticPath) {
  // R0 — P0 — R0 — P0: same pair of instances reused along a longer path
  // with different per-edge goals.
  rel::Relation r = testing::Example21R();
  rel::Relation p = testing::Example21P();
  // Edge goals over alternating universes. Edge 1: attrs(P0) x attrs(R0).
  auto index_rp = SignatureIndex::Build(r, p);
  auto index_pr = SignatureIndex::Build(p, r);
  ASSERT_TRUE(index_rp.ok());
  ASSERT_TRUE(index_pr.ok());
  JoinPredicate g0 = testing::Pred(index_rp->omega(), {{0, 2}});
  JoinPredicate g1 = index_pr->omega().PredicateFromPairs({{1, 1}});
  JoinPredicate g2 = testing::Pred(index_rp->omega(), {{1, 1}});

  GoalPathOracle oracle({g0, g1, g2});
  auto result = RunPathInference({&r, &p, &r, &p},
                                 StrategyKind::kTopDown, 9, oracle);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->steps.size(), 3u);
  EXPECT_TRUE(index_rp->EquivalentOnInstance(result->steps[0].predicate, g0));
  EXPECT_TRUE(index_pr->EquivalentOnInstance(result->steps[1].predicate, g1));
  EXPECT_TRUE(index_rp->EquivalentOnInstance(result->steps[2].predicate, g2));
}

TEST(PathInferenceTest, EveryStrategySolvesThePath) {
  rel::Relation r = testing::Example21R();
  rel::Relation p = testing::Example21P();
  auto index = SignatureIndex::Build(r, p);
  ASSERT_TRUE(index.ok());
  JoinPredicate goal = testing::Pred(index->omega(), {{0, 2}});
  for (StrategyKind kind : PaperStrategies()) {
    GoalPathOracle oracle({goal, goal});
    auto result = RunPathInference({&r, &p, &p}, kind, 5, oracle);
    // Middle edge is P0 x P0 — legal (self-join style chain).
    ASSERT_TRUE(result.ok()) << StrategyKindName(kind);
    EXPECT_TRUE(
        index->EquivalentOnInstance(result->steps[0].predicate, goal));
  }
}

TEST(PathInferenceTest, ValidatesInput) {
  rel::Relation r = testing::Example21R();
  GoalPathOracle oracle({});
  EXPECT_TRUE(RunPathInference({&r}, StrategyKind::kTopDown, 1, oracle)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      RunPathInference({&r, nullptr}, StrategyKind::kTopDown, 1, oracle)
          .status()
          .IsInvalidArgument());
}

TEST(PathInferenceTest, EmptyEdgeRelationPropagatesError) {
  rel::Relation r = testing::Example21R();
  auto empty = rel::Relation::Make("E", {"X"}, {});
  GoalPathOracle oracle({JoinPredicate()});
  EXPECT_FALSE(RunPathInference({&r, &*empty}, StrategyKind::kTopDown, 1,
                                oracle)
                   .ok());
}

}  // namespace
}  // namespace core
}  // namespace jinfer
