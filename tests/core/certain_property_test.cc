// Property suite for the paper's central PTIME machinery: verifies the
// characterizations of Lemmas 3.3 and 3.4 (and, through Lemma 3.2, the
// definition of uninformative tuples) against brute-force enumeration of
// all predicates θ ∈ C(S) on small random instances.

#include <vector>

#include <gtest/gtest.h>

#include "core/inference_state.h"
#include "core/signature_index.h"
#include "testing/paper_fixtures.h"
#include "util/rng.h"

namespace jinfer {
namespace core {
namespace {

rel::Relation RandomRelation(const std::string& name,
                             std::vector<std::string> attrs, size_t rows,
                             int64_t domain, util::Rng& rng) {
  std::vector<rel::Row> data;
  for (size_t i = 0; i < rows; ++i) {
    rel::Row row;
    for (size_t c = 0; c < attrs.size(); ++c) {
      row.emplace_back(rng.NextInRange(0, domain - 1));
    }
    data.push_back(std::move(row));
  }
  auto rel = rel::Relation::Make(name, std::move(attrs), std::move(data));
  return std::move(rel).ValueOrDie();
}

/// All predicates consistent with the sample, by brute force.
std::vector<JoinPredicate> ConsistentPredicates(const SignatureIndex& index,
                                                const Sample& sample) {
  const size_t n = index.omega().size();
  std::vector<JoinPredicate> out;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    JoinPredicate theta;
    for (size_t b = 0; b < n; ++b) {
      if ((mask >> b) & 1) theta.Set(b);
    }
    bool consistent = true;
    for (const auto& ex : sample) {
      bool selected = index.Selects(theta, ex.cls);
      if ((ex.label == Label::kPositive) != selected) {
        consistent = false;
        break;
      }
    }
    if (consistent) out.push_back(theta);
  }
  return out;
}

struct BruteForceCertainty {
  bool certain_positive;
  bool certain_negative;
};

/// Cert± by the definition in §3.4: quantification over all of C(S).
BruteForceCertainty CertainByDefinition(
    const SignatureIndex& index, const std::vector<JoinPredicate>& c_of_s,
    ClassId cls) {
  BruteForceCertainty result{true, true};
  for (const JoinPredicate& theta : c_of_s) {
    if (index.Selects(theta, cls)) {
      result.certain_negative = false;
    } else {
      result.certain_positive = false;
    }
  }
  return result;
}

class CertainPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CertainPropertyTest, LemmasMatchBruteForceOnRandomInstances) {
  util::Rng rng(GetParam());
  // 2x2 attributes -> |Ω| = 4 -> 16 predicates: cheap to enumerate.
  rel::Relation r = RandomRelation("R", {"A1", "A2"}, 8, 4, rng);
  rel::Relation p = RandomRelation("P", {"B1", "B2"}, 8, 4, rng);
  auto index_or = SignatureIndex::Build(r, p);
  ASSERT_TRUE(index_or.ok());
  const SignatureIndex& index = *index_or;

  // Drive a random consistent labeling (consistent by construction: labels
  // follow a hidden goal predicate).
  JoinPredicate goal;
  for (size_t b = 0; b < index.omega().size(); ++b) {
    if (rng.NextBool(0.4)) goal.Set(b);
  }
  InferenceState state(index);
  Sample sample;

  // Check the equivalence at every prefix of the labeling process.
  for (int step = 0; step < 6; ++step) {
    std::vector<JoinPredicate> c_of_s = ConsistentPredicates(index, sample);
    ASSERT_FALSE(c_of_s.empty());  // Goal-driven labels stay consistent.

    for (ClassId c = 0; c < index.num_classes(); ++c) {
      BruteForceCertainty expected =
          CertainByDefinition(index, c_of_s, c);
      TupleState st = state.state(c);
      if (st == TupleState::kLabeled) continue;
      EXPECT_EQ(st == TupleState::kCertainPositive, expected.certain_positive)
          << "class " << c << " step " << step;
      EXPECT_EQ(st == TupleState::kCertainNegative, expected.certain_negative)
          << "class " << c << " step " << step;
    }

    // Label one random informative class per the goal.
    auto informative = state.InformativeClasses();
    if (informative.empty()) break;
    ClassId pick = informative[rng.NextBelow(informative.size())];
    Label label =
        index.Selects(goal, pick) ? Label::kPositive : Label::kNegative;
    ASSERT_TRUE(state.ApplyLabel(pick, label).ok());
    sample.push_back({pick, label});
  }
}

TEST_P(CertainPropertyTest, UninformativeDefinitionViaCOfS) {
  // Lemma 3.2 (Uninf = Cert) from first principles: a tuple labeled with
  // its goal label leaves C(S) unchanged iff the state classifies it as
  // certain (or it is labeled).
  util::Rng rng(GetParam() ^ 0x5a5a);
  rel::Relation r = RandomRelation("R", {"A1", "A2"}, 6, 3, rng);
  rel::Relation p = RandomRelation("P", {"B1", "B2"}, 6, 3, rng);
  auto index_or = SignatureIndex::Build(r, p);
  ASSERT_TRUE(index_or.ok());
  const SignatureIndex& index = *index_or;

  JoinPredicate goal;
  for (size_t b = 0; b < index.omega().size(); ++b) {
    if (rng.NextBool(0.3)) goal.Set(b);
  }

  InferenceState state(index);
  Sample sample;
  // Apply two goal-consistent labels.
  for (int step = 0; step < 2; ++step) {
    auto informative = state.InformativeClasses();
    if (informative.empty()) break;
    ClassId pick = informative[rng.NextBelow(informative.size())];
    Label label =
        index.Selects(goal, pick) ? Label::kPositive : Label::kNegative;
    ASSERT_TRUE(state.ApplyLabel(pick, label).ok());
    sample.push_back({pick, label});
  }

  std::vector<JoinPredicate> before = ConsistentPredicates(index, sample);
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    if (state.state(c) == TupleState::kLabeled) continue;
    Label goal_label =
        index.Selects(goal, c) ? Label::kPositive : Label::kNegative;
    Sample extended = sample;
    extended.push_back({c, goal_label});
    std::vector<JoinPredicate> after = ConsistentPredicates(index, extended);
    bool uninformative_by_definition = before.size() == after.size();
    bool uninformative_by_state = !state.IsInformative(c);
    EXPECT_EQ(uninformative_by_definition, uninformative_by_state)
        << "class " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertainPropertyTest,
                         ::testing::Range(uint64_t{100}, uint64_t{112}));

}  // namespace
}  // namespace core
}  // namespace jinfer
