#include "core/strategy.h"

#include <gtest/gtest.h>

#include "core/lattice.h"
#include "core/oracle.h"
#include "core/inference.h"
#include "core/strategies/lookahead_strategy.h"
#include "testing/paper_fixtures.h"

namespace jinfer {
namespace core {
namespace {

// --- Naming and factory -------------------------------------------------------

TEST(StrategyKindTest, NamesRoundTrip) {
  for (StrategyKind kind : {StrategyKind::kRandom, StrategyKind::kBottomUp,
                            StrategyKind::kTopDown, StrategyKind::kLookahead1,
                            StrategyKind::kLookahead2,
                            StrategyKind::kLookahead3,
                            StrategyKind::kExpectedGain}) {
    auto parsed = StrategyKindFromName(StrategyKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_TRUE(StrategyKindFromName("BOGUS").status().IsNotFound());
}

TEST(StrategyKindTest, PaperStrategiesInReportingOrder) {
  auto kinds = PaperStrategies();
  ASSERT_EQ(kinds.size(), 5u);
  EXPECT_EQ(StrategyKindName(kinds[0]), std::string("BU"));
  EXPECT_EQ(StrategyKindName(kinds[1]), std::string("TD"));
  EXPECT_EQ(StrategyKindName(kinds[2]), std::string("L1S"));
  EXPECT_EQ(StrategyKindName(kinds[3]), std::string("L2S"));
  EXPECT_EQ(StrategyKindName(kinds[4]), std::string("RND"));
}

TEST(StrategyFactoryTest, NamesMatch) {
  for (StrategyKind kind : PaperStrategies()) {
    auto strategy = MakeStrategy(kind, 1);
    EXPECT_EQ(strategy->name(), std::string(StrategyKindName(kind)));
  }
}

// --- BU (§4.3, Algorithm 2) ---------------------------------------------------

TEST(BottomUpTest, FirstPickIsTheEmptySignature) {
  // §4.3: BU first asks (t3,t1'), the tuple corresponding to ∅.
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  auto bu = MakeStrategy(StrategyKind::kBottomUp);
  auto pick = bu->SelectNext(state);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, testing::ClassOf(index, 2, 0));
}

TEST(BottomUpTest, AfterNegativeMovesToSizeOne) {
  // §4.3: after labeling ∅ negative, BU selects (t2,t1') = {(A1,B3)}.
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  ASSERT_TRUE(
      state.ApplyLabel(testing::ClassOf(index, 2, 0), Label::kNegative).ok());
  auto bu = MakeStrategy(StrategyKind::kBottomUp);
  auto pick = bu->SelectNext(state);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, testing::ClassOf(index, 1, 0));
}

TEST(BottomUpTest, GoalEmptyTakesOneInteraction) {
  // §5.3: the goal ∅ is inferred with a single interaction under BU.
  SignatureIndex index = testing::Example21Index();
  auto bu = MakeStrategy(StrategyKind::kBottomUp);
  GoalOracle oracle{JoinPredicate()};
  auto result = RunInference(index, *bu, oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_interactions, 1u);
  EXPECT_TRUE(index.EquivalentOnInstance(result->predicate, JoinPredicate()));
}

// --- TD (§4.3, Algorithm 3) ---------------------------------------------------

TEST(TopDownTest, FirstPickIsMaximal) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  auto td = MakeStrategy(StrategyKind::kTopDown);
  auto pick = td->SelectNext(state);
  ASSERT_TRUE(pick.has_value());
  EXPECT_TRUE(index.cls(*pick).maximal);
  EXPECT_EQ(index.cls(*pick).signature.Count(), 3u);
}

TEST(TopDownTest, AllNegativesInferOmegaWithoutLabelingEverything) {
  // §4.3: labeling the ⊆-maximal signatures negative suffices to infer Ω —
  // on Example 2.1 that is the 7 maximal signatures, not all 12 tuples.
  SignatureIndex index = testing::Example21Index();
  auto td = MakeStrategy(StrategyKind::kTopDown);
  GoalOracle oracle{index.omega().Full()};
  auto result = RunInference(index, *td, oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_interactions, 7u);
  EXPECT_EQ(result->predicate, index.omega().Full());
}

TEST(TopDownTest, SwitchesToBottomUpAfterPositive) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  ASSERT_TRUE(
      state.ApplyLabel(testing::ClassOf(index, 0, 2), Label::kPositive).ok());
  auto td = MakeStrategy(StrategyKind::kTopDown);
  auto bu = MakeStrategy(StrategyKind::kBottomUp);
  EXPECT_EQ(td->SelectNext(state), bu->SelectNext(state));
}

TEST(TopDownTest, BeatsBottomUpOnLargeGoals) {
  // BU's stated weakness (§4.3): with an all-negative user it labels every
  // tuple; TD needs only the maximal ones.
  SignatureIndex index = testing::Example21Index();
  auto bu = MakeStrategy(StrategyKind::kBottomUp);
  auto td = MakeStrategy(StrategyKind::kTopDown);
  GoalOracle oracle_bu{index.omega().Full()};
  GoalOracle oracle_td{index.omega().Full()};
  auto bu_result = RunInference(index, *bu, oracle_bu);
  auto td_result = RunInference(index, *td, oracle_td);
  ASSERT_TRUE(bu_result.ok());
  ASSERT_TRUE(td_result.ok());
  EXPECT_EQ(bu_result->num_interactions, 12u);
  EXPECT_LT(td_result->num_interactions, bu_result->num_interactions);
}

// --- L1S (§4.4, Algorithm 4) ---------------------------------------------------

TEST(LookaheadTest, L1SFirstPickHasSkylineMaxMinEntropy) {
  // With the corrected Figure 5 entropies, the unique skyline element with
  // min = 1 is (1,4), held only by (t2,t1').
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  auto l1s = MakeStrategy(StrategyKind::kLookahead1);
  auto pick = l1s->SelectNext(state);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, testing::ClassOf(index, 1, 0));
}

TEST(LookaheadTest, SingleInformativeShortCircuit) {
  // R = {1, 2}, P = {1}: the (1,1) tuple has signature Ω (born certain-
  // positive); only the (2,1) tuple with signature {} is informative.
  auto r = rel::Relation::Make("R", {"A"}, {{1}, {2}});
  auto p = rel::Relation::Make("P", {"B"}, {{1}});
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  InferenceState state(*index);
  ASSERT_EQ(state.NumInformativeClasses(), 1u);
  auto l2s = MakeStrategy(StrategyKind::kLookahead2);
  auto pick = l2s->SelectNext(state);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(index->cls(*pick).signature, JoinPredicate());
}

TEST(LookaheadTest, DepthAccessor) {
  LookaheadStrategy l3(3);
  EXPECT_EQ(l3.depth(), 3);
  EXPECT_EQ(l3.name(), std::string("L3S"));
}

// --- RND -----------------------------------------------------------------------

TEST(RandomTest, DeterministicGivenSeed) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  auto a = MakeStrategy(StrategyKind::kRandom, 77);
  auto b = MakeStrategy(StrategyKind::kRandom, 77);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a->SelectNext(state), b->SelectNext(state));
  }
}

TEST(RandomTest, OnlyPicksInformativeClasses) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  ASSERT_TRUE(
      state.ApplyLabel(testing::ClassOf(index, 0, 2), Label::kPositive).ok());
  auto rnd = MakeStrategy(StrategyKind::kRandom, 5);
  for (int i = 0; i < 50; ++i) {
    auto pick = rnd->SelectNext(state);
    ASSERT_TRUE(pick.has_value());
    EXPECT_TRUE(state.IsInformative(*pick));
  }
}

TEST(RandomTest, ReturnsNulloptWhenNothingInformative) {
  auto r = rel::Relation::Make("R", {"A"}, {{1}});
  auto p = rel::Relation::Make("P", {"B"}, {{1}});
  auto index = SignatureIndex::Build(*r, *p);
  InferenceState state(*index);
  ASSERT_TRUE(state.ApplyLabel(0, Label::kPositive).ok());
  auto rnd = MakeStrategy(StrategyKind::kRandom, 5);
  EXPECT_EQ(rnd->SelectNext(state), std::nullopt);
}

// --- Every strategy, every goal: the core correctness property ----------------

struct StrategyGoalCase {
  StrategyKind kind;
  size_t goal_index;  // Into NonNullablePredicates(Example 2.1) + {Ω}.
};

class StrategyGoalTest
    : public ::testing::TestWithParam<std::tuple<StrategyKind, size_t>> {};

TEST_P(StrategyGoalTest, InfersInstanceEquivalentPredicate) {
  auto [kind, goal_idx] = GetParam();
  SignatureIndex index = testing::Example21Index();
  auto goals = NonNullablePredicates(index);
  ASSERT_TRUE(goals.ok());
  std::vector<JoinPredicate> all = *goals;
  all.push_back(index.omega().Full());  // 22 non-nullable goals + Ω.
  ASSERT_LT(goal_idx, all.size());
  const JoinPredicate& goal = all[goal_idx];

  auto strategy = MakeStrategy(kind, /*seed=*/goal_idx);
  GoalOracle oracle{goal};
  auto result = RunInference(index, *strategy, oracle);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(index.EquivalentOnInstance(result->predicate, goal))
      << StrategyKindName(kind) << " on goal "
      << index.omega().Format(goal) << " inferred "
      << index.omega().Format(result->predicate);
  EXPECT_LE(result->num_interactions, index.num_classes());
  EXPECT_GE(result->num_interactions, 1u);

  // The trace only contains informative-at-presentation tuples, and labels
  // match the goal.
  for (const auto& rec : result->trace) {
    EXPECT_EQ(rec.label, index.Selects(goal, rec.cls) ? Label::kPositive
                                                      : Label::kNegative);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAllGoals, StrategyGoalTest,
    ::testing::Combine(
        ::testing::Values(StrategyKind::kRandom, StrategyKind::kBottomUp,
                          StrategyKind::kTopDown, StrategyKind::kLookahead1,
                          StrategyKind::kLookahead2,
                          StrategyKind::kExpectedGain),
        ::testing::Range(size_t{0}, size_t{23})));

}  // namespace
}  // namespace core
}  // namespace jinfer
