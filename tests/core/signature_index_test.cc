#include "core/signature_index.h"

#include <gtest/gtest.h>

#include "testing/paper_fixtures.h"
#include "util/rng.h"

namespace jinfer {
namespace core {
namespace {

// --- Figure 3: every T(t) of Example 2.1 ------------------------------------

TEST(SignatureIndexTest, Figure3SignaturesExact) {
  SignatureIndex index = testing::Example21Index();
  auto expected = testing::Figure3Signatures();
  size_t k = 0;
  for (size_t r = 0; r < 4; ++r) {
    for (size_t p = 0; p < 3; ++p, ++k) {
      JoinPredicate want = testing::Pred(index.omega(), expected[k]);
      EXPECT_EQ(index.SignatureOfPair(r, p), want)
          << "tuple (t" << r + 1 << ",t" << p + 1 << "')";
    }
  }
}

TEST(SignatureIndexTest, Example21HasTwelveSingletonClasses) {
  SignatureIndex index = testing::Example21Index();
  EXPECT_EQ(index.num_classes(), 12u);
  EXPECT_EQ(index.num_tuples(), 12u);
  for (const auto& c : index.classes()) EXPECT_EQ(c.count, 1u);
}

TEST(SignatureIndexTest, ClassOfSignatureFindsAll) {
  SignatureIndex index = testing::Example21Index();
  for (const auto& sig : testing::Figure3Signatures()) {
    JoinPredicate pred = testing::Pred(index.omega(), sig);
    EXPECT_TRUE(index.ClassOfSignature(pred).has_value());
  }
  EXPECT_FALSE(index.ClassOfSignature(index.omega().Full()).has_value());
}

TEST(SignatureIndexTest, RepresentativesCarryTheirSignature) {
  SignatureIndex index = testing::Example21Index();
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    const SignatureClass& sc = index.cls(c);
    EXPECT_EQ(index.SignatureOfPair(sc.rep_r, sc.rep_p), sc.signature);
  }
}

// --- Selection and instance equivalence -------------------------------------

TEST(SignatureIndexTest, SelectsMatchesSubsetSemantics) {
  SignatureIndex index = testing::Example21Index();
  const Omega& omega = index.omega();
  // θ1 = {(A1,B1),(A2,B3)} selects exactly (t2,t2') and (t4,t1').
  JoinPredicate theta1 = testing::Pred(omega, {{0, 0}, {1, 2}});
  EXPECT_EQ(index.CountSelected(theta1), 2u);
  EXPECT_TRUE(index.Selects(theta1, testing::ClassOf(index, 1, 1)));
  EXPECT_TRUE(index.Selects(theta1, testing::ClassOf(index, 3, 0)));
  EXPECT_FALSE(index.Selects(theta1, testing::ClassOf(index, 0, 0)));
}

TEST(SignatureIndexTest, EmptyPredicateSelectsEverything) {
  SignatureIndex index = testing::Example21Index();
  EXPECT_EQ(index.CountSelected(JoinPredicate()), index.num_tuples());
}

TEST(SignatureIndexTest, FullPredicateSelectsNothingHere) {
  SignatureIndex index = testing::Example21Index();
  EXPECT_EQ(index.CountSelected(index.omega().Full()), 0u);
  EXPECT_FALSE(index.IsNonNullable(index.omega().Full()));
}

TEST(SignatureIndexTest, InstanceEquivalence) {
  SignatureIndex index = testing::Example21Index();
  const Omega& omega = index.omega();
  // θ3 = {(A2,B1),(A2,B2),(A2,B3)} and Ω both select nothing.
  JoinPredicate theta3 = testing::Pred(omega, {{1, 0}, {1, 1}, {1, 2}});
  EXPECT_TRUE(index.EquivalentOnInstance(theta3, omega.Full()));
  EXPECT_FALSE(index.EquivalentOnInstance(theta3, JoinPredicate()));
  EXPECT_TRUE(index.EquivalentOnInstance(theta3, theta3));
}

TEST(SignatureIndexTest, SingleTupleInstanceSection33) {
  // §3.3: R1 = {(1,1)}, P1 = {(1)}: every predicate is instance-equivalent.
  auto r = rel::Relation::Make("R1", {"A1", "A2"}, {{1, 1}});
  auto p = rel::Relation::Make("P1", {"B1"}, {{1}});
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_classes(), 1u);
  EXPECT_EQ(index->cls(0).signature, index->omega().Full());
  EXPECT_TRUE(
      index->EquivalentOnInstance(JoinPredicate(), index->omega().Full()));
}

// --- Maximality flags (TD strategy input) -----------------------------------

TEST(SignatureIndexTest, MaximalSignaturesOfExample21) {
  SignatureIndex index = testing::Example21Index();
  const Omega& omega = index.omega();
  // The ⊆-maximal signatures are the three size-3 ones plus the four
  // size-2 signatures not contained in any size-3 signature.
  std::vector<JoinPredicate> expected_maximal = {
      testing::Pred(omega, {{0, 2}, {1, 0}, {1, 1}}),  // (t1,t1')
      testing::Pred(omega, {{0, 1}, {0, 2}, {1, 0}}),  // (t2,t3')
      testing::Pred(omega, {{0, 0}, {0, 1}, {1, 2}}),  // (t4,t1')
      testing::Pred(omega, {{0, 0}, {1, 1}}),          // (t1,t2')
      testing::Pred(omega, {{0, 2}, {1, 2}}),          // (t3,t2')
      testing::Pred(omega, {{0, 0}, {1, 0}}),          // (t3,t3')
      testing::Pred(omega, {{1, 1}, {1, 2}}),          // (t4,t3')
  };
  size_t maximal_count = 0;
  for (const auto& c : index.classes()) {
    if (c.maximal) {
      ++maximal_count;
      EXPECT_NE(std::find(expected_maximal.begin(), expected_maximal.end(),
                          c.signature),
                expected_maximal.end())
          << omega.Format(c.signature);
    }
  }
  EXPECT_EQ(maximal_count, 7u);
}

// --- Compression -------------------------------------------------------------

TEST(SignatureIndexTest, DuplicateRowsCollapseIntoWeightedClasses) {
  auto r = rel::Relation::Make("R", {"A"}, {{1}, {1}, {2}});
  auto p = rel::Relation::Make("P", {"B"}, {{1}, {3}, {3}});
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_tuples(), 9u);
  // Signatures: {(A,B)} for (1,1) pairs: weight 2*1 = 2; {} for the rest: 7.
  ASSERT_EQ(index->num_classes(), 2u);
  auto match = index->ClassOfSignature(
      index->omega().PredicateFromPairs({{0, 0}}));
  auto empty = index->ClassOfSignature(JoinPredicate());
  ASSERT_TRUE(match.has_value());
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(index->cls(*match).count, 2u);
  EXPECT_EQ(index->cls(*empty).count, 7u);
}

TEST(SignatureIndexTest, ClassCountsSumToCartesianSize) {
  util::Rng rng(42);
  std::vector<rel::Row> r_rows, p_rows;
  for (int i = 0; i < 20; ++i) {
    r_rows.push_back({rng.NextInRange(0, 3), rng.NextInRange(0, 3)});
    p_rows.push_back({rng.NextInRange(0, 3), rng.NextInRange(0, 3)});
  }
  auto r = rel::Relation::Make("R", {"A1", "A2"}, std::move(r_rows));
  auto p = rel::Relation::Make("P", {"B1", "B2"}, std::move(p_rows));
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  uint64_t total = 0;
  for (const auto& c : index->classes()) total += c.count;
  EXPECT_EQ(total, 400u);
}

// --- NULL handling ------------------------------------------------------------

TEST(SignatureIndexTest, NullCellsNeverMatch) {
  auto r = rel::Relation::Make("R", {"A"}, {{rel::Value()}});
  auto p = rel::Relation::Make("P", {"B"}, {{rel::Value()}, {1}});
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->SignatureOfPair(0, 0), JoinPredicate());
  EXPECT_EQ(index->SignatureOfPair(0, 1), JoinPredicate());
}

// Regression for the dictionary's NULL-code invariant: NULL codes are drawn
// from a range disjoint from non-null codes, so interleaving NULL and
// non-NULL encodes in any order can never make a NULL cell join with a
// value cell encoded later — nor break equality of identical values
// surrounding the NULLs.
TEST(SignatureIndexTest, InterleavedNullAndValueEncodesNeverCollide) {
  // NULLs appear before, between and after the repeated value 7; every
  // non-null 7 must still match every other 7, and no NULL matches anything.
  auto r = rel::Relation::Make(
      "R", {"A1", "A2"},
      {{rel::Value(), 7}, {7, rel::Value()}, {rel::Value(), rel::Value()}});
  auto p = rel::Relation::Make(
      "P", {"B1", "B2"},
      {{7, rel::Value()}, {rel::Value(), 7}, {rel::Value(), rel::Value()}});
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  const Omega& omega = index->omega();
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      JoinPredicate expected;
      for (size_t a = 0; a < 2; ++a) {
        for (size_t b = 0; b < 2; ++b) {
          if (!r->at(i, a).is_null() && !p->at(j, b).is_null() &&
              r->at(i, a) == p->at(j, b)) {
            expected.Set(omega.BitOf(a, b));
          }
        }
      }
      EXPECT_EQ(index->SignatureOfPair(i, j), expected)
          << "pair (" << i << "," << j << ")";
    }
  }
  // The all-NULL rows pair with everything under the empty signature only.
  EXPECT_EQ(index->SignatureOfPair(2, 0), JoinPredicate());
  EXPECT_EQ(index->SignatureOfPair(2, 1), JoinPredicate());
  EXPECT_EQ(index->SignatureOfPair(2, 2), JoinPredicate());
}

// Many NULLs must not consume codes that later non-null values would reuse
// (the historical hazard of a single shared counter).
TEST(SignatureIndexTest, NullHeavyColumnsKeepValueEqualityIntact) {
  std::vector<rel::Row> r_rows, p_rows;
  for (int i = 0; i < 8; ++i) {
    r_rows.push_back({rel::Value(), i % 3});
    p_rows.push_back({i % 3, rel::Value()});
  }
  auto r = rel::Relation::Make("R", {"A1", "A2"}, std::move(r_rows));
  auto p = rel::Relation::Make("P", {"B1", "B2"}, std::move(p_rows));
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  const Omega& omega = index->omega();
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = 0; j < 8; ++j) {
      JoinPredicate expected;
      if ((i % 3) == (j % 3)) expected.Set(omega.BitOf(1, 0));
      EXPECT_EQ(index->SignatureOfPair(i, j), expected)
          << "pair (" << i << "," << j << ")";
    }
  }
}

// --- Validation ----------------------------------------------------------------

TEST(SignatureIndexTest, EmptyInstanceRejected) {
  auto r = rel::Relation::Make("R", {"A"}, {});
  auto p = rel::Relation::Make("P", {"B"}, {{1}});
  EXPECT_TRUE(SignatureIndex::Build(*r, *p).status().IsInvalidArgument());
  EXPECT_TRUE(SignatureIndex::Build(*p, *r).status().IsInvalidArgument());
}

TEST(SignatureIndexTest, CapacityPropagates) {
  std::vector<std::string> names;
  for (int i = 0; i < 17; ++i) names.push_back("C" + std::to_string(i));
  auto r = rel::Relation::Make("R", names,
                               {rel::Row(17, rel::Value(1))});
  auto p = rel::Relation::Make("P", names,
                               {rel::Row(17, rel::Value(1))});
  // 17*17 = 289 > 256.
  EXPECT_TRUE(SignatureIndex::Build(*r, *p).status().IsCapacityExceeded());
}

// --- Property: index signature == brute-force recomputation -----------------

class SignatureIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(SignatureIndexPropertyTest, AgreesWithDirectComputation) {
  util::Rng rng(GetParam());
  std::vector<rel::Row> r_rows, p_rows;
  for (int i = 0; i < 15; ++i) {
    r_rows.push_back(
        {rng.NextInRange(0, 4), rng.NextInRange(0, 4), rng.NextInRange(0, 4)});
  }
  for (int i = 0; i < 12; ++i) {
    p_rows.push_back({rng.NextInRange(0, 4), rng.NextInRange(0, 4)});
  }
  auto r = rel::Relation::Make("R", {"A1", "A2", "A3"}, std::move(r_rows));
  auto p = rel::Relation::Make("P", {"B1", "B2"}, std::move(p_rows));
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());

  for (size_t i = 0; i < r->num_rows(); ++i) {
    for (size_t j = 0; j < p->num_rows(); ++j) {
      // Direct definition of T(t): all (Ai,Bj) with equal values.
      JoinPredicate expected;
      for (size_t a = 0; a < 3; ++a) {
        for (size_t b = 0; b < 2; ++b) {
          if (r->at(i, a) == p->at(j, b)) {
            expected.Set(index->omega().BitOf(a, b));
          }
        }
      }
      EXPECT_EQ(index->SignatureOfPair(i, j), expected);
      auto cls = index->ClassOfSignature(expected);
      ASSERT_TRUE(cls.has_value());
      EXPECT_EQ(index->cls(*cls).signature, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignatureIndexPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace core
}  // namespace jinfer
