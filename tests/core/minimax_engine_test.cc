// Property tests for the delta-frame minimax engine against the retained
// seed implementation (minimax_reference.h): identical minimax values,
// identical OPT picks and identical worst cases on randomized small
// instances, at 1 and N root-split workers; plus Zobrist hash-integrity
// and zero-copy steady-state assertions.

#include "core/strategies/minimax_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/inference.h"
#include "core/oracle.h"
#include "core/strategies/minimax_reference.h"
#include "core/strategies/optimal_strategy.h"
#include "core/strategy.h"
#include "testing/paper_fixtures.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace core {
namespace {

constexpr int kManyThreads = 4;

/// The randomized corpus: small instances (the reference implementation is
/// the slow side) across a few shapes and seeds.
std::vector<SignatureIndex> PropertyCorpus() {
  std::vector<SignatureIndex> corpus;
  const workload::SyntheticConfig configs[] = {
      {2, 2, 12, 6}, {2, 2, 20, 8}, {2, 3, 6, 5}, {2, 2, 16, 5}};
  uint64_t seed = 20140324;
  for (const auto& config : configs) {
    for (int i = 0; i < 2; ++i) {
      auto inst = workload::GenerateSynthetic(config, seed++);
      if (!inst.ok()) continue;
      auto index = SignatureIndex::Build(inst->r, inst->p);
      if (!index.ok()) continue;
      // The reference side copies the state at every node; keep instances
      // small enough that it stays well inside its node budget.
      if (index->num_classes() > 13) continue;
      corpus.push_back(std::move(index).ValueOrDie());
    }
  }
  return corpus;
}

TEST(ZobristTableTest, DeterministicAndOrderIndependent) {
  ZobristTable a(16);
  ZobristTable b(16);
  EXPECT_EQ(a.Key(3, Label::kPositive), b.Key(3, Label::kPositive));
  EXPECT_NE(a.Key(3, Label::kPositive), a.Key(3, Label::kNegative));

  Sample s1 = {{2, Label::kPositive}, {5, Label::kNegative}};
  Sample s2 = {{5, Label::kNegative}, {2, Label::kPositive}};
  EXPECT_EQ(a.HashSample(s1), a.HashSample(s2));
  EXPECT_EQ(a.HashSample({}), ZobristTable::kEmptyHash);
}

TEST(ZobristTableTest, ApplyUndoHashIntegrity) {
  SignatureIndex index = testing::Example21Index();
  ZobristTable zobrist(index.num_classes());
  InferenceState state(index);

  const uint64_t h0 = zobrist.HashSample(state.sample());
  uint64_t h = h0;
  // Fold a few scoped labels in and out, checking after every transition
  // that (a) the incremental hash matches the from-scratch fold and
  // (b) the hash after undo equals the hash before apply.
  struct Step {
    ClassId cls;
    Label label;
    uint64_t hash_before;
  };
  std::vector<Step> steps;
  for (Label label : {Label::kNegative, Label::kPositive, Label::kNegative}) {
    if (state.NumInformativeClasses() == 0) break;
    ClassId cls = state.InformativeClassAt(0);
    steps.push_back({cls, label, h});
    h ^= zobrist.Key(cls, label);
    state.ApplyLabelScoped(cls, label);
    EXPECT_EQ(h, zobrist.HashSample(state.sample()));
  }
  ASSERT_GE(steps.size(), 2u);
  while (!steps.empty()) {
    state.UndoLabel();
    h ^= zobrist.Key(steps.back().cls, steps.back().label);  // Fold out.
    EXPECT_EQ(h, steps.back().hash_before);
    EXPECT_EQ(h, zobrist.HashSample(state.sample()));
    steps.pop_back();
  }
  EXPECT_EQ(h, h0);
}

TEST(TranspositionTableTest, StoreFindAndMerge) {
  TranspositionTable tt(/*log2_entries=*/6);
  EXPECT_EQ(tt.Find(42), nullptr);

  tt.Store(42, 5, /*exact=*/false);
  const auto* e = tt.Find(42);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 5u);
  EXPECT_EQ(e->kind, TranspositionTable::Entry::kLowerBound);

  tt.Store(42, 3, /*exact=*/false);  // Weaker bound never lowers.
  EXPECT_EQ(tt.Find(42)->value, 5u);
  tt.Store(42, 7, /*exact=*/false);  // Tighter bound raises.
  EXPECT_EQ(tt.Find(42)->value, 7u);

  tt.Store(42, 6, /*exact=*/true);  // Exact overwrites any bound.
  e = tt.Find(42);
  EXPECT_EQ(e->value, 6u);
  EXPECT_EQ(e->kind, TranspositionTable::Entry::kExact);

  tt.Clear();
  EXPECT_EQ(tt.Find(42), nullptr);
}

TEST(TranspositionTableTest, DepthAwareReplacementKeepsDeepEntries) {
  TranspositionTable tt(/*log2_entries=*/3);  // 8 slots = one probe window.
  // Fill the window with depth-10 entries, then try to insert a shallow
  // one: it must be dropped, while a deeper one must land.
  for (uint64_t i = 0; i < 8; ++i) tt.Store(i * 8 + 1, 10, /*exact=*/true);
  tt.Store(100, 2, /*exact=*/true);
  EXPECT_EQ(tt.Find(100), nullptr);  // Shallower than everything: dropped.
  tt.Store(200, 50, /*exact=*/true);
  ASSERT_NE(tt.Find(200), nullptr);  // Deeper: evicted a shallow entry.
  EXPECT_EQ(tt.Find(200)->value, 50u);
}

TEST(MinimaxEngineTest, MatchesReferenceValueOnCorpusAtOneAndNThreads) {
  for (const SignatureIndex& index : PropertyCorpus()) {
    InferenceState state(index);
    const size_t expected = ReferenceMinimaxInteractions(state);

    for (int threads : {1, kManyThreads}) {
      MinimaxOptions options;
      options.threads = threads;
      MinimaxEngine engine(index, options);
      EXPECT_EQ(engine.Value(state), expected)
          << "classes=" << index.num_classes() << " threads=" << threads;
      // Warm-table determinism: a second solve must agree.
      EXPECT_EQ(engine.Value(state), expected);
    }

    // Mid-session states: push a label and compare the subtree values too.
    if (state.NumInformativeClasses() > 1) {
      state.ApplyLabelScoped(state.InformativeClassAt(0), Label::kNegative);
      const size_t sub_expected = ReferenceMinimaxInteractions(state);
      EXPECT_EQ(MinimaxInteractions(state), sub_expected);
      MinimaxOptions options;
      options.threads = kManyThreads;
      MinimaxEngine engine(index, options);
      EXPECT_EQ(engine.Value(state), sub_expected);
      state.UndoLabel();
    }
  }
}

TEST(MinimaxEngineTest, MatchesReferencePickAcrossWholeSessions) {
  for (const SignatureIndex& index : PropertyCorpus()) {
    // Walk a full session: at every state the engine pick (1 and N
    // threads) must equal the reference pick; then answer adversarially
    // (keep the larger subtree) and continue.
    InferenceState state(index);
    OptimalStrategy opt_serial(/*node_budget=*/5'000'000, /*threads=*/1);
    OptimalStrategy opt_parallel(/*node_budget=*/5'000'000,
                                 /*threads=*/kManyThreads);
    while (state.NumInformativeClasses() > 0) {
      std::optional<ClassId> expected = ReferenceOptimalPick(state);
      ASSERT_TRUE(expected.has_value());
      EXPECT_EQ(opt_serial.SelectNext(state), expected);
      EXPECT_EQ(opt_parallel.SelectNext(state), expected);

      auto [u_pos, u_neg] = state.CountNewlyUninformativeBoth(*expected);
      Label adversarial =
          u_pos <= u_neg ? Label::kPositive : Label::kNegative;
      ASSERT_TRUE(state.ApplyLabel(*expected, adversarial).ok());
    }
    EXPECT_EQ(opt_serial.SelectNext(state), std::nullopt);
  }
}

TEST(MinimaxEngineTest, WorstCaseMatchesReferenceForPaperStrategies) {
  SignatureIndex index = testing::Example21Index();
  for (StrategyKind kind :
       {StrategyKind::kBottomUp, StrategyKind::kTopDown,
        StrategyKind::kLookahead1, StrategyKind::kExpectedGain}) {
    auto a = MakeStrategy(kind);
    auto b = MakeStrategy(kind);
    EXPECT_EQ(WorstCaseInteractions(index, *a),
              ReferenceWorstCaseInteractions(index, *b))
        << StrategyKindName(kind);
  }
}

TEST(MinimaxEngineTest, ZeroStateCopiesInSteadyState) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);

  // Engine paths: minimax value, OPT session picks and the worst-case
  // adversary must never copy an InferenceState — scratch states are
  // replay-constructed, and the search walks delta frames.
  const uint64_t before = InferenceState::CopyCount();
  MinimaxInteractions(state);
  {
    MinimaxOptions options;
    options.threads = kManyThreads;
    MinimaxEngine engine(index, options);
    engine.Value(state);
    EXPECT_GT(engine.counters().nodes, 0u);
  }
  {
    auto td = MakeStrategy(StrategyKind::kTopDown);
    WorstCaseInteractions(index, *td);
  }
  {
    OptimalStrategy opt;
    GoalOracle oracle{JoinPredicate()};
    auto result = RunInference(index, opt, oracle);
    ASSERT_TRUE(result.ok());
  }
  EXPECT_EQ(InferenceState::CopyCount(), before);

  // Sanity of the instrumentation: the reference implementation copies
  // once per node, so the counter must move under it.
  ReferenceMinimaxInteractions(state);
  EXPECT_GT(InferenceState::CopyCount(), before);
}

TEST(MinimaxEngineTest, OptimalStrategyRebuildsEngineAcrossIndexes) {
  // One recycled strategy instance over several freshly built indexes:
  // the engine cache must rebuild (build-id identity), never reuse stale
  // Zobrist keys or table entries.
  OptimalStrategy opt;
  for (const SignatureIndex& index : PropertyCorpus()) {
    InferenceState state(index);
    EXPECT_EQ(opt.SelectNext(state), ReferenceOptimalPick(state));
  }
}

TEST(MinimaxEngineDeathTest, WorstCaseRejectsNondeterministicStrategy) {
  SignatureIndex index = testing::Example21Index();
  auto rnd = MakeStrategy(StrategyKind::kRandom, /*seed=*/1);
  EXPECT_DEATH(WorstCaseInteractions(index, *rnd), "deterministic");
}

TEST(MinimaxEngineTest, CountersReportSearchEffort) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  MinimaxEngine engine(index, {});
  engine.Value(state);
  const MinimaxCounters& counters = engine.counters();
  EXPECT_GT(counters.nodes, 0u);
  EXPECT_GT(counters.tt_stores, 0u);
  EXPECT_GT(counters.deepening_rounds, 0u);
  EXPECT_GE(counters.tt_probes, counters.tt_hits);
  engine.ResetCounters();
  EXPECT_EQ(engine.counters().nodes, 0u);
}

}  // namespace
}  // namespace core
}  // namespace jinfer
