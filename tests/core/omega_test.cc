#include "core/omega.h"

#include <gtest/gtest.h>

#include "testing/paper_fixtures.h"

namespace jinfer {
namespace core {
namespace {

Omega MakeExampleOmega() {
  auto r = rel::Schema::Make("R0", {"A1", "A2"});
  auto p = rel::Schema::Make("P0", {"B1", "B2", "B3"});
  auto omega = Omega::Make(*r, *p);
  return std::move(omega).ValueOrDie();
}

TEST(OmegaTest, Dimensions) {
  Omega omega = MakeExampleOmega();
  EXPECT_EQ(omega.num_r_attrs(), 2u);
  EXPECT_EQ(omega.num_p_attrs(), 3u);
  EXPECT_EQ(omega.size(), 6u);
}

TEST(OmegaTest, BitLayoutRoundTrips) {
  Omega omega = MakeExampleOmega();
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      size_t bit = omega.BitOf(i, j);
      EXPECT_LT(bit, omega.size());
      EXPECT_EQ(omega.PairOf(bit), (std::pair<size_t, size_t>{i, j}));
    }
  }
}

TEST(OmegaTest, BitsAreDistinct) {
  Omega omega = MakeExampleOmega();
  std::set<size_t> bits;
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) bits.insert(omega.BitOf(i, j));
  }
  EXPECT_EQ(bits.size(), 6u);
}

TEST(OmegaTest, FullPredicate) {
  Omega omega = MakeExampleOmega();
  JoinPredicate full = omega.Full();
  EXPECT_EQ(full.Count(), 6u);
  EXPECT_TRUE(full.Test(5));
  EXPECT_FALSE(full.Test(6));
}

TEST(OmegaTest, PredicateFromPairsAndBack) {
  Omega omega = MakeExampleOmega();
  std::vector<std::pair<size_t, size_t>> pairs = {{0, 2}, {1, 0}};
  JoinPredicate theta = omega.PredicateFromPairs(pairs);
  EXPECT_EQ(theta.Count(), 2u);
  EXPECT_EQ(omega.PairsOf(theta), pairs);
}

TEST(OmegaTest, PredicateFromNames) {
  Omega omega = MakeExampleOmega();
  auto theta = omega.PredicateFromNames({{"A1", "B3"}, {"A2", "B1"}});
  ASSERT_TRUE(theta.ok());
  EXPECT_EQ(*theta, omega.PredicateFromPairs({{0, 2}, {1, 0}}));
}

TEST(OmegaTest, PredicateFromUnknownNameFails) {
  Omega omega = MakeExampleOmega();
  EXPECT_TRUE(omega.PredicateFromNames({{"A9", "B1"}}).status().IsNotFound());
  EXPECT_TRUE(omega.PredicateFromNames({{"A1", "B9"}}).status().IsNotFound());
}

TEST(OmegaTest, FormatUsesAttributeNames) {
  Omega omega = MakeExampleOmega();
  JoinPredicate theta = omega.PredicateFromPairs({{0, 2}, {1, 0}});
  EXPECT_EQ(omega.Format(theta), "{(A1,B3),(A2,B1)}");
  EXPECT_EQ(omega.Format(JoinPredicate()), "{}");
}

TEST(OmegaTest, ToAttrPairsMatchesJoinEvaluation) {
  Omega omega = MakeExampleOmega();
  JoinPredicate theta = omega.PredicateFromPairs({{1, 1}});
  std::vector<rel::AttrPair> attr_pairs = omega.ToAttrPairs(theta);
  ASSERT_EQ(attr_pairs.size(), 1u);
  EXPECT_EQ(attr_pairs[0], (rel::AttrPair{1, 1}));
}

TEST(OmegaTest, CapacityEnforced) {
  // 16 x 17 = 272 > 256 must be rejected.
  std::vector<std::string> r_names, p_names;
  for (int i = 0; i < 16; ++i) r_names.push_back("A" + std::to_string(i));
  for (int i = 0; i < 17; ++i) p_names.push_back("B" + std::to_string(i));
  auto r = rel::Schema::Make("R", r_names);
  auto p = rel::Schema::Make("P", p_names);
  auto omega = Omega::Make(*r, *p);
  ASSERT_FALSE(omega.ok());
  EXPECT_TRUE(omega.status().IsCapacityExceeded());
}

TEST(OmegaTest, MaxTpchShapeFits) {
  // Orders(9) x Lineitem(16) = 144 must fit.
  std::vector<std::string> r_names, p_names;
  for (int i = 0; i < 9; ++i) r_names.push_back("A" + std::to_string(i));
  for (int i = 0; i < 16; ++i) p_names.push_back("B" + std::to_string(i));
  auto omega = Omega::Make(*rel::Schema::Make("R", r_names),
                           *rel::Schema::Make("P", p_names));
  ASSERT_TRUE(omega.ok());
  EXPECT_EQ(omega->size(), 144u);
}

}  // namespace
}  // namespace core
}  // namespace jinfer
