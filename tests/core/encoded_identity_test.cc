// Encoded-vs-legacy identity: the columnar encode + build must be
// bit-identical to the retained row-major reference pipeline in every
// observable — global code arrays, the class table (signatures, counts,
// representatives, maximality), and full inference-session transcripts —
// at 1 and 4 build threads, compressed and uncompressed. This is the
// contract that let the ColumnTable refactor (DESIGN.md §9) land without
// perturbing anything downstream: same codes in, same index out.

#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/oracle.h"
#include "core/session_report.h"
#include "core/signature_index.h"
#include "core/strategy.h"
#include "relational/csv.h"
#include "relational/relation.h"
#include "semijoin/reduction_3sat.h"
#include "sat/random_cnf.h"
#include "util/rng.h"
#include "workload/synthetic.h"
#include "workload/tpch.h"

namespace jinfer {
namespace core {
namespace {

struct Instance {
  std::string name;
  rel::Relation r;
  rel::Relation p;
};

std::vector<Instance> TestInstances() {
  std::vector<Instance> out;

  for (uint64_t seed : {7u, 99u}) {
    auto inst = workload::GenerateSynthetic({3, 3, 60, 12}, seed);
    JINFER_CHECK(inst.ok(), "synthetic");
    out.push_back({"synthetic-" + std::to_string(seed), std::move(inst->r),
                   std::move(inst->p)});
  }

  {
    // Mixed runtime types, NULLs, duplicate rows, quoted strings.
    auto r = rel::ReadRelationCsvText(
        "A1,A2,A3\n1,x,3.5\n,\"x,y\",2\n\"\",abc,\n7,\"7\",7.5\n1,x,3.5\n",
        "R");
    auto p = rel::ReadRelationCsvText(
        "B1,B2\nx,1\nabc,3.5\n,\n2,7\nx,1\n", "P");
    JINFER_CHECK(r.ok() && p.ok(), "csv");
    out.push_back({"csv-mixed", std::move(*r), std::move(*p)});
  }

  {
    // NaN cells: never equal to anything (IEEE), so like NULL each
    // occurrence must get a fresh code — the reference's Value-keyed map
    // does this implicitly (Value(NaN) equals no stored key), the columnar
    // dictionary does it explicitly. "nan" parses as a double via
    // std::from_chars, same as the seed's Value::FromCsvField.
    auto r = rel::ReadRelationCsvText(
        "A1,A2\nnan,1\nnan,nan\n1.5,nan\n1.5,1\n", "R");
    auto p = rel::ReadRelationCsvText("B1\nnan\n1\n1.5\n", "P");
    JINFER_CHECK(r.ok() && p.ok(), "nan csv");
    out.push_back({"nan-doubles", std::move(*r), std::move(*p)});
  }

  {
    // The appendix A.1 reduction output is the NULL-heaviest instance in
    // the tree: bottom values everywhere, none of which may ever join.
    util::Rng rng(5);
    sat::Cnf phi = sat::Random3Cnf(5, 18, rng);
    auto reduced = semi::ReduceFrom3Sat(phi);
    JINFER_CHECK(reduced.ok(), "reduction");
    out.push_back({"3sat-nulls", std::move(reduced->r),
                   std::move(reduced->p)});
  }

  {
    auto db = workload::GenerateTpch(workload::MiniScaleA(), 7);
    JINFER_CHECK(db.ok(), "tpch");
    out.push_back({"tpch-j1", std::move(db->part), std::move(db->partsupp)});
  }

  return out;
}

std::vector<rel::Row> Materialize(const rel::Relation& rel) {
  return rel.rows();
}

void ExpectIndexesIdentical(const SignatureIndex& a, const SignatureIndex& b,
                            const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.num_classes(), b.num_classes());
  EXPECT_EQ(a.num_tuples(), b.num_tuples());
  EXPECT_EQ(a.compressed(), b.compressed());
  ASSERT_EQ(a.r_codes().size(), b.r_codes().size());
  ASSERT_EQ(a.p_codes().size(), b.p_codes().size());
  EXPECT_TRUE(std::equal(a.r_codes().begin(), a.r_codes().end(),
                         b.r_codes().begin()));
  EXPECT_TRUE(std::equal(a.p_codes().begin(), a.p_codes().end(),
                         b.p_codes().begin()));
  for (ClassId c = 0; c < a.num_classes(); ++c) {
    const SignatureClass& ca = a.cls(c);
    const SignatureClass& cb = b.cls(c);
    ASSERT_TRUE(ca.signature == cb.signature) << "class " << c;
    EXPECT_EQ(ca.count, cb.count) << "class " << c;
    EXPECT_EQ(ca.rep_r, cb.rep_r) << "class " << c;
    EXPECT_EQ(ca.rep_p, cb.rep_p) << "class " << c;
    EXPECT_EQ(ca.maximal, cb.maximal) << "class " << c;
  }
}

TEST(EncodedIdentityTest, ColumnarEncodeMatchesRowMajorReference) {
  for (const Instance& inst : TestInstances()) {
    SCOPED_TRACE(inst.name);
    EncodedInstance columnar = EncodeInstance(inst.r, inst.p);
    EncodedInstance reference =
        EncodeInstanceReference(Materialize(inst.r), Materialize(inst.p));
    EXPECT_EQ(columnar.r_codes, reference.r_codes);
    EXPECT_EQ(columnar.p_codes, reference.p_codes);
  }
}

TEST(EncodedIdentityTest, BuiltIndexBitIdenticalAcrossPathsAndThreads) {
  for (const Instance& inst : TestInstances()) {
    std::vector<rel::Row> r_rows = Materialize(inst.r);
    std::vector<rel::Row> p_rows = Materialize(inst.p);
    for (bool compress : {true, false}) {
      for (int threads : {1, 4}) {
        SignatureIndexOptions options{.compress = compress,
                                      .threads = threads};
        auto built = SignatureIndex::Build(inst.r, inst.p, options);
        auto reference = SignatureIndex::BuildReferenceRowMajor(
            inst.r.schema(), r_rows, inst.p.schema(), p_rows, options);
        ASSERT_TRUE(built.ok()) << inst.name;
        ASSERT_TRUE(reference.ok()) << inst.name;
        ExpectIndexesIdentical(
            *built, *reference,
            inst.name + (compress ? "/compressed" : "/uncompressed") +
                "/threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(EncodedIdentityTest, SessionTranscriptsIdenticalAcrossPaths) {
  for (const Instance& inst : TestInstances()) {
    SCOPED_TRACE(inst.name);
    auto built = SignatureIndex::Build(inst.r, inst.p);
    auto reference = SignatureIndex::BuildReferenceRowMajor(
        inst.r.schema(), Materialize(inst.r), inst.p.schema(),
        Materialize(inst.p));
    ASSERT_TRUE(built.ok() && reference.ok());

    for (StrategyKind kind :
         {StrategyKind::kTopDown, StrategyKind::kLookahead1}) {
      SCOPED_TRACE(StrategyKindName(kind));
      JoinPredicate goal = built->cls(0).signature;
      auto run = [&](const SignatureIndex& index) {
        auto strategy = MakeStrategy(kind, 11);
        GoalOracle oracle(goal);
        auto result = RunInference(index, *strategy, oracle, {});
        JINFER_CHECK(result.ok(), "inference");
        return *std::move(result);
      };
      InferenceResult a = run(*built);
      InferenceResult b = run(*reference);
      EXPECT_EQ(a.num_interactions, b.num_interactions);
      EXPECT_TRUE(a.predicate == b.predicate);
      // The rendered transcript pins the trace, representatives and the
      // decoded cell values in one string.
      EXPECT_EQ(RenderTranscript(*built, inst.r, inst.p, a),
                RenderTranscript(*reference, inst.r, inst.p, b));
    }
  }
}

TEST(EncodedIdentityTest, NullCodesNeverCollideOrJoin) {
  // Appendix A.1 bottom-value regression at the encode level: every NULL
  // cell gets a distinct code, disjoint from every non-null code, so no
  // NULL ever joins anything — including another NULL of the same column.
  auto r = rel::Relation::Make("R", {"A1", "A2"},
                               {{rel::Value(), 1}, {rel::Value(), rel::Value()}});
  auto p = rel::Relation::Make("P", {"B1"}, {{rel::Value()}, {1}});
  ASSERT_TRUE(r.ok() && p.ok());
  EncodedInstance enc = EncodeInstance(*r, *p);
  // The four NULL cells produced four distinct codes from the descending
  // range, disjoint from the ascending non-null range.
  std::vector<uint32_t> nulls = {enc.r_codes[0], enc.r_codes[2],
                                 enc.r_codes[3], enc.p_codes[0]};
  std::sort(nulls.begin(), nulls.end());
  EXPECT_TRUE(std::adjacent_find(nulls.begin(), nulls.end()) == nulls.end());
  for (uint32_t n : nulls) EXPECT_GT(n, 0x80000000u);
  // And the index agrees: the only tuples with a non-empty signature are
  // the 1-1 matches.
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  uint64_t matching = 0;
  for (ClassId c = 0; c < index->num_classes(); ++c) {
    if (index->cls(c).signature.Count() > 0) matching += index->cls(c).count;
  }
  EXPECT_EQ(matching, 1u);  // Only (row1 of R, row2 of P) joins on A2=B1=1.
}

}  // namespace
}  // namespace core
}  // namespace jinfer
