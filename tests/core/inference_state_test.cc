#include "core/inference_state.h"

#include <gtest/gtest.h>

#include "testing/paper_fixtures.h"

namespace jinfer {
namespace core {
namespace {

TEST(InferenceStateTest, FreshStateIsAllInformative) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  EXPECT_EQ(state.NumInformativeClasses(), 12u);
  EXPECT_EQ(state.InformativeTupleWeight(), 12u);
  EXPECT_FALSE(state.HasPositiveExample());
  EXPECT_EQ(state.InferredPredicate(), index.omega().Full());
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    EXPECT_TRUE(state.IsInformative(c));
  }
}

TEST(InferenceStateTest, Section34UninformativeExamples) {
  // §3.4: with S+ = {(t2,t2')} and S− = {(t1,t3')}, the examples
  // ((t4,t1'),+) and ((t2,t1'),−) are uninformative.
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  ASSERT_TRUE(
      state.ApplyLabel(testing::ClassOf(index, 1, 1), Label::kPositive).ok());
  ASSERT_TRUE(
      state.ApplyLabel(testing::ClassOf(index, 0, 2), Label::kNegative).ok());

  EXPECT_EQ(state.state(testing::ClassOf(index, 3, 0)),
            TupleState::kCertainPositive);
  EXPECT_EQ(state.state(testing::ClassOf(index, 1, 0)),
            TupleState::kCertainNegative);
}

TEST(InferenceStateTest, PositiveLabelShrinksPredicate) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  ClassId c = testing::ClassOf(index, 1, 1);  // {(A1,B1),(A2,B3)}
  ASSERT_TRUE(state.ApplyLabel(c, Label::kPositive).ok());
  EXPECT_EQ(state.InferredPredicate(), index.cls(c).signature);
  EXPECT_TRUE(state.HasPositiveExample());

  ClassId c2 = testing::ClassOf(index, 3, 0);  // {(A1,B1),(A1,B2),(A2,B3)}
  // c2 is now certain-positive, but labeling it positive is legal (it is
  // simply uninformative).
  ASSERT_TRUE(state.ApplyLabel(c2, Label::kPositive).ok());
  EXPECT_EQ(state.InferredPredicate(),
            testing::Pred(index.omega(), {{0, 0}, {1, 2}}));
}

TEST(InferenceStateTest, LabeledClassesAreNotInformative) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  ASSERT_TRUE(state.ApplyLabel(0, Label::kNegative).ok());
  EXPECT_EQ(state.state(0), TupleState::kLabeled);
  EXPECT_FALSE(state.IsInformative(0));
  auto informative = state.InformativeClasses();
  EXPECT_EQ(std::find(informative.begin(), informative.end(), 0),
            informative.end());
}

TEST(InferenceStateTest, DuplicateSameLabelIsNoOp) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  ASSERT_TRUE(state.ApplyLabel(0, Label::kNegative).ok());
  size_t before = state.sample().size();
  ASSERT_TRUE(state.ApplyLabel(0, Label::kNegative).ok());
  EXPECT_EQ(state.sample().size(), before);
}

TEST(InferenceStateTest, ContradictoryRelabelFails) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  ASSERT_TRUE(state.ApplyLabel(0, Label::kNegative).ok());
  util::Status st = state.ApplyLabel(0, Label::kPositive);
  EXPECT_TRUE(st.IsInconsistentSample());
}

TEST(InferenceStateTest, LabelContradictingCertaintyFails) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  // Positive (t2,t2') and negative (t1,t3') make (t4,t1') certain-positive
  // and (t2,t1') certain-negative (§3.4). Contradicting labels must fail
  // and leave the state untouched.
  ASSERT_TRUE(
      state.ApplyLabel(testing::ClassOf(index, 1, 1), Label::kPositive).ok());
  ASSERT_TRUE(
      state.ApplyLabel(testing::ClassOf(index, 0, 2), Label::kNegative).ok());
  size_t interactions = state.sample().size();

  EXPECT_TRUE(state.ApplyLabel(testing::ClassOf(index, 3, 0),
                               Label::kNegative)
                  .IsInconsistentSample());
  EXPECT_TRUE(state.ApplyLabel(testing::ClassOf(index, 1, 0),
                               Label::kPositive)
                  .IsInconsistentSample());
  EXPECT_EQ(state.sample().size(), interactions);

  // The non-contradicting labels are still accepted.
  EXPECT_TRUE(
      state.ApplyLabel(testing::ClassOf(index, 3, 0), Label::kPositive).ok());
}

TEST(InferenceStateTest, Section42LatticePruningPositive) {
  // §4.2: labeling (t1,t3') = {(A1,B2),(A1,B3)} positive renders (t2,t3')
  // uninformative.
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  ASSERT_TRUE(
      state.ApplyLabel(testing::ClassOf(index, 0, 2), Label::kPositive).ok());
  EXPECT_EQ(state.state(testing::ClassOf(index, 1, 2)),
            TupleState::kCertainPositive);
}

TEST(InferenceStateTest, Section42LatticePruningNegative) {
  // §4.2: labeling (t1,t3') negative renders (t2,t1') = {(A1,B3)} and
  // (t3,t1') = {} uninformative.
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  ASSERT_TRUE(
      state.ApplyLabel(testing::ClassOf(index, 0, 2), Label::kNegative).ok());
  EXPECT_EQ(state.state(testing::ClassOf(index, 1, 0)),
            TupleState::kCertainNegative);
  EXPECT_EQ(state.state(testing::ClassOf(index, 2, 0)),
            TupleState::kCertainNegative);
}

TEST(InferenceStateTest, CountNewlyUninformativeMatchesSimulation) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  ASSERT_TRUE(
      state.ApplyLabel(testing::ClassOf(index, 0, 2), Label::kPositive).ok());
  for (ClassId c : state.InformativeClasses()) {
    for (Label label : {Label::kPositive, Label::kNegative}) {
      uint64_t direct = state.CountNewlyUninformative(c, label);
      InferenceState sim = state.WithLabel(c, label);
      uint64_t via_weights =
          state.InformativeTupleWeight() - sim.InformativeTupleWeight() - 1;
      EXPECT_EQ(direct, via_weights)
          << "class " << c << " label " << LabelToString(label);
    }
  }
}

TEST(InferenceStateTest, WithLabelDoesNotMutateOriginal) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  size_t informative_before = state.NumInformativeClasses();
  InferenceState copy = state.WithLabel(0, Label::kNegative);
  EXPECT_EQ(state.NumInformativeClasses(), informative_before);
  EXPECT_LT(copy.NumInformativeClasses(), informative_before);
}

TEST(InferenceStateTest, HaltStateAfterFullLabeling) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  // Label everything according to goal {(A1,B3)}.
  JoinPredicate goal = testing::Pred(index.omega(), {{0, 2}});
  while (state.NumInformativeClasses() > 0) {
    ClassId c = state.InformativeClasses().front();
    Label label = index.Selects(goal, c) ? Label::kPositive : Label::kNegative;
    ASSERT_TRUE(state.ApplyLabel(c, label).ok());
  }
  EXPECT_TRUE(index.EquivalentOnInstance(state.InferredPredicate(), goal));
}

TEST(InferenceStateTest, TupleMatchingEverywhereIsBornCertainPositive) {
  // A tuple with T(t) = Ω is selected by every predicate, so it is
  // certain-positive before any label is given.
  auto r = rel::Relation::Make("R", {"A"}, {{1}});
  auto p = rel::Relation::Make("P", {"B"}, {{1}, {2}});
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  InferenceState state(*index);
  auto omega_cls = index->ClassOfSignature(index->omega().Full());
  ASSERT_TRUE(omega_cls.has_value());
  EXPECT_EQ(state.state(*omega_cls), TupleState::kCertainPositive);
  EXPECT_EQ(state.NumInformativeClasses(), 1u);  // Only the {} class.
}

TEST(InferenceStateTest, WeightsHonorClassMultiplicity) {
  // Two attributes on P so no signature equals Ω (an Ω-signature class
  // would be born certain-positive and drop out of the informative pool).
  auto r = rel::Relation::Make("R", {"A"}, {{1}, {1}, {2}});
  auto p = rel::Relation::Make("P", {"B1", "B2"}, {{1, 9}, {3, 9}});
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  // Classes: {(A,B1)} weight 2, {} weight 4.
  ASSERT_EQ(index->num_classes(), 2u);
  InferenceState state(*index);
  EXPECT_EQ(state.InformativeTupleWeight(), 6u);
  auto cls = index->ClassOfSignature(
      index->omega().PredicateFromPairs({{0, 0}}));
  ASSERT_TRUE(cls.has_value());
  // Labeling one member of the weight-2 class positive: its sibling tuple
  // becomes uninformative (count 1); the empty class stays informative
  // (T(S+) = {(A,B1)} ⊄ {} and there is no negative witness).
  EXPECT_EQ(state.CountNewlyUninformative(*cls, Label::kPositive), 1u);
}

}  // namespace
}  // namespace core
}  // namespace jinfer
