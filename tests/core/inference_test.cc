#include "core/inference.h"

#include <gtest/gtest.h>

#include "testing/paper_fixtures.h"

namespace jinfer {
namespace core {
namespace {

// --- Engine behavior -----------------------------------------------------------

TEST(InferenceEngineTest, TraceRecordsEveryInteraction) {
  SignatureIndex index = testing::Example21Index();
  auto bu = MakeStrategy(StrategyKind::kBottomUp);
  GoalOracle oracle{testing::Pred(index.omega(), {{0, 2}})};
  auto result = RunInference(index, *bu, oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->trace.size(), result->num_interactions);
  EXPECT_FALSE(result->halted_early);
  // The informative weight shrinks monotonically along the trace.
  for (size_t i = 1; i < result->trace.size(); ++i) {
    EXPECT_LT(result->trace[i].informative_before,
              result->trace[i - 1].informative_before);
  }
}

TEST(InferenceEngineTest, TraceCanBeDisabled) {
  SignatureIndex index = testing::Example21Index();
  auto bu = MakeStrategy(StrategyKind::kBottomUp);
  GoalOracle oracle{testing::Pred(index.omega(), {{0, 2}})};
  InferenceOptions options;
  options.record_trace = false;
  auto result = RunInference(index, *bu, oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->trace.empty());
  EXPECT_GT(result->num_interactions, 0u);
}

TEST(InferenceEngineTest, MaxInteractionsHaltsEarly) {
  SignatureIndex index = testing::Example21Index();
  auto bu = MakeStrategy(StrategyKind::kBottomUp);
  GoalOracle oracle{index.omega().Full()};  // BU worst case: 12 labels.
  InferenceOptions options;
  options.max_interactions = 2;
  auto result = RunInference(index, *bu, oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_interactions, 2u);
  EXPECT_TRUE(result->halted_early);
}

TEST(InferenceEngineTest, ReturnsOmegaWhenUserRejectsEverything) {
  // §3.3: with only negative examples the returned predicate is Ω.
  SignatureIndex index = testing::Example21Index();
  auto td = MakeStrategy(StrategyKind::kTopDown);
  GoalOracle oracle{index.omega().Full()};
  auto result = RunInference(index, *td, oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->predicate, index.omega().Full());
}

TEST(InferenceEngineTest, SingleTupleInstanceSection33) {
  // §3.3: R1 × P1 has one tuple with T(t) = Ω. Every predicate selects it,
  // so it is certain-positive with zero labels; the session halts
  // immediately and returns T(S+) = Ω = {(A1,B1),(A2,B1)} — exactly the
  // instance-equivalent answer §3.3 prescribes (the paper spends one
  // interaction on it; our Γ recognizes it as uninformative up front).
  auto r = rel::Relation::Make("R1", {"A1", "A2"}, {{1, 1}});
  auto p = rel::Relation::Make("P1", {"B1"}, {{1}});
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  auto bu = MakeStrategy(StrategyKind::kBottomUp);
  GoalOracle oracle{index->omega().PredicateFromPairs({{0, 0}})};  // θG1
  auto result = RunInference(*index, *bu, oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_interactions, 0u);
  EXPECT_EQ(result->predicate, index->omega().Full());
  EXPECT_TRUE(index->EquivalentOnInstance(
      result->predicate, index->omega().PredicateFromPairs({{0, 0}})));
}

// --- Error path (Algorithm 1 lines 6-7) -----------------------------------------

/// Presents a scripted list of classes (informative or not).
class ScriptedStrategy : public Strategy {
 public:
  explicit ScriptedStrategy(std::vector<ClassId> script)
      : script_(std::move(script)) {}
  const char* name() const override { return "scripted"; }
  std::optional<ClassId> SelectNext(const InferenceState& state) override {
    while (next_ < script_.size()) {
      ClassId c = script_[next_];
      if (state.state(c) == TupleState::kLabeled) {
        ++next_;
        continue;
      }
      ++next_;
      return c;
    }
    // Fall back to any informative class so the halt CHECK holds.
    auto informative = state.InformativeClasses();
    if (informative.empty()) return std::nullopt;
    return informative.front();
  }

 private:
  std::vector<ClassId> script_;
  size_t next_ = 0;
};

/// Labels from a fixed script.
class ScriptedOracle : public Oracle {
 public:
  explicit ScriptedOracle(std::vector<Label> labels)
      : labels_(std::move(labels)) {}
  Label LabelClass(const SignatureIndex&, ClassId) override {
    JINFER_CHECK(next_ < labels_.size(), "oracle script exhausted");
    return labels_[next_++];
  }

 private:
  std::vector<Label> labels_;
  size_t next_ = 0;
};

TEST(InferenceEngineTest, InconsistentUserLabelsRaiseError) {
  // §3.4 setup: after +(t2,t2') and −(t1,t3'), the tuple (t4,t1') is
  // certain-positive; a user labeling it negative is inconsistent.
  SignatureIndex index = testing::Example21Index();
  ScriptedStrategy strategy({testing::ClassOf(index, 1, 1),
                             testing::ClassOf(index, 0, 2),
                             testing::ClassOf(index, 3, 0)});
  ScriptedOracle oracle(
      {Label::kPositive, Label::kNegative, Label::kNegative});
  auto result = RunInference(index, strategy, oracle);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInconsistentSample());
}

TEST(InferenceEngineTest, RedundantButConsistentLabelsAreAccepted) {
  // Labeling the certain-positive tuple positive is uninformative but legal.
  SignatureIndex index = testing::Example21Index();
  ScriptedStrategy strategy({testing::ClassOf(index, 1, 1),
                             testing::ClassOf(index, 0, 2),
                             testing::ClassOf(index, 3, 0)});
  GoalOracle oracle{testing::Pred(index.omega(), {{0, 0}, {1, 2}})};
  auto result = RunInference(index, strategy, oracle);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

// --- Oracles ---------------------------------------------------------------------

TEST(GoalOracleTest, LabelsFollowSelection) {
  SignatureIndex index = testing::Example21Index();
  JoinPredicate goal = testing::Pred(index.omega(), {{0, 2}});
  GoalOracle oracle{goal};
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    EXPECT_EQ(oracle.LabelClass(index, c),
              index.Selects(goal, c) ? Label::kPositive : Label::kNegative);
  }
}

TEST(LyingOracleTest, ZeroProbabilityIsTruthful) {
  SignatureIndex index = testing::Example21Index();
  JoinPredicate goal = testing::Pred(index.omega(), {{0, 2}});
  GoalOracle truth{goal};
  LyingOracle liar{goal, 0.0, 9};
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    EXPECT_EQ(liar.LabelClass(index, c), truth.LabelClass(index, c));
  }
}

TEST(LyingOracleTest, ProbabilityOneAlwaysFlips) {
  SignatureIndex index = testing::Example21Index();
  JoinPredicate goal = testing::Pred(index.omega(), {{0, 2}});
  GoalOracle truth{goal};
  LyingOracle liar{goal, 1.0, 9};
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    EXPECT_NE(liar.LabelClass(index, c), truth.LabelClass(index, c));
  }
}

TEST(LyingOracleTest, LiesOnInformativeTuplesSilentlyMisleads) {
  // Documented failure mode: informative-only strategies never trip the
  // consistency check, so an always-lying user yields a *wrong but
  // consistent* predicate rather than an error.
  SignatureIndex index = testing::Example21Index();
  JoinPredicate goal = testing::Pred(index.omega(), {{0, 0}, {1, 2}});
  auto bu = MakeStrategy(StrategyKind::kBottomUp);
  LyingOracle liar{goal, 1.0, 3};
  auto result = RunInference(index, *bu, liar);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(index.EquivalentOnInstance(result->predicate, goal));
}

}  // namespace
}  // namespace core
}  // namespace jinfer
