#include "core/entropy.h"

#include <gtest/gtest.h>

#include "testing/paper_fixtures.h"

namespace jinfer {
namespace core {
namespace {

// --- Entropy pair basics ------------------------------------------------------

TEST(EntropyTest, OfCountsOrdersComponents) {
  EXPECT_EQ(Entropy::OfCounts(3, 1), (Entropy{1, 3}));
  EXPECT_EQ(Entropy::OfCounts(1, 3), (Entropy{1, 3}));
  EXPECT_EQ(Entropy::OfCounts(2, 2), (Entropy{2, 2}));
}

TEST(EntropyTest, ToString) {
  EXPECT_EQ((Entropy{1, 2}).ToString(), "(1,2)");
  EXPECT_EQ(Entropy::Infinite().ToString(), "(inf,inf)");
}

TEST(DominanceTest, PaperExamples) {
  // §4.4: (1,2) dominates (1,1) and (0,2), but not (2,2) nor (0,3).
  EXPECT_TRUE(Dominates({1, 2}, {1, 1}));
  EXPECT_TRUE(Dominates({1, 2}, {0, 2}));
  EXPECT_FALSE(Dominates({1, 2}, {2, 2}));
  EXPECT_FALSE(Dominates({1, 2}, {0, 3}));
}

TEST(DominanceTest, ReflexiveAndInfinity) {
  EXPECT_TRUE(Dominates({1, 2}, {1, 2}));
  EXPECT_TRUE(Dominates(Entropy::Infinite(), {5, 9}));
  EXPECT_FALSE(Dominates({5, 9}, Entropy::Infinite()));
}

TEST(SkylineTest, RemovesDominatedEntries) {
  auto frontier = Skyline({{0, 2}, {0, 1}, {1, 2}, {1, 1}, {0, 11}});
  EXPECT_EQ(frontier, (std::vector<Entropy>{{0, 11}, {1, 2}}));
}

TEST(SkylineTest, DeduplicatesEqualPairs) {
  auto frontier = Skyline({{1, 2}, {1, 2}});
  EXPECT_EQ(frontier, (std::vector<Entropy>{{1, 2}}));
}

TEST(SkylineTest, SingleElement) {
  EXPECT_EQ(Skyline({{3, 4}}), (std::vector<Entropy>{{3, 4}}));
}

TEST(SkylineTest, ChainKeepsTop) {
  auto frontier = Skyline({{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(frontier, (std::vector<Entropy>{{2, 3}}));
}

TEST(SkylineMaxMinTest, PicksSkylineElementWithMaximalMin) {
  Entropy chosen = SkylineMaxMin({{0, 2}, {0, 11}, {1, 2}, {1, 1}});
  EXPECT_EQ(chosen, (Entropy{1, 2}));
}

TEST(SkylineMaxMinTest, SameMinPrefersLargerMax) {
  Entropy chosen = SkylineMaxMin({{1, 2}, {1, 4}, {0, 11}});
  EXPECT_EQ(chosen, (Entropy{1, 4}));
}

// --- Figure 5: one-step entropies under the empty sample ---------------------
//
// One documented correction: the paper prints u+ = 2 for (t2,t1'); by
// Lemma 3.3 the supersets of {(A1,B3)} among Figure 3's signatures are
// (t1,t1'), (t1,t3'), (t2,t3'), (t3,t2') — i.e. u+ = 4 (DESIGN.md §2).

TEST(EntropyFigure5Test, AllTwelveCounts) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  auto expected = testing::Figure5Counts();
  size_t k = 0;
  for (size_t r = 0; r < 4; ++r) {
    for (size_t p = 0; p < 3; ++p, ++k) {
      ClassId cls = testing::ClassOf(index, r, p);
      EXPECT_EQ(state.CountNewlyUninformative(cls, Label::kPositive),
                expected[k].first)
          << "(t" << r + 1 << ",t" << p + 1 << "') u+";
      EXPECT_EQ(state.CountNewlyUninformative(cls, Label::kNegative),
                expected[k].second)
          << "(t" << r + 1 << ",t" << p + 1 << "') u-";
    }
  }
}

TEST(EntropyFigure5Test, EntropyPairs) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  // Spot checks straight from Figure 5.
  EXPECT_EQ(EntropyOf(state, testing::ClassOf(index, 2, 0)),
            (Entropy{0, 11}));  // (t3,t1')
  EXPECT_EQ(EntropyOf(state, testing::ClassOf(index, 0, 2)),
            (Entropy{1, 2}));  // (t1,t3')
  EXPECT_EQ(EntropyOf(state, testing::ClassOf(index, 1, 2)),
            (Entropy{0, 4}));  // (t2,t3')
  // The corrected row: (t2,t1') is (1,4), not the paper's (1,2).
  EXPECT_EQ(EntropyOf(state, testing::ClassOf(index, 1, 0)),
            (Entropy{1, 4}));
}

TEST(EntropyFigure5Test, SkylineOfInitialEntropies) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  std::vector<Entropy> all;
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    all.push_back(EntropyOf(state, c));
  }
  // With the corrected (1,4), the skyline is {(0,11),(1,4)} (the paper,
  // using (1,2) for (t2,t1'), reports {(1,2),(0,11)}).
  EXPECT_EQ(Skyline(all), (std::vector<Entropy>{{0, 11}, {1, 4}}));
}

// --- §4.4 worked example: entropy² -------------------------------------------

class Entropy2Section44Test : public ::testing::Test {
 protected:
  Entropy2Section44Test()
      : index_(testing::Example21Index()), state_(index_) {
    // S = {((t1,t3'),+), ((t3,t1'),−)}.
    JINFER_CHECK(state_
                     .ApplyLabel(testing::ClassOf(index_, 0, 2),
                                 Label::kPositive)
                     .ok(),
                 "fixture");
    JINFER_CHECK(state_
                     .ApplyLabel(testing::ClassOf(index_, 2, 0),
                                 Label::kNegative)
                     .ok(),
                 "fixture");
  }

  SignatureIndex index_;
  InferenceState state_;
};

TEST_F(Entropy2Section44Test, FiveInformativeTuplesRemain) {
  // §4.4 lists exactly (t1,t1'), (t2,t1'), (t3,t2'), (t4,t1'), (t4,t2').
  EXPECT_EQ(state_.NumInformativeClasses(), 5u);
  for (auto [r, p] : std::vector<std::pair<size_t, size_t>>{
           {0, 0}, {1, 0}, {2, 1}, {3, 0}, {3, 1}}) {
    EXPECT_TRUE(state_.IsInformative(testing::ClassOf(index_, r, p)))
        << "(t" << r + 1 << ",t" << p + 1 << "')";
  }
}

TEST_F(Entropy2Section44Test, UninformativeSetMatchesSection44) {
  // Uninf(S) = {(t2,t3')+, (t1,t2')−, (t2,t2')−, (t3,t3')−, (t4,t3')−}.
  EXPECT_EQ(state_.state(testing::ClassOf(index_, 1, 2)),
            TupleState::kCertainPositive);
  for (auto [r, p] : std::vector<std::pair<size_t, size_t>>{
           {0, 1}, {1, 1}, {2, 2}, {3, 2}}) {
    EXPECT_EQ(state_.state(testing::ClassOf(index_, r, p)),
              TupleState::kCertainNegative)
        << "(t" << r + 1 << ",t" << p + 1 << "')";
  }
}

TEST_F(Entropy2Section44Test, Entropy2OfT2T1PrimeIsThreeThree) {
  // The paper computes entropy²_S((t2,t1')) = (3,3): labeling it positive
  // ends the session ((∞,∞)); labeling it negative leaves (t4,t1'),
  // (t4,t2') informative, each guaranteeing 3 newly-uninformative tuples.
  Entropy e = EntropyKOf(state_, testing::ClassOf(index_, 1, 0), 2);
  EXPECT_EQ(e, (Entropy{3, 3}));
}

TEST_F(Entropy2Section44Test, PositiveBranchEndsSession) {
  InferenceState after =
      state_.WithLabel(testing::ClassOf(index_, 1, 0), Label::kPositive);
  EXPECT_EQ(after.NumInformativeClasses(), 0u);
}

TEST_F(Entropy2Section44Test, NegativeBranchLeavesTwoInformative) {
  InferenceState after =
      state_.WithLabel(testing::ClassOf(index_, 1, 0), Label::kNegative);
  EXPECT_EQ(after.NumInformativeClasses(), 2u);
  EXPECT_TRUE(after.IsInformative(testing::ClassOf(index_, 3, 0)));
  EXPECT_TRUE(after.IsInformative(testing::ClassOf(index_, 3, 1)));
}

// --- entropy^k sanity ----------------------------------------------------------

TEST(EntropyKTest, DepthOneMatchesEntropyOf) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  for (ClassId c : state.InformativeClasses()) {
    EXPECT_EQ(EntropyKOf(state, c, 1), EntropyOf(state, c));
  }
}

TEST(EntropyKTest, LastInformativeTupleHasInfiniteEntropy2) {
  // When labeling t either way ends the session, entropy² is (∞,∞).
  // R = {1, 2}, P = {1}: the Ω-signature tuple (1,1) is born certain-
  // positive, leaving only the {}-signature tuple informative; labeling it
  // either way satisfies Γ.
  auto r = rel::Relation::Make("R", {"A"}, {{1}, {2}});
  auto p = rel::Relation::Make("P", {"B"}, {{1}});
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  InferenceState state(*index);
  ASSERT_EQ(state.NumInformativeClasses(), 1u);
  ClassId only = state.InformativeClasses().front();
  EXPECT_EQ(EntropyKOf(state, only, 2), Entropy::Infinite());
}

TEST(EntropyKTest, Depth3RunsOnExample21) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  ClassId c = testing::ClassOf(index, 1, 0);
  Entropy e3 = EntropyKOf(state, c, 3);
  // Depth-3 guarantees at least as much as depth-2 guarantees at least as
  // much as depth-1 (more forced labels can only add information).
  Entropy e2 = EntropyKOf(state, c, 2);
  Entropy e1 = EntropyKOf(state, c, 1);
  EXPECT_GE(e3.min_u, e2.min_u);
  EXPECT_GE(e2.min_u, e1.min_u);
}

TEST(EntropyKDeathTest, RejectsNonPositiveDepth) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  EXPECT_DEATH(EntropyKOf(state, 0, 0), "depth");
}

}  // namespace
}  // namespace core
}  // namespace jinfer
