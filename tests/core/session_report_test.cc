#include "core/session_report.h"

#include <gtest/gtest.h>

#include "core/consistency.h"
#include "core/oracle.h"
#include "testing/paper_fixtures.h"

namespace jinfer {
namespace core {
namespace {

InferenceResult RunSession(const SignatureIndex& index,
                           const JoinPredicate& goal) {
  auto strategy = MakeStrategy(StrategyKind::kTopDown);
  GoalOracle oracle{goal};
  auto result = RunInference(index, *strategy, oracle);
  JINFER_CHECK(result.ok(), "session");
  return std::move(result).ValueOrDie();
}

TEST(TranscriptTest, OneLinePerInteractionPlusVerdict) {
  SignatureIndex index = testing::Example21Index();
  rel::Relation r = testing::Example21R();
  rel::Relation p = testing::Example21P();
  JoinPredicate goal = testing::Pred(index.omega(), {{0, 2}});
  InferenceResult result = RunSession(index, goal);

  std::string transcript = RenderTranscript(index, r, p, result);
  size_t lines = std::count(transcript.begin(), transcript.end(), '\n');
  EXPECT_EQ(lines, result.num_interactions + 1);
  EXPECT_NE(transcript.find("Q1 ["), std::string::npos);
  EXPECT_NE(transcript.find("R0("), std::string::npos);
  EXPECT_NE(transcript.find("P0("), std::string::npos);
  EXPECT_NE(transcript.find("Inferred predicate: " +
                            index.omega().Format(result.predicate)),
            std::string::npos);
}

TEST(TranscriptTest, EarlyStopIsMarked) {
  SignatureIndex index = testing::Example21Index();
  rel::Relation r = testing::Example21R();
  rel::Relation p = testing::Example21P();
  auto strategy = MakeStrategy(StrategyKind::kBottomUp);
  GoalOracle oracle{index.omega().Full()};
  InferenceOptions options;
  options.max_interactions = 2;
  auto result = RunInference(index, *strategy, oracle, options);
  ASSERT_TRUE(result.ok());
  std::string transcript = RenderTranscript(index, r, p, *result);
  EXPECT_NE(transcript.find("stopped early"), std::string::npos);
}

TEST(TraceCsvTest, HeaderAndShape) {
  SignatureIndex index = testing::Example21Index();
  JoinPredicate goal = testing::Pred(index.omega(), {{0, 0}, {1, 2}});
  InferenceResult result = RunSession(index, goal);

  std::string csv = TraceToCsv(index, result);
  EXPECT_EQ(csv.rfind("question,r_row,p_row,label,signature,"
                      "informative_before\n",
                      0),
            0u);
  size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, result.num_interactions + 1);
}

TEST(TraceCsvTest, RoundTripsToTheSameSample) {
  SignatureIndex index = testing::Example21Index();
  JoinPredicate goal = testing::Pred(index.omega(), {{0, 0}, {1, 2}});
  InferenceResult result = RunSession(index, goal);

  auto sample = SampleFromTraceCsv(index, TraceToCsv(index, result));
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();
  ASSERT_EQ(sample->size(), result.trace.size());
  for (size_t i = 0; i < sample->size(); ++i) {
    EXPECT_EQ((*sample)[i].cls, result.trace[i].cls);
    EXPECT_EQ((*sample)[i].label, result.trace[i].label);
  }
  // The reconstructed sample reproduces the inferred predicate.
  auto theta = MostSpecificConsistent(index, *sample);
  ASSERT_TRUE(theta.ok());
  EXPECT_EQ(*theta, result.predicate);
}

TEST(TraceCsvTest, RejectsMissingColumns) {
  SignatureIndex index = testing::Example21Index();
  EXPECT_TRUE(SampleFromTraceCsv(index, "a,b\n1,2\n")
                  .status()
                  .IsParseError());
}

TEST(TraceCsvTest, RejectsBadLabel) {
  SignatureIndex index = testing::Example21Index();
  EXPECT_TRUE(SampleFromTraceCsv(
                  index,
                  "question,r_row,p_row,label,signature,informative_before\n"
                  "1,0,0,\"x\",\"{}\",12\n")
                  .status()
                  .IsParseError());
}

TEST(TraceCsvTest, RejectsOutOfRangeRows) {
  SignatureIndex index = testing::Example21Index();
  auto out_of_range = SampleFromTraceCsv(
      index,
      "question,r_row,p_row,label,signature,informative_before\n"
      "1,99,0,\"+\",\"{}\",12\n");
  EXPECT_TRUE(out_of_range.status().IsOutOfRange());
  auto negative = SampleFromTraceCsv(
      index,
      "question,r_row,p_row,label,signature,informative_before\n"
      "1,-1,0,\"+\",\"{}\",12\n");
  EXPECT_TRUE(negative.status().IsOutOfRange());
}

TEST(TraceCsvTest, RejectsNonIntegerRows) {
  SignatureIndex index = testing::Example21Index();
  EXPECT_TRUE(SampleFromTraceCsv(
                  index,
                  "question,r_row,p_row,label,signature,informative_before\n"
                  "1,zero,0,\"+\",\"{}\",12\n")
                  .status()
                  .IsParseError());
}

}  // namespace
}  // namespace core
}  // namespace jinfer
