#include "core/strategies/optimal_strategy.h"

#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/lattice.h"
#include "core/oracle.h"
#include "testing/paper_fixtures.h"

namespace jinfer {
namespace core {
namespace {

TEST(MinimaxTest, TerminalStateIsZero) {
  auto r = rel::Relation::Make("R", {"A"}, {{1}, {2}});
  auto p = rel::Relation::Make("P", {"B"}, {{1}});
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  InferenceState state(*index);
  ASSERT_EQ(state.NumInformativeClasses(), 1u);
  // One informative class: exactly one question in the worst case.
  EXPECT_EQ(MinimaxInteractions(state), 1u);
  ClassId only = state.InformativeClasses().front();
  EXPECT_EQ(MinimaxInteractions(state.WithLabel(only, Label::kNegative)),
            0u);
}

TEST(MinimaxTest, Example21WorstCaseValue) {
  // The minimax value of the whole Example 2.1 instance: the fewest
  // questions that suffice against the worst possible user. It must be
  // between log2(#distinguishable predicates) and #classes.
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  size_t v = MinimaxInteractions(state);
  EXPECT_GE(v, 5u);   // 23 distinguishable outcomes need ≥ ceil(log2 23).
  EXPECT_LE(v, 12u);  // Never more than one question per class.
  // Determinism: same value on recomputation.
  EXPECT_EQ(MinimaxInteractions(state), v);
}

TEST(MinimaxTest, MonotoneUnderLabeling) {
  // Labeling any informative tuple costs one question and cannot make the
  // worst case grow past the parent's value: V(S+t) ≤ V(S) for the minimax
  // pick... and for ANY pick, 1 + max_α V(S+(t,α)) ≥ V(S).
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  size_t parent = MinimaxInteractions(state);
  for (ClassId c : state.InformativeClasses()) {
    size_t worst = 0;
    for (Label label : {Label::kPositive, Label::kNegative}) {
      worst = std::max(worst,
                       MinimaxInteractions(state.WithLabel(c, label)));
    }
    EXPECT_GE(1 + worst, parent) << "class " << c;
  }
}

TEST(OptimalStrategyTest, AchievesTheMinimaxValueAgainstAnyUser) {
  SignatureIndex index = testing::Example21Index();
  InferenceState fresh(index);
  size_t optimum = MinimaxInteractions(fresh);
  OptimalStrategy opt;
  EXPECT_EQ(WorstCaseInteractions(index, opt), optimum);
}

TEST(OptimalStrategyTest, NoPaperStrategyBeatsTheOptimum) {
  SignatureIndex index = testing::Example21Index();
  InferenceState fresh(index);
  size_t optimum = MinimaxInteractions(fresh);
  for (StrategyKind kind :
       {StrategyKind::kBottomUp, StrategyKind::kTopDown,
        StrategyKind::kLookahead1, StrategyKind::kLookahead2,
        StrategyKind::kExpectedGain}) {
    auto strategy = MakeStrategy(kind);
    size_t worst = WorstCaseInteractions(index, *strategy);
    EXPECT_GE(worst, optimum) << StrategyKindName(kind);
  }
}

TEST(OptimalStrategyTest, LookaheadApproachesOptimalWorstCase) {
  // §4.4: "if k is greater than the total number of informative tuples,
  // the strategy becomes optimal". On Example 2.1, deeper lookahead must
  // never have a worse worst case than shallower lookahead ... at least
  // the paper's trend: L2S ≤ BU and L2S close to OPT.
  SignatureIndex index = testing::Example21Index();
  InferenceState fresh(index);
  size_t optimum = MinimaxInteractions(fresh);
  auto l2s = MakeStrategy(StrategyKind::kLookahead2);
  auto bu = MakeStrategy(StrategyKind::kBottomUp);
  size_t l2s_worst = WorstCaseInteractions(index, *l2s);
  size_t bu_worst = WorstCaseInteractions(index, *bu);
  EXPECT_LE(l2s_worst, bu_worst);
  EXPECT_LE(l2s_worst, optimum + 3);  // Close to optimal on this instance.
}

TEST(OptimalStrategyTest, RunsThroughTheEngine) {
  SignatureIndex index = testing::Example21Index();
  auto goals = NonNullablePredicates(index);
  ASSERT_TRUE(goals.ok());
  InferenceState fresh(index);
  size_t optimum = MinimaxInteractions(fresh);
  for (const auto& goal : *goals) {
    OptimalStrategy opt;
    GoalOracle oracle{goal};
    auto result = RunInference(index, opt, oracle);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(index.EquivalentOnInstance(result->predicate, goal));
    EXPECT_LE(result->num_interactions, optimum);
  }
}

TEST(OptimalStrategyTest, FactoryAndNames) {
  auto opt = MakeStrategy(StrategyKind::kOptimal);
  EXPECT_EQ(opt->name(), std::string("OPT"));
  auto parsed = StrategyKindFromName("OPT");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, StrategyKind::kOptimal);
}

TEST(OptimalStrategyDeathTest, BudgetGuards) {
  SignatureIndex index = testing::Example21Index();
  InferenceState state(index);
  EXPECT_DEATH(MinimaxInteractions(state, /*node_budget=*/10),
               "budget");
}

}  // namespace
}  // namespace core
}  // namespace jinfer
