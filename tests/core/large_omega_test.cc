// Golden-transcript regressions for large class counts and multi-word
// Omega: full interactive sessions whose every asked question, answer and
// pre-question informative weight is pinned by a Mix64-chain fingerprint.
// These freeze the end-to-end behavior of the packed word-kernel sweeps —
// any reordering of candidate evaluation, tie-breaking or u-count
// arithmetic shows up as a fingerprint mismatch, not a silent drift. The
// goldens were captured from the per-candidate reference paths and are
// build-type independent (all-integer logic).

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/oracle.h"
#include "core/signature_index.h"
#include "core/strategies/optimal_strategy.h"
#include "core/strategy.h"
#include "util/bitset.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace core {
namespace {

/// Mix64 chain over (class, label, informative-before) of every
/// interaction, in session order. Chained per util::Mix64's contract.
uint64_t TraceFingerprint(const std::vector<InteractionRecord>& trace) {
  uint64_t h = 0;
  for (const auto& rec : trace) {
    h = util::Mix64(rec.cls + h);
    h = util::Mix64((rec.label == Label::kPositive ? 1 : 2) + h);
    h = util::Mix64(rec.informative_before + h);
  }
  return h;
}

struct SessionGolden {
  size_t num_classes;
  size_t num_interactions;
  uint64_t fingerprint;
};

InferenceResult RunGoldenSession(const workload::SyntheticConfig& config,
                                 uint64_t seed, StrategyKind kind,
                                 const SessionGolden& golden) {
  auto inst = workload::GenerateSynthetic(config, seed);
  JINFER_CHECK(inst.ok(), "generate failed");
  auto index = SignatureIndex::Build(inst->r, inst->p);
  JINFER_CHECK(index.ok(), "build failed");
  EXPECT_EQ(index->num_classes(), golden.num_classes);

  GoalOracle oracle(index->omega().PredicateFromPairs({{0, 0}, {1, 1}}));
  auto strategy = MakeStrategy(kind);
  auto result = RunInference(*index, *strategy, oracle);
  JINFER_CHECK(result.ok(), "inference failed");
  EXPECT_EQ(result->num_interactions, golden.num_interactions);
  EXPECT_EQ(TraceFingerprint(result->trace), golden.fingerprint);
  // The goal {(A1,B1),(A2,B2)} is recovered exactly in all three sessions.
  EXPECT_EQ(result->predicate,
            index->omega().PredicateFromPairs({{0, 0}, {1, 1}}));
  return std::move(*result);
}

// 260 signature classes (> SmallBitset::kMaxBits of them), single-word
// Omega: the batch entropy^2 sweep drives every question of a full L2S
// session over a class list longer than any bitset capacity.
TEST(LargeOmegaTranscriptTest, L2SOver260Classes) {
  RunGoldenSession(workload::SyntheticConfig{4, 4, 20, 6}, 101,
                   StrategyKind::kLookahead2,
                   SessionGolden{260, 7, 0xe6631818fefca9ccULL});
}

// |Omega| = 72 — a two-active-word universe — with 900 classes: the
// generic multi-word kernels (And2Words/EqualWords/AnyWitnessContains)
// carry the whole L1S session.
TEST(LargeOmegaTranscriptTest, L1SMultiWord900Classes) {
  RunGoldenSession(workload::SyntheticConfig{9, 8, 30, 3}, 101,
                   StrategyKind::kLookahead1,
                   SessionGolden{900, 11, 0xae14c15ee642ea8bULL});
}

// The 18-class minimax instance (the BM_MinimaxValueEngineLarge shape):
// the OPT strategy's full alpha-beta search rides the scoped apply/undo
// delta frames over the packed arrays; both the played session and the
// game value are pinned.
TEST(LargeOmegaTranscriptTest, OptInstanceSessionAndValue) {
  workload::SyntheticConfig config{3, 2, 8, 4};
  RunGoldenSession(config, 20140324, StrategyKind::kOptimal,
                   SessionGolden{18, 5, 0x624b9ef4263f30a3ULL});

  auto inst = workload::GenerateSynthetic(config, 20140324);
  ASSERT_TRUE(inst.ok());
  auto index = SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(index.ok());
  InferenceState state(*index);
  EXPECT_EQ(MinimaxInteractions(state), 6u);
}

}  // namespace
}  // namespace core
}  // namespace jinfer
