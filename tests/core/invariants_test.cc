// Cross-cutting invariants of the inference state machine, checked along
// full randomized labeling trajectories (complements the per-lemma
// property suites in certain_property_test.cc).

#include <gtest/gtest.h>

#include "core/entropy.h"
#include "core/inference_state.h"
#include "testing/paper_fixtures.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace core {
namespace {

class TrajectoryInvariantsTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static SignatureIndex MakeIndex(uint64_t seed) {
    auto inst = workload::GenerateSynthetic({3, 3, 20, 8}, seed);
    JINFER_CHECK(inst.ok(), "generation");
    auto index = SignatureIndex::Build(inst->r, inst->p);
    JINFER_CHECK(index.ok(), "index");
    return std::move(index).ValueOrDie();
  }
};

TEST_P(TrajectoryInvariantsTest, FullTrajectoryInvariants) {
  uint64_t seed = GetParam();
  SignatureIndex index = MakeIndex(seed);
  util::Rng rng(seed ^ 0xaa);

  // Random hidden goal; labels always follow it (consistent trajectory).
  JoinPredicate goal;
  for (size_t b = 0; b < index.omega().size(); ++b) {
    if (rng.NextBool(0.3)) goal.Set(b);
  }

  InferenceState state(index);
  uint64_t prev_weight = state.InformativeTupleWeight();
  JoinPredicate prev_predicate = state.InferredPredicate();

  while (state.NumInformativeClasses() > 0) {
    auto informative = state.InformativeClasses();

    // I1: InformativeTupleWeight equals the sum of informative class
    // weights.
    uint64_t recomputed = 0;
    for (ClassId c : informative) recomputed += index.cls(c).count;
    ASSERT_EQ(state.InformativeTupleWeight(), recomputed);

    // I2: the goal remains consistent: it never selects a certain-negative
    // class and always selects a certain-positive class.
    for (ClassId c = 0; c < index.num_classes(); ++c) {
      if (state.state(c) == TupleState::kCertainPositive) {
        ASSERT_TRUE(index.Selects(goal, c));
      }
      if (state.state(c) == TupleState::kCertainNegative) {
        ASSERT_FALSE(index.Selects(goal, c));
      }
    }

    // I3: the inferred predicate only ever becomes more specific.
    ASSERT_TRUE(prev_predicate.IsSubsetOf(state.InferredPredicate()) ||
                state.InferredPredicate().IsSubsetOf(prev_predicate));

    // I4: u± counts match the weight delta of a simulated label.
    ClassId pick = informative[rng.NextBelow(informative.size())];
    for (Label label : {Label::kPositive, Label::kNegative}) {
      uint64_t u = state.CountNewlyUninformative(pick, label);
      InferenceState sim = state.WithLabel(pick, label);
      ASSERT_EQ(u, state.InformativeTupleWeight() -
                       sim.InformativeTupleWeight() - 1);
    }

    // Advance with the goal's label.
    Label label =
        index.Selects(goal, pick) ? Label::kPositive : Label::kNegative;
    prev_predicate = state.InferredPredicate();
    ASSERT_TRUE(state.ApplyLabel(pick, label).ok());

    // I5: informative weight strictly decreases per interaction.
    ASSERT_LT(state.InformativeTupleWeight(), prev_weight);
    prev_weight = state.InformativeTupleWeight();
  }

  // At halt: instance-equivalence with the goal (the §3.3 contract).
  EXPECT_TRUE(index.EquivalentOnInstance(state.InferredPredicate(), goal));
}

TEST_P(TrajectoryInvariantsTest, EntropyBoundsAndSkylineMembership) {
  uint64_t seed = GetParam();
  SignatureIndex index = MakeIndex(seed);
  InferenceState state(index);

  std::vector<Entropy> all;
  uint64_t weight = state.InformativeTupleWeight();
  for (ClassId c : state.InformativeClasses()) {
    Entropy e = EntropyOf(state, c);
    // u± can never exceed the informative tuples other than t itself.
    ASSERT_LE(e.max_u, weight - 1);
    ASSERT_LE(e.min_u, e.max_u);
    all.push_back(e);
  }
  // Every entropy is dominated by (or member of) the skyline.
  auto frontier = Skyline(all);
  for (const Entropy& e : all) {
    bool covered = false;
    for (const Entropy& f : frontier) {
      if (Dominates(f, e)) {
        covered = true;
        break;
      }
    }
    ASSERT_TRUE(covered) << e.ToString();
  }
  // And no skyline member dominates another.
  for (const Entropy& f : frontier) {
    for (const Entropy& g : frontier) {
      if (!(f == g)) {
        ASSERT_FALSE(Dominates(f, g) && Dominates(g, f));
      }
    }
  }
}

TEST_P(TrajectoryInvariantsTest, LabelingOrderDoesNotMatter) {
  // The state is a function of the sample *set*: applying the same labels
  // in two different orders yields identical classifications.
  uint64_t seed = GetParam();
  SignatureIndex index = MakeIndex(seed);
  util::Rng rng(seed ^ 0x77);
  JoinPredicate goal;
  goal.Set(rng.NextBelow(index.omega().size()));

  // Gather a trajectory's labels.
  InferenceState forward(index);
  std::vector<ClassExample> labels;
  while (forward.NumInformativeClasses() > 0 && labels.size() < 6) {
    auto informative = forward.InformativeClasses();
    ClassId pick = informative[rng.NextBelow(informative.size())];
    Label label =
        index.Selects(goal, pick) ? Label::kPositive : Label::kNegative;
    ASSERT_TRUE(forward.ApplyLabel(pick, label).ok());
    labels.push_back({pick, label});
  }

  // Replay in reverse order; certainty can make a replayed label merely
  // uninformative, never inconsistent.
  InferenceState backward(index);
  for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
    ASSERT_TRUE(backward.ApplyLabel(it->cls, it->label).ok());
  }
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    // Labeled-vs-certain may differ between orders; informativeness and
    // the inferred predicate may not.
    ASSERT_EQ(forward.IsInformative(c), backward.IsInformative(c));
  }
  ASSERT_EQ(forward.InferredPredicate(), backward.InferredPredicate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrajectoryInvariantsTest,
                         ::testing::Range(uint64_t{2000}, uint64_t{2012}));

}  // namespace
}  // namespace core
}  // namespace jinfer
