#include "core/lattice.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "testing/paper_fixtures.h"

namespace jinfer {
namespace core {
namespace {

TEST(JoinRatioTest, Example21IsExactlyTwo) {
  // §5.3: "the join ratio of this instance is (0 + 1 + 7*2 + 3*3)/12 = 2".
  SignatureIndex index = testing::Example21Index();
  EXPECT_DOUBLE_EQ(JoinRatio(index), 2.0);
}

TEST(JoinRatioTest, CountsDuplicateSignaturesOnce) {
  // Two R rows with equal values: signatures collapse, so the ratio is over
  // unique signatures — the paper's "unique join predicates".
  auto r = rel::Relation::Make("R", {"A"}, {{1}, {1}});
  auto p = rel::Relation::Make("P", {"B"}, {{1}, {2}});
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  // Unique signatures: {(A,B)} and {}: ratio (1+0)/2.
  EXPECT_DOUBLE_EQ(JoinRatio(*index), 0.5);
}

TEST(DistinctSignaturesTest, SortedBySizeAndComplete) {
  SignatureIndex index = testing::Example21Index();
  auto sigs = DistinctSignatures(index);
  ASSERT_EQ(sigs.size(), 12u);
  // Sizes per Figure 3: one 0, one 1, seven 2s, three 3s, sorted ascending.
  std::vector<size_t> sizes;
  for (const auto& s : sigs) sizes.push_back(s.Count());
  EXPECT_TRUE(std::is_sorted(sizes.begin(), sizes.end()));
  EXPECT_EQ(std::count(sizes.begin(), sizes.end(), 0u), 1);
  EXPECT_EQ(std::count(sizes.begin(), sizes.end(), 1u), 1);
  EXPECT_EQ(std::count(sizes.begin(), sizes.end(), 2u), 7);
  EXPECT_EQ(std::count(sizes.begin(), sizes.end(), 3u), 3);
}

TEST(MaximalSignaturesTest, Example21SevenMaximal) {
  // Three size-3 signatures plus four size-2 signatures not below any
  // size-3 one.
  SignatureIndex index = testing::Example21Index();
  auto maximal = MaximalSignatures(index);
  ASSERT_EQ(maximal.size(), 7u);
  size_t size2 = 0, size3 = 0;
  for (const auto& m : maximal) {
    (m.Count() == 2 ? size2 : size3) += 1;
  }
  EXPECT_EQ(size2, 4u);
  EXPECT_EQ(size3, 3u);
}

TEST(NonNullablePredicatesTest, Example21DownClosureHas22Nodes) {
  // The down-closure of the 12 signatures: 1 empty + 6 singletons +
  // 12 pairs + 3 triples = 22 non-nullable predicates. (Figure 4 of the
  // paper draws only 17 nodes — it omits five non-nullable pair nodes such
  // as {(A1,B3),(A2,B1)} ⊆ T((t1,t1')); the brute-force cross-check below,
  // IsExactlyTheDownClosure, confirms 22 against the definition.)
  SignatureIndex index = testing::Example21Index();
  auto preds = NonNullablePredicates(index);
  ASSERT_TRUE(preds.ok());
  EXPECT_EQ(preds->size(), 22u);
  std::vector<size_t> sizes;
  for (const auto& t : *preds) sizes.push_back(t.Count());
  EXPECT_EQ(std::count(sizes.begin(), sizes.end(), 0u), 1);
  EXPECT_EQ(std::count(sizes.begin(), sizes.end(), 1u), 6);
  EXPECT_EQ(std::count(sizes.begin(), sizes.end(), 2u), 12);
  EXPECT_EQ(std::count(sizes.begin(), sizes.end(), 3u), 3);
}

TEST(NonNullablePredicatesTest, EveryResultSelectsSomething) {
  SignatureIndex index = testing::Example21Index();
  auto preds = NonNullablePredicates(index);
  ASSERT_TRUE(preds.ok());
  for (const auto& theta : *preds) {
    EXPECT_TRUE(index.IsNonNullable(theta))
        << index.omega().Format(theta);
  }
}

TEST(NonNullablePredicatesTest, IsExactlyTheDownClosure) {
  // Cross-check against direct enumeration of P(Ω).
  SignatureIndex index = testing::Example21Index();
  auto preds = NonNullablePredicates(index);
  ASSERT_TRUE(preds.ok());
  std::set<JoinPredicate> got(preds->begin(), preds->end());

  size_t n = index.omega().size();
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    JoinPredicate theta;
    for (size_t b = 0; b < n; ++b) {
      if ((mask >> b) & 1) theta.Set(b);
    }
    EXPECT_EQ(got.contains(theta), index.IsNonNullable(theta))
        << index.omega().Format(theta);
  }
}

TEST(NonNullablePredicatesTest, LimitEnforced) {
  SignatureIndex index = testing::Example21Index();
  auto preds = NonNullablePredicates(index, /*limit=*/5);
  ASSERT_FALSE(preds.ok());
  EXPECT_TRUE(preds.status().IsCapacityExceeded());
}

TEST(NonNullablePredicatesTest, AllEqualInstanceYieldsFullPowerset) {
  // §4.2: all predicates are non-nullable iff two all-equal tuples exist.
  auto r = rel::Relation::Make("R", {"A1", "A2"}, {{7, 7}});
  auto p = rel::Relation::Make("P", {"B1", "B2"}, {{7, 7}});
  auto index = SignatureIndex::Build(*r, *p);
  ASSERT_TRUE(index.ok());
  auto preds = NonNullablePredicates(*index);
  ASSERT_TRUE(preds.ok());
  EXPECT_EQ(preds->size(), 16u);  // 2^4
}

}  // namespace
}  // namespace core
}  // namespace jinfer
