#include "core/consistency.h"

#include <gtest/gtest.h>

#include "testing/paper_fixtures.h"

namespace jinfer {
namespace core {
namespace {

// --- Example 3.1 -------------------------------------------------------------

TEST(ConsistencyTest, Example31ConsistentSample) {
  SignatureIndex index = testing::Example21Index();
  // S0: positives (t2,t2'), (t4,t1'); negative (t3,t2').
  Sample sample = ToClassSample(index, {{1, 1, Label::kPositive},
                                        {3, 0, Label::kPositive},
                                        {2, 1, Label::kNegative}});
  EXPECT_TRUE(IsConsistent(index, sample));
  auto theta = MostSpecificConsistent(index, sample);
  ASSERT_TRUE(theta.ok());
  // θ0 = {(A1,B1),(A2,B3)}.
  EXPECT_EQ(*theta, testing::Pred(index.omega(), {{0, 0}, {1, 2}}));
}

TEST(ConsistencyTest, Example31LessSpecificPredicateAlsoConsistent) {
  SignatureIndex index = testing::Example21Index();
  const Omega& omega = index.omega();
  // θ0' = {(A1,B1)} is consistent too (but not most specific): it selects
  // both positives and not the negative.
  JoinPredicate theta = testing::Pred(omega, {{0, 0}});
  EXPECT_TRUE(index.Selects(theta, testing::ClassOf(index, 1, 1)));
  EXPECT_TRUE(index.Selects(theta, testing::ClassOf(index, 3, 0)));
  EXPECT_FALSE(index.Selects(theta, testing::ClassOf(index, 2, 1)));
}

TEST(ConsistencyTest, Example31InconsistentSample) {
  SignatureIndex index = testing::Example21Index();
  // S0': positives (t1,t2'), (t1,t3'); negative (t3,t1').
  Sample sample = ToClassSample(index, {{0, 1, Label::kPositive},
                                        {0, 2, Label::kPositive},
                                        {2, 0, Label::kNegative}});
  EXPECT_FALSE(IsConsistent(index, sample));
  auto theta = MostSpecificConsistent(index, sample);
  ASSERT_FALSE(theta.ok());
  EXPECT_TRUE(theta.status().IsInconsistentSample());
}

// --- Degenerate samples -------------------------------------------------------

TEST(ConsistencyTest, EmptySampleIsConsistentWithOmega) {
  SignatureIndex index = testing::Example21Index();
  Sample sample;
  EXPECT_TRUE(IsConsistent(index, sample));
  auto theta = MostSpecificConsistent(index, sample);
  ASSERT_TRUE(theta.ok());
  EXPECT_EQ(*theta, index.omega().Full());  // T(∅) = Ω (§3.3).
}

TEST(ConsistencyTest, AllNegativeSampleYieldsOmega) {
  SignatureIndex index = testing::Example21Index();
  Sample sample;
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    sample.push_back({c, Label::kNegative});
  }
  EXPECT_TRUE(IsConsistent(index, sample));
  auto theta = MostSpecificConsistent(index, sample);
  ASSERT_TRUE(theta.ok());
  // Ω selects nothing on this instance, hence consistent (§3.3).
  EXPECT_EQ(*theta, index.omega().Full());
}

TEST(ConsistencyTest, SinglePositiveIsAlwaysConsistent) {
  SignatureIndex index = testing::Example21Index();
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    Sample sample = {{c, Label::kPositive}};
    EXPECT_TRUE(IsConsistent(index, sample));
    auto theta = MostSpecificConsistent(index, sample);
    ASSERT_TRUE(theta.ok());
    EXPECT_EQ(*theta, index.cls(c).signature);  // T(S+) = T(t).
  }
}

TEST(ConsistencyTest, PositiveAndIdenticalNegativeIsInconsistent) {
  SignatureIndex index = testing::Example21Index();
  Sample sample = {{0, Label::kPositive}, {0, Label::kNegative}};
  EXPECT_FALSE(IsConsistent(index, sample));
}

TEST(ConsistencyTest, NegativeBelowPositiveIntersectionIsInconsistent) {
  SignatureIndex index = testing::Example21Index();
  // Positive (t2,t1') = {(A1,B3)}; negative (t3,t1') = {}. T(S+) = {(A1,B3)}
  // does not select {}, so this IS consistent.
  Sample ok_sample = ToClassSample(
      index, {{1, 0, Label::kPositive}, {2, 0, Label::kNegative}});
  EXPECT_TRUE(IsConsistent(index, ok_sample));

  // But positive (t3,t1') = {} forces T(S+) = {}, which selects everything:
  // any negative then breaks consistency.
  Sample bad_sample = ToClassSample(
      index, {{2, 0, Label::kPositive}, {1, 0, Label::kNegative}});
  EXPECT_FALSE(IsConsistent(index, bad_sample));
}

// --- The paper's soundness/completeness argument, as a property --------------

TEST(ConsistencyTest, MostSpecificIsCompleteOnExample21) {
  // For every predicate θ in P(Ω): label D according to θ; the resulting
  // (full) sample must be consistent and T(S+) instance-equivalent to θ.
  SignatureIndex index = testing::Example21Index();
  const size_t omega_size = index.omega().size();
  for (uint64_t mask = 0; mask < (uint64_t{1} << omega_size); ++mask) {
    JoinPredicate goal;
    for (size_t b = 0; b < omega_size; ++b) {
      if ((mask >> b) & 1) goal.Set(b);
    }
    Sample sample;
    for (ClassId c = 0; c < index.num_classes(); ++c) {
      sample.push_back({c, index.Selects(goal, c) ? Label::kPositive
                                                  : Label::kNegative});
    }
    ASSERT_TRUE(IsConsistent(index, sample)) << index.omega().Format(goal);
    auto theta = MostSpecificConsistent(index, sample);
    ASSERT_TRUE(theta.ok());
    EXPECT_TRUE(index.EquivalentOnInstance(*theta, goal))
        << index.omega().Format(goal) << " vs "
        << index.omega().Format(*theta);
  }
}

TEST(ConsistencyTest, ToClassSampleMapsTuplesToTheirClasses) {
  SignatureIndex index = testing::Example21Index();
  Sample sample = ToClassSample(index, {{0, 0, Label::kPositive}});
  ASSERT_EQ(sample.size(), 1u);
  EXPECT_EQ(index.cls(sample[0].cls).signature,
            index.SignatureOfPair(0, 0));
  EXPECT_EQ(sample[0].label, Label::kPositive);
}

}  // namespace
}  // namespace core
}  // namespace jinfer
