// Round-trip property tests for the persistent store: for random
// instances, an index persisted and mmap-loaded back must be bit-identical
// to the freshly built one in every observable — classification, session
// transcripts, fingerprints — at 1 and 4 build threads (the ISSUE 4
// acceptance property). Plus the cross-process pair CI drives: one gtest
// invocation persists, a second (fresh) process reloads.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/oracle.h"
#include "core/strategy.h"
#include "runtime/session.h"
#include "store/fingerprint.h"
#include "store/index_file.h"
#include "store/index_store.h"
#include "testing/paper_fixtures.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace store {
namespace {

namespace fs = std::filesystem;

/// A store rooted in a fresh temporary directory, removed on destruction.
struct ScopedStore {
  ScopedStore() {
    dir = (fs::temp_directory_path() /
           ("jinfer_store_test_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<uintptr_t>(this))))
              .string();
    auto opened = IndexStore::Open(dir);
    JINFER_CHECK(opened.ok(), "open scoped store");
    st = std::make_unique<IndexStore>(std::move(opened).ValueOrDie());
  }
  ~ScopedStore() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  std::string dir;
  std::unique_ptr<IndexStore> st;
};

void ExpectIndexesBitIdentical(const core::SignatureIndex& built,
                               const core::SignatureIndex& mapped) {
  ASSERT_EQ(built.num_classes(), mapped.num_classes());
  EXPECT_EQ(built.num_tuples(), mapped.num_tuples());
  EXPECT_EQ(built.num_r_rows(), mapped.num_r_rows());
  EXPECT_EQ(built.num_p_rows(), mapped.num_p_rows());
  EXPECT_EQ(built.compressed(), mapped.compressed());
  EXPECT_EQ(built.omega().size(), mapped.omega().size());
  for (size_t a = 0; a < built.num_classes(); ++a) {
    const auto& cb = built.cls(static_cast<uint32_t>(a));
    const auto& cm = mapped.cls(static_cast<uint32_t>(a));
    ASSERT_EQ(cb.signature, cm.signature) << "class " << a;
    ASSERT_EQ(cb.count, cm.count) << "class " << a;
    ASSERT_EQ(cb.rep_r, cm.rep_r) << "class " << a;
    ASSERT_EQ(cb.rep_p, cm.rep_p) << "class " << a;
    ASSERT_EQ(cb.maximal, cm.maximal) << "class " << a;
    // The rebuilt signature→class map agrees.
    EXPECT_EQ(mapped.ClassOfSignature(cb.signature),
              built.ClassOfSignature(cb.signature));
  }
  // Per-tuple signatures recomputed from the mapped code sections agree.
  for (size_t i = 0; i < built.num_r_rows(); ++i) {
    for (size_t j = 0; j < built.num_p_rows(); ++j) {
      ASSERT_EQ(built.SignatureOfPair(i, j), mapped.SignatureOfPair(i, j));
    }
  }
}

/// Runs one session over `index` and returns the result (TD is
/// deterministic, so transcripts are comparable field by field).
core::InferenceResult RunSession(
    std::shared_ptr<const core::SignatureIndex> index,
    core::JoinPredicate goal, core::StrategyKind kind) {
  runtime::Session session(std::move(index), core::MakeStrategy(kind));
  core::GoalOracle oracle(goal);
  while (auto question = session.NextQuestion()) {
    JINFER_CHECK(
        session.Answer(oracle.LabelClass(session.index(), *question)).ok(),
        "goal oracle must be consistent");
  }
  return session.Result();
}

void ExpectSameTranscript(const core::InferenceResult& a,
                          const core::InferenceResult& b) {
  EXPECT_EQ(a.predicate, b.predicate);
  EXPECT_EQ(a.num_interactions, b.num_interactions);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].cls, b.trace[i].cls) << "interaction " << i;
    EXPECT_EQ(a.trace[i].label, b.trace[i].label) << "interaction " << i;
    EXPECT_EQ(a.trace[i].informative_before, b.trace[i].informative_before)
        << "interaction " << i;
  }
}

TEST(StoreRoundTripTest, RandomInstancesAreBitIdenticalAfterReload) {
  ScopedStore scoped;
  const std::vector<workload::SyntheticConfig> configs = {
      {2, 2, 12, 4}, {3, 3, 30, 8}, {3, 2, 25, 5}};
  for (int threads : {1, 4}) {
    for (size_t c = 0; c < configs.size(); ++c) {
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        auto inst = workload::GenerateSynthetic(configs[c], 7000 + seed);
        ASSERT_TRUE(inst.ok());
        auto built = core::SignatureIndex::Build(
            inst->r, inst->p, {.compress = true, .threads = threads});
        ASSERT_TRUE(built.ok());
        const InstanceFingerprint fp =
            FingerprintInstance(inst->r, inst->p, true);

        ASSERT_TRUE(scoped.st->Put(*built, fp).ok());
        auto mapped = scoped.st->Load(fp);
        ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

        ExpectIndexesBitIdentical(*built, **mapped);

        // Same questions, same answers, same predicate on both copies, for
        // strategies exercising maximality (TD) and certainty sweeps (BU).
        auto built_shared = std::make_shared<const core::SignatureIndex>(
            std::move(built).ValueOrDie());
        for (auto kind :
             {core::StrategyKind::kTopDown, core::StrategyKind::kBottomUp}) {
          for (size_t goal_bit : {size_t{0}, size_t{1}}) {
            core::JoinPredicate goal =
                core::JoinPredicate::Singleton(goal_bit);
            ExpectSameTranscript(RunSession(built_shared, goal, kind),
                                 RunSession(*mapped, goal, kind));
          }
        }

        // The file is content-addressed by the same fingerprint the
        // in-memory cache uses: a second Put is a no-op, and the header
        // fingerprint survives the trip.
        ASSERT_TRUE(scoped.st->Put(*built_shared, fp).ok());
      }
    }
  }
  const IndexStoreStats stats = scoped.st->stats();
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_GT(stats.writes, 0u);
  // threads=4 re-put the same fingerprints: all skipped, byte-identical.
  EXPECT_GT(stats.skipped_writes, 0u);
}

TEST(StoreRoundTripTest, ParallelAndSerialBuildsPersistIdenticalFiles) {
  ScopedStore scoped;
  auto inst = workload::GenerateSynthetic({3, 3, 40, 8}, 99);
  ASSERT_TRUE(inst.ok());
  auto serial = core::SignatureIndex::Build(inst->r, inst->p,
                                            {.compress = true, .threads = 1});
  auto parallel = core::SignatureIndex::Build(
      inst->r, inst->p, {.compress = true, .threads = 4});
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  const InstanceFingerprint fp = FingerprintInstance(inst->r, inst->p, true);
  EXPECT_EQ(SerializeIndexFile(*serial, fp), SerializeIndexFile(*parallel, fp))
      << "thread count leaked into the persisted bytes";
}

TEST(StoreRoundTripTest, MappedIndexOutlivesTheStore) {
  auto scoped = std::make_unique<ScopedStore>();
  auto built = core::SignatureIndex::Build(testing::Example21R(),
                                           testing::Example21P());
  ASSERT_TRUE(built.ok());
  const InstanceFingerprint fp = FingerprintInstance(
      testing::Example21R(), testing::Example21P(), true);
  ASSERT_TRUE(scoped->st->Put(*built, fp).ok());
  auto mapped = scoped->st->Load(fp);
  ASSERT_TRUE(mapped.ok());

  // Destroying the store object must not unmap handed-out indexes (the
  // mapping is owned by the index); deleting the *files* afterwards is
  // fine too — the pages stay mapped until the last shared_ptr drops.
  scoped.reset();
  EXPECT_EQ((*mapped)->num_classes(), built->num_classes());
  EXPECT_EQ((*mapped)->cls(0).signature, built->cls(0).signature);
}

// --- The cross-process pair the CI store-roundtrip job drives. ---------
//
// Both tests skip unless JINFER_STORE_RT_DIR is set. CI runs this binary
// twice against one directory: first --gtest_filter=*PersistPhase (builds
// and persists), then --gtest_filter=*ReloadPhase in a brand-new process
// (mmap-loads and re-verifies) — proving the file, not shared process
// state, carries the index.

const workload::SyntheticConfig kFreshProcessConfig{3, 3, 40, 8};
constexpr uint64_t kFreshProcessSeed = 20140324;

TEST(FreshProcessRoundTrip, PersistPhase) {
  const char* dir = std::getenv("JINFER_STORE_RT_DIR");
  if (dir == nullptr) GTEST_SKIP() << "JINFER_STORE_RT_DIR not set";
  auto store = IndexStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  auto inst = workload::GenerateSynthetic(kFreshProcessConfig,
                                          kFreshProcessSeed);
  ASSERT_TRUE(inst.ok());
  auto built = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(built.ok());
  const InstanceFingerprint fp = FingerprintInstance(inst->r, inst->p, true);
  ASSERT_TRUE(store->Put(*built, fp).ok());
  ASSERT_TRUE(store->Contains(fp));
}

TEST(FreshProcessRoundTrip, ReloadPhase) {
  const char* dir = std::getenv("JINFER_STORE_RT_DIR");
  if (dir == nullptr) GTEST_SKIP() << "JINFER_STORE_RT_DIR not set";
  auto store = IndexStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // Regenerate the instance (deterministic in (config, seed)) and rebuild
  // the reference index; the stored one must match it bit for bit.
  auto inst = workload::GenerateSynthetic(kFreshProcessConfig,
                                          kFreshProcessSeed);
  ASSERT_TRUE(inst.ok());
  const InstanceFingerprint fp = FingerprintInstance(inst->r, inst->p, true);
  ASSERT_TRUE(store->Contains(fp))
      << "run the PersistPhase test (in another process) first";
  auto mapped = store->Load(fp);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  auto built = core::SignatureIndex::Build(inst->r, inst->p);
  ASSERT_TRUE(built.ok());
  ExpectIndexesBitIdentical(*built, **mapped);
  auto built_shared = std::make_shared<const core::SignatureIndex>(
      std::move(built).ValueOrDie());
  ExpectSameTranscript(
      RunSession(built_shared, core::JoinPredicate::Singleton(0),
                 core::StrategyKind::kTopDown),
      RunSession(*mapped, core::JoinPredicate::Singleton(0),
                 core::StrategyKind::kTopDown));
}

}  // namespace
}  // namespace store
}  // namespace jinfer
