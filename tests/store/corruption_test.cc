// Corruption handling: a damaged, truncated or version-mismatched store
// file must be rejected with a clear error and quarantined — never crash,
// never serve bad data, never wedge the slot (ISSUE 4 satellite; the CI
// sanitize job runs this suite under ASan+UBSan, so every rejection path
// is also exercised for memory safety).

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/index_cache.h"
#include "store/index_file.h"
#include "store/index_store.h"
#include "testing/paper_fixtures.h"
#include "util/checksum.h"

namespace jinfer {
namespace store {
namespace {

namespace fs = std::filesystem;

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("jinfer_corruption_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    auto store = IndexStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    store_ = std::make_unique<IndexStore>(std::move(store).ValueOrDie());

    auto built = core::SignatureIndex::Build(testing::Example21R(),
                                             testing::Example21P());
    ASSERT_TRUE(built.ok());
    fp_ = FingerprintInstance(testing::Example21R(), testing::Example21P(),
                              true);
    good_bytes_ = SerializeIndexFile(*built, fp_);
    ASSERT_TRUE(store_->Put(*built, fp_).ok());
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Overwrites the stored file with `bytes` (bypassing Put's checksum).
  void WriteRaw(const std::vector<uint8_t>& bytes) {
    std::ofstream out(store_->PathFor(fp_), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  size_t QuarantineCount() const {
    std::error_code ec;
    size_t n = 0;
    fs::path qdir = fs::path(dir_) / "quarantine";
    if (fs::exists(qdir, ec)) {
      for ([[maybe_unused]] const auto& entry :
           fs::directory_iterator(qdir, ec)) {
        ++n;
      }
    }
    return n;
  }

  /// The load must fail with a ParseError mentioning quarantine, the file
  /// must be gone from its slot, and the quarantine dir must hold it.
  void ExpectRejectedAndQuarantined(size_t expected_quarantined) {
    auto loaded = store_->Load(fp_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_TRUE(loaded.status().IsParseError()) << loaded.status().ToString();
    EXPECT_NE(loaded.status().message().find("quarantined"),
              std::string::npos)
        << loaded.status().ToString();
    EXPECT_FALSE(store_->Contains(fp_));
    EXPECT_EQ(QuarantineCount(), expected_quarantined);
    EXPECT_EQ(store_->stats().quarantined, expected_quarantined);
  }

  std::string dir_;
  std::unique_ptr<IndexStore> store_;
  InstanceFingerprint fp_;
  std::vector<uint8_t> good_bytes_;
};

TEST_F(CorruptionTest, TruncationAtEveryRegionIsRejected) {
  // Header cut, mid-section cut, missing footer: all must fail cleanly.
  const size_t cuts[] = {0, 1, sizeof(IndexFileHeader) / 2,
                         sizeof(IndexFileHeader), good_bytes_.size() / 2,
                         good_bytes_.size() - sizeof(IndexFileFooter),
                         good_bytes_.size() - 1};
  size_t quarantined = 0;
  for (size_t cut : cuts) {
    std::vector<uint8_t> bytes(good_bytes_.begin(),
                               good_bytes_.begin() + cut);
    WriteRaw(bytes);
    ExpectRejectedAndQuarantined(++quarantined);
    // Re-persisting after quarantine repopulates the slot.
    auto rebuilt = core::SignatureIndex::Build(testing::Example21R(),
                                               testing::Example21P());
    ASSERT_TRUE(rebuilt.ok());
    ASSERT_TRUE(store_->Put(*rebuilt, fp_).ok());
    ASSERT_TRUE(store_->Load(fp_).ok());
  }
}

TEST_F(CorruptionTest, EveryFlippedByteIsCaught) {
  // Flip one byte in each region of the file (header fields, every
  // section, the footer): the checksum (or a field check) must catch it.
  // Exhaustive flipping is cheap at this file size.
  size_t quarantined = 0;
  for (size_t pos = 0; pos < good_bytes_.size();
       pos += 13) {  // Stride keeps the test fast; regions stay covered.
    std::vector<uint8_t> bytes = good_bytes_;
    bytes[pos] ^= 0x40;
    WriteRaw(bytes);
    auto loaded = store_->Load(fp_);
    ASSERT_FALSE(loaded.ok()) << "undetected flip at byte " << pos;
    EXPECT_TRUE(loaded.status().IsParseError());
    EXPECT_EQ(QuarantineCount(), ++quarantined);
  }
}

TEST_F(CorruptionTest, BadMagicIsRejected) {
  std::vector<uint8_t> bytes = good_bytes_;
  std::memset(bytes.data(), 0xab, 4);
  WriteRaw(bytes);
  auto loaded = store_->Load(fp_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
}

TEST_F(CorruptionTest, FutureVersionIsRejectedWithClearError) {
  // A version bump from a newer build: refuse loudly, keep the file for
  // the newer runtime (quarantine still applies — this runtime cannot
  // verify it, so it must not stay in the hot slot masking rebuilds).
  std::vector<uint8_t> bytes = good_bytes_;
  const uint32_t future_version = kIndexFileVersion + 7;
  std::memcpy(bytes.data() + 4, &future_version, sizeof(future_version));
  // Re-seal the checksum so the *version check itself* fires, not the
  // checksum: proves version gating is independent of integrity gating.
  const uint64_t checksum = util::Checksum64Of(
      bytes.data(), bytes.size() - sizeof(IndexFileFooter));
  std::memcpy(bytes.data() + bytes.size() - sizeof(IndexFileFooter),
              &checksum, sizeof(checksum));
  WriteRaw(bytes);
  auto loaded = store_->Load(fp_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(CorruptionTest, ForeignByteOrderIsRejected) {
  std::vector<uint8_t> bytes = good_bytes_;
  const uint32_t swapped = 0x04030201;  // kByteOrderMarker byte-swapped.
  std::memcpy(bytes.data() + 8, &swapped, sizeof(swapped));
  const uint64_t checksum = util::Checksum64Of(
      bytes.data(), bytes.size() - sizeof(IndexFileFooter));
  std::memcpy(bytes.data() + bytes.size() - sizeof(IndexFileFooter),
              &checksum, sizeof(checksum));
  WriteRaw(bytes);
  auto loaded = store_->Load(fp_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("byte-order"), std::string::npos);
}

TEST_F(CorruptionTest, RenamedFileFailsTheFingerprintCheck) {
  // A file copied under another fingerprint's name validates internally
  // but must still be refused: serving it would alias two instances.
  InstanceFingerprint other = fp_;
  other.lo ^= 1;
  std::error_code ec;
  fs::copy_file(store_->PathFor(fp_), store_->PathFor(other), ec);
  ASSERT_FALSE(ec);
  auto loaded = store_->Load(other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("fingerprint"), std::string::npos);
  EXPECT_FALSE(store_->Contains(other));  // Quarantined.
  // The original, correctly-named file is untouched.
  ASSERT_TRUE(store_->Load(fp_).ok());
}

TEST_F(CorruptionTest, GarbageFileIsRejected) {
  std::vector<uint8_t> garbage(4096);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  WriteRaw(garbage);
  ExpectRejectedAndQuarantined(1);
}

TEST_F(CorruptionTest, EmptyFileIsRejected) {
  WriteRaw({});
  auto loaded = store_->Load(fp_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_FALSE(store_->Contains(fp_));
}

TEST_F(CorruptionTest, PutReplacesACorruptLeftoverInsteadOfSkipping) {
  // Content-addressed skip must not trust file *existence*: if a corrupt
  // file is still sitting in the slot (e.g. quarantine could not run),
  // Put has to quarantine it and write fresh bytes, or the slot would
  // stay wedged across every future process.
  std::vector<uint8_t> bytes = good_bytes_;
  bytes[bytes.size() / 3] ^= 0x10;
  WriteRaw(bytes);

  auto rebuilt = core::SignatureIndex::Build(testing::Example21R(),
                                             testing::Example21P());
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_TRUE(store_->Put(*rebuilt, fp_).ok());
  EXPECT_EQ(store_->stats().quarantined, 1u);
  EXPECT_EQ(store_->stats().skipped_writes, 0u);
  ASSERT_TRUE(store_->Load(fp_).ok());  // Healed.
}

TEST_F(CorruptionTest, CacheFallsBackToBuildOverACorruptStore) {
  // End to end through the runtime: a corrupt store file must cost one
  // rebuild (tier "built"), not an error and not a crash; the rebuilt
  // index is persisted back, so the *next* cache starts from "mapped".
  std::vector<uint8_t> bytes = good_bytes_;
  bytes[bytes.size() / 2] ^= 0xff;
  WriteRaw(bytes);

  auto shared_store = std::make_shared<IndexStore>(std::move(*store_));
  store_.reset();
  runtime::IndexCache cache(
      runtime::IndexCacheOptions{{}, runtime::kDefaultIndexCacheCapacity,
                                 shared_store});
  auto tiered = cache.GetOrBuildTiered(testing::Example21R(),
                                       testing::Example21P());
  ASSERT_TRUE(tiered.ok()) << tiered.status().ToString();
  EXPECT_EQ(tiered->tier, runtime::IndexTier::kBuilt);
  EXPECT_EQ(shared_store->stats().quarantined, 1u);

  runtime::IndexCache fresh_cache(
      runtime::IndexCacheOptions{{}, runtime::kDefaultIndexCacheCapacity,
                                 shared_store});
  auto remapped = fresh_cache.GetOrBuildTiered(testing::Example21R(),
                                               testing::Example21P());
  ASSERT_TRUE(remapped.ok());
  EXPECT_EQ(remapped->tier, runtime::IndexTier::kMapped);
}

}  // namespace
}  // namespace store
}  // namespace jinfer
