// Format-level tests of the index file serializer and validator: the pure
// byte-span surface, no file system involved.

#include "store/index_file.h"

#include <gtest/gtest.h>

#include "store/fingerprint.h"
#include "testing/paper_fixtures.h"

namespace jinfer {
namespace store {
namespace {

core::SignatureIndex BuildFixtureIndex() {
  auto index = core::SignatureIndex::Build(testing::Example21R(),
                                           testing::Example21P());
  JINFER_CHECK(index.ok(), "fixture index");
  return std::move(index).ValueOrDie();
}

InstanceFingerprint FixtureFingerprint() {
  return FingerprintInstance(testing::Example21R(), testing::Example21P(),
                             true);
}

TEST(IndexFileTest, SerializationIsDeterministic) {
  const core::SignatureIndex a = BuildFixtureIndex();
  const core::SignatureIndex b = BuildFixtureIndex();
  // Equal content serializes to equal bytes — including the padding inside
  // SignatureClass records — or content-addressing would be unsound.
  EXPECT_EQ(SerializeIndexFile(a, FixtureFingerprint()),
            SerializeIndexFile(b, FixtureFingerprint()));
}

TEST(IndexFileTest, HeaderCarriesTheInstanceMetadata) {
  const core::SignatureIndex index = BuildFixtureIndex();
  const InstanceFingerprint fp = FixtureFingerprint();
  const std::vector<uint8_t> bytes = SerializeIndexFile(index, fp);

  auto view = ValidateIndexFile(bytes);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(view->fingerprint == fp);
  EXPECT_TRUE(view->compressed);
  EXPECT_EQ(view->header->num_classes, index.num_classes());
  EXPECT_EQ(view->header->num_tuples, index.num_tuples());
  EXPECT_EQ(view->header->num_r_rows, index.num_r_rows());
  EXPECT_EQ(view->header->num_p_rows, index.num_p_rows());
  EXPECT_EQ(view->r_relation, "R0");
  EXPECT_EQ(view->r_attrs, testing::Example21R().schema().attribute_names());
  EXPECT_EQ(view->p_attrs, testing::Example21P().schema().attribute_names());
}

TEST(IndexFileTest, SectionsRoundTripBitIdentical) {
  const core::SignatureIndex index = BuildFixtureIndex();
  const std::vector<uint8_t> bytes =
      SerializeIndexFile(index, FixtureFingerprint());

  auto view = ValidateIndexFile(bytes);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  ASSERT_EQ(view->classes.size(), index.num_classes());
  for (size_t a = 0; a < index.num_classes(); ++a) {
    const core::SignatureClass& built = index.cls(static_cast<uint32_t>(a));
    const core::SignatureClass& mapped = view->classes[a];
    EXPECT_EQ(built.signature, mapped.signature);
    EXPECT_EQ(built.count, mapped.count);
    EXPECT_EQ(built.rep_r, mapped.rep_r);
    EXPECT_EQ(built.rep_p, mapped.rep_p);
    EXPECT_EQ(built.maximal, mapped.maximal);
  }
  EXPECT_TRUE(std::equal(view->r_codes.begin(), view->r_codes.end(),
                         index.r_codes().begin(), index.r_codes().end()));
  EXPECT_TRUE(std::equal(view->p_codes.begin(), view->p_codes.end(),
                         index.p_codes().begin(), index.p_codes().end()));
}

TEST(IndexFileTest, SectionOffsetsAreAligned) {
  const std::vector<uint8_t> bytes =
      SerializeIndexFile(BuildFixtureIndex(), FixtureFingerprint());
  auto view = ValidateIndexFile(bytes);
  ASSERT_TRUE(view.ok());
  for (size_t s = 0; s < kNumSections; ++s) {
    EXPECT_EQ(view->header->sections[s].offset % kSectionAlignment, 0u)
        << "section " << s;
  }
}

TEST(IndexFileTest, UncompressedIndexRoundTrips) {
  auto built = core::SignatureIndex::Build(
      testing::Example21R(), testing::Example21P(),
      {.compress = false, .threads = 1});
  ASSERT_TRUE(built.ok());
  const InstanceFingerprint fp = FingerprintInstance(
      testing::Example21R(), testing::Example21P(), false);
  const std::vector<uint8_t> bytes = SerializeIndexFile(*built, fp);
  auto view = ValidateIndexFile(bytes);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE(view->compressed);
  EXPECT_EQ(view->header->num_classes, built->num_tuples());
}

}  // namespace
}  // namespace store
}  // namespace jinfer
