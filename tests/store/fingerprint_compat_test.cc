// The fingerprint compatibility contract (DESIGN.md §9): the columnar
// refactor kept InstanceFingerprint content-equal to the pre-columnar
// cell-by-cell digest, so IndexCache keys and content-addressed .jidx
// files written before the refactor stay valid and the file format stays
// at version 1.
//
// Two lines of defense:
//   * FrozenReference* — a verbatim copy of the seed's row-major hasher,
//     walking materialized Value rows; the production (columnar) digest
//     must match it on every instance shape.
//   * Golden* — literal fingerprints captured from the seed binary before
//     the refactor. These catch the failure mode the frozen copy cannot:
//     both implementations drifting together.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "relational/csv.h"
#include "relational/relation.h"
#include "store/fingerprint.h"
#include "util/bitset.h"
#include "workload/synthetic.h"
#include "workload/tpch.h"

namespace jinfer {
namespace store {
namespace {

/// Frozen copy of the seed's Hasher128 + row-major absorb order. Do not
/// "fix" or share code with the production hasher — its whole value is
/// being an independent implementation of the v1 byte stream.
class FrozenHasher128 {
 public:
  void Absorb(uint64_t x) {
    hi_ = util::Mix64(hi_ + x);
    lo_ = util::Mix64(lo_ ^ (x * 0xc2b2ae3d27d4eb4fULL));
  }

  void AbsorbBytes(const void* data, size_t len) {
    Absorb(len);
    const unsigned char* p = static_cast<const unsigned char*>(data);
    while (len >= 8) {
      uint64_t word;
      std::memcpy(&word, p, 8);
      Absorb(word);
      p += 8;
      len -= 8;
    }
    if (len > 0) {
      uint64_t word = 0;
      std::memcpy(&word, p, len);
      Absorb(word);
    }
  }

  void AbsorbString(const std::string& s) { AbsorbBytes(s.data(), s.size()); }

  void AbsorbValue(const rel::Value& v) {
    if (v.is_null()) {
      Absorb(0x4e);
    } else if (v.is_int()) {
      Absorb(0x49);
      Absorb(static_cast<uint64_t>(v.AsInt()));
    } else if (v.is_double()) {
      Absorb(0x44);
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      Absorb(bits);
    } else {
      Absorb(0x53);
      AbsorbString(v.AsString());
    }
  }

  void AbsorbRelation(const rel::Relation& rel) {
    AbsorbString(rel.schema().relation_name());
    Absorb(rel.num_attributes());
    for (const std::string& attr : rel.schema().attribute_names()) {
      AbsorbString(attr);
    }
    Absorb(rel.num_rows());
    for (const rel::Row& row : rel.rows()) {
      for (const rel::Value& cell : row) AbsorbValue(cell);
    }
  }

  InstanceFingerprint Finish() const { return {hi_, lo_}; }

 private:
  uint64_t hi_ = 0x243f6a8885a308d3ULL;
  uint64_t lo_ = 0x13198a2e03707344ULL;
};

InstanceFingerprint FrozenReferenceFingerprint(const rel::Relation& r,
                                               const rel::Relation& p,
                                               bool compress) {
  FrozenHasher128 h;
  h.AbsorbRelation(r);
  h.AbsorbRelation(p);
  h.Absorb(compress ? 1 : 0);
  return h.Finish();
}

TEST(FingerprintCompatTest, FrozenReferenceMatchesProductionDigest) {
  std::vector<std::pair<rel::Relation, rel::Relation>> instances;
  {
    auto inst = workload::GenerateSynthetic({3, 3, 50, 10}, 2024);
    ASSERT_TRUE(inst.ok());
    instances.emplace_back(std::move(inst->r), std::move(inst->p));
  }
  {
    auto r = rel::ReadRelationCsvText(
        "A1,A2\n1,\"x,y\"\n,3.5\n\"\",\n-7,dup\n-7,dup\n", "R");
    auto p = rel::ReadRelationCsvText("B1\nx\n\"\"\n", "P");
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(p.ok());
    instances.emplace_back(std::move(*r), std::move(*p));
  }
  {
    auto db = workload::GenerateTpch(workload::MiniScaleA(), 3);
    ASSERT_TRUE(db.ok());
    instances.emplace_back(std::move(db->customer), std::move(db->orders));
  }

  for (size_t i = 0; i < instances.size(); ++i) {
    for (bool compress : {true, false}) {
      InstanceFingerprint production =
          FingerprintInstance(instances[i].first, instances[i].second,
                              compress);
      InstanceFingerprint reference = FrozenReferenceFingerprint(
          instances[i].first, instances[i].second, compress);
      EXPECT_EQ(production, reference)
          << "instance " << i << " compress=" << compress;
    }
  }
}

// Literal digests captured from the pre-columnar seed binary (PR 4 tree).
// If one of these changes, pre-refactor store files silently become
// unreachable — that is a format migration, not a refactor, and requires
// an index-file version bump plus a DESIGN.md §9 update.
TEST(FingerprintCompatTest, GoldenSeedFingerprints) {
  {
    auto inst = workload::GenerateSynthetic({3, 3, 1000, 100}, 424242);
    ASSERT_TRUE(inst.ok());
    EXPECT_EQ(FingerprintInstance(inst->r, inst->p, true).ToHex(),
              "c156512856aaaa6269d34d53d9158bda");
    EXPECT_EQ(FingerprintInstance(inst->r, inst->p, false).ToHex(),
              "155a2ca4fda97d0d8899f083c413735b");
  }
  {
    auto inst = workload::GenerateSynthetic({3, 3, 40, 8}, 9000);
    ASSERT_TRUE(inst.ok());
    EXPECT_EQ(FingerprintInstance(inst->r, inst->p, true).ToHex(),
              "1f40b7506b5b4e4dd628094d895b2faf");
  }
  {
    auto r = rel::ReadRelationCsvText(
        "A1,A2,A3\n1,x,3.5\n,\"x,y\",2\n\"\",abc,\n7,\"7\",7.0\n", "R");
    auto p = rel::ReadRelationCsvText("B1,B2\nx,1\n\"abc\",3.5\n,\n2,7\n",
                                      "P");
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(FingerprintInstance(*r, *p, true).ToHex(),
              "5c05cede445ddd292352a61145548d57");
  }
  {
    auto db = workload::GenerateTpch(workload::MiniScaleA(), 7);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ(FingerprintInstance(db->part, db->partsupp, true).ToHex(),
              "3f36d286ff330eb08efd72b6428dfee6");
  }
}

}  // namespace
}  // namespace store
}  // namespace jinfer
