// Differential harness for the packed word-kernel InferenceState: a naive
// model classifier evaluates Lemmas 3.3/3.4 from first principles on every
// query — no incremental sweeps, no packed arrays, no cached keys — and
// random label/undo sequences must keep the production state bit-identical
// to it on every observable, across the single-word, two-word and
// four-word active-prefix regimes.

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/inference_state.h"
#include "core/signature_index.h"
#include "testing/kernel_backends.h"
#include "testing/paper_fixtures.h"
#include "util/rng.h"
#include "util/simd/dispatch.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace core {
namespace {

// The naive model: the sample is the whole state, and every question is
// answered by re-deriving the lemmas over all classes. Undo restores a
// pushed snapshot, so no incremental code is shared with production.
class NaiveModel {
 public:
  explicit NaiveModel(const SignatureIndex& index)
      : index_(&index),
        pos_(index.omega().Full()),
        labeled_(index.num_classes(), false) {}

  void Apply(ClassId cls, Label label) {
    stack_.push_back(Snapshot{pos_, has_positive_, negs_.size(), cls});
    labeled_[cls] = true;
    const JoinPredicate& sig = index_->cls(cls).signature;
    if (label == Label::kPositive) {
      pos_ &= sig;
      has_positive_ = true;
    } else {
      negs_.push_back(sig);
    }
  }

  void Undo() {
    ASSERT_FALSE(stack_.empty());
    const Snapshot& s = stack_.back();
    pos_ = s.pos;
    has_positive_ = s.has_positive;
    negs_.resize(s.num_negs);
    labeled_[s.cls] = false;
    stack_.pop_back();
  }

  TupleState Classify(ClassId cls) const {
    if (labeled_[cls]) return TupleState::kLabeled;
    const JoinPredicate& sig = index_->cls(cls).signature;
    if (pos_.IsSubsetOf(sig)) return TupleState::kCertainPositive;  // 3.3
    JoinPredicate key = pos_ & sig;
    for (const JoinPredicate& neg : negs_) {
      if (key.IsSubsetOf(neg)) return TupleState::kCertainNegative;  // 3.4
    }
    return TupleState::kInformative;
  }

  std::vector<ClassId> Informative() const {
    std::vector<ClassId> out;
    for (ClassId c = 0; c < index_->num_classes(); ++c) {
      if (Classify(c) == TupleState::kInformative) out.push_back(c);
    }
    return out;
  }

  uint64_t Weight() const {
    uint64_t w = 0;
    for (ClassId c : Informative()) w += index_->cls(c).count;
    return w;
  }

  // u_label(cls): weight of classes informative now but not after the
  // label, minus the labeled tuple itself (Figure 5's "excluding t").
  uint64_t CountNewlyUninformative(ClassId cls, Label label) const {
    NaiveModel after = *this;
    after.Apply(cls, label);
    uint64_t newly = 0;
    for (ClassId c = 0; c < index_->num_classes(); ++c) {
      if (Classify(c) == TupleState::kInformative &&
          after.Classify(c) != TupleState::kInformative) {
        newly += index_->cls(c).count;
      }
    }
    return newly - 1;
  }

  const JoinPredicate& pos() const { return pos_; }
  bool has_positive() const { return has_positive_; }

 private:
  struct Snapshot {
    JoinPredicate pos;
    bool has_positive;
    size_t num_negs;
    ClassId cls;
  };

  const SignatureIndex* index_;
  JoinPredicate pos_;
  bool has_positive_ = false;
  std::vector<JoinPredicate> negs_;
  std::vector<bool> labeled_;
  std::vector<Snapshot> stack_;
};

void ExpectMatchesModel(const InferenceState& state, const NaiveModel& model) {
  const SignatureIndex& index = state.index();
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    ASSERT_EQ(state.state(c), model.Classify(c)) << "class " << c;
  }
  ASSERT_EQ(state.InformativeClasses(), model.Informative());
  ASSERT_EQ(state.InformativeTupleWeight(), model.Weight());
  ASSERT_EQ(state.InferredPredicate(), model.pos());
  ASSERT_EQ(state.HasPositiveExample(), model.has_positive());
  // Counting queries, both entry points, every informative class.
  const size_t n = state.NumInformativeClasses();
  std::vector<uint64_t> u_pos, u_neg;
  state.CountNewlyUninformativeAll(u_pos, u_neg);
  ASSERT_EQ(u_pos.size(), n);
  ASSERT_EQ(u_neg.size(), n);
  for (size_t i = 0; i < n; ++i) {
    ClassId c = state.InformativeClassAt(i);
    uint64_t want_pos = model.CountNewlyUninformative(c, Label::kPositive);
    uint64_t want_neg = model.CountNewlyUninformative(c, Label::kNegative);
    ASSERT_EQ(state.CountNewlyUninformative(c, Label::kPositive), want_pos)
        << "u+ class " << c;
    ASSERT_EQ(state.CountNewlyUninformative(c, Label::kNegative), want_neg)
        << "u- class " << c;
    ASSERT_EQ(state.CountNewlyUninformativeBoth(c),
              (std::pair<uint64_t, uint64_t>{want_pos, want_neg}))
        << "both class " << c;
    ASSERT_EQ(u_pos[i], want_pos) << "batch u+ class " << c;
    ASSERT_EQ(u_neg[i], want_neg) << "batch u- class " << c;
  }
}

// Drives production state and model through one random labeled/undone
// session. Interleaves scoped applies (with later undos) and permanent
// applies; after every mutation the full observable surface is compared.
void RunRandomSession(const SignatureIndex& index, uint64_t seed) {
  InferenceState state(index);
  NaiveModel model(index);
  ExpectMatchesModel(state, model);

  util::Rng rng(seed);
  size_t depth = 0;  // open scoped frames
  for (int step = 0; step < 60; ++step) {
    const size_t n = state.NumInformativeClasses();
    const bool can_undo = depth > 0;
    const bool can_apply = n > 0;
    if (!can_apply && !can_undo) break;
    bool undo = can_undo && (!can_apply || rng.NextBelow(3) == 0);
    if (undo) {
      state.UndoLabel();
      model.Undo();
      --depth;
    } else {
      ClassId cls = state.InformativeClassAt(rng.NextBelow(n));
      Label label =
          rng.NextBelow(2) == 0 ? Label::kPositive : Label::kNegative;
      state.ApplyLabelScoped(cls, label);
      model.Apply(cls, label);
      ++depth;
    }
    ASSERT_NO_FATAL_FAILURE(ExpectMatchesModel(state, model))
        << "seed " << seed << " step " << step;
  }
  // Unwind everything: the state must return exactly to its birth state.
  InferenceState fresh(index);
  while (depth > 0) {
    state.UndoLabel();
    model.Undo();
    --depth;
  }
  ASSERT_NO_FATAL_FAILURE(ExpectMatchesModel(state, model));
  ASSERT_EQ(state.InformativeClasses(), fresh.InformativeClasses());
  ASSERT_EQ(state.InferredPredicate(), fresh.InferredPredicate());
}

SignatureIndex BuildSynthetic(size_t nr, size_t np, size_t rows, int64_t vals,
                              uint64_t seed) {
  auto inst = workload::GenerateSynthetic(
      workload::SyntheticConfig{nr, np, rows, vals}, seed);
  JINFER_CHECK(inst.ok(), "generate failed");
  auto index = SignatureIndex::Build(inst->r, inst->p);
  JINFER_CHECK(index.ok(), "build failed");
  return std::move(*index);
}

TEST(StateDifferentialTest, PaperExampleSessions) {
  SignatureIndex index = testing::Example21Index();
  ASSERT_EQ(index.omega().size(), 6u);  // single-word regime
  for (uint64_t seed = 100; seed < 106; ++seed) {
    ASSERT_NO_FATAL_FAILURE(RunRandomSession(index, seed));
  }
}

TEST(StateDifferentialTest, SingleWordSessions) {
  // |Omega| = 3*3 = 9 -> active words = 1.
  SignatureIndex index = BuildSynthetic(3, 3, 24, 3, 7);
  for (uint64_t seed = 200; seed < 204; ++seed) {
    ASSERT_NO_FATAL_FAILURE(RunRandomSession(index, seed));
  }
}

TEST(StateDifferentialTest, TwoWordSessions) {
  // |Omega| = 9*8 = 72 -> active words = 2.
  SignatureIndex index = BuildSynthetic(9, 8, 16, 3, 11);
  for (uint64_t seed = 300; seed < 304; ++seed) {
    ASSERT_NO_FATAL_FAILURE(RunRandomSession(index, seed));
  }
}

TEST(StateDifferentialTest, FourWordSessions) {
  // |Omega| = 14*14 = 196 -> active words = 4 (capacity regime).
  SignatureIndex index = BuildSynthetic(14, 14, 12, 3, 13);
  for (uint64_t seed = 400; seed < 404; ++seed) {
    ASSERT_NO_FATAL_FAILURE(RunRandomSession(index, seed));
  }
}

TEST(StateDifferentialTest, UncompressedSessions) {
  // compress=false: singleton classes, weight == class count everywhere.
  auto inst = workload::GenerateSynthetic(
      workload::SyntheticConfig{4, 3, 10, 3}, 19);
  ASSERT_TRUE(inst.ok());
  SignatureIndexOptions options;
  options.compress = false;
  auto index = SignatureIndex::Build(inst->r, inst->p, options);
  ASSERT_TRUE(index.ok());
  for (uint64_t seed = 500; seed < 503; ++seed) {
    ASSERT_NO_FATAL_FAILURE(RunRandomSession(*index, seed));
  }
}

// The whole differential surface, replayed under every supported SIMD
// kernel backend with identical seeds (the tentpole bit-identity claim,
// exercised through real sessions rather than raw kernels). The scalar
// pass is covered by the suites above; this loop adds the vector
// backends where the hardware has them, and shrinks to a no-op where it
// does not — the forced-scalar CI job stays green anywhere.
TEST(StateDifferentialTest, SessionsIdenticalUnderEveryBackend) {
  SignatureIndex two = BuildSynthetic(9, 8, 16, 3, 11);
  SignatureIndex four = BuildSynthetic(14, 14, 12, 3, 13);
  for (util::simd::KernelBackend backend :
       util::simd::SupportedKernelBackends()) {
    testing::ScopedKernelBackend forced(backend);
    ASSERT_NO_FATAL_FAILURE(RunRandomSession(two, 300))
        << util::simd::KernelBackendName(backend);
    ASSERT_NO_FATAL_FAILURE(RunRandomSession(four, 400))
        << util::simd::KernelBackendName(backend);
  }
}

// Scoped apply/undo must restore a state indistinguishable from a copy
// taken before the apply — compared against the model after both.
TEST(StateDifferentialTest, UndoMatchesSnapshotCopy) {
  SignatureIndex index = BuildSynthetic(9, 8, 16, 3, 11);
  InferenceState state(index);
  NaiveModel model(index);
  util::Rng rng(42);
  for (int round = 0; round < 10; ++round) {
    const size_t n = state.NumInformativeClasses();
    if (n == 0) break;
    InferenceState snapshot = state;  // value-semantics reference
    ClassId cls = state.InformativeClassAt(rng.NextBelow(n));
    Label label = rng.NextBelow(2) == 0 ? Label::kPositive : Label::kNegative;
    state.ApplyLabelScoped(cls, label);
    state.UndoLabel();
    ASSERT_EQ(state.InformativeClasses(), snapshot.InformativeClasses());
    ASSERT_EQ(state.InferredPredicate(), snapshot.InferredPredicate());
    ASSERT_EQ(state.InformativeTupleWeight(),
              snapshot.InformativeTupleWeight());
    ASSERT_NO_FATAL_FAILURE(ExpectMatchesModel(state, model));
    // Advance the session permanently and keep going.
    ASSERT_TRUE(state.ApplyLabel(cls, label).ok());
    model.Apply(cls, label);
    ASSERT_NO_FATAL_FAILURE(ExpectMatchesModel(state, model));
  }
}

}  // namespace
}  // namespace core
}  // namespace jinfer
