// Property harness for the batched u+/u- entropy sweeps: the fused
// column-wise paths (CountNewlyUninformativeAll, EntropyOfAll, the
// remaining==2 batch leaf inside EntropyKOf) must be bit-identical to the
// retained per-candidate reference recursion (entropy_reference.h) — same
// entropies, same argmax picks, same values — across word regimes, with
// and without class compression, for indexes built at 1 and 4 threads,
// and under concurrent sweeps on per-thread states.

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/entropy.h"
#include "core/entropy_reference.h"
#include "core/inference_state.h"
#include "core/signature_index.h"
#include "testing/paper_fixtures.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace core {
namespace {

SignatureIndex BuildSynthetic(const workload::SyntheticConfig& config,
                              uint64_t seed,
                              const SignatureIndexOptions& options = {}) {
  auto inst = workload::GenerateSynthetic(config, seed);
  JINFER_CHECK(inst.ok(), "generate failed");
  auto index = SignatureIndex::Build(inst->r, inst->p, options);
  JINFER_CHECK(index.ok(), "build failed");
  return std::move(*index);
}

// The L1S/L2S selection rule, applied to a precomputed entropy column:
// the index of the first candidate whose entropy equals the skyline
// max-min pick. Run on batch and reference columns it must select the
// same candidate — the "same question asked" property.
size_t PickOf(const std::vector<Entropy>& entropies) {
  Entropy target = SkylineMaxMin(entropies);
  for (size_t i = 0; i < entropies.size(); ++i) {
    if (entropies[i] == target) return i;
  }
  ADD_FAILURE() << "skyline pick not in column";
  return 0;
}

// Asserts every batched quantity against its per-candidate reference on
// the current state: u-counts and one-step entropies for every class,
// entropy^2 over a bounded candidate prefix (the reference is O(n^2) per
// class), and — when `deep` — entropy^3 over the first few classes (the
// reference recursion is O(n^3) per class, so a full-column k=3 compare
// is intractable on the multi-hundred-class instances).
void ExpectSweepMatchesReference(const InferenceState& state, bool deep) {
  const size_t n = state.NumInformativeClasses();
  if (n == 0) return;

  std::vector<uint64_t> u_pos, u_neg;
  state.CountNewlyUninformativeAll(u_pos, u_neg);
  for (size_t i = 0; i < n; ++i) {
    ClassId c = state.InformativeClassAt(i);
    auto [want_pos, want_neg] = state.CountNewlyUninformativeBoth(c);
    ASSERT_EQ(u_pos[i], want_pos) << "class " << c;
    ASSERT_EQ(u_neg[i], want_neg) << "class " << c;
  }

  EntropyBatchScratch scratch;
  std::vector<Entropy> batch;
  EntropyOfAll(state, scratch, batch);
  ASSERT_EQ(batch.size(), n);
  std::vector<Entropy> reference(n);
  for (size_t i = 0; i < n; ++i) {
    reference[i] = EntropyOf(state, state.InformativeClassAt(i));
    ASSERT_EQ(batch[i], reference[i])
        << "class " << state.InformativeClassAt(i);
  }
  ASSERT_EQ(PickOf(batch), PickOf(reference));

  InferenceState scratch_state = state;
  const size_t k2_classes = n < 32 ? n : 32;
  for (size_t i = 0; i < k2_classes; ++i) {
    ClassId c = state.InformativeClassAt(i);
    Entropy want = EntropyKOfReference(state, c, 2);
    ASSERT_EQ(EntropyKOf(state, c, 2), want) << "k=2 class " << c;
    ASSERT_EQ(EntropyKOfInPlace(scratch_state, c, 2, scratch), want)
        << "in-place k=2 class " << c;
  }
  if (deep) {
    const size_t k3_classes = n < 3 ? n : 3;
    for (size_t i = 0; i < k3_classes; ++i) {
      ClassId c = state.InformativeClassAt(i);
      Entropy want = EntropyKOfReference(state, c, 3);
      ASSERT_EQ(EntropyKOf(state, c, 3), want) << "k=3 class " << c;
      ASSERT_EQ(EntropyKOfInPlace(scratch_state, c, 3, scratch), want)
          << "in-place k=3 class " << c;
    }
  }
  // The in-place sweeps must have restored the scratch state exactly.
  ASSERT_EQ(scratch_state.InformativeClasses(), state.InformativeClasses());
  ASSERT_EQ(scratch_state.InferredPredicate(), state.InferredPredicate());
}

// Checks the sweep property at the empty sample and along a few random
// session prefixes, so mid-session states (shrunken predicate, live
// negative witnesses) are covered too. The expensive k=3 reference
// compare runs at the endpoints only; the per-step checks cover the
// batch sweep and k=2.
void RunSweepProperty(const SignatureIndex& index, uint64_t seed) {
  InferenceState state(index);
  ASSERT_NO_FATAL_FAILURE(ExpectSweepMatchesReference(state, /*deep=*/true));
  util::Rng rng(seed);
  for (int step = 0; step < 6; ++step) {
    const size_t n = state.NumInformativeClasses();
    if (n == 0) break;
    ClassId cls = state.InformativeClassAt(rng.NextBelow(n));
    Label label = rng.NextBelow(2) == 0 ? Label::kPositive : Label::kNegative;
    ASSERT_TRUE(state.ApplyLabel(cls, label).ok());
    ASSERT_NO_FATAL_FAILURE(
        ExpectSweepMatchesReference(state, /*deep=*/step == 5))
        << "seed " << seed << " step " << step;
  }
}

TEST(EntropySweepPropertyTest, PaperExample) {
  SignatureIndex index = testing::Example21Index();
  RunSweepProperty(index, 1);
}

TEST(EntropySweepPropertyTest, SingleWordRegime) {
  SignatureIndex index =
      BuildSynthetic(workload::SyntheticConfig{3, 3, 24, 3}, 7);
  for (uint64_t seed = 10; seed < 13; ++seed) {
    ASSERT_NO_FATAL_FAILURE(RunSweepProperty(index, seed));
  }
}

TEST(EntropySweepPropertyTest, MultiWordRegime) {
  // |Omega| = 72 (two words) and 196 (four words, the fallback-width
  // regime): the generic kernels must match the reference exactly.
  SignatureIndex two = BuildSynthetic(workload::SyntheticConfig{9, 8, 10, 3}, 11);
  SignatureIndex four =
      BuildSynthetic(workload::SyntheticConfig{14, 14, 12, 3}, 13);
  for (uint64_t seed = 20; seed < 22; ++seed) {
    ASSERT_NO_FATAL_FAILURE(RunSweepProperty(two, seed));
    ASSERT_NO_FATAL_FAILURE(RunSweepProperty(four, seed));
  }
}

TEST(EntropySweepPropertyTest, CompressionOnAndOff) {
  workload::SyntheticConfig config{4, 3, 10, 3};
  SignatureIndexOptions uncompressed;
  uncompressed.compress = false;
  SignatureIndex on = BuildSynthetic(config, 19);
  SignatureIndex off = BuildSynthetic(config, 19, uncompressed);
  RunSweepProperty(on, 31);
  RunSweepProperty(off, 31);
}

TEST(EntropySweepPropertyTest, ParallelIndexBuildSameEntropies) {
  // The index is identical for every build thread count, so the batch
  // sweep over a 4-thread build must reproduce the 1-thread entropies.
  workload::SyntheticConfig config{9, 8, 20, 3};
  SignatureIndexOptions four_threads;
  four_threads.threads = 4;
  SignatureIndex serial = BuildSynthetic(config, 23);
  SignatureIndex parallel = BuildSynthetic(config, 23, four_threads);
  InferenceState s1(serial), s4(parallel);
  EntropyBatchScratch b1, b4;
  std::vector<Entropy> e1, e4;
  EntropyOfAll(s1, b1, e1);
  EntropyOfAll(s4, b4, e4);
  ASSERT_EQ(e1, e4);
  ASSERT_NO_FATAL_FAILURE(ExpectSweepMatchesReference(s4, /*deep=*/false));
}

TEST(EntropySweepPropertyTest, ConcurrentSweepsShareNothing) {
  // Four threads, each with its own state copy and scratch, batch-sweep
  // the same instance concurrently; all must reproduce the serial column
  // and the serial entropy^2 values. Runs under the TSan CI job.
  SignatureIndex index =
      BuildSynthetic(workload::SyntheticConfig{9, 8, 20, 3}, 29);
  InferenceState serial(index);
  EntropyBatchScratch serial_scratch;
  std::vector<Entropy> want;
  EntropyOfAll(serial, serial_scratch, want);
  const size_t n = serial.NumInformativeClasses() < 64
                       ? serial.NumInformativeClasses()
                       : 64;
  std::vector<Entropy> want_e2(n);
  for (size_t i = 0; i < n; ++i) {
    want_e2[i] = EntropyKOf(serial, serial.InformativeClassAt(i), 2);
  }

  std::vector<std::vector<Entropy>> got(4);
  std::vector<std::vector<Entropy>> got_e2(4, std::vector<Entropy>(n));
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      InferenceState mine(index);
      EntropyBatchScratch scratch;
      EntropyOfAll(mine, scratch, got[t]);
      for (size_t i = 0; i < n; ++i) {
        got_e2[t][i] =
            EntropyKOfInPlace(mine, mine.InformativeClassAt(i), 2, scratch);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < 4; ++t) {
    ASSERT_EQ(got[t], want) << "thread " << t;
    ASSERT_EQ(got_e2[t], want_e2) << "thread " << t;
  }
}

}  // namespace
}  // namespace core
}  // namespace jinfer
