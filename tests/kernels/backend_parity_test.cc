// Backend parity: every compiled-and-supported SIMD kernel backend must
// be bit-identical to the scalar reference — primitive word kernels at
// every interesting word count (vector-multiple, one-off-each-side, below
// the dispatch threshold), the fused u± sweep across word widths, lane
// tails and witness counts, the tiled sweep against the monolithic block
// for assorted tilings, and the ParallelFor-striped driver at 1 vs 4
// threads. The loops run over SupportedKernelBackends(), so the test
// passes (vacuously shrinking) on hardware without AVX while covering
// everything the bench hardware can attest.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/entropy.h"
#include "core/inference_state.h"
#include "core/signature_index.h"
#include "testing/kernel_backends.h"
#include "util/rng.h"
#include "util/simd/backends.h"
#include "util/simd/sweep.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace util {
namespace simd {
namespace {

std::vector<uint64_t> RandomWords(Rng& rng, size_t n) {
  std::vector<uint64_t> v(n);
  for (auto& w : v) w = rng.Next();
  return v;
}

TEST(KernelBackendTest, ScalarAlwaysSupported) {
  ASSERT_TRUE(KernelBackendSupported(KernelBackend::kScalar));
  ASSERT_FALSE(SupportedKernelBackends().empty());
  ASSERT_EQ(SupportedKernelBackends().front(), KernelBackend::kScalar);
}

TEST(KernelBackendTest, NamesRoundTrip) {
  EXPECT_STREQ(KernelBackendName(KernelBackend::kScalar), "scalar");
  EXPECT_STREQ(KernelBackendName(KernelBackend::kAvx2), "avx2");
  EXPECT_STREQ(KernelBackendName(KernelBackend::kAvx512), "avx512");
}

TEST(KernelBackendTest, SetKernelBackendRejectsUnsupported) {
  // At least one of the vector backends is unsupported somewhere; what we
  // can always assert is that a rejected set leaves the active table
  // unchanged and a supported set takes effect.
  const KernelBackend ambient = ActiveKernelBackend();
  for (KernelBackend b : SupportedKernelBackends()) {
    ASSERT_TRUE(SetKernelBackend(b));
    ASSERT_EQ(ActiveKernelBackend(), b);
    ASSERT_EQ(KernelOpsFor(b).backend, b);
  }
  ASSERT_TRUE(SetKernelBackend(ambient));
}

// Primitive word-kernel parity on random and adversarially biased inputs.
// Word counts straddle the vector strides (4, 8) and the kSimdMinWords
// dispatch threshold on both sides.
TEST(KernelBackendTest, PrimitiveParity) {
  const size_t kWordCounts[] = {1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 31,
                                32, 33};
  Rng rng(0x9a7e);
  for (size_t words : kWordCounts) {
    for (int round = 0; round < 50; ++round) {
      std::vector<uint64_t> a = RandomWords(rng, words);
      std::vector<uint64_t> b = RandomWords(rng, words);
      switch (round % 4) {
        case 0:
          break;  // Independent random words: almost never subset/equal.
        case 1:
          b = a;  // Equal.
          break;
        case 2:
          for (size_t w = 0; w < words; ++w) a[w] &= b[w];  // a ⊆ b.
          break;
        default:
          b = a;
          b[rng.NextBelow(words)] ^= uint64_t{1} << rng.NextBelow(64);
          break;  // Hamming distance exactly 1.
      }
      const KernelOps& ref = KernelOpsFor(KernelBackend::kScalar);
      const bool want_subset = ref.is_subset_words(a.data(), b.data(), words);
      const bool want_equal = ref.equal_words(a.data(), b.data(), words);
      const bool want_inter = ref.intersects_words(a.data(), b.data(), words);
      const size_t want_pop = ref.popcount_words(a.data(), words);
      for (KernelBackend backend : SupportedKernelBackends()) {
        const KernelOps& ops = KernelOpsFor(backend);
        ASSERT_EQ(ops.is_subset_words(a.data(), b.data(), words), want_subset)
            << KernelBackendName(backend) << " words=" << words;
        ASSERT_EQ(ops.equal_words(a.data(), b.data(), words), want_equal)
            << KernelBackendName(backend) << " words=" << words;
        ASSERT_EQ(ops.intersects_words(a.data(), b.data(), words), want_inter)
            << KernelBackendName(backend) << " words=" << words;
        ASSERT_EQ(ops.popcount_words(a.data(), words), want_pop)
            << KernelBackendName(backend) << " words=" << words;
      }
    }
  }
}

/// A synthetic packed sweep instance shaped like InferenceState's arrays:
/// keys ⊆ sigs per class (the invariant the real arrays hold), counts in
/// [1, 4], witnesses random.
struct SweepFixture {
  std::vector<uint64_t> keys, sigs, cnts, negs;
  SweepArgs args;

  SweepFixture(uint64_t seed, size_t n, size_t words, size_t num_negs) {
    Rng rng(seed);
    sigs = RandomWords(rng, n * words);
    keys.resize(n * words);
    for (size_t i = 0; i < n * words; ++i) keys[i] = rng.Next() & sigs[i];
    cnts.resize(n);
    for (auto& c : cnts) c = 1 + rng.NextBelow(4);
    negs = RandomWords(rng, num_negs * words);
    args.keys = keys.data();
    args.sigs = sigs.data();
    args.cnts = cnts.data();
    args.negs = negs.data();
    args.num_negs = num_negs;
    args.words = words;
    args.n = n;
  }
};

// The full driver (zero-fill + tiling + −1 correction) must produce the
// same columns on every backend. Candidate counts straddle the lane
// widths (4, 8) and the word-boundary universes the fuzzer uses.
TEST(KernelBackendTest, SweepParityAcrossBackends) {
  const size_t kCandidates[] = {1, 2, 5, 63, 64, 65, 255, 256, 257};
  const size_t kNegCounts[] = {0, 1, 3};
  for (size_t words = 1; words <= 4; ++words) {
    for (size_t n : kCandidates) {
      for (size_t num_negs : kNegCounts) {
        SweepFixture fx(0xbeef00 + words * 131 + n * 7 + num_negs, n, words,
                        num_negs);
        std::vector<uint64_t> want_pos(n), want_neg(n);
        {
          testing::ScopedKernelBackend forced(KernelBackend::kScalar);
          SweepUCounts(fx.args, want_pos.data(), want_neg.data());
        }
        for (KernelBackend backend : SupportedKernelBackends()) {
          testing::ScopedKernelBackend forced(backend);
          std::vector<uint64_t> got_pos(n, 0xdead), got_neg(n, 0xdead);
          SweepUCounts(fx.args, got_pos.data(), got_neg.data());
          ASSERT_EQ(got_pos, want_pos)
              << KernelBackendName(backend) << " W=" << words << " n=" << n
              << " negs=" << num_negs;
          ASSERT_EQ(got_neg, want_neg)
              << KernelBackendName(backend) << " W=" << words << " n=" << n
              << " negs=" << num_negs;
        }
      }
    }
  }
}

// Any tiling must reproduce the monolithic block bit for bit, on every
// backend — including degenerate one-candidate/one-class tiles and tiles
// that do not divide n.
TEST(KernelBackendTest, TiledSweepMatchesMonolithic) {
  const size_t n = 300;
  const size_t words = 2;
  SweepFixture fx(0x7171, n, words, 2);
  for (KernelBackend backend : SupportedKernelBackends()) {
    const KernelOps& ops = KernelOpsFor(backend);
    std::vector<uint64_t> want_pos(n, 0), want_neg(n, 0);
    internal::SweepRangeTiled(ops, fx.args, 0, n, SweepTiling{n, n},
                              want_pos.data(), want_neg.data());
    const SweepTiling tilings[] = {{1, 1},   {1, 7},    {7, 1},  {16, 16},
                                   {37, 53}, {128, 64}, {299, 2}, {512, 512}};
    for (const SweepTiling& t : tilings) {
      std::vector<uint64_t> got_pos(n, 0), got_neg(n, 0);
      internal::SweepRangeTiled(ops, fx.args, 0, n, t, got_pos.data(),
                                got_neg.data());
      ASSERT_EQ(got_pos, want_pos) << KernelBackendName(backend) << " i_tile="
                                   << t.i_tile << " j_tile=" << t.j_tile;
      ASSERT_EQ(got_neg, want_neg) << KernelBackendName(backend) << " i_tile="
                                   << t.i_tile << " j_tile=" << t.j_tile;
    }
  }
}

// The striped driver is thread-count invariant: 1 and 4 sweep threads
// must agree exactly, above the parallel threshold, on every backend.
TEST(KernelBackendTest, SweepThreadCountInvariant) {
  const size_t n = kSweepParallelMinCandidates + 137;  // Engage striping.
  SweepFixture fx(0x5ca1ab1e, n, 2, 3);
  const int ambient = SweepThreads();
  for (KernelBackend backend : SupportedKernelBackends()) {
    testing::ScopedKernelBackend forced(backend);
    std::vector<uint64_t> p1(n), n1(n), p4(n), n4(n);
    SetSweepThreads(1);
    SweepUCounts(fx.args, p1.data(), n1.data());
    SetSweepThreads(4);
    SweepUCounts(fx.args, p4.data(), n4.data());
    ASSERT_EQ(p1, p4) << KernelBackendName(backend);
    ASSERT_EQ(n1, n4) << KernelBackendName(backend);
  }
  SetSweepThreads(ambient);
}

// End-to-end: the entropy columns and the skyline argmin pick — the
// quantities that decide which question a session asks — are identical on
// every backend, on a real index, at the empty sample and mid-session.
TEST(KernelBackendTest, EntropyColumnsAndPicksMatchAcrossBackends) {
  auto inst = workload::GenerateSynthetic({9, 8, 30, 3}, 101);
  ASSERT_TRUE(inst.ok());
  auto index = core::SignatureIndex::Build(inst->r, inst->p, {});
  ASSERT_TRUE(index.ok());
  core::InferenceState state(*index);
  for (int step = 0;; ++step) {
    std::vector<core::Entropy> want;
    {
      testing::ScopedKernelBackend forced(KernelBackend::kScalar);
      core::EntropyBatchScratch scratch;
      core::EntropyOfAll(state, scratch, want);
    }
    for (KernelBackend backend : SupportedKernelBackends()) {
      testing::ScopedKernelBackend forced(backend);
      core::EntropyBatchScratch scratch;
      std::vector<core::Entropy> got;
      core::EntropyOfAll(state, scratch, got);
      ASSERT_EQ(got, want) << KernelBackendName(backend) << " step " << step;
    }
    if (step == 3 || state.NumInformativeClasses() == 0) break;
    // Walk a deterministic session prefix: label the first informative
    // class, alternating signs.
    core::ClassId cls = state.InformativeClassAt(0);
    core::Label label =
        step % 2 == 0 ? core::Label::kPositive : core::Label::kNegative;
    ASSERT_TRUE(state.ApplyLabel(cls, label).ok());
  }
}

}  // namespace
}  // namespace simd
}  // namespace util
}  // namespace jinfer
