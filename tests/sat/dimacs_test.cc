#include "sat/dimacs.h"

#include <gtest/gtest.h>

#include "sat/dpll.h"
#include "sat/random_cnf.h"
#include "util/rng.h"

namespace jinfer {
namespace sat {
namespace {

TEST(DimacsParseTest, Basic) {
  auto cnf = ParseDimacs("p cnf 3 2\n1 -2 0\n2 3 0\n");
  ASSERT_TRUE(cnf.ok());
  EXPECT_EQ(cnf->num_vars(), 3);
  ASSERT_EQ(cnf->num_clauses(), 2u);
  EXPECT_EQ(cnf->clauses()[0], (Clause{1, -2}));
  EXPECT_EQ(cnf->clauses()[1], (Clause{2, 3}));
}

TEST(DimacsParseTest, CommentsIgnored) {
  auto cnf = ParseDimacs("c hello\nc world\np cnf 1 1\nc mid\n1 0\n");
  ASSERT_TRUE(cnf.ok());
  EXPECT_EQ(cnf->num_clauses(), 1u);
}

TEST(DimacsParseTest, ClausesMaySpanLines) {
  auto cnf = ParseDimacs("p cnf 3 1\n1\n-2\n3 0\n");
  ASSERT_TRUE(cnf.ok());
  EXPECT_EQ(cnf->clauses()[0], (Clause{1, -2, 3}));
}

TEST(DimacsParseTest, MissingHeaderRejected) {
  EXPECT_TRUE(ParseDimacs("1 0\n").status().IsParseError());
}

TEST(DimacsParseTest, MalformedHeaderRejected) {
  EXPECT_TRUE(ParseDimacs("p cnf x y\n").status().IsParseError());
  EXPECT_TRUE(ParseDimacs("p dnf 1 1\n1 0\n").status().IsParseError());
}

TEST(DimacsParseTest, LiteralBeyondDeclaredVarsRejected) {
  EXPECT_TRUE(ParseDimacs("p cnf 1 1\n2 0\n").status().IsParseError());
}

TEST(DimacsParseTest, UnterminatedClauseRejected) {
  EXPECT_TRUE(ParseDimacs("p cnf 2 1\n1 2\n").status().IsParseError());
}

TEST(DimacsParseTest, ClauseCountMismatchRejected) {
  EXPECT_TRUE(ParseDimacs("p cnf 2 2\n1 0\n").status().IsParseError());
}

TEST(DimacsParseTest, BadTokenRejected) {
  EXPECT_TRUE(ParseDimacs("p cnf 2 1\nxyz 0\n").status().IsParseError());
}

TEST(DimacsRoundTripTest, RandomFormulasSurvive) {
  util::Rng rng(31);
  for (int i = 0; i < 5; ++i) {
    Cnf original = Random3Cnf(9, 25, rng);
    auto reparsed = ParseDimacs(ToDimacs(original));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed->num_vars(), original.num_vars());
    EXPECT_EQ(reparsed->clauses(), original.clauses());
    EXPECT_EQ(DpllSolver().Solve(*reparsed).satisfiable,
              DpllSolver().Solve(original).satisfiable);
  }
}

}  // namespace
}  // namespace sat
}  // namespace jinfer
