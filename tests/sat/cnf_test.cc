#include "sat/cnf.h"

#include <gtest/gtest.h>

namespace jinfer {
namespace sat {
namespace {

TEST(CnfTest, EmptyFormulaIsSatisfiedByAnything) {
  Cnf cnf(2);
  EXPECT_TRUE(cnf.IsSatisfiedBy({false, false, false}));
}

TEST(CnfTest, NewVarAllocatesSequentially) {
  Cnf cnf;
  EXPECT_EQ(cnf.NewVar(), 1);
  EXPECT_EQ(cnf.NewVar(), 2);
  EXPECT_EQ(cnf.num_vars(), 2);
}

TEST(CnfTest, AddClauseAndEvaluate) {
  Cnf cnf(2);
  cnf.AddBinary(1, -2);  // x1 ∨ ¬x2
  EXPECT_TRUE(cnf.IsSatisfiedBy({false, true, false}));
  EXPECT_TRUE(cnf.IsSatisfiedBy({false, true, true}));
  EXPECT_TRUE(cnf.IsSatisfiedBy({false, false, false}));
  EXPECT_FALSE(cnf.IsSatisfiedBy({false, false, true}));
}

TEST(CnfTest, EmptyClauseIsUnsatisfiable) {
  Cnf cnf(1);
  cnf.AddClause({});
  EXPECT_FALSE(cnf.IsSatisfiedBy({false, true}));
  EXPECT_FALSE(cnf.IsSatisfiedBy({false, false}));
}

TEST(CnfTest, UnitHelpers) {
  Cnf cnf(3);
  cnf.AddUnit(2);
  cnf.AddTernary(-1, 2, 3);
  EXPECT_EQ(cnf.num_clauses(), 2u);
  EXPECT_EQ(cnf.clauses()[0], (Clause{2}));
  EXPECT_EQ(cnf.clauses()[1], (Clause{-1, 2, 3}));
}

TEST(CnfTest, ToStringIsDimacs) {
  Cnf cnf(2);
  cnf.AddBinary(1, -2);
  EXPECT_EQ(cnf.ToString(), "p cnf 2 1\n1 -2 0\n");
}

TEST(LiteralTest, VarOfAndPolarity) {
  EXPECT_EQ(VarOf(5), 5);
  EXPECT_EQ(VarOf(-5), 5);
  EXPECT_TRUE(IsPositive(3));
  EXPECT_FALSE(IsPositive(-3));
}

TEST(CnfDeathTest, LiteralBeyondNumVarsAborts) {
  Cnf cnf(1);
  EXPECT_DEATH(cnf.AddUnit(2), "beyond num_vars");
}

TEST(CnfDeathTest, LiteralZeroAborts) {
  Cnf cnf(1);
  EXPECT_DEATH(cnf.AddClause({0}), "literal 0");
}

}  // namespace
}  // namespace sat
}  // namespace jinfer
