#include "sat/dpll.h"

#include <gtest/gtest.h>

#include "sat/random_cnf.h"
#include "util/rng.h"

namespace jinfer {
namespace sat {
namespace {

TEST(DpllTest, EmptyFormulaIsSat) {
  Cnf cnf(3);
  SolveResult r = DpllSolver().Solve(cnf);
  EXPECT_TRUE(r.satisfiable);
}

TEST(DpllTest, SingleUnit) {
  Cnf cnf(1);
  cnf.AddUnit(-1);
  SolveResult r = DpllSolver().Solve(cnf);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_FALSE(r.assignment[1]);
}

TEST(DpllTest, ContradictingUnitsAreUnsat) {
  Cnf cnf(1);
  cnf.AddUnit(1);
  cnf.AddUnit(-1);
  EXPECT_FALSE(DpllSolver().Solve(cnf).satisfiable);
}

TEST(DpllTest, EmptyClauseIsUnsat) {
  Cnf cnf(2);
  cnf.AddClause({});
  EXPECT_FALSE(DpllSolver().Solve(cnf).satisfiable);
}

TEST(DpllTest, ChainOfImplications) {
  // x1, x1→x2, x2→x3, x3→x4: all forced true.
  Cnf cnf(4);
  cnf.AddUnit(1);
  cnf.AddBinary(-1, 2);
  cnf.AddBinary(-2, 3);
  cnf.AddBinary(-3, 4);
  SolveResult r = DpllSolver().Solve(cnf);
  ASSERT_TRUE(r.satisfiable);
  for (int v = 1; v <= 4; ++v) EXPECT_TRUE(r.assignment[static_cast<size_t>(v)]);
  EXPECT_GE(r.stats.propagations, 3u);
}

TEST(DpllTest, ClassicUnsatisfiableTriple) {
  // (x1∨x2) ∧ (x1∨¬x2) ∧ (¬x1∨x2) ∧ (¬x1∨¬x2) is unsat.
  Cnf cnf(2);
  cnf.AddBinary(1, 2);
  cnf.AddBinary(1, -2);
  cnf.AddBinary(-1, 2);
  cnf.AddBinary(-1, -2);
  SolveResult r = DpllSolver().Solve(cnf);
  EXPECT_FALSE(r.satisfiable);
  EXPECT_GE(r.stats.conflicts, 1u);
}

TEST(DpllTest, ModelSatisfiesFormula) {
  util::Rng rng(7);
  Cnf cnf = Random3Cnf(12, 40, rng);
  SolveResult r = DpllSolver().Solve(cnf);
  if (r.satisfiable) {
    EXPECT_TRUE(cnf.IsSatisfiedBy(r.assignment));
  }
}

TEST(DpllTest, PureLiteralsGetEliminated) {
  // x3 appears only positively; formula is satisfiable without branching
  // much.
  Cnf cnf(3);
  cnf.AddBinary(1, 3);
  cnf.AddBinary(-1, 3);
  cnf.AddBinary(2, 3);
  SolveResult r = DpllSolver().Solve(cnf);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_TRUE(r.assignment[3]);
}

TEST(DpllTest, Determinism) {
  util::Rng rng(99);
  Cnf cnf = Random3Cnf(15, 60, rng);
  SolveResult a = DpllSolver().Solve(cnf);
  SolveResult b = DpllSolver().Solve(cnf);
  EXPECT_EQ(a.satisfiable, b.satisfiable);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.stats.decisions, b.stats.decisions);
}

// --- Property: DPLL ≡ truth-table enumeration ---------------------------------

class DpllPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DpllPropertyTest, MatchesEnumerationOnRandom3Cnf) {
  util::Rng rng(GetParam());
  // Around the sat/unsat threshold (ratio 4.27) with 10 vars.
  for (size_t clauses : {20u, 35u, 43u, 55u}) {
    Cnf cnf = Random3Cnf(10, clauses, rng);
    SolveResult r = DpllSolver().Solve(cnf);
    EXPECT_EQ(r.satisfiable, SatisfiableByEnumeration(cnf))
        << "clauses=" << clauses;
    if (r.satisfiable) {
      EXPECT_TRUE(cnf.IsSatisfiedBy(r.assignment));
    }
  }
}

TEST_P(DpllPropertyTest, MatchesEnumerationOnRandom2Cnf) {
  util::Rng rng(GetParam() ^ 0xbeef);
  Cnf cnf = RandomKCnf(8, 24, 2, rng);
  EXPECT_EQ(DpllSolver().Solve(cnf).satisfiable,
            SatisfiableByEnumeration(cnf));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpllPropertyTest,
                         ::testing::Range(uint64_t{200}, uint64_t{212}));

TEST(RandomCnfTest, ShapeIsRespected) {
  util::Rng rng(5);
  Cnf cnf = Random3Cnf(20, 30, rng);
  EXPECT_EQ(cnf.num_vars(), 20);
  ASSERT_EQ(cnf.num_clauses(), 30u);
  for (const Clause& clause : cnf.clauses()) {
    ASSERT_EQ(clause.size(), 3u);
    EXPECT_NE(VarOf(clause[0]), VarOf(clause[1]));
    EXPECT_NE(VarOf(clause[0]), VarOf(clause[2]));
    EXPECT_NE(VarOf(clause[1]), VarOf(clause[2]));
  }
}

TEST(EnumerationDeathTest, RefusesLargeFormulas) {
  Cnf cnf(25);
  EXPECT_DEATH(SatisfiableByEnumeration(cnf), "24");
}

}  // namespace
}  // namespace sat
}  // namespace jinfer
