// Shared reference model for the bitset differential fuzzers: a
// std::vector<bool>-backed set with the same op vocabulary as
// util::SmallBitset and util::BitVector, written in the most naive way
// possible (per-bit loops, no words, no prefixes) so a disagreement always
// indicts the production bitset. Both fuzzers (tests/util) and the kernel
// harness (tests/kernels) drive production type and model through identical
// op sequences and compare every observable after every op.

#ifndef JINFER_TESTS_TESTING_BITSET_MODEL_H_
#define JINFER_TESTS_TESTING_BITSET_MODEL_H_

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

namespace jinfer {
namespace testing {

/// The reference set. Unbounded like BitVector: Set grows, Test beyond the
/// current size reads 0; equality and subset ignore trailing zeros.
class BoolVecModel {
 public:
  BoolVecModel() = default;
  explicit BoolVecModel(size_t nbits) : bits_(nbits, false) {}

  static BoolVecModel AllSet(size_t n) {
    BoolVecModel m(n);
    for (size_t b = 0; b < n; ++b) m.bits_[b] = true;
    return m;
  }

  void Set(size_t bit) {
    if (bit >= bits_.size()) bits_.resize(bit + 1, false);
    bits_[bit] = true;
  }
  void Reset(size_t bit) {
    if (bit < bits_.size()) bits_[bit] = false;
  }
  bool Test(size_t bit) const { return bit < bits_.size() && bits_[bit]; }

  size_t Count() const {
    size_t c = 0;
    for (bool b : bits_) c += b ? 1 : 0;
    return c;
  }
  bool Empty() const { return Count() == 0; }

  size_t Extent() const { return bits_.size(); }

  bool IsSubsetOf(const BoolVecModel& o) const {
    for (size_t b = 0; b < bits_.size(); ++b) {
      if (Test(b) && !o.Test(b)) return false;
    }
    return true;
  }
  bool Intersects(const BoolVecModel& o) const {
    for (size_t b = 0; b < bits_.size(); ++b) {
      if (Test(b) && o.Test(b)) return true;
    }
    return false;
  }
  bool Equals(const BoolVecModel& o) const {
    size_t n = bits_.size() > o.bits_.size() ? bits_.size() : o.bits_.size();
    for (size_t b = 0; b < n; ++b) {
      if (Test(b) != o.Test(b)) return false;
    }
    return true;
  }

  static BoolVecModel And(const BoolVecModel& a, const BoolVecModel& b) {
    return Combine(a, b, [](bool x, bool y) { return x && y; });
  }
  static BoolVecModel Or(const BoolVecModel& a, const BoolVecModel& b) {
    return Combine(a, b, [](bool x, bool y) { return x || y; });
  }
  static BoolVecModel Xor(const BoolVecModel& a, const BoolVecModel& b) {
    return Combine(a, b, [](bool x, bool y) { return x != y; });
  }
  static BoolVecModel Minus(const BoolVecModel& a, const BoolVecModel& b) {
    return Combine(a, b, [](bool x, bool y) { return x && !y; });
  }

  std::vector<size_t> SetBits() const {
    std::vector<size_t> out;
    for (size_t b = 0; b < bits_.size(); ++b) {
      if (bits_[b]) out.push_back(b);
    }
    return out;
  }

 private:
  template <typename Fn>
  static BoolVecModel Combine(const BoolVecModel& a, const BoolVecModel& b,
                              Fn&& fn) {
    size_t n = a.bits_.size() > b.bits_.size() ? a.bits_.size()
                                               : b.bits_.size();
    BoolVecModel out(n);
    for (size_t i = 0; i < n; ++i) out.bits_[i] = fn(a.Test(i), b.Test(i));
    return out;
  }

  std::vector<bool> bits_;
};

/// Asserts every observable of a production bitset (SmallBitset or
/// BitVector) against the model over bit universe [0, universe): per-bit
/// Test, Count, Empty, and both iteration orders. `npos` is the type's
/// "no bit" sentinel (SmallBitset::kMaxBits / BitVector::kNpos).
template <typename B>
void ExpectMatchesModel(const B& mine, const BoolVecModel& ref,
                        size_t universe, size_t npos) {
  ASSERT_EQ(mine.Count(), ref.Count());
  ASSERT_EQ(mine.Empty(), ref.Empty());
  for (size_t b = 0; b < universe; ++b) {
    ASSERT_EQ(mine.Test(b), ref.Test(b)) << "bit " << b;
  }
  std::vector<size_t> via_foreach;
  mine.ForEachSetBit([&](size_t bit) { via_foreach.push_back(bit); });
  std::vector<size_t> via_next;
  for (size_t b = mine.FirstSetBit(); b != npos; b = mine.NextSetBit(b + 1)) {
    via_next.push_back(b);
  }
  ASSERT_EQ(via_foreach, ref.SetBits());
  ASSERT_EQ(via_next, ref.SetBits());
}

}  // namespace testing
}  // namespace jinfer

#endif  // JINFER_TESTS_TESTING_BITSET_MODEL_H_
