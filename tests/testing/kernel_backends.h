// Test helper for iterating and forcing the dispatched SIMD kernel
// backends (util/simd/dispatch.h). Parity tests loop over
// SupportedKernelBackends() — so a run on any hardware covers exactly the
// backends that hardware can attest (scalar-only machines degenerate to a
// one-element loop and stay green) — and restore the ambient backend
// after, keeping a JINFER_KERNEL_BACKEND-forced CI job honest for the
// rest of the binary.

#ifndef JINFER_TESTS_TESTING_KERNEL_BACKENDS_H_
#define JINFER_TESTS_TESTING_KERNEL_BACKENDS_H_

#include "util/check.h"
#include "util/simd/dispatch.h"

namespace jinfer {
namespace testing {

/// Forces a kernel backend for a scope; restores the previously active
/// backend on destruction. The backend must be supported (checked — a
/// silent skip would turn a parity test into a no-op).
class ScopedKernelBackend {
 public:
  explicit ScopedKernelBackend(util::simd::KernelBackend backend)
      : previous_(util::simd::ActiveKernelBackend()) {
    JINFER_CHECK(util::simd::SetKernelBackend(backend),
                 "backend %s unsupported here; iterate "
                 "SupportedKernelBackends() instead of hard-coding",
                 util::simd::KernelBackendName(backend));
  }
  ~ScopedKernelBackend() { util::simd::SetKernelBackend(previous_); }

  ScopedKernelBackend(const ScopedKernelBackend&) = delete;
  ScopedKernelBackend& operator=(const ScopedKernelBackend&) = delete;

 private:
  util::simd::KernelBackend previous_;
};

}  // namespace testing
}  // namespace jinfer

#endif  // JINFER_TESTS_TESTING_KERNEL_BACKENDS_H_
