// Shared fixtures: the instances and samples the paper uses as running
// examples. Expected values in the tests are transcribed from the paper
// (Figures 1-5, Examples 2.1/3.1, §4.4) — with one documented correction,
// see Figure5Entropies below.

#ifndef JINFER_TESTS_TESTING_PAPER_FIXTURES_H_
#define JINFER_TESTS_TESTING_PAPER_FIXTURES_H_

#include <utility>
#include <vector>

#include "core/omega.h"
#include "core/signature_index.h"
#include "core/types.h"
#include "relational/relation.h"
#include "util/check.h"

namespace jinfer {
namespace testing {

/// R0 of Example 2.1: A1,A2 with rows t1=(0,1) t2=(0,2) t3=(2,2) t4=(1,0).
inline rel::Relation Example21R() {
  auto r = rel::Relation::Make("R0", {"A1", "A2"},
                               {{0, 1}, {0, 2}, {2, 2}, {1, 0}});
  JINFER_CHECK(r.ok(), "fixture R0");
  return std::move(r).ValueOrDie();
}

/// P0 of Example 2.1: B1,B2,B3 with rows t1'=(1,1,0) t2'=(0,1,2)
/// t3'=(2,0,0).
inline rel::Relation Example21P() {
  auto p = rel::Relation::Make("P0", {"B1", "B2", "B3"},
                               {{1, 1, 0}, {0, 1, 2}, {2, 0, 0}});
  JINFER_CHECK(p.ok(), "fixture P0");
  return std::move(p).ValueOrDie();
}

/// Attribute-pair lists (0-based indices) of T(t) for all 12 tuples of
/// D0 = R0 × P0, row-major ((t1,t1'), (t1,t2'), ..., (t4,t3')), transcribed
/// from Figure 3. A1=0, A2=1; B1=0, B2=1, B3=2.
inline std::vector<std::vector<std::pair<size_t, size_t>>>
Figure3Signatures() {
  return {
      {{0, 2}, {1, 0}, {1, 1}},  // (t1,t1') {(A1,B3),(A2,B1),(A2,B2)}
      {{0, 0}, {1, 1}},          // (t1,t2') {(A1,B1),(A2,B2)}
      {{0, 1}, {0, 2}},          // (t1,t3') {(A1,B2),(A1,B3)}
      {{0, 2}},                  // (t2,t1') {(A1,B3)}
      {{0, 0}, {1, 2}},          // (t2,t2') {(A1,B1),(A2,B3)}
      {{0, 1}, {0, 2}, {1, 0}},  // (t2,t3') {(A1,B2),(A1,B3),(A2,B1)}
      {},                        // (t3,t1') {}
      {{0, 2}, {1, 2}},          // (t3,t2') {(A1,B3),(A2,B3)}
      {{0, 0}, {1, 0}},          // (t3,t3') {(A1,B1),(A2,B1)}
      {{0, 0}, {0, 1}, {1, 2}},  // (t4,t1') {(A1,B1),(A1,B2),(A2,B3)}
      {{0, 1}, {1, 0}},          // (t4,t2') {(A1,B2),(A2,B1)}
      {{1, 1}, {1, 2}},          // (t4,t3') {(A2,B2),(A2,B3)}
  };
}

/// Expected (u+, u−) for every tuple of D0 under the empty sample, Figure 5
/// order. One correction to the paper: Figure 5 prints u+ = 2 for (t2,t1');
/// by Lemma 3.3 the supersets of {(A1,B3)} among the signatures are
/// (t1,t1'), (t1,t3'), (t2,t3'), (t3,t2'), so u+ = 4 (see DESIGN.md §2).
inline std::vector<std::pair<uint64_t, uint64_t>> Figure5Counts() {
  return {
      {0, 2},   // (t1,t1')
      {0, 1},   // (t1,t2')
      {1, 2},   // (t1,t3')
      {4, 1},   // (t2,t1')  — paper prints u+ = 2; corrected to 4
      {1, 1},   // (t2,t2')
      {0, 4},   // (t2,t3')
      {11, 0},  // (t3,t1')
      {0, 2},   // (t3,t2')
      {0, 1},   // (t3,t3')
      {0, 2},   // (t4,t1')
      {1, 1},   // (t4,t2')
      {0, 1},   // (t4,t3')
  };
}

/// The flight table of Figure 1.
inline rel::Relation FlightTable() {
  auto r = rel::Relation::Make("Flight", {"From", "To", "Airline"},
                               {{"Paris", "Lille", "AF"},
                                {"Lille", "NYC", "AA"},
                                {"NYC", "Paris", "AA"},
                                {"Paris", "NYC", "AF"}});
  JINFER_CHECK(r.ok(), "fixture Flight");
  return std::move(r).ValueOrDie();
}

/// The hotel table of Figure 1.
inline rel::Relation HotelTable() {
  auto p = rel::Relation::Make(
      "Hotel", {"City", "Discount"},
      {{"NYC", "AA"}, {"Paris", "None"}, {"Lille", "AF"}});
  JINFER_CHECK(p.ok(), "fixture Hotel");
  return std::move(p).ValueOrDie();
}

/// Builds the signature index for Example 2.1's instance.
inline core::SignatureIndex Example21Index() {
  auto index = core::SignatureIndex::Build(Example21R(), Example21P());
  JINFER_CHECK(index.ok(), "fixture index");
  return std::move(index).ValueOrDie();
}

/// Predicate helper: builds θ from 0-based attribute-index pairs.
inline core::JoinPredicate Pred(
    const core::Omega& omega,
    const std::vector<std::pair<size_t, size_t>>& pairs) {
  return omega.PredicateFromPairs(pairs);
}

/// ClassId of the tuple (r_row, p_row) in the index.
inline core::ClassId ClassOf(const core::SignatureIndex& index, size_t r_row,
                             size_t p_row) {
  auto cls = index.ClassOfSignature(index.SignatureOfPair(r_row, p_row));
  JINFER_CHECK(cls.has_value(), "missing class for (%zu,%zu)", r_row, p_row);
  return *cls;
}

}  // namespace testing
}  // namespace jinfer

#endif  // JINFER_TESTS_TESTING_PAPER_FIXTURES_H_
