// Joining RDF-ish triple stores (§5.2 motivation): the paper singles out
// the (3,3,l,v) synthetic configurations "as they could represent triples
// of RDF stores" — two subject/predicate/object tables whose join the user
// cannot articulate. This example builds two small triple tables, hides a
// goal ("object of R equals subject of P", i.e. traversing an edge), and
// compares every strategy on the same inference task.
//
// Build & run:  ./build/examples/rdf_triple_discovery

#include <cstdio>

#include "core/inference.h"
#include "core/lattice.h"
#include "core/oracle.h"
#include "core/signature_index.h"
#include "workload/synthetic.h"

using namespace jinfer;

// Build the signature index with one worker per hardware thread; the
// resulting index is bit-identical to a serial build.
constexpr core::SignatureIndexOptions kIndexOptions{.compress = true,
                                                    .threads = 0};

int main() {
  // Two "triple stores" R(S,P,O) and P(S,P,O) — numerically encoded IRIs.
  workload::SyntheticConfig config{3, 3, 60, 40};
  auto inst = workload::GenerateSynthetic(config, /*seed=*/271828);
  if (!inst.ok()) {
    std::fprintf(stderr, "%s\n", inst.status().ToString().c_str());
    return 1;
  }
  auto index = core::SignatureIndex::Build(inst->r, inst->p, kIndexOptions);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }

  // Hidden goal: R.O = P.S — "follow the edge to its target's triples"
  // (attribute 3 of R equals attribute 1 of P; A3 is index 2, B1 index 0).
  core::JoinPredicate goal = index->omega().PredicateFromPairs({{2, 0}});

  std::printf("Triple stores: R and P with %zu triples each, |D| = %llu "
              "(%zu classes, join ratio %.3f)\n",
              config.num_rows,
              static_cast<unsigned long long>(index->num_tuples()),
              index->num_classes(), core::JoinRatio(*index));
  std::printf("Hidden goal: %s  (object-to-subject traversal)\n\n",
              index->omega().Format(goal).c_str());

  std::printf("%-10s %14s %12s %10s\n", "strategy", "interactions",
              "time (ms)", "correct");
  for (core::StrategyKind kind : core::PaperStrategies()) {
    auto strategy = core::MakeStrategy(kind, /*seed=*/7);
    core::GoalOracle oracle{goal};
    auto result = core::RunInference(*index, *strategy, oracle);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", core::StrategyKindName(kind),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %14zu %12.2f %10s\n", core::StrategyKindName(kind),
                result->num_interactions, result->seconds * 1e3,
                index->EquivalentOnInstance(result->predicate, goal)
                    ? "yes"
                    : "NO");
  }

  std::printf("\nEvery strategy converges to an instance-equivalent join; "
              "they differ only in how many triples the user must label.\n");
  return 0;
}
