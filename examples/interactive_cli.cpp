// Interactive CLI: infer a join over two CSV files by answering Yes/No on
// your own terminal — the actual user-in-the-loop scenario of the paper.
//
// Usage:
//   ./build/examples/interactive_cli [--store-dir=DIR] [--deadline-ms=N]
//                                    [--metrics-dump] R.csv P.csv [strategy]
//   ./build/examples/interactive_cli [--store-dir=DIR]   (built-in demo)
//   ./build/examples/interactive_cli --serve=HOST:PORT [--store-dir=DIR]
//   ./build/examples/interactive_cli --connect=HOST:PORT [--metrics-dump]
//                                    [R.csv P.csv [strategy]]
//
// --metrics-dump prints the Prometheus text exposition of the process's
// metric registry after the session (DESIGN.md §13). In --connect mode the
// dump is fetched from the *server* over a kMetrics frame instead — live
// histograms from the serving process, while other sessions keep running.
//
// One binary demos both ends of the wire (DESIGN.md §11): --serve runs the
// fault-tolerant serving front end (SIGTERM or Ctrl-C drains gracefully —
// in-flight sessions finish, then the process exits 0), --connect runs the
// same question loop as local mode but over the binary session protocol,
// uploading the instance as CSV text and answering over the socket. Port 0
// binds an ephemeral port and prints it.
//
// strategy ∈ {BU, TD, L1S, L2S, RND, EG}; default TD. Answer each prompt
// with y/n (or q to stop early and accept the current hypothesis).
//
// Interrupting the session (Ctrl-C) or exceeding --deadline-ms does not
// throw work away: the loop stops at the next question boundary and prints
// the current hypothesis — every answer given so far still counts
// (DESIGN.md §10: cancellation is cooperative, never mid-interaction).
//
// --store-dir=DIR attaches a persistent index store (DESIGN.md §8): the
// first run on an instance builds the signature index and persists it;
// every later run — in any process — mmaps the stored file instead of
// rebuilding. The banner prints which tier served the index
// (memory / mapped / built), so the reuse is observable:
//
//   $ interactive_cli --store-dir=/tmp/jidx R.csv P.csv   # index: built
//   $ interactive_cli --store-dir=/tmp/jidx R.csv P.csv   # index: mapped
//
// The session runs on the runtime layer: the index comes out of a
// runtime::IndexCache (a second CLI on the same CSVs inside one process
// would share the build) and questions are served through the
// runtime::Session step API — the loop below blocks on stdin between
// NextQuestion and Answer exactly the way a server parks a session while
// its user thinks.

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "obs/exposition.h"
#include "relational/csv.h"
#include "relational/relation.h"
#include "runtime/index_cache.h"
#include "runtime/session.h"
#include "server/client.h"
#include "server/server.h"
#include "store/index_store.h"
#include "util/deadline.h"
#include "util/simd/dispatch.h"
#include "util/socket.h"

using namespace jinfer;

// Build the signature index with one worker per hardware thread; the
// resulting index is bit-identical to a serial build.
constexpr core::SignatureIndexOptions kIndexOptions{.compress = true,
                                                    .threads = 0};

namespace {

rel::Relation DemoFlight() {
  auto r = rel::Relation::Make("Flight", {"From", "To", "Airline"},
                               {{"Paris", "Lille", "AF"},
                                {"Lille", "NYC", "AA"},
                                {"NYC", "Paris", "AA"},
                                {"Paris", "NYC", "AF"}});
  return std::move(r).ValueOrDie();
}

rel::Relation DemoHotel() {
  auto p = rel::Relation::Make(
      "Hotel", {"City", "Discount"},
      {{"NYC", "AA"}, {"Paris", "None"}, {"Lille", "AF"}});
  return std::move(p).ValueOrDie();
}

void PrintTuple(const rel::Relation& r, const rel::Relation& p, size_t i,
                size_t j) {
  std::printf("  %s: ", r.schema().relation_name().c_str());
  for (size_t c = 0; c < r.num_attributes(); ++c) {
    std::printf("%s%s=%s", c ? ", " : "",
                r.schema().attribute_names()[c].c_str(),
                r.at(i, c).ToString().c_str());
  }
  std::printf("\n  %s: ", p.schema().relation_name().c_str());
  for (size_t c = 0; c < p.num_attributes(); ++c) {
    std::printf("%s%s=%s", c ? ", " : "",
                p.schema().attribute_names()[c].c_str(),
                p.at(j, c).ToString().c_str());
  }
  std::printf("\n");
}

/// Set by the SIGINT handler; checked at question boundaries. sig_atomic_t
/// is the only type the standard guarantees a handler may write.
volatile std::sig_atomic_t g_interrupted = 0;

void HandleSigint(int) { g_interrupted = 1; }

/// --serve: the signal handler drains the server directly — RequestDrain
/// is an atomic store plus one write() on the wake pipe, both
/// async-signal-safe.
server::Server* g_server = nullptr;

void HandleDrainSignal(int) {
  if (g_server != nullptr) g_server->RequestDrain();
}

int RunServe(const std::string& spec, const std::string& store_dir) {
  auto endpoint = util::ParseEndpoint(spec);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "bad --serve endpoint: %s\n",
                 endpoint.status().ToString().c_str());
    return 1;
  }
  server::ServerOptions options;
  options.host = endpoint->host;
  options.port = endpoint->port;
  options.workers = 2;
  options.runtime.cache_options.build = kIndexOptions;
  if (!store_dir.empty()) {
    auto store = store::IndexStore::Open(store_dir);
    if (!store.ok()) {
      std::fprintf(stderr, "cannot open store: %s\n",
                   store.status().ToString().c_str());
      return 1;
    }
    options.runtime.cache_options.store =
        std::make_shared<store::IndexStore>(std::move(store).ValueOrDie());
  }
  static server::Server server(options);
  g_server = &server;
  util::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot serve: %s\n", started.ToString().c_str());
    return 1;
  }
  struct sigaction sa = {};
  sa.sa_handler = HandleDrainSignal;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  std::printf("serving on %s:%u (SIGTERM or Ctrl-C drains gracefully)\n",
              endpoint->host.c_str(), server.port());
  std::fflush(stdout);
  util::Status st = server.Wait();
  server::StatsOkBody stats = server.Stats();
  std::printf("drained: %llu connection(s) served, %llu session(s) "
              "completed, %llu aborted, %llu frames read\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.sessions_completed),
              static_cast<unsigned long long>(stats.sessions_aborted),
              static_cast<unsigned long long>(stats.frames_read));
  if (!st.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}

int RunConnect(const std::string& spec, const rel::Relation& r,
               const rel::Relation& p, const std::string& strategy_name,
               bool metrics_dump) {
  auto endpoint = util::ParseEndpoint(spec);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "bad --connect endpoint: %s\n",
                 endpoint.status().ToString().c_str());
    return 1;
  }
  auto client = server::Client::Connect(endpoint->host, endpoint->port);
  if (!client.ok()) {
    std::fprintf(stderr, "cannot connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  server::OpenSessionBody open;
  open.strategy = strategy_name;
  open.seed = std::random_device{}();
  open.compress = 1;
  open.r_name = r.schema().relation_name();
  open.p_name = p.schema().relation_name();
  open.r_csv = rel::WriteRelationCsv(r);
  open.p_csv = rel::WriteRelationCsv(p);

  auto opened = client->OpenSession(open);
  if (!opened.ok() && server::RetryLater(opened.status())) {
    std::fprintf(stderr, "server busy (%s); retrying once...\n",
                 opened.status().ToString().c_str());
    opened = client->OpenSession(open);
  }
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu x %zu rows -> %llu candidate tuples (%llu classes), "
              "strategy %s, index: %s (remote session %llu)\n",
              r.num_rows(), p.num_rows(),
              static_cast<unsigned long long>(opened->num_tuples),
              static_cast<unsigned long long>(opened->num_classes),
              strategy_name.c_str(),
              runtime::IndexTierName(
                  static_cast<runtime::IndexTier>(opened->index_tier)),
              static_cast<unsigned long long>(opened->session_id));
  std::printf("Label each proposed pairing: y = belongs to your join, "
              "n = does not, q = stop.\n");

  while (true) {
    auto q = client->NextQuestion();
    if (!q.ok()) {
      std::fprintf(stderr, "question failed: %s\n",
                   q.status().ToString().c_str());
      return 1;
    }
    if (q->finished != 0) {
      std::printf("\nNo informative tuples left — the query is determined "
                  "on this data.\n");
      break;
    }
    std::printf("\nQuestion %llu:\n  %s\n  %s\nIn your join? [y/n/q] ",
                static_cast<unsigned long long>(q->question_index + 1),
                q->r_text.c_str(), q->p_text.c_str());
    std::fflush(stdout);
    std::string answer;
    if (!std::getline(std::cin, answer)) break;
    if (answer == "q" || answer == "Q") break;
    const bool positive =
        answer == "y" || answer == "Y" || answer == "yes";
    auto applied = client->Answer(positive);
    if (!applied.ok()) {
      std::printf("That answer contradicts your earlier ones: %s\n",
                  applied.status().ToString().c_str());
      return 1;
    }
    std::printf("  current hypothesis: %s\n",
                applied->predicate_text.c_str());
  }

  auto closed = client->CloseSession();
  if (!closed.ok()) {
    std::fprintf(stderr, "close failed: %s\n",
                 closed.status().ToString().c_str());
    return 1;
  }
  std::printf("\nInferred join predicate: %s (%llu interaction(s))\n",
              closed->predicate_text.c_str(),
              static_cast<unsigned long long>(closed->num_interactions));
  if (metrics_dump) {
    auto metrics = client->ServerMetrics();
    if (!metrics.ok()) {
      std::fprintf(stderr, "metrics fetch failed: %s\n",
                   metrics.status().ToString().c_str());
      return 1;
    }
    std::printf("\n# server metrics (live, via kMetrics frame)\n%s",
                metrics->text.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  rel::Relation r, p;
  std::string strategy_name = "TD";
  std::string store_dir;
  std::string serve_spec, connect_spec;
  long deadline_ms = 0;
  bool metrics_dump = false;

  // Split --store-dir[=DIR], --serve[=H:P], --connect[=H:P] and
  // --deadline-ms=N off before the positional arguments.
  std::vector<std::string> args;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg.rfind("--store-dir=", 0) == 0) {
      store_dir = arg.substr(std::strlen("--store-dir="));
    } else if (arg == "--store-dir" && a + 1 < argc) {
      store_dir = argv[++a];
    } else if (arg.rfind("--serve=", 0) == 0) {
      serve_spec = arg.substr(std::strlen("--serve="));
    } else if (arg == "--serve" && a + 1 < argc) {
      serve_spec = argv[++a];
    } else if (arg.rfind("--connect=", 0) == 0) {
      connect_spec = arg.substr(std::strlen("--connect="));
    } else if (arg == "--connect" && a + 1 < argc) {
      connect_spec = argv[++a];
    } else if (arg == "--metrics-dump") {
      metrics_dump = true;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      char* end = nullptr;
      deadline_ms = std::strtol(arg.c_str() + std::strlen("--deadline-ms="),
                                &end, 10);
      if (end == nullptr || *end != '\0' || deadline_ms < 0) {
        std::fprintf(stderr, "bad --deadline-ms value in '%s'\n",
                     arg.c_str());
        return 1;
      }
    } else {
      args.push_back(std::move(arg));
    }
  }

  if (!serve_spec.empty()) return RunServe(serve_spec, store_dir);

  // Graceful Ctrl-C: no SA_RESTART, so a blocked getline returns EINTR and
  // the loop exits at the question boundary with the session state intact.
  struct sigaction sa = {};
  sa.sa_handler = HandleSigint;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGINT, &sa, nullptr);

  if (args.size() >= 2) {
    auto rr = rel::ReadRelationCsvFile(args[0], "R");
    auto pp = rel::ReadRelationCsvFile(args[1], "P");
    if (!rr.ok() || !pp.ok()) {
      std::fprintf(stderr, "load failed: %s / %s\n",
                   rr.status().ToString().c_str(),
                   pp.status().ToString().c_str());
      return 1;
    }
    r = std::move(rr).ValueOrDie();
    p = std::move(pp).ValueOrDie();
    if (args.size() >= 3) strategy_name = args[2];
  } else {
    std::printf("No CSVs given; using the paper's Flight/Hotel demo.\n\n");
    r = DemoFlight();
    p = DemoHotel();
    if (args.size() == 1) strategy_name = args[0];
  }

  auto kind = core::StrategyKindFromName(strategy_name);
  if (!kind.ok()) {
    std::fprintf(stderr, "unknown strategy %s (try BU/TD/L1S/L2S/RND/EG)\n",
                 strategy_name.c_str());
    return 1;
  }

  if (!connect_spec.empty()) {
    return RunConnect(connect_spec, r, p, strategy_name, metrics_dump);
  }

  runtime::IndexCacheOptions cache_options;
  cache_options.build = kIndexOptions;
  if (!store_dir.empty()) {
    auto store = store::IndexStore::Open(store_dir);
    if (!store.ok()) {
      std::fprintf(stderr, "cannot open store: %s\n",
                   store.status().ToString().c_str());
      return 1;
    }
    cache_options.store =
        std::make_shared<store::IndexStore>(std::move(store).ValueOrDie());
  }
  runtime::IndexCache cache(cache_options);
  auto tiered = cache.GetOrBuildTiered(r, p);
  if (!tiered.ok()) {
    std::fprintf(stderr, "%s\n", tiered.status().ToString().c_str());
    return 1;
  }
  auto index = tiered->index;
  runtime::Session session(
      index, core::MakeStrategy(*kind, /*seed=*/std::random_device{}()));

  std::printf("%zu x %zu rows -> %llu candidate tuples (%zu classes), "
              "strategy %s, index: %s, kernels: %s\n",
              r.num_rows(), p.num_rows(),
              static_cast<unsigned long long>(index->num_tuples()),
              index->num_classes(), core::StrategyKindName(*kind),
              runtime::IndexTierName(tiered->tier),
              util::simd::KernelBackendName(
                  util::simd::ActiveKernelBackend()));
  std::printf("Label each proposed pairing: y = belongs to your join, "
              "n = does not, q = stop.\n");
  if (deadline_ms > 0) {
    std::printf("Session deadline: %ld ms.\n", deadline_ms);
  }

  const util::Deadline deadline =
      util::Deadline::After(std::chrono::milliseconds(deadline_ms));
  bool cancelled = false;
  while (std::optional<core::ClassId> next = session.NextQuestion()) {
    if (g_interrupted || deadline.expired()) {
      cancelled = true;
      break;
    }
    const core::SignatureClass& cls = session.index().cls(*next);
    std::printf("\nQuestion %zu:\n", session.num_interactions() + 1);
    PrintTuple(r, p, cls.rep_r, cls.rep_p);
    std::printf("In your join? [y/n/q] ");
    std::fflush(stdout);

    std::string answer;
    if (!std::getline(std::cin, answer)) {
      // EOF, or EINTR from Ctrl-C (no SA_RESTART): stop cleanly either way
      // and keep every answer already given.
      if (g_interrupted || errno == EINTR) cancelled = true;
      break;
    }
    if (g_interrupted || deadline.expired()) {
      cancelled = true;
      break;
    }
    if (answer == "q" || answer == "Q") break;
    core::Label label = (answer == "y" || answer == "Y" || answer == "yes")
                            ? core::Label::kPositive
                            : core::Label::kNegative;
    util::Status st = session.Answer(label);
    if (!st.ok()) {
      std::printf("That answer contradicts your earlier ones: %s\n",
                  st.ToString().c_str());
      return 1;
    }
    std::printf("  current hypothesis: %s\n",
                session.index().omega().Format(
                    session.CurrentPredicate()).c_str());
  }
  if (cancelled) {
    std::printf("\n%s after %zu answered question(s); the hypothesis below "
                "reflects every answer so far.\n",
                g_interrupted ? "Interrupted" : "Deadline reached",
                session.num_interactions());
  } else if (session.Finished()) {
    std::printf("\nNo informative tuples left — the query is determined "
                "on this data.\n");
  }

  std::printf("\nInferred join predicate: %s\n",
              session.index().omega().Format(
                  session.CurrentPredicate()).c_str());
  if (metrics_dump) {
    std::printf("\n# process metrics\n%s",
                obs::RenderPrometheusText().c_str());
  }
  return 0;
}
