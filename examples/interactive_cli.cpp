// Interactive CLI: infer a join over two CSV files by answering Yes/No on
// your own terminal — the actual user-in-the-loop scenario of the paper.
//
// Usage:
//   ./build/examples/interactive_cli R.csv P.csv [strategy]
//   ./build/examples/interactive_cli              (built-in demo tables)
//
// strategy ∈ {BU, TD, L1S, L2S, RND, EG}; default TD. Answer each prompt
// with y/n (or q to stop early and accept the current hypothesis).
//
// The session runs on the runtime layer: the index comes out of a
// runtime::IndexCache (a second CLI on the same CSVs inside one process
// would share the build) and questions are served through the
// runtime::Session step API — the loop below blocks on stdin between
// NextQuestion and Answer exactly the way a server parks a session while
// its user thinks.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <random>
#include <string>

#include "relational/csv.h"
#include "relational/relation.h"
#include "runtime/index_cache.h"
#include "runtime/session.h"

using namespace jinfer;

// Build the signature index with one worker per hardware thread; the
// resulting index is bit-identical to a serial build.
constexpr core::SignatureIndexOptions kIndexOptions{.compress = true,
                                                    .threads = 0};

namespace {

rel::Relation DemoFlight() {
  auto r = rel::Relation::Make("Flight", {"From", "To", "Airline"},
                               {{"Paris", "Lille", "AF"},
                                {"Lille", "NYC", "AA"},
                                {"NYC", "Paris", "AA"},
                                {"Paris", "NYC", "AF"}});
  return std::move(r).ValueOrDie();
}

rel::Relation DemoHotel() {
  auto p = rel::Relation::Make(
      "Hotel", {"City", "Discount"},
      {{"NYC", "AA"}, {"Paris", "None"}, {"Lille", "AF"}});
  return std::move(p).ValueOrDie();
}

void PrintTuple(const rel::Relation& r, const rel::Relation& p, size_t i,
                size_t j) {
  std::printf("  %s: ", r.schema().relation_name().c_str());
  for (size_t c = 0; c < r.num_attributes(); ++c) {
    std::printf("%s%s=%s", c ? ", " : "",
                r.schema().attribute_names()[c].c_str(),
                r.at(i, c).ToString().c_str());
  }
  std::printf("\n  %s: ", p.schema().relation_name().c_str());
  for (size_t c = 0; c < p.num_attributes(); ++c) {
    std::printf("%s%s=%s", c ? ", " : "",
                p.schema().attribute_names()[c].c_str(),
                p.at(j, c).ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  rel::Relation r, p;
  std::string strategy_name = "TD";

  if (argc >= 3) {
    auto rr = rel::ReadRelationCsvFile(argv[1], "R");
    auto pp = rel::ReadRelationCsvFile(argv[2], "P");
    if (!rr.ok() || !pp.ok()) {
      std::fprintf(stderr, "load failed: %s / %s\n",
                   rr.status().ToString().c_str(),
                   pp.status().ToString().c_str());
      return 1;
    }
    r = std::move(rr).ValueOrDie();
    p = std::move(pp).ValueOrDie();
    if (argc >= 4) strategy_name = argv[3];
  } else {
    std::printf("No CSVs given; using the paper's Flight/Hotel demo.\n\n");
    r = DemoFlight();
    p = DemoHotel();
    if (argc == 2) strategy_name = argv[1];
  }

  auto kind = core::StrategyKindFromName(strategy_name);
  if (!kind.ok()) {
    std::fprintf(stderr, "unknown strategy %s (try BU/TD/L1S/L2S/RND/EG)\n",
                 strategy_name.c_str());
    return 1;
  }

  runtime::IndexCache cache(kIndexOptions);
  auto index = cache.GetOrBuild(r, p);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  runtime::Session session(
      *index, core::MakeStrategy(*kind, /*seed=*/std::random_device{}()));

  std::printf("%zu x %zu rows -> %llu candidate tuples (%zu classes), "
              "strategy %s\n",
              r.num_rows(), p.num_rows(),
              static_cast<unsigned long long>((*index)->num_tuples()),
              (*index)->num_classes(), core::StrategyKindName(*kind));
  std::printf("Label each proposed pairing: y = belongs to your join, "
              "n = does not, q = stop.\n");

  while (std::optional<core::ClassId> next = session.NextQuestion()) {
    const core::SignatureClass& cls = session.index().cls(*next);
    std::printf("\nQuestion %zu:\n", session.num_interactions() + 1);
    PrintTuple(r, p, cls.rep_r, cls.rep_p);
    std::printf("In your join? [y/n/q] ");
    std::fflush(stdout);

    std::string answer;
    if (!std::getline(std::cin, answer)) break;
    if (answer == "q" || answer == "Q") break;
    core::Label label = (answer == "y" || answer == "Y" || answer == "yes")
                            ? core::Label::kPositive
                            : core::Label::kNegative;
    util::Status st = session.Answer(label);
    if (!st.ok()) {
      std::printf("That answer contradicts your earlier ones: %s\n",
                  st.ToString().c_str());
      return 1;
    }
    std::printf("  current hypothesis: %s\n",
                session.index().omega().Format(
                    session.CurrentPredicate()).c_str());
  }
  if (session.Finished()) {
    std::printf("\nNo informative tuples left — the query is determined "
                "on this data.\n");
  }

  std::printf("\nInferred join predicate: %s\n",
              session.index().omega().Format(
                  session.CurrentPredicate()).c_str());
  return 0;
}
