// Semijoins and the edge of tractability (§6 + appendix A.1).
//
// Three acts:
//   1. check semijoin-consistency of the paper's §6 sample with the SAT-
//      backed CONS⋉ decision procedure;
//   2. run the appendix reduction in both directions on a small 3-CNF
//      formula — satisfiability of φ ⇔ consistency of (Rφ, Pφ, Sφ) — and
//      decode a satisfying valuation from the semijoin witness;
//   3. run the heuristic interactive semijoin inference (§7 future work).
//
// Build & run:  ./build/examples/semijoin_consistency

#include <cstdio>

#include "relational/relation.h"
#include "sat/dpll.h"
#include "semijoin/consistency.h"
#include "semijoin/interactive.h"
#include "semijoin/reduction_3sat.h"

using namespace jinfer;

int main() {
  // --- Act 1: §6's example ------------------------------------------------
  auto r = rel::Relation::Make("R0", {"A1", "A2"},
                               {{0, 1}, {0, 2}, {2, 2}, {1, 0}});
  auto p = rel::Relation::Make("P0", {"B1", "B2", "B3"},
                               {{1, 1, 0}, {0, 1, 2}, {2, 0, 0}});
  auto inst = semi::SemijoinInstance::Build(*r, *p);
  if (!inst.ok()) {
    std::fprintf(stderr, "%s\n", inst.status().ToString().c_str());
    return 1;
  }
  semi::RowSample sample = {{0, core::Label::kPositive},
                            {1, core::Label::kPositive},
                            {2, core::Label::kNegative}};
  semi::ConsistencyResult cons = semi::CheckConsistencySat(*inst, sample);
  std::printf("S'+ = {t1,t2}, S'- = {t3}: %s",
              cons.consistent ? "consistent" : "inconsistent");
  if (cons.consistent) {
    std::printf(", witness %s",
                inst->omega().Format(cons.witness).c_str());
  }
  std::printf("  (DPLL: %llu decisions)\n\n",
              static_cast<unsigned long long>(cons.stats.decisions));

  // --- Act 2: the NP-hardness reduction, both directions ------------------
  sat::Cnf phi(4);
  phi.AddTernary(1, 2, 3);    // (x1 ∨ x2 ∨ x3)
  phi.AddTernary(-1, -3, 4);  // (¬x1 ∨ ¬x3 ∨ x4)
  std::printf("phi = (x1 v x2 v x3) ^ (~x1 v ~x3 v x4)\n");
  std::printf("DPLL says: %s\n",
              sat::DpllSolver().Solve(phi).satisfiable ? "SAT" : "UNSAT");

  auto reduced = semi::ReduceFrom3Sat(phi);
  if (!reduced.ok()) {
    std::fprintf(stderr, "%s\n", reduced.status().ToString().c_str());
    return 1;
  }
  std::printf("Reduction: R_phi has %zu rows x %zu attrs, P_phi %zu rows x "
              "%zu attrs, %zu examples\n",
              reduced->r.num_rows(), reduced->r.num_attributes(),
              reduced->p.num_rows(), reduced->p.num_attributes(),
              reduced->sample.size());

  auto rinst = semi::SemijoinInstance::Build(reduced->r, reduced->p);
  if (!rinst.ok()) {
    std::fprintf(stderr, "%s\n", rinst.status().ToString().c_str());
    return 1;
  }
  semi::ConsistencyResult rcons =
      semi::CheckConsistencySat(*rinst, reduced->sample);
  std::printf("CONS says: (R_phi, P_phi, S_phi) is %s\n",
              rcons.consistent ? "consistent  [phi SAT, as expected]"
                               : "inconsistent [phi UNSAT, as expected]");
  if (rcons.consistent) {
    std::vector<bool> valuation =
        semi::ValuationFromPredicate(phi, rinst->omega(), rcons.witness);
    std::printf("Decoded valuation:");
    for (int v = 1; v <= phi.num_vars(); ++v) {
      std::printf(" x%d=%s", v,
                  valuation[static_cast<size_t>(v)] ? "T" : "F");
    }
    std::printf("  -> phi(%s)\n",
                phi.IsSatisfiedBy(valuation) ? "satisfied" : "NOT satisfied");
  }

  // --- Act 3: heuristic interactive semijoin inference --------------------
  core::JoinPredicate goal;
  goal.Set(inst->omega().BitOf(0, 1));  // θ' = {(A1,B2)} from §6.
  semi::GoalSemijoinOracle oracle(*inst, goal);
  auto run = semi::RunSemijoinInference(*inst, oracle);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("\nInteractive semijoin inference of goal %s:\n",
              inst->omega().Format(goal).c_str());
  std::printf("  %zu row labels, %llu CONS decisions, result %s "
              "(semijoin-equivalent: %s)\n",
              run->num_interactions,
              static_cast<unsigned long long>(run->sat_calls),
              inst->omega().Format(run->predicate).c_str(),
              inst->EquivalentOnInstance(run->predicate, goal) ? "yes"
                                                               : "NO");
  std::printf("\nEquijoin informativeness is PTIME (Thm 3.5); for semijoins "
              "each of those decisions needed a SAT call (Thm 6.1).\n");
  return 0;
}
