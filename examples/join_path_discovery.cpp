// Join-path discovery (§7 extension): infer the Customer—Orders—Lineitem
// foreign-key chain of a TPC-H-style database edge by edge, from Yes/No
// answers only.
//
// Build & run:  ./build/examples/join_path_discovery

#include <cstdio>

#include "core/path_inference.h"
#include "workload/tpch.h"

using namespace jinfer;

// Build the signature index with one worker per hardware thread; the
// resulting index is bit-identical to a serial build.
constexpr core::SignatureIndexOptions kIndexOptions{.compress = true,
                                                    .threads = 0};

int main() {
  auto db = workload::GenerateTpch(workload::MiniScaleA(), /*seed=*/31415);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  std::vector<const rel::Relation*> path = {&db->customer, &db->orders,
                                            &db->lineitem};
  std::printf("Join path: Customer (%zu rows) -- Orders (%zu rows) -- "
              "Lineitem (%zu rows)\n\n",
              db->customer.num_rows(), db->orders.num_rows(),
              db->lineitem.num_rows());

  // The hidden goals are the FK equalities of each edge.
  auto index01 = core::SignatureIndex::Build(db->customer, db->orders, kIndexOptions);
  auto index12 = core::SignatureIndex::Build(db->orders, db->lineitem, kIndexOptions);
  if (!index01.ok() || !index12.ok()) {
    std::fprintf(stderr, "index construction failed\n");
    return 1;
  }
  auto goal01 =
      index01->omega().PredicateFromNames({{"c_custkey", "o_custkey"}});
  auto goal12 =
      index12->omega().PredicateFromNames({{"o_orderkey", "l_orderkey"}});
  if (!goal01.ok() || !goal12.ok()) {
    std::fprintf(stderr, "goal construction failed\n");
    return 1;
  }

  core::GoalPathOracle user({*goal01, *goal12});
  auto result = core::RunPathInference(path, core::StrategyKind::kTopDown,
                                       /*seed=*/7, user);
  if (!result.ok()) {
    std::fprintf(stderr, "path inference failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const char* edge_names[] = {"Customer -- Orders", "Orders -- Lineitem"};
  const core::SignatureIndex* indexes[] = {&*index01, &*index12};
  const core::JoinPredicate goals[] = {*goal01, *goal12};
  for (size_t e = 0; e < result->steps.size(); ++e) {
    const auto& step = result->steps[e];
    std::printf("Edge %zu (%s): inferred %s in %zu questions — %s\n", e + 1,
                edge_names[e],
                indexes[e]->omega().Format(step.predicate).c_str(),
                step.num_interactions,
                indexes[e]->EquivalentOnInstance(step.predicate, goals[e])
                    ? "matches the FK chain"
                    : "MISMATCH (bug!)");
  }
  std::printf("\nTotal user effort for the whole path: %zu questions.\n",
              result->total_interactions);
  return 0;
}
