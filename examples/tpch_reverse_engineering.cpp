// Reverse-engineering TPC-H joins (§5.1): infer the key/foreign-key joins
// of a TPC-H-style database purely from Yes/No answers, with no access to
// the constraints — and watch the strategies discard the coincidental
// value matches (a "15" that is a size on one side and a quantity on the
// other).
//
// Build & run:  ./build/examples/tpch_reverse_engineering

#include <cstdio>

#include "core/inference.h"
#include "core/lattice.h"
#include "core/oracle.h"
#include "core/signature_index.h"
#include "workload/tpch.h"

using namespace jinfer;

// Build the signature index with one worker per hardware thread; the
// resulting index is bit-identical to a serial build.
constexpr core::SignatureIndexOptions kIndexOptions{.compress = true,
                                                    .threads = 0};

int main() {
  workload::TpchScale scale = workload::MiniScaleA();
  std::printf("Generating TPC-H-style data (%zu parts, %zu suppliers, %zu "
              "customers, %zu orders)...\n",
              scale.parts, scale.suppliers, scale.customers, scale.orders);
  auto db = workload::GenerateTpch(scale, /*seed=*/20140324);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  for (const auto& join : workload::PaperTpchJoins(*db)) {
    auto index = core::SignatureIndex::Build(*join.r, *join.p, kIndexOptions);
    if (!index.ok()) {
      std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
      return 1;
    }
    auto goal = index->omega().PredicateFromNames(join.equalities);
    if (!goal.ok()) {
      std::fprintf(stderr, "%s\n", goal.status().ToString().c_str());
      return 1;
    }

    std::printf("\nJoin %d: %s\n", join.number, join.description.c_str());
    std::printf("  |Omega| = %zu candidate equality atoms, %llu candidate "
                "tuples, %zu classes, join ratio %.3f\n",
                index->omega().size(),
                static_cast<unsigned long long>(index->num_tuples()),
                index->num_classes(), core::JoinRatio(*index));

    auto strategy = core::MakeStrategy(core::StrategyKind::kTopDown);
    core::GoalOracle oracle{*goal};
    auto result = core::RunInference(*index, *strategy, oracle);
    if (!result.ok()) {
      std::fprintf(stderr, "  inference failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }

    std::printf("  TD inferred %s in %zu interactions (%.1f ms)\n",
                index->omega().Format(result->predicate).c_str(),
                result->num_interactions, result->seconds * 1e3);
    std::printf("  instance-equivalent to the FK join: %s\n",
                index->EquivalentOnInstance(result->predicate, *goal)
                    ? "yes"
                    : "NO (bug!)");

    // What did the user actually look at? Show the first two questions.
    for (size_t q = 0; q < result->trace.size() && q < 2; ++q) {
      const auto& rec = result->trace[q];
      const core::SignatureClass& cls = index->cls(rec.cls);
      std::printf("    e.g. Q%zu: %s row %u vs %s row %u -> %s\n", q + 1,
                  join.r->schema().relation_name().c_str(), cls.rep_r,
                  join.p->schema().relation_name().c_str(), cls.rep_p,
                  rec.label == core::Label::kPositive ? "yes" : "no");
    }
  }
  std::printf("\nAll five §5.1 goal joins recovered without reading any "
              "integrity constraints.\n");
  return 0;
}
