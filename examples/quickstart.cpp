// Quickstart: the paper's §1 travel-agency walkthrough.
//
// A user wants flight&hotel packages but cannot write the join; the system
// presents tuples of Flight × Hotel and the user answers Yes/No. Here the
// "user" is simulated with a goal predicate; swap GoalOracle for your own
// Oracle subclass to plug in a real one (see interactive_cli.cpp).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/inference.h"
#include "core/oracle.h"
#include "core/signature_index.h"
#include "relational/relation.h"

using namespace jinfer;

// Build the signature index with one worker per hardware thread; the
// resulting index is bit-identical to a serial build.
constexpr core::SignatureIndexOptions kIndexOptions{.compress = true,
                                                    .threads = 0};

int main() {
  // --- 1. The two data sources (Figure 1) --------------------------------
  auto flight = rel::Relation::Make("Flight", {"From", "To", "Airline"},
                                    {{"Paris", "Lille", "AF"},
                                     {"Lille", "NYC", "AA"},
                                     {"NYC", "Paris", "AA"},
                                     {"Paris", "NYC", "AF"}});
  auto hotel = rel::Relation::Make(
      "Hotel", {"City", "Discount"},
      {{"NYC", "AA"}, {"Paris", "None"}, {"Lille", "AF"}});
  if (!flight.ok() || !hotel.ok()) {
    std::fprintf(stderr, "table construction failed\n");
    return 1;
  }
  std::printf("%s\n%s\n", flight->ToString().c_str(),
              hotel->ToString().c_str());

  // --- 2. Index the Cartesian product ------------------------------------
  auto index = core::SignatureIndex::Build(*flight, *hotel, kIndexOptions);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("Cartesian product: %llu tuples in %zu signature classes\n\n",
              static_cast<unsigned long long>(index->num_tuples()),
              index->num_classes());

  // --- 3. The goal the user has in mind (Q2 of the paper) ----------------
  auto goal = index->omega().PredicateFromNames(
      {{"To", "City"}, {"Airline", "Discount"}});
  if (!goal.ok()) {
    std::fprintf(stderr, "%s\n", goal.status().ToString().c_str());
    return 1;
  }
  std::printf("Hidden goal query Q2: %s\n\n",
              index->omega().Format(*goal).c_str());

  // --- 4. Interactive inference with the 2-step lookahead strategy -------
  auto strategy = core::MakeStrategy(core::StrategyKind::kLookahead2);
  core::GoalOracle user{*goal};
  auto result = core::RunInference(*index, *strategy, user);
  if (!result.ok()) {
    std::fprintf(stderr, "inference failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // --- 5. Show the dialogue and the answer -------------------------------
  for (size_t i = 0; i < result->trace.size(); ++i) {
    const auto& rec = result->trace[i];
    const core::SignatureClass& cls = index->cls(rec.cls);
    std::printf("Q%zu: flight %s  +  hotel %s   ->  user says %s\n", i + 1,
                flight->row(cls.rep_r)[1].ToString().c_str(),
                hotel->row(cls.rep_p)[0].ToString().c_str(),
                rec.label == core::Label::kPositive ? "YES" : "no");
  }
  std::printf("\nInferred join predicate after %zu questions: %s\n",
              result->num_interactions,
              index->omega().Format(result->predicate).c_str());
  std::printf("Instance-equivalent to the goal: %s\n",
              index->EquivalentOnInstance(result->predicate, *goal)
                  ? "yes"
                  : "NO (bug!)");
  return 0;
}
