#!/usr/bin/env python3
"""Lints the production metric namespace (DESIGN.md §13.4).

src/obs/metric_names.h is the single registry of production metric names.
This script fails CI when that contract rots:

  1. Every name in metric_names.h matches jinfer_<subsystem>_<metric> —
     lowercase [a-z0-9_], at least three underscore-separated words, and
     the jinfer_ prefix.
  2. No two constants carry the same name string.
  3. The kind-suffix convention holds at every use site: a constant passed
     to Registry::counter() ends in _total, one passed to histogram()
     ends in _nanos, and one passed to gauge() ends in neither (gauges
     name the level they report). Kinds are inferred from usage under
     src/, so a constant registered as two different kinds is also caught
     (the registry aborts on that at runtime; this catches it in review).
  4. No '"jinfer_' string literal appears under src/ outside
     metric_names.h — a metric that is not registered there does not
     exist. bench/ and tests/ are exempt: scratch metrics in benchmarks
     and goldens in tests are not production names.

Run from anywhere: paths resolve against the repo root. Exit code 1 lists
every violation with file:line.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
NAMES_HEADER = ROOT / "src" / "obs" / "metric_names.h"

NAME_RE = re.compile(r"^jinfer_[a-z0-9]+(_[a-z0-9]+)+$")
# `inline constexpr char kFoo[] =` possibly wrapping to the next line
# before the string literal.
CONST_RE = re.compile(
    r"inline\s+constexpr\s+char\s+(k\w+)\[\]\s*=\s*\n?\s*\"([^\"]*)\"",
    re.MULTILINE)
USE_RE = re.compile(r"\b(counter|gauge|histogram)\(\s*obs::(k\w+)\s*\)")
LITERAL_RE = re.compile(r"\"jinfer_[^\"]*\"")

KIND_SUFFIX = {
    "counter": lambda n: n.endswith("_total"),
    "histogram": lambda n: n.endswith("_nanos"),
    "gauge": lambda n: not n.endswith(("_total", "_nanos")),
}
KIND_RULE = {
    "counter": "counters must end in _total",
    "histogram": "histograms must end in _nanos",
    "gauge": "gauges must not carry a _total/_nanos suffix",
}


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def main():
    errors = []
    header_text = NAMES_HEADER.read_text()
    rel_header = NAMES_HEADER.relative_to(ROOT)

    constants = {}  # identifier -> name string
    seen_names = {}  # name string -> identifier
    for m in CONST_RE.finditer(header_text):
        ident, name = m.group(1), m.group(2)
        line = line_of(header_text, m.start())
        constants[ident] = name
        if not NAME_RE.match(name):
            errors.append(
                f"{rel_header}:{line}: {ident} = \"{name}\" does not match "
                "jinfer_<subsystem>_<metric> ([a-z0-9_], >= 3 words)")
        if name in seen_names:
            errors.append(
                f"{rel_header}:{line}: duplicate metric name \"{name}\" "
                f"({ident} and {seen_names[name]})")
        else:
            seen_names[name] = ident
    if not constants:
        errors.append(f"{rel_header}: found no metric name constants — "
                      "the extraction regex no longer matches the header")

    # Walk src/ once: collect registration kinds and stray literals.
    kinds = {}  # identifier -> {kind: first file:line}
    for path in sorted((ROOT / "src").rglob("*")):
        if path.suffix not in (".h", ".cc") or path == NAMES_HEADER:
            continue
        text = path.read_text()
        rel = path.relative_to(ROOT)
        for m in USE_RE.finditer(text):
            kind, ident = m.group(1), m.group(2)
            if ident not in constants:
                errors.append(
                    f"{rel}:{line_of(text, m.start())}: obs::{ident} is "
                    f"registered as a {kind} but is not defined in "
                    f"{rel_header}")
                continue
            kinds.setdefault(ident, {}).setdefault(
                kind, f"{rel}:{line_of(text, m.start())}")
        for m in LITERAL_RE.finditer(text):
            errors.append(
                f"{rel}:{line_of(text, m.start())}: metric name literal "
                f"{m.group(0)} outside {rel_header} — register it there "
                "and reference the constant")

    for ident, by_kind in sorted(kinds.items()):
        name = constants[ident]
        if len(by_kind) > 1:
            sites = ", ".join(f"{k} at {v}" for k, v in sorted(by_kind.items()))
            errors.append(
                f"{rel_header}: \"{name}\" is registered under multiple "
                f"kinds: {sites}")
        for kind, site in sorted(by_kind.items()):
            if not KIND_SUFFIX[kind](name):
                errors.append(
                    f"{site}: \"{name}\" is registered as a {kind}; "
                    f"{KIND_RULE[kind]}")

    if errors:
        print(f"{len(errors)} metric-name violation(s):\n", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"checked {len(constants)} metric names in {rel_header}: "
          f"{len(kinds)} registered under src/, all conforming")
    return 0


if __name__ == "__main__":
    sys.exit(main())
