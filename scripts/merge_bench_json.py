#!/usr/bin/env python3
"""Merges google-benchmark JSON files into one perf-trajectory file.

Usage: merge_bench_json.py OUT IN1 [IN2 ...]

The context block is taken from IN1 (one machine, one build — the inputs
come from the same CI job); the benchmarks arrays are concatenated in input
order. CI uses this to fold micro_core and throughput_sessions output into
the single BENCH_core.json artifact (see bench/README.md).
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    out_path, in_paths = sys.argv[1], sys.argv[2:]

    merged = None
    for path in in_paths:
        with open(path) as f:
            data = json.load(f)
        if merged is None:
            merged = data
        else:
            merged["benchmarks"].extend(data["benchmarks"])

    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"{out_path}: {len(merged['benchmarks'])} benchmarks "
          f"from {len(in_paths)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
