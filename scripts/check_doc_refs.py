#!/usr/bin/env python3
"""Fails when the repo references an intra-repo document that does not exist.

Two classes of reference are checked over every git-tracked text file:

  1. Mentions of Markdown documents by file name (e.g. a header comment
     saying "see DESIGN.md §2", or "bench/README.md" in CI config). The
     target must exist at the repo root, relative to the referencing file,
     or — for bare file names like README.md — anywhere in the tree.
  2. Relative link targets inside Markdown files ("[text](src/runtime/)"),
     excluding external URLs and pure #fragment links.
  3. Section references of the form "DESIGN.md §N" or "DESIGN.md §N.M":
     the cited section must exist as a "## §N" heading (or, for N.M
     subsection references, a "### §N.M" heading) in DESIGN.md (section
     numbers are stable there precisely so code comments can cite them —
     a citation of a never-written section is the same rot as a dangling
     file name).

Run from anywhere: paths resolve against the repo root. Exit code 1 lists
every dangling reference with file:line so the CI docs job points straight
at the offender.
"""

import os
import pathlib
import re
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

# Files whose .md mentions are quotations, not references (the PR task spec
# quotes grep patterns and names files that may not exist yet).
SKIP = {"ISSUE.md"}

TEXT_SUFFIXES = {".md", ".h", ".cc", ".cpp", ".txt", ".yml", ".yaml", ".py",
                 ".json", ".cmake"}

MD_MENTION = re.compile(r"[A-Za-z0-9_\-./]*[A-Za-z0-9_\-]\.md\b")
MD_LINK = re.compile(r"\]\(([^)\s]+)\)")
SECTION_REF = re.compile(r"DESIGN\.md\s*§(\d+(?:\.\d+)?)")
SECTION_HEADING = re.compile(r"^##\s*§(\d+)\b")
SUBSECTION_HEADING = re.compile(r"^###\s*§(\d+\.\d+)\b")


def design_sections():
    design = ROOT / "DESIGN.md"
    if not design.exists():
        return set()
    sections = set()
    for line in design.read_text(encoding="utf-8").splitlines():
        if m := SECTION_HEADING.match(line):
            sections.add(m.group(1))
        elif m := SUBSECTION_HEADING.match(line):
            sections.add(m.group(1))
    return sections


def tracked_files():
    out = subprocess.run(["git", "ls-files"], cwd=ROOT, check=True,
                         capture_output=True, text=True).stdout
    for line in out.splitlines():
        path = ROOT / line
        if path.name in SKIP:
            continue
        if path.suffix in TEXT_SUFFIXES or path.name == "CMakeLists.txt":
            yield path


def known_md_names():
    out = subprocess.run(["git", "ls-files", "*.md"], cwd=ROOT, check=True,
                         capture_output=True, text=True).stdout
    return {pathlib.PurePath(line).name for line in out.splitlines()}


def resolves(ref: str, source: pathlib.Path, md_names) -> bool:
    ref = ref.removeprefix("./")
    if not ref:
        return False
    # normpath folds "..", so "../EXPERIMENTS.md" written in bench/ checks
    # the repo root rather than a mangled or out-of-tree path.
    for base in (ROOT, source.parent):
        candidate = pathlib.Path(os.path.normpath(base / ref))
        if candidate.is_relative_to(ROOT) and candidate.exists():
            return True
    # Bare names ("README.md" said inside bench/) may refer to any tracked
    # document of that name; qualified paths must resolve exactly.
    return "/" not in ref and ref in md_names


def main() -> int:
    md_names = known_md_names()
    sections = design_sections()
    errors = []
    for path in tracked_files():
        rel = path.relative_to(ROOT)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except UnicodeDecodeError:
            continue
        for lineno, line in enumerate(lines, start=1):
            refs = set(MD_MENTION.findall(line))
            if path.suffix == ".md":
                for target in MD_LINK.findall(line):
                    if "://" in target or target.startswith(("#", "mailto:")):
                        continue
                    refs.add(target.split("#", 1)[0])
            for ref in sorted(refs):
                if not resolves(ref, path, md_names):
                    errors.append(f"{rel}:{lineno}: dangling reference "
                                  f"'{ref}'")
            for number in SECTION_REF.findall(line):
                if number not in sections:
                    errors.append(f"{rel}:{lineno}: dangling section "
                                  f"reference 'DESIGN.md §{number}'")
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} dangling doc reference(s).", file=sys.stderr)
        return 1
    print("doc references OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
