// Extension bench: crowdsourced labeling (§1/§7 motivation).
//
// The paper argues that minimizing interactions minimizes crowdsourcing
// cost. This bench quantifies the other half of that deployment: noisy
// workers. For a fixed goal join, sweep per-worker error rate × crowd
// size and report the recovery rate (sessions whose inferred predicate is
// instance-equivalent to the goal), interactions, and votes purchased —
// the money axis. Because lies on informative tuples are individually
// consistent (see core/inference.h), accuracy must be bought with
// redundancy, not detected by the consistency check.

#include "bench_common.h"
#include "workload/crowd.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace {

void Sweep(const core::SignatureIndex& index,
           const core::JoinPredicate& goal, core::StrategyKind kind,
           uint64_t seed) {
  std::printf("\nstrategy %s, goal %s\n", core::StrategyKindName(kind),
              index.omega().Format(goal).c_str());
  std::printf("%s%s%s%s%s\n", util::PadRight("workers", 10).c_str(),
              util::PadLeft("error", 8).c_str(),
              util::PadLeft("recovery%", 12).c_str(),
              util::PadLeft("questions", 12).c_str(),
              util::PadLeft("votes", 10).c_str());
  bench::PrintRule(52);
  size_t trials = bench::FullMode() ? 200 : 50;
  for (double error : {0.0, 0.1, 0.2, 0.3}) {
    for (size_t workers : {size_t{1}, size_t{3}, size_t{5}}) {
      auto point = workload::MeasureCrowdPoint(index, goal, kind, workers,
                                               error, trials, seed);
      JINFER_CHECK(point.ok(), "sweep point");
      std::printf(
          "%s%s%s%s%s\n",
          util::PadRight(util::StrFormat("%zu", workers), 10).c_str(),
          util::PadLeft(util::StrFormat("%.1f", error), 8).c_str(),
          util::PadLeft(util::StrFormat("%.0f", point->recovery_rate * 100),
                        12)
              .c_str(),
          util::PadLeft(util::StrFormat("%.1f", point->mean_interactions),
                        12)
              .c_str(),
          util::PadLeft(util::StrFormat("%.1f", point->mean_votes), 10)
              .c_str());
    }
  }
}

}  // namespace
}  // namespace jinfer

int main() {
  using namespace jinfer;
  bench::PrintBanner(
      "Extension — crowdsourced labeling: recovery vs noise vs crowd size",
      "No paper figure; quantifies the §1/§7 crowdsourcing motivation "
      "(cost = votes, accuracy = recovery of an instance-equivalent join)");
  auto inst = workload::GenerateSynthetic({3, 3, 50, 60}, bench::BaseSeed());
  JINFER_CHECK(inst.ok(), "generation");
  auto index = core::SignatureIndex::Build(inst->r, inst->p, bench::BenchIndexOptions());
  JINFER_CHECK(index.ok(), "index");

  core::JoinPredicate goal;
  goal.Set(0);  // (A1,B1)
  Sweep(*index, goal, core::StrategyKind::kTopDown, bench::BaseSeed());
  Sweep(*index, goal, core::StrategyKind::kLookahead1, bench::BaseSeed());
  std::printf("\nNote: lookahead strategies ask fewer questions, so a lying "
              "crowd has fewer chances to mislead them — but each wrong "
              "majority hurts more.\n");
  return 0;
}
