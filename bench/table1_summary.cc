// Table 1: the summary of all experiments — Cartesian product size, join
// ratio, best strategy w.r.t. number of interactions, and that strategy's
// time — for the TPC-H joins (both scales) and the six synthetic
// configurations (goal sizes 0-4).
//
// Paper reference rows are embedded in the output for side-by-side
// comparison (see also EXPERIMENTS.md).

#include "bench_common.h"
#include "core/lattice.h"
#include "core/signature_index.h"
#include "workload/synthetic.h"
#include "workload/tpch.h"

namespace jinfer {
namespace {

struct SummaryRow {
  std::string experiment;
  uint64_t cartesian = 0;
  double join_ratio = 0;
  std::string best;
  double best_interactions = 0;
  double best_seconds = 0;
};

void PrintSummary(const std::vector<SummaryRow>& rows) {
  std::printf("\n%s%s%s%s%s\n",
              util::PadRight("Experiment", 34).c_str(),
              util::PadLeft("|D|", 12).c_str(),
              util::PadLeft("join ratio", 12).c_str(),
              util::PadLeft("best (int.)", 16).c_str(),
              util::PadLeft("time (s)", 12).c_str());
  bench::PrintRule(86);
  for (const auto& row : rows) {
    std::printf("%s%s%s%s%s\n",
                util::PadRight(row.experiment, 34).c_str(),
                util::PadLeft(util::StrFormat("%.1e",
                                              static_cast<double>(
                                                  row.cartesian)),
                              12)
                    .c_str(),
                util::PadLeft(util::StrFormat("%.3f", row.join_ratio), 12)
                    .c_str(),
                util::PadLeft(util::StrFormat("%s (%.1f)", row.best.c_str(),
                                              row.best_interactions),
                              16)
                    .c_str(),
                util::PadLeft(util::StrFormat("%.4f", row.best_seconds), 12)
                    .c_str());
  }
}

SummaryRow Summarize(const std::string& name,
                     const core::SignatureIndex& index,
                     const std::vector<core::JoinPredicate>& goals,
                     uint64_t seed) {
  bench::GridRow grid = bench::MeasureRow(name, index, goals, 1, seed);
  size_t best = workload::BestStrategyIndex(grid.stats);
  SummaryRow row;
  row.experiment = name;
  row.cartesian = index.num_tuples();
  row.join_ratio = core::JoinRatio(index);
  row.best = core::StrategyKindName(grid.stats[best].kind);
  row.best_interactions = grid.stats[best].mean_interactions;
  row.best_seconds = grid.stats[best].mean_seconds;
  return row;
}

void TpchBlock(const workload::TpchScale& scale, uint64_t seed,
               std::vector<SummaryRow>* rows) {
  auto db = workload::GenerateTpch(scale, seed);
  JINFER_CHECK(db.ok(), "tpch: %s", db.status().ToString().c_str());
  for (const auto& join : workload::PaperTpchJoins(*db)) {
    auto index = core::SignatureIndex::Build(*join.r, *join.p, bench::BenchIndexOptions());
    JINFER_CHECK(index.ok(), "index");
    auto goal = index->omega().PredicateFromNames(join.equalities);
    JINFER_CHECK(goal.ok(), "goal");
    rows->push_back(Summarize(
        util::StrFormat("%s Join %d (size %zu)", scale.name.c_str(),
                        join.number, goal->Count()),
        *index, {*goal}, seed));
  }
}

void SyntheticBlock(const workload::SyntheticConfig& config, uint64_t seed,
                    std::vector<SummaryRow>* rows) {
  bench::SyntheticSweepOptions sweep;
  sweep.instances = bench::FullMode() ? 12 : 6;
  sweep.goals_per_size = bench::FullMode() ? 6 : 3;
  std::string where;
  std::vector<bench::GridRow> grid =
      bench::SyntheticBySizeGrid(config, sweep, seed, &where);

  // The |D| and join-ratio columns describe the configuration; recompute
  // them once from a representative instance.
  auto inst = workload::GenerateSynthetic(config, seed);
  JINFER_CHECK(inst.ok(), "synthetic");
  auto index = core::SignatureIndex::Build(inst->r, inst->p, bench::BenchIndexOptions());
  JINFER_CHECK(index.ok(), "index");

  for (const auto& grid_row : grid) {
    size_t best = workload::BestStrategyIndex(grid_row.stats);
    SummaryRow row;
    row.experiment = config.ToString() + " " + grid_row.label;
    row.cartesian = index->num_tuples();
    row.join_ratio = core::JoinRatio(*index);
    row.best = core::StrategyKindName(grid_row.stats[best].kind);
    row.best_interactions = grid_row.stats[best].mean_interactions;
    row.best_seconds = grid_row.stats[best].mean_seconds;
    rows->push_back(row);
  }
}

// OPT is the yardstick the summary's "best strategy" column is implicitly
// judged against; on an instance small enough for exact search, report the
// minimax floor and every paper strategy's worst-case gap above it.
void PrintOptFloor(uint64_t seed) {
  workload::SyntheticConfig config{2, 2, 20, 8};
  auto inst = workload::GenerateSynthetic(config, seed);
  JINFER_CHECK(inst.ok(), "synthetic");
  auto index = core::SignatureIndex::Build(inst->r, inst->p,
                                           bench::BenchIndexOptions());
  JINFER_CHECK(index.ok(), "index");

  core::MinimaxEngine engine(*index, bench::BenchMinimaxOptions());
  core::InferenceState fresh(*index);
  size_t optimum = engine.Value(fresh);

  std::printf("\nOPT floor (worst case over all goal behaviors), config %s "
              "(classes=%zu)\n",
              config.ToString().c_str(), index->num_classes());
  std::printf("%s%s%s\n", util::PadRight("strategy", 12).c_str(),
              util::PadLeft("worst case", 12).c_str(),
              util::PadLeft("gap to OPT", 12).c_str());
  bench::PrintRule(36);
  std::printf("%s%s%s\n", util::PadRight("OPT", 12).c_str(),
              util::PadLeft(util::StrFormat("%zu", optimum), 12).c_str(),
              util::PadLeft("0", 12).c_str());
  for (core::StrategyKind kind :
       {core::StrategyKind::kBottomUp, core::StrategyKind::kTopDown,
        core::StrategyKind::kLookahead1, core::StrategyKind::kLookahead2}) {
    auto strategy = core::MakeStrategy(kind);
    size_t worst = core::WorstCaseInteractions(*index, *strategy);
    std::printf("%s%s%s\n",
                util::PadRight(core::StrategyKindName(kind), 12).c_str(),
                util::PadLeft(util::StrFormat("%zu", worst), 12).c_str(),
                util::PadLeft(util::StrFormat("+%zu", worst - optimum), 12)
                    .c_str());
  }
  std::printf("%s\n", bench::OptEngineCountersLine(engine.counters()).c_str());
}

}  // namespace
}  // namespace jinfer

int main() {
  using namespace jinfer;
  bench::PrintBanner(
      "Table 1 — description and summary of all experiments",
      "Paper: TPC-H size-1 joins best BU/TD/L2S at 2-4 int.; J5 TD at "
      "25/12 int.; synthetic: size 0 BU(1), size 1 L2S(4-5), size 2 "
      "TD(8-15), sizes 3-4 L2S(7-14); join ratios 1..2.1");

  bench::ApplyBenchThreadKnob();
  std::vector<SummaryRow> rows;
  uint64_t seed = bench::BaseSeed();
  TpchBlock(workload::MiniScaleA(), seed, &rows);
  TpchBlock(workload::MiniScaleB(), seed + 1, &rows);
  for (const auto& config : workload::PaperSyntheticConfigs()) {
    SyntheticBlock(config, ++seed, &rows);
  }
  PrintSummary(rows);
  PrintOptFloor(bench::BaseSeed() + 99);
  return 0;
}
