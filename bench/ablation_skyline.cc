// Ablation: the skyline-max-min selection rule of L1S (Algorithm 4).
//
// L1S picks the skyline entropy with maximal min-component — an
// adversarial guarantee. Alternatives compared here:
//   * EG  — expected gain (mean of u+/u−), no skyline, no worst-case floor;
//   * RND — no entropy at all (the floor of the comparison).
// The question: does the adversarial skyline rule actually pay for itself
// in interactions?

#include "bench_common.h"
#include "core/signature_index.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace {

void RunConfig(const workload::SyntheticConfig& config, uint64_t seed) {
  auto inst = workload::GenerateSynthetic(config, seed);
  JINFER_CHECK(inst.ok(), "generation");
  auto index = core::SignatureIndex::Build(inst->r, inst->p, bench::BenchIndexOptions());
  JINFER_CHECK(index.ok(), "index");

  size_t goals_per_size = bench::FullMode() ? 6 : 3;
  auto by_size = workload::SampleGoalsBySize(*index, goals_per_size,
                                             seed ^ 0x5ca1);
  JINFER_CHECK(by_size.ok(), "goals");

  std::vector<core::StrategyKind> kinds = {core::StrategyKind::kLookahead1,
                                           core::StrategyKind::kExpectedGain,
                                           core::StrategyKind::kRandom};

  std::printf("\nconfig %s  (classes=%zu)\n", config.ToString().c_str(),
              index->num_classes());
  std::string header = util::PadRight("goal size", 12);
  for (auto kind : kinds) {
    header += util::PadLeft(core::StrategyKindName(kind), 12);
  }
  std::printf("%s  (mean interactions)\n", header.c_str());
  bench::PrintRule(header.size() + 22);

  for (const auto& [size, goals] : *by_size) {
    if (size > 4) continue;
    std::string line = util::PadRight(util::StrFormat("%zu", size), 12);
    for (auto kind : kinds) {
      auto stats = workload::MeasureStrategyOverGoals(
          *index, goals, kind, bench::RunsFor(kind), seed);
      JINFER_CHECK(stats.ok(), "measure");
      line += util::PadLeft(util::StrFormat("%.1f", stats->mean_interactions),
                            12);
    }
    std::printf("%s\n", line.c_str());
  }
}

}  // namespace
}  // namespace jinfer

int main() {
  using namespace jinfer;
  bench::PrintBanner(
      "Ablation — skyline-max-min vs expected-gain vs random selection",
      "Algorithm 4's selection rule isolated; not a paper figure");
  uint64_t seed = bench::BaseSeed();
  RunConfig({3, 3, 50, 100}, seed);
  RunConfig({2, 4, 50, 100}, seed + 1);
  return 0;
}
