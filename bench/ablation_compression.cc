// Ablation: signature-class compression (DESIGN.md §5).
//
// The production index groups the Cartesian product into weighted
// signature classes; the ablation build gives every tuple a singleton
// class. Both infer the same (instance-equivalent) predicate; compression
// should shrink state size by orders of magnitude and speed up every
// strategy — and uncompressed state also costs extra *interactions*,
// because equal-signature tuples must each be labeled.

#include "bench_common.h"
#include "core/inference.h"
#include "core/oracle.h"
#include "core/signature_index.h"
#include "util/stopwatch.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace {

void RunOne(const workload::SyntheticConfig& config, uint64_t seed) {
  auto inst = workload::GenerateSynthetic(config, seed);
  JINFER_CHECK(inst.ok(), "generation");

  std::printf("\nconfig %s\n", config.ToString().c_str());
  std::printf("%s%s%s%s%s\n", util::PadRight("index", 16).c_str(),
              util::PadLeft("classes", 10).c_str(),
              util::PadLeft("build ms", 12).c_str(),
              util::PadLeft("TD int.", 10).c_str(),
              util::PadLeft("TD ms", 10).c_str());
  bench::PrintRule(58);

  for (bool compress : {true, false}) {
    core::SignatureIndexOptions options = bench::BenchIndexOptions();
    options.compress = compress;
    util::Stopwatch build_watch;
    auto index = core::SignatureIndex::Build(inst->r, inst->p, options);
    double build_ms = build_watch.ElapsedSeconds() * 1e3;
    JINFER_CHECK(index.ok(), "index");

    // Goal: a size-1 predicate over the first attribute pair.
    core::JoinPredicate goal;
    goal.Set(0);
    auto strategy = core::MakeStrategy(core::StrategyKind::kTopDown);
    core::GoalOracle oracle{goal};
    core::InferenceOptions opts;
    opts.record_trace = false;
    util::Stopwatch infer_watch;
    auto result = core::RunInference(*index, *strategy, oracle, opts);
    double infer_ms = infer_watch.ElapsedSeconds() * 1e3;
    JINFER_CHECK(result.ok(), "inference");
    JINFER_CHECK(index->EquivalentOnInstance(result->predicate, goal),
                 "wrong predicate");

    std::printf(
        "%s%s%s%s%s\n",
        util::PadRight(compress ? "compressed" : "per-tuple", 16).c_str(),
        util::PadLeft(util::StrFormat("%zu", index->num_classes()), 10)
            .c_str(),
        util::PadLeft(util::StrFormat("%.2f", build_ms), 12).c_str(),
        util::PadLeft(util::StrFormat("%zu", result->num_interactions), 10)
            .c_str(),
        util::PadLeft(util::StrFormat("%.2f", infer_ms), 10).c_str());
  }
}

}  // namespace
}  // namespace jinfer

int main() {
  using namespace jinfer;
  bench::PrintBanner(
      "Ablation — signature-class compression",
      "Not in the paper; isolates the engineering choice that makes the "
      "strategies scale (§5.3 'equivalent w.r.t. the inference process')");
  uint64_t seed = bench::BaseSeed();
  RunOne({2, 3, 30, 20}, seed);
  RunOne({3, 3, 50, 100}, seed + 1);
  if (bench::FullMode()) {
    RunOne({3, 3, 100, 100}, seed + 2);
  }
  return 0;
}
