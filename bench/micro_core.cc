// Microbenchmarks (google-benchmark) for the hot paths of the inference
// core: signature-index construction (serial and thread-scaled), certainty
// classification (full and incremental apply/undo), entropy, strategy
// selection, the minimax engine vs the retained seed reference,
// consistency checking, and the DPLL solver.
//
// CI runs this binary with the trajectory filter (see
// .github/workflows/ci.yml) and merges its JSON output with
// throughput_sessions' into BENCH_core.json — schema and workflow in
// bench/README.md.

#include <benchmark/benchmark.h>

#include "core/consistency.h"
#include "core/entropy.h"
#include "core/inference.h"
#include "core/lattice.h"
#include "core/oracle.h"
#include "core/signature_index.h"
#include "core/strategies/minimax_engine.h"
#include "core/strategies/minimax_reference.h"
#include "core/strategies/optimal_strategy.h"
#include "obs/metrics.h"
#include "sat/dpll.h"
#include "sat/random_cnf.h"
#include "semijoin/consistency.h"
#include "semijoin/reduction_3sat.h"
#include "util/bit_vector.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/simd/sweep.h"
#include "workload/synthetic.h"
#include "workload/tpch.h"

namespace jinfer {
namespace {

workload::SyntheticInstance MakeInstance(size_t rows, int64_t values) {
  auto inst = workload::GenerateSynthetic({3, 3, rows, values}, 1234);
  JINFER_CHECK(inst.ok(), "generation");
  return std::move(inst).ValueOrDie();
}

void BM_SignatureIndexBuild(benchmark::State& state) {
  auto inst = MakeInstance(static_cast<size_t>(state.range(0)), 100);
  uint64_t tuples = 0;
  for (auto _ : state) {
    auto index = core::SignatureIndex::Build(inst.r, inst.p);
    JINFER_CHECK(index.ok(), "build");
    tuples = index->num_tuples();
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tuples));
}
BENCHMARK(BM_SignatureIndexBuild)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

// Thread scaling of the parallel build on a 1000-row-per-relation
// synthetic instance (|D| = 1k × 1k = 10⁶ tuples, 100-value domain;
// Arg = thread count). The built index is identical for every thread
// count; wall time is the relevant measure for a fork-join pool.
void BM_SignatureIndexBuild1k(benchmark::State& state) {
  auto inst = MakeInstance(1000, 100);
  core::SignatureIndexOptions options;
  options.threads = static_cast<int>(state.range(0));
  uint64_t tuples = 0;
  for (auto _ : state) {
    auto index = core::SignatureIndex::Build(inst.r, inst.p, options);
    JINFER_CHECK(index.ok(), "build");
    tuples = index->num_tuples();
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tuples));
}
BENCHMARK(BM_SignatureIndexBuild1k)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// --- Columnar ingest + encode (ISSUE 5) ---------------------------------
//
// The encode phase in isolation, production vs the retained row-major
// reference on the (3,3,1000,100) acceptance instance: the columnar path
// remaps per-column dictionary codes (one array read per cell), the
// reference hashes a rel::Value per cell through the seed's dictionary.

void BM_EncodeRelationColumnar(benchmark::State& state) {
  auto inst = MakeInstance(1000, 100);
  for (auto _ : state) {
    core::EncodedInstance enc = core::EncodeInstance(inst.r, inst.p);
    benchmark::DoNotOptimize(enc);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(inst.r.num_rows() + inst.p.num_rows()) * 3);
}
BENCHMARK(BM_EncodeRelationColumnar);

void BM_EncodeRelationRowMajor(benchmark::State& state) {
  auto inst = MakeInstance(1000, 100);
  std::vector<rel::Row> r_rows = inst.r.rows();
  std::vector<rel::Row> p_rows = inst.p.rows();
  for (auto _ : state) {
    core::EncodedInstance enc = core::EncodeInstanceReference(r_rows, p_rows);
    benchmark::DoNotOptimize(enc);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(r_rows.size() + p_rows.size()) * 3);
}
BENCHMARK(BM_EncodeRelationRowMajor);

// End-to-end ingest+build, generator -> ready SignatureIndex, columnar vs
// the row-major reference pipeline (legacy-shaped ingest into Value rows,
// then the seed's cell-walk encode). Arg 0: the (3,3,1000,100) acceptance
// instance, where the classification pass dominates and the paths are
// near-parity; Arg 1: the 10⁶-row (3,3,1000000,10) Fig. 7-scale instance,
// where ingest dominates and the columnar win is the headline —
// BM_IngestAndBuild/1 vs BM_IngestAndBuildRowMajor/1 is the ~3× speedup
// (and ~20× cell-memory gap) recorded in BENCH_core.json.

void IngestAndBuildArgs(benchmark::internal::Benchmark* b) {
  b->Arg(0)->Arg(1);
}

workload::SyntheticConfig IngestConfig(int64_t shape) {
  return shape == 0 ? workload::SyntheticConfig{3, 3, 1000, 100}
                    : workload::SyntheticConfig{3, 3, 1000000, 10};
}

void BM_IngestAndBuild(benchmark::State& state) {
  const workload::SyntheticConfig config = IngestConfig(state.range(0));
  uint64_t classes = 0;
  for (auto _ : state) {
    auto inst = workload::GenerateSynthetic(config, 424242);
    JINFER_CHECK(inst.ok(), "generation");
    auto index = core::SignatureIndex::Build(inst->r, inst->p);
    JINFER_CHECK(index.ok(), "build");
    classes = index->num_classes();
    benchmark::DoNotOptimize(index);
  }
  state.counters["classes"] = static_cast<double>(classes);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(config.num_rows) * 2);
  state.SetLabel(config.ToString());
}
BENCHMARK(BM_IngestAndBuild)->Apply(IngestAndBuildArgs);

void BM_IngestAndBuildRowMajor(benchmark::State& state) {
  const workload::SyntheticConfig config = IngestConfig(state.range(0));
  // Legacy-shaped ingest: draw the identical rng stream into materialized
  // Value rows (what AppendRow stored before the columnar refactor).
  const size_t num_attrs = 3;
  auto generate_rows = [&config, num_attrs](util::Rng& rng) {
    std::vector<rel::Row> rows;
    rows.reserve(config.num_rows);
    for (size_t r = 0; r < config.num_rows; ++r) {
      rel::Row row;
      row.reserve(num_attrs);
      for (size_t c = 0; c < num_attrs; ++c) {
        row.emplace_back(static_cast<int64_t>(rng.NextBelow(
            static_cast<uint64_t>(config.num_values))));
      }
      rows.push_back(std::move(row));
    }
    return rows;
  };
  auto schema_r = rel::Schema::Make("R", {"A1", "A2", "A3"});
  auto schema_p = rel::Schema::Make("P", {"B1", "B2", "B3"});
  JINFER_CHECK(schema_r.ok() && schema_p.ok(), "schema");
  uint64_t classes = 0;
  for (auto _ : state) {
    util::Rng rng(424242);
    std::vector<rel::Row> r_rows = generate_rows(rng);
    std::vector<rel::Row> p_rows = generate_rows(rng);
    auto index = core::SignatureIndex::BuildReferenceRowMajor(
        *schema_r, r_rows, *schema_p, p_rows);
    JINFER_CHECK(index.ok(), "build");
    classes = index->num_classes();
    benchmark::DoNotOptimize(index);
  }
  state.counters["classes"] = static_cast<double>(classes);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(config.num_rows) * 2);
  state.SetLabel(config.ToString());
}
BENCHMARK(BM_IngestAndBuildRowMajor)->Apply(IngestAndBuildArgs);

void BM_SignatureIndexBuildTpchJoin4(benchmark::State& state) {
  auto db = workload::GenerateTpch(workload::MiniScaleA(), 7);
  JINFER_CHECK(db.ok(), "tpch");
  for (auto _ : state) {
    auto index = core::SignatureIndex::Build(db->orders, db->lineitem);
    JINFER_CHECK(index.ok(), "build");
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_SignatureIndexBuildTpchJoin4);

void BM_Reclassify(benchmark::State& state) {
  auto inst = MakeInstance(static_cast<size_t>(state.range(0)), 100);
  auto index = core::SignatureIndex::Build(inst.r, inst.p);
  JINFER_CHECK(index.ok(), "build");
  core::InferenceState base(*index);
  core::ClassId cls = base.InformativeClasses().front();
  for (auto _ : state) {
    // WithLabel copies and reclassifies the full state.
    core::InferenceState next = base.WithLabel(cls, core::Label::kNegative);
    benchmark::DoNotOptimize(next);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(index->num_classes()));
}
BENCHMARK(BM_Reclassify)->Arg(50)->Arg(200);

// Per-label cost on the lookahead hot path: one simulated label applied and
// reverted in place via the delta stack — no state copy, no from-scratch
// reclassification.
void BM_ApplyUndo(benchmark::State& state) {
  auto inst = MakeInstance(static_cast<size_t>(state.range(0)), 100);
  auto index = core::SignatureIndex::Build(inst.r, inst.p);
  JINFER_CHECK(index.ok(), "build");
  core::InferenceState st(*index);
  auto informative = st.InformativeClasses();
  size_t i = 0;
  for (auto _ : state) {
    core::ClassId c = informative[i++ % informative.size()];
    st.ApplyLabelScoped(c, core::Label::kNegative);
    st.UndoLabel();
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(index->num_classes()));
}
BENCHMARK(BM_ApplyUndo)->Arg(50)->Arg(200);

void BM_CountNewlyUninformative(benchmark::State& state) {
  auto inst = MakeInstance(100, 100);
  auto index = core::SignatureIndex::Build(inst.r, inst.p);
  JINFER_CHECK(index.ok(), "build");
  core::InferenceState st(*index);
  auto informative = st.InformativeClasses();
  size_t i = 0;
  for (auto _ : state) {
    core::ClassId c = informative[i++ % informative.size()];
    benchmark::DoNotOptimize(
        st.CountNewlyUninformative(c, core::Label::kPositive));
  }
}
BENCHMARK(BM_CountNewlyUninformative);

void BM_EntropyK(benchmark::State& state) {
  auto inst = MakeInstance(50, 100);
  auto index = core::SignatureIndex::Build(inst.r, inst.p);
  JINFER_CHECK(index.ok(), "build");
  core::InferenceState st(*index);
  core::ClassId c = st.InformativeClasses().front();
  int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EntropyKOf(st, c, depth));
  }
}
BENCHMARK(BM_EntropyK)->Arg(1)->Arg(2);

// entropy^2 on a 1k×1k instance — the configuration the lookahead
// strategies hit on every interaction of the fig7-scale runs.
void BM_EntropyK1k(benchmark::State& state) {
  auto inst = MakeInstance(1000, 100);
  auto index = core::SignatureIndex::Build(inst.r, inst.p);
  JINFER_CHECK(index.ok(), "build");
  core::InferenceState st(*index);
  core::ClassId c = st.InformativeClasses().front();
  int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EntropyKOf(st, c, depth));
  }
}
BENCHMARK(BM_EntropyK1k)->Arg(1)->Arg(2);

// --- BitVector word kernels ---------------------------------------------------
//
// Raw throughput of the util::kernels word loops the packed sweeps are
// built on; Arg = word count (1 = single-word fast path, 4 = SmallBitset
// width, 16 = a 1024-bit universe only BitVector can hold). Items = words.

void BM_BitVectorAnd(benchmark::State& state) {
  const size_t words = static_cast<size_t>(state.range(0));
  util::Rng rng(99);
  std::vector<uint64_t> dst(words), a(words), b(words);
  for (size_t w = 0; w < words; ++w) {
    a[w] = rng.Next();
    b[w] = rng.Next();
  }
  for (auto _ : state) {
    util::kernels::And2Words(dst.data(), a.data(), b.data(), words);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(words));
}
BENCHMARK(BM_BitVectorAnd)->Arg(1)->Arg(4)->Arg(16);

void BM_BitVectorSubset(benchmark::State& state) {
  const size_t words = static_cast<size_t>(state.range(0));
  util::Rng rng(99);
  std::vector<uint64_t> big(words), small(words);
  for (size_t w = 0; w < words; ++w) {
    big[w] = rng.Next();
    small[w] = big[w] & rng.Next();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        util::kernels::IsSubsetWords(small.data(), big.data(), words));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(words));
}
BENCHMARK(BM_BitVectorSubset)->Arg(1)->Arg(4)->Arg(16);

void BM_BitVectorPopcount(benchmark::State& state) {
  const size_t words = static_cast<size_t>(state.range(0));
  util::Rng rng(99);
  std::vector<uint64_t> a(words);
  for (size_t w = 0; w < words; ++w) a[w] = rng.Next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::kernels::PopcountWords(a.data(), words));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(words));
}
BENCHMARK(BM_BitVectorPopcount)->Arg(1)->Arg(4)->Arg(16);

// --- Batched entropy sweep, multi-word regime ---------------------------------
//
// One-step entropies for ALL informative classes of a 900-class,
// |Omega| = 72 (two active words) instance. The batch form streams the
// packed arrays once (EntropyOfAll); the per-candidate form re-derives
// every candidate independently — the PR 2 shape the batch sweep
// replaced. Items = candidates scored.

const core::SignatureIndex& MultiWordIndex() {
  static const core::SignatureIndex* index = [] {
    auto inst = workload::GenerateSynthetic({9, 8, 30, 3}, 101);
    JINFER_CHECK(inst.ok(), "generation");
    auto built = core::SignatureIndex::Build(inst->r, inst->p);
    JINFER_CHECK(built.ok(), "build");
    return new core::SignatureIndex(std::move(built).ValueOrDie());
  }();
  return *index;
}

void BM_EntropySweepMultiWord(benchmark::State& state) {
  core::InferenceState st(MultiWordIndex());
  core::EntropyBatchScratch scratch;
  std::vector<core::Entropy> entropies;
  for (auto _ : state) {
    core::EntropyOfAll(st, scratch, entropies);
    benchmark::DoNotOptimize(entropies.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(st.NumInformativeClasses()));
}
BENCHMARK(BM_EntropySweepMultiWord);

void BM_EntropySweepMultiWordPerCandidate(benchmark::State& state) {
  core::InferenceState st(MultiWordIndex());
  std::vector<core::Entropy> entropies(st.NumInformativeClasses());
  for (auto _ : state) {
    for (size_t i = 0; i < st.NumInformativeClasses(); ++i) {
      entropies[i] = core::EntropyOf(st, st.InformativeClassAt(i));
    }
    benchmark::DoNotOptimize(entropies.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(st.NumInformativeClasses()));
}
BENCHMARK(BM_EntropySweepMultiWordPerCandidate);

// --- Dispatched kernel backends (util/simd, DESIGN.md §12.4) -----------------
//
// BM_KernelBackendSweep: the 902-class sweep of BM_EntropySweepMultiWord
// under each forced backend (Arg = KernelBackend enum value; unsupported
// backends are skipped). The label names the backend; the scalar row is
// the portability floor, the widest row the headline.

void BM_KernelBackendSweep(benchmark::State& state) {
  const auto backend = static_cast<util::simd::KernelBackend>(state.range(0));
  if (!util::simd::KernelBackendSupported(backend)) {
    state.SkipWithError("backend unsupported on this CPU/build");
    return;
  }
  const util::simd::KernelBackend ambient =
      util::simd::ActiveKernelBackend();
  util::simd::SetKernelBackend(backend);
  state.SetLabel(util::simd::KernelBackendName(backend));
  core::InferenceState st(MultiWordIndex());
  core::EntropyBatchScratch scratch;
  std::vector<core::Entropy> entropies;
  for (auto _ : state) {
    core::EntropyOfAll(st, scratch, entropies);
    benchmark::DoNotOptimize(entropies.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(st.NumInformativeClasses()));
  util::simd::SetKernelBackend(ambient);
}
BENCHMARK(BM_KernelBackendSweep)->Arg(0)->Arg(1)->Arg(2);

// BM_EntropySweepTiled: the cache-tiling sweep in the regime where the
// streamed key/count arrays overflow the whole cache hierarchy and every
// untiled candidate pass re-streams them from DRAM. Kernel-level
// synthetic instance: 24M single-word classes (384 MB of keys+counts —
// past even a large shared L3), no negative witnesses (the
// pre-first-negative session phase, and the leanest-compute kernel, so
// bandwidth is the binding constraint). The measured region sweeps one
// 128-candidate output slice, so an iteration is O(j_slice · n) like a
// tile column, not the full O(n²) plane. Arg = i_tile (0 = untiled
// monolithic block); the recorded sweep across tile sizes is the
// measurement behind DefaultSweepTiling's 256 KiB stream budget — at
// L3-resident stream sizes the sweep is compute-bound on the bench
// hardware and tiling measures within noise, which is why the fixture
// sits past L3. Items = candidate·class pairs swept.

void BM_EntropySweepTiled(benchmark::State& state) {
  constexpr size_t kN = 24000000;
  constexpr size_t kWords = 1;
  constexpr size_t kSlice = 128;
  static const auto* fx = [] {
    struct Fixture {
      std::vector<uint64_t> keys, sigs, cnts;
    };
    auto* f = new Fixture;
    util::Rng rng(0xced);
    f->sigs.resize(kN * kWords);
    f->keys.resize(kN * kWords);
    for (size_t i = 0; i < kN * kWords; ++i) {
      f->sigs[i] = rng.Next();
      f->keys[i] = rng.Next() & f->sigs[i];
    }
    f->cnts.resize(kN);
    for (auto& c : f->cnts) c = 1 + rng.NextBelow(4);
    return f;
  }();
  util::simd::SweepArgs args;
  args.keys = fx->keys.data();
  args.sigs = fx->sigs.data();
  args.cnts = fx->cnts.data();
  args.negs = nullptr;
  args.num_negs = 0;
  args.words = kWords;
  args.n = kN;
  const size_t i_tile = static_cast<size_t>(state.range(0));
  const util::simd::SweepTiling tiling{i_tile == 0 ? kN : i_tile,
                                       util::simd::DefaultSweepTiling(kWords)
                                           .j_tile};
  std::vector<uint64_t> u_pos(kSlice, 0), u_neg(kSlice, 0);
  for (auto _ : state) {
    util::simd::internal::SweepRangeTiled(util::simd::ActiveKernelOps(),
                                          args, 0, kSlice, tiling,
                                          u_pos.data(), u_neg.data());
    benchmark::DoNotOptimize(u_pos.data());
    benchmark::DoNotOptimize(u_neg.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSlice) *
                          static_cast<int64_t>(kN));
}
BENCHMARK(BM_EntropySweepTiled)
    ->Arg(0)        // untiled: the full 384 MB stream per candidate pass
    ->Arg(4096)     // 64 KiB stream: L1-sized tiles (tiling overhead bound)
    ->Arg(16384)    // 256 KiB stream: DefaultSweepTiling's budget
    ->Arg(131072)   // 2 MiB stream: L2-sized tiles
    ->Unit(benchmark::kMillisecond);

// OPT-sized synthetic instance shared by the exact-search benches — the
// same configuration as the ablation/table1 optimal-floor experiments.
const core::SignatureIndex& OptIndex() {
  static const core::SignatureIndex* index = [] {
    auto inst = workload::GenerateSynthetic({2, 2, 20, 8}, 77);
    JINFER_CHECK(inst.ok(), "generation");
    auto built = core::SignatureIndex::Build(inst->r, inst->p);
    JINFER_CHECK(built.ok(), "build");
    return new core::SignatureIndex(std::move(built).ValueOrDie());
  }();
  return *index;
}

// Measured loop shared by the minimax-value benches: one cold-table solve
// per iteration (the engine is constructed inside the loop), reporting
// per-solve node counts and the TT hit rate.
void RunMinimaxValueBench(benchmark::State& state,
                          const core::SignatureIndex& index,
                          const core::MinimaxOptions& options) {
  core::InferenceState st(index);
  size_t value = 0;
  uint64_t nodes = 0;
  uint64_t probes = 0;
  uint64_t hits = 0;
  for (auto _ : state) {
    core::MinimaxEngine engine(index, options);
    value = engine.Value(st);
    nodes += engine.counters().nodes;
    probes += engine.counters().tt_probes;
    hits += engine.counters().tt_hits;
    benchmark::DoNotOptimize(value);
  }
  state.counters["minimax_value"] = static_cast<double>(value);
  state.counters["nodes"] =
      benchmark::Counter(static_cast<double>(nodes),
                         benchmark::Counter::kAvgIterations);
  state.counters["tt_hit_rate"] =
      probes == 0 ? 0.0
                  : static_cast<double>(hits) / static_cast<double>(probes);
}

// Exact minimax value on the delta-frame Zobrist/TT engine; Arg = root-
// split worker count (values and picks are identical for every Arg).
void BM_MinimaxValueEngine(benchmark::State& state) {
  core::MinimaxOptions options;
  options.threads = static_cast<int>(state.range(0));
  RunMinimaxValueBench(state, OptIndex(), options);
}
BENCHMARK(BM_MinimaxValueEngine)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// An 18-class instance the seed implementation cannot finish inside its
// node budget at all — engine-only, showing the widened exact-search
// range. Arg = root-split workers; the shared validated table keeps total
// nodes flat in the worker count (on multicore hardware wall time drops;
// this is the same fork-join pattern as BM_SignatureIndexBuild1k).
void BM_MinimaxValueEngineLarge(benchmark::State& state) {
  static const core::SignatureIndex* index = [] {
    auto inst = workload::GenerateSynthetic({3, 2, 8, 4}, 20140324);
    JINFER_CHECK(inst.ok(), "generation");
    auto built = core::SignatureIndex::Build(inst->r, inst->p);
    JINFER_CHECK(built.ok(), "build");
    return new core::SignatureIndex(std::move(built).ValueOrDie());
  }();
  core::MinimaxOptions options;
  options.threads = static_cast<int>(state.range(0));
  options.node_budget = 100'000'000;
  RunMinimaxValueBench(state, *index, options);
}
BENCHMARK(BM_MinimaxValueEngineLarge)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Exact minimax over a multi-word universe: 9 classes but |Omega| = 72,
// so every apply/undo and u-count in the search runs the two-word generic
// kernels instead of the single-word fast path — the large-|Omega| OPT
// configuration the packed delta-frame path is accountable for. (The
// synthetic two-word signatures barely overlap, so OPT = n and the tree
// is near 3^n; 9 classes is the largest such instance that stays exact.)
void BM_MinimaxValueMultiWord(benchmark::State& state) {
  static const core::SignatureIndex* index = [] {
    auto inst = workload::GenerateSynthetic({9, 8, 3, 2}, 13);
    JINFER_CHECK(inst.ok(), "generation");
    auto built = core::SignatureIndex::Build(inst->r, inst->p);
    JINFER_CHECK(built.ok(), "build");
    return new core::SignatureIndex(std::move(built).ValueOrDie());
  }();
  core::MinimaxOptions options;
  options.threads = static_cast<int>(state.range(0));
  options.node_budget = 10'000'000;
  RunMinimaxValueBench(state, *index, options);
}
BENCHMARK(BM_MinimaxValueMultiWord)->Arg(1)->Arg(2)->UseRealTime();

// The seed implementation (copy-per-node, sorted-vector key in a std::map)
// on the same instance: the yardstick for the engine's speedup.
void BM_MinimaxValueReference(benchmark::State& state) {
  const core::SignatureIndex& index = OptIndex();
  core::InferenceState st(index);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ReferenceMinimaxInteractions(st));
  }
}
BENCHMARK(BM_MinimaxValueReference);

// Worst-case adversary (memoized engine vs seed copy-per-node) driving the
// two-step lookahead strategy over all goal behaviors — L2S picks are
// expensive, so every transposition the memo folds away pays in full.
void BM_WorstCaseEngine(benchmark::State& state) {
  const core::SignatureIndex& index = OptIndex();
  uint64_t nodes = 0;
  uint64_t probes = 0;
  uint64_t hits = 0;
  for (auto _ : state) {
    auto strategy = core::MakeStrategy(core::StrategyKind::kLookahead2);
    core::MinimaxEngine engine(index, {});
    benchmark::DoNotOptimize(engine.WorstCase(*strategy));
    nodes += engine.counters().nodes;
    probes += engine.counters().tt_probes;
    hits += engine.counters().tt_hits;
  }
  state.counters["nodes"] =
      benchmark::Counter(static_cast<double>(nodes),
                         benchmark::Counter::kAvgIterations);
  state.counters["tt_hit_rate"] =
      probes == 0 ? 0.0
                  : static_cast<double>(hits) / static_cast<double>(probes);
}
BENCHMARK(BM_WorstCaseEngine);

void BM_WorstCaseReference(benchmark::State& state) {
  const core::SignatureIndex& index = OptIndex();
  for (auto _ : state) {
    auto strategy = core::MakeStrategy(core::StrategyKind::kLookahead2);
    benchmark::DoNotOptimize(
        core::ReferenceWorstCaseInteractions(index, *strategy));
  }
}
BENCHMARK(BM_WorstCaseReference);

// One full OPT-driven inference session (engine-backed OptimalStrategy,
// transposition tables warm across the session's SelectNext calls).
void BM_OptimalSession(benchmark::State& state) {
  const core::SignatureIndex& index = OptIndex();
  core::JoinPredicate goal;
  goal.Set(0);
  core::InferenceOptions options;
  options.record_trace = false;
  for (auto _ : state) {
    core::OptimalStrategy opt;
    core::GoalOracle oracle{goal};
    auto result = core::RunInference(index, opt, oracle, options);
    JINFER_CHECK(result.ok(), "inference");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OptimalSession);

void BM_StrategySelection(benchmark::State& state) {
  auto inst = MakeInstance(50, 100);
  auto index = core::SignatureIndex::Build(inst.r, inst.p);
  JINFER_CHECK(index.ok(), "build");
  core::InferenceState st(*index);
  auto kind = static_cast<core::StrategyKind>(state.range(0));
  auto strategy = core::MakeStrategy(kind, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->SelectNext(st));
  }
  state.SetLabel(core::StrategyKindName(kind));
}
BENCHMARK(BM_StrategySelection)
    ->Arg(static_cast<int>(core::StrategyKind::kBottomUp))
    ->Arg(static_cast<int>(core::StrategyKind::kTopDown))
    ->Arg(static_cast<int>(core::StrategyKind::kLookahead1))
    ->Arg(static_cast<int>(core::StrategyKind::kLookahead2));

void BM_FullInferenceTD(benchmark::State& state) {
  auto inst = MakeInstance(static_cast<size_t>(state.range(0)), 100);
  auto index = core::SignatureIndex::Build(inst.r, inst.p);
  JINFER_CHECK(index.ok(), "build");
  core::JoinPredicate goal;
  goal.Set(0);
  core::InferenceOptions options;
  options.record_trace = false;
  for (auto _ : state) {
    auto strategy = core::MakeStrategy(core::StrategyKind::kTopDown);
    core::GoalOracle oracle{goal};
    auto result = core::RunInference(*index, *strategy, oracle, options);
    JINFER_CHECK(result.ok(), "inference");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullInferenceTD)->Arg(50)->Arg(100)->Arg(200);

void BM_ConsistencyCheck(benchmark::State& state) {
  auto inst = MakeInstance(100, 100);
  auto index = core::SignatureIndex::Build(inst.r, inst.p);
  JINFER_CHECK(index.ok(), "build");
  core::JoinPredicate goal;
  goal.Set(1);
  core::Sample sample;
  for (core::ClassId c = 0; c < index->num_classes(); ++c) {
    sample.push_back({c, index->Selects(goal, c) ? core::Label::kPositive
                                                 : core::Label::kNegative});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::IsConsistent(*index, sample));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sample.size()));
}
BENCHMARK(BM_ConsistencyCheck);

void BM_NonNullableEnumeration(benchmark::State& state) {
  auto inst = MakeInstance(50, 100);
  auto index = core::SignatureIndex::Build(inst.r, inst.p);
  JINFER_CHECK(index.ok(), "build");
  for (auto _ : state) {
    auto preds = core::NonNullablePredicates(*index);
    JINFER_CHECK(preds.ok(), "closure");
    benchmark::DoNotOptimize(preds);
  }
}
BENCHMARK(BM_NonNullableEnumeration);

void BM_Dpll3Sat(benchmark::State& state) {
  util::Rng rng(42);
  int vars = static_cast<int>(state.range(0));
  sat::Cnf cnf =
      sat::Random3Cnf(vars, static_cast<size_t>(vars * 4.3), rng);
  for (auto _ : state) {
    sat::DpllSolver solver;
    benchmark::DoNotOptimize(solver.Solve(cnf));
  }
}
BENCHMARK(BM_Dpll3Sat)->Arg(10)->Arg(20)->Arg(30);

void BM_SemijoinConsistency(benchmark::State& state) {
  util::Rng rng(42);
  sat::Cnf phi =
      sat::Random3Cnf(static_cast<int>(state.range(0)),
                      static_cast<size_t>(state.range(0) * 4), rng);
  auto reduced = semi::ReduceFrom3Sat(phi);
  JINFER_CHECK(reduced.ok(), "reduction");
  auto inst = semi::SemijoinInstance::Build(reduced->r, reduced->p);
  JINFER_CHECK(inst.ok(), "instance");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        semi::CheckConsistencySat(*inst, reduced->sample));
  }
}
BENCHMARK(BM_SemijoinConsistency)->Arg(6)->Arg(10);

// The contract instrumented sites rely on (util/failpoint.h): a disarmed
// FailpointHit is one relaxed atomic load — production code pays nothing
// for carrying the chaos hooks. Compare against BM_FailpointArmedUntripped
// (armed registry, point that never fires) to see the slow-path cost that
// arming turns on.
void BM_FailpointDisarmed(benchmark::State& state) {
  util::Failpoints::Reset();
  for (auto _ : state) {
    util::Status s = util::FailpointHit("store.put.fsync");
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_FailpointDisarmed);

void BM_FailpointArmedUntripped(benchmark::State& state) {
  JINFER_CHECK(util::Failpoints::Arm("bench.never", "prob:0").ok(), "arm");
  for (auto _ : state) {
    util::Status s = util::FailpointHit("bench.never");
    benchmark::DoNotOptimize(s);
  }
  util::Failpoints::Reset();
}
BENCHMARK(BM_FailpointArmedUntripped);

// --- obs layer (DESIGN.md §13) ------------------------------------------
//
// The cost contract every instrumented hot path relies on, priced the same
// way the failpoint pair above prices chaos hooks. Disarmed: one relaxed
// load of the enable flag and nothing else (a JINFER_NO_METRICS build
// removes even that — the call compiles to void). Armed counter inc: one
// relaxed fetch_add on this thread's cache-line-padded shard — the ≤5 ns
// bar each Inc call site is budgeted against; the Threads(8) variant shows
// the shards keep concurrent writers contention-free. Histogram record:
// two fetch_adds (bucket + sum) behind one bit_width.

void BM_MetricsDisarmed(benchmark::State& state) {
  static obs::Counter& counter =
      obs::Registry::Global().counter("jinfer_bench_disarmed_total");
  if (state.thread_index() == 0) obs::SetMetricsEnabled(false);
  for (auto _ : state) {
    counter.Inc();
    benchmark::DoNotOptimize(&counter);
  }
  if (state.thread_index() == 0) obs::SetMetricsEnabled(true);
}
BENCHMARK(BM_MetricsDisarmed);

void BM_MetricsCounterInc(benchmark::State& state) {
  static obs::Counter& counter =
      obs::Registry::Global().counter("jinfer_bench_counter_total");
  for (auto _ : state) {
    counter.Inc();
    benchmark::DoNotOptimize(&counter);
  }
}
BENCHMARK(BM_MetricsCounterInc)->Threads(1)->Threads(8);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  static obs::Histogram& histogram =
      obs::Registry::Global().histogram("jinfer_bench_histogram_nanos");
  uint64_t v = 1;
  for (auto _ : state) {
    histogram.Record(v);
    v = (v + 1237) & 0xFFFFF;  // Walk the buckets, near-free arithmetic.
    benchmark::DoNotOptimize(&histogram);
  }
}
BENCHMARK(BM_MetricsHistogramRecord);

}  // namespace
}  // namespace jinfer

BENCHMARK_MAIN();
