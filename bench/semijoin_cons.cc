// §6 / Theorem 6.1 — semijoin consistency is NP-complete. The paper proves
// it and stops; this bench makes the hardness observable:
//
//   1. scaling of CONS⋉ decision time on 3SAT-reduction instances as the
//      formula grows (through the hard clause/variable ratio ~4.27), with
//      DPLL search statistics;
//   2. the equijoin consistency check on comparable instance sizes, for
//      contrast (PTIME, §3.1);
//   3. the heuristic interactive semijoin inference (§7 future work) on
//      small instances.

#include <cstdio>

#include "bench_common.h"
#include "core/consistency.h"
#include "core/signature_index.h"
#include "sat/random_cnf.h"
#include "semijoin/consistency.h"
#include "semijoin/interactive.h"
#include "semijoin/reduction_3sat.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace jinfer {
namespace {

void ReductionScaling() {
  std::printf("\nCONS⋉ on 3SAT-reduction instances "
              "(10 formulas per point, ratio 4.3)\n");
  std::printf("%s%s%s%s%s%s\n", util::PadRight("vars", 8).c_str(),
              util::PadLeft("clauses", 10).c_str(),
              util::PadLeft("sat%", 8).c_str(),
              util::PadLeft("mean ms", 12).c_str(),
              util::PadLeft("decisions", 12).c_str(),
              util::PadLeft("conflicts", 12).c_str());
  bench::PrintRule(62);

  util::Rng rng(bench::BaseSeed());
  // Ω of a reduction instance has (1+n)(1+2n) atoms; n = 10 → 231 is the
  // largest fitting the 256-atom predicate capacity.
  std::vector<int> var_counts = {4, 6, 8, 9, 10};
  for (int vars : var_counts) {
    size_t clauses = static_cast<size_t>(vars * 4.3);
    int sat_count = 0;
    double total_ms = 0;
    uint64_t decisions = 0, conflicts = 0;
    const int kFormulas = 10;
    for (int f = 0; f < kFormulas; ++f) {
      sat::Cnf phi = sat::Random3Cnf(vars, clauses, rng);
      auto reduced = semi::ReduceFrom3Sat(phi);
      JINFER_CHECK(reduced.ok(), "reduction");
      auto inst = semi::SemijoinInstance::Build(reduced->r, reduced->p);
      JINFER_CHECK(inst.ok(), "instance");
      util::Stopwatch watch;
      semi::ConsistencyResult result =
          semi::CheckConsistencySat(*inst, reduced->sample);
      total_ms += watch.ElapsedSeconds() * 1e3;
      sat_count += result.consistent ? 1 : 0;
      decisions += result.stats.decisions;
      conflicts += result.stats.conflicts;
    }
    std::printf("%s%s%s%s%s%s\n",
                util::PadRight(util::StrFormat("%d", vars), 8).c_str(),
                util::PadLeft(util::StrFormat("%zu", clauses), 10).c_str(),
                util::PadLeft(util::StrFormat("%d", sat_count * 10), 8)
                    .c_str(),
                util::PadLeft(util::StrFormat("%.3f", total_ms / kFormulas),
                              12)
                    .c_str(),
                util::PadLeft(util::StrFormat("%llu",
                                              static_cast<unsigned long long>(
                                                  decisions / kFormulas)),
                              12)
                    .c_str(),
                util::PadLeft(util::StrFormat("%llu",
                                              static_cast<unsigned long long>(
                                                  conflicts / kFormulas)),
                              12)
                    .c_str());
  }
}

void EquijoinContrast() {
  std::printf("\nEquijoin consistency (PTIME, §3.1) on random instances of "
              "growing size\n");
  std::printf("%s%s%s\n", util::PadRight("rows/side", 12).c_str(),
              util::PadLeft("classes", 10).c_str(),
              util::PadLeft("check ms", 12).c_str());
  bench::PrintRule(34);
  util::Rng rng(bench::BaseSeed() + 7);
  for (size_t rows : {50u, 100u, 200u, 400u}) {
    std::vector<rel::Row> r_rows, p_rows;
    for (size_t i = 0; i < rows; ++i) {
      r_rows.push_back({rng.NextInRange(0, 99), rng.NextInRange(0, 99),
                        rng.NextInRange(0, 99)});
      p_rows.push_back({rng.NextInRange(0, 99), rng.NextInRange(0, 99),
                        rng.NextInRange(0, 99)});
    }
    auto r = rel::Relation::Make("R", {"A1", "A2", "A3"}, std::move(r_rows));
    auto p = rel::Relation::Make("P", {"B1", "B2", "B3"}, std::move(p_rows));
    auto index = core::SignatureIndex::Build(*r, *p, bench::BenchIndexOptions());
    JINFER_CHECK(index.ok(), "index");
    // Label everything per a random goal, then check consistency.
    core::JoinPredicate goal;
    goal.Set(rng.NextBelow(9));
    core::Sample sample;
    for (core::ClassId c = 0; c < index->num_classes(); ++c) {
      sample.push_back({c, index->Selects(goal, c)
                               ? core::Label::kPositive
                               : core::Label::kNegative});
    }
    util::Stopwatch watch;
    bool consistent = core::IsConsistent(*index, sample);
    double ms = watch.ElapsedSeconds() * 1e3;
    JINFER_CHECK(consistent, "goal labeling must be consistent");
    std::printf("%s%s%s\n",
                util::PadRight(util::StrFormat("%zu", rows), 12).c_str(),
                util::PadLeft(util::StrFormat("%zu", index->num_classes()),
                              10)
                    .c_str(),
                util::PadLeft(util::StrFormat("%.3f", ms), 12).c_str());
  }
}

void InteractiveSemijoin() {
  std::printf("\nHeuristic interactive semijoin inference (§7 extension)\n");
  std::printf("%s%s%s%s\n", util::PadRight("rows", 8).c_str(),
              util::PadLeft("interactions", 14).c_str(),
              util::PadLeft("SAT calls", 12).c_str(),
              util::PadLeft("ms", 10).c_str());
  bench::PrintRule(44);
  util::Rng rng(bench::BaseSeed() + 13);
  for (size_t rows : {6u, 10u, 14u, 18u}) {
    std::vector<rel::Row> r_rows, p_rows;
    for (size_t i = 0; i < rows; ++i) {
      r_rows.push_back({rng.NextInRange(0, 4), rng.NextInRange(0, 4)});
      p_rows.push_back({rng.NextInRange(0, 4), rng.NextInRange(0, 4)});
    }
    auto r = rel::Relation::Make("R", {"A1", "A2"}, std::move(r_rows));
    auto p = rel::Relation::Make("P", {"B1", "B2"}, std::move(p_rows));
    auto inst = semi::SemijoinInstance::Build(*r, *p);
    JINFER_CHECK(inst.ok(), "instance");
    core::JoinPredicate goal;
    goal.Set(rng.NextBelow(4));
    semi::GoalSemijoinOracle oracle(*inst, goal);
    util::Stopwatch watch;
    auto result = semi::RunSemijoinInference(*inst, oracle);
    double ms = watch.ElapsedSeconds() * 1e3;
    JINFER_CHECK(result.ok(), "inference: %s",
                 result.status().ToString().c_str());
    JINFER_CHECK(inst->EquivalentOnInstance(result->predicate, goal),
                 "not equivalent");
    std::printf(
        "%s%s%s%s\n",
        util::PadRight(util::StrFormat("%zu", rows), 8).c_str(),
        util::PadLeft(util::StrFormat("%zu", result->num_interactions), 14)
            .c_str(),
        util::PadLeft(util::StrFormat("%llu",
                                      static_cast<unsigned long long>(
                                          result->sat_calls)),
                      12)
            .c_str(),
        util::PadLeft(util::StrFormat("%.2f", ms), 10).c_str());
  }
}

}  // namespace
}  // namespace jinfer

int main() {
  using namespace jinfer;
  bench::PrintBanner(
      "Section 6 — intractability of semijoin consistency (CONS⋉)",
      "Theorem 6.1: CONS⋉ is NP-complete (no figure in the paper; this "
      "bench exhibits the SAT-shaped cost curve and the PTIME equijoin "
      "contrast)");
  ReductionScaling();
  EquijoinContrast();
  InteractiveSemijoin();
  return 0;
}
