// Ablation: lookahead depth k ∈ {1, 2, 3}.
//
// §4.4 argues k = 2 is "a good trade-off between keeping a relatively low
// computation time and minimizing the number of interactions" and that the
// strategy approaches the (exponential) optimum as k grows. This bench
// sweeps k and reports interactions vs selection time so the trade-off is
// visible; EG (the §7 probabilistic-lookahead direction, expected-gain
// scoring) is included as a fourth column.

#include "bench_common.h"
#include "core/signature_index.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace {

void RunConfig(const workload::SyntheticConfig& config, uint64_t seed) {
  auto inst = workload::GenerateSynthetic(config, seed);
  JINFER_CHECK(inst.ok(), "generation");
  auto index = core::SignatureIndex::Build(inst->r, inst->p, bench::BenchIndexOptions());
  JINFER_CHECK(index.ok(), "index");

  size_t goals_per_size = bench::FullMode() ? 4 : 2;
  auto by_size = workload::SampleGoalsBySize(*index, goals_per_size,
                                             seed ^ 0xab1e);
  JINFER_CHECK(by_size.ok(), "goals");

  std::vector<core::StrategyKind> kinds = {
      core::StrategyKind::kLookahead1, core::StrategyKind::kLookahead2,
      core::StrategyKind::kLookahead3, core::StrategyKind::kExpectedGain};

  std::printf("\nconfig %s  (classes=%zu)\n", config.ToString().c_str(),
              index->num_classes());
  std::string header = util::PadRight("goal size", 12);
  for (auto kind : kinds) {
    header += util::PadLeft(std::string(core::StrategyKindName(kind)) +
                                " int/ms",
                            16);
  }
  std::printf("%s\n", header.c_str());
  bench::PrintRule(header.size());

  for (const auto& [size, goals] : *by_size) {
    if (size > 3) continue;
    std::string line = util::PadRight(util::StrFormat("%zu", size), 12);
    for (auto kind : kinds) {
      auto stats =
          workload::MeasureStrategyOverGoals(*index, goals, kind, 1, seed);
      JINFER_CHECK(stats.ok(), "measure: %s",
                   stats.status().ToString().c_str());
      line += util::PadLeft(util::StrFormat("%.1f/%.1f",
                                            stats->mean_interactions,
                                            stats->mean_seconds * 1e3),
                            16);
    }
    std::printf("%s\n", line.c_str());
  }
}

void OptimalFloor(uint64_t seed) {
  // §4.1's exponential minimax strategy on an instance small enough to
  // afford it: the floor every practical strategy is judged against.
  workload::SyntheticConfig config{2, 2, 20, 8};
  auto inst = workload::GenerateSynthetic(config, seed);
  JINFER_CHECK(inst.ok(), "generation");
  auto index = core::SignatureIndex::Build(inst->r, inst->p, bench::BenchIndexOptions());
  JINFER_CHECK(index.ok(), "index");
  auto by_size = workload::SampleGoalsBySize(*index, 2, seed);
  JINFER_CHECK(by_size.ok(), "goals");

  std::vector<core::StrategyKind> kinds = {
      core::StrategyKind::kOptimal, core::StrategyKind::kLookahead2,
      core::StrategyKind::kLookahead1, core::StrategyKind::kTopDown};

  std::printf("\nOptimal floor, config %s (classes=%zu)\n",
              config.ToString().c_str(), index->num_classes());
  std::string header = util::PadRight("goal size", 12);
  for (auto kind : kinds) {
    header += util::PadLeft(core::StrategyKindName(kind), 10);
  }
  std::printf("%s  (mean interactions)\n", header.c_str());
  bench::PrintRule(header.size() + 22);
  for (const auto& [size, goals] : *by_size) {
    std::string line = util::PadRight(util::StrFormat("%zu", size), 12);
    for (auto kind : kinds) {
      auto stats =
          workload::MeasureStrategyOverGoals(*index, goals, kind, 1, seed);
      JINFER_CHECK(stats.ok(), "measure");
      line += util::PadLeft(util::StrFormat("%.1f", stats->mean_interactions),
                            10);
    }
    std::printf("%s\n", line.c_str());
  }

  // Worst case over ALL goal behaviors (the adversarial-oracle measure, not
  // a mean over sampled goals): the minimax value is the floor, and each
  // strategy's gap above it is its §4.4 distance from optimality. The
  // delta-frame engine makes this affordable inside the quick bench.
  core::MinimaxEngine engine(*index, bench::BenchMinimaxOptions());
  core::InferenceState fresh(*index);
  size_t optimum = engine.Value(fresh);
  std::string worst_line =
      util::StrFormat("worst case  %s=%zu (minimax floor)",
                      core::StrategyKindName(core::StrategyKind::kOptimal),
                      optimum);
  for (auto kind : kinds) {
    if (kind == core::StrategyKind::kOptimal) continue;
    auto strategy = core::MakeStrategy(kind);
    size_t worst = core::WorstCaseInteractions(*index, *strategy);
    worst_line += util::StrFormat("  %s=%zu (+%zu)",
                                  core::StrategyKindName(kind), worst,
                                  worst - optimum);
  }
  std::printf("%s\n", worst_line.c_str());
  std::printf("%s\n", bench::OptEngineCountersLine(engine.counters()).c_str());
}

}  // namespace
}  // namespace jinfer

int main() {
  using namespace jinfer;
  bench::PrintBanner(
      "Ablation — lookahead depth (L1S / L2S / L3S) and expected-gain",
      "§4.4: deeper lookahead trades time for fewer interactions; k=2 is "
      "the paper's sweet spot; LkS→optimal as k→#informative tuples");
  bench::ApplyBenchThreadKnob();
  uint64_t seed = bench::BaseSeed();
  RunConfig({2, 3, 30, 30}, seed);
  RunConfig({3, 3, 50, 100}, seed + 1);
  OptimalFloor(seed + 2);
  return 0;
}
