// Figure 6 (a) and (b): number of interactions for the five TPC-H goal
// joins under every strategy, at the small and large scale points.
//
// The paper reports (SF=1 / SF=100000, best strategies): Join 1: 2, Join 2:
// 2, Join 3: 2, Join 4: 4 / 3, Join 5: 25 / 12. Absolute values depend on
// the instance content; the shape to check is (i) size-1 joins need only a
// handful of labels, (ii) the size-2 join (Join 5) needs the most, and
// (iii) TD/L2S dominate BU/RND.

#include "bench_common.h"
#include "core/signature_index.h"
#include "workload/tpch.h"

namespace jinfer {
namespace {

void RunScale(const workload::TpchScale& scale, uint64_t seed) {
  auto db = workload::GenerateTpch(scale, seed);
  JINFER_CHECK(db.ok(), "tpch generation: %s",
               db.status().ToString().c_str());

  std::vector<bench::GridRow> rows;
  for (const auto& join : workload::PaperTpchJoins(*db)) {
    auto index = core::SignatureIndex::Build(*join.r, *join.p, bench::BenchIndexOptions());
    JINFER_CHECK(index.ok(), "index: %s",
                 index.status().ToString().c_str());
    auto goal = index->omega().PredicateFromNames(join.equalities);
    JINFER_CHECK(goal.ok(), "goal: %s", goal.status().ToString().c_str());
    std::string label = util::StrFormat(
        "Join %d (size %zu, |D|=%.1e)", join.number, goal->Count(),
        static_cast<double>(index->num_tuples()));
    rows.push_back(bench::MeasureRow(label, *index, {*goal}, 1, seed));
  }
  bench::PrintGrid(
      util::StrFormat("Number of interactions, scale %s", scale.name.c_str()),
      rows, bench::Measure::kInteractions);
}

}  // namespace
}  // namespace jinfer

int main() {
  using namespace jinfer;
  bench::PrintBanner(
      "Figure 6 (a,b) — TPC-H: number of interactions per goal join",
      "Fig. 6a (SF=1): J1..J3 ~2, J4 ~4, J5 ~25 int.; Fig. 6b (SF=1e5): "
      "J4 ~3, J5 ~12; TD/L2S best, BU/RND trail on larger joins");
  RunScale(workload::MiniScaleA(), bench::BaseSeed());
  RunScale(workload::MiniScaleB(), bench::BaseSeed() + 1);
  return 0;
}
