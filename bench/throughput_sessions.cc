// Session-runtime throughput (google-benchmark): how many complete
// inference sessions per second the SessionManager sustains as the worker
// count grows, with every session resolving its SignatureIndex through a
// shared IndexCache.
//
// The workload is the runtime's target shape: many users, few distinct
// instances — kSessions sessions round-robin over kInstances synthetic
// instances, so all but the first request per instance hit the cache
// (steady-state hit rate ≥ 99%; reported as the cache_hit_rate counter
// alongside index_builds). Thread count is the benchmark Arg; results are
// deterministic per session regardless of it, so only throughput moves.
//
// CI merges this binary's JSON output into BENCH_core.json next to
// micro_core's (see bench/README.md):
//   throughput_sessions --benchmark_format=json \
//     --benchmark_out=BENCH_runtime.json

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/oracle.h"
#include "core/strategy.h"
#include "runtime/index_cache.h"
#include "runtime/session.h"
#include "runtime/session_manager.h"
#include "util/check.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace {

constexpr size_t kInstances = 8;
constexpr size_t kSessions = 1024;

/// The shared instance catalog (distinct content, equal shape). Built once;
/// the benches fingerprint and serve them repeatedly.
const std::vector<workload::SyntheticInstance>& Instances() {
  static const std::vector<workload::SyntheticInstance>* instances = [] {
    auto* v = new std::vector<workload::SyntheticInstance>;
    for (size_t i = 0; i < kInstances; ++i) {
      auto inst = workload::GenerateSynthetic({3, 3, 40, 8}, 9000 + i);
      JINFER_CHECK(inst.ok(), "generation");
      v->push_back(std::move(inst).ValueOrDie());
    }
    return v;
  }();
  return *instances;
}

/// Session s of the workload: instance round-robin, goal alternating over
/// the first two attribute pairs, TD strategy (deterministic and cheap —
/// the bench stresses the runtime, not the strategy).
runtime::SessionJob MakeJob(runtime::IndexCache& cache, size_t s) {
  const workload::SyntheticInstance& inst = Instances()[s % kInstances];
  runtime::SessionJob job;
  job.make = [&cache, &inst]() -> util::Result<runtime::Session> {
    JINFER_ASSIGN_OR_RETURN(auto index, cache.GetOrBuild(inst.r, inst.p));
    return runtime::Session(
        std::move(index),
        core::MakeStrategy(core::StrategyKind::kTopDown));
  };
  job.oracle = std::make_unique<core::GoalOracle>(
      core::JoinPredicate::Singleton(s % 2));
  return job;
}

// Sessions/sec (items_per_second) over the worker count (Arg). The cache
// persists across iterations: the first iteration pays kInstances builds,
// every later lookup hits, so cache_hit_rate converges towards 1 from
// 1 - kInstances/kSessions ≈ 0.992.
void BM_ThroughputSessions(benchmark::State& state) {
  runtime::IndexCache cache;
  runtime::SessionManager::Options options;
  options.threads = static_cast<int>(state.range(0));
  options.steps_per_slice = 8;
  runtime::SessionManager manager(options);

  for (auto _ : state) {
    std::vector<runtime::SessionJob> jobs;
    jobs.reserve(kSessions);
    for (size_t s = 0; s < kSessions; ++s) jobs.push_back(MakeJob(cache, s));
    auto results = manager.RunAll(std::move(jobs));
    JINFER_CHECK(results.size() == kSessions, "lost sessions");
    for (const auto& result : results) {
      JINFER_CHECK(result.ok(), "session failed: %s",
                   result.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(results);
  }

  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSessions));
  runtime::IndexCacheStats stats = cache.stats();
  state.counters["cache_hit_rate"] = stats.HitRate();
  state.counters["index_builds"] = static_cast<double>(stats.builds);
}
BENCHMARK(BM_ThroughputSessions)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Cost of the cache hot path alone: fingerprint two relations and return
// the resident shared_ptr. This is the per-session overhead the runtime
// adds on top of the inference itself.
void BM_IndexCacheHit(benchmark::State& state) {
  const workload::SyntheticInstance& inst = Instances().front();
  runtime::IndexCache cache;
  JINFER_CHECK(cache.GetOrBuild(inst.r, inst.p).ok(), "warm-up build");
  for (auto _ : state) {
    auto index = cache.GetOrBuild(inst.r, inst.p);
    benchmark::DoNotOptimize(index);
  }
  state.counters["cache_hit_rate"] = cache.stats().HitRate();
}
BENCHMARK(BM_IndexCacheHit);

}  // namespace
}  // namespace jinfer

BENCHMARK_MAIN();
