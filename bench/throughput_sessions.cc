// Session-runtime throughput (google-benchmark): how many complete
// inference sessions per second the SessionManager sustains as the worker
// count grows, with every session resolving its SignatureIndex through a
// shared IndexCache.
//
// The workload is the runtime's target shape: many users, few distinct
// instances — kSessions sessions round-robin over kInstances synthetic
// instances, so all but the first request per instance hit the cache
// (steady-state hit rate ≥ 99%; reported as the cache_hit_rate counter
// alongside index_builds). Thread count is the benchmark Arg; results are
// deterministic per session regardless of it, so only throughput moves.
//
// Cold-start variants (ISSUE 4): BM_ColdStartRebuild vs BM_ColdStartMmap
// measure what a process restart costs with and without the persistent
// store on the (3,3,1000,100) instance — the acceptance bar is mmap ≥10×
// faster than rebuild — and BM_ThroughputSessionsTiered re-runs the
// session workload over a bounded, store-backed cache (memory-tier hit
// rate and mapped loads reported as counters; the bar is throughput
// within 5% of the all-in-memory BM_ThroughputSessions at ≥99% memory-
// tier hits).
//
// CI merges this binary's JSON output into BENCH_core.json next to
// micro_core's (see bench/README.md):
//   throughput_sessions --benchmark_format=json \
//     --benchmark_out=BENCH_runtime.json

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/oracle.h"
#include "obs/metrics.h"
#include "core/strategy.h"
#include "relational/csv.h"
#include "runtime/index_cache.h"
#include "runtime/session.h"
#include "runtime/session_manager.h"
#include "server/client.h"
#include "server/server.h"
#include "store/fingerprint.h"
#include "store/index_store.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace {

constexpr size_t kInstances = 8;
constexpr size_t kSessions = 1024;

/// The shared instance catalog (distinct content, equal shape). Built once;
/// the benches fingerprint and serve them repeatedly.
const std::vector<workload::SyntheticInstance>& Instances() {
  static const std::vector<workload::SyntheticInstance>* instances = [] {
    auto* v = new std::vector<workload::SyntheticInstance>;
    for (size_t i = 0; i < kInstances; ++i) {
      auto inst = workload::GenerateSynthetic({3, 3, 40, 8}, 9000 + i);
      JINFER_CHECK(inst.ok(), "generation");
      v->push_back(std::move(inst).ValueOrDie());
    }
    return v;
  }();
  return *instances;
}

/// Session s of the workload: instance round-robin, goal alternating over
/// the first two attribute pairs, TD strategy (deterministic and cheap —
/// the bench stresses the runtime, not the strategy).
runtime::SessionJob MakeJob(runtime::IndexCache& cache, size_t s) {
  const workload::SyntheticInstance& inst = Instances()[s % kInstances];
  runtime::SessionJob job;
  job.make = [&cache, &inst]() -> util::Result<runtime::Session> {
    JINFER_ASSIGN_OR_RETURN(auto index, cache.GetOrBuild(inst.r, inst.p));
    return runtime::Session(
        std::move(index),
        core::MakeStrategy(core::StrategyKind::kTopDown));
  };
  job.oracle = std::make_unique<core::GoalOracle>(
      core::JoinPredicate::Singleton(s % 2));
  return job;
}

// Sessions/sec (items_per_second) over the worker count (Arg). The cache
// persists across iterations: the first iteration pays kInstances builds,
// every later lookup hits, so cache_hit_rate converges towards 1 from
// 1 - kInstances/kSessions ≈ 0.992.
void BM_ThroughputSessions(benchmark::State& state) {
  runtime::IndexCache cache;
  runtime::SessionManager::Options options;
  options.threads = static_cast<int>(state.range(0));
  options.steps_per_slice = 8;
  runtime::SessionManager manager(options);

  for (auto _ : state) {
    std::vector<runtime::SessionJob> jobs;
    jobs.reserve(kSessions);
    for (size_t s = 0; s < kSessions; ++s) jobs.push_back(MakeJob(cache, s));
    auto results = manager.RunAll(std::move(jobs));
    JINFER_CHECK(results.size() == kSessions, "lost sessions");
    for (const auto& result : results) {
      JINFER_CHECK(result.ok(), "session failed: %s",
                   result.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(results);
  }

  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSessions));
  runtime::IndexCacheStats stats = cache.stats();
  state.counters["cache_hit_rate"] = stats.HitRate();
  state.counters["index_builds"] = static_cast<double>(stats.builds);
}
BENCHMARK(BM_ThroughputSessions)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// --- Persistent-store benches (ISSUE 4) --------------------------------

/// A store in a per-process temp directory shared by the benches below
/// (the files are a few hundred KB; the directory is removed at exit).
std::shared_ptr<store::IndexStore> BenchStore() {
  static std::shared_ptr<store::IndexStore>* st = [] {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("jinfer_bench_store_" + std::to_string(::getpid())))
            .string();
    auto opened = store::IndexStore::Open(dir);
    JINFER_CHECK(opened.ok(), "bench store open");
    static struct Cleanup {
      std::string dir;
      ~Cleanup() {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
      }
    } cleanup{dir};
    return new std::shared_ptr<store::IndexStore>(
        std::make_shared<store::IndexStore>(std::move(opened).ValueOrDie()));
  }();
  return *st;
}

/// The ISSUE 4 acceptance instance: (3,3,1000,100).
const workload::SyntheticInstance& ColdStartInstance() {
  static const workload::SyntheticInstance* inst = [] {
    auto generated = workload::GenerateSynthetic({3, 3, 1000, 100}, 424242);
    JINFER_CHECK(generated.ok(), "cold-start instance");
    return new workload::SyntheticInstance(std::move(generated).ValueOrDie());
  }();
  return *inst;
}

// Restart cost without the store: the full SignatureIndex build a fresh
// process pays per instance (serial — restart is a cold, single-request
// path; JINFER_BENCH_THREADS speeds it but the mmap comparison is against
// the paper's canonical serial build).
void BM_ColdStartRebuild(benchmark::State& state) {
  const workload::SyntheticInstance& inst = ColdStartInstance();
  for (auto _ : state) {
    auto index = core::SignatureIndex::Build(inst.r, inst.p,
                                             {.compress = true, .threads = 1});
    JINFER_CHECK(index.ok(), "build");
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_ColdStartRebuild);

// Restart cost with the store: mmap + header/checksum validation + the
// O(#classes) signature-map rebuild, through the same IndexStore::Load
// the runtime uses. Acceptance: ≥10× faster than BM_ColdStartRebuild.
void BM_ColdStartMmap(benchmark::State& state) {
  const workload::SyntheticInstance& inst = ColdStartInstance();
  auto st = BenchStore();
  const store::InstanceFingerprint fp =
      store::FingerprintInstance(inst.r, inst.p, true);
  if (!st->Contains(fp)) {
    auto built = core::SignatureIndex::Build(inst.r, inst.p);
    JINFER_CHECK(built.ok() && st->Put(*built, fp).ok(), "persist");
  }
  uint64_t file_bytes = 0;
  for (auto _ : state) {
    auto mapped = st->Load(fp);
    JINFER_CHECK(mapped.ok(), "mmap load: %s",
                 mapped.status().ToString().c_str());
    file_bytes = (*mapped)->num_classes();  // Touch the result.
    benchmark::DoNotOptimize(mapped);
  }
  state.counters["classes"] = static_cast<double>(file_bytes);
}
BENCHMARK(BM_ColdStartMmap);

// The BM_ThroughputSessions workload over the production cache shape:
// bounded memory tier (default capacity) + persistent store. The store is
// pre-populated, so the first touch of every instance is a mapped load —
// a restarted server, not a first boot. Bars: memory_tier_hit_rate ≥ 0.99
// and sessions/sec within 5% of the all-in-memory BM_ThroughputSessions.
void BM_ThroughputSessionsTiered(benchmark::State& state) {
  auto st = BenchStore();
  for (const workload::SyntheticInstance& inst : Instances()) {
    const store::InstanceFingerprint fp =
        store::FingerprintInstance(inst.r, inst.p, true);
    if (!st->Contains(fp)) {
      auto built = core::SignatureIndex::Build(inst.r, inst.p);
      JINFER_CHECK(built.ok() && st->Put(*built, fp).ok(), "persist");
    }
  }

  runtime::IndexCacheOptions cache_options;
  cache_options.store = st;  // Default (bounded) capacity.
  runtime::IndexCache cache(cache_options);
  runtime::SessionManager::Options options;
  options.threads = static_cast<int>(state.range(0));
  options.steps_per_slice = 8;
  runtime::SessionManager manager(options);

  for (auto _ : state) {
    std::vector<runtime::SessionJob> jobs;
    jobs.reserve(kSessions);
    for (size_t s = 0; s < kSessions; ++s) jobs.push_back(MakeJob(cache, s));
    auto results = manager.RunAll(std::move(jobs));
    JINFER_CHECK(results.size() == kSessions, "lost sessions");
    for (const auto& result : results) {
      JINFER_CHECK(result.ok(), "session failed: %s",
                   result.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(results);
  }

  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSessions));
  runtime::IndexCacheStats stats = cache.stats();
  state.counters["memory_tier_hit_rate"] = stats.HitRate();
  state.counters["mapped_loads"] = static_cast<double>(stats.mapped_loads);
  state.counters["index_builds"] = static_cast<double>(stats.builds);
}
BENCHMARK(BM_ThroughputSessionsTiered)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// The tiered workload under a deterministic fault schedule (DESIGN.md §10):
// a fifth of mapped loads and a tenth of builds fail transiently, so
// sessions ride the degraded paths — store-load fallback to build,
// per-fingerprint failure backoff, factory retries — while the manager
// keeps every job alive (unlimited transient retries). The number to watch
// is sessions/sec against BM_ThroughputSessionsTiered: the price of
// surviving a flaky store, with the retry/shed counters alongside.
void BM_ThroughputSessionsDegraded(benchmark::State& state) {
  auto st = BenchStore();
  for (const workload::SyntheticInstance& inst : Instances()) {
    const store::InstanceFingerprint fp =
        store::FingerprintInstance(inst.r, inst.p, true);
    if (!st->Contains(fp)) {
      auto built = core::SignatureIndex::Build(inst.r, inst.p);
      JINFER_CHECK(built.ok() && st->Put(*built, fp).ok(), "persist");
    }
  }

  runtime::SessionManager::Options options;
  options.threads = static_cast<int>(state.range(0));
  options.steps_per_slice = 8;
  options.cache_options.store = st;
  options.cache_options.failure_backoff_base = std::chrono::milliseconds(1);
  options.cache_options.failure_backoff_max = std::chrono::milliseconds(20);
  options.factory_retry.max_attempts = 0;  // Faults are transient: persist.
  options.factory_retry.base_backoff = std::chrono::microseconds(200);
  options.factory_retry.max_backoff = std::chrono::microseconds(5000);
  runtime::SessionManager manager(options);

  JINFER_CHECK(util::Failpoints::ArmFromSpec(
                   "store.load.mmap=prob:0.2:7;cache.build=prob:0.1:11")
                   .ok(),
               "arm schedule");

  for (auto _ : state) {
    std::vector<runtime::SessionJob> jobs;
    jobs.reserve(kSessions);
    for (size_t s = 0; s < kSessions; ++s) {
      jobs.push_back(MakeJob(manager.cache(), s));
    }
    auto results = manager.RunAll(std::move(jobs));
    JINFER_CHECK(results.size() == kSessions, "lost sessions");
    for (const auto& result : results) {
      JINFER_CHECK(result.ok(), "session failed under transient faults: %s",
                   result.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(results);
  }
  util::Failpoints::Reset();

  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSessions));
  runtime::IndexCacheStats cache_stats = manager.cache().stats();
  runtime::SessionManager::Stats manager_stats = manager.stats();
  state.counters["degraded_builds"] =
      static_cast<double>(cache_stats.degraded_builds);
  state.counters["fail_fast"] = static_cast<double>(cache_stats.fail_fast);
  state.counters["factory_retries"] =
      static_cast<double>(manager_stats.factory_retries);
  state.counters["store_load_retries"] =
      static_cast<double>(st->stats().load_retries);
}
BENCHMARK(BM_ThroughputSessionsDegraded)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime();

// --- Serving front end (DESIGN.md §11) ---------------------------------

// End-to-end sessions/sec through the network server as the concurrent
// connection count grows (Arg): real sockets on loopback, the full frame
// protocol, the event loop + worker handoff, and the shared tiered cache
// underneath. Each connection runs complete sessions back to back (open,
// question/answer loop, close); per-session wall latency is recorded into
// an obs::Histogram and reported as latency_p50_ms / latency_p99_ms next
// to items_per_second — the same log₂ buckets and interpolated quantile
// definition the server's own StatsOk summaries use (DESIGN.md §13), so
// the bench number and the production dashboard number agree by
// construction. Record is wait-free, so the tenant threads share one
// histogram with no bench-side mutex.
void BM_ServerThroughput(benchmark::State& state) {
  const int connections = static_cast<int>(state.range(0));
  constexpr size_t kSessionsPerConn = 8;

  // Precompute what the clients need: CSV uploads, local twin indexes for
  // the oracle, one goal per instance.
  struct Upload {
    server::OpenSessionBody body;
    std::shared_ptr<const core::SignatureIndex> index;
    core::JoinPredicate goal;
  };
  static const std::vector<Upload>* uploads = [] {
    auto* v = new std::vector<Upload>;
    for (const workload::SyntheticInstance& inst : Instances()) {
      Upload up;
      up.body.strategy = "TD";
      up.body.compress = 1;
      up.body.r_name = inst.r.schema().relation_name();
      up.body.p_name = inst.p.schema().relation_name();
      up.body.r_csv = rel::WriteRelationCsv(inst.r);
      up.body.p_csv = rel::WriteRelationCsv(inst.p);
      auto index = core::SignatureIndex::Build(inst.r, inst.p);
      JINFER_CHECK(index.ok(), "twin index");
      up.index = std::make_shared<const core::SignatureIndex>(
          std::move(index).ValueOrDie());
      up.goal = core::JoinPredicate::Singleton(v->size() % 2);
      v->push_back(std::move(up));
    }
    return v;
  }();

  server::ServerOptions options;
  options.workers = 4;
  options.max_connections = 64;
  server::Server srv(options);
  JINFER_CHECK(srv.Start().ok(), "server start");

  obs::Histogram latency_nanos;

  for (auto _ : state) {
    std::vector<std::thread> tenants;
    tenants.reserve(connections);
    for (int c = 0; c < connections; ++c) {
      tenants.emplace_back([&, c] {
        auto client = server::Client::Connect("127.0.0.1", srv.port());
        JINFER_CHECK(client.ok(), "connect");
        for (size_t s = 0; s < kSessionsPerConn; ++s) {
          const Upload& up =
              (*uploads)[(static_cast<size_t>(c) + s) % uploads->size()];
          core::GoalOracle oracle(up.goal);
          const auto begin = std::chrono::steady_clock::now();
          JINFER_CHECK(client->OpenSession(up.body).ok(), "open");
          while (true) {
            auto question = client->NextQuestion();
            JINFER_CHECK(question.ok(), "question");
            if (question->finished) break;
            const core::Label label =
                oracle.LabelClass(*up.index, question->class_id);
            JINFER_CHECK(
                client->Answer(label == core::Label::kPositive).ok(),
                "answer");
          }
          JINFER_CHECK(client->CloseSession().ok(), "close");
          latency_nanos.Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - begin)
                  .count()));
        }
      });
    }
    for (auto& t : tenants) t.join();
  }

  srv.RequestDrain();
  JINFER_CHECK(srv.Wait().ok(), "drain");

  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(connections) *
                          static_cast<int64_t>(kSessionsPerConn));
  const obs::HistogramSnapshot latency = latency_nanos.Snapshot();
  if (latency.count > 0) {
    state.counters["latency_p50_ms"] = latency.Quantile(0.5) / 1e6;
    state.counters["latency_p99_ms"] = latency.Quantile(0.99) / 1e6;
  }
  server::StatsOkBody stats = srv.Stats();
  state.counters["frames_read"] = static_cast<double>(stats.frames_read);
  state.counters["cache_builds"] = static_cast<double>(stats.cache_builds);
}
BENCHMARK(BM_ServerThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Cost of the cache hot path alone: fingerprint two relations and return
// the resident shared_ptr. This is the per-session overhead the runtime
// adds on top of the inference itself.
void BM_IndexCacheHit(benchmark::State& state) {
  const workload::SyntheticInstance& inst = Instances().front();
  runtime::IndexCache cache;
  JINFER_CHECK(cache.GetOrBuild(inst.r, inst.p).ok(), "warm-up build");
  for (auto _ : state) {
    auto index = cache.GetOrBuild(inst.r, inst.p);
    benchmark::DoNotOptimize(index);
  }
  state.counters["cache_hit_rate"] = cache.stats().HitRate();
}
BENCHMARK(BM_IndexCacheHit);

}  // namespace
}  // namespace jinfer

BENCHMARK_MAIN();
