// Figure 7 (a)-(l): synthetic datasets — number of interactions and
// inference time per strategy, for goal predicates grouped by size 0-4,
// over the paper's six generator configurations.
//
// Paper reference points (best strategy per goal size, Table 1): size 0 →
// BU with 1 interaction; size 1 → L2S with 4-5; size 2 → TD with 8-15;
// sizes 3/4 → L2S with 7-14. The paper averages over ALL non-nullable
// goals and 100 runs; this bench pools a bounded number of goals per size
// over several fresh instances per configuration (goal sizes 3-4 only
// exist on instances whose data happens to produce ≥3 coincidental matches
// in one tuple, hence the x/y instance counts in the row labels).

#include "bench_common.h"

namespace jinfer {
namespace {

void RunConfig(const workload::SyntheticConfig& config, uint64_t seed) {
  bench::SyntheticSweepOptions sweep;
  sweep.instances = bench::FullMode() ? 20 : 8;
  sweep.goals_per_size = bench::FullMode() ? 6 : 3;

  std::string where;
  std::vector<bench::GridRow> rows =
      bench::SyntheticBySizeGrid(config, sweep, seed, &where);
  bench::PrintGrid("Number of interactions, " + where, rows,
                   bench::Measure::kInteractions);
  bench::PrintGrid("Inference time (seconds), " + where, rows,
                   bench::Measure::kSeconds);
}

}  // namespace
}  // namespace jinfer

int main() {
  using namespace jinfer;
  bench::PrintBanner(
      "Figure 7 (a-l) — synthetic datasets: interactions and time by goal "
      "size",
      "Best per size (paper): 0→BU(1); 1→L2S(4-5); 2→TD(8-15); 3→L2S(7-14); "
      "4→L2S(8-13). Size-2 goals are the hardest (mid-lattice).");
  uint64_t seed = bench::BaseSeed();
  for (const auto& config : workload::PaperSyntheticConfigs()) {
    RunConfig(config, seed++);
  }
  return 0;
}
