// Figure 6 (c) and (d): total inference time (seconds) for the five TPC-H
// goal joins under every strategy, at both scale points.
//
// Paper (Python, 2.9 GHz i7): BU/TD/RND in the milliseconds, L1S up to
// ~3.5 s, L2S up to ~73.6 s (SF=1, Join 5). Ours is C++ on class-compressed
// state, so absolute numbers are far smaller; the shape to check is the
// time ordering BU ≈ TD ≈ RND ≪ L1S ≪ L2S, with Joins 4/5 the most
// expensive.

#include "bench_common.h"
#include "core/signature_index.h"
#include "workload/tpch.h"

namespace jinfer {
namespace {

void RunScale(const workload::TpchScale& scale, uint64_t seed) {
  auto db = workload::GenerateTpch(scale, seed);
  JINFER_CHECK(db.ok(), "tpch generation: %s",
               db.status().ToString().c_str());

  std::vector<bench::GridRow> rows;
  for (const auto& join : workload::PaperTpchJoins(*db)) {
    auto index = core::SignatureIndex::Build(*join.r, *join.p, bench::BenchIndexOptions());
    JINFER_CHECK(index.ok(), "index: %s",
                 index.status().ToString().c_str());
    auto goal = index->omega().PredicateFromNames(join.equalities);
    JINFER_CHECK(goal.ok(), "goal: %s", goal.status().ToString().c_str());
    std::string label = util::StrFormat("Join %d (%zu classes)", join.number,
                                        index->num_classes());
    rows.push_back(bench::MeasureRow(label, *index, {*goal}, 1, seed));
  }
  bench::PrintGrid(
      util::StrFormat("Inference time (seconds), scale %s",
                      scale.name.c_str()),
      rows, bench::Measure::kSeconds);
}

}  // namespace
}  // namespace jinfer

int main() {
  using namespace jinfer;
  bench::PrintBanner(
      "Figure 6 (c,d) — TPC-H: inference time per goal join",
      "Fig. 6c/6d: BU/TD/RND ~1ms; L1S 0.006-3.5s; L2S 0.03-73.6s "
      "(Python); expect the same ordering at much smaller absolutes");
  RunScale(workload::MiniScaleA(), bench::BaseSeed());
  RunScale(workload::MiniScaleB(), bench::BaseSeed() + 1);
  return 0;
}
