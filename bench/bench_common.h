// Shared plumbing for the paper-reproduction bench binaries: environment
// knobs, table printing, and the strategy-grid runner.
//
// Every bench prints (a) the paper's reported values where the paper gives
// them, and (b) our measured values, so EXPERIMENTS.md can be regenerated
// by running `for b in build/bench/*; do $b; done`.
//
// Knobs (environment variables):
//   JINFER_BENCH_FULL=1      heavier settings (more goals, more RND runs)
//   JINFER_BENCH_SEED=<n>    base seed (default 20140324 — EDBT'14 day 1)
//   JINFER_BENCH_THREADS=<n> worker threads (default 1; 0 = one per
//                            hardware thread). Applies to the
//                            signature-index build (BenchIndexOptions) AND
//                            to the OPT benches: benches that run OPT or
//                            the worst-case adversary call
//                            ApplyBenchThreadKnob(), which routes the knob
//                            to core::SetOptimalSearchThreads so the
//                            minimax engine root-splits over that many
//                            workers. Every measured result (indexes,
//                            interaction counts, minimax values, picks) is
//                            identical for every thread count — the knob
//                            only moves wall time.

#ifndef JINFER_BENCH_BENCH_COMMON_H_
#define JINFER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/lattice.h"
#include "core/signature_index.h"
#include "core/strategies/optimal_strategy.h"
#include "core/strategy.h"
#include "util/check.h"
#include "util/string_util.h"
#include "workload/experiment.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace bench {

inline bool FullMode() {
  const char* v = std::getenv("JINFER_BENCH_FULL");
  return v != nullptr && std::string(v) != "0";
}

inline uint64_t BaseSeed() {
  const char* v = std::getenv("JINFER_BENCH_SEED");
  if (v == nullptr) return 20140324;
  return static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
}

inline int BenchThreads() {
  const char* v = std::getenv("JINFER_BENCH_THREADS");
  if (v == nullptr) return 1;
  return static_cast<int>(std::strtol(v, nullptr, 10));
}

/// Index options every bench should build with: compression on, thread
/// count from JINFER_BENCH_THREADS. The built index is identical for every
/// thread count, so measured interaction counts never depend on the knob.
inline core::SignatureIndexOptions BenchIndexOptions() {
  core::SignatureIndexOptions options;
  options.threads = BenchThreads();
  return options;
}

/// Routes JINFER_BENCH_THREADS to the minimax engine's root-split worker
/// count. Call once from main() in any bench that runs OPT or the
/// worst-case adversary; minimax values and picks are thread-count
/// invariant, so only wall time changes.
inline void ApplyBenchThreadKnob() {
  core::SetOptimalSearchThreads(BenchThreads());
}

/// Fraction of transposition-table probes that hit, in [0, 1].
inline double TtHitRate(uint64_t hits, uint64_t probes) {
  return probes == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(probes);
}

/// One-line summary of a minimax-engine run's search effort, shared by the
/// OPT floor blocks of table1_summary and ablation_lookahead.
inline std::string OptEngineCountersLine(const core::MinimaxCounters& c) {
  return util::StrFormat(
      "OPT engine: %llu nodes, %llu TT probes, %.1f%% TT hits, "
      "%llu deepening rounds, %d worker(s)",
      static_cast<unsigned long long>(c.nodes),
      static_cast<unsigned long long>(c.tt_probes),
      100.0 * TtHitRate(c.tt_hits, c.tt_probes),
      static_cast<unsigned long long>(c.deepening_rounds), BenchThreads());
}

/// Engine options every OPT bench should search with: root-split workers
/// from JINFER_BENCH_THREADS.
inline core::MinimaxOptions BenchMinimaxOptions() {
  core::MinimaxOptions options;
  options.threads = BenchThreads();
  return options;
}

/// Runs per strategy: deterministic strategies need one; RND is averaged.
inline size_t RunsFor(core::StrategyKind kind) {
  if (kind == core::StrategyKind::kRandom) return FullMode() ? 20 : 5;
  return 1;
}

struct GridRow {
  std::string label;
  std::vector<workload::StrategyStats> stats;  // One per strategy.
};

/// Measures all paper strategies for one (index, goal set) cell.
inline GridRow MeasureRow(const std::string& label,
                          const core::SignatureIndex& index,
                          const std::vector<core::JoinPredicate>& goals,
                          size_t runs_per_goal_scale, uint64_t seed) {
  GridRow row;
  row.label = label;
  for (core::StrategyKind kind : core::PaperStrategies()) {
    auto stats = workload::MeasureStrategyOverGoals(
        index, goals, kind, RunsFor(kind) * runs_per_goal_scale, seed);
    JINFER_CHECK(stats.ok(), "%s / %s failed: %s", label.c_str(),
                 core::StrategyKindName(kind),
                 stats.status().ToString().c_str());
    row.stats.push_back(*stats);
  }
  return row;
}

inline void PrintRule(size_t width) {
  std::string rule(width, '-');
  std::printf("%s\n", rule.c_str());
}

/// Prints a grid: one line per row, one column per paper strategy.
/// `value` selects interactions or seconds.
enum class Measure { kInteractions, kSeconds };

inline void PrintGrid(const std::string& title,
                      const std::vector<GridRow>& rows, Measure measure) {
  std::printf("\n%s\n", title.c_str());
  size_t label_width = 24;
  for (const auto& row : rows) {
    label_width = std::max(label_width, row.label.size() + 2);
  }
  std::string header = util::PadRight("", label_width);
  for (core::StrategyKind kind : core::PaperStrategies()) {
    header += util::PadLeft(core::StrategyKindName(kind), 10);
  }
  std::printf("%s\n", header.c_str());
  PrintRule(header.size());
  for (const auto& row : rows) {
    std::string line = util::PadRight(row.label, label_width);
    for (const auto& s : row.stats) {
      if (measure == Measure::kInteractions) {
        line += util::PadLeft(util::StrFormat("%.1f", s.mean_interactions),
                              10);
      } else {
        line += util::PadLeft(util::StrFormat("%.4f", s.mean_seconds), 10);
      }
    }
    std::printf("%s\n", line.c_str());
  }
}

/// Pooled per-goal-size stats for a synthetic configuration, averaged over
/// several generated instances (the paper averages over 100 runs; quick
/// mode uses fewer). Returns one GridRow per goal size 0..4 that occurred.
struct SyntheticSweepOptions {
  size_t instances = 8;
  size_t goals_per_size = 3;
};

inline std::vector<GridRow> SyntheticBySizeGrid(
    const workload::SyntheticConfig& config,
    const SyntheticSweepOptions& sweep, uint64_t seed,
    std::string* where_line) {
  struct Pool {
    std::vector<workload::StrategyStats> sums;
    size_t cells = 0;
  };
  std::map<size_t, Pool> pools;
  uint64_t total_tuples = 0;
  size_t total_classes = 0;
  double total_ratio = 0;

  for (size_t i = 0; i < sweep.instances; ++i) {
    auto inst = workload::GenerateSynthetic(config, seed + i * 101);
    JINFER_CHECK(inst.ok(), "generation");
    auto index = core::SignatureIndex::Build(inst->r, inst->p,
                                             BenchIndexOptions());
    JINFER_CHECK(index.ok(), "index");
    total_tuples += index->num_tuples();
    total_classes += index->num_classes();
    total_ratio += core::JoinRatio(*index);
    auto by_size = workload::SampleGoalsBySize(*index, sweep.goals_per_size,
                                               seed + i);
    JINFER_CHECK(by_size.ok(), "goals");
    for (const auto& [size, goals] : *by_size) {
      if (size > 4) continue;
      Pool& pool = pools[size];
      size_t k = 0;
      for (core::StrategyKind kind : core::PaperStrategies()) {
        auto stats = workload::MeasureStrategyOverGoals(
            *index, goals, kind, RunsFor(kind), seed + i);
        JINFER_CHECK(stats.ok(), "measure");
        if (pool.sums.size() <= k) pool.sums.push_back(*stats);
        else {
          pool.sums[k].mean_interactions += stats->mean_interactions;
          pool.sums[k].mean_seconds += stats->mean_seconds;
          pool.sums[k].runs += stats->runs;
        }
        ++k;
      }
      ++pool.cells;
    }
  }

  if (where_line != nullptr) {
    *where_line = util::StrFormat(
        "config %s   |D|=%llu   mean classes=%.1f   mean join ratio=%.3f   "
        "(%zu instances)",
        config.ToString().c_str(),
        static_cast<unsigned long long>(total_tuples / sweep.instances),
        static_cast<double>(total_classes) /
            static_cast<double>(sweep.instances),
        total_ratio / static_cast<double>(sweep.instances),
        sweep.instances);
  }

  std::vector<GridRow> rows;
  for (auto& [size, pool] : pools) {
    GridRow row;
    row.label = util::StrFormat("|goal|=%zu (%zu/%zu inst.)", size,
                                pool.cells, sweep.instances);
    for (auto& s : pool.sums) {
      s.mean_interactions /= static_cast<double>(pool.cells);
      s.mean_seconds /= static_cast<double>(pool.cells);
      row.stats.push_back(s);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

inline void PrintBanner(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", experiment);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("Mode: %s  (JINFER_BENCH_FULL=1 for the heavier sweep)\n",
              FullMode() ? "FULL" : "quick");
  std::printf("Base seed: %llu\n",
              static_cast<unsigned long long>(BaseSeed()));
  std::printf("==============================================================="
              "=\n");
}

}  // namespace bench
}  // namespace jinfer

#endif  // JINFER_BENCH_BENCH_COMMON_H_
