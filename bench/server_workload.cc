// Standalone serving-front-end workload driver — the CI server-chaos
// client (DESIGN.md §11.3, .github/workflows/ci.yml server-chaos job).
//
// Spawns an in-process Server, then drives N concurrent tenant loops over
// real loopback sockets, each running complete sessions back to back and
// checking every completed transcript bit-for-bit against an in-process
// baseline. Under --chaos the tenants also hang up on purpose mid-session
// (random connection kills), and the process expects to run under an
// ambient JINFER_FAILPOINTS socket-edge schedule — faults may abort
// sessions (the tenant retries with a fresh one), but any divergence in a
// COMPLETED transcript is corruption and exits 1. The run finishes with a
// graceful drain and verifies nothing leaked: zero open connections, zero
// hosted sessions.
//
//   server_workload [--connections=N] [--sessions=N] [--workers=N] [--chaos]
//
// Exit 0: every transcript matched and the drain came back clean.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/oracle.h"
#include "core/signature_index.h"
#include "core/strategy.h"
#include "relational/csv.h"
#include "runtime/session.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "workload/synthetic.h"

namespace jinfer {
namespace {

struct Config {
  int connections = 4;
  int sessions_per_connection = 8;
  int workers = 4;
  bool chaos = false;
};

/// A completed transcript: (class, label) steps plus the final predicate.
struct Transcript {
  std::vector<std::pair<uint32_t, bool>> steps;
  core::JoinPredicate predicate;
  uint64_t num_interactions = 0;

  bool operator==(const Transcript& other) const {
    return steps == other.steps && predicate == other.predicate &&
           num_interactions == other.num_interactions;
  }
};

struct Tenant {
  server::OpenSessionBody body;
  std::shared_ptr<const core::SignatureIndex> index;
  core::JoinPredicate goal;
  Transcript baseline;
};

/// The tenant catalog: a few small synthetic instances, deterministic
/// strategies, one goal each — sessions short enough to survive a fault
/// schedule, transcripts long enough to catch corruption.
std::vector<Tenant> MakeTenants(size_t n) {
  std::vector<Tenant> tenants;
  for (size_t i = 0; i < n; ++i) {
    auto inst = workload::GenerateSynthetic({3, 3, 24, 6}, 7000 + i % 4);
    JINFER_CHECK(inst.ok(), "instance generation");
    Tenant t;
    t.body.strategy = i % 2 == 0 ? "BU" : "TD";
    t.body.compress = 1;
    t.body.r_name = inst->r.schema().relation_name();
    t.body.p_name = inst->p.schema().relation_name();
    t.body.r_csv = rel::WriteRelationCsv(inst->r);
    t.body.p_csv = rel::WriteRelationCsv(inst->p);
    auto index = core::SignatureIndex::Build(inst->r, inst->p);
    JINFER_CHECK(index.ok(), "twin index");
    t.index = std::make_shared<const core::SignatureIndex>(
        std::move(index).ValueOrDie());
    t.goal = core::JoinPredicate::Singleton(i % 2);

    // The fault-free in-process baseline, with any ambient schedule paused.
    util::Failpoints::PauseScope paused;
    runtime::Session session(
        t.index, core::MakeStrategy(
                     i % 2 == 0 ? core::StrategyKind::kBottomUp
                                : core::StrategyKind::kTopDown));
    core::GoalOracle oracle(t.goal);
    while (auto q = session.NextQuestion()) {
      const core::Label label = oracle.LabelClass(*t.index, *q);
      t.baseline.steps.emplace_back(static_cast<uint32_t>(*q),
                                    label == core::Label::kPositive);
      JINFER_CHECK(session.Answer(label).ok(), "baseline answer");
    }
    t.baseline.predicate = session.Result().predicate;
    t.baseline.num_interactions = session.num_interactions();
    tenants.push_back(std::move(t));
  }
  return tenants;
}

/// One attempt: any transport failure or deliberate hangup aborts it; the
/// caller retries with a fresh session (determinism makes that equivalent).
util::Result<Transcript> DriveOnce(uint16_t port, const Tenant& tenant,
                                   std::mt19937* killer) {
  JINFER_ASSIGN_OR_RETURN(server::Client client,
                          server::Client::Connect("127.0.0.1", port));
  JINFER_RETURN_NOT_OK(client.OpenSession(tenant.body).status());
  core::GoalOracle oracle(tenant.goal);
  Transcript out;
  while (true) {
    if (killer != nullptr && (*killer)() % 7 == 0) {
      return util::Status::Unavailable("self-inflicted connection kill");
    }
    JINFER_ASSIGN_OR_RETURN(server::QuestionBody question,
                            client.NextQuestion());
    if (question.finished) break;
    const core::Label label = oracle.LabelClass(*tenant.index,
                                                question.class_id);
    const bool positive = label == core::Label::kPositive;
    out.steps.emplace_back(question.class_id, positive);
    JINFER_RETURN_NOT_OK(client.Answer(positive).status());
  }
  JINFER_ASSIGN_OR_RETURN(server::CloseOkBody closed, client.CloseSession());
  out.predicate = server::PredicateFromWords(closed.predicate_words);
  out.num_interactions = closed.num_interactions;
  return out;
}

int Run(const Config& config) {
  std::printf("server_workload: %d connection(s) x %d session(s), "
              "%d worker(s), chaos=%s, JINFER_FAILPOINTS=%s\n",
              config.connections, config.sessions_per_connection,
              config.workers, config.chaos ? "on" : "off",
              std::getenv("JINFER_FAILPOINTS") != nullptr
                  ? std::getenv("JINFER_FAILPOINTS")
                  : "(unset)");

  const std::vector<Tenant> tenants =
      MakeTenants(static_cast<size_t>(config.connections));

  server::ServerOptions options;
  options.workers = config.workers;
  server::Server srv(options);
  JINFER_CHECK(srv.Start().ok(), "server start");

  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> retried{0};
  std::atomic<uint64_t> corrupted{0};
  std::vector<std::thread> threads;
  threads.reserve(tenants.size());
  for (size_t i = 0; i < tenants.size(); ++i) {
    threads.emplace_back([&, i] {
      std::mt19937 killer(static_cast<uint32_t>(0xc0ffee + i));
      for (int s = 0; s < config.sessions_per_connection; ++s) {
        bool done = false;
        for (int attempt = 0; attempt < 1000 && !done; ++attempt) {
          auto result = DriveOnce(srv.port(), tenants[i],
                                  config.chaos ? &killer : nullptr);
          if (!result.ok()) {
            retried.fetch_add(1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1 + attempt % 5));
            continue;
          }
          done = true;
          completed.fetch_add(1);
          if (!(*result == tenants[i].baseline)) {
            corrupted.fetch_add(1);
            std::fprintf(stderr,
                         "tenant %zu session %d: transcript diverged from "
                         "baseline (%zu vs %zu steps)\n",
                         i, s, result->steps.size(),
                         tenants[i].baseline.steps.size());
          }
        }
        JINFER_CHECK(done, "tenant %zu: no attempt completed in 1000 tries",
                     i);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Graceful drain: stop accepting, let the (now idle) connections close,
  // and verify nothing leaked.
  {
    util::Failpoints::PauseScope paused;
    srv.RequestDrain();
    const util::Status drained = srv.Wait();
    JINFER_CHECK(drained.ok(), "drain failed: %s",
                 drained.ToString().c_str());
  }
  server::StatsOkBody stats = srv.Stats();
  std::printf(
      "completed %llu session(s) (%llu retried attempt(s)); server saw "
      "%llu frames, %llu aborted session(s), %llu deadline close(s)\n",
      static_cast<unsigned long long>(completed.load()),
      static_cast<unsigned long long>(retried.load()),
      static_cast<unsigned long long>(stats.frames_read),
      static_cast<unsigned long long>(stats.sessions_aborted),
      static_cast<unsigned long long>(stats.deadline_closes));

  int rc = 0;
  if (corrupted.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu corrupted transcript(s)\n",
                 static_cast<unsigned long long>(corrupted.load()));
    rc = 1;
  }
  if (stats.sessions_open != 0 || stats.connections_open != 0) {
    std::fprintf(stderr,
                 "FAIL: leak after drain (%llu session(s), %llu "
                 "connection(s) still open)\n",
                 static_cast<unsigned long long>(stats.sessions_open),
                 static_cast<unsigned long long>(stats.connections_open));
    rc = 1;
  }
  if (rc == 0) {
    std::printf("OK: all transcripts bit-identical to baseline; drain "
                "clean\n");
  }
  return rc;
}

}  // namespace
}  // namespace jinfer

int main(int argc, char** argv) {
  jinfer::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto intval = [&](const char* prefix, int* out) {
      if (arg.rfind(prefix, 0) == 0) {
        *out = std::atoi(arg.c_str() + std::strlen(prefix));
        return true;
      }
      return false;
    };
    if (intval("--connections=", &config.connections)) continue;
    if (intval("--sessions=", &config.sessions_per_connection)) continue;
    if (intval("--workers=", &config.workers)) continue;
    if (arg == "--chaos") {
      config.chaos = true;
      continue;
    }
    std::fprintf(stderr,
                 "usage: %s [--connections=N] [--sessions=N] [--workers=N] "
                 "[--chaos]\n",
                 argv[0]);
    return 2;
  }
  return jinfer::Run(config);
}
