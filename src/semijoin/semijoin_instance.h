// Semijoin instances (§6): R ⋉θ P with examples labeled on R rows.
//
// For a fixed R row t, whether θ selects t depends only on the set of
// signatures {T(t, t′) | t′ ∈ P}: t ∈ R ⋉θ P iff θ ⊆ σ for some σ in the
// set. Only the ⊆-maximal signatures matter, so the instance precomputes
// those per row.

#ifndef JINFER_SEMIJOIN_SEMIJOIN_INSTANCE_H_
#define JINFER_SEMIJOIN_SEMIJOIN_INSTANCE_H_

#include <vector>

#include "core/omega.h"
#include "core/types.h"
#include "relational/relation.h"
#include "util/result.h"

namespace jinfer {
namespace semi {

/// One labeled semijoin example: an R row with a +/− label.
struct RowExample {
  size_t r_row;
  core::Label label;
};

using RowSample = std::vector<RowExample>;

class SemijoinInstance {
 public:
  /// Precomputes the per-row maximal signature sets. Fails when Ω exceeds
  /// predicate capacity or either relation is empty.
  static util::Result<SemijoinInstance> Build(const rel::Relation& r,
                                              const rel::Relation& p);

  const core::Omega& omega() const { return omega_; }
  size_t num_rows() const { return row_signatures_.size(); }

  /// The ⊆-maximal signatures among {T(t_row, t′) | t′ ∈ P}.
  const std::vector<core::JoinPredicate>& MaximalSignatures(
      size_t row) const {
    return row_signatures_[row];
  }

  /// True iff row ∈ R ⋉θ P.
  bool Selects(const core::JoinPredicate& theta, size_t row) const;

  /// R ⋉θ P as sorted row indices.
  std::vector<size_t> Semijoin(const core::JoinPredicate& theta) const;

  /// True iff θ1 and θ2 produce the same semijoin result on this instance.
  bool EquivalentOnInstance(const core::JoinPredicate& theta1,
                            const core::JoinPredicate& theta2) const;

  /// True iff θ selects every positive and no negative example of the
  /// sample.
  bool ConsistentWith(const core::JoinPredicate& theta,
                      const RowSample& sample) const;

 private:
  core::Omega omega_;
  std::vector<std::vector<core::JoinPredicate>> row_signatures_;
};

}  // namespace semi
}  // namespace jinfer

#endif  // JINFER_SEMIJOIN_SEMIJOIN_INSTANCE_H_
