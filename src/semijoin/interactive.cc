#include "semijoin/interactive.h"

#include <optional>

namespace jinfer {
namespace semi {

util::Result<SemijoinInferenceResult> RunSemijoinInference(
    const SemijoinInstance& instance, SemijoinOracle& oracle) {
  SemijoinInferenceResult result;
  RowSample& sample = result.sample;
  std::vector<bool> labeled(instance.num_rows(), false);
  // Consistency only ever shrinks as the sample grows, so once a probe
  // fails for a row its label is forced for good — the row never becomes
  // informative again and needs no re-probing in later rounds.
  std::vector<bool> forced(instance.num_rows(), false);
  // The selection heuristic reads each row's maximal-signature count on
  // every outer-loop pass; cache the sizes once instead.
  std::vector<size_t> num_sigs(instance.num_rows());
  for (size_t row = 0; row < instance.num_rows(); ++row) {
    num_sigs[row] = instance.MaximalSignatures(row).size();
  }

  auto consistent_with = [&](size_t row, core::Label label) {
    sample.push_back(RowExample{row, label});
    bool ok = CheckConsistencySat(instance, sample).consistent;
    sample.pop_back();
    ++result.sat_calls;
    return ok;
  };

  while (true) {
    std::optional<size_t> pick;
    size_t pick_sigs = 0;
    for (size_t row = 0; row < instance.num_rows(); ++row) {
      if (labeled[row] || forced[row]) continue;
      if (!consistent_with(row, core::Label::kPositive)) {
        forced[row] = true;  // Certainly negative from here on.
        continue;
      }
      if (!consistent_with(row, core::Label::kNegative)) {
        forced[row] = true;  // Certainly positive from here on.
        continue;
      }
      size_t sigs = num_sigs[row];
      if (!pick || sigs < pick_sigs) {
        pick = row;
        pick_sigs = sigs;
      }
    }
    if (!pick) break;  // No informative row: halt.

    core::Label label = oracle.LabelRow(*pick);
    sample.push_back(RowExample{*pick, label});
    labeled[*pick] = true;
    ++result.num_interactions;

    if (!CheckConsistencySat(instance, sample).consistent) {
      return util::Status::InconsistentSample(
          "semijoin labels admit no consistent predicate");
    }
  }

  ConsistencyResult final = CheckConsistencySat(instance, sample);
  ++result.sat_calls;
  if (!final.consistent) {
    return util::Status::InconsistentSample(
        "semijoin labels admit no consistent predicate");
  }
  result.predicate = final.witness;
  return result;
}

}  // namespace semi
}  // namespace jinfer
