#include "semijoin/reduction_3sat.h"

#include "util/string_util.h"

namespace jinfer {
namespace semi {

namespace {

std::string ClauseId(size_t i) { return util::StrFormat("c%zu+", i + 1); }
std::string VarId(int v) { return util::StrFormat("x%d*", v); }

}  // namespace

util::Result<ReductionOutput> ReduceFrom3Sat(const sat::Cnf& formula) {
  const int n = formula.num_vars();
  const size_t k = formula.num_clauses();
  if (n == 0 || k == 0) {
    return util::Status::InvalidArgument(
        "reduction requires at least one variable and one clause");
  }
  for (const sat::Clause& clause : formula.clauses()) {
    if (clause.size() != 3) {
      return util::Status::InvalidArgument(
          "reduction requires exactly 3 literals per clause");
    }
    if (sat::VarOf(clause[0]) == sat::VarOf(clause[1]) ||
        sat::VarOf(clause[0]) == sat::VarOf(clause[2]) ||
        sat::VarOf(clause[1]) == sat::VarOf(clause[2])) {
      return util::Status::InvalidArgument(
          "reduction requires distinct variables within a clause");
    }
  }

  // Rφ(idR, A1..An).
  std::vector<std::string> r_attrs = {"idR"};
  for (int j = 1; j <= n; ++j) r_attrs.push_back(util::StrFormat("A%d", j));
  rel::Relation r;
  {
    JINFER_ASSIGN_OR_RETURN(rel::Schema schema,
                            rel::Schema::Make("R_phi", std::move(r_attrs)));
    r = rel::Relation(std::move(schema));
  }
  auto base_row = [n](rel::Value id) {
    rel::Row row = {std::move(id)};
    for (int j = 1; j <= n; ++j) row.emplace_back(int64_t{j});
    return row;
  };
  RowSample sample;
  for (size_t i = 0; i < k; ++i) {  // tR,i — positive examples.
    JINFER_RETURN_NOT_OK(r.AppendRow(base_row(ClauseId(i))));
    sample.push_back(RowExample{i, core::Label::kPositive});
  }
  JINFER_RETURN_NOT_OK(r.AppendRow(base_row("X")));  // t′R,0.
  sample.push_back(RowExample{k, core::Label::kNegative});
  for (int i = 1; i <= n; ++i) {  // t′R,i.
    JINFER_RETURN_NOT_OK(r.AppendRow(base_row(VarId(i))));
    sample.push_back(
        RowExample{k + static_cast<size_t>(i), core::Label::kNegative});
  }

  // Pφ(idP, B1t, B1f, ..., Bnt, Bnf).
  std::vector<std::string> p_attrs = {"idP"};
  for (int j = 1; j <= n; ++j) {
    p_attrs.push_back(util::StrFormat("B%dt", j));
    p_attrs.push_back(util::StrFormat("B%df", j));
  }
  rel::Relation p;
  {
    JINFER_ASSIGN_OR_RETURN(rel::Schema schema,
                            rel::Schema::Make("P_phi", std::move(p_attrs)));
    p = rel::Relation(std::move(schema));
  }
  // Column of Bjt is 1 + 2*(j-1); Bjf follows it.
  for (size_t i = 0; i < k; ++i) {
    for (sat::Literal lit : formula.clauses()[i]) {
      int v = sat::VarOf(lit);
      rel::Row row = {rel::Value(ClauseId(i))};
      for (int j = 1; j <= n; ++j) {
        if (j != v) {
          row.emplace_back(int64_t{j});  // Bjt
          row.emplace_back(int64_t{j});  // Bjf
        } else if (sat::IsPositive(lit)) {
          row.emplace_back(int64_t{j});   // Bjt = j
          row.emplace_back(rel::Null{});  // Bjf = ⊥
        } else {
          row.emplace_back(rel::Null{});  // Bjt = ⊥
          row.emplace_back(int64_t{j});   // Bjf = j
        }
      }
      JINFER_RETURN_NOT_OK(p.AppendRow(std::move(row)));
    }
  }
  {
    rel::Row row = {rel::Value("Y")};  // t′P,0.
    for (int j = 1; j <= n; ++j) {
      row.emplace_back(int64_t{j});
      row.emplace_back(int64_t{j});
    }
    JINFER_RETURN_NOT_OK(p.AppendRow(std::move(row)));
  }
  for (int i = 1; i <= n; ++i) {  // t′P,i.
    rel::Row row = {rel::Value(VarId(i))};
    for (int j = 1; j <= n; ++j) {
      if (j == i) {
        row.emplace_back(rel::Null{});
        row.emplace_back(rel::Null{});
      } else {
        row.emplace_back(int64_t{j});
        row.emplace_back(int64_t{j});
      }
    }
    JINFER_RETURN_NOT_OK(p.AppendRow(std::move(row)));
  }

  return ReductionOutput{std::move(r), std::move(p), std::move(sample)};
}

std::vector<bool> ValuationFromPredicate(const sat::Cnf& formula,
                                         const core::Omega& omega,
                                         const core::JoinPredicate& theta) {
  const int n = formula.num_vars();
  std::vector<bool> assignment(static_cast<size_t>(n) + 1, false);
  for (int v = 1; v <= n; ++v) {
    // Attribute Av is R column v; Bvt / Bvf are P columns 2v-1 / 2v.
    size_t av = static_cast<size_t>(v);
    bool has_t = theta.Test(omega.BitOf(av, static_cast<size_t>(2 * v - 1)));
    bool has_f = theta.Test(omega.BitOf(av, static_cast<size_t>(2 * v)));
    assignment[static_cast<size_t>(v)] = has_t || !has_f;
  }
  return assignment;
}

}  // namespace semi
}  // namespace jinfer
