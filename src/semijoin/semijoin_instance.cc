#include "semijoin/semijoin_instance.h"

#include <algorithm>

#include "core/signature_index.h"

namespace jinfer {
namespace semi {

namespace {

/// Keeps only the ⊆-maximal predicates of a deduplicated set.
std::vector<core::JoinPredicate> MaximalOnly(
    std::vector<core::JoinPredicate> sigs) {
  std::sort(sigs.begin(), sigs.end());
  sigs.erase(std::unique(sigs.begin(), sigs.end()), sigs.end());
  std::vector<core::JoinPredicate> out;
  for (size_t a = 0; a < sigs.size(); ++a) {
    bool maximal = true;
    for (size_t b = 0; b < sigs.size(); ++b) {
      if (a != b && sigs[a].IsStrictSubsetOf(sigs[b])) {
        maximal = false;
        break;
      }
    }
    if (maximal) out.push_back(sigs[a]);
  }
  return out;
}

}  // namespace

util::Result<SemijoinInstance> SemijoinInstance::Build(
    const rel::Relation& r, const rel::Relation& p) {
  JINFER_ASSIGN_OR_RETURN(core::SignatureIndex index,
                          core::SignatureIndex::Build(r, p));
  SemijoinInstance instance;
  instance.omega_ = index.omega();
  instance.row_signatures_.resize(r.num_rows());
  std::vector<core::JoinPredicate> sigs;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    sigs.clear();
    sigs.reserve(p.num_rows());
    for (size_t j = 0; j < p.num_rows(); ++j) {
      sigs.push_back(index.SignatureOfPair(i, j));
    }
    instance.row_signatures_[i] = MaximalOnly(std::move(sigs));
  }
  return instance;
}

bool SemijoinInstance::Selects(const core::JoinPredicate& theta,
                               size_t row) const {
  JINFER_CHECK(row < row_signatures_.size(), "row %zu out of range", row);
  for (const core::JoinPredicate& sig : row_signatures_[row]) {
    if (theta.IsSubsetOf(sig)) return true;
  }
  return false;
}

std::vector<size_t> SemijoinInstance::Semijoin(
    const core::JoinPredicate& theta) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < row_signatures_.size(); ++i) {
    if (Selects(theta, i)) out.push_back(i);
  }
  return out;
}

bool SemijoinInstance::EquivalentOnInstance(
    const core::JoinPredicate& theta1,
    const core::JoinPredicate& theta2) const {
  for (size_t i = 0; i < row_signatures_.size(); ++i) {
    if (Selects(theta1, i) != Selects(theta2, i)) return false;
  }
  return true;
}

bool SemijoinInstance::ConsistentWith(const core::JoinPredicate& theta,
                                      const RowSample& sample) const {
  for (const RowExample& ex : sample) {
    bool selected = Selects(theta, ex.r_row);
    if (ex.label == core::Label::kPositive && !selected) return false;
    if (ex.label == core::Label::kNegative && selected) return false;
  }
  return true;
}

}  // namespace semi
}  // namespace jinfer
