// CONS⋉ — semijoin consistency checking (§6).
//
// The problem is NP-complete (Theorem 6.1). The production decision
// procedure encodes it into CNF and runs the DPLL solver:
//
//   variable x_ω per atom ω ∈ Ω               (θ = {ω | x_ω true})
//   positive row t:  ∨_σ y_{t,σ} over t's maximal signatures σ, with
//                    y_{t,σ} → ¬x_ω for each ω ∉ σ     (θ ⊆ σ, Tseitin)
//   negative row t:  ∨_{ω ∉ σ} x_ω for each maximal signature σ of t
//                                                       (θ ⊈ σ)
//
// A brute-force enumerator over P(Ω) cross-validates the encoding in tests
// (only feasible for |Ω| ≤ ~24).

#ifndef JINFER_SEMIJOIN_CONSISTENCY_H_
#define JINFER_SEMIJOIN_CONSISTENCY_H_

#include <optional>

#include "sat/dpll.h"
#include "semijoin/semijoin_instance.h"

namespace jinfer {
namespace semi {

struct ConsistencyResult {
  bool consistent = false;
  /// A consistent semijoin predicate when one exists.
  core::JoinPredicate witness;
  sat::SolveStats stats;
};

/// Decides CONS⋉ via the SAT encoding.
ConsistencyResult CheckConsistencySat(const SemijoinInstance& instance,
                                      const RowSample& sample);

/// Reference decision by enumerating all θ ⊆ Ω; aborts for |Ω| > 24.
/// Returns the first consistent predicate in size-then-bit order, if any.
std::optional<core::JoinPredicate> CheckConsistencyBruteForce(
    const SemijoinInstance& instance, const RowSample& sample);

/// Extension (paper §7 future work): with a positive-only sample, decides
/// whether the consistent predicate θ is *maximally specific* — no strict
/// superset of θ also selects every positive example. Decided with one SAT
/// call on the complement. θ must itself be consistent with the positives.
bool IsMaximallySpecificForPositives(const SemijoinInstance& instance,
                                     const RowSample& positives,
                                     const core::JoinPredicate& theta);

}  // namespace semi
}  // namespace jinfer

#endif  // JINFER_SEMIJOIN_CONSISTENCY_H_
