// The appendix A.1 reduction: 3SAT ≤p CONS⋉ (proof of Theorem 6.1).
//
// Given a 3-CNF formula φ over variables x1..xn with clauses c1..ck, builds
// relations Rφ, Pφ and a sample Sφ such that φ is satisfiable iff
// (Rφ, Pφ, Sφ) ∈ CONS⋉. Construction (verbatim from the paper):
//
//   Rφ(idR, A1..An):
//     tR,i  (1 ≤ i ≤ k): idR = "c<i>+", Aj = j          — positive examples
//     t′R,0           : idR = "X",     Aj = j           — negative example
//     t′R,i (1 ≤ i ≤ n): idR = "x<i>*", Aj = j          — negative examples
//   Pφ(idP, B1t, B1f, ..., Bnt, Bnf):
//     tP,il (clause i, literal l on variable v): idP = "c<i>+";
//       Bjt = Bjf = j for j ≠ v; for j = v: the column matching the
//       literal's polarity holds v, the other holds ⊥ (NULL)
//     t′P,0: idP = "Y",     Bjt = Bjf = j
//     t′P,i: idP = "x<i>*", Bjt = Bjf = j for j ≠ i, ⊥ for j = i
//
// A consistent θ must contain (idR, idP) (else t′R,0 joins t′P,0) and, for
// each variable i, at least one of (Ai, Bit), (Ai, Bif) (else t′R,i joins
// t′P,i); the t/f choice per variable reads off a satisfying valuation.

#ifndef JINFER_SEMIJOIN_REDUCTION_3SAT_H_
#define JINFER_SEMIJOIN_REDUCTION_3SAT_H_

#include "relational/relation.h"
#include "sat/cnf.h"
#include "semijoin/semijoin_instance.h"
#include "util/result.h"

namespace jinfer {
namespace semi {

struct ReductionOutput {
  rel::Relation r;     ///< Rφ
  rel::Relation p;     ///< Pφ
  RowSample sample;    ///< Sφ (positives first, then negatives)
};

/// Builds (Rφ, Pφ, Sφ) from a CNF whose clauses all have exactly 3
/// literals over distinct variables. Fails otherwise.
util::Result<ReductionOutput> ReduceFrom3Sat(const sat::Cnf& formula);

/// Reads a satisfying valuation off a consistent semijoin predicate for a
/// reduction instance. A variable whose θ-atoms are single-polarity gets
/// that polarity; a variable carrying both polarity atoms can never appear
/// in a join witness tuple, so its value is irrelevant to the clause
/// witnesses and defaults to true.
std::vector<bool> ValuationFromPredicate(const sat::Cnf& formula,
                                         const core::Omega& omega,
                                         const core::JoinPredicate& theta);

}  // namespace semi
}  // namespace jinfer

#endif  // JINFER_SEMIJOIN_REDUCTION_3SAT_H_
