#include "semijoin/consistency.h"

#include <algorithm>

namespace jinfer {
namespace semi {

namespace {

/// Builds the CNF described in the header. Atom ω (bit b of Ω) maps to SAT
/// variable b+1; auxiliary selection variables follow.
sat::Cnf EncodeConsistency(const SemijoinInstance& instance,
                           const RowSample& sample) {
  const size_t omega_size = instance.omega().size();
  sat::Cnf cnf(static_cast<int>(omega_size));

  for (const RowExample& ex : sample) {
    const auto& sigs = instance.MaximalSignatures(ex.r_row);
    if (ex.label == core::Label::kPositive) {
      // ∨_σ y_σ ; y_σ → ¬x_ω for every ω outside σ.
      sat::Clause witness_clause;
      for (const core::JoinPredicate& sig : sigs) {
        int y = cnf.NewVar();
        witness_clause.push_back(y);
        for (size_t bit = 0; bit < omega_size; ++bit) {
          if (!sig.Test(bit)) {
            cnf.AddBinary(-y, -static_cast<int>(bit + 1));
          }
        }
      }
      // An empty witness clause (P empty) correctly yields UNSAT.
      cnf.AddClause(std::move(witness_clause));
    } else {
      // For every maximal signature σ: θ must escape σ somewhere.
      for (const core::JoinPredicate& sig : sigs) {
        sat::Clause escape;
        for (size_t bit = 0; bit < omega_size; ++bit) {
          if (!sig.Test(bit)) escape.push_back(static_cast<int>(bit + 1));
        }
        // σ = Ω gives the empty clause: the row is selected by every θ, so
        // a negative label is unsatisfiable — which is correct.
        cnf.AddClause(std::move(escape));
      }
    }
  }
  return cnf;
}

core::JoinPredicate PredicateFromModel(const std::vector<bool>& model,
                                       size_t omega_size) {
  core::JoinPredicate theta;
  for (size_t bit = 0; bit < omega_size; ++bit) {
    if (model[bit + 1]) theta.Set(bit);
  }
  return theta;
}

}  // namespace

ConsistencyResult CheckConsistencySat(const SemijoinInstance& instance,
                                      const RowSample& sample) {
  sat::Cnf cnf = EncodeConsistency(instance, sample);
  sat::DpllSolver solver;
  sat::SolveResult solved = solver.Solve(cnf);

  ConsistencyResult result;
  result.stats = solved.stats;
  result.consistent = solved.satisfiable;
  if (solved.satisfiable) {
    result.witness = PredicateFromModel(solved.assignment,
                                        instance.omega().size());
    JINFER_CHECK(instance.ConsistentWith(result.witness, sample),
                 "SAT witness fails direct verification");
  }
  return result;
}

std::optional<core::JoinPredicate> CheckConsistencyBruteForce(
    const SemijoinInstance& instance, const RowSample& sample) {
  const size_t omega_size = instance.omega().size();
  JINFER_CHECK(omega_size <= 24, "brute force limited to |Omega| <= 24");

  // Enumerate by popcount then numeric value so the most general consistent
  // predicate is found first.
  std::vector<uint32_t> masks(size_t{1} << omega_size);
  for (uint32_t m = 0; m < masks.size(); ++m) masks[m] = m;
  std::stable_sort(masks.begin(), masks.end(),
                   [](uint32_t a, uint32_t b) {
                     int ca = __builtin_popcount(a), cb = __builtin_popcount(b);
                     if (ca != cb) return ca < cb;
                     return a < b;
                   });

  for (uint32_t mask : masks) {
    core::JoinPredicate theta;
    for (size_t bit = 0; bit < omega_size; ++bit) {
      if ((mask >> bit) & 1) theta.Set(bit);
    }
    if (instance.ConsistentWith(theta, sample)) return theta;
  }
  return std::nullopt;
}

bool IsMaximallySpecificForPositives(const SemijoinInstance& instance,
                                     const RowSample& positives,
                                     const core::JoinPredicate& theta) {
  for (const RowExample& ex : positives) {
    JINFER_CHECK(ex.label == core::Label::kPositive,
                 "sample must be positive-only");
  }
  JINFER_CHECK(instance.ConsistentWith(theta, positives),
               "theta must be consistent with the positives");

  // SAT query: does some θ′ ⊋ θ select every positive?
  const size_t omega_size = instance.omega().size();
  sat::Cnf cnf = EncodeConsistency(instance, positives);
  // Force θ ⊆ θ′.
  for (size_t bit = 0; bit < omega_size; ++bit) {
    if (theta.Test(bit)) cnf.AddUnit(static_cast<int>(bit + 1));
  }
  // Force θ′ ≠ θ: some atom outside θ must be chosen.
  sat::Clause strict;
  for (size_t bit = 0; bit < omega_size; ++bit) {
    if (!theta.Test(bit)) strict.push_back(static_cast<int>(bit + 1));
  }
  cnf.AddClause(std::move(strict));

  sat::DpllSolver solver;
  return !solver.Solve(cnf).satisfiable;
}

}  // namespace semi
}  // namespace jinfer
