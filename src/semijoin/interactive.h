// Heuristic interactive inference of semijoin predicates — the paper's §7
// future-work direction ("design heuristics for the interactive inference
// of semijoins").
//
// Theorem 6.1 rules out a PTIME informativeness test, so informativeness is
// decided with two CONS⋉ SAT calls per candidate row: a row is informative
// iff both labelings keep the sample consistent. When no informative row
// remains, every consistent predicate classifies every row identically, so
// the returned witness is semijoin-equivalent to the user's goal on the
// instance — the analogue of the §3.3 guarantee, at exponential worst-case
// cost instead of PTIME.
//
// Row-selection heuristic: among informative rows, prefer the one with the
// fewest maximal signatures (its labels constrain θ through the fewest
// disjuncts, i.e. most directly), ties to the lowest row index.
//
// Consistency is monotone in the sample (adding examples only removes
// consistent predicates), so a row that fails either probe is forced and
// never re-probed; maximal-signature counts are cached once per session.

#ifndef JINFER_SEMIJOIN_INTERACTIVE_H_
#define JINFER_SEMIJOIN_INTERACTIVE_H_

#include "semijoin/consistency.h"
#include "semijoin/semijoin_instance.h"
#include "util/result.h"

namespace jinfer {
namespace semi {

class SemijoinOracle {
 public:
  virtual ~SemijoinOracle() = default;
  virtual core::Label LabelRow(size_t r_row) = 0;
};

/// Labels a row + iff θG semijoin-selects it.
class GoalSemijoinOracle : public SemijoinOracle {
 public:
  GoalSemijoinOracle(const SemijoinInstance& instance,
                     core::JoinPredicate goal)
      : instance_(&instance), goal_(goal) {}

  core::Label LabelRow(size_t r_row) override {
    return instance_->Selects(goal_, r_row) ? core::Label::kPositive
                                            : core::Label::kNegative;
  }

 private:
  const SemijoinInstance* instance_;
  core::JoinPredicate goal_;
};

struct SemijoinInferenceResult {
  core::JoinPredicate predicate;  ///< Consistent witness at halt.
  size_t num_interactions = 0;
  uint64_t sat_calls = 0;  ///< Total CONS⋉ decisions spent.
  RowSample sample;        ///< Labels gathered, in interaction order.
};

/// Runs the interactive loop until no informative row remains. Fails with
/// InconsistentSample when the oracle lies.
util::Result<SemijoinInferenceResult> RunSemijoinInference(
    const SemijoinInstance& instance, SemijoinOracle& oracle);

}  // namespace semi
}  // namespace jinfer

#endif  // JINFER_SEMIJOIN_INTERACTIVE_H_
