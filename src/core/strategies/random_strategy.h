// RND (§4.1): the baseline strategy — a uniformly random informative tuple.
// Sampling is tuple-weighted (classes weighted by multiplicity) to match
// the paper's tuple-level formulation.

#ifndef JINFER_CORE_STRATEGIES_RANDOM_STRATEGY_H_
#define JINFER_CORE_STRATEGIES_RANDOM_STRATEGY_H_

#include "core/strategy.h"
#include "util/rng.h"

namespace jinfer {
namespace core {

class RandomStrategy : public Strategy {
 public:
  explicit RandomStrategy(uint64_t seed) : rng_(seed) {}

  const char* name() const override { return "RND"; }
  std::optional<ClassId> SelectNext(const InferenceState& state) override;
  bool deterministic() const override { return false; }

 private:
  util::Rng rng_;
};

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_STRATEGIES_RANDOM_STRATEGY_H_
