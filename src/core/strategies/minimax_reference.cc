#include "core/strategies/minimax_reference.h"

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

namespace jinfer {
namespace core {

namespace {

/// Order-independent encoding of the sample (each class is labeled at most
/// once, so sorting by class id canonicalizes).
std::vector<uint32_t> CanonicalKey(const Sample& sample) {
  std::vector<uint32_t> key;
  key.reserve(sample.size());
  for (const auto& ex : sample) {
    key.push_back(ex.cls * 2 + (ex.label == Label::kPositive ? 1u : 0u));
  }
  std::sort(key.begin(), key.end());
  return key;
}

class MinimaxSearch {
 public:
  explicit MinimaxSearch(uint64_t budget) : budget_(budget) {}

  size_t Value(const InferenceState& state) {
    JINFER_CHECK(++nodes_ <= budget_,
                 "minimax node budget %llu exhausted; instance too large "
                 "for OPT",
                 static_cast<unsigned long long>(budget_));
    if (state.NumInformativeClasses() == 0) return 0;

    std::vector<uint32_t> key = CanonicalKey(state.sample());
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    size_t best = std::numeric_limits<size_t>::max();
    for (ClassId c : state.InformativeClasses()) {
      size_t worst = 0;
      for (Label label : {Label::kPositive, Label::kNegative}) {
        size_t v = Value(state.WithLabel(c, label));
        worst = std::max(worst, v);
        if (1 + worst >= best) break;  // This candidate cannot win.
      }
      best = std::min(best, 1 + worst);
      if (best == 1) break;  // One interaction is the floor here.
    }
    memo_.emplace(std::move(key), best);
    return best;
  }

 private:
  uint64_t budget_;
  uint64_t nodes_ = 0;
  std::map<std::vector<uint32_t>, size_t> memo_;
};

}  // namespace

size_t ReferenceMinimaxInteractions(const InferenceState& state,
                                    uint64_t node_budget) {
  MinimaxSearch search(node_budget);
  return search.Value(state);
}

std::optional<ClassId> ReferenceOptimalPick(const InferenceState& state,
                                            uint64_t node_budget) {
  std::vector<ClassId> informative = state.InformativeClasses();
  if (informative.empty()) return std::nullopt;
  if (informative.size() == 1) return informative.front();

  MinimaxSearch search(node_budget);
  ClassId best_class = informative.front();
  size_t best_value = std::numeric_limits<size_t>::max();
  for (ClassId c : informative) {
    size_t worst = 0;
    for (Label label : {Label::kPositive, Label::kNegative}) {
      worst = std::max(worst, search.Value(state.WithLabel(c, label)));
      if (1 + worst >= best_value) break;
    }
    if (1 + worst < best_value) {
      best_value = 1 + worst;
      best_class = c;
    }
  }
  return best_class;
}

size_t ReferenceWorstCaseInteractions(const SignatureIndex& index,
                                      Strategy& strategy,
                                      uint64_t node_budget) {
  struct Adversary {
    Strategy* strategy;
    uint64_t budget;
    uint64_t nodes = 0;

    size_t Play(const InferenceState& state) {
      JINFER_CHECK(++nodes <= budget, "adversary node budget exhausted");
      std::optional<ClassId> pick = strategy->SelectNext(state);
      if (!pick) {
        JINFER_CHECK(state.NumInformativeClasses() == 0,
                     "strategy gave up early");
        return 0;
      }
      size_t worst = 0;
      for (Label label : {Label::kPositive, Label::kNegative}) {
        worst = std::max(worst, Play(state.WithLabel(*pick, label)));
      }
      return 1 + worst;
    }
  };
  Adversary adversary{&strategy, node_budget};
  InferenceState state(index);
  return adversary.Play(state);
}

}  // namespace core
}  // namespace jinfer
