#include "core/strategies/optimal_strategy.h"

#include <atomic>

namespace jinfer {
namespace core {

namespace {

std::atomic<int> g_optimal_threads{1};

MinimaxOptions OptionsFor(uint64_t node_budget, std::optional<int> threads) {
  MinimaxOptions options;
  options.node_budget = node_budget;
  options.threads = threads.value_or(OptimalSearchThreads());
  return options;
}

}  // namespace

void SetOptimalSearchThreads(int threads) {
  g_optimal_threads.store(threads, std::memory_order_relaxed);
}

int OptimalSearchThreads() {
  return g_optimal_threads.load(std::memory_order_relaxed);
}

size_t MinimaxInteractions(const InferenceState& state, uint64_t node_budget,
                           std::optional<int> threads) {
  MinimaxEngine engine(state.index(), OptionsFor(node_budget, threads));
  return engine.Value(state);
}

std::optional<ClassId> OptimalStrategy::SelectNext(
    const InferenceState& state) {
  // Compare address AND build id: a fresh index can land at a destroyed
  // one's address (same address, different id — the cached engine's
  // Zobrist keys and table entries would be silently wrong or out of
  // bounds), and a copy of a destroyed index can share its id at a new
  // address (the cached engine would hold a dangling pointer).
  if (engine_ == nullptr || &engine_->index() != &state.index() ||
      engine_build_id_ != state.index().build_id()) {
    engine_ = std::make_unique<MinimaxEngine>(
        state.index(), OptionsFor(node_budget_, threads_));
    engine_build_id_ = state.index().build_id();
  }
  return engine_->SelectBest(state);
}

size_t WorstCaseInteractions(const SignatureIndex& index, Strategy& strategy,
                             uint64_t node_budget) {
  // The adversary itself is serial (its root has two label branches, not a
  // candidate fan-out), so the thread knob is irrelevant here.
  MinimaxEngine engine(index, OptionsFor(node_budget, /*threads=*/1));
  return engine.WorstCase(strategy);
}

}  // namespace core
}  // namespace jinfer
