// The seed's exact-search implementation, retained verbatim as the
// yardstick for the delta-frame MinimaxEngine: a copy-per-node
// (WithLabel) minimax memoized through a sorted-vector sample key in a
// std::map.
//
// Kept for two reasons only:
//   * the randomized property tests assert the engine returns identical
//     minimax values / strategy picks / worst cases;
//   * the micro_core OPT benches report the engine's speedup against it.
// Production callers (OptimalStrategy, the benches, the adversary) all go
// through MinimaxEngine.

#ifndef JINFER_CORE_STRATEGIES_MINIMAX_REFERENCE_H_
#define JINFER_CORE_STRATEGIES_MINIMAX_REFERENCE_H_

#include <cstdint>
#include <optional>

#include "core/inference_state.h"
#include "core/strategy.h"

namespace jinfer {
namespace core {

/// V(state) computed by the seed's map-memoized copy-per-node search.
size_t ReferenceMinimaxInteractions(const InferenceState& state,
                                    uint64_t node_budget = 5'000'000);

/// The seed OptimalStrategy pick: lowest-ClassId argmin of
/// 1 + max over labels V(child); nullopt iff the halt condition holds.
std::optional<ClassId> ReferenceOptimalPick(const InferenceState& state,
                                            uint64_t node_budget = 5'000'000);

/// The seed adversary: worst-case interactions of `strategy` on `index`
/// over all consistent goal behaviors, unmemoized copy-per-node play.
size_t ReferenceWorstCaseInteractions(const SignatureIndex& index,
                                      Strategy& strategy,
                                      uint64_t node_budget = 5'000'000);

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_STRATEGIES_MINIMAX_REFERENCE_H_
