#include "core/strategies/minimax_engine.h"

#include <algorithm>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace jinfer {
namespace core {

namespace {

/// Registry handles for the engine's counters. The engine already keeps
/// exact per-instance MinimaxCounters; each public entry point publishes
/// its delta to the registry so operators see aggregate search pressure
/// without asking every engine instance (DESIGN.md §13.1).
struct MinimaxMetrics {
  obs::Counter& searches;
  obs::Counter& nodes;
  obs::Counter& tt_probes;
  obs::Counter& tt_hits;
  obs::Counter& tt_stores;
  obs::Histogram& search_nanos;

  static MinimaxMetrics& Get() {
    static MinimaxMetrics* m = new MinimaxMetrics{
        obs::Registry::Global().counter(obs::kMinimaxSearchesTotal),
        obs::Registry::Global().counter(obs::kMinimaxNodesTotal),
        obs::Registry::Global().counter(obs::kMinimaxTtProbesTotal),
        obs::Registry::Global().counter(obs::kMinimaxTtHitsTotal),
        obs::Registry::Global().counter(obs::kMinimaxTtStoresTotal),
        obs::Registry::Global().histogram(obs::kMinimaxSearchNanos),
    };
    return *m;
  }
};

/// Publishes one entry point's counter delta plus its wall time as a
/// histogram sample and a flight-recorder span (detail = nodes visited).
void RecordSearch(const MinimaxCounters& before, const MinimaxCounters& after,
                  const util::Stopwatch& watch) {
#ifndef JINFER_NO_METRICS
  if (!obs::MetricsEnabled()) return;
  MinimaxMetrics& m = MinimaxMetrics::Get();
  const uint64_t nodes = after.nodes - before.nodes;
  m.searches.Inc();
  m.nodes.Inc(nodes);
  m.tt_probes.Inc(after.tt_probes - before.tt_probes);
  m.tt_hits.Inc(after.tt_hits - before.tt_hits);
  m.tt_stores.Inc(after.tt_stores - before.tt_stores);
  const uint64_t duration_nanos = watch.ElapsedNanos();
  m.search_nanos.Record(duration_nanos);
  obs::SpanRecord record;
  record.trace_id = 0;
  record.start_nanos = watch.StartNanos();
  record.duration_nanos = duration_nanos;
  record.detail = nodes;
  record.kind = obs::SpanKind::kMinimaxSearch;
  obs::FlightRecorder::Global().Record(record);
#else
  (void)before;
  (void)after;
  (void)watch;
#endif
}

}  // namespace

ZobristTable::ZobristTable(size_t num_classes, uint64_t seed) {
  util::Rng rng(seed);
  keys_.resize(num_classes * 2);
  for (uint64_t& key : keys_) key = rng.Next();
}

uint64_t ZobristTable::HashSample(const Sample& sample) const {
  uint64_t h = kEmptyHash;
  for (const ClassExample& ex : sample) h ^= Key(ex.cls, ex.label);
  return h;
}

TranspositionTable::TranspositionTable(size_t log2_entries)
    : log2_(std::min(log2_entries, kInitialLog2)),
      max_log2_(log2_entries) {
  slots_.resize(size_t{1} << log2_);
  mask_ = (size_t{1} << log2_) - 1;
}

const TranspositionTable::Entry* TranspositionTable::Find(
    uint64_t hash) const {
  const size_t base = static_cast<size_t>(hash) & mask_;
  for (size_t k = 0; k < kProbeWindow; ++k) {
    const Entry& e = slots_[(base + k) & mask_];
    if (e.kind != Entry::kEmpty && e.hash == hash) return &e;
  }
  return nullptr;
}

TranspositionTable::Entry* TranspositionTable::PlaceForInsert(
    uint64_t hash, uint32_t value) {
  const size_t base = static_cast<size_t>(hash) & mask_;
  Entry* shallowest = nullptr;
  for (size_t k = 0; k < kProbeWindow; ++k) {
    Entry& e = slots_[(base + k) & mask_];
    if (e.kind == Entry::kEmpty) {
      ++used_;
      return &e;
    }
    if (shallowest == nullptr || e.value < shallowest->value) shallowest = &e;
  }
  // Depth-aware replacement: the value is the remaining subtree depth, so
  // evicting the shallowest entry loses the least recomputation work — and
  // a newcomer shallower than everything in the window is dropped.
  return value < shallowest->value ? nullptr : shallowest;
}

void TranspositionTable::Store(uint64_t hash, uint32_t value, bool exact) {
  if (used_ * 2 >= slots_.size() && log2_ < max_log2_) Grow();
  const size_t base = static_cast<size_t>(hash) & mask_;
  for (size_t k = 0; k < kProbeWindow; ++k) {
    Entry& e = slots_[(base + k) & mask_];
    if (e.kind != Entry::kEmpty && e.hash == hash) {
      // Merge: exact wins outright; lower bounds only ever tighten.
      if (exact) {
        e.value = value;
        e.kind = Entry::kExact;
      } else if (e.kind == Entry::kLowerBound) {
        e.value = std::max(e.value, value);
      }
      return;
    }
  }
  Entry* slot = PlaceForInsert(hash, value);
  if (slot == nullptr) return;
  slot->hash = hash;
  slot->value = value;
  slot->kind = exact ? Entry::kExact : Entry::kLowerBound;
}

void TranspositionTable::Grow() {
  log2_ = std::min(max_log2_, log2_ + 2);
  std::vector<Entry> old = std::move(slots_);
  slots_.assign(size_t{1} << log2_, Entry{});
  mask_ = (size_t{1} << log2_) - 1;
  used_ = 0;
  for (const Entry& e : old) {
    if (e.kind == Entry::kEmpty) continue;
    Entry* slot = PlaceForInsert(e.hash, e.value);
    if (slot != nullptr) *slot = e;
  }
}

void TranspositionTable::Clear() {
  std::fill(slots_.begin(), slots_.end(), Entry{});
  used_ = 0;
}

SharedTranspositionTable::SharedTranspositionTable(size_t log2_entries)
    : slots_(size_t{1} << log2_entries),
      mask_((size_t{1} << log2_entries) - 1) {}

bool SharedTranspositionTable::Find(uint64_t hash, View* out) const {
  const size_t base = static_cast<size_t>(hash) & mask_;
  for (size_t k = 0; k < TranspositionTable::kProbeWindow; ++k) {
    const Slot& s = slots_[(base + k) & mask_];
    const uint64_t data = s.data.load(std::memory_order_relaxed);
    if (data == 0) continue;
    if ((s.key.load(std::memory_order_relaxed) ^ data) != hash) continue;
    out->value = static_cast<uint32_t>(data);
    out->kind = static_cast<uint8_t>(data >> 32);
    return true;
  }
  return false;
}

void SharedTranspositionTable::Store(uint64_t hash, uint32_t value,
                                     bool exact) {
  using Entry = TranspositionTable::Entry;
  const size_t base = static_cast<size_t>(hash) & mask_;
  Slot* empty = nullptr;
  Slot* shallowest = nullptr;
  uint32_t shallowest_value = 0;
  for (size_t k = 0; k < TranspositionTable::kProbeWindow; ++k) {
    Slot& s = slots_[(base + k) & mask_];
    const uint64_t data = s.data.load(std::memory_order_relaxed);
    if (data == 0) {
      if (empty == nullptr) empty = &s;
      continue;
    }
    if ((s.key.load(std::memory_order_relaxed) ^ data) == hash) {
      // Merge (lossy under races, which is fine — every written entry is
      // individually sound): exact wins; lower bounds only tighten.
      const uint8_t kind = static_cast<uint8_t>(data >> 32);
      uint64_t next;
      if (exact) {
        next = Pack(value, Entry::kExact);
      } else if (kind == Entry::kExact) {
        return;
      } else {
        next = Pack(std::max(static_cast<uint32_t>(data), value),
                    Entry::kLowerBound);
      }
      s.data.store(next, std::memory_order_relaxed);
      s.key.store(hash ^ next, std::memory_order_relaxed);
      return;
    }
    const uint32_t v = static_cast<uint32_t>(data);
    if (shallowest == nullptr || v < shallowest_value) {
      shallowest = &s;
      shallowest_value = v;
    }
  }
  Slot* slot = empty;
  if (slot == nullptr) {
    // Same depth-aware policy as the serial table.
    if (value < shallowest_value) return;
    slot = shallowest;
  }
  const uint64_t next = Pack(value, exact ? Entry::kExact : Entry::kLowerBound);
  slot->data.store(next, std::memory_order_relaxed);
  slot->key.store(hash ^ next, std::memory_order_relaxed);
}

void SharedTranspositionTable::Clear() {
  for (Slot& s : slots_) {
    s.key.store(0, std::memory_order_relaxed);
    s.data.store(0, std::memory_order_relaxed);
  }
}

namespace {

/// Shared-table size: roughly one capacity bit per class (the bounded
/// search visits far fewer states than 3^n), clamped to [2^12, 2^cap].
size_t SharedTableLog2(size_t num_classes, size_t cap) {
  return std::min(cap, std::max<size_t>(12, num_classes));
}

}  // namespace

MinimaxEngine::MinimaxEngine(const SignatureIndex& index,
                             const MinimaxOptions& options)
    : index_(&index),
      options_(options),
      zobrist_(index.num_classes(), options.zobrist_seed),
      shared_tt_(
          SharedTableLog2(index.num_classes(), options.tt_log2_entries)) {}

size_t MinimaxEngine::ResolvedWorkers(size_t num_candidates) const {
  size_t threads = util::ResolveThreadCount(options_.threads);
  return std::max<size_t>(1, std::min(threads, num_candidates));
}

uint64_t MinimaxEngine::PrepareWorkers(const InferenceState& state,
                                       size_t num_workers) {
  while (workers_.size() < num_workers) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (size_t w = 0; w < num_workers; ++w) {
    Worker& wk = *workers_[w];
    // Replay-construct instead of copying the caller's state: a fresh
    // state over the same index with the same sample set classifies
    // identically (classification is a function of the sample set).
    wk.scratch.emplace(*index_);
    for (const ClassExample& ex : state.sample()) {
      util::Status status = wk.scratch->ApplyLabel(ex.cls, ex.label);
      JINFER_CHECK(status.ok(), "replaying a consistent sample cannot fail: %s",
                   status.ToString().c_str());
    }
    ++wk.counters.scratch_rebuilds;
  }
  return zobrist_.HashSample(state.sample());
}

void MinimaxEngine::AccumulateCounters(size_t num_workers) {
  for (size_t w = 0; w < num_workers; ++w) {
    MinimaxCounters& c = workers_[w]->counters;
    counters_.nodes += c.nodes;
    counters_.tt_probes += c.tt_probes;
    counters_.tt_hits += c.tt_hits;
    counters_.tt_stores += c.tt_stores;
    counters_.scratch_rebuilds += c.scratch_rebuilds;
    c = {};  // Also resets the per-call node-budget accounting.
  }
}

uint32_t MinimaxEngine::GuessUpperBound(InferenceState& st) {
  size_t steps = 0;
  while (st.NumInformativeClasses() > 0) {
    std::optional<ClassId> pick = seed_strategy_.SelectNext(st);
    JINFER_CHECK(pick.has_value(), "lookahead must pick while informative");
    // The greedy adversary answers the label that prunes the fewest tuples,
    // prolonging the simulated session.
    auto [u_pos, u_neg] = st.CountNewlyUninformativeBoth(*pick);
    Label adversarial = u_pos <= u_neg ? Label::kPositive : Label::kNegative;
    st.ApplyLabelScoped(*pick, adversarial);
    ++steps;
  }
  for (size_t i = 0; i < steps; ++i) st.UndoLabel();
  return steps == 0 ? 1 : static_cast<uint32_t>(steps);
}

uint32_t MinimaxEngine::Search(Worker& worker, InferenceState& st,
                               uint64_t hash, uint32_t bound) {
  JINFER_CHECK(
      ++worker.counters.nodes <= options_.node_budget,
      "minimax node budget %llu exhausted (per root-split worker); "
      "instance too large for OPT",
      static_cast<unsigned long long>(options_.node_budget));
  const size_t n = st.NumInformativeClasses();
  if (n == 0) return 0;
  if (bound == 0) return 1;  // V >= 1: some informative tuple remains.

  uint32_t known_lb = 1;
  ++worker.counters.tt_probes;
  SharedTranspositionTable::View view;
  if (shared_tt_.Find(hash, &view)) {
    ++worker.counters.tt_hits;
    if (view.kind == TranspositionTable::Entry::kExact) {
      return std::min(view.value, bound + 1);
    }
    known_lb = std::max(known_lb, view.value);
    if (known_lb > bound) return bound + 1;
  }

  // Fail-hard bounded minimax: `cur` is the best candidate value found so
  // far, initialized to the canonical fail value bound + 1. Children are
  // searched with allowance cur - 2 (a candidate only matters if
  // 1 + worst < cur), which prunes every subtree deeper than the remaining
  // budget on top of the seed's `1 + worst >= best` cutoff. Every
  // ApplyLabelScoped/UndoLabel pair below runs the state's packed
  // columnar delta-frame path (inference_state.h, DESIGN.md §12): the
  // sweep walks flat key/signature word arrays sized to the active-word
  // prefix of |Omega|, so the search inherits the word-kernel speedups —
  // including multi-word universes — without holding any bitset itself.
  uint32_t cur = bound + 1;
  for (size_t i = 0; i < n; ++i) {
    const ClassId c = st.InformativeClassAt(i);
    const uint32_t child_bound = cur - 2;  // cur >= 2 while the loop runs.
    uint32_t worst = 0;
    for (Label label : {Label::kPositive, Label::kNegative}) {
      const uint64_t child_hash = hash ^ zobrist_.Key(c, label);
      st.ApplyLabelScoped(c, label);
      const uint32_t v = Search(worker, st, child_hash, child_bound);
      st.UndoLabel();
      worst = std::max(worst, v);
      if (1 + worst >= cur) break;  // This candidate cannot win.
    }
    if (1 + worst < cur) cur = 1 + worst;
    if (cur <= known_lb) break;  // cur >= V >= known_lb: already optimal.
  }
  shared_tt_.Store(hash, cur, /*exact=*/cur <= bound);
  ++worker.counters.tt_stores;
  return cur;
}

uint32_t MinimaxEngine::EvalRootCandidate(Worker& worker, InferenceState& st,
                                          uint64_t hash, ClassId cls,
                                          uint32_t bound) {
  uint32_t worst = 0;
  for (Label label : {Label::kPositive, Label::kNegative}) {
    const uint64_t child_hash = hash ^ zobrist_.Key(cls, label);
    st.ApplyLabelScoped(cls, label);
    const uint32_t v = Search(worker, st, child_hash, bound - 1);
    st.UndoLabel();
    worst = std::max(worst, v);
    if (1 + worst > bound) return bound + 1;
  }
  return 1 + worst;
}

void MinimaxEngine::SearchRoot(uint64_t root_hash, size_t num_workers,
                               uint32_t bound, std::vector<uint32_t>* out) {
  const size_t n = workers_[0]->scratch->NumInformativeClasses();
  out->assign(n, 0);
  // Every candidate is evaluated against the same `bound` (no shared-best
  // coupling between candidates) and fail-hard values are canonical, so the
  // result vector is identical for every worker assignment. Candidates are
  // strided (worker w takes w, w + W, ...): subtree costs are wildly
  // uneven, and striding balances them better than contiguous chunks.
  util::ParallelFor(num_workers, num_workers,
                    [&](size_t /*begin*/, size_t /*end*/, size_t w) {
    Worker& wk = *workers_[w];
    InferenceState& st = *wk.scratch;
    for (size_t i = w; i < n; i += num_workers) {
      const ClassId c = st.InformativeClassAt(i);
      (*out)[i] = EvalRootCandidate(wk, st, root_hash, c, bound);
    }
  });
}

uint32_t MinimaxEngine::SolveRoot(const InferenceState& state,
                                  std::vector<uint32_t>* results) {
  const size_t n = state.NumInformativeClasses();
  const uint32_t n32 = static_cast<uint32_t>(n);
  const size_t num_workers = ResolvedWorkers(n);
  const uint64_t root_hash = PrepareWorkers(state, num_workers);
  // Iterative deepening from the lookahead-seeded guess; V <= n always
  // (each interaction retires at least the labeled class), so the loop
  // terminates with an exact value no later than bound == n.
  uint32_t bound = std::min(GuessUpperBound(*workers_[0]->scratch), n32);
  for (;;) {
    ++counters_.deepening_rounds;
    SearchRoot(root_hash, num_workers, bound, results);
    const uint32_t m = *std::min_element(results->begin(), results->end());
    if (m <= bound) {
      AccumulateCounters(num_workers);
      return m;
    }
    bound = std::min(n32, std::max(m, 2 * bound));
  }
}

size_t MinimaxEngine::Value(const InferenceState& state) {
  JINFER_CHECK(&state.index() == index_,
               "engine is bound to a different SignatureIndex");
  if (state.NumInformativeClasses() == 0) return 0;
  std::vector<uint32_t> results;
  const MinimaxCounters before = counters_;
  util::Stopwatch watch;
  const size_t v = SolveRoot(state, &results);
  RecordSearch(before, counters_, watch);
  return v;
}

std::optional<ClassId> MinimaxEngine::SelectBest(const InferenceState& state) {
  JINFER_CHECK(&state.index() == index_,
               "engine is bound to a different SignatureIndex");
  const size_t n = state.NumInformativeClasses();
  if (n == 0) return std::nullopt;
  if (n == 1) return state.InformativeClassAt(0);
  std::vector<uint32_t> results;
  const MinimaxCounters before = counters_;
  util::Stopwatch watch;
  const uint32_t v = SolveRoot(state, &results);
  RecordSearch(before, counters_, watch);
  // Lowest-ClassId argmin: candidates failing the final bound report values
  // strictly above v, so this is the exact tie-break of the reference.
  for (size_t i = 0; i < n; ++i) {
    if (results[i] == v) return state.InformativeClassAt(i);
  }
  JINFER_CHECK(false, "minimax value unmatched at the root");
  return std::nullopt;
}

size_t MinimaxEngine::PlayAdversary(Strategy& strategy,
                                    TranspositionTable& tt,
                                    MinimaxCounters& counters,
                                    InferenceState& st, uint64_t hash) {
  JINFER_CHECK(++counters.nodes <= options_.node_budget,
               "adversary node budget exhausted");
  ++counters.tt_probes;
  if (const TranspositionTable::Entry* e = tt.Find(hash)) {
    ++counters.tt_hits;
    return e->value;  // Adversary entries are always exact.
  }
  std::optional<ClassId> pick = strategy.SelectNext(st);
  if (!pick) {
    JINFER_CHECK(st.NumInformativeClasses() == 0, "strategy gave up early");
    return 0;
  }
  size_t worst = 0;
  for (Label label : {Label::kPositive, Label::kNegative}) {
    const uint64_t child_hash = hash ^ zobrist_.Key(*pick, label);
    st.ApplyLabelScoped(*pick, label);
    worst = std::max(worst,
                     PlayAdversary(strategy, tt, counters, st, child_hash));
    st.UndoLabel();
  }
  tt.Store(hash, static_cast<uint32_t>(1 + worst), /*exact=*/true);
  ++counters.tt_stores;
  return 1 + worst;
}

size_t MinimaxEngine::WorstCase(Strategy& strategy) {
  // Memoizing on the sample set is only sound when the pick is a function
  // of it; fail fast instead of returning silently wrong values for RND.
  JINFER_CHECK(strategy.deterministic(),
               "WorstCase requires a deterministic strategy, got %s",
               strategy.name());
  // A dedicated serial table per call: adversary values are
  // strategy-specific and must never mix with the minimax workers'
  // entries. The play is single-threaded (the root fans out over two
  // labels, not over candidates), so the growing serial table fits.
  TranspositionTable tt(options_.tt_log2_entries);
  MinimaxCounters counters;
  InferenceState scratch(*index_);
  ++counters.scratch_rebuilds;
  const MinimaxCounters before = counters_;
  util::Stopwatch watch;
  const size_t v = PlayAdversary(strategy, tt, counters, scratch,
                                 ZobristTable::kEmptyHash);
  counters_.nodes += counters.nodes;
  counters_.tt_probes += counters.tt_probes;
  counters_.tt_hits += counters.tt_hits;
  counters_.tt_stores += counters.tt_stores;
  counters_.scratch_rebuilds += counters.scratch_rebuilds;
  RecordSearch(before, counters_, watch);
  return v;
}

}  // namespace core
}  // namespace jinfer
