// OPT — the optimal strategy of §4.1.
//
// The paper notes that an optimal strategy (minimizing the worst-case
// number of interactions) exists by the standard minimax construction and
// is exponential, which "renders it unusable in practice". We implement it
// anyway, memoized, for small instances: it gives the tests and the
// lookahead-depth ablation a ground-truth floor against which BU/TD/LkS
// are judged.
//
//   V(S) = 0                                   if no informative tuple
//   V(S) = min over informative t of
//            1 + max over α∈{+,−} V(S ∪ {(t,α)})   otherwise
//
// Memoization keys on the sample set (order-independent); branch-and-bound
// prunes children that cannot beat the best candidate so far. Guarded by a
// node budget: instances beyond ~20 classes are not what OPT is for.

#ifndef JINFER_CORE_STRATEGIES_OPTIMAL_STRATEGY_H_
#define JINFER_CORE_STRATEGIES_OPTIMAL_STRATEGY_H_

#include <cstdint>

#include "core/strategy.h"

namespace jinfer {
namespace core {

class OptimalStrategy : public Strategy {
 public:
  /// `node_budget` bounds the memoized search; exceeding it aborts (use a
  /// cheaper strategy for such instances).
  explicit OptimalStrategy(uint64_t node_budget = 5'000'000)
      : node_budget_(node_budget) {}

  const char* name() const override { return "OPT"; }
  std::optional<ClassId> SelectNext(const InferenceState& state) override;

 private:
  uint64_t node_budget_;
};

/// Worst-case number of interactions to reach the halt condition Γ from
/// `state` under optimal play — the minimax value of §4.1.
size_t MinimaxInteractions(const InferenceState& state,
                           uint64_t node_budget = 5'000'000);

/// Worst-case number of interactions the given strategy needs on `index`
/// over ALL possible goal behaviors (i.e., against an adversarial oracle
/// answering any consistent label). Used by tests to compare strategies
/// with the optimum. Exponential like OPT; small instances only.
size_t WorstCaseInteractions(const SignatureIndex& index, Strategy& strategy,
                             uint64_t node_budget = 5'000'000);

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_STRATEGIES_OPTIMAL_STRATEGY_H_
