// OPT — the optimal strategy of §4.1.
//
// The paper notes that an optimal strategy (minimizing the worst-case
// number of interactions) exists by the standard minimax construction and
// is exponential, which "renders it unusable in practice". We implement it
// anyway for small instances: it gives the tests and the lookahead-depth
// ablation a ground-truth floor against which BU/TD/LkS are judged.
//
//   V(S) = 0                                   if no informative tuple
//   V(S) = min over informative t of
//            1 + max over α∈{+,−} V(S ∪ {(t,α)})   otherwise
//
// Since PR 2 the search runs on the delta-frame MinimaxEngine (Zobrist-
// hashed transposition table, iterative-deepening bounds, root-split
// parallelism — see minimax_engine.h) instead of the seed's copy-per-node
// map memo, which is retained in minimax_reference.h as the property-test
// yardstick. Guarded by a node budget: instances beyond ~20 classes are
// not what OPT is for.

#ifndef JINFER_CORE_STRATEGIES_OPTIMAL_STRATEGY_H_
#define JINFER_CORE_STRATEGIES_OPTIMAL_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "core/strategies/minimax_engine.h"
#include "core/strategy.h"

namespace jinfer {
namespace core {

/// Process-wide default for the engine's root-split worker count, used by
/// every OPT entry point that is not given an explicit thread count
/// (0 = one per hardware thread). Benches set it from JINFER_BENCH_THREADS;
/// the library default is 1. Results never depend on it.
void SetOptimalSearchThreads(int threads);
int OptimalSearchThreads();

class OptimalStrategy : public Strategy {
 public:
  /// `node_budget` bounds the search per root-split worker; exceeding it
  /// aborts (use a cheaper strategy for such instances). `threads`
  /// overrides the SetOptimalSearchThreads default when set.
  explicit OptimalStrategy(uint64_t node_budget = 5'000'000,
                           std::optional<int> threads = std::nullopt)
      : node_budget_(node_budget), threads_(threads) {}

  const char* name() const override { return "OPT"; }
  std::optional<ClassId> SelectNext(const InferenceState& state) override;

 private:
  uint64_t node_budget_;
  std::optional<int> threads_;
  /// Engine cached across the session's SelectNext calls (the transposition
  /// tables carry over — later picks re-enter subtrees of earlier ones);
  /// rebuilt when the state's index changes. Identity is the index's
  /// process-unique build id, so recycling one strategy instance across
  /// freshly built indexes is safe even if an address is reused.
  std::unique_ptr<MinimaxEngine> engine_;
  uint64_t engine_build_id_ = 0;
};

/// Worst-case number of interactions to reach the halt condition Γ from
/// `state` under optimal play — the minimax value of §4.1. `threads`
/// overrides the SetOptimalSearchThreads default when set; the value is
/// identical for every thread count.
size_t MinimaxInteractions(const InferenceState& state,
                           uint64_t node_budget = 5'000'000,
                           std::optional<int> threads = std::nullopt);

/// Worst-case number of interactions the given strategy needs on `index`
/// over ALL possible goal behaviors (i.e., against an adversarial oracle
/// answering any consistent label). Used by tests and benches to compare
/// strategies with the optimum. Exponential like OPT; small instances
/// only. Memoizes on the sample set, so `strategy` must be deterministic
/// (every bundled strategy except RND is; enforced via
/// Strategy::deterministic()).
size_t WorstCaseInteractions(const SignatureIndex& index, Strategy& strategy,
                             uint64_t node_budget = 5'000'000);

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_STRATEGIES_OPTIMAL_STRATEGY_H_
