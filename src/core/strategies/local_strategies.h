// Local strategies (§4.3): bottom-up and top-down lattice navigation.
// "Local" because they follow a simple order on the lattice and ignore how
// much information a label would prune.

#ifndef JINFER_CORE_STRATEGIES_LOCAL_STRATEGIES_H_
#define JINFER_CORE_STRATEGIES_LOCAL_STRATEGIES_H_

#include "core/strategy.h"

namespace jinfer {
namespace core {

/// Algorithm 2: present an informative tuple with the smallest |T(t)| —
/// navigate from the most general predicate (∅) towards Ω. Finds goal ∅ in
/// one interaction; may degenerate to labeling everything for large goals.
class BottomUpStrategy : public Strategy {
 public:
  const char* name() const override { return "BU"; }
  std::optional<ClassId> SelectNext(const InferenceState& state) override;
};

/// Algorithm 3: while no positive example exists, present tuples whose
/// signature is ⊆-maximal among all tuple signatures (pruning the lattice
/// from Ω downwards via Lemma 3.4); once a positive example arrives, the
/// goal is non-nullable and the strategy behaves like BU.
class TopDownStrategy : public Strategy {
 public:
  const char* name() const override { return "TD"; }
  std::optional<ClassId> SelectNext(const InferenceState& state) override;
};

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_STRATEGIES_LOCAL_STRATEGIES_H_
