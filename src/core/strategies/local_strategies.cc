#include "core/strategies/local_strategies.h"

namespace jinfer {
namespace core {

namespace {

/// Smallest-|T(t)| informative class; lowest ClassId breaks ties (the paper
/// leaves tie-breaking arbitrary).
std::optional<ClassId> SmallestSignature(const InferenceState& state) {
  const SignatureIndex& index = state.index();
  std::optional<ClassId> best;
  size_t best_size = 0;
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    if (!state.IsInformative(c)) continue;
    size_t size = index.cls(c).signature.Count();
    if (!best || size < best_size) {
      best = c;
      best_size = size;
    }
  }
  return best;
}

}  // namespace

std::optional<ClassId> BottomUpStrategy::SelectNext(
    const InferenceState& state) {
  return SmallestSignature(state);
}

std::optional<ClassId> TopDownStrategy::SelectNext(
    const InferenceState& state) {
  if (state.HasPositiveExample()) {
    return SmallestSignature(state);  // Lines 3-5: behave like BU.
  }
  // Lines 1-2: an informative tuple with ⊆-maximal signature. While the
  // sample is all-negative, every unlabeled maximal-signature class is
  // informative, so one exists whenever any informative class does.
  const SignatureIndex& index = state.index();
  std::optional<ClassId> fallback;
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    if (!state.IsInformative(c)) continue;
    if (index.cls(c).maximal) return c;
    if (!fallback) fallback = c;
  }
  return fallback;
}

}  // namespace core
}  // namespace jinfer
