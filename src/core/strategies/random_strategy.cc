#include "core/strategies/random_strategy.h"

namespace jinfer {
namespace core {

std::optional<ClassId> RandomStrategy::SelectNext(
    const InferenceState& state) {
  uint64_t total = state.InformativeTupleWeight();
  if (total == 0) return std::nullopt;
  uint64_t target = rng_.NextBelow(total);
  const SignatureIndex& index = state.index();
  for (ClassId c = 0; c < index.num_classes(); ++c) {
    if (!state.IsInformative(c)) continue;
    uint64_t w = index.cls(c).count;
    if (target < w) return c;
    target -= w;
  }
  JINFER_CHECK(false, "weighted sampling fell off the end");
  return std::nullopt;
}

}  // namespace core
}  // namespace jinfer
