// Delta-frame minimax engine for exact search (§4.1's OPT and the
// worst-case adversary).
//
// The seed implementation allocated a full InferenceState copy per search
// node (WithLabel) and memoized through a sorted vector key in a std::map —
// the copy-per-node pattern PR 1 eliminated from the lookahead path. This
// engine replaces both:
//
//   * One mutable InferenceState is traversed with ApplyLabelScoped /
//     UndoLabel delta frames — zero state copies per node, and zero copies
//     of the *caller's* state too: the engine rebuilds its scratch by
//     constructing a fresh state from the index and replaying the sample.
//
//   * States are identified by an incrementally maintained Zobrist hash:
//     one random 64-bit key per (class, label), XOR-folded on apply and
//     undo. A sample is a set (each class labeled at most once), so the
//     XOR fold is order-independent — transpositions of the same labelings
//     collide by construction, replacing the seed's CanonicalKey sort.
//
//   * Memoization lives in a flat open-addressing transposition table
//     (power-of-two capacity, 8-slot probe window) with depth-aware
//     replacement: on a full window the shallowest entry — the minimax
//     value *is* the remaining subtree depth — is evicted, and only for a
//     deeper newcomer; shallow entries are cheap to recompute.
//
//   * The search is bounded (fail-hard): Search(S, b) returns
//     min(V(S), b + 1), so any value > b is reported canonically as b + 1.
//     Iterative deepening starts from an upper-bound guess seeded by a
//     simulated lookahead session (L1S picks against a greedy adversary)
//     and widens until the value is exact. Bounded search prunes every
//     subtree deeper than the remaining allowance on top of the seed's
//     `1 + worst >= best` candidate cutoff.
//
//   * Root-split parallelism: the top-level candidate classes are
//     strided over util::ParallelFor workers, each with a private scratch
//     state, all sharing one validated lossy transposition table
//     (SharedTranspositionTable below) — sibling candidates transpose
//     heavily, so private tables would redo each other's subtrees
//     (measured ~2× duplicated nodes). Thread-count invariance does NOT
//     come from table privacy: every candidate is evaluated against the
//     same round bound (no cross-candidate best sharing), fail-hard
//     values are canonical, and every table entry is a sound fact about
//     the state (exact V or a lower bound on it) regardless of which
//     worker stored it — so Search(S, b) = min(V(S), b + 1) is a pure
//     function, and the reduced value and lowest-ClassId argmin pick are
//     bit-identical for every thread count (only node counters vary).
//
// Node-budget semantics: the budget bounds the nodes expanded by each
// root-split worker (for threads == 1 this is the seed's total-node
// semantics). Exhaustion aborts via JINFER_CHECK, as before.

#ifndef JINFER_CORE_STRATEGIES_MINIMAX_ENGINE_H_
#define JINFER_CORE_STRATEGIES_MINIMAX_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/inference_state.h"
#include "core/sample.h"
#include "core/signature_index.h"
#include "core/strategies/lookahead_strategy.h"
#include "core/strategy.h"
#include "core/types.h"

namespace jinfer {
namespace core {

/// Per-(class, label) random keys for incremental sample-set hashing.
/// Deterministic in (num_classes, seed), so hashes agree across workers,
/// runs and platforms.
class ZobristTable {
 public:
  static constexpr uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ULL;
  /// Base hash of the empty sample (any fixed nonzero constant).
  static constexpr uint64_t kEmptyHash = 0x51ed270b9f0c5a1dULL;

  explicit ZobristTable(size_t num_classes, uint64_t seed = kDefaultSeed);

  uint64_t Key(ClassId cls, Label label) const {
    return keys_[cls * 2 + (label == Label::kPositive ? 1 : 0)];
  }

  /// XOR fold of the sample's (class, label) keys over kEmptyHash. Equal
  /// sample *sets* hash equally regardless of labeling order.
  uint64_t HashSample(const Sample& sample) const;

 private:
  std::vector<uint64_t> keys_;
};

/// Flat open-addressing memo table for single-threaded searches (the
/// worst-case adversary). Entries are either exact minimax values or lower
/// bounds (from fail-hard cutoffs); replacement within the probe window is
/// depth-aware (see file comment), and capacity grows on demand so tiny
/// solves never pay for a full table.
class TranspositionTable {
 public:
  struct Entry {
    static constexpr uint8_t kEmpty = 0;
    static constexpr uint8_t kExact = 1;
    static constexpr uint8_t kLowerBound = 2;

    uint64_t hash = 0;
    uint32_t value = 0;
    uint8_t kind = kEmpty;
  };

  static constexpr size_t kProbeWindow = 8;
  /// Cold-start capacity: 2^10 slots (16 KiB), so tiny solves never pay
  /// for the full table.
  static constexpr size_t kInitialLog2 = 10;

  /// Capacity starts at 2^kInitialLog2 slots (16 bytes each) and grows ×4
  /// on a half-full table up to 2^log2_entries.
  explicit TranspositionTable(size_t log2_entries);

  const Entry* Find(uint64_t hash) const;

  /// Inserts or merges: an exact value overwrites any previous entry for
  /// the hash; a lower bound only ever raises a stored lower bound. On a
  /// full probe window the shallowest entry is evicted iff the newcomer is
  /// at least as deep; otherwise the newcomer is dropped.
  void Store(uint64_t hash, uint32_t value, bool exact);

  void Clear();

 private:
  /// Quadruples the capacity (up to max_log2_) and reinserts every live
  /// entry; entries that lose their window in the new layout are dropped
  /// (they are recomputed on demand).
  void Grow();
  Entry* PlaceForInsert(uint64_t hash, uint32_t value);

  std::vector<Entry> slots_;
  size_t mask_;
  size_t log2_;
  size_t max_log2_;
  size_t used_ = 0;  ///< Occupied slots, drives the growth trigger.
};

/// The root-split workers' shared table: fixed capacity (sized from the
/// instance at engine construction), lossy, safe under concurrent use via
/// the classic key-XOR-data validation — a slot is two relaxed-atomic
/// words, `key = hash ^ data` and `data = pack(value, kind)`; a torn or
/// raced read fails the XOR check and reads as a miss, never as a wrong
/// value. Every store is a sound fact about the hashed state (its exact
/// minimax value or a lower bound on it), so losing or dropping entries
/// affects node counts only, never results. Replacement is the same
/// depth-aware policy as TranspositionTable.
class SharedTranspositionTable {
 public:
  struct View {
    uint32_t value = 0;
    uint8_t kind = TranspositionTable::Entry::kEmpty;
  };

  /// Capacity is 2^log2_entries slots (16 bytes each).
  explicit SharedTranspositionTable(size_t log2_entries);

  bool Find(uint64_t hash, View* out) const;
  void Store(uint64_t hash, uint32_t value, bool exact);
  void Clear();

 private:
  struct Slot {
    std::atomic<uint64_t> key{0};
    std::atomic<uint64_t> data{0};  ///< 0 = empty; else pack(value, kind).
  };
  static uint64_t Pack(uint32_t value, uint8_t kind) {
    return (static_cast<uint64_t>(kind) << 32) | value;
  }

  std::vector<Slot> slots_;
  size_t mask_;
};

struct MinimaxOptions {
  /// Bounds the nodes each root-split worker may expand; exhaustion aborts
  /// (use a cheaper strategy for such instances).
  uint64_t node_budget = 5'000'000;
  /// Root-split workers: >= 1 explicit, 0 = one per hardware thread.
  /// Results are identical for every setting.
  int threads = 1;
  /// Upper bound on the log2 transposition-table capacity in entries; the
  /// actual size is chosen from the instance's class count (roughly one
  /// capacity bit per class), so small solves stay cheap.
  size_t tt_log2_entries = 18;  // Cap: 2^18 * 16 B = 4 MiB.
  uint64_t zobrist_seed = ZobristTable::kDefaultSeed;
};

/// Aggregated search counters (summed over workers and deepening rounds
/// since construction or the last ResetCounters).
struct MinimaxCounters {
  uint64_t nodes = 0;             ///< Search nodes expanded.
  uint64_t tt_probes = 0;
  uint64_t tt_hits = 0;
  uint64_t tt_stores = 0;
  uint64_t deepening_rounds = 0;  ///< Iterative-deepening root rounds.
  uint64_t scratch_rebuilds = 0;  ///< Replay-constructed scratch states.
};

class MinimaxEngine {
 public:
  explicit MinimaxEngine(const SignatureIndex& index,
                         const MinimaxOptions& options = {});

  /// Exact minimax value V(state): the fewest interactions that suffice
  /// against the worst possible user from `state` (§4.1). Never copies
  /// `state` (scratch states are replay-constructed from the index).
  size_t Value(const InferenceState& state);

  /// The lowest-ClassId candidate achieving V(state) — OPT's pick; nullopt
  /// iff the halt condition holds. Thread-count-invariant.
  std::optional<ClassId> SelectBest(const InferenceState& state);

  /// Worst-case interactions of `strategy` from the fresh index state over
  /// all consistent goal behaviors, memoized on the sample-set hash (one
  /// dedicated table per call; the minimax tables are never mixed in).
  /// Requires a deterministic strategy: the pick must be a function of the
  /// sample set. Zero InferenceState copies.
  size_t WorstCase(Strategy& strategy);

  const MinimaxCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = {}; }

  const SignatureIndex& index() const { return *index_; }

 private:
  struct Worker {
    std::optional<InferenceState> scratch;
    MinimaxCounters counters;
  };

  /// Bounded fail-hard search: returns min(V(st), bound + 1); `st` is
  /// restored exactly before returning. `hash` is the Zobrist hash of
  /// st.sample().
  uint32_t Search(Worker& worker, InferenceState& st, uint64_t hash,
                  uint32_t bound);

  /// min(1 + max over labels V(child of `cls`), bound + 1).
  uint32_t EvalRootCandidate(Worker& worker, InferenceState& st,
                             uint64_t hash, ClassId cls, uint32_t bound);

  /// One deepening round: evaluates every informative candidate of the
  /// (replayed) root state against `bound` into `out` (canonical fail-hard
  /// values), root-split over the workers.
  void SearchRoot(uint64_t root_hash, size_t num_workers, uint32_t bound,
                  std::vector<uint32_t>* out);

  /// The full iterative-deepening loop; returns the exact V(state) and
  /// leaves the final round's per-candidate values in `results`.
  uint32_t SolveRoot(const InferenceState& state,
                     std::vector<uint32_t>* results);

  /// Upper-bound guess for iterative deepening: length of a simulated
  /// session where L1S picks and a greedy adversary answers the label
  /// pruning the fewest tuples. Runs on (and exactly restores) `st`.
  uint32_t GuessUpperBound(InferenceState& st);

  size_t PlayAdversary(Strategy& strategy, TranspositionTable& tt,
                       MinimaxCounters& counters, InferenceState& st,
                       uint64_t hash);

  /// Replay-constructs worker scratch states equal to `state` for workers
  /// [0, num_workers) and returns the root hash.
  uint64_t PrepareWorkers(const InferenceState& state, size_t num_workers);

  size_t ResolvedWorkers(size_t num_candidates) const;
  void AccumulateCounters(size_t num_workers);

  const SignatureIndex* index_;
  MinimaxOptions options_;
  ZobristTable zobrist_;
  LookaheadStrategy seed_strategy_{1};
  std::vector<std::unique_ptr<Worker>> workers_;
  /// One table shared by all root-split workers (see the file comment for
  /// why sharing beats per-worker tables and why it preserves
  /// thread-count-invariant results). Persisted across SolveRoot calls so
  /// a session's later picks re-enter earlier subtrees warm.
  SharedTranspositionTable shared_tt_;
  MinimaxCounters counters_;
};

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_STRATEGIES_MINIMAX_ENGINE_H_
