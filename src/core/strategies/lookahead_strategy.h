// Lookahead skyline strategies (§4.4): LkS for k ∈ {1, 2, 3}.
//
// Algorithm 4 (k = 1) / Algorithm 6 (k = 2): compute entropy^k for every
// informative tuple, take m = max of the entropy minima, and present a
// tuple whose entropy is the skyline element with minimum m (the unique
// skyline entry with that minimum). Ties between tuples sharing that
// entropy break to the lowest ClassId (the paper leaves this arbitrary).

#ifndef JINFER_CORE_STRATEGIES_LOOKAHEAD_STRATEGY_H_
#define JINFER_CORE_STRATEGIES_LOOKAHEAD_STRATEGY_H_

#include "core/entropy.h"
#include "core/strategy.h"

namespace jinfer {
namespace core {

class LookaheadStrategy : public Strategy {
 public:
  /// `depth` is the lookahead k ≥ 1.
  explicit LookaheadStrategy(int depth);

  const char* name() const override { return name_; }
  int depth() const { return depth_; }

  std::optional<ClassId> SelectNext(const InferenceState& state) override;

 private:
  int depth_;
  char name_[16];
  /// Sweep/entropy buffers reused across the session's questions (a
  /// strategy instance is per-session, owned by it): the u± columns and
  /// entropy vector are |Ω|-class sized, and reallocating them for each
  /// of the session's ~log|instance| questions showed up in the session
  /// throughput profile once the sweep itself was vectorized.
  EntropyBatchScratch batch_;
  std::vector<Entropy> entropies_;
};

/// Expected-gain heuristic (extension; the paper's §7 suggests probabilistic
/// lookahead as future work). Scores each informative tuple by the mean of
/// u+ and u− — the expected pruning under an uninformed 50/50 label prior —
/// and presents the maximizer, breaking ties by the larger min(u+, u−).
class ExpectedGainStrategy : public Strategy {
 public:
  const char* name() const override { return "EG"; }
  std::optional<ClassId> SelectNext(const InferenceState& state) override;

 private:
  EntropyBatchScratch batch_;  ///< Reused across questions, as above.
};

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_STRATEGIES_LOOKAHEAD_STRATEGY_H_
