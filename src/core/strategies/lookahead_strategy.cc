#include "core/strategies/lookahead_strategy.h"

#include <cstdio>

namespace jinfer {
namespace core {

LookaheadStrategy::LookaheadStrategy(int depth) : depth_(depth) {
  JINFER_CHECK(depth >= 1, "lookahead depth must be >= 1, got %d", depth);
  std::snprintf(name_, sizeof(name_), "L%dS", depth);
}

std::optional<ClassId> LookaheadStrategy::SelectNext(
    const InferenceState& state) {
  std::vector<ClassId> informative = state.InformativeClasses();
  if (informative.empty()) return std::nullopt;
  // With one informative tuple left its label ends the session either way;
  // skip the (expensive and ill-defined at k>1) entropy evaluation.
  if (informative.size() == 1) return informative.front();

  // batch_/entropies_ are members: their capacity carries over from
  // question to question within the session (every callee clears or
  // assigns before use, so no stale values survive).
  std::vector<Entropy>& entropies = entropies_;
  entropies.clear();
  entropies.reserve(informative.size());
  if (depth_ == 1) {
    // One column-wise sweep scores every candidate; entropies[k] matches
    // EntropyOf(state, informative[k]) bit-for-bit.
    EntropyOfAll(state, batch_, entropies);
  } else {
    // One scratch state for every candidate: the lookahead tree is explored
    // in place via ApplyLabelScoped/UndoLabel and restores it exactly. The
    // batch buffers are likewise shared across candidates.
    InferenceState scratch = state;
    for (ClassId c : informative) {
      entropies.push_back(EntropyKOfInPlace(scratch, c, depth_, batch_));
    }
  }
  Entropy chosen = SkylineMaxMin(entropies);
  for (size_t k = 0; k < informative.size(); ++k) {
    if (entropies[k] == chosen) return informative[k];
  }
  JINFER_CHECK(false, "skyline entropy %s not among candidates",
               chosen.ToString().c_str());
  return std::nullopt;
}

std::optional<ClassId> ExpectedGainStrategy::SelectNext(
    const InferenceState& state) {
  std::optional<ClassId> best;
  double best_score = -1;
  uint64_t best_min = 0;
  // Batched u± sweep; column i corresponds to InformativeClassAt(i), so
  // the first-wins tie-break below visits candidates in the same order as
  // the per-candidate loop it replaced. batch_ is a member, reused across
  // the session's questions.
  state.CountNewlyUninformativeAll(batch_.u_pos, batch_.u_neg);
  for (size_t i = 0; i < batch_.u_pos.size(); ++i) {
    const ClassId c = state.InformativeClassAt(i);
    const uint64_t up = batch_.u_pos[i];
    const uint64_t un = batch_.u_neg[i];
    double score = 0.5 * (static_cast<double>(up) + static_cast<double>(un));
    uint64_t min_u = std::min(up, un);
    if (!best || score > best_score ||
        (score == best_score && min_u > best_min)) {
      best = c;
      best_score = score;
      best_min = min_u;
    }
  }
  return best;
}

}  // namespace core
}  // namespace jinfer
