// Omega: the universe of candidate equality atoms attrs(R) × attrs(P).
//
// The paper's predicates are subsets θ ⊆ Ω. Omega fixes the bit layout
// (pair (i, j) ↔ bit i*m + j), enforces the 256-atom capacity of
// JoinPredicate, and renders predicates in the paper's notation.

#ifndef JINFER_CORE_OMEGA_H_
#define JINFER_CORE_OMEGA_H_

#include <string>
#include <utility>
#include <vector>

#include "core/types.h"
#include "relational/join.h"
#include "relational/schema.h"
#include "util/result.h"

namespace jinfer {
namespace core {

class Omega {
 public:
  Omega() = default;

  /// Builds Ω for the given pair of schemas. Fails with CapacityExceeded
  /// when |attrs(R)| * |attrs(P)| > SmallBitset::kMaxBits.
  static util::Result<Omega> Make(const rel::Schema& r, const rel::Schema& p);

  /// Number of R attributes (n in the paper).
  size_t num_r_attrs() const { return num_r_attrs_; }
  /// Number of P attributes (m in the paper).
  size_t num_p_attrs() const { return num_p_attrs_; }
  /// |Ω| = n * m.
  size_t size() const { return num_r_attrs_ * num_p_attrs_; }

  /// Bit index of the atom (Ai, Bj).
  size_t BitOf(size_t i, size_t j) const {
    JINFER_CHECK(i < num_r_attrs_ && j < num_p_attrs_,
                 "atom (%zu,%zu) outside Omega %zux%zu", i, j, num_r_attrs_,
                 num_p_attrs_);
    return i * num_p_attrs_ + j;
  }

  /// Atom (Ai, Bj) of a bit index.
  std::pair<size_t, size_t> PairOf(size_t bit) const {
    JINFER_CHECK(bit < size(), "bit %zu outside Omega of size %zu", bit,
                 size());
    return {bit / num_p_attrs_, bit % num_p_attrs_};
  }

  /// The most specific predicate: Ω itself (all atoms set).
  JoinPredicate Full() const { return JoinPredicate::AllSet(size()); }

  /// Builds a predicate from attribute-index pairs.
  JoinPredicate PredicateFromPairs(
      const std::vector<std::pair<size_t, size_t>>& pairs) const;

  /// Builds a predicate from attribute names, e.g.
  /// {{"To","City"},{"Airline","Discount"}}. Fails on unknown names.
  util::Result<JoinPredicate> PredicateFromNames(
      const std::vector<std::pair<std::string, std::string>>& pairs) const;

  /// Decomposes a predicate into attribute-index pairs (sorted by bit).
  std::vector<std::pair<size_t, size_t>> PairsOf(
      const JoinPredicate& theta) const;

  /// Converts to the representation rel::EquijoinIndices consumes.
  std::vector<rel::AttrPair> ToAttrPairs(const JoinPredicate& theta) const;

  /// Paper-style rendering: "{(A1,B3),(A2,B1)}" using real attribute names;
  /// "{}" for the empty predicate.
  std::string Format(const JoinPredicate& theta) const;

  const std::string& r_attr_name(size_t i) const { return r_names_[i]; }
  const std::string& p_attr_name(size_t j) const { return p_names_[j]; }
  const std::string& r_relation_name() const { return r_relation_; }
  const std::string& p_relation_name() const { return p_relation_; }

 private:
  size_t num_r_attrs_ = 0;
  size_t num_p_attrs_ = 0;
  std::string r_relation_;
  std::string p_relation_;
  std::vector<std::string> r_names_;
  std::vector<std::string> p_names_;
};

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_OMEGA_H_
