#include "core/path_inference.h"

namespace jinfer {
namespace core {

namespace {

/// Adapts the per-edge PathOracle to the single-pair Oracle interface.
class StepOracle : public Oracle {
 public:
  StepOracle(PathOracle* oracle, size_t step)
      : oracle_(oracle), step_(step) {}

  Label LabelClass(const SignatureIndex& index, ClassId cls) override {
    return oracle_->LabelStep(step_, index, cls);
  }

 private:
  PathOracle* oracle_;
  size_t step_;
};

}  // namespace

util::Result<PathInferenceResult> RunPathInference(
    const std::vector<const rel::Relation*>& path, StrategyKind kind,
    uint64_t seed, PathOracle& oracle, const InferenceOptions& options) {
  if (path.size() < 2) {
    return util::Status::InvalidArgument(
        "a join path needs at least two relations");
  }
  for (const rel::Relation* rel : path) {
    if (rel == nullptr) {
      return util::Status::InvalidArgument("null relation in path");
    }
  }

  PathInferenceResult result;
  for (size_t step = 0; step + 1 < path.size(); ++step) {
    JINFER_ASSIGN_OR_RETURN(
        SignatureIndex index,
        SignatureIndex::Build(*path[step], *path[step + 1]));
    auto strategy = MakeStrategy(kind, seed + step);
    StepOracle step_oracle(&oracle, step);
    JINFER_ASSIGN_OR_RETURN(
        InferenceResult edge,
        RunInference(index, *strategy, step_oracle, options));
    PathStepResult step_result;
    step_result.predicate = edge.predicate;
    step_result.num_interactions = edge.num_interactions;
    step_result.seconds = edge.seconds;
    result.total_interactions += edge.num_interactions;
    result.steps.push_back(step_result);
  }
  return result;
}

}  // namespace core
}  // namespace jinfer
