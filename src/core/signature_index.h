// SignatureIndex: precomputes T(t) — the most specific equijoin predicate
// selecting tuple t — for every tuple of the Cartesian product D = R × P,
// and groups D into *signature classes*.
//
// Two tuples with equal T(t) are interchangeable for every notion in the
// paper (consistency, certainty, entropy, the lattice), so the index stores
// one class per distinct signature together with its tuple count and a
// representative (row_r, row_p) pair. All inference state is then O(#classes)
// instead of O(|D|); the paper's per-tuple counts are recovered from the
// class multiplicities.
//
// Build cost: an encode phase that remaps the relations' per-column
// dictionary codes into one global code space (O(cells) array lookups +
// O(distinct values) hashing — see EncodeInstance below and DESIGN.md §9),
// then one pass over R′ × P′ on the encoded rows, where R′/P′
// are the duplicate-compressed sides (hashed dedup, O(|R| + |P|) expected).
// The pass is partitioned across `options.threads` workers — each worker
// classifies a contiguous block of distinct R rows into a private
// signature→class table, and the per-worker tables are merged in worker
// order, which reproduces the serial first-occurrence class numbering
// bit-for-bit (class ids, counts, representatives and maximal flags are
// independent of the thread count). The ⊆-maximality pass is a
// popcount-bucketed sweep: a signature is compared only against signatures
// with strictly larger popcount, O(Σ_k |bucket_k| · |larger buckets|) word
// ops instead of the naive O(C²), and is itself parallelized over classes.
//
// Storage model (DESIGN.md §8): the large arrays — the class table and the
// dictionary-encoded row codes — are exposed as spans that point either
// into vectors this index owns (the Build path) or into an externally
// owned flat buffer such as an mmapped store file (FromSections, used by
// src/store/'s zero-copy loader). The index is move-only: moving transfers
// the owned buffers without invalidating the spans, while copying would
// silently alias them.

#ifndef JINFER_CORE_SIGNATURE_INDEX_H_
#define JINFER_CORE_SIGNATURE_INDEX_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/omega.h"
#include "core/types.h"
#include "relational/relation.h"
#include "util/result.h"

namespace jinfer {
namespace core {

/// One equivalence class of Cartesian-product tuples sharing a signature.
///
/// The layout is part of the persistent store's on-disk format (the class
/// table section is a flat array of these records, DESIGN.md §8), so it is
/// pinned by static_asserts in src/store/index_file.h; reorder or resize
/// only together with a format version bump.
struct SignatureClass {
  JoinPredicate signature;   ///< T(t) for every member tuple.
  uint64_t count = 0;        ///< Number of member tuples in D.
  uint32_t rep_r = 0;        ///< Representative R row index.
  uint32_t rep_p = 0;        ///< Representative P row index.
  bool maximal = false;      ///< No other class signature strictly contains
                             ///< this one (used by the TD strategy).
};

struct SignatureIndexOptions {
  /// Group tuples with equal signatures into weighted classes (the default
  /// and the production configuration). When false, every tuple of D gets
  /// its own singleton class — quadratic state, kept only for the
  /// compression ablation bench.
  bool compress = true;

  /// Number of worker threads for the build (classification pass and
  /// maximality sweep). 1 = serial (the default, and what tests use unless
  /// they exercise parallelism); 0 = one per hardware thread. The built
  /// index is identical for every thread count.
  int threads = 1;
};

/// A dictionary-encoded instance: flat row-major uint32 code arrays for R
/// and P over one shared global code space. Equal non-null values share a
/// code across both relations; every NULL cell gets a fresh code from the
/// descending range (NULL never matches anything, per rel::Value
/// semantics). This is the SignatureIndex build's input format and the
/// persistent store's serialized row representation.
struct EncodedInstance {
  std::vector<uint32_t> r_codes;
  std::vector<uint32_t> p_codes;
};

/// Production encode: merges the relations' per-column dictionaries into
/// the global code space with a column-wise remap — one array lookup per
/// cell, value hashing only once per distinct (column, value). The code
/// assignment reproduces the retained row-major reference bit-for-bit
/// (property-tested): global codes ascend from 0 in row-major
/// first-occurrence order over R then P, NULL codes descend from
/// UINT32_MAX per NULL cell in the same walk order.
EncodedInstance EncodeInstance(const rel::Relation& r, const rel::Relation& p);

/// Reference encode retained from the pre-columnar seed: walks
/// materialized rows cell by cell through a Value-keyed hash dictionary.
/// Kept (like minimax_reference) as the yardstick for the
/// encoded-vs-legacy property tests and the BM_EncodeRelation /
/// BM_IngestAndBuild row-major bench variants; not a production path.
EncodedInstance EncodeInstanceReference(const std::vector<rel::Row>& r_rows,
                                        const std::vector<rel::Row>& p_rows);

class SignatureIndex {
 public:
  /// Builds the index for an instance of two relations. Fails when Ω
  /// exceeds predicate capacity or a relation is empty.
  static util::Result<SignatureIndex> Build(
      const rel::Relation& r, const rel::Relation& p,
      const SignatureIndexOptions& options = {});

  /// The full row-major reference pipeline: EncodeInstanceReference over
  /// pre-materialized rows, then the same classification passes as Build.
  /// Property tests assert Build over the columnar storage is bit-identical
  /// to this for every observable (class table, row codes, transcripts).
  static util::Result<SignatureIndex> BuildReferenceRowMajor(
      const rel::Schema& r_schema, const std::vector<rel::Row>& r_rows,
      const rel::Schema& p_schema, const std::vector<rel::Row>& p_rows,
      const SignatureIndexOptions& options = {});

  /// Reassembles an index from its serialized sections without copying the
  /// large arrays: `classes` and the code spans are adopted as-is and must
  /// stay valid for the index's lifetime — `storage` (e.g. a shared mmap
  /// handle) is held to guarantee that. Only the signature→class hash map
  /// is rebuilt (O(#classes), negligible next to the classification pass).
  /// Fails with ParseError when the sections are mutually inconsistent
  /// (sizes, duplicate signatures under compression, counts not summing to
  /// num_tuples) — the store's last line of defense behind its checksum.
  /// A freshly Build()-ed and a FromSections()-reassembled index over the
  /// same instance are bit-identical in every observable (property-tested
  /// in tests/store/).
  static util::Result<SignatureIndex> FromSections(
      Omega omega, uint64_t num_tuples, bool compressed,
      std::span<const SignatureClass> classes,
      std::span<const uint32_t> r_codes, std::span<const uint32_t> p_codes,
      std::shared_ptr<const void> storage);

  SignatureIndex(SignatureIndex&&) = default;
  SignatureIndex& operator=(SignatureIndex&&) = default;
  // Copying would alias the owned buffers through the spans; the runtime
  // shares indexes via shared_ptr<const SignatureIndex> instead.
  SignatureIndex(const SignatureIndex&) = delete;
  SignatureIndex& operator=(const SignatureIndex&) = delete;

  const Omega& omega() const { return omega_; }

  /// Process-unique id stamped at Build time. Distinguishes a rebuilt
  /// index that happens to land at a destroyed index's address — caches
  /// keyed on index identity (the OPT strategy's engine cache) compare
  /// this instead of the address.
  uint64_t build_id() const { return build_id_; }

  /// True iff equal-signature tuples were grouped into weighted classes
  /// (SignatureIndexOptions::compress at build time).
  bool compressed() const { return compressed_; }

  size_t num_classes() const { return classes_.size(); }
  const SignatureClass& cls(ClassId id) const { return classes_[id]; }
  std::span<const SignatureClass> classes() const { return classes_; }

  /// |D| = |R| * |P|.
  uint64_t num_tuples() const { return num_tuples_; }

  /// Row counts of the underlying instance.
  size_t num_r_rows() const {
    return omega_.num_r_attrs() == 0 ? 0
                                     : r_codes_.size() / omega_.num_r_attrs();
  }
  size_t num_p_rows() const {
    return omega_.num_p_attrs() == 0 ? 0
                                     : p_codes_.size() / omega_.num_p_attrs();
  }

  /// Dictionary-encoded rows, flat row-major (row i occupies codes
  /// [i*width, (i+1)*width) with width = the relation's attribute count).
  /// These are the serialized sections of the persistent store.
  std::span<const uint32_t> r_codes() const { return r_codes_; }
  std::span<const uint32_t> p_codes() const { return p_codes_; }

  /// Class holding the given signature, if any tuple has it.
  std::optional<ClassId> ClassOfSignature(const JoinPredicate& sig) const;

  /// T(t) for an arbitrary tuple (by original row indices), recomputed from
  /// the encoded rows. Agrees with the class signatures by construction.
  JoinPredicate SignatureOfPair(size_t r_row, size_t p_row) const;

  /// True iff θ selects the tuples of class `id`: θ ⊆ signature.
  bool Selects(const JoinPredicate& theta, ClassId id) const {
    return theta.IsSubsetOf(classes_[id].signature);
  }

  /// Number of tuples of D selected by θ (weighted by class counts).
  uint64_t CountSelected(const JoinPredicate& theta) const;

  /// True iff θ1 and θ2 select exactly the same subset of D — the paper's
  /// instance-equivalence (§3.3).
  bool EquivalentOnInstance(const JoinPredicate& theta1,
                            const JoinPredicate& theta2) const;

  /// True iff θ selects at least one tuple of D (θ is non-nullable).
  bool IsNonNullable(const JoinPredicate& theta) const;

 private:
  SignatureIndex() = default;

  /// Shared back half of Build and BuildReferenceRowMajor: dedup, the
  /// parallel classification pass and the maximality sweep over an
  /// already-encoded instance.
  static util::Result<SignatureIndex> BuildFromEncoded(
      Omega omega, EncodedInstance encoded,
      const SignatureIndexOptions& options);

  /// Rebuilds class_of_signature_ from classes_; shared by Build (which
  /// fills it incrementally instead) and FromSections.
  util::Status IndexSignatures();

  Omega omega_;
  uint64_t build_id_ = 0;
  bool compressed_ = true;
  uint64_t num_tuples_ = 0;

  // Owned storage (the Build path). A mapped index leaves these empty and
  // keeps the backing file alive through storage_ instead; either way the
  // spans below are the single read surface.
  std::vector<SignatureClass> owned_classes_;
  std::vector<uint32_t> owned_r_codes_;
  std::vector<uint32_t> owned_p_codes_;
  std::shared_ptr<const void> storage_;

  std::span<const SignatureClass> classes_;
  std::span<const uint32_t> r_codes_;
  std::span<const uint32_t> p_codes_;

  std::unordered_map<JoinPredicate, ClassId, util::SmallBitsetHash>
      class_of_signature_;
};

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_SIGNATURE_INDEX_H_
