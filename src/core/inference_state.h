// InferenceState: the mutable state of one interactive inference session —
// the sample gathered so far plus the certain/informative classification of
// every signature class (§3.4).
//
// Classification is by the paper's PTIME characterizations:
//   Lemma 3.3: t ∈ Cert+(S)  iff  T(S+) ⊆ T(t)
//   Lemma 3.4: t ∈ Cert−(S)  iff  ∃ t′ ∈ S−. T(S+) ∩ T(t) ⊆ T(t′)
// A tuple is informative iff it is unlabeled and in neither Cert set
// (Theorem 3.5). T(S+) is maintained incrementally as a bitset intersection;
// re-classification after a label is O(#classes · |S−|) word operations.
//
// The state is cheaply copyable (O(#classes)), which is how the lookahead
// strategies simulate labelings.

#ifndef JINFER_CORE_INFERENCE_STATE_H_
#define JINFER_CORE_INFERENCE_STATE_H_

#include <cstdint>
#include <vector>

#include "core/sample.h"
#include "core/signature_index.h"
#include "core/types.h"
#include "util/result.h"

namespace jinfer {
namespace core {

/// Classification of a class w.r.t. the current sample.
enum class TupleState : uint8_t {
  kInformative,
  kLabeled,
  kCertainPositive,
  kCertainNegative,
};

class InferenceState {
 public:
  explicit InferenceState(const SignatureIndex& index);

  const SignatureIndex& index() const { return *index_; }

  /// Records the user's label for an (informative) class and re-classifies.
  /// Fails with InconsistentSample when the label contradicts the sample —
  /// i.e. when the class was certain for the opposite label (Algorithm 1
  /// lines 6–7); the state is left unchanged in that case.
  util::Status ApplyLabel(ClassId cls, Label label);

  TupleState state(ClassId cls) const { return states_[cls]; }
  bool IsInformative(ClassId cls) const {
    return states_[cls] == TupleState::kInformative;
  }

  /// Classes still informative, in increasing ClassId order.
  std::vector<ClassId> InformativeClasses() const;

  /// Number of informative classes.
  size_t NumInformativeClasses() const { return num_informative_classes_; }

  /// Number of informative *tuples* of D (classes weighted by multiplicity).
  uint64_t InformativeTupleWeight() const { return informative_weight_; }

  /// The sample gathered so far, in labeling order.
  const Sample& sample() const { return sample_; }

  /// T(S+); equals Ω while no positive example exists. This is also the
  /// predicate returned to the user at halt (§3.3 instance-equivalence).
  const JoinPredicate& InferredPredicate() const { return pos_predicate_; }

  bool HasPositiveExample() const { return has_positive_; }

  /// u_α(t): the number of tuples (weighted) that would newly become
  /// uninformative if class `cls` were labeled `label`, excluding the
  /// labeled tuple itself — the paper's u± quantities feeding entropy
  /// (§4.4). `cls` must be informative.
  uint64_t CountNewlyUninformative(ClassId cls, Label label) const;

  /// Copy of the state with one more label applied. `cls` must be
  /// informative (then either label keeps the sample consistent).
  InferenceState WithLabel(ClassId cls, Label label) const;

 private:
  /// Recomputes states_ and the informative counters from
  /// pos_predicate_/negative_signatures_/labels.
  void Reclassify();

  bool CertainPositive(const JoinPredicate& sig) const {
    return pos_predicate_.IsSubsetOf(sig);
  }
  bool CertainNegative(const JoinPredicate& sig) const {
    JoinPredicate key = pos_predicate_ & sig;
    for (const JoinPredicate& neg : negative_signatures_) {
      if (key.IsSubsetOf(neg)) return true;
    }
    return false;
  }

  const SignatureIndex* index_;
  Sample sample_;
  std::vector<TupleState> states_;
  std::vector<bool> labeled_;
  JoinPredicate pos_predicate_;  // T(S+), starts at Ω.
  bool has_positive_ = false;
  std::vector<JoinPredicate> negative_signatures_;  // {T(t) | t ∈ S−}
  size_t num_informative_classes_ = 0;
  uint64_t informative_weight_ = 0;
};

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_INFERENCE_STATE_H_
