// InferenceState: the mutable state of one interactive inference session —
// the sample gathered so far plus the certain/informative classification of
// every signature class (§3.4).
//
// Classification is by the paper's PTIME characterizations:
//   Lemma 3.3: t ∈ Cert+(S)  iff  T(S+) ⊆ T(t)
//   Lemma 3.4: t ∈ Cert−(S)  iff  ∃ t′ ∈ S−. T(S+) ∩ T(t) ⊆ T(t′)
// A tuple is informative iff it is unlabeled and in neither Cert set
// (Theorem 3.5).
//
// Classification is monotone: under a consistent sample a class only ever
// moves out of the informative pool, never back. The state exploits this by
// maintaining (a) a sorted compact list of the currently-informative
// classes and (b) a cached key word pos ∩ sig per class, so applying a
// label touches only informative classes:
//   negative label:  O(|informative|) word ops — one subset test against
//                    the new witness per informative class (existing
//                    witnesses already failed for them);
//   positive label:  O(|informative| · (1 + |S−|)) word ops;
// versus O(#classes · |S−|) for a from-scratch reclassification.
//
// For the lookahead strategies' simulation tree, ApplyLabelScoped/UndoLabel
// push and pop (ClassId, old TupleState) records on an internal delta stack:
// simulating a label and reverting it is allocation-free once the stack has
// warmed up, and never copies the state. The state also remains cheaply
// copyable (O(#classes)) for callers that prefer value semantics
// (WithLabel).

#ifndef JINFER_CORE_INFERENCE_STATE_H_
#define JINFER_CORE_INFERENCE_STATE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/sample.h"
#include "core/signature_index.h"
#include "core/types.h"
#include "util/result.h"

namespace jinfer {
namespace core {

/// Classification of a class w.r.t. the current sample.
enum class TupleState : uint8_t {
  kInformative,
  kLabeled,
  kCertainPositive,
  kCertainNegative,
};

class InferenceState {
 public:
  explicit InferenceState(const SignatureIndex& index);

  const SignatureIndex& index() const { return *index_; }

  /// Records the user's label for an (informative) class and re-classifies.
  /// Fails with InconsistentSample when the label contradicts the sample —
  /// i.e. when the class was certain for the opposite label (Algorithm 1
  /// lines 6–7); the state is left unchanged in that case.
  util::Status ApplyLabel(ClassId cls, Label label);

  /// Applies a label to an *informative* class (then either label keeps the
  /// sample consistent) and records an undo frame on the internal delta
  /// stack. Pair every call with UndoLabel to simulate labelings in place —
  /// the lookahead hot path. Frames unwind strictly LIFO.
  void ApplyLabelScoped(ClassId cls, Label label);

  /// Reverts the most recent ApplyLabelScoped, restoring the classification,
  /// counters, key cache and sample exactly.
  void UndoLabel();

  TupleState state(ClassId cls) const { return states_[cls]; }
  bool IsInformative(ClassId cls) const {
    return states_[cls] == TupleState::kInformative;
  }

  /// Classes still informative, in increasing ClassId order.
  std::vector<ClassId> InformativeClasses() const { return informative_; }

  /// The i-th informative class (increasing ClassId order). Stable across an
  /// ApplyLabelScoped/UndoLabel pair, so callers may iterate by index while
  /// simulating labels between accesses.
  ClassId InformativeClassAt(size_t i) const { return informative_[i]; }

  /// Number of informative classes.
  size_t NumInformativeClasses() const { return informative_.size(); }

  /// Number of informative *tuples* of D (classes weighted by multiplicity).
  uint64_t InformativeTupleWeight() const { return informative_weight_; }

  /// The sample gathered so far, in labeling order.
  const Sample& sample() const { return sample_; }

  /// T(S+); equals Ω while no positive example exists. This is also the
  /// predicate returned to the user at halt (§3.3 instance-equivalence).
  const JoinPredicate& InferredPredicate() const { return pos_predicate_; }

  bool HasPositiveExample() const { return has_positive_; }

  /// u_α(t): the number of tuples (weighted) that would newly become
  /// uninformative if class `cls` were labeled `label`, excluding the
  /// labeled tuple itself — the paper's u± quantities feeding entropy
  /// (§4.4). `cls` must be informative. Read-only; O(|informative|) for a
  /// negative label, O(|informative| · |S−|) for a positive one.
  uint64_t CountNewlyUninformative(ClassId cls, Label label) const;

  /// Both u+(t) and u−(t) in a single sweep over the informative list —
  /// the two counts share every per-class load, and the entropy leaves
  /// always need both. Returns {u+, u−}.
  std::pair<uint64_t, uint64_t> CountNewlyUninformativeBoth(
      ClassId cls) const;

  /// u+(t) and u−(t) for *every* informative class in one pass: on return
  /// u_pos[j] / u_neg[j] hold the counts for InformativeClassAt(j). This is
  /// the column-wise batch form of CountNewlyUninformativeBoth — the outer
  /// loop streams each informative class's key/count once and scores all
  /// candidates against it, so the candidate loop runs over the contiguous
  /// packed signature array with no per-candidate re-derivation. The
  /// labeled class's self-exclusion is folded out of the inner loop: a
  /// candidate always newly-uninformativizes its own class under either
  /// label, so the sweep counts it and subtracts one at the end, keeping
  /// the inner loop branch-free. Bit-identical to calling
  /// CountNewlyUninformativeBoth per candidate (sums are exact integers;
  /// only the association order differs). Buffers are caller-owned so
  /// concurrent sweeps on per-thread states share nothing.
  void CountNewlyUninformativeAll(std::vector<uint64_t>& u_pos,
                                  std::vector<uint64_t>& u_neg) const;

  /// Copy of the state with one more label applied. `cls` must be
  /// informative (then either label keeps the sample consistent).
  InferenceState WithLabel(ClassId cls, Label label) const;

  /// Process-wide count of InferenceState copy operations (copy
  /// construction and copy assignment; moves are free and uncounted). Test
  /// instrumentation backing the "the search hot path never copies the
  /// state" assertions on the minimax engine and the lookahead tree.
  static uint64_t CopyCount() {
    return copy_count_.load(std::memory_order_relaxed);
  }

 private:
  /// Undo frame for one applied label: where this frame's transition records
  /// start on the shared stack, plus the scalar state to restore.
  struct DeltaFrame {
    size_t transitions_begin;
    ClassId cls;
    Label label;
    bool old_has_positive;
    JoinPredicate old_pos;
    uint64_t old_weight;
  };

  /// Recomputes states_, informative_, keys_ and the counters from scratch.
  /// Only needed at construction; labels are applied incrementally after.
  void Reclassify();

  /// Incremental application shared by ApplyLabel and ApplyLabelScoped.
  /// When `record` is true an undo frame is pushed onto the delta stack.
  void ApplyLabelIncremental(ClassId cls, Label label, bool record);

  bool CertainPositive(const JoinPredicate& sig) const {
    return pos_predicate_.IsSubsetOf(sig);
  }
  bool CertainNegative(const JoinPredicate& sig) const {
    JoinPredicate key = pos_predicate_ & sig;
    for (const JoinPredicate& neg : negative_signatures_) {
      if (key.IsSubsetOf(neg)) return true;
    }
    return false;
  }

  const SignatureIndex* index_;
  Sample sample_;
  std::vector<TupleState> states_;
  std::vector<bool> labeled_;
  JoinPredicate pos_predicate_;  // T(S+), starts at Ω.
  bool has_positive_ = false;
  std::vector<JoinPredicate> negative_signatures_;  // {T(t) | t ∈ S−}
  uint64_t informative_weight_ = 0;

  /// Currently-informative classes, sorted by ClassId. The per-label sweeps
  /// only walk this list.
  std::vector<ClassId> informative_;
  /// ceil(|Ω| / 64), min 1: every predicate lives inside Ω, so the hot
  /// sweeps run word kernels (util/bit_vector.h) over this many words
  /// instead of JoinPredicate::kWords — the active-word prefix.
  size_t active_words_ = JoinPredicate::kWords;

  // Packed columnar sweep arrays (DESIGN.md §12), class-major with stride
  // W = active_words_: for the i-th informative class, words [i·W, i·W+W)
  // of inf_keys_ hold its key T(S+) ∩ T(c), the same slice of inf_sigs_
  // holds its signature T(c), and inf_counts_[i] its tuple count, all in
  // informative_ order. neg_words_ packs the W-word signature of every
  // negative witness the same way. The per-label sweeps, the u± counts and
  // the batch candidate sweep stream these flat uint64_t arrays with the
  // util::kernels word loops instead of chasing 32-byte bitsets and
  // 64-byte SignatureClass records — the sweeps are memory-bound, and at
  // W == 1 this cuts the touched bytes per class from ~96 to 24. The
  // Cert+ test is key == T(S+) (Lemma 3.3 via keys); Cert− is
  // key ⊆ some witness (Lemma 3.4). Signatures ride along so a positive
  // undo can recompute every key with one flat pos ∩ sig pass and the
  // batch sweep can read candidate signatures contiguously.
  std::vector<uint64_t> inf_keys_;
  std::vector<uint64_t> inf_sigs_;
  std::vector<uint64_t> inf_counts_;
  std::vector<uint64_t> neg_words_;

  /// Refills the packed arrays from the informative list and the sample
  /// (exact for any state: keys are always pos ∩ sig). Construction-time
  /// only; labels maintain the arrays incrementally.
  void RebuildPackedInformative();

  // Delta stack for ApplyLabelScoped/UndoLabel: transition records shared
  // across frames so repeated simulate/undo cycles stop allocating.
  std::vector<std::pair<ClassId, TupleState>> delta_transitions_;
  std::vector<DeltaFrame> delta_frames_;
  std::vector<ClassId> undo_scratch_;  // Reused merge buffer for UndoLabel.

  /// Zero-size-in-spirit member whose copy operations bump the process-wide
  /// copy counter, so the implicitly-defined copy constructor/assignment of
  /// InferenceState stay instrumented without hand-listing every member.
  struct CopyProbe {
    CopyProbe() = default;
    CopyProbe(const CopyProbe&) {
      copy_count_.fetch_add(1, std::memory_order_relaxed);
    }
    CopyProbe& operator=(const CopyProbe&) {
      copy_count_.fetch_add(1, std::memory_order_relaxed);
      return *this;
    }
    CopyProbe(CopyProbe&&) noexcept = default;
    CopyProbe& operator=(CopyProbe&&) noexcept = default;
  };
  CopyProbe copy_probe_;

  inline static std::atomic<uint64_t> copy_count_{0};
};

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_INFERENCE_STATE_H_
