#include "core/lattice.h"

#include <algorithm>
#include <unordered_set>

#include "util/string_util.h"

namespace jinfer {
namespace core {

namespace {

void SortBySizeThenBits(std::vector<JoinPredicate>* preds) {
  std::sort(preds->begin(), preds->end(),
            [](const JoinPredicate& a, const JoinPredicate& b) {
              size_t ca = a.Count(), cb = b.Count();
              if (ca != cb) return ca < cb;
              return a < b;
            });
}

}  // namespace

double JoinRatio(const SignatureIndex& index) {
  JINFER_CHECK(index.num_classes() > 0, "empty index");
  uint64_t total = 0;
  for (const auto& c : index.classes()) total += c.signature.Count();
  return static_cast<double>(total) /
         static_cast<double>(index.num_classes());
}

std::vector<JoinPredicate> DistinctSignatures(const SignatureIndex& index) {
  std::vector<JoinPredicate> out;
  out.reserve(index.num_classes());
  for (const auto& c : index.classes()) out.push_back(c.signature);
  SortBySizeThenBits(&out);
  return out;
}

std::vector<JoinPredicate> MaximalSignatures(const SignatureIndex& index) {
  std::vector<JoinPredicate> out;
  for (const auto& c : index.classes()) {
    if (c.maximal) out.push_back(c.signature);
  }
  SortBySizeThenBits(&out);
  return out;
}

util::Result<std::vector<JoinPredicate>> NonNullablePredicates(
    const SignatureIndex& index, size_t limit) {
  // Down-closure by repeated single-bit removal from the maximal
  // signatures; a hash set deduplicates across overlapping cones.
  std::unordered_set<JoinPredicate, util::SmallBitsetHash> closed;
  std::vector<JoinPredicate> frontier = MaximalSignatures(index);
  for (const auto& s : frontier) closed.insert(s);

  while (!frontier.empty()) {
    if (closed.size() > limit) {
      return util::Status::CapacityExceeded(util::StrFormat(
          "non-nullable predicate closure exceeds limit %zu", limit));
    }
    std::vector<JoinPredicate> next;
    for (const auto& pred : frontier) {
      pred.ForEachSetBit([&](size_t bit) {
        JoinPredicate child = pred;
        child.Reset(bit);
        if (closed.insert(child).second) next.push_back(child);
      });
    }
    frontier = std::move(next);
  }
  if (closed.size() > limit) {
    return util::Status::CapacityExceeded(util::StrFormat(
        "non-nullable predicate closure exceeds limit %zu", limit));
  }

  std::vector<JoinPredicate> out(closed.begin(), closed.end());
  SortBySizeThenBits(&out);
  return out;
}

}  // namespace core
}  // namespace jinfer
