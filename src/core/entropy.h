// Entropy of a tuple (§4.4): the information that labeling it can bring.
//
//   entropy_S(t)  = (min(u+, u−), max(u+, u−))
//   entropy²_S(t) = Algorithm 5 (two labels deep, counts relative to S)
//   entropy^k     = the natural k-step generalization (k=1,2 match the
//                   paper; k≥3 is provided for the lookahead-depth ablation)
//
// A pair e dominates e′ iff both components are ≥; the skyline of a set of
// entropies is its Pareto frontier. (∞,∞) encodes "labeling ends the
// session" (Algorithm 5 lines 3–5).

#ifndef JINFER_CORE_ENTROPY_H_
#define JINFER_CORE_ENTROPY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/inference_state.h"
#include "core/types.h"

namespace jinfer {
namespace core {

struct Entropy {
  static constexpr uint64_t kInfinity = std::numeric_limits<uint64_t>::max();

  uint64_t min_u = 0;
  uint64_t max_u = 0;

  static Entropy Infinite() { return {kInfinity, kInfinity}; }
  static Entropy OfCounts(uint64_t a, uint64_t b) {
    return a <= b ? Entropy{a, b} : Entropy{b, a};
  }

  friend bool operator==(const Entropy& a, const Entropy& b) {
    return a.min_u == b.min_u && a.max_u == b.max_u;
  }
  /// Ordering for canonical sorting (by min, then max).
  friend bool operator<(const Entropy& a, const Entropy& b) {
    if (a.min_u != b.min_u) return a.min_u < b.min_u;
    return a.max_u < b.max_u;
  }

  std::string ToString() const;
};

/// e dominates e′ iff e.min ≥ e′.min and e.max ≥ e′.max. (Not strict:
/// equal pairs dominate each other; Skyline deduplicates first.)
bool Dominates(const Entropy& a, const Entropy& b);

/// Pareto frontier of the (deduplicated) entropy set, sorted ascending.
std::vector<Entropy> Skyline(std::vector<Entropy> entropies);

/// Picks the skyline element with min-component equal to
/// max{min(e) | e ∈ E} — the selection rule shared by L1S and L2S
/// (Algorithm 4 lines 2–3). E must be non-empty.
Entropy SkylineMaxMin(const std::vector<Entropy>& entropies);

/// entropy_S(t) for an informative class (one-step).
Entropy EntropyOf(const InferenceState& state, ClassId cls);

/// Reusable buffers for the batch entropy sweeps, so the lookahead and
/// minimax hot paths stay allocation-free once warm. One per thread —
/// batch calls on per-thread states must not share a scratch.
struct EntropyBatchScratch {
  std::vector<uint64_t> u_pos;
  std::vector<uint64_t> u_neg;
};

/// entropy_S(t) for *every* informative class in one batched sweep:
/// out[i] = EntropyOf(state, state.InformativeClassAt(i)), bit-identically
/// (the u± sums are exact integers and the batch sweep reassociates them
/// only), via InferenceState::CountNewlyUninformativeAll — one pass over
/// the packed class arrays scores all candidates instead of re-streaming
/// them per candidate.
void EntropyOfAll(const InferenceState& state, EntropyBatchScratch& scratch,
                  std::vector<Entropy>& out);

/// entropy^k_S(t); k = 1 is EntropyOf, k = 2 is the paper's Algorithm 5.
/// Counts at the leaves are taken relative to `state` and exclude the k
/// labeled tuples, matching lines 8–9 of Algorithm 5. Copies the state once
/// per call (never per simulation-tree node).
Entropy EntropyKOf(const InferenceState& state, ClassId cls, int k);

/// EntropyKOf on a caller-owned scratch state: the simulation tree is
/// explored with ApplyLabelScoped/UndoLabel directly on `state`, which is
/// restored exactly before returning. Lets a strategy evaluating many
/// candidates reuse one scratch copy instead of copying per candidate —
/// the lookahead hot path. The overload taking an EntropyBatchScratch also
/// reuses the batch buffers across candidates; the other allocates its own.
Entropy EntropyKOfInPlace(InferenceState& state, ClassId cls, int k);
Entropy EntropyKOfInPlace(InferenceState& state, ClassId cls, int k,
                          EntropyBatchScratch& scratch);

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_ENTROPY_H_
