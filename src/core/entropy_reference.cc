#include "core/entropy_reference.h"

namespace jinfer {
namespace core {

namespace {

/// The per-candidate recursion exactly as the batched EntropyRec computes
/// it, minus the batched bottom level: every child — leaf or not — is
/// evaluated by its own recursive call, and every leaf by its own
/// CountNewlyUninformativeBoth sweep.
Entropy EntropyRecReference(uint64_t root_weight, InferenceState& state,
                            ClassId cls, int remaining, uint64_t depth) {
  if (remaining == 1) {
    uint64_t removed_so_far = root_weight - state.InformativeTupleWeight();
    auto [newly_pos, newly_neg] = state.CountNewlyUninformativeBoth(cls);
    uint64_t up = removed_so_far + newly_pos - depth;
    uint64_t un = removed_so_far + newly_neg - depth;
    return Entropy::OfCounts(up, un);
  }

  Entropy per_label[2];
  for (Label label : {Label::kPositive, Label::kNegative}) {
    state.ApplyLabelScoped(cls, label);
    Entropy e;
    if (state.NumInformativeClasses() == 0) {
      e = Entropy::Infinite();
    } else {
      bool first = true;
      for (size_t i = 0; i < state.NumInformativeClasses(); ++i) {
        ClassId c2 = state.InformativeClassAt(i);
        Entropy inner = EntropyRecReference(root_weight, state, c2,
                                            remaining - 1, depth + 1);
        if (first || inner.min_u > e.min_u ||
            (inner.min_u == e.min_u && inner.max_u > e.max_u)) {
          e = inner;
          first = false;
        }
      }
    }
    state.UndoLabel();
    per_label[label == Label::kPositive ? 0 : 1] = e;
  }

  const Entropy& ep = per_label[0];
  const Entropy& en = per_label[1];
  if (ep.min_u != en.min_u) return ep.min_u < en.min_u ? ep : en;
  return ep.max_u <= en.max_u ? ep : en;
}

}  // namespace

Entropy EntropyKOfInPlaceReference(InferenceState& state, ClassId cls,
                                   int k) {
  JINFER_CHECK(k >= 1, "entropy lookahead depth must be >= 1, got %d", k);
  JINFER_CHECK(state.IsInformative(cls), "class %u is not informative", cls);
  return EntropyRecReference(state.InformativeTupleWeight(), state, cls, k,
                             0);
}

Entropy EntropyKOfReference(const InferenceState& state, ClassId cls, int k) {
  if (k == 1) return EntropyOf(state, cls);
  InferenceState scratch = state;
  return EntropyKOfInPlaceReference(scratch, cls, k);
}

}  // namespace core
}  // namespace jinfer
