// Oracles: the "user" of the interactive scenario (§3.2).
//
// The experiments simulate the user with GoalOracle, which labels tuples
// consistently with a goal predicate θG — exactly the paper's setup. The
// LyingOracle injects label noise for failure testing (Algorithm 1 must
// detect the resulting inconsistency). Interactive (stdin) oracles live in
// the examples, not the library.

#ifndef JINFER_CORE_ORACLE_H_
#define JINFER_CORE_ORACLE_H_

#include "core/signature_index.h"
#include "core/types.h"
#include "util/rng.h"

namespace jinfer {
namespace core {

class Oracle {
 public:
  virtual ~Oracle() = default;

  /// Labels one tuple (presented as its signature class).
  virtual Label LabelClass(const SignatureIndex& index, ClassId cls) = 0;
};

/// Labels a tuple + iff θG selects it, i.e. iff θG ⊆ T(t).
class GoalOracle : public Oracle {
 public:
  explicit GoalOracle(JoinPredicate goal) : goal_(goal) {}

  Label LabelClass(const SignatureIndex& index, ClassId cls) override {
    return goal_.IsSubsetOf(index.cls(cls).signature) ? Label::kPositive
                                                      : Label::kNegative;
  }

  const JoinPredicate& goal() const { return goal_; }

 private:
  JoinPredicate goal_;
};

/// A GoalOracle that flips each label independently with probability
/// `lie_probability` — failure injection for the consistency check of
/// Algorithm 1 (lines 6-7).
class LyingOracle : public Oracle {
 public:
  LyingOracle(JoinPredicate goal, double lie_probability, uint64_t seed)
      : goal_(goal), lie_probability_(lie_probability), rng_(seed) {}

  Label LabelClass(const SignatureIndex& index, ClassId cls) override {
    Label truth = goal_.IsSubsetOf(index.cls(cls).signature)
                      ? Label::kPositive
                      : Label::kNegative;
    if (rng_.NextBool(lie_probability_)) {
      return truth == Label::kPositive ? Label::kNegative : Label::kPositive;
    }
    return truth;
  }

 private:
  JoinPredicate goal_;
  double lie_probability_;
  util::Rng rng_;
};

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_ORACLE_H_
