#include "core/inference.h"

#include "util/stopwatch.h"

namespace jinfer {
namespace core {

util::Result<InferenceResult> RunInference(const SignatureIndex& index,
                                           Strategy& strategy, Oracle& oracle,
                                           const InferenceOptions& options) {
  InferenceState state(index);
  InferenceResult result;
  util::Stopwatch watch;
  double oracle_seconds = 0;

  while (true) {
    if (options.max_interactions > 0 &&
        result.num_interactions >= options.max_interactions) {
      result.halted_early = state.NumInformativeClasses() > 0;
      break;
    }
    std::optional<ClassId> next = strategy.SelectNext(state);
    if (!next) {
      // Halt condition Γ: the strategy may only give up when no informative
      // tuple remains.
      JINFER_CHECK(state.NumInformativeClasses() == 0,
                   "strategy %s returned no tuple with %zu informative "
                   "classes remaining",
                   strategy.name(), state.NumInformativeClasses());
      break;
    }
    // The bundled strategies only present informative tuples; a custom
    // strategy may present any unlabeled tuple (the user's answer is then
    // either redundant or — if it contradicts the sample — caught below,
    // Algorithm 1 lines 6-7).
    JINFER_CHECK(state.state(*next) != TupleState::kLabeled,
                 "strategy %s re-presented the already-labeled class %u",
                 strategy.name(), *next);

    uint64_t informative_before = state.InformativeTupleWeight();
    util::Stopwatch oracle_watch;
    Label label = oracle.LabelClass(index, *next);
    oracle_seconds += oracle_watch.ElapsedSeconds();

    JINFER_RETURN_NOT_OK(state.ApplyLabel(*next, label));
    ++result.num_interactions;
    if (options.record_trace) {
      result.trace.push_back(
          InteractionRecord{*next, label, informative_before});
    }
  }

  result.predicate = state.InferredPredicate();
  result.seconds = watch.ElapsedSeconds() - oracle_seconds;
  return result;
}

}  // namespace core
}  // namespace jinfer
