// The lattice of join predicates (P(Ω), ⊆) restricted to the instance
// (§4.2), plus the join-ratio instance-complexity measure (§5.3).
//
// A predicate is *non-nullable* iff it selects at least one tuple of D,
// i.e. iff it is a subset of some tuple signature. The non-nullable
// predicates form the down-closure of the distinct signatures; the paper
// uses them as goal predicates in the synthetic experiments.

#ifndef JINFER_CORE_LATTICE_H_
#define JINFER_CORE_LATTICE_H_

#include <vector>

#include "core/signature_index.h"
#include "core/types.h"
#include "util/result.h"

namespace jinfer {
namespace core {

/// Join ratio of the instance: the mean size of the distinct tuple
/// signatures ("unique join predicates" in §5.3). Example 2.1's instance
/// has join ratio 2.
double JoinRatio(const SignatureIndex& index);

/// All distinct tuple signatures (the lattice nodes that have corresponding
/// tuples — the boxed nodes of Figure 4), sorted by size then bit order.
std::vector<JoinPredicate> DistinctSignatures(const SignatureIndex& index);

/// The ⊆-maximal distinct signatures (what the TD strategy proposes first).
std::vector<JoinPredicate> MaximalSignatures(const SignatureIndex& index);

/// Enumerates every non-nullable predicate (down-closure of the signatures),
/// sorted by size then bit order. Fails with CapacityExceeded when the
/// closure would exceed `limit` predicates (the closure can be exponential;
/// the synthetic experiment configurations stay ≤ 2^10).
util::Result<std::vector<JoinPredicate>> NonNullablePredicates(
    const SignatureIndex& index, size_t limit = size_t{1} << 20);

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_LATTICE_H_
