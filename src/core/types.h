// Shared vocabulary types of the inference core.

#ifndef JINFER_CORE_TYPES_H_
#define JINFER_CORE_TYPES_H_

#include <cstdint>

#include "util/bitset.h"

namespace jinfer {
namespace core {

/// A join predicate θ ⊆ Ω, stored as a bitset over attribute pairs.
/// Bit (i * |attrs(P)| + j) encodes the equality R[Ai] = P[Bj]; the Omega
/// class owns the mapping. θ1 ⊆ θ2 ("θ1 is more general") is
/// JoinPredicate::IsSubsetOf.
using JoinPredicate = util::SmallBitset;

/// Identifier of a signature equivalence class within a SignatureIndex.
/// Tuples of the Cartesian product with equal T(t) share a class.
using ClassId = uint32_t;

/// User label for a presented tuple: + (in the join result) or −.
enum class Label : uint8_t { kPositive, kNegative };

inline const char* LabelToString(Label label) {
  return label == Label::kPositive ? "+" : "-";
}

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_TYPES_H_
