#include "core/session_report.h"

#include <sstream>

#include "relational/csv.h"
#include "util/string_util.h"

namespace jinfer {
namespace core {

namespace {

void AppendRowValues(const rel::Relation& rel, size_t row,
                     std::ostringstream* os) {
  *os << rel.schema().relation_name() << '(';
  for (size_t c = 0; c < rel.num_attributes(); ++c) {
    if (c) *os << ", ";
    *os << rel.at(row, c).ToString();
  }
  *os << ')';
}

}  // namespace

std::string RenderTranscript(const SignatureIndex& index,
                             const rel::Relation& r, const rel::Relation& p,
                             const InferenceResult& result) {
  std::ostringstream os;
  for (size_t q = 0; q < result.trace.size(); ++q) {
    const InteractionRecord& rec = result.trace[q];
    const SignatureClass& cls = index.cls(rec.cls);
    os << "Q" << q + 1 << " [" << rec.informative_before
       << " informative left]: ";
    AppendRowValues(r, cls.rep_r, &os);
    os << " x ";
    AppendRowValues(p, cls.rep_p, &os);
    os << " -> " << (rec.label == Label::kPositive ? "YES" : "no") << '\n';
  }
  os << "Inferred predicate";
  if (result.halted_early) os << " (stopped early)";
  os << ": " << index.omega().Format(result.predicate) << '\n';
  return os.str();
}

std::string TraceToCsv(const SignatureIndex& index,
                       const InferenceResult& result) {
  std::ostringstream os;
  os << "question,r_row,p_row,label,signature,informative_before\n";
  for (size_t q = 0; q < result.trace.size(); ++q) {
    const InteractionRecord& rec = result.trace[q];
    const SignatureClass& cls = index.cls(rec.cls);
    os << q + 1 << ',' << cls.rep_r << ',' << cls.rep_p << ','
       << LabelToString(rec.label) << ",\""
       << index.omega().Format(cls.signature) << "\","
       << rec.informative_before << '\n';
  }
  return os.str();
}

util::Result<Sample> SampleFromTraceCsv(const SignatureIndex& index,
                                        const std::string& csv_text) {
  JINFER_ASSIGN_OR_RETURN(rel::Relation trace,
                          rel::ReadRelationCsvText(csv_text, "trace"));
  const rel::Schema& schema = trace.schema();
  auto r_col = schema.IndexOf("r_row");
  auto p_col = schema.IndexOf("p_row");
  auto label_col = schema.IndexOf("label");
  if (!r_col || !p_col || !label_col) {
    return util::Status::ParseError(
        "trace CSV must have r_row, p_row and label columns");
  }

  Sample sample;
  for (size_t row = 0; row < trace.num_rows(); ++row) {
    const rel::Value& rv = trace.at(row, *r_col);
    const rel::Value& pv = trace.at(row, *p_col);
    const rel::Value& lv = trace.at(row, *label_col);
    if (!rv.is_int() || !pv.is_int() || !lv.is_string()) {
      return util::Status::ParseError(util::StrFormat(
          "trace row %zu: expected integer rows and string label", row + 1));
    }
    if (lv.AsString() != "+" && lv.AsString() != "-") {
      return util::Status::ParseError("label must be '+' or '-', got " +
                                      lv.AsString());
    }
    if (rv.AsInt() < 0 || pv.AsInt() < 0) {
      return util::Status::OutOfRange("negative row index in trace");
    }
    size_t r_row = static_cast<size_t>(rv.AsInt());
    size_t p_row = static_cast<size_t>(pv.AsInt());
    if (r_row >= index.num_r_rows() || p_row >= index.num_p_rows()) {
      return util::Status::OutOfRange(util::StrFormat(
          "trace tuple (%zu,%zu) outside the %zux%zu instance", r_row,
          p_row, index.num_r_rows(), index.num_p_rows()));
    }
    JoinPredicate sig = index.SignatureOfPair(r_row, p_row);
    auto cls = index.ClassOfSignature(sig);
    if (!cls) {
      return util::Status::NotFound(util::StrFormat(
          "tuple (%zu,%zu) has no class in this index", r_row, p_row));
    }
    sample.push_back(ClassExample{
        *cls, lv.AsString() == "+" ? Label::kPositive : Label::kNegative});
  }
  return sample;
}

}  // namespace core
}  // namespace jinfer
