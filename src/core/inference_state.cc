#include "core/inference_state.h"

#include <algorithm>

#include "util/bit_vector.h"
#include "util/simd/sweep.h"

namespace jinfer {
namespace core {

namespace {

using util::kernels::And2Words;
using util::kernels::AnyWitnessContains;
using util::kernels::EqualWords;
using util::kernels::IsSubsetWords;

/// The active-word prefix is 1..JoinPredicate::kWords by construction
/// (set once from |Ω| ≤ 256). Stating the range lets value-range
/// propagation delete the kernels' `words >= kSimdMinWords` dispatch
/// branch from every inlined per-candidate loop in this file, keeping
/// those loops as tight as before runtime dispatch existed.
inline size_t ActiveW(size_t w) {
  if (w == 0 || w > JoinPredicate::kWords) __builtin_unreachable();
  return w;
}

/// Lemma 3.4 against every witness, single-word path: true iff key ⊆ some
/// negative signature word.
inline bool CertainNegativeWord(uint64_t key,
                                const std::vector<uint64_t>& negs) {
  for (uint64_t neg : negs) {
    if ((key & ~neg) == 0) return true;
  }
  return false;
}

}  // namespace

InferenceState::InferenceState(const SignatureIndex& index)
    : index_(&index),
      states_(index.num_classes(), TupleState::kInformative),
      labeled_(index.num_classes(), false),
      pos_predicate_(index.omega().Full()),
      active_words_(JoinPredicate::WordsFor(index.omega().size())) {
  Reclassify();
}

util::Status InferenceState::ApplyLabel(ClassId cls, Label label) {
  JINFER_CHECK(cls < index_->num_classes(), "class %u out of range", cls);
  const JoinPredicate& sig = index_->cls(cls).signature;

  if (labeled_[cls]) {
    for (const auto& ex : sample_) {
      if (ex.cls == cls && ex.label != label) {
        return util::Status::InconsistentSample(
            "tuple with signature " + index_->omega().Format(sig) +
            " labeled both + and -");
      }
    }
    return util::Status::OK();  // Duplicate example: a sample is a set.
  }
  if (label == Label::kPositive && CertainNegative(sig)) {
    return util::Status::InconsistentSample(
        "positive label contradicts the sample: no consistent predicate "
        "selects the tuple with signature " +
        index_->omega().Format(sig));
  }
  if (label == Label::kNegative && CertainPositive(sig)) {
    return util::Status::InconsistentSample(
        "negative label contradicts the sample: every consistent predicate "
        "selects the tuple with signature " +
        index_->omega().Format(sig));
  }

  ApplyLabelIncremental(cls, label, /*record=*/false);
  return util::Status::OK();
}

void InferenceState::ApplyLabelScoped(ClassId cls, Label label) {
  JINFER_CHECK(IsInformative(cls), "class %u is not informative", cls);
  ApplyLabelIncremental(cls, label, /*record=*/true);
}

void InferenceState::ApplyLabelIncremental(ClassId cls, Label label,
                                           bool record) {
  const SignatureClass& labeled_class = index_->cls(cls);
  const JoinPredicate& sig_t = labeled_class.signature;

  if (record) {
    delta_frames_.push_back(DeltaFrame{delta_transitions_.size(), cls, label,
                                       has_positive_, pos_predicate_,
                                       informative_weight_});
  }
  sample_.push_back(ClassExample{cls, label});
  labeled_[cls] = true;

  const bool was_informative = states_[cls] == TupleState::kInformative;
  if (record) delta_transitions_.emplace_back(cls, states_[cls]);
  states_[cls] = TupleState::kLabeled;
  if (was_informative) informative_weight_ -= labeled_class.count;

  // Certainty is monotone under a consistent sample (T(S+) and the keys
  // only shrink), so the sweeps below visit informative classes only and
  // compact the survivors in place, preserving the sorted order. Forward
  // copies are safe: the write cursor never passes the read cursor.
  const size_t W = ActiveW(active_words_);
  const size_t n = informative_.size();
  size_t write = 0;
  if (W == 1) {
    // Single-word specialization (|Ω| ≤ 64): the compiler keeps the key,
    // signature and count words in registers with no inner word loop.
    const uint64_t sig0 = sig_t.word(0);
    if (label == Label::kPositive) {
      pos_predicate_ &= sig_t;
      has_positive_ = true;
      const uint64_t new_pos0 = pos_predicate_.word(0);
      for (size_t i = 0; i < n; ++i) {
        ClassId c = informative_[i];
        if (c == cls) continue;
        uint64_t key = inf_keys_[i] & sig0;
        TupleState next = TupleState::kInformative;
        if (key == new_pos0) {
          next = TupleState::kCertainPositive;  // Lemma 3.3.
        } else if (CertainNegativeWord(key, neg_words_)) {
          next = TupleState::kCertainNegative;  // Lemma 3.4, every witness.
        }
        if (next == TupleState::kInformative) {
          informative_[write] = c;
          inf_keys_[write] = key;
          inf_sigs_[write] = inf_sigs_[i];
          inf_counts_[write] = inf_counts_[i];
          ++write;
        } else {
          if (record) delta_transitions_.emplace_back(c, states_[c]);
          states_[c] = next;
          informative_weight_ -= inf_counts_[i];
        }
      }
    } else {
      negative_signatures_.push_back(sig_t);
      neg_words_.push_back(sig0);
      for (size_t i = 0; i < n; ++i) {
        ClassId c = informative_[i];
        if (c == cls) continue;
        if ((inf_keys_[i] & ~sig0) == 0) {  // Lemma 3.4, new witness only.
          if (record) delta_transitions_.emplace_back(c, states_[c]);
          states_[c] = TupleState::kCertainNegative;
          informative_weight_ -= inf_counts_[i];
        } else {
          informative_[write] = c;
          inf_keys_[write] = inf_keys_[i];
          inf_sigs_[write] = inf_sigs_[i];
          inf_counts_[write] = inf_counts_[i];
          ++write;
        }
      }
    }
  } else {
    uint64_t sigw[JoinPredicate::kWords];
    for (size_t w = 0; w < W; ++w) sigw[w] = sig_t.word(w);
    if (label == Label::kPositive) {
      pos_predicate_ &= sig_t;
      has_positive_ = true;
      uint64_t posw[JoinPredicate::kWords];
      for (size_t w = 0; w < W; ++w) posw[w] = pos_predicate_.word(w);
      const size_t num_negs = negative_signatures_.size();
      for (size_t i = 0; i < n; ++i) {
        ClassId c = informative_[i];
        if (c == cls) continue;
        uint64_t key2[JoinPredicate::kWords];
        And2Words(key2, &inf_keys_[i * W], sigw, W);
        TupleState next = TupleState::kInformative;
        if (EqualWords(key2, posw, W)) {
          next = TupleState::kCertainPositive;  // Lemma 3.3: T(S+) ⊆ T(c).
        } else if (AnyWitnessContains(key2, neg_words_.data(), num_negs, W)) {
          // Lemma 3.4 against every witness: shrinking T(S+) weakens its
          // premise, so old witnesses can newly apply.
          next = TupleState::kCertainNegative;
        }
        if (next == TupleState::kInformative) {
          informative_[write] = c;
          std::copy_n(key2, W, &inf_keys_[write * W]);
          std::copy_n(&inf_sigs_[i * W], W, &inf_sigs_[write * W]);
          inf_counts_[write] = inf_counts_[i];
          ++write;
        } else {
          if (record) delta_transitions_.emplace_back(c, states_[c]);
          states_[c] = next;
          informative_weight_ -= inf_counts_[i];
        }
      }
    } else {
      negative_signatures_.push_back(sig_t);
      neg_words_.insert(neg_words_.end(), sigw, sigw + W);
      for (size_t i = 0; i < n; ++i) {
        ClassId c = informative_[i];
        if (c == cls) continue;
        // T(S+) is unchanged; only the new witness T(t) can newly certify
        // a still-informative class negative (Lemma 3.4 — the old
        // witnesses already failed for it).
        if (IsSubsetWords(&inf_keys_[i * W], sigw, W)) {
          if (record) delta_transitions_.emplace_back(c, states_[c]);
          states_[c] = TupleState::kCertainNegative;
          informative_weight_ -= inf_counts_[i];
        } else {
          informative_[write] = c;
          std::copy_n(&inf_keys_[i * W], W, &inf_keys_[write * W]);
          std::copy_n(&inf_sigs_[i * W], W, &inf_sigs_[write * W]);
          inf_counts_[write] = inf_counts_[i];
          ++write;
        }
      }
    }
  }
  informative_.resize(write);
  inf_keys_.resize(write * W);
  inf_sigs_.resize(write * W);
  inf_counts_.resize(write);
}

void InferenceState::UndoLabel() {
  JINFER_CHECK(!delta_frames_.empty(), "UndoLabel without a scoped label");
  const DeltaFrame frame = delta_frames_.back();
  delta_frames_.pop_back();

  JINFER_CHECK(!sample_.empty() && sample_.back().cls == frame.cls &&
                   sample_.back().label == frame.label,
               "delta stack out of sync with the sample");
  sample_.pop_back();
  labeled_[frame.cls] = false;
  const size_t W = ActiveW(active_words_);
  const bool undo_positive = frame.label == Label::kPositive;
  if (undo_positive) {
    pos_predicate_ = frame.old_pos;
    has_positive_ = frame.old_has_positive;
  } else {
    negative_signatures_.pop_back();
    neg_words_.resize(neg_words_.size() - W);
  }
  informative_weight_ = frame.old_weight;

  // Restore the recorded transitions and collect the classes that re-enter
  // the informative pool (ascending except possibly the labeled class,
  // which was recorded first).
  undo_scratch_.clear();
  for (size_t i = frame.transitions_begin; i < delta_transitions_.size();
       ++i) {
    const auto& [c, old_state] = delta_transitions_[i];
    states_[c] = old_state;
    if (old_state == TupleState::kInformative) undo_scratch_.push_back(c);
  }
  delta_transitions_.resize(frame.transitions_begin);
  std::sort(undo_scratch_.begin(), undo_scratch_.end());

  // Merge the restored classes back into the sorted informative list and
  // the packed arrays in one backwards pass. The destination block index
  // always exceeds the source block index while re-entrants remain, so the
  // word copies never overlap; the survivor prefix below the last
  // re-entrant is already in place and untouched. Re-entrant rows are
  // refilled from the class table, with keys recomputed as pos ∩ sig —
  // exact for a negative undo, provisional for a positive one (see below).
  uint64_t posw[JoinPredicate::kWords];
  for (size_t w = 0; w < W; ++w) posw[w] = pos_predicate_.word(w);
  const size_t survivors = informative_.size();
  informative_.resize(survivors + undo_scratch_.size());
  inf_keys_.resize(informative_.size() * W);
  inf_sigs_.resize(informative_.size() * W);
  inf_counts_.resize(informative_.size());
  size_t a = survivors;
  size_t b = undo_scratch_.size();
  size_t out = informative_.size();
  while (b > 0) {
    if (a > 0 && informative_[a - 1] > undo_scratch_[b - 1]) {
      --a;
      --out;
      informative_[out] = informative_[a];
      std::copy_n(&inf_keys_[a * W], W, &inf_keys_[out * W]);
      std::copy_n(&inf_sigs_[a * W], W, &inf_sigs_[out * W]);
      inf_counts_[out] = inf_counts_[a];
    } else {
      --b;
      --out;
      const ClassId c = undo_scratch_[b];
      const SignatureClass& sc = index_->cls(c);
      informative_[out] = c;
      for (size_t w = 0; w < W; ++w) {
        const uint64_t sig = sc.signature.word(w);
        inf_sigs_[out * W + w] = sig;
        inf_keys_[out * W + w] = posw[w] & sig;
      }
      inf_counts_[out] = sc.count;
    }
  }

  // A positive undo re-widens T(S+), so every surviving class's key must
  // be recomputed against the restored predicate: one flat pos ∩ sig pass
  // over the packed signatures. A negative undo never changes keys.
  if (undo_positive) {
    for (size_t i = 0; i < informative_.size(); ++i) {
      And2Words(&inf_keys_[i * W], posw, &inf_sigs_[i * W], W);
    }
  }
}

void InferenceState::RebuildPackedInformative() {
  const size_t W = ActiveW(active_words_);
  const size_t n = informative_.size();
  inf_keys_.resize(n * W);
  inf_sigs_.resize(n * W);
  inf_counts_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const SignatureClass& sc = index_->cls(informative_[i]);
    for (size_t w = 0; w < W; ++w) {
      const uint64_t sig = sc.signature.word(w);
      inf_sigs_[i * W + w] = sig;
      inf_keys_[i * W + w] = pos_predicate_.word(w) & sig;
    }
    inf_counts_[i] = sc.count;
  }
  neg_words_.clear();
  for (const JoinPredicate& neg : negative_signatures_) {
    for (size_t w = 0; w < W; ++w) neg_words_.push_back(neg.word(w));
  }
}

void InferenceState::Reclassify() {
  informative_weight_ = 0;
  informative_.clear();
  for (ClassId c = 0; c < index_->num_classes(); ++c) {
    const SignatureClass& sc = index_->cls(c);
    TupleState st;
    if (labeled_[c]) {
      st = TupleState::kLabeled;
    } else if (CertainPositive(sc.signature)) {
      st = TupleState::kCertainPositive;
    } else if (CertainNegative(sc.signature)) {
      st = TupleState::kCertainNegative;
    } else {
      st = TupleState::kInformative;
      informative_.push_back(c);
      informative_weight_ += sc.count;
    }
    states_[c] = st;
  }
  RebuildPackedInformative();
}

uint64_t InferenceState::CountNewlyUninformative(ClassId cls,
                                                 Label label) const {
  JINFER_CHECK(IsInformative(cls), "class %u is not informative", cls);
  const SignatureClass& labeled_class = index_->cls(cls);
  // The remaining members of the labeled tuple's own class always become
  // uninformative; the labeled tuple itself is excluded (Figure 5).
  uint64_t newly = labeled_class.count - 1;
  const size_t W = ActiveW(active_words_);
  const size_t n = informative_.size();

  if (W == 1) {
    const uint64_t sig0 = labeled_class.signature.word(0);
    if (label == Label::kPositive) {
      const uint64_t pos2 = pos_predicate_.word(0) & sig0;
      for (size_t i = 0; i < n; ++i) {
        if (informative_[i] == cls) continue;
        uint64_t key = inf_keys_[i] & sig0;
        if (key == pos2 ||  // P′ ⊆ T(c), else Lemma 3.4.
            CertainNegativeWord(key, neg_words_)) {
          newly += inf_counts_[i];
        }
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (informative_[i] == cls) continue;
        if ((inf_keys_[i] & ~sig0) == 0) newly += inf_counts_[i];
      }
    }
    return newly;
  }

  uint64_t sigw[JoinPredicate::kWords];
  for (size_t w = 0; w < W; ++w) sigw[w] = labeled_class.signature.word(w);
  if (label == Label::kPositive) {
    // T(S+) shrinks to P′ = T(S+) ∩ T(t): classes above P′ become certain+
    // (Lemma 3.3) and the Cert− test must be re-evaluated against P′
    // (Lemma 3.4), since shrinking T(S+) weakens its premise.
    uint64_t pos2[JoinPredicate::kWords];
    for (size_t w = 0; w < W; ++w) pos2[w] = pos_predicate_.word(w) & sigw[w];
    const size_t num_negs = negative_signatures_.size();
    for (size_t i = 0; i < n; ++i) {
      if (informative_[i] == cls) continue;
      uint64_t key2[JoinPredicate::kWords];
      And2Words(key2, &inf_keys_[i * W], sigw, W);
      if (EqualWords(key2, pos2, W) ||  // P′ ⊆ T(c).
          AnyWitnessContains(key2, neg_words_.data(), num_negs, W)) {
        newly += inf_counts_[i];
      }
    }
  } else {
    // T(S+) is unchanged; only the new negative witness T(t) can newly
    // certify classes negative (existing witnesses already failed for every
    // currently-informative class).
    for (size_t i = 0; i < n; ++i) {
      if (informative_[i] == cls) continue;
      if (IsSubsetWords(&inf_keys_[i * W], sigw, W)) {
        newly += inf_counts_[i];
      }
    }
  }
  return newly;
}

std::pair<uint64_t, uint64_t> InferenceState::CountNewlyUninformativeBoth(
    ClassId cls) const {
  JINFER_CHECK(IsInformative(cls), "class %u is not informative", cls);
  const SignatureClass& labeled_class = index_->cls(cls);
  uint64_t newly_pos = labeled_class.count - 1;
  uint64_t newly_neg = labeled_class.count - 1;
  const size_t W = ActiveW(active_words_);
  const size_t n = informative_.size();

  if (W == 1) {
    const uint64_t sig0 = labeled_class.signature.word(0);
    const uint64_t pos2 = pos_predicate_.word(0) & sig0;
    for (size_t i = 0; i < n; ++i) {
      if (informative_[i] == cls) continue;
      const uint64_t k = inf_keys_[i];
      const uint64_t cnt = inf_counts_[i];
      if ((k & ~sig0) == 0) newly_neg += cnt;  // k ⊆ T(t).
      const uint64_t key2 = k & sig0;
      if (key2 == pos2 || CertainNegativeWord(key2, neg_words_)) {
        newly_pos += cnt;
      }
    }
    return {newly_pos, newly_neg};
  }

  uint64_t sigw[JoinPredicate::kWords];
  uint64_t pos2[JoinPredicate::kWords];
  for (size_t w = 0; w < W; ++w) {
    sigw[w] = labeled_class.signature.word(w);
    pos2[w] = pos_predicate_.word(w) & sigw[w];
  }
  const size_t num_negs = negative_signatures_.size();
  for (size_t i = 0; i < n; ++i) {
    if (informative_[i] == cls) continue;
    const uint64_t cnt = inf_counts_[i];
    if (IsSubsetWords(&inf_keys_[i * W], sigw, W)) newly_neg += cnt;
    uint64_t key2[JoinPredicate::kWords];
    And2Words(key2, &inf_keys_[i * W], sigw, W);
    if (EqualWords(key2, pos2, W) ||
        AnyWitnessContains(key2, neg_words_.data(), num_negs, W)) {
      newly_pos += cnt;
    }
  }
  return {newly_pos, newly_neg};
}

void InferenceState::CountNewlyUninformativeAll(
    std::vector<uint64_t>& u_pos, std::vector<uint64_t>& u_neg) const {
  const size_t n = informative_.size();
  u_pos.resize(n);
  u_neg.resize(n);

  // The fused u± sweep lives in the runtime-dispatched kernel layer
  // (util/simd/sweep.h, DESIGN.md §12.4): one candidate t_j per output
  // slot, its signature and cached key held in registers (or candidate
  // lanes, on the vector backends); the inner loop streams every
  // informative class i from the contiguous packed key/count arrays,
  // accumulating both u-counts without per-pair stores. Candidate j's
  // post-positive predicate P′ = T(S+) ∩ T(t_j) is exactly its own cached
  // key, so the Cert+ test needs no per-candidate scratch, and the
  // i == j self term is folded out by the driver's flat −1 correction.
  // Above the cache budget the driver tiles the i×j plane; the columns
  // are bit-identical for every backend, tiling, and thread count.
  util::simd::SweepArgs args;
  args.keys = inf_keys_.data();
  args.sigs = inf_sigs_.data();
  args.cnts = inf_counts_.data();
  args.negs = neg_words_.data();
  args.num_negs = negative_signatures_.size();
  args.words = active_words_;
  args.n = n;
  util::simd::SweepUCounts(args, u_pos.data(), u_neg.data());
}

InferenceState InferenceState::WithLabel(ClassId cls, Label label) const {
  JINFER_CHECK(IsInformative(cls), "class %u is not informative", cls);
  InferenceState copy = *this;
  util::Status st = copy.ApplyLabel(cls, label);
  JINFER_CHECK(st.ok(), "labeling an informative class cannot fail: %s",
               st.ToString().c_str());
  return copy;
}

}  // namespace core
}  // namespace jinfer
