#include "core/inference_state.h"

namespace jinfer {
namespace core {

InferenceState::InferenceState(const SignatureIndex& index)
    : index_(&index),
      states_(index.num_classes(), TupleState::kInformative),
      labeled_(index.num_classes(), false),
      pos_predicate_(index.omega().Full()) {
  Reclassify();
}

util::Status InferenceState::ApplyLabel(ClassId cls, Label label) {
  JINFER_CHECK(cls < index_->num_classes(), "class %u out of range", cls);
  const JoinPredicate& sig = index_->cls(cls).signature;

  if (labeled_[cls]) {
    for (const auto& ex : sample_) {
      if (ex.cls == cls && ex.label != label) {
        return util::Status::InconsistentSample(
            "tuple with signature " + index_->omega().Format(sig) +
            " labeled both + and -");
      }
    }
    return util::Status::OK();  // Duplicate example: a sample is a set.
  }
  if (label == Label::kPositive && CertainNegative(sig)) {
    return util::Status::InconsistentSample(
        "positive label contradicts the sample: no consistent predicate "
        "selects the tuple with signature " +
        index_->omega().Format(sig));
  }
  if (label == Label::kNegative && CertainPositive(sig)) {
    return util::Status::InconsistentSample(
        "negative label contradicts the sample: every consistent predicate "
        "selects the tuple with signature " +
        index_->omega().Format(sig));
  }

  sample_.push_back(ClassExample{cls, label});
  labeled_[cls] = true;
  if (label == Label::kPositive) {
    pos_predicate_ &= sig;
    has_positive_ = true;
  } else {
    negative_signatures_.push_back(sig);
  }
  Reclassify();
  return util::Status::OK();
}

void InferenceState::Reclassify() {
  num_informative_classes_ = 0;
  informative_weight_ = 0;
  for (ClassId c = 0; c < index_->num_classes(); ++c) {
    const SignatureClass& sc = index_->cls(c);
    TupleState st;
    if (labeled_[c]) {
      st = TupleState::kLabeled;
    } else if (CertainPositive(sc.signature)) {
      st = TupleState::kCertainPositive;
    } else if (CertainNegative(sc.signature)) {
      st = TupleState::kCertainNegative;
    } else {
      st = TupleState::kInformative;
      ++num_informative_classes_;
      informative_weight_ += sc.count;
    }
    states_[c] = st;
  }
}

std::vector<ClassId> InferenceState::InformativeClasses() const {
  std::vector<ClassId> out;
  out.reserve(num_informative_classes_);
  for (ClassId c = 0; c < index_->num_classes(); ++c) {
    if (states_[c] == TupleState::kInformative) out.push_back(c);
  }
  return out;
}

uint64_t InferenceState::CountNewlyUninformative(ClassId cls,
                                                 Label label) const {
  JINFER_CHECK(IsInformative(cls), "class %u is not informative", cls);
  const SignatureClass& labeled_class = index_->cls(cls);
  // The remaining members of the labeled tuple's own class always become
  // uninformative; the labeled tuple itself is excluded (Figure 5).
  uint64_t newly = labeled_class.count - 1;

  if (label == Label::kPositive) {
    // T(S+) shrinks to P′ = T(S+) ∩ T(t): classes above P′ become certain+
    // (Lemma 3.3) and the Cert− test must be re-evaluated against P′
    // (Lemma 3.4), since shrinking T(S+) weakens its premise.
    JoinPredicate pos2 = pos_predicate_ & labeled_class.signature;
    for (ClassId c = 0; c < index_->num_classes(); ++c) {
      if (c == cls || states_[c] != TupleState::kInformative) continue;
      const JoinPredicate& sig = index_->cls(c).signature;
      if (pos2.IsSubsetOf(sig)) {
        newly += index_->cls(c).count;
        continue;
      }
      JoinPredicate key = pos2 & sig;
      for (const JoinPredicate& neg : negative_signatures_) {
        if (key.IsSubsetOf(neg)) {
          newly += index_->cls(c).count;
          break;
        }
      }
    }
  } else {
    // T(S+) is unchanged; only the new negative witness T(t) can newly
    // certify classes negative (existing witnesses already failed for every
    // currently-informative class).
    for (ClassId c = 0; c < index_->num_classes(); ++c) {
      if (c == cls || states_[c] != TupleState::kInformative) continue;
      const JoinPredicate& sig = index_->cls(c).signature;
      if ((pos_predicate_ & sig).IsSubsetOf(labeled_class.signature)) {
        newly += index_->cls(c).count;
      }
    }
  }
  return newly;
}

InferenceState InferenceState::WithLabel(ClassId cls, Label label) const {
  JINFER_CHECK(IsInformative(cls), "class %u is not informative", cls);
  InferenceState copy = *this;
  util::Status st = copy.ApplyLabel(cls, label);
  JINFER_CHECK(st.ok(), "labeling an informative class cannot fail: %s",
               st.ToString().c_str());
  return copy;
}

}  // namespace core
}  // namespace jinfer
