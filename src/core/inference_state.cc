#include "core/inference_state.h"

#include <algorithm>

namespace jinfer {
namespace core {

namespace {

/// Lemma 3.4 against every witness, single-word path: true iff key ⊆ some
/// negative signature word.
inline bool CertainNegativeWord(uint64_t key,
                                const std::vector<uint64_t>& negs) {
  for (uint64_t neg : negs) {
    if ((key & ~neg) == 0) return true;
  }
  return false;
}

/// Lemma 3.4 against every witness, prefix path.
inline bool CertainNegativePrefix(const JoinPredicate& key,
                                  const std::vector<JoinPredicate>& negs,
                                  size_t words) {
  for (const JoinPredicate& neg : negs) {
    if (key.IsSubsetOfPrefix(neg, words)) return true;
  }
  return false;
}

}  // namespace

InferenceState::InferenceState(const SignatureIndex& index)
    : index_(&index),
      states_(index.num_classes(), TupleState::kInformative),
      labeled_(index.num_classes(), false),
      pos_predicate_(index.omega().Full()),
      // keys_ backs only the multi-word path; the single-word path keeps
      // its keys in the packed arrays instead, so don't carry (and copy)
      // a dead vector there.
      keys_(JoinPredicate::WordsFor(index.omega().size()) > 1
                ? index.num_classes()
                : 0),
      active_words_(JoinPredicate::WordsFor(index.omega().size())) {
  Reclassify();
}

util::Status InferenceState::ApplyLabel(ClassId cls, Label label) {
  JINFER_CHECK(cls < index_->num_classes(), "class %u out of range", cls);
  const JoinPredicate& sig = index_->cls(cls).signature;

  if (labeled_[cls]) {
    for (const auto& ex : sample_) {
      if (ex.cls == cls && ex.label != label) {
        return util::Status::InconsistentSample(
            "tuple with signature " + index_->omega().Format(sig) +
            " labeled both + and -");
      }
    }
    return util::Status::OK();  // Duplicate example: a sample is a set.
  }
  if (label == Label::kPositive && CertainNegative(sig)) {
    return util::Status::InconsistentSample(
        "positive label contradicts the sample: no consistent predicate "
        "selects the tuple with signature " +
        index_->omega().Format(sig));
  }
  if (label == Label::kNegative && CertainPositive(sig)) {
    return util::Status::InconsistentSample(
        "negative label contradicts the sample: every consistent predicate "
        "selects the tuple with signature " +
        index_->omega().Format(sig));
  }

  ApplyLabelIncremental(cls, label, /*record=*/false);
  return util::Status::OK();
}

void InferenceState::ApplyLabelScoped(ClassId cls, Label label) {
  JINFER_CHECK(IsInformative(cls), "class %u is not informative", cls);
  ApplyLabelIncremental(cls, label, /*record=*/true);
}

void InferenceState::ApplyLabelIncremental(ClassId cls, Label label,
                                           bool record) {
  const SignatureClass& labeled_class = index_->cls(cls);
  const JoinPredicate& sig_t = labeled_class.signature;

  if (record) {
    delta_frames_.push_back(DeltaFrame{delta_transitions_.size(), cls, label,
                                       has_positive_, pos_predicate_,
                                       informative_weight_});
  }
  sample_.push_back(ClassExample{cls, label});
  labeled_[cls] = true;

  const bool was_informative = states_[cls] == TupleState::kInformative;
  if (record) delta_transitions_.emplace_back(cls, states_[cls]);
  states_[cls] = TupleState::kLabeled;
  if (was_informative) informative_weight_ -= labeled_class.count;

  // Certainty is monotone under a consistent sample (T(S+) and the keys
  // only shrink), so the sweeps below visit informative classes only and
  // compact the survivors in place, preserving the sorted order.
  if (active_words_ == 1) {
    const uint64_t sig0 = sig_t.word(0);
    size_t write = 0;
    if (label == Label::kPositive) {
      pos_predicate_ &= sig_t;
      has_positive_ = true;
      const uint64_t new_pos0 = pos_predicate_.word(0);
      for (size_t i = 0; i < informative_.size(); ++i) {
        ClassId c = informative_[i];
        if (c == cls) continue;
        uint64_t key = inf_keys_[i] & sig0;
        TupleState next = TupleState::kInformative;
        if (key == new_pos0) {
          next = TupleState::kCertainPositive;  // Lemma 3.3.
        } else if (CertainNegativeWord(key, neg_words_)) {
          next = TupleState::kCertainNegative;  // Lemma 3.4, every witness.
        }
        if (next == TupleState::kInformative) {
          informative_[write] = c;
          inf_keys_[write] = key;
          inf_counts_[write] = inf_counts_[i];
          ++write;
        } else {
          if (record) delta_transitions_.emplace_back(c, states_[c]);
          states_[c] = next;
          informative_weight_ -= inf_counts_[i];
        }
      }
    } else {
      negative_signatures_.push_back(sig_t);
      neg_words_.push_back(sig0);
      for (size_t i = 0; i < informative_.size(); ++i) {
        ClassId c = informative_[i];
        if (c == cls) continue;
        if ((inf_keys_[i] & ~sig0) == 0) {  // Lemma 3.4, new witness only.
          if (record) delta_transitions_.emplace_back(c, states_[c]);
          states_[c] = TupleState::kCertainNegative;
          informative_weight_ -= inf_counts_[i];
        } else {
          informative_[write] = c;
          inf_keys_[write] = inf_keys_[i];
          inf_counts_[write] = inf_counts_[i];
          ++write;
        }
      }
    }
    informative_.resize(write);
    inf_keys_.resize(write);
    inf_counts_.resize(write);
    return;
  }

  size_t write = 0;
  if (label == Label::kPositive) {
    JoinPredicate new_pos = pos_predicate_ & sig_t;
    pos_predicate_ = new_pos;
    has_positive_ = true;
    for (size_t i = 0; i < informative_.size(); ++i) {
      ClassId c = informative_[i];
      if (c == cls) continue;
      // keys_[c] ∩ T(t) = new T(S+) ∩ T(c): refresh the cache in place.
      keys_[c].AndPrefixInPlace(sig_t, active_words_);
      const JoinPredicate& key = keys_[c];
      TupleState next = TupleState::kInformative;
      if (key.EqualsPrefix(new_pos, active_words_)) {
        next = TupleState::kCertainPositive;  // Lemma 3.3: T(S+) ⊆ T(c).
      } else if (CertainNegativePrefix(key, negative_signatures_,
                                       active_words_)) {
        // Lemma 3.4 against every witness: shrinking T(S+) weakens its
        // premise, so old witnesses can newly apply.
        next = TupleState::kCertainNegative;
      }
      if (next == TupleState::kInformative) {
        informative_[write++] = c;
      } else {
        if (record) delta_transitions_.emplace_back(c, states_[c]);
        states_[c] = next;
        informative_weight_ -= index_->cls(c).count;
      }
    }
  } else {
    negative_signatures_.push_back(sig_t);
    for (size_t i = 0; i < informative_.size(); ++i) {
      ClassId c = informative_[i];
      if (c == cls) continue;
      // T(S+) is unchanged; only the new witness T(t) can newly certify a
      // still-informative class negative (Lemma 3.4 — the old witnesses
      // already failed for it).
      if (keys_[c].IsSubsetOfPrefix(sig_t, active_words_)) {
        if (record) delta_transitions_.emplace_back(c, states_[c]);
        states_[c] = TupleState::kCertainNegative;
        informative_weight_ -= index_->cls(c).count;
      } else {
        informative_[write++] = c;
      }
    }
  }
  informative_.resize(write);
}

void InferenceState::UndoLabel() {
  JINFER_CHECK(!delta_frames_.empty(), "UndoLabel without a scoped label");
  const DeltaFrame frame = delta_frames_.back();
  delta_frames_.pop_back();

  JINFER_CHECK(!sample_.empty() && sample_.back().cls == frame.cls &&
                   sample_.back().label == frame.label,
               "delta stack out of sync with the sample");
  sample_.pop_back();
  labeled_[frame.cls] = false;
  const bool undo_positive = frame.label == Label::kPositive;
  if (undo_positive) {
    pos_predicate_ = frame.old_pos;
    has_positive_ = frame.old_has_positive;
  } else {
    negative_signatures_.pop_back();
    if (active_words_ == 1) neg_words_.pop_back();
  }
  informative_weight_ = frame.old_weight;

  // Restore the recorded transitions and collect the classes that re-enter
  // the informative pool (ascending except possibly the labeled class,
  // which was recorded first).
  undo_scratch_.clear();
  for (size_t i = frame.transitions_begin; i < delta_transitions_.size();
       ++i) {
    const auto& [c, old_state] = delta_transitions_[i];
    states_[c] = old_state;
    if (old_state == TupleState::kInformative) undo_scratch_.push_back(c);
  }
  delta_transitions_.resize(frame.transitions_begin);
  std::sort(undo_scratch_.begin(), undo_scratch_.end());

  // Merge the restored classes back into the sorted informative list,
  // backwards since the destination overlaps the survivor prefix.
  size_t survivors = informative_.size();
  informative_.resize(survivors + undo_scratch_.size());
  size_t a = survivors;
  size_t b = undo_scratch_.size();
  size_t out = informative_.size();
  while (b > 0) {
    if (a > 0 && informative_[a - 1] > undo_scratch_[b - 1]) {
      informative_[--out] = informative_[--a];
    } else {
      informative_[--out] = undo_scratch_[--b];
    }
  }

  // Refresh the key cache: a positive undo re-widens T(S+), so every
  // informative class's key must be recomputed against the restored
  // predicate. A negative undo never touches the keys, but on the packed
  // path the merge shifted positions, so the arrays are refilled either way.
  if (active_words_ == 1) {
    RebuildPackedInformative();
  } else if (undo_positive) {
    for (ClassId c : informative_) {
      keys_[c] = pos_predicate_ & index_->cls(c).signature;
    }
  }
}

void InferenceState::RebuildPackedInformative() {
  if (active_words_ != 1) return;
  inf_keys_.resize(informative_.size());
  inf_counts_.resize(informative_.size());
  const uint64_t pos0 = pos_predicate_.word(0);
  for (size_t i = 0; i < informative_.size(); ++i) {
    const SignatureClass& sc = index_->cls(informative_[i]);
    inf_keys_[i] = pos0 & sc.signature.word(0);
    inf_counts_[i] = sc.count;
  }
}

void InferenceState::Reclassify() {
  informative_weight_ = 0;
  informative_.clear();
  for (ClassId c = 0; c < index_->num_classes(); ++c) {
    const SignatureClass& sc = index_->cls(c);
    if (active_words_ > 1) keys_[c] = pos_predicate_ & sc.signature;
    TupleState st;
    if (labeled_[c]) {
      st = TupleState::kLabeled;
    } else if (CertainPositive(sc.signature)) {
      st = TupleState::kCertainPositive;
    } else if (CertainNegative(sc.signature)) {
      st = TupleState::kCertainNegative;
    } else {
      st = TupleState::kInformative;
      informative_.push_back(c);
      informative_weight_ += sc.count;
    }
    states_[c] = st;
  }
  if (active_words_ == 1) {
    neg_words_.clear();
    for (const JoinPredicate& neg : negative_signatures_) {
      neg_words_.push_back(neg.word(0));
    }
    RebuildPackedInformative();
  }
}

uint64_t InferenceState::CountNewlyUninformative(ClassId cls,
                                                 Label label) const {
  JINFER_CHECK(IsInformative(cls), "class %u is not informative", cls);
  const SignatureClass& labeled_class = index_->cls(cls);
  // The remaining members of the labeled tuple's own class always become
  // uninformative; the labeled tuple itself is excluded (Figure 5).
  uint64_t newly = labeled_class.count - 1;

  if (active_words_ == 1) {
    const uint64_t sig0 = labeled_class.signature.word(0);
    if (label == Label::kPositive) {
      const uint64_t pos2 = pos_predicate_.word(0) & sig0;
      for (size_t i = 0; i < informative_.size(); ++i) {
        if (informative_[i] == cls) continue;
        uint64_t key = inf_keys_[i] & sig0;
        if (key == pos2 ||  // P′ ⊆ T(c), else Lemma 3.4.
            CertainNegativeWord(key, neg_words_)) {
          newly += inf_counts_[i];
        }
      }
    } else {
      for (size_t i = 0; i < informative_.size(); ++i) {
        if (informative_[i] == cls) continue;
        if ((inf_keys_[i] & ~sig0) == 0) newly += inf_counts_[i];
      }
    }
    return newly;
  }

  if (label == Label::kPositive) {
    // T(S+) shrinks to P′ = T(S+) ∩ T(t): classes above P′ become certain+
    // (Lemma 3.3) and the Cert− test must be re-evaluated against P′
    // (Lemma 3.4), since shrinking T(S+) weakens its premise.
    JoinPredicate pos2 = pos_predicate_ & labeled_class.signature;
    for (ClassId c : informative_) {
      if (c == cls) continue;
      JoinPredicate key = keys_[c];
      key.AndPrefixInPlace(labeled_class.signature, active_words_);
      if (key.EqualsPrefix(pos2, active_words_) ||  // P′ ⊆ T(c).
          CertainNegativePrefix(key, negative_signatures_, active_words_)) {
        newly += index_->cls(c).count;
      }
    }
  } else {
    // T(S+) is unchanged; only the new negative witness T(t) can newly
    // certify classes negative (existing witnesses already failed for every
    // currently-informative class).
    for (ClassId c : informative_) {
      if (c == cls) continue;
      if (keys_[c].IsSubsetOfPrefix(labeled_class.signature,
                                    active_words_)) {
        newly += index_->cls(c).count;
      }
    }
  }
  return newly;
}

std::pair<uint64_t, uint64_t> InferenceState::CountNewlyUninformativeBoth(
    ClassId cls) const {
  JINFER_CHECK(IsInformative(cls), "class %u is not informative", cls);
  const SignatureClass& labeled_class = index_->cls(cls);
  uint64_t newly_pos = labeled_class.count - 1;
  uint64_t newly_neg = labeled_class.count - 1;

  if (active_words_ == 1) {
    const uint64_t sig0 = labeled_class.signature.word(0);
    const uint64_t pos2 = pos_predicate_.word(0) & sig0;
    for (size_t i = 0; i < informative_.size(); ++i) {
      if (informative_[i] == cls) continue;
      const uint64_t k = inf_keys_[i];
      const uint64_t cnt = inf_counts_[i];
      if ((k & ~sig0) == 0) newly_neg += cnt;  // k ⊆ T(t).
      const uint64_t key2 = k & sig0;
      if (key2 == pos2 || CertainNegativeWord(key2, neg_words_)) {
        newly_pos += cnt;
      }
    }
    return {newly_pos, newly_neg};
  }

  const JoinPredicate& sig_t = labeled_class.signature;
  JoinPredicate pos2 = pos_predicate_ & sig_t;
  for (ClassId c : informative_) {
    if (c == cls) continue;
    const uint64_t cnt = index_->cls(c).count;
    if (keys_[c].IsSubsetOfPrefix(sig_t, active_words_)) newly_neg += cnt;
    JoinPredicate key = keys_[c];
    key.AndPrefixInPlace(sig_t, active_words_);
    if (key.EqualsPrefix(pos2, active_words_) ||
        CertainNegativePrefix(key, negative_signatures_, active_words_)) {
      newly_pos += cnt;
    }
  }
  return {newly_pos, newly_neg};
}

InferenceState InferenceState::WithLabel(ClassId cls, Label label) const {
  JINFER_CHECK(IsInformative(cls), "class %u is not informative", cls);
  InferenceState copy = *this;
  util::Status st = copy.ApplyLabel(cls, label);
  JINFER_CHECK(st.ok(), "labeling an informative class cannot fail: %s",
               st.ToString().c_str());
  return copy;
}

}  // namespace core
}  // namespace jinfer
