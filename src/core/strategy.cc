#include "core/strategy.h"

#include "core/strategies/local_strategies.h"
#include "core/strategies/lookahead_strategy.h"
#include "core/strategies/optimal_strategy.h"
#include "core/strategies/random_strategy.h"

namespace jinfer {
namespace core {

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRandom:
      return "RND";
    case StrategyKind::kBottomUp:
      return "BU";
    case StrategyKind::kTopDown:
      return "TD";
    case StrategyKind::kLookahead1:
      return "L1S";
    case StrategyKind::kLookahead2:
      return "L2S";
    case StrategyKind::kLookahead3:
      return "L3S";
    case StrategyKind::kExpectedGain:
      return "EG";
    case StrategyKind::kOptimal:
      return "OPT";
  }
  return "?";
}

util::Result<StrategyKind> StrategyKindFromName(const std::string& name) {
  for (StrategyKind kind :
       {StrategyKind::kRandom, StrategyKind::kBottomUp, StrategyKind::kTopDown,
        StrategyKind::kLookahead1, StrategyKind::kLookahead2,
        StrategyKind::kLookahead3, StrategyKind::kExpectedGain,
        StrategyKind::kOptimal}) {
    if (name == StrategyKindName(kind)) return kind;
  }
  return util::Status::NotFound("unknown strategy: " + name);
}

std::unique_ptr<Strategy> MakeStrategy(StrategyKind kind, uint64_t seed) {
  switch (kind) {
    case StrategyKind::kRandom:
      return std::make_unique<RandomStrategy>(seed);
    case StrategyKind::kBottomUp:
      return std::make_unique<BottomUpStrategy>();
    case StrategyKind::kTopDown:
      return std::make_unique<TopDownStrategy>();
    case StrategyKind::kLookahead1:
      return std::make_unique<LookaheadStrategy>(1);
    case StrategyKind::kLookahead2:
      return std::make_unique<LookaheadStrategy>(2);
    case StrategyKind::kLookahead3:
      return std::make_unique<LookaheadStrategy>(3);
    case StrategyKind::kExpectedGain:
      return std::make_unique<ExpectedGainStrategy>();
    case StrategyKind::kOptimal:
      return std::make_unique<OptimalStrategy>();
  }
  JINFER_CHECK(false, "unreachable strategy kind");
  return nullptr;
}

std::vector<StrategyKind> PaperStrategies() {
  return {StrategyKind::kBottomUp, StrategyKind::kTopDown,
          StrategyKind::kLookahead1, StrategyKind::kLookahead2,
          StrategyKind::kRandom};
}

}  // namespace core
}  // namespace jinfer
