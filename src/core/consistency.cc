#include "core/consistency.h"

namespace jinfer {
namespace core {

bool IsConsistent(const SignatureIndex& index, const Sample& sample) {
  JoinPredicate most_specific = MostSpecificPredicate(index, sample);
  for (const auto& ex : sample) {
    if (ex.label == Label::kNegative &&
        most_specific.IsSubsetOf(index.cls(ex.cls).signature)) {
      return false;
    }
  }
  return true;
}

util::Result<JoinPredicate> MostSpecificConsistent(const SignatureIndex& index,
                                                   const Sample& sample) {
  JoinPredicate most_specific = MostSpecificPredicate(index, sample);
  for (const auto& ex : sample) {
    if (ex.label == Label::kNegative &&
        most_specific.IsSubsetOf(index.cls(ex.cls).signature)) {
      return util::Status::InconsistentSample(
          "T(S+) = " + index.omega().Format(most_specific) +
          " selects the negative example with signature " +
          index.omega().Format(index.cls(ex.cls).signature));
    }
  }
  return most_specific;
}

Sample ToClassSample(const SignatureIndex& index,
                     const std::vector<TupleExample>& examples) {
  Sample out;
  out.reserve(examples.size());
  for (const auto& ex : examples) {
    JoinPredicate sig = index.SignatureOfPair(ex.r_row, ex.p_row);
    auto cls = index.ClassOfSignature(sig);
    JINFER_CHECK(cls.has_value(),
                 "signature of (%zu,%zu) missing from index", ex.r_row,
                 ex.p_row);
    out.push_back(ClassExample{*cls, ex.label});
  }
  return out;
}

}  // namespace core
}  // namespace jinfer
