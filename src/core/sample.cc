#include "core/sample.h"

namespace jinfer {
namespace core {

JoinPredicate MostSpecificPredicate(const SignatureIndex& index,
                                    const Sample& sample) {
  JoinPredicate theta = index.omega().Full();
  for (const auto& ex : sample) {
    if (ex.label == Label::kPositive) {
      theta &= index.cls(ex.cls).signature;
    }
  }
  return theta;
}

}  // namespace core
}  // namespace jinfer
