// Join-path inference — the paper's §7 "extend our approach to join
// paths" direction.
//
// A join path is a chain R1 — R2 — ... — Rk; the user's goal is a
// conjunction of per-edge equijoin predicates θi ⊆ attrs(Ri) × attrs(Ri+1)
// (e.g. Customer—Orders—Lineitem along the TPC-H foreign keys). Because
// the edges constrain disjoint attribute universes, the interactive
// problem decomposes: each edge runs the §4 machinery on its own
// Cartesian product, and the per-edge guarantees compose — every inferred
// θi is instance-equivalent to the user's θGi, so the chained join result
// over the instance is identical to the goal's.
//
// The user-facing consequence is the paper's: the total number of
// questions is the sum of per-edge interactions, each minimized by the
// chosen strategy.

#ifndef JINFER_CORE_PATH_INFERENCE_H_
#define JINFER_CORE_PATH_INFERENCE_H_

#include <vector>

#include "core/inference.h"
#include "core/signature_index.h"
#include "core/strategy.h"
#include "relational/relation.h"
#include "util/result.h"

namespace jinfer {
namespace core {

/// Labels tuples from the Cartesian product of edge `step`'s two
/// relations (step i joins path[i] with path[i+1]).
class PathOracle {
 public:
  virtual ~PathOracle() = default;
  virtual Label LabelStep(size_t step, const SignatureIndex& index,
                          ClassId cls) = 0;
};

/// Simulated user holding one goal predicate per edge.
class GoalPathOracle : public PathOracle {
 public:
  explicit GoalPathOracle(std::vector<JoinPredicate> goals)
      : goals_(std::move(goals)) {}

  Label LabelStep(size_t step, const SignatureIndex& index,
                  ClassId cls) override {
    JINFER_CHECK(step < goals_.size(), "step %zu beyond path", step);
    return goals_[step].IsSubsetOf(index.cls(cls).signature)
               ? Label::kPositive
               : Label::kNegative;
  }

  const std::vector<JoinPredicate>& goals() const { return goals_; }

 private:
  std::vector<JoinPredicate> goals_;
};

struct PathStepResult {
  JoinPredicate predicate;  ///< Inferred θi for edge i.
  size_t num_interactions = 0;
  double seconds = 0;
};

struct PathInferenceResult {
  std::vector<PathStepResult> steps;  ///< One per edge, in path order.
  size_t total_interactions = 0;
};

/// Runs Algorithm 1 once per edge of the path (a fresh strategy instance
/// per edge, seeded with seed + edge index). Fails on paths shorter than
/// two relations, on capacity/emptiness errors from any edge's index, or
/// on inconsistent oracle labels.
util::Result<PathInferenceResult> RunPathInference(
    const std::vector<const rel::Relation*>& path, StrategyKind kind,
    uint64_t seed, PathOracle& oracle, const InferenceOptions& options = {});

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_PATH_INFERENCE_H_
