// Consistency checking for equijoin samples (§3.1).
//
// A sample S is consistent iff some θ selects every positive and no
// negative example. The paper's PTIME algorithm: θ = T(S+) is the most
// specific predicate selecting all positives, and by anti-monotonicity S is
// consistent iff T(S+) selects no negative example.

#ifndef JINFER_CORE_CONSISTENCY_H_
#define JINFER_CORE_CONSISTENCY_H_

#include "core/sample.h"
#include "core/signature_index.h"
#include "util/result.h"

namespace jinfer {
namespace core {

/// True iff some equijoin predicate is consistent with the sample.
bool IsConsistent(const SignatureIndex& index, const Sample& sample);

/// Returns the most specific consistent predicate T(S+), or
/// InconsistentSample when none exists. (Any θ with
/// T(S+) ⊇ θ ⊇ some consistent predicate is also consistent; T(S+) is the
/// canonical answer the paper returns to the user.)
util::Result<JoinPredicate> MostSpecificConsistent(const SignatureIndex& index,
                                                   const Sample& sample);

/// Tuple-level convenience: examples given as (r_row, p_row, label).
struct TupleExample {
  size_t r_row;
  size_t p_row;
  Label label;
};

/// Translates tuple-level examples to class-level ones via the index.
Sample ToClassSample(const SignatureIndex& index,
                     const std::vector<TupleExample>& examples);

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_CONSISTENCY_H_
