#include "core/entropy.h"

#include <algorithm>

#include "util/string_util.h"

namespace jinfer {
namespace core {

std::string Entropy::ToString() const {
  auto part = [](uint64_t v) {
    return v == kInfinity ? std::string("inf") : std::to_string(v);
  };
  return "(" + part(min_u) + "," + part(max_u) + ")";
}

bool Dominates(const Entropy& a, const Entropy& b) {
  return a.min_u >= b.min_u && a.max_u >= b.max_u;
}

std::vector<Entropy> Skyline(std::vector<Entropy> entropies) {
  std::sort(entropies.begin(), entropies.end());
  entropies.erase(std::unique(entropies.begin(), entropies.end()),
                  entropies.end());
  // Sweep by min descending, max descending: an entry survives iff its max
  // strictly exceeds every max seen so far (all earlier entries have min ≥).
  std::sort(entropies.begin(), entropies.end(),
            [](const Entropy& a, const Entropy& b) {
              if (a.min_u != b.min_u) return a.min_u > b.min_u;
              return a.max_u > b.max_u;
            });
  std::vector<Entropy> frontier;
  uint64_t best_max = 0;
  bool any = false;
  for (const Entropy& e : entropies) {
    if (!any || e.max_u > best_max) {
      frontier.push_back(e);
      best_max = e.max_u;
      any = true;
    }
  }
  std::sort(frontier.begin(), frontier.end());
  return frontier;
}

Entropy SkylineMaxMin(const std::vector<Entropy>& entropies) {
  JINFER_CHECK(!entropies.empty(), "SkylineMaxMin on empty set");
  uint64_t m = 0;
  for (const Entropy& e : entropies) m = std::max(m, e.min_u);
  Entropy best{m, 0};
  bool found = false;
  for (const Entropy& e : entropies) {
    if (e.min_u == m && (!found || e.max_u > best.max_u)) {
      best = e;
      found = true;
    }
  }
  return best;
}

Entropy EntropyOf(const InferenceState& state, ClassId cls) {
  auto [up, un] = state.CountNewlyUninformativeBoth(cls);
  return Entropy::OfCounts(up, un);
}

void EntropyOfAll(const InferenceState& state, EntropyBatchScratch& scratch,
                  std::vector<Entropy>& out) {
  state.CountNewlyUninformativeAll(scratch.u_pos, scratch.u_neg);
  const size_t n = scratch.u_pos.size();
  out.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = Entropy::OfCounts(scratch.u_pos[i], scratch.u_neg[i]);
  }
}

namespace {

/// Recursive entropy^k over a single mutable state. `root_weight` is the
/// informative tuple weight of the original state; `depth` is the number of
/// labels already applied below the root. Leaf counts are
/// |Uninf(S ∪ labels) \ Uninf(S)| minus the labeled tuples themselves,
/// computed incrementally (no state copy at leaves).
///
/// Inner nodes simulate each label with ApplyLabelScoped/UndoLabel instead
/// of copying the state, and fold the children through a streaming
/// lexicographic max — equivalent to SkylineMaxMin (max of the minima,
/// ties to the larger max) without materializing the entropy vector. The
/// state is restored exactly before returning, so iterating the informative
/// list by index across recursive calls is safe.
///
/// The bottom level is batched: when every child is a leaf, one
/// CountNewlyUninformativeAll sweep scores all of them and the fold runs
/// over the returned columns in the same candidate order as the
/// per-candidate recursion (entropy_reference.h), so the streaming max —
/// first candidate wins ties — picks identically.
Entropy EntropyRec(uint64_t root_weight, InferenceState& state,
                   EntropyBatchScratch& scratch, ClassId cls, int remaining,
                   uint64_t depth) {
  if (remaining == 1) {
    uint64_t removed_so_far = root_weight - state.InformativeTupleWeight();
    auto [newly_pos, newly_neg] = state.CountNewlyUninformativeBoth(cls);
    uint64_t up = removed_so_far + newly_pos - depth;
    uint64_t un = removed_so_far + newly_neg - depth;
    return Entropy::OfCounts(up, un);
  }

  Entropy per_label[2];
  for (Label label : {Label::kPositive, Label::kNegative}) {
    state.ApplyLabelScoped(cls, label);
    Entropy e;
    if (state.NumInformativeClasses() == 0) {
      // Labeling this way ends the session: the best possible outcome
      // (Algorithm 5 lines 3-5).
      e = Entropy::Infinite();
    } else if (remaining == 2) {
      // All children are leaves: one batched sweep replaces one
      // CountNewlyUninformativeBoth per candidate.
      state.CountNewlyUninformativeAll(scratch.u_pos, scratch.u_neg);
      const uint64_t removed = root_weight - state.InformativeTupleWeight();
      const uint64_t d = depth + 1;
      for (size_t i = 0; i < scratch.u_pos.size(); ++i) {
        Entropy inner = Entropy::OfCounts(removed + scratch.u_pos[i] - d,
                                          removed + scratch.u_neg[i] - d);
        if (i == 0 || inner.min_u > e.min_u ||
            (inner.min_u == e.min_u && inner.max_u > e.max_u)) {
          e = inner;
        }
      }
    } else {
      bool first = true;
      for (size_t i = 0; i < state.NumInformativeClasses(); ++i) {
        ClassId c2 = state.InformativeClassAt(i);
        Entropy inner = EntropyRec(root_weight, state, scratch, c2,
                                   remaining - 1, depth + 1);
        if (first || inner.min_u > e.min_u ||
            (inner.min_u == e.min_u && inner.max_u > e.max_u)) {
          e = inner;
          first = false;
        }
      }
    }
    state.UndoLabel();
    per_label[label == Label::kPositive ? 0 : 1] = e;
  }

  // Adversarial combine (Algorithm 5 lines 13-14): keep the label whose
  // guaranteed information is smaller; on equal mins keep the smaller max
  // (the more conservative promise).
  const Entropy& ep = per_label[0];
  const Entropy& en = per_label[1];
  if (ep.min_u != en.min_u) return ep.min_u < en.min_u ? ep : en;
  return ep.max_u <= en.max_u ? ep : en;
}

}  // namespace

Entropy EntropyKOfInPlace(InferenceState& state, ClassId cls, int k,
                          EntropyBatchScratch& scratch) {
  JINFER_CHECK(k >= 1, "entropy lookahead depth must be >= 1, got %d", k);
  JINFER_CHECK(state.IsInformative(cls), "class %u is not informative", cls);
  return EntropyRec(state.InformativeTupleWeight(), state, scratch, cls, k,
                    0);
}

Entropy EntropyKOfInPlace(InferenceState& state, ClassId cls, int k) {
  EntropyBatchScratch scratch;
  return EntropyKOfInPlace(state, cls, k, scratch);
}

Entropy EntropyKOf(const InferenceState& state, ClassId cls, int k) {
  if (k == 1) return EntropyOf(state, cls);  // Leaf math, no simulation.
  InferenceState scratch = state;  // One copy per call, none per tree node.
  return EntropyKOfInPlace(scratch, cls, k);
}

}  // namespace core
}  // namespace jinfer
