// The general inference algorithm (Algorithm 1, §4.1).
//
// Repeatedly asks the strategy for an informative tuple, obtains its label
// from the oracle, and updates the inference state, until the halt
// condition Γ (no informative tuple left) holds. Returns T(S+) — the most
// specific predicate consistent with the collected sample, which is
// instance-equivalent to the user's goal (§3.3). An oracle that labels
// inconsistently makes the session fail with InconsistentSample.
//
// This is the run-to-completion form for callers that own both sides of
// the interaction (simulated oracles, tests). The step-driven equivalent
// — question and answer as separate calls, for users who answer on their
// own schedule — is runtime::Session, which reproduces this loop
// bit-for-bit (property-tested in tests/runtime/session_test.cc).

#ifndef JINFER_CORE_INFERENCE_H_
#define JINFER_CORE_INFERENCE_H_

#include <vector>

#include "core/inference_state.h"
#include "core/oracle.h"
#include "core/strategy.h"
#include "util/result.h"

namespace jinfer {
namespace core {

struct InferenceOptions {
  /// Stop after this many interactions even if informative tuples remain;
  /// 0 means run to the halt condition Γ. (The paper notes the user may
  /// stop early and accept the current T(S+).)
  size_t max_interactions = 0;

  /// Record the per-interaction trace in the result.
  bool record_trace = true;
};

/// One user interaction as recorded in the trace.
struct InteractionRecord {
  ClassId cls;                  ///< Class of the presented tuple.
  Label label;                  ///< The user's answer.
  uint64_t informative_before;  ///< Informative tuple weight before asking.
};

struct InferenceResult {
  JoinPredicate predicate;  ///< T(S+) at halt.
  size_t num_interactions = 0;
  double seconds = 0;  ///< Wall time excluding oracle think-time.
  bool halted_early = false;  ///< True iff max_interactions cut the session.
  std::vector<InteractionRecord> trace;
};

/// Runs Algorithm 1. Fails with InconsistentSample when the oracle's labels
/// admit no consistent predicate.
///
/// Note on noisy oracles: labeling an *informative* tuple keeps the sample
/// consistent whichever answer is given, so a lying user is only ever
/// caught when answering a tuple whose label was already certain. The
/// bundled strategies present informative tuples exclusively; under them a
/// lie silently redirects the inference instead of failing it.
util::Result<InferenceResult> RunInference(const SignatureIndex& index,
                                           Strategy& strategy, Oracle& oracle,
                                           const InferenceOptions& options = {});

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_INFERENCE_H_
