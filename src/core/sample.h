// Samples: sets of labeled examples (§3).
//
// An example is a tuple of D with a +/− label. Because tuples with equal
// T(t) are interchangeable, examples are stored at the class level; the
// tuple-level view is recovered through class representatives.

#ifndef JINFER_CORE_SAMPLE_H_
#define JINFER_CORE_SAMPLE_H_

#include <vector>

#include "core/signature_index.h"
#include "core/types.h"

namespace jinfer {
namespace core {

/// One labeled example at class granularity.
struct ClassExample {
  ClassId cls;
  Label label;

  friend bool operator==(const ClassExample& a, const ClassExample& b) {
    return a.cls == b.cls && a.label == b.label;
  }
};

/// A sample S as an ordered list of examples (order = interaction order).
using Sample = std::vector<ClassExample>;

/// T(S+): the intersection of the positive examples' signatures; Ω when the
/// sample has no positive example (the identity of intersection, matching
/// §3.3's convention that only negatives yields Ω).
JoinPredicate MostSpecificPredicate(const SignatureIndex& index,
                                    const Sample& sample);

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_SAMPLE_H_
