// Reference entropy implementation: the pre-batching per-candidate
// recursion, retained verbatim as the differential oracle for the batched
// sweep in entropy.cc (DESIGN.md §12). Every leaf is scored by its own
// CountNewlyUninformativeBoth call, so the only state API it shares with
// the batch path is the per-candidate one — a disagreement localizes the
// bug to the batch sweep or the packed arrays, not to shared plumbing.
//
// Test-only by convention: nothing under src/ outside the tests links it
// on a hot path. Kept in src/core (not tests/) so the harness can compare
// across every build type the CI matrix compiles.

#ifndef JINFER_CORE_ENTROPY_REFERENCE_H_
#define JINFER_CORE_ENTROPY_REFERENCE_H_

#include "core/entropy.h"
#include "core/inference_state.h"
#include "core/types.h"

namespace jinfer {
namespace core {

/// entropy^k_S(t) by the per-candidate recursion; bit-identical to
/// EntropyKOf for every k, state and candidate.
Entropy EntropyKOfReference(const InferenceState& state, ClassId cls, int k);

/// In-place form on a caller-owned scratch state (restored exactly),
/// mirroring EntropyKOfInPlace.
Entropy EntropyKOfInPlaceReference(InferenceState& state, ClassId cls, int k);

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_ENTROPY_REFERENCE_H_
