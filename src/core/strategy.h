// Strategy interface (§4.1): given the current inference state, pick the
// next informative tuple class to present to the user, or none when the
// halt condition Γ holds (no informative tuple left).
//
// Implemented strategies:
//   RND — random informative tuple (baseline; tuple-weighted)
//   BU  — bottom-up on the predicate lattice (Algorithm 2)
//   TD  — top-down, degrades to BU after the first positive (Algorithm 3)
//   L1S — one-step lookahead skyline (Algorithm 4)
//   L2S — two-step lookahead skyline (Algorithm 6)
//   L3S — three-step lookahead (depth ablation; not in the paper)
//   EG  — expected-gain heuristic (paper's §7 future-work direction)

#ifndef JINFER_CORE_STRATEGY_H_
#define JINFER_CORE_STRATEGY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/inference_state.h"
#include "core/types.h"
#include "util/result.h"

namespace jinfer {
namespace core {

enum class StrategyKind {
  kRandom,
  kBottomUp,
  kTopDown,
  kLookahead1,
  kLookahead2,
  kLookahead3,
  kExpectedGain,
  kOptimal,  ///< §4.1's exponential minimax; small instances only.
};

/// Paper abbreviation of a strategy kind ("RND", "BU", "TD", "L1S", ...).
const char* StrategyKindName(StrategyKind kind);

/// Parses a paper abbreviation; fails on unknown names.
util::Result<StrategyKind> StrategyKindFromName(const std::string& name);

class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual const char* name() const = 0;

  /// Picks the next class to present. Must return an informative class, or
  /// nullopt iff no informative class remains. May be called repeatedly;
  /// strategies carry no *semantic* state apart from RNG state — the pick
  /// is a function of `state` alone — though they may keep reusable
  /// scratch buffers (sweep columns, entropy vectors) between calls.
  virtual std::optional<ClassId> SelectNext(const InferenceState& state) = 0;

  /// True iff SelectNext is a pure function of the sample set (every
  /// bundled strategy except RND). The worst-case adversary memoizes on
  /// the sample set and requires this.
  virtual bool deterministic() const { return true; }
};

/// Factory. `seed` only affects the RND strategy.
std::unique_ptr<Strategy> MakeStrategy(StrategyKind kind, uint64_t seed = 0);

/// The five strategies evaluated in the paper, in its reporting order:
/// BU, TD, L1S, L2S, RND.
std::vector<StrategyKind> PaperStrategies();

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_STRATEGY_H_
