#include "core/signature_index.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <unordered_set>

#include "relational/column_table.h"
#include "relational/value.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace jinfer {
namespace core {

namespace {

uint64_t NextBuildId() {
  static std::atomic<uint64_t> next_build_id{1};
  return next_build_id.fetch_add(1, std::memory_order_relaxed);
}

/// The row-major reference dictionary retained from the pre-columnar seed:
/// encodes every cell through a Value-keyed hash map. Equal non-null values
/// get equal codes; every NULL gets a fresh code (NULL never matches
/// anything, per rel::Value semantics). EncodeInstance (the production
/// columnar remap) reproduces its code assignment bit-for-bit.
///
/// Invariant: NULL codes and non-null codes are drawn from disjoint ranges —
/// non-null codes ascend from 0, NULL codes descend from UINT32_MAX — so a
/// NULL code can never collide with any past or *future* non-null code. (A
/// single shared counter is only collision-free while every consumer
/// increments it; the split ranges make the guarantee structural and survive
/// interleaved NULL/non-NULL encodes in any order.)
struct ReferenceDictionary {
  std::unordered_map<rel::Value, uint32_t, rel::ValueHash> codes;
  uint32_t next_code = 0;
  uint32_t next_null_code = std::numeric_limits<uint32_t>::max();

  uint32_t Encode(const rel::Value& v) {
    JINFER_CHECK(next_code < next_null_code,
                 "dictionary code space exhausted");
    if (v.is_null()) return next_null_code--;
    auto [it, inserted] = codes.try_emplace(v, next_code);
    if (inserted) ++next_code;
    return it->second;
  }

  /// Flat row-major encoding: row i occupies [i*width, (i+1)*width). The
  /// flat layout is what the persistent store serializes (and maps back)
  /// verbatim.
  std::vector<uint32_t> EncodeRows(const std::vector<rel::Row>& rows) {
    std::vector<uint32_t> out;
    out.reserve(rows.size() * (rows.empty() ? 0 : rows.front().size()));
    for (const rel::Row& row : rows) {
      for (const auto& v : row) out.push_back(Encode(v));
    }
    return out;
  }
};

/// A distinct encoded row (pointer into the flat code array) with its
/// multiplicity and a representative original row index.
struct DistinctRow {
  const uint32_t* codes;
  uint64_t count;
  uint32_t rep;
};

/// Hash/equality over width-sized code rows, keyed by pointer into the
/// flat array (no row copies); the width is fixed per relation.
struct RowPtrHash {
  size_t width;
  size_t operator()(const uint32_t* row) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (size_t k = 0; k < width; ++k) h = util::Mix64(row[k] + h);
    return static_cast<size_t>(h);
  }
};

struct RowPtrEq {
  size_t width;
  bool operator()(const uint32_t* a, const uint32_t* b) const {
    return std::equal(a, a + width, b);
  }
};

/// Hashed dedup over the flat code array; first occurrence wins the
/// representative slot, matching scan order.
std::vector<DistinctRow> Deduplicate(const std::vector<uint32_t>& codes,
                                     size_t width) {
  const size_t num_rows = width == 0 ? 0 : codes.size() / width;
  std::unordered_map<const uint32_t*, size_t, RowPtrHash, RowPtrEq> seen(
      num_rows, RowPtrHash{width}, RowPtrEq{width});
  std::vector<DistinctRow> out;
  for (size_t i = 0; i < num_rows; ++i) {
    const uint32_t* row = codes.data() + i * width;
    auto [it, inserted] = seen.try_emplace(row, out.size());
    if (inserted) {
      out.push_back(DistinctRow{row, 1, static_cast<uint32_t>(i)});
    } else {
      ++out[it->second].count;
    }
  }
  return out;
}

/// Per-P-row lookup structure: sorted (code, bitmask-of-j-positions).
struct PRowLookup {
  std::vector<std::pair<uint32_t, uint32_t>> entries;  // (code, j-mask)

  PRowLookup(const uint32_t* codes, size_t width) {
    for (size_t j = 0; j < width; ++j) {
      entries.emplace_back(codes[j], uint32_t{1} << j);
    }
    std::sort(entries.begin(), entries.end());
    // Collapse duplicate codes within the row into one mask.
    size_t w = 0;
    for (size_t k = 0; k < entries.size(); ++k) {
      if (w > 0 && entries[w - 1].first == entries[k].first) {
        entries[w - 1].second |= entries[k].second;
      } else {
        entries[w++] = entries[k];
      }
    }
    entries.resize(w);
  }

  /// Bitmask of P attribute positions j whose value code equals `code`.
  /// Rows are ≤4 distinct codes in the measured common case, where a
  /// branch-predictable linear scan beats std::lower_bound.
  uint32_t Match(uint32_t code) const {
    if (entries.size() <= 4) {
      for (const auto& e : entries) {
        if (e.first == code) return e.second;
      }
      return 0;
    }
    auto it = std::lower_bound(
        entries.begin(), entries.end(), code,
        [](const auto& e, uint32_t c) { return e.first < c; });
    if (it != entries.end() && it->first == code) return it->second;
    return 0;
  }
};

/// Hash/equality over only the words Ω occupies (1 for instances up to
/// 8×8 attributes, 4 worst-case) — the signature map is probed once per
/// R′ × P′ pair, making the hash width the dominant build cost.
struct PrefixSigHash {
  size_t words;
  size_t operator()(const JoinPredicate& sig) const {
    return sig.HashPrefix(words);
  }
};
struct PrefixSigEq {
  size_t words;
  bool operator()(const JoinPredicate& a, const JoinPredicate& b) const {
    return a.EqualsPrefix(b, words);
  }
};
using ShardMap =
    std::unordered_map<JoinPredicate, uint32_t, PrefixSigHash, PrefixSigEq>;

/// Worker-private output of the classification pass over one contiguous
/// block of distinct R rows. Local class order is first-occurrence order
/// within the block.
struct ClassShard {
  std::vector<SignatureClass> classes;
  ShardMap class_of;

  explicit ClassShard(size_t words)
      : class_of(16, PrefixSigHash{words}, PrefixSigEq{words}) {}
};

}  // namespace

EncodedInstance EncodeInstance(const rel::Relation& r, const rel::Relation& p) {
  // One shared global dictionary; per-column remap tables translate each
  // relation's local codes into it. A (column, local code) pair consults
  // the global dictionary exactly once — every later cell holding that
  // value is a single array read — and the row-major walk order makes the
  // assignment identical to the reference's cell-by-cell first-occurrence
  // numbering.
  rel::ColumnDictionary global;
  uint32_t next_null_code = std::numeric_limits<uint32_t>::max();
  constexpr uint32_t kUnmapped = 0xFFFFFFFFu;  // No global code < this one
                                               // can exist: the exhaustion
                                               // check fires first.

  auto encode = [&](const rel::ColumnTable& t) {
    const size_t cols = t.num_columns();
    const size_t rows = t.num_rows();
    std::vector<std::vector<uint32_t>> remap(cols);
    std::vector<std::span<const uint32_t>> codes(cols);
    for (size_t c = 0; c < cols; ++c) {
      remap[c].assign(t.dictionary(c).size(), kUnmapped);
      codes[c] = t.codes(c);
    }
    std::vector<uint32_t> out;
    out.reserve(rows * cols);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t c = 0; c < cols; ++c) {
        const uint32_t local = codes[c][i];
        if (local == rel::kNullCellCode) {
          JINFER_CHECK(global.size() < next_null_code,
                       "dictionary code space exhausted");
          out.push_back(next_null_code--);
          continue;
        }
        uint32_t& g = remap[c][local];
        if (g == kUnmapped) {
          JINFER_CHECK(global.size() < next_null_code,
                       "dictionary code space exhausted");
          g = global.EncodeView(t.dictionary(c).view(local));
        }
        out.push_back(g);
      }
    }
    return out;
  };

  EncodedInstance encoded;
  encoded.r_codes = encode(r.columns());
  encoded.p_codes = encode(p.columns());
  return encoded;
}

EncodedInstance EncodeInstanceReference(const std::vector<rel::Row>& r_rows,
                                        const std::vector<rel::Row>& p_rows) {
  ReferenceDictionary dict;
  EncodedInstance encoded;
  encoded.r_codes = dict.EncodeRows(r_rows);
  encoded.p_codes = dict.EncodeRows(p_rows);
  return encoded;
}

util::Result<SignatureIndex> SignatureIndex::Build(
    const rel::Relation& r, const rel::Relation& p,
    const SignatureIndexOptions& options) {
  if (r.num_rows() == 0 || p.num_rows() == 0) {
    return util::Status::InvalidArgument(
        "SignatureIndex requires non-empty instances of both relations");
  }
  JINFER_ASSIGN_OR_RETURN(Omega omega, Omega::Make(r.schema(), p.schema()));
  return BuildFromEncoded(std::move(omega), EncodeInstance(r, p), options);
}

util::Result<SignatureIndex> SignatureIndex::BuildReferenceRowMajor(
    const rel::Schema& r_schema, const std::vector<rel::Row>& r_rows,
    const rel::Schema& p_schema, const std::vector<rel::Row>& p_rows,
    const SignatureIndexOptions& options) {
  if (r_rows.empty() || p_rows.empty()) {
    return util::Status::InvalidArgument(
        "SignatureIndex requires non-empty instances of both relations");
  }
  JINFER_ASSIGN_OR_RETURN(Omega omega, Omega::Make(r_schema, p_schema));
  return BuildFromEncoded(std::move(omega),
                          EncodeInstanceReference(r_rows, p_rows), options);
}

util::Result<SignatureIndex> SignatureIndex::BuildFromEncoded(
    Omega omega, EncodedInstance encoded,
    const SignatureIndexOptions& options) {
  SignatureIndex index;
  index.omega_ = std::move(omega);
  index.build_id_ = NextBuildId();
  index.compressed_ = options.compress;
  index.owned_r_codes_ = std::move(encoded.r_codes);
  index.owned_p_codes_ = std::move(encoded.p_codes);
  const size_t r_width = index.omega_.num_r_attrs();
  const size_t p_width = index.omega_.num_p_attrs();
  const size_t num_r_rows = index.owned_r_codes_.size() / r_width;
  const size_t num_p_rows = index.owned_p_codes_.size() / p_width;
  index.num_tuples_ =
      static_cast<uint64_t>(num_r_rows) * static_cast<uint64_t>(num_p_rows);

  std::vector<DistinctRow> r_rows, p_rows;
  if (options.compress) {
    r_rows = Deduplicate(index.owned_r_codes_, r_width);
    p_rows = Deduplicate(index.owned_p_codes_, p_width);
  } else {
    for (size_t i = 0; i < num_r_rows; ++i) {
      r_rows.push_back(DistinctRow{index.owned_r_codes_.data() + i * r_width,
                                   1, static_cast<uint32_t>(i)});
    }
    for (size_t j = 0; j < num_p_rows; ++j) {
      p_rows.push_back(DistinctRow{index.owned_p_codes_.data() + j * p_width,
                                   1, static_cast<uint32_t>(j)});
    }
  }

  // Codes appearing anywhere in P: R attributes whose value is absent from P
  // can never contribute an atom and are skipped per R row. Read-only after
  // this point, so shared across the workers below.
  std::unordered_set<uint32_t> codes_in_p;
  for (const auto& pr : p_rows) {
    for (size_t j = 0; j < p_width; ++j) codes_in_p.insert(pr.codes[j]);
  }

  std::vector<PRowLookup> p_lookups;
  p_lookups.reserve(p_rows.size());
  for (const auto& pr : p_rows) p_lookups.emplace_back(pr.codes, p_width);

  // Classification pass: each worker owns a contiguous block of distinct R
  // rows and a private signature→class table; JoinPredicate is a fixed-size
  // bitset, so the inner loop allocates nothing per pair.
  const size_t m = index.omega_.num_p_attrs();
  const size_t active_words = JoinPredicate::WordsFor(index.omega_.size());
  const size_t num_threads = util::ResolveThreadCount(options.threads);
  std::vector<ClassShard> shards(
      num_threads < r_rows.size() ? num_threads : r_rows.size(),
      ClassShard(active_words));
  util::ParallelFor(
      r_rows.size(), num_threads,
      [&](size_t block_begin, size_t block_end, size_t worker) {
        ClassShard& shard = shards[worker];
        std::vector<std::pair<size_t, uint32_t>> active;  // (i, code) in P
        for (size_t rk = block_begin; rk < block_end; ++rk) {
          const DistinctRow& rr = r_rows[rk];
          active.clear();
          for (size_t i = 0; i < r_width; ++i) {
            uint32_t code = rr.codes[i];
            if (codes_in_p.contains(code)) active.emplace_back(i, code);
          }
          for (size_t pk = 0; pk < p_rows.size(); ++pk) {
            JoinPredicate sig;
            for (const auto& [i, code] : active) {
              uint32_t jmask = p_lookups[pk].Match(code);
              while (jmask != 0) {
                size_t j = static_cast<size_t>(std::countr_zero(jmask));
                sig.Set(i * m + j);
                jmask &= jmask - 1;
              }
            }
            uint64_t weight = rr.count * p_rows[pk].count;
            if (options.compress) {
              auto [it, inserted] = shard.class_of.try_emplace(
                  sig, static_cast<uint32_t>(shard.classes.size()));
              if (inserted) {
                shard.classes.push_back(
                    SignatureClass{sig, weight, rr.rep, p_rows[pk].rep,
                                   false});
              } else {
                shard.classes[it->second].count += weight;
              }
            } else {
              // Ablation mode: one singleton class per tuple.
              shard.classes.push_back(
                  SignatureClass{sig, 1, rr.rep, p_rows[pk].rep, false});
            }
          }
        }
      });

  // Deterministic merge: walking the shards in worker order visits classes
  // in global first-occurrence order (blocks are contiguous and ascending),
  // so ids, counts and representatives match the serial build exactly.
  for (ClassShard& shard : shards) {
    for (SignatureClass& sc : shard.classes) {
      auto [it, inserted] = index.class_of_signature_.try_emplace(
          sc.signature, static_cast<ClassId>(index.owned_classes_.size()));
      if (inserted) {
        index.owned_classes_.push_back(std::move(sc));
      } else if (options.compress) {
        index.owned_classes_[it->second].count += sc.count;
      } else {
        index.owned_classes_.push_back(std::move(sc));
      }
    }
    shard.classes.clear();
    shard.class_of.clear();
  }

  // Mark ⊆-maximal signatures (needed by the top-down strategy). A strict
  // superset has strictly larger popcount, so bucket the classes by
  // popcount and test each signature only against buckets above its own;
  // equal-popcount signatures can never strictly contain one another.
  const size_t num_classes = index.owned_classes_.size();
  std::vector<uint16_t> popcounts(num_classes);
  std::vector<std::vector<uint32_t>> buckets(index.omega_.size() + 1);
  for (size_t a = 0; a < num_classes; ++a) {
    size_t bits = index.owned_classes_[a].signature.Count();
    popcounts[a] = static_cast<uint16_t>(bits);
    buckets[bits].push_back(static_cast<uint32_t>(a));
  }
  util::ParallelFor(
      num_classes, num_threads, [&](size_t begin, size_t end, size_t) {
        for (size_t a = begin; a < end; ++a) {
          const JoinPredicate& sig = index.owned_classes_[a].signature;
          bool maximal = true;
          for (size_t bits = popcounts[a] + 1;
               maximal && bits < buckets.size(); ++bits) {
            for (uint32_t b : buckets[bits]) {
              if (sig.IsSubsetOfPrefix(index.owned_classes_[b].signature,
                                       active_words)) {
                maximal = false;
                break;
              }
            }
          }
          index.owned_classes_[a].maximal = maximal;
        }
      });

  // Point the read surface at the owned buffers. Safe across moves: moving
  // a vector transfers its heap buffer, so the span targets stay put.
  index.classes_ = index.owned_classes_;
  index.r_codes_ = index.owned_r_codes_;
  index.p_codes_ = index.owned_p_codes_;
  return index;
}

util::Result<SignatureIndex> SignatureIndex::FromSections(
    Omega omega, uint64_t num_tuples, bool compressed,
    std::span<const SignatureClass> classes, std::span<const uint32_t> r_codes,
    std::span<const uint32_t> p_codes, std::shared_ptr<const void> storage) {
  const size_t r_width = omega.num_r_attrs();
  const size_t p_width = omega.num_p_attrs();
  if (r_width == 0 || p_width == 0 || r_codes.size() % r_width != 0 ||
      p_codes.size() % p_width != 0 || r_codes.empty() || p_codes.empty()) {
    return util::Status::ParseError(
        "index sections: code arrays inconsistent with the schema widths");
  }
  const uint64_t expected_tuples =
      static_cast<uint64_t>(r_codes.size() / r_width) *
      static_cast<uint64_t>(p_codes.size() / p_width);
  if (num_tuples != expected_tuples) {
    return util::Status::ParseError(util::StrFormat(
        "index sections: num_tuples %llu does not match %llu encoded rows",
        static_cast<unsigned long long>(num_tuples),
        static_cast<unsigned long long>(expected_tuples)));
  }

  SignatureIndex index;
  index.omega_ = std::move(omega);
  index.build_id_ = NextBuildId();
  index.compressed_ = compressed;
  index.num_tuples_ = num_tuples;
  index.storage_ = std::move(storage);
  index.classes_ = classes;
  index.r_codes_ = r_codes;
  index.p_codes_ = p_codes;
  JINFER_RETURN_NOT_OK(index.IndexSignatures());
  return index;
}

util::Status SignatureIndex::IndexSignatures() {
  class_of_signature_.clear();
  class_of_signature_.reserve(classes_.size());
  uint64_t total = 0;
  uint32_t max_row_r = 0, max_row_p = 0;
  for (size_t a = 0; a < classes_.size(); ++a) {
    const SignatureClass& sc = classes_[a];
    auto [it, inserted] = class_of_signature_.try_emplace(
        sc.signature, static_cast<ClassId>(a));
    // Compressed indexes have one class per signature; in the uncompressed
    // ablation shape duplicates are expected and the first class wins the
    // map slot, matching Build's merge order.
    if (!inserted && compressed_) {
      return util::Status::ParseError(util::StrFormat(
          "index sections: duplicate signature in classes %u and %zu of a "
          "compressed index", it->second, a));
    }
    total += sc.count;
    max_row_r = std::max(max_row_r, sc.rep_r);
    max_row_p = std::max(max_row_p, sc.rep_p);
  }
  if (total != num_tuples_) {
    return util::Status::ParseError(util::StrFormat(
        "index sections: class counts sum to %llu, expected |D| = %llu",
        static_cast<unsigned long long>(total),
        static_cast<unsigned long long>(num_tuples_)));
  }
  if (max_row_r >= num_r_rows() || max_row_p >= num_p_rows()) {
    return util::Status::ParseError(
        "index sections: class representative outside the encoded rows");
  }
  return util::Status::OK();
}

std::optional<ClassId> SignatureIndex::ClassOfSignature(
    const JoinPredicate& sig) const {
  auto it = class_of_signature_.find(sig);
  if (it == class_of_signature_.end()) return std::nullopt;
  return it->second;
}

JoinPredicate SignatureIndex::SignatureOfPair(size_t r_row,
                                              size_t p_row) const {
  JINFER_CHECK(r_row < num_r_rows() && p_row < num_p_rows(),
               "tuple (%zu,%zu) outside instance", r_row, p_row);
  const size_t n = omega_.num_r_attrs();
  const size_t m = omega_.num_p_attrs();
  const uint32_t* rc = r_codes_.data() + r_row * n;
  const uint32_t* pc = p_codes_.data() + p_row * m;
  JoinPredicate sig;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (rc[i] == pc[j]) sig.Set(i * m + j);
    }
  }
  return sig;
}

uint64_t SignatureIndex::CountSelected(const JoinPredicate& theta) const {
  uint64_t total = 0;
  for (const auto& c : classes_) {
    if (theta.IsSubsetOf(c.signature)) total += c.count;
  }
  return total;
}

bool SignatureIndex::EquivalentOnInstance(const JoinPredicate& theta1,
                                          const JoinPredicate& theta2) const {
  for (const auto& c : classes_) {
    if (theta1.IsSubsetOf(c.signature) != theta2.IsSubsetOf(c.signature)) {
      return false;
    }
  }
  return true;
}

bool SignatureIndex::IsNonNullable(const JoinPredicate& theta) const {
  for (const auto& c : classes_) {
    if (theta.IsSubsetOf(c.signature)) return true;
  }
  return false;
}

}  // namespace core
}  // namespace jinfer
