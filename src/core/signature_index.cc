#include "core/signature_index.h"

#include <algorithm>
#include <bit>
#include <map>
#include <unordered_set>

#include "relational/value.h"
#include "util/string_util.h"

namespace jinfer {
namespace core {

namespace {

/// Dictionary-encodes every cell of both relations. Equal non-null values
/// get equal codes; every NULL gets a fresh code (NULL never matches
/// anything, per rel::Value semantics).
struct Dictionary {
  std::unordered_map<rel::Value, uint32_t, rel::ValueHash> codes;
  uint32_t next_code = 0;

  uint32_t Encode(const rel::Value& v) {
    if (v.is_null()) return next_code++;
    auto [it, inserted] = codes.try_emplace(v, next_code);
    if (inserted) ++next_code;
    return it->second;
  }

  std::vector<std::vector<uint32_t>> EncodeRelation(const rel::Relation& rel) {
    std::vector<std::vector<uint32_t>> out(rel.num_rows());
    for (size_t i = 0; i < rel.num_rows(); ++i) {
      out[i].reserve(rel.num_attributes());
      for (const auto& v : rel.row(i)) out[i].push_back(Encode(v));
    }
    return out;
  }
};

/// A distinct encoded row with its multiplicity and a representative
/// original row index.
struct DistinctRow {
  const std::vector<uint32_t>* codes;
  uint64_t count;
  uint32_t rep;
};

std::vector<DistinctRow> Deduplicate(
    const std::vector<std::vector<uint32_t>>& rows) {
  std::map<std::vector<uint32_t>, size_t> seen;
  std::vector<DistinctRow> out;
  for (size_t i = 0; i < rows.size(); ++i) {
    auto [it, inserted] = seen.try_emplace(rows[i], out.size());
    if (inserted) {
      out.push_back(DistinctRow{&rows[i], 1, static_cast<uint32_t>(i)});
    } else {
      ++out[it->second].count;
    }
  }
  return out;
}

/// Per-P-row lookup structure: sorted (code, bitmask-of-j-positions).
struct PRowLookup {
  std::vector<std::pair<uint32_t, uint32_t>> entries;  // (code, j-mask)

  explicit PRowLookup(const std::vector<uint32_t>& codes) {
    for (size_t j = 0; j < codes.size(); ++j) {
      entries.emplace_back(codes[j], uint32_t{1} << j);
    }
    std::sort(entries.begin(), entries.end());
    // Collapse duplicate codes within the row into one mask.
    size_t w = 0;
    for (size_t k = 0; k < entries.size(); ++k) {
      if (w > 0 && entries[w - 1].first == entries[k].first) {
        entries[w - 1].second |= entries[k].second;
      } else {
        entries[w++] = entries[k];
      }
    }
    entries.resize(w);
  }

  /// Bitmask of P attribute positions j whose value code equals `code`.
  uint32_t Match(uint32_t code) const {
    auto it = std::lower_bound(
        entries.begin(), entries.end(), code,
        [](const auto& e, uint32_t c) { return e.first < c; });
    if (it != entries.end() && it->first == code) return it->second;
    return 0;
  }
};

}  // namespace

util::Result<SignatureIndex> SignatureIndex::Build(
    const rel::Relation& r, const rel::Relation& p,
    const SignatureIndexOptions& options) {
  if (r.num_rows() == 0 || p.num_rows() == 0) {
    return util::Status::InvalidArgument(
        "SignatureIndex requires non-empty instances of both relations");
  }
  JINFER_ASSIGN_OR_RETURN(Omega omega, Omega::Make(r.schema(), p.schema()));

  SignatureIndex index;
  index.omega_ = std::move(omega);
  index.num_tuples_ =
      static_cast<uint64_t>(r.num_rows()) * static_cast<uint64_t>(p.num_rows());

  Dictionary dict;
  index.r_codes_ = dict.EncodeRelation(r);
  index.p_codes_ = dict.EncodeRelation(p);

  std::vector<DistinctRow> r_rows, p_rows;
  if (options.compress) {
    r_rows = Deduplicate(index.r_codes_);
    p_rows = Deduplicate(index.p_codes_);
  } else {
    for (size_t i = 0; i < index.r_codes_.size(); ++i) {
      r_rows.push_back(
          DistinctRow{&index.r_codes_[i], 1, static_cast<uint32_t>(i)});
    }
    for (size_t j = 0; j < index.p_codes_.size(); ++j) {
      p_rows.push_back(
          DistinctRow{&index.p_codes_[j], 1, static_cast<uint32_t>(j)});
    }
  }

  // Codes appearing anywhere in P: R attributes whose value is absent from P
  // can never contribute an atom and are skipped per R row.
  std::unordered_set<uint32_t> codes_in_p;
  for (const auto& pr : p_rows) {
    for (uint32_t c : *pr.codes) codes_in_p.insert(c);
  }

  std::vector<PRowLookup> p_lookups;
  p_lookups.reserve(p_rows.size());
  for (const auto& pr : p_rows) p_lookups.emplace_back(*pr.codes);

  const size_t m = index.omega_.num_p_attrs();
  std::vector<std::pair<size_t, uint32_t>> active;  // (i, code), code in P
  for (const auto& rr : r_rows) {
    active.clear();
    for (size_t i = 0; i < rr.codes->size(); ++i) {
      uint32_t code = (*rr.codes)[i];
      if (codes_in_p.contains(code)) active.emplace_back(i, code);
    }
    for (size_t pk = 0; pk < p_rows.size(); ++pk) {
      JoinPredicate sig;
      for (const auto& [i, code] : active) {
        uint32_t jmask = p_lookups[pk].Match(code);
        while (jmask != 0) {
          size_t j = static_cast<size_t>(std::countr_zero(jmask));
          sig.Set(i * m + j);
          jmask &= jmask - 1;
        }
      }
      uint64_t weight = rr.count * p_rows[pk].count;
      if (options.compress) {
        auto [it, inserted] = index.class_of_signature_.try_emplace(
            sig, static_cast<ClassId>(index.classes_.size()));
        if (inserted) {
          index.classes_.push_back(
              SignatureClass{sig, weight, rr.rep, p_rows[pk].rep, false});
        } else {
          index.classes_[it->second].count += weight;
        }
      } else {
        // Ablation mode: one singleton class per tuple; the signature map
        // keeps the first class holding each signature.
        index.class_of_signature_.try_emplace(
            sig, static_cast<ClassId>(index.classes_.size()));
        index.classes_.push_back(
            SignatureClass{sig, 1, rr.rep, p_rows[pk].rep, false});
      }
    }
  }

  // Mark ⊆-maximal signatures (needed by the top-down strategy).
  for (size_t a = 0; a < index.classes_.size(); ++a) {
    bool maximal = true;
    for (size_t b = 0; b < index.classes_.size(); ++b) {
      if (a != b && index.classes_[a].signature.IsStrictSubsetOf(
                        index.classes_[b].signature)) {
        maximal = false;
        break;
      }
    }
    index.classes_[a].maximal = maximal;
  }
  return index;
}

std::optional<ClassId> SignatureIndex::ClassOfSignature(
    const JoinPredicate& sig) const {
  auto it = class_of_signature_.find(sig);
  if (it == class_of_signature_.end()) return std::nullopt;
  return it->second;
}

JoinPredicate SignatureIndex::SignatureOfPair(size_t r_row,
                                              size_t p_row) const {
  JINFER_CHECK(r_row < r_codes_.size() && p_row < p_codes_.size(),
               "tuple (%zu,%zu) outside instance", r_row, p_row);
  const auto& rc = r_codes_[r_row];
  const auto& pc = p_codes_[p_row];
  JoinPredicate sig;
  const size_t m = omega_.num_p_attrs();
  for (size_t i = 0; i < rc.size(); ++i) {
    for (size_t j = 0; j < pc.size(); ++j) {
      if (rc[i] == pc[j]) sig.Set(i * m + j);
    }
  }
  return sig;
}

uint64_t SignatureIndex::CountSelected(const JoinPredicate& theta) const {
  uint64_t total = 0;
  for (const auto& c : classes_) {
    if (theta.IsSubsetOf(c.signature)) total += c.count;
  }
  return total;
}

bool SignatureIndex::EquivalentOnInstance(const JoinPredicate& theta1,
                                          const JoinPredicate& theta2) const {
  for (const auto& c : classes_) {
    if (theta1.IsSubsetOf(c.signature) != theta2.IsSubsetOf(c.signature)) {
      return false;
    }
  }
  return true;
}

bool SignatureIndex::IsNonNullable(const JoinPredicate& theta) const {
  for (const auto& c : classes_) {
    if (theta.IsSubsetOf(c.signature)) return true;
  }
  return false;
}

}  // namespace core
}  // namespace jinfer
