// Session reports: human-readable transcripts and machine-readable CSV
// exports of an inference session's trace.
//
// The interactive scenario is an audit trail by nature — which tuples the
// user saw, what they answered, and how much of the candidate space each
// answer eliminated. Examples print transcripts; the CSV export feeds the
// session into spreadsheets or downstream tooling, and round-trips through
// rel::ReadRelationCsvText.

#ifndef JINFER_CORE_SESSION_REPORT_H_
#define JINFER_CORE_SESSION_REPORT_H_

#include <string>

#include "core/inference.h"
#include "core/signature_index.h"
#include "relational/relation.h"
#include "util/result.h"

namespace jinfer {
namespace core {

/// Renders the session as indented text: one line per interaction with the
/// representative tuple's values, the label, and the informative weight
/// before the question; ends with the inferred predicate. `r` and `p` must
/// be the relations the index was built from.
std::string RenderTranscript(const SignatureIndex& index,
                             const rel::Relation& r, const rel::Relation& p,
                             const InferenceResult& result);

/// Serializes the trace as CSV with header
///   question,r_row,p_row,label,signature,informative_before
/// (label is "+"/"-", signature in the paper's {(Ai,Bj),...} notation).
std::string TraceToCsv(const SignatureIndex& index,
                       const InferenceResult& result);

/// Rebuilds the class-level sample from a TraceToCsv export against the
/// same instance. Fails on malformed text or rows that do not exist in the
/// index.
util::Result<Sample> SampleFromTraceCsv(const SignatureIndex& index,
                                        const std::string& csv_text);

}  // namespace core
}  // namespace jinfer

#endif  // JINFER_CORE_SESSION_REPORT_H_
