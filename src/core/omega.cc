#include "core/omega.h"

#include <sstream>

#include "util/string_util.h"

namespace jinfer {
namespace core {

util::Result<Omega> Omega::Make(const rel::Schema& r, const rel::Schema& p) {
  size_t n = r.num_attributes();
  size_t m = p.num_attributes();
  if (n == 0 || m == 0) {
    return util::Status::InvalidArgument("schemas must be non-empty");
  }
  if (n * m > util::SmallBitset::kMaxBits) {
    // The cap comes from the persistent class-table format, which embeds
    // each signature as a fixed four-word SmallBitset; the in-memory kernel
    // layer itself is width-generic (util::BitVector covers any |Omega|),
    // so lifting this limit is a store-format change, not an engine one.
    return util::Status::CapacityExceeded(util::StrFormat(
        "|Omega| = %zu * %zu = %zu exceeds the %zu-atom capacity pinned by "
        "the store format (signatures are fixed four-word bitsets on disk); "
        "larger universes need a store-format rev of SignatureClass",
        n, m, n * m, util::SmallBitset::kMaxBits));
  }
  Omega o;
  o.num_r_attrs_ = n;
  o.num_p_attrs_ = m;
  o.r_relation_ = r.relation_name();
  o.p_relation_ = p.relation_name();
  o.r_names_ = r.attribute_names();
  o.p_names_ = p.attribute_names();
  return o;
}

JoinPredicate Omega::PredicateFromPairs(
    const std::vector<std::pair<size_t, size_t>>& pairs) const {
  JoinPredicate theta;
  for (const auto& [i, j] : pairs) theta.Set(BitOf(i, j));
  return theta;
}

util::Result<JoinPredicate> Omega::PredicateFromNames(
    const std::vector<std::pair<std::string, std::string>>& pairs) const {
  JoinPredicate theta;
  for (const auto& [a, b] : pairs) {
    size_t i = num_r_attrs_, j = num_p_attrs_;
    for (size_t k = 0; k < num_r_attrs_; ++k) {
      if (r_names_[k] == a) i = k;
    }
    for (size_t k = 0; k < num_p_attrs_; ++k) {
      if (p_names_[k] == b) j = k;
    }
    if (i == num_r_attrs_) {
      return util::Status::NotFound("no attribute named " + a + " in " +
                                    r_relation_);
    }
    if (j == num_p_attrs_) {
      return util::Status::NotFound("no attribute named " + b + " in " +
                                    p_relation_);
    }
    theta.Set(BitOf(i, j));
  }
  return theta;
}

std::vector<std::pair<size_t, size_t>> Omega::PairsOf(
    const JoinPredicate& theta) const {
  std::vector<std::pair<size_t, size_t>> out;
  theta.ForEachSetBit([&](size_t bit) { out.push_back(PairOf(bit)); });
  return out;
}

std::vector<rel::AttrPair> Omega::ToAttrPairs(
    const JoinPredicate& theta) const {
  std::vector<rel::AttrPair> out;
  theta.ForEachSetBit([&](size_t bit) { out.push_back(PairOf(bit)); });
  return out;
}

std::string Omega::Format(const JoinPredicate& theta) const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  theta.ForEachSetBit([&](size_t bit) {
    auto [i, j] = PairOf(bit);
    if (!first) os << ',';
    os << '(' << r_names_[i] << ',' << p_names_[j] << ')';
    first = false;
  });
  os << '}';
  return os.str();
}

}  // namespace core
}  // namespace jinfer
