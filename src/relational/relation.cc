#include "relational/relation.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace jinfer {
namespace rel {

util::Result<Relation> Relation::Make(std::string name,
                                      std::vector<std::string> attributes,
                                      std::vector<Row> rows) {
  JINFER_ASSIGN_OR_RETURN(Schema schema,
                          Schema::Make(std::move(name), std::move(attributes)));
  Relation r(std::move(schema));
  for (auto& row : rows) {
    JINFER_RETURN_NOT_OK(r.AppendRow(std::move(row)));
  }
  return r;
}

util::Status Relation::AppendRow(Row row) {
  if (row.size() != schema_.num_attributes()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "row arity %zu does not match schema arity %zu of %s", row.size(),
        schema_.num_attributes(), schema_.relation_name().c_str()));
  }
  rows_.push_back(std::move(row));
  return util::Status::OK();
}

std::string Relation::ToString(size_t max_rows) const {
  size_t limit = max_rows == 0 ? rows_.size() : std::min(max_rows,
                                                         rows_.size());
  size_t cols = schema_.num_attributes();

  std::vector<size_t> width(cols);
  for (size_t c = 0; c < cols; ++c) {
    width[c] = schema_.attribute_names()[c].size();
  }
  std::vector<std::vector<std::string>> cells(limit);
  for (size_t r = 0; r < limit; ++r) {
    cells[r].resize(cols);
    for (size_t c = 0; c < cols; ++c) {
      cells[r][c] = rows_[r][c].ToString();
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }

  std::ostringstream os;
  os << schema_.relation_name() << " (" << rows_.size() << " rows)\n";
  for (size_t c = 0; c < cols; ++c) {
    os << (c ? " | " : "  ")
       << util::PadRight(schema_.attribute_names()[c], width[c]);
  }
  os << '\n';
  for (size_t r = 0; r < limit; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      os << (c ? " | " : "  ") << util::PadRight(cells[r][c], width[c]);
    }
    os << '\n';
  }
  if (limit < rows_.size()) {
    os << "  ... (" << rows_.size() - limit << " more rows)\n";
  }
  return os.str();
}

}  // namespace rel
}  // namespace jinfer
