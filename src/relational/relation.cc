#include "relational/relation.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace jinfer {
namespace rel {

util::Result<Relation> Relation::Make(std::string name,
                                      std::vector<std::string> attributes,
                                      std::vector<Row> rows) {
  JINFER_ASSIGN_OR_RETURN(Schema schema,
                          Schema::Make(std::move(name), std::move(attributes)));
  Relation r(std::move(schema));
  for (auto& row : rows) {
    JINFER_RETURN_NOT_OK(r.AppendRow(std::move(row)));
  }
  return r;
}

util::Status Relation::AppendRowSpan(std::span<const Value> row) {
  if (row.size() != schema_.num_attributes()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "row arity %zu does not match schema arity %zu of %s", row.size(),
        schema_.num_attributes(), schema_.relation_name().c_str()));
  }
  for (const Value& v : row) table_.AppendValue(v);
  table_.FinishRow();
  return util::Status::OK();
}

Row Relation::row(size_t i) const {
  Row out;
  out.reserve(num_attributes());
  for (size_t c = 0; c < num_attributes(); ++c) {
    out.push_back(table_.ValueAt(i, c));
  }
  return out;
}

std::vector<Row> Relation::rows() const {
  std::vector<Row> out;
  out.reserve(num_rows());
  for (size_t i = 0; i < num_rows(); ++i) out.push_back(row(i));
  return out;
}

std::string Relation::ToString(size_t max_rows) const {
  size_t limit = max_rows == 0 ? num_rows() : std::min(max_rows, num_rows());
  size_t cols = schema_.num_attributes();

  std::vector<size_t> width(cols);
  for (size_t c = 0; c < cols; ++c) {
    width[c] = schema_.attribute_names()[c].size();
  }
  std::vector<std::vector<std::string>> cells(limit);
  for (size_t r = 0; r < limit; ++r) {
    cells[r].resize(cols);
    for (size_t c = 0; c < cols; ++c) {
      cells[r][c] = table_.ValueAt(r, c).ToString();
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }

  std::ostringstream os;
  os << schema_.relation_name() << " (" << num_rows() << " rows)\n";
  for (size_t c = 0; c < cols; ++c) {
    os << (c ? " | " : "  ")
       << util::PadRight(schema_.attribute_names()[c], width[c]);
  }
  os << '\n';
  for (size_t r = 0; r < limit; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      os << (c ? " | " : "  ") << util::PadRight(cells[r][c], width[c]);
    }
    os << '\n';
  }
  if (limit < num_rows()) {
    os << "  ... (" << num_rows() - limit << " more rows)\n";
  }
  return os.str();
}

}  // namespace rel
}  // namespace jinfer
