#include "relational/join.h"

#include <algorithm>
#include <unordered_map>

#include "util/string_util.h"

namespace jinfer {
namespace rel {

namespace {

/// Composite hash of the theta-projected key of a row; nullopt when any key
/// component is NULL (NULL never joins). Per-value hashes come precomputed
/// from the column dictionaries, so string keys are never rehashed per row.
///
/// Known, deliberately preserved seed quirk: doubles hash by bit pattern,
/// so a -0.0 key never probes +0.0's bucket and the hash join misses that
/// one IEEE-equal pair (EquijoinIndicesNaive, which compares cells
/// directly, finds it). Fixing the hash would break bit-identity with the
/// retained row-major reference, whose Value-keyed dictionaries bucket by
/// the same bit-pattern hash.
std::optional<size_t> KeyHash(const ColumnTable& t, size_t row,
                              const std::vector<size_t>& cols) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t c : cols) {
    uint32_t code = t.codes(c)[row];
    if (code == kNullCellCode) return std::nullopt;
    h = h * 0x100000001b3ULL ^ t.dictionary(c).value_hash(code);
  }
  return h;
}

bool KeysEqual(const ColumnTable& a, size_t arow,
               const std::vector<size_t>& acols, const ColumnTable& b,
               size_t brow, const std::vector<size_t>& bcols) {
  for (size_t k = 0; k < acols.size(); ++k) {
    if (a.cell(arow, acols[k]) != b.cell(brow, bcols[k])) return false;
  }
  return true;
}

}  // namespace

util::Status ValidateTheta(const Relation& r, const Relation& p,
                           const std::vector<AttrPair>& theta) {
  for (const auto& [i, j] : theta) {
    if (i >= r.num_attributes()) {
      return util::Status::OutOfRange(util::StrFormat(
          "theta references attribute %zu of %s (arity %zu)", i,
          r.schema().relation_name().c_str(), r.num_attributes()));
    }
    if (j >= p.num_attributes()) {
      return util::Status::OutOfRange(util::StrFormat(
          "theta references attribute %zu of %s (arity %zu)", j,
          p.schema().relation_name().c_str(), p.num_attributes()));
    }
  }
  return util::Status::OK();
}

util::Result<std::vector<std::pair<size_t, size_t>>> EquijoinIndices(
    const Relation& r, const Relation& p, const std::vector<AttrPair>& theta) {
  JINFER_RETURN_NOT_OK(ValidateTheta(r, p, theta));
  std::vector<std::pair<size_t, size_t>> out;

  if (theta.empty()) {
    out.reserve(r.num_rows() * p.num_rows());
    for (size_t i = 0; i < r.num_rows(); ++i) {
      for (size_t j = 0; j < p.num_rows(); ++j) out.emplace_back(i, j);
    }
    return out;
  }

  std::vector<size_t> rcols, pcols;
  for (const auto& [i, j] : theta) {
    rcols.push_back(i);
    pcols.push_back(j);
  }

  // Build side: hash P rows on the theta key.
  std::unordered_multimap<size_t, size_t> table;
  table.reserve(p.num_rows());
  for (size_t j = 0; j < p.num_rows(); ++j) {
    if (auto h = KeyHash(p.columns(), j, pcols)) table.emplace(*h, j);
  }

  for (size_t i = 0; i < r.num_rows(); ++i) {
    auto h = KeyHash(r.columns(), i, rcols);
    if (!h) continue;
    auto [begin, end] = table.equal_range(*h);
    for (auto it = begin; it != end; ++it) {
      if (KeysEqual(r.columns(), i, rcols, p.columns(), it->second, pcols)) {
        out.emplace_back(i, it->second);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

util::Result<std::vector<std::pair<size_t, size_t>>> EquijoinIndicesNaive(
    const Relation& r, const Relation& p, const std::vector<AttrPair>& theta) {
  JINFER_RETURN_NOT_OK(ValidateTheta(r, p, theta));
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    for (size_t j = 0; j < p.num_rows(); ++j) {
      bool all = true;
      for (const auto& [a, b] : theta) {
        if (r.cell(i, a) != p.cell(j, b)) {
          all = false;
          break;
        }
      }
      if (all) out.emplace_back(i, j);
    }
  }
  return out;
}

util::Result<std::vector<size_t>> SemijoinIndices(
    const Relation& r, const Relation& p, const std::vector<AttrPair>& theta) {
  JINFER_RETURN_NOT_OK(ValidateTheta(r, p, theta));
  std::vector<size_t> out;

  if (theta.empty()) {
    // R ⋉∅ P = R when P has a witness tuple, else ∅.
    if (p.num_rows() > 0) {
      out.resize(r.num_rows());
      for (size_t i = 0; i < r.num_rows(); ++i) out[i] = i;
    }
    return out;
  }

  std::vector<size_t> rcols, pcols;
  for (const auto& [i, j] : theta) {
    rcols.push_back(i);
    pcols.push_back(j);
  }
  std::unordered_multimap<size_t, size_t> table;
  table.reserve(p.num_rows());
  for (size_t j = 0; j < p.num_rows(); ++j) {
    if (auto h = KeyHash(p.columns(), j, pcols)) table.emplace(*h, j);
  }
  for (size_t i = 0; i < r.num_rows(); ++i) {
    auto h = KeyHash(r.columns(), i, rcols);
    if (!h) continue;
    auto [begin, end] = table.equal_range(*h);
    for (auto it = begin; it != end; ++it) {
      if (KeysEqual(r.columns(), i, rcols, p.columns(), it->second, pcols)) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

namespace {

util::Result<Schema> CombinedSchema(const Relation& r, const Relation& p,
                                    const std::string& name) {
  std::vector<std::string> attrs;
  for (const auto& a : r.schema().attribute_names()) {
    attrs.push_back(r.schema().relation_name() + "." + a);
  }
  for (const auto& b : p.schema().attribute_names()) {
    attrs.push_back(p.schema().relation_name() + "." + b);
  }
  return Schema::Make(name, std::move(attrs));
}

Row ConcatRows(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

util::Result<Relation> EquijoinRelation(const Relation& r, const Relation& p,
                                        const std::vector<AttrPair>& theta,
                                        const std::string& name) {
  JINFER_ASSIGN_OR_RETURN(Schema schema, CombinedSchema(r, p, name));
  JINFER_ASSIGN_OR_RETURN(auto idx, EquijoinIndices(r, p, theta));
  Relation out(std::move(schema));
  for (const auto& [i, j] : idx) {
    JINFER_RETURN_NOT_OK(out.AppendRow(ConcatRows(r.row(i), p.row(j))));
  }
  return out;
}

util::Result<Relation> CartesianProduct(const Relation& r, const Relation& p,
                                        const std::string& name) {
  return EquijoinRelation(r, p, {}, name);
}

}  // namespace rel
}  // namespace jinfer
