// CSV reader/writer for relations.
//
// Format: first line is the header (attribute names); fields are comma-
// separated; a field may be double-quoted, with "" as the embedded-quote
// escape. Unquoted empty fields parse as NULL. Type inference per field:
// integer, then double, then string (see Value::FromCsvField).

#ifndef JINFER_RELATIONAL_CSV_H_
#define JINFER_RELATIONAL_CSV_H_

#include <iosfwd>
#include <string>

#include "relational/relation.h"
#include "util/result.h"

namespace jinfer {
namespace rel {

/// Parses a relation named `relation_name` from CSV text.
util::Result<Relation> ReadRelationCsvText(const std::string& text,
                                           const std::string& relation_name);

/// Reads a relation from a CSV file.
util::Result<Relation> ReadRelationCsvFile(const std::string& path,
                                           const std::string& relation_name);

/// Serializes a relation to CSV (header + rows). String fields containing
/// commas, quotes, or newlines are quoted.
std::string WriteRelationCsv(const Relation& relation);

}  // namespace rel
}  // namespace jinfer

#endif  // JINFER_RELATIONAL_CSV_H_
