// Schema: an ordered list of attribute names belonging to a named relation.
//
// The paper assumes attrs(R) and attrs(P) are disjoint; that property is
// enforced at the core::Omega level (which qualifies attributes with the
// relation name), not here.

#ifndef JINFER_RELATIONAL_SCHEMA_H_
#define JINFER_RELATIONAL_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace jinfer {
namespace rel {

class Schema {
 public:
  Schema() = default;

  /// Builds a schema. Fails on an empty relation name, empty attribute list,
  /// or duplicate attribute names.
  static util::Result<Schema> Make(std::string relation_name,
                                   std::vector<std::string> attribute_names);

  const std::string& relation_name() const { return relation_name_; }
  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }
  size_t num_attributes() const { return attribute_names_.size(); }

  /// Index of the attribute with the given name, if present.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// "Relation(A1, A2, ...)".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.relation_name_ == b.relation_name_ &&
           a.attribute_names_ == b.attribute_names_;
  }

 private:
  std::string relation_name_;
  std::vector<std::string> attribute_names_;
};

}  // namespace rel
}  // namespace jinfer

#endif  // JINFER_RELATIONAL_SCHEMA_H_
