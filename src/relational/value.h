// Value: the dynamically-typed cell of a relation, plus the shared value
// semantics (type tags, hash primitives, the NULL rule) that the columnar
// storage layer and the store fingerprint build on.
//
// Equality is what the whole paper runs on (equijoin predicates are
// conjunctions of equalities between attributes), so the semantics here are
// load-bearing:
//   * values of different runtime types are never equal (1 != "1", 1 != 1.0);
//   * Null follows SQL: Null == Null is FALSE. The appendix A.1 reduction
//     depends on its bottom values not matching anything, including each
//     other.
//
// The NULL rule in one place (shared by Value, CellView, the ColumnTable
// dictionaries and store::Fingerprint): all NULLs hash alike — HashNull()
// below is the single definition — but no NULL ever compares equal, not
// even to itself. Hashing may bucket every bottom value together; equality
// must still keep them apart, which is why the columnar dictionaries track
// NULLs in a bitmap instead of interning them (an interned NULL would make
// two bottom values share a code, i.e. compare equal downstream).

#ifndef JINFER_RELATIONAL_VALUE_H_
#define JINFER_RELATIONAL_VALUE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <variant>

namespace jinfer {
namespace rel {

/// Runtime type of a cell. The enumerator values double as the domain-
/// separation tags store::Fingerprint absorbs in front of each payload, so
/// they are part of the persistent instance identity (content-addressed
/// .jidx files ride on it): never renumber without a fingerprint migration
/// (DESIGN.md §9).
enum class ValueType : uint8_t {
  kNull = 0x4e,    // 'N'
  kInt = 0x49,     // 'I'
  kDouble = 0x44,  // 'D'
  kString = 0x53,  // 'S'
};

/// Classification of one unquoted CSV field under the inference rule
/// "" -> NULL, integer literal -> int, floating literal -> double,
/// anything else -> string. Shared by Value::FromCsvField and the
/// streaming CSV reader, so the rule exists exactly once.
struct CsvScalar {
  ValueType type = ValueType::kNull;
  int64_t int_value = 0;     ///< Payload when type == kInt.
  double double_value = 0;   ///< Payload when type == kDouble.
};                           ///< kString: use the field bytes themselves.
CsvScalar ClassifyCsvField(std::string_view field);

/// Hash primitives consistent with value equality, one per runtime type.
/// Every hash in the relational layer (Value::Hash, CellView::Hash, the
/// ColumnTable dictionary lookup, the join hash tables) goes through these,
/// so a value hashes identically no matter which representation holds it.
uint64_t HashNull();
uint64_t HashInt(int64_t v);
uint64_t HashDouble(double v);
uint64_t HashString(std::string_view s);

/// SQL-style NULL marker (the appendix's bottom value).
struct Null {
  friend bool operator==(const Null&, const Null&) { return false; }
};

class Value {
 public:
  /// Constructs a NULL value.
  Value() : repr_(Null{}) {}
  Value(Null) : repr_(Null{}) {}                     // NOLINT
  Value(int64_t v) : repr_(v) {}                     // NOLINT
  Value(int v) : repr_(static_cast<int64_t>(v)) {}   // NOLINT
  Value(double v) : repr_(v) {}                      // NOLINT
  Value(std::string v) : repr_(std::move(v)) {}      // NOLINT
  Value(const char* v) : repr_(std::string(v)) {}    // NOLINT

  bool is_null() const { return std::holds_alternative<Null>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  ValueType type() const {
    if (is_null()) return ValueType::kNull;
    if (is_int()) return ValueType::kInt;
    if (is_double()) return ValueType::kDouble;
    return ValueType::kString;
  }

  /// Accessors; calling the wrong one throws std::bad_variant_access.
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Join-equality: same type and same payload; anything involving NULL is
  /// not equal (including NULL vs NULL).
  friend bool operator==(const Value& a, const Value& b) {
    if (a.is_null() || b.is_null()) return false;
    return a.repr_ == b.repr_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Hash consistent with operator== for non-null values. All NULLs hash
  /// alike (they land in one bucket but never compare equal; dictionary
  /// encoding handles them specially).
  size_t Hash() const;

  /// Renders the value for display and CSV output. NULL renders as "".
  std::string ToString() const;

  /// Parses a CSV field: "" -> NULL, integer literal -> int, floating
  /// literal -> double, anything else -> string.
  static Value FromCsvField(std::string_view field);

 private:
  std::variant<Null, int64_t, double, std::string> repr_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// A non-owning decoded cell: what the columnar layer hands out in place of
/// a heap-backed Value on read paths. `num` holds the integer payload or
/// the bit pattern of a double; `str` points into a dictionary's string
/// arena (valid while the owning ColumnTable lives). Equality and hashing
/// follow Value exactly, including the NULL rule above.
struct CellView {
  ValueType type = ValueType::kNull;
  int64_t num = 0;
  std::string_view str;

  bool is_null() const { return type == ValueType::kNull; }
  int64_t AsInt() const { return num; }
  double AsDouble() const {
    double d;
    std::memcpy(&d, &num, sizeof(d));
    return d;
  }
  std::string_view AsString() const { return str; }

  uint64_t Hash() const;
  Value ToValue() const;

  /// Views `v`'s payload; `v` must outlive the view (string payloads alias).
  static CellView Of(const Value& v);

  friend bool operator==(const CellView& a, const CellView& b) {
    if (a.is_null() || b.is_null() || a.type != b.type) return false;
    if (a.type == ValueType::kString) return a.str == b.str;
    if (a.type == ValueType::kDouble) return a.AsDouble() == b.AsDouble();
    return a.num == b.num;
  }
  friend bool operator!=(const CellView& a, const CellView& b) {
    return !(a == b);
  }
};

}  // namespace rel
}  // namespace jinfer

#endif  // JINFER_RELATIONAL_VALUE_H_
