// Value: the dynamically-typed cell of a relation.
//
// Equality is what the whole paper runs on (equijoin predicates are
// conjunctions of equalities between attributes), so the semantics here are
// load-bearing:
//   * values of different runtime types are never equal (1 != "1", 1 != 1.0);
//   * Null follows SQL: Null == Null is FALSE. The appendix A.1 reduction
//     depends on its bottom values not matching anything, including each
//     other.

#ifndef JINFER_RELATIONAL_VALUE_H_
#define JINFER_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace jinfer {
namespace rel {

/// SQL-style NULL marker (the appendix's bottom value).
struct Null {
  friend bool operator==(const Null&, const Null&) { return false; }
};

class Value {
 public:
  /// Constructs a NULL value.
  Value() : repr_(Null{}) {}
  Value(Null) : repr_(Null{}) {}                     // NOLINT
  Value(int64_t v) : repr_(v) {}                     // NOLINT
  Value(int v) : repr_(static_cast<int64_t>(v)) {}   // NOLINT
  Value(double v) : repr_(v) {}                      // NOLINT
  Value(std::string v) : repr_(std::move(v)) {}      // NOLINT
  Value(const char* v) : repr_(std::string(v)) {}    // NOLINT

  bool is_null() const { return std::holds_alternative<Null>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  /// Accessors; calling the wrong one throws std::bad_variant_access.
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Join-equality: same type and same payload; anything involving NULL is
  /// not equal (including NULL vs NULL).
  friend bool operator==(const Value& a, const Value& b) {
    if (a.is_null() || b.is_null()) return false;
    return a.repr_ == b.repr_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Hash consistent with operator== for non-null values. All NULLs hash
  /// alike (they land in one bucket but never compare equal; dictionary
  /// encoding handles them specially).
  size_t Hash() const;

  /// Renders the value for display and CSV output. NULL renders as "".
  std::string ToString() const;

  /// Parses a CSV field: "" -> NULL, integer literal -> int, floating
  /// literal -> double, anything else -> string.
  static Value FromCsvField(std::string_view field);

 private:
  std::variant<Null, int64_t, double, std::string> repr_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace rel
}  // namespace jinfer

#endif  // JINFER_RELATIONAL_VALUE_H_
