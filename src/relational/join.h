// Relational-algebra evaluation for the operators the paper uses:
// equijoin R ⋈θ P, semijoin R ⋉θ P, and the Cartesian product R × P.
//
// θ is a set of attribute-index pairs (i, j) meaning R[Ai] = P[Bj]. The
// empty θ makes the equijoin degenerate to the Cartesian product and the
// semijoin to "R if P is non-empty" — exactly the paper's semantics.
//
// Two implementations are provided: a hash join (default) and a nested-loop
// join (reference; used by tests to cross-validate the hash path).

#ifndef JINFER_RELATIONAL_JOIN_H_
#define JINFER_RELATIONAL_JOIN_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "relational/relation.h"
#include "util/result.h"

namespace jinfer {
namespace rel {

/// One equality atom (R-attribute index, P-attribute index).
using AttrPair = std::pair<size_t, size_t>;

/// Validates that every atom of theta indexes into the two schemas.
util::Status ValidateTheta(const Relation& r, const Relation& p,
                           const std::vector<AttrPair>& theta);

/// Row-index pairs (i, j) with r.row(i) joining p.row(j) under theta.
/// Output is sorted lexicographically. NULLs never match (SQL semantics).
util::Result<std::vector<std::pair<size_t, size_t>>> EquijoinIndices(
    const Relation& r, const Relation& p, const std::vector<AttrPair>& theta);

/// Reference nested-loop implementation of EquijoinIndices.
util::Result<std::vector<std::pair<size_t, size_t>>> EquijoinIndicesNaive(
    const Relation& r, const Relation& p, const std::vector<AttrPair>& theta);

/// Indices of R-rows with at least one join partner in P (sorted, unique):
/// the semijoin R ⋉θ P.
util::Result<std::vector<size_t>> SemijoinIndices(
    const Relation& r, const Relation& p, const std::vector<AttrPair>& theta);

/// Materializes R ⋈θ P with schema name `name` and attributes qualified as
/// "R.A" / "P.B" to keep them unique.
util::Result<Relation> EquijoinRelation(const Relation& r, const Relation& p,
                                        const std::vector<AttrPair>& theta,
                                        const std::string& name);

/// Materializes the full Cartesian product R × P.
util::Result<Relation> CartesianProduct(const Relation& r, const Relation& p,
                                        const std::string& name);

}  // namespace rel
}  // namespace jinfer

#endif  // JINFER_RELATIONAL_JOIN_H_
