// Relation: a schema plus columnar, dictionary-encoded storage (ColumnTable).
//
// The inference core never scans Relations directly on the hot path; it
// re-encodes the column dictionaries once into a core::SignatureIndex.
// Relation is the user-facing, CSV-loadable representation — since the
// columnar refactor (DESIGN.md §9) it is a thin row-view facade over a
// ColumnTable: `at`/`row`/`rows` decode on demand for reports and tests,
// while scan-heavy consumers (the index build, the store fingerprint, the
// join helpers) read the codes, dictionaries and null bitmaps directly via
// `columns()`.

#ifndef JINFER_RELATIONAL_RELATION_H_
#define JINFER_RELATIONAL_RELATION_H_

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "relational/column_table.h"
#include "relational/schema.h"
#include "relational/value.h"
#include "util/result.h"

namespace jinfer {
namespace rel {

using Row = std::vector<Value>;

class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema)
      : schema_(std::move(schema)), table_(schema_.num_attributes()) {}

  /// Convenience builder for tests and examples:
  ///   Relation::Make("R", {"A1","A2"}, {{0,1},{0,2}});
  /// Fails on schema errors or arity mismatches.
  static util::Result<Relation> Make(
      std::string name, std::vector<std::string> attributes,
      std::vector<Row> rows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return table_.num_rows(); }
  size_t num_attributes() const { return schema_.num_attributes(); }

  /// The columnar storage: per-column code vectors, dictionaries and null
  /// bitmaps. The read surface for every scan-heavy consumer.
  const ColumnTable& columns() const { return table_; }
  /// Streaming-ingest access (CSV reader, workload generators). Producers
  /// must keep the table aligned with the schema arity; the cursor-based
  /// Append*/FinishRow protocol fails loudly if they don't.
  ColumnTable& mutable_columns() { return table_; }

  /// Decoded cell (owning; allocates for strings — report/test paths).
  Value at(size_t row, size_t col) const { return table_.ValueAt(row, col); }
  /// Decoded cell view (non-owning; the cheap read for scans).
  CellView cell(size_t row, size_t col) const { return table_.cell(row, col); }

  /// Materializes row `i`. A decode, not a reference into storage — row-
  /// compatibility facade for reports and row-major consumers.
  Row row(size_t i) const;
  /// Materializes every row (test/compat facade; O(cells) allocation —
  /// production scans use columns() instead).
  std::vector<Row> rows() const;

  /// Appends a row; fails if the arity does not match the schema.
  util::Status AppendRow(Row row) { return AppendRowSpan(row); }
  util::Status AppendRow(std::initializer_list<Value> row) {
    return AppendRowSpan(std::span<const Value>(row.begin(), row.size()));
  }

  /// Pretty-prints the relation as an aligned text table (first `max_rows`
  /// rows; 0 means all).
  std::string ToString(size_t max_rows = 0) const;

 private:
  util::Status AppendRowSpan(std::span<const Value> row);

  Schema schema_;
  ColumnTable table_;
};

}  // namespace rel
}  // namespace jinfer

#endif  // JINFER_RELATIONAL_RELATION_H_
