// Relation: a schema plus a bag of rows (row-major storage).
//
// The inference core never scans Relations directly on the hot path; it
// dictionary-encodes them once into a core::SignatureIndex. Relation is the
// user-facing, CSV-loadable representation.

#ifndef JINFER_RELATIONAL_RELATION_H_
#define JINFER_RELATIONAL_RELATION_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"
#include "util/result.h"

namespace jinfer {
namespace rel {

using Row = std::vector<Value>;

class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  /// Convenience builder for tests and examples:
  ///   Relation::Make("R", {"A1","A2"}, {{0,1},{0,2}});
  /// Fails on schema errors or arity mismatches.
  static util::Result<Relation> Make(
      std::string name, std::vector<std::string> attributes,
      std::vector<Row> rows);

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_attributes() const { return schema_.num_attributes(); }

  const Row& row(size_t i) const { return rows_[i]; }
  const Value& at(size_t row, size_t col) const { return rows_[row][col]; }

  /// Appends a row; fails if the arity does not match the schema.
  util::Status AppendRow(Row row);

  /// Pretty-prints the relation as an aligned text table (first `max_rows`
  /// rows; 0 means all).
  std::string ToString(size_t max_rows = 0) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace rel
}  // namespace jinfer

#endif  // JINFER_RELATIONAL_RELATION_H_
