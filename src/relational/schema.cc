#include "relational/schema.h"

#include <unordered_set>

#include "util/string_util.h"

namespace jinfer {
namespace rel {

util::Result<Schema> Schema::Make(std::string relation_name,
                                  std::vector<std::string> attribute_names) {
  if (relation_name.empty()) {
    return util::Status::InvalidArgument("relation name must be non-empty");
  }
  if (attribute_names.empty()) {
    return util::Status::InvalidArgument(
        "schema must have at least one attribute");
  }
  std::unordered_set<std::string> seen;
  for (const auto& name : attribute_names) {
    if (name.empty()) {
      return util::Status::InvalidArgument("attribute name must be non-empty");
    }
    if (!seen.insert(name).second) {
      return util::Status::InvalidArgument("duplicate attribute name: " +
                                           name);
    }
  }
  Schema s;
  s.relation_name_ = std::move(relation_name);
  s.attribute_names_ = std::move(attribute_names);
  return s;
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attribute_names_.size(); ++i) {
    if (attribute_names_[i] == name) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  return relation_name_ + "(" + util::Join(attribute_names_, ", ") + ")";
}

}  // namespace rel
}  // namespace jinfer
