// ColumnTable: columnar, dictionary-encoded storage for relations — the
// substrate every layer above src/relational/ ultimately consumes.
//
// Layout per column (DESIGN.md §9):
//   * a uint32_t code vector, one local dictionary code per row (NULL cells
//     hold kNullCellCode so a stale read can never alias a real entry);
//   * a ColumnDictionary interning each distinct non-null value once, with
//     string payloads in one flat arena per dictionary (no per-cell
//     std::string, no pointer chasing on scans);
//   * a null bitmap (bit i set = row i is NULL in this column). NULLs are
//     deliberately *not* interned: per the bottom-value rule in value.h two
//     NULLs must never compare equal, so they carry no dictionary entry.
//     Scan-order consumers (the SignatureIndex encode, the join keys) spot
//     NULL cells by the kNullCellCode sentinel inline in the code stream;
//     the bitmap is the word-at-a-time surface — random-access IsNull,
//     has-any-nulls skips, and future vectorized sweeps.
//
// Ingest is streaming and cursor-based: a producer appends the cells of one
// row left to right (AppendInt/AppendString/AppendNull/..., or AppendCode
// against a pre-seeded dictionary) and seals it with FinishRow(); a row is
// visible only once finished, and a half-appended row fails loudly. The CSV
// reader and the workload generators write straight into this interface —
// no intermediate Row vector, no per-cell Value temporaries.
//
// Dictionary interning details: ints by value, strings by bytes, doubles by
// bit pattern — which keeps +0.0 and -0.0 distinct, as the row-major
// reference's bit-pattern hashing already did in practice. NaN doubles are
// never interned at all: NaN equals nothing, so every NaN cell gets a fresh
// code per occurrence (like a bottom value with a payload), reproducing the
// reference dictionary bit-for-bit. CellView equality (read path) follows
// rel::Value exactly, IEEE semantics included.

#ifndef JINFER_RELATIONAL_COLUMN_TABLE_H_
#define JINFER_RELATIONAL_COLUMN_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relational/value.h"
#include "util/check.h"

namespace jinfer {
namespace rel {

/// Code stored in a column's code vector at NULL cells. Never a valid
/// dictionary code: interning checks against the ceiling long before.
inline constexpr uint32_t kNullCellCode = 0xFFFFFFFFu;

/// Interns the distinct non-null values of one column (or, for the
/// SignatureIndex encode, of a whole instance). Codes are dense and
/// assigned in first-intern order; string payloads live in one flat arena.
class ColumnDictionary {
 public:
  uint32_t EncodeInt(int64_t v) { return Intern(ValueType::kInt, v, {}); }
  uint32_t EncodeDouble(double v);
  uint32_t EncodeString(std::string_view s) {
    return Intern(ValueType::kString, 0, s);
  }
  /// Dispatches on the runtime type; `v` must not be NULL.
  uint32_t EncodeValue(const Value& v);
  /// Interns the viewed value; `v` must not be NULL.
  uint32_t EncodeView(const CellView& v);

  /// Pre-seeds an empty dictionary with the dense integer domain
  /// {0, ..., n-1}, making code == value — generators then emit codes
  /// straight into the column via ColumnTable::AppendCode with no hashing.
  void SeedDenseIntDomain(int64_t n);

  size_t size() const { return types_.size(); }
  ValueType type(uint32_t code) const { return types_[code]; }

  /// Decoded non-owning view of an entry (string payloads alias the arena,
  /// valid while the dictionary lives and is not appended to).
  CellView view(uint32_t code) const;
  Value ToValue(uint32_t code) const { return view(code).ToValue(); }

  /// Hash of the entry's value, consistent with rel::Value::Hash. Cached at
  /// intern time, so per-row consumers (join keys, the global merge) never
  /// rehash string payloads.
  uint64_t value_hash(uint32_t code) const { return hashes_[code]; }

 private:
  /// num carries the int payload or the double bit pattern; str the string
  /// payload. Returns the existing code for an already-interned value —
  /// except NaN doubles, which are appended fresh per occurrence (NaN
  /// equals nothing, so no two NaN cells may share a code; matches the
  /// row-major reference dictionary bit-for-bit).
  uint32_t Intern(ValueType type, int64_t num, std::string_view str);
  /// Unconditionally appends an entry (the shared tail of Intern).
  uint32_t AppendEntry(ValueType type, int64_t num, std::string_view str,
                       uint64_t hash);
  bool EntryEquals(uint32_t code, ValueType type, int64_t num,
                   std::string_view str) const;

  std::vector<ValueType> types_;
  std::vector<int64_t> nums_;     // int payload / double bits / arena offset
  std::vector<uint32_t> lens_;    // string byte length (0 for non-strings)
  std::vector<uint64_t> hashes_;  // value_hash(), cached
  std::string arena_;             // flat string payload storage

  // Lookup: value hash -> code, with genuine 64-bit collisions spilling to
  // a linear-scanned overflow list (payloads are always verified, so two
  // distinct values never share a code).
  std::unordered_map<uint64_t, uint32_t> by_hash_;
  std::vector<uint32_t> overflow_;
};

class ColumnTable {
 public:
  ColumnTable() = default;
  explicit ColumnTable(size_t num_columns) : columns_(num_columns) {}

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  // --- Streaming ingest -------------------------------------------------
  // Each Append* encodes the cell at the cursor column of the in-progress
  // row and advances the cursor; FinishRow checks every column got exactly
  // one cell and publishes the row.

  void AppendNull();
  void AppendInt(int64_t v) { AppendEncoded(Cur().dict.EncodeInt(v)); }
  void AppendDouble(double v) { AppendEncoded(Cur().dict.EncodeDouble(v)); }
  void AppendString(std::string_view s) {
    AppendEncoded(Cur().dict.EncodeString(s));
  }
  /// Dispatches on the runtime type (NULL included).
  void AppendValue(const Value& v);
  /// Fast path against a pre-seeded dictionary (SeedDenseIntDomain):
  /// appends an existing dictionary code without touching the value layer.
  void AppendCode(uint32_t code) {
    JINFER_CHECK(code < Cur().dict.size(),
                 "AppendCode(%u) outside dictionary of %zu entries", code,
                 Cur().dict.size());
    AppendEncoded(code);
  }
  void FinishRow() {
    JINFER_CHECK(cursor_ == columns_.size(),
                 "FinishRow after %zu of %zu cells", cursor_, columns_.size());
    cursor_ = 0;
    ++num_rows_;
  }
  /// Column the next Append* lands in (error reporting in parsers).
  size_t cursor() const { return cursor_; }

  // --- Reads ------------------------------------------------------------

  bool IsNull(size_t row, size_t col) const {
    const Column& c = columns_[col];
    return (c.null_words[row >> 6] >> (row & 63)) & 1;
  }
  /// Decoded non-owning view of a cell.
  CellView cell(size_t row, size_t col) const {
    const Column& c = columns_[col];
    uint32_t code = c.codes[row];
    if (code == kNullCellCode) return CellView{};
    return c.dict.view(code);
  }
  /// Owning decode (display paths; allocates for strings).
  Value ValueAt(size_t row, size_t col) const { return cell(row, col).ToValue(); }

  ColumnDictionary& dictionary(size_t col) { return columns_[col].dict; }
  const ColumnDictionary& dictionary(size_t col) const {
    return columns_[col].dict;
  }
  /// Local dictionary codes of a column, one per row (kNullCellCode at
  /// NULL cells).
  std::span<const uint32_t> codes(size_t col) const {
    return columns_[col].codes;
  }
  /// Null bitmap words of a column ((num_rows + 63) / 64 words).
  std::span<const uint64_t> null_words(size_t col) const {
    return columns_[col].null_words;
  }
  bool column_has_nulls(size_t col) const {
    return columns_[col].null_count > 0;
  }

 private:
  struct Column {
    ColumnDictionary dict;
    std::vector<uint32_t> codes;
    std::vector<uint64_t> null_words;
    uint64_t null_count = 0;
  };

  Column& Cur() {
    JINFER_CHECK(cursor_ < columns_.size(), "cell append beyond arity %zu",
                 columns_.size());
    return columns_[cursor_];
  }
  void AppendEncoded(uint32_t code) {
    Column& c = columns_[cursor_];
    if ((num_rows_ & 63) == 0) c.null_words.push_back(0);
    c.codes.push_back(code);
    ++cursor_;
  }

  std::vector<Column> columns_;
  size_t num_rows_ = 0;
  size_t cursor_ = 0;
};

}  // namespace rel
}  // namespace jinfer

#endif  // JINFER_RELATIONAL_COLUMN_TABLE_H_
