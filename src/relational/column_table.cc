#include "relational/column_table.h"

#include <cmath>
#include <cstring>
#include <limits>

namespace jinfer {
namespace rel {

uint32_t ColumnDictionary::EncodeDouble(double v) {
  int64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return Intern(ValueType::kDouble, bits, {});
}

uint32_t ColumnDictionary::EncodeValue(const Value& v) {
  JINFER_CHECK(!v.is_null(), "NULL has no dictionary entry");
  return EncodeView(CellView::Of(v));
}

uint32_t ColumnDictionary::EncodeView(const CellView& v) {
  switch (v.type) {
    case ValueType::kInt:
      return EncodeInt(v.num);
    case ValueType::kDouble:
      return Intern(ValueType::kDouble, v.num, {});
    case ValueType::kString:
      return EncodeString(v.str);
    case ValueType::kNull:
      break;
  }
  JINFER_CHECK(false, "NULL has no dictionary entry");
  return kNullCellCode;
}

void ColumnDictionary::SeedDenseIntDomain(int64_t n) {
  JINFER_CHECK(size() == 0, "dense seed over a non-empty dictionary");
  JINFER_CHECK(n > 0 && static_cast<uint64_t>(n) < kNullCellCode,
               "dense domain size %lld out of range", static_cast<long long>(n));
  for (int64_t v = 0; v < n; ++v) EncodeInt(v);
}

CellView ColumnDictionary::view(uint32_t code) const {
  CellView out;
  out.type = types_[code];
  if (out.type == ValueType::kString) {
    out.str = std::string_view(arena_.data() + nums_[code], lens_[code]);
  } else {
    out.num = nums_[code];
  }
  return out;
}

bool ColumnDictionary::EntryEquals(uint32_t code, ValueType type, int64_t num,
                                   std::string_view str) const {
  if (types_[code] != type) return false;
  if (type == ValueType::kString) {
    if (lens_[code] != str.size()) return false;
    return str.empty() ||
           std::memcmp(arena_.data() + nums_[code], str.data(), str.size()) ==
               0;
  }
  return nums_[code] == num;  // Ints by value, doubles by bit pattern.
}

uint32_t ColumnDictionary::Intern(ValueType type, int64_t num,
                                  std::string_view str) {
  uint64_t h;
  switch (type) {
    case ValueType::kInt:
      h = HashInt(num);
      break;
    case ValueType::kDouble: {
      double d;
      std::memcpy(&d, &num, sizeof(d));
      h = HashDouble(d);
      if (std::isnan(d)) {
        // NaN never compares equal, so interning it would make two NaN
        // cells share a code — i.e. join each other downstream. The
        // row-major reference dictionary (whose Value(NaN) key equals no
        // stored key) gave every NaN cell a fresh code; reproduce that by
        // appending per occurrence, bypassing the lookup entirely.
        return AppendEntry(type, num, str, h);
      }
      break;
    }
    default:
      h = HashString(str);
      break;
  }

  auto [it, inserted] =
      by_hash_.try_emplace(h, static_cast<uint32_t>(types_.size()));
  if (!inserted) {
    if (EntryEquals(it->second, type, num, str)) return it->second;
    // 64-bit hash collision between distinct values: the primary slot is
    // taken, so this (and any further) same-hash value lives in the
    // overflow list. Astronomically rare; correctness must not depend on
    // it being impossible.
    for (uint32_t code : overflow_) {
      if (hashes_[code] == h && EntryEquals(code, type, num, str)) {
        return code;
      }
    }
    overflow_.push_back(static_cast<uint32_t>(types_.size()));
  }
  return AppendEntry(type, num, str, h);
}

uint32_t ColumnDictionary::AppendEntry(ValueType type, int64_t num,
                                       std::string_view str, uint64_t hash) {
  const uint32_t code = static_cast<uint32_t>(types_.size());
  JINFER_CHECK(code < kNullCellCode, "dictionary code space exhausted");
  types_.push_back(type);
  if (type == ValueType::kString) {
    nums_.push_back(static_cast<int64_t>(arena_.size()));
    lens_.push_back(static_cast<uint32_t>(str.size()));
    if (!str.empty()) arena_.append(str.data(), str.size());
  } else {
    nums_.push_back(num);
    lens_.push_back(0);
  }
  hashes_.push_back(hash);
  return code;
}

void ColumnTable::AppendNull() {
  Column& c = Cur();
  if ((num_rows_ & 63) == 0) c.null_words.push_back(0);
  c.null_words[num_rows_ >> 6] |= uint64_t{1} << (num_rows_ & 63);
  c.codes.push_back(kNullCellCode);
  ++c.null_count;
  ++cursor_;
}

void ColumnTable::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  AppendEncoded(Cur().dict.EncodeValue(v));
}

}  // namespace rel
}  // namespace jinfer
