#include "relational/value.h"

#include <charconv>
#include <cstdio>

namespace jinfer {
namespace rel {

namespace {

uint64_t Mix(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

size_t Value::Hash() const {
  struct Visitor {
    size_t operator()(const Null&) const { return Mix(0x6e756c6cULL); }
    size_t operator()(int64_t v) const {
      return Mix(0x696e74ULL ^ static_cast<uint64_t>(v));
    }
    size_t operator()(double v) const {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      __builtin_memcpy(&bits, &v, sizeof(bits));
      return Mix(0x646f75ULL ^ bits);
    }
    size_t operator()(const std::string& s) const {
      uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
      for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
      }
      return Mix(0x737472ULL ^ h);
    }
  };
  return std::visit(Visitor{}, repr_);
}

std::string Value::ToString() const {
  struct Visitor {
    std::string operator()(const Null&) const { return ""; }
    std::string operator()(int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      return buf;
    }
    std::string operator()(const std::string& s) const { return s; }
  };
  return std::visit(Visitor{}, repr_);
}

Value Value::FromCsvField(std::string_view field) {
  if (field.empty()) return Value();
  const char* begin = field.data();
  const char* end = begin + field.size();

  int64_t ival = 0;
  auto [iptr, ierr] = std::from_chars(begin, end, ival);
  if (ierr == std::errc() && iptr == end) return Value(ival);

  double dval = 0;
  auto [dptr, derr] = std::from_chars(begin, end, dval);
  if (derr == std::errc() && dptr == end) return Value(dval);

  return Value(std::string(field));
}

}  // namespace rel
}  // namespace jinfer
