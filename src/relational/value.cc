#include "relational/value.h"

#include <charconv>
#include <cstdio>

namespace jinfer {
namespace rel {

namespace {

uint64_t Mix(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t HashNull() { return Mix(0x6e756c6cULL); }

uint64_t HashInt(int64_t v) {
  return Mix(0x696e74ULL ^ static_cast<uint64_t>(v));
}

uint64_t HashDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return Mix(0x646f75ULL ^ bits);
}

uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return Mix(0x737472ULL ^ h);
}

size_t Value::Hash() const {
  struct Visitor {
    size_t operator()(const Null&) const { return HashNull(); }
    size_t operator()(int64_t v) const { return HashInt(v); }
    size_t operator()(double v) const { return HashDouble(v); }
    size_t operator()(const std::string& s) const { return HashString(s); }
  };
  return std::visit(Visitor{}, repr_);
}

std::string Value::ToString() const {
  struct Visitor {
    std::string operator()(const Null&) const { return ""; }
    std::string operator()(int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      return buf;
    }
    std::string operator()(const std::string& s) const { return s; }
  };
  return std::visit(Visitor{}, repr_);
}

CsvScalar ClassifyCsvField(std::string_view field) {
  CsvScalar out;
  if (field.empty()) return out;  // kNull
  const char* begin = field.data();
  const char* end = begin + field.size();

  auto [iptr, ierr] = std::from_chars(begin, end, out.int_value);
  if (ierr == std::errc() && iptr == end) {
    out.type = ValueType::kInt;
    return out;
  }
  auto [dptr, derr] = std::from_chars(begin, end, out.double_value);
  if (derr == std::errc() && dptr == end) {
    out.type = ValueType::kDouble;
    return out;
  }
  out.type = ValueType::kString;
  return out;
}

Value Value::FromCsvField(std::string_view field) {
  CsvScalar scalar = ClassifyCsvField(field);
  switch (scalar.type) {
    case ValueType::kNull:
      return Value();
    case ValueType::kInt:
      return Value(scalar.int_value);
    case ValueType::kDouble:
      return Value(scalar.double_value);
    case ValueType::kString:
      break;
  }
  return Value(std::string(field));
}

uint64_t CellView::Hash() const {
  switch (type) {
    case ValueType::kNull:
      return HashNull();
    case ValueType::kInt:
      return HashInt(num);
    case ValueType::kDouble:
      return HashDouble(AsDouble());
    case ValueType::kString:
      return HashString(str);
  }
  return HashNull();
}

Value CellView::ToValue() const {
  switch (type) {
    case ValueType::kNull:
      return Value();
    case ValueType::kInt:
      return Value(num);
    case ValueType::kDouble:
      return Value(AsDouble());
    case ValueType::kString:
      return Value(std::string(str));
  }
  return Value();
}

CellView CellView::Of(const Value& v) {
  CellView out;
  out.type = v.type();
  switch (out.type) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      out.num = v.AsInt();
      break;
    case ValueType::kDouble: {
      double d = v.AsDouble();
      __builtin_memcpy(&out.num, &d, sizeof(out.num));
      break;
    }
    case ValueType::kString:
      out.str = v.AsString();
      break;
  }
  return out;
}

}  // namespace rel
}  // namespace jinfer
