#include "relational/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace jinfer {
namespace rel {

namespace {

/// Splits one CSV record into fields, honoring double-quote quoting.
/// `quoted[i]` records whether field i was quoted (a quoted empty field is
/// the empty string, not NULL).
util::Status SplitCsvRecord(const std::string& line,
                            std::vector<std::string>* fields,
                            std::vector<bool>* quoted) {
  fields->clear();
  quoted->clear();
  std::string cur;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"' && cur.empty()) {
      in_quotes = true;
      was_quoted = true;
    } else if (c == ',') {
      fields->push_back(std::move(cur));
      quoted->push_back(was_quoted);
      cur.clear();
      was_quoted = false;
    } else {
      cur += c;
    }
  }
  if (in_quotes) {
    return util::Status::ParseError("unterminated quote in CSV record: " +
                                    line);
  }
  fields->push_back(std::move(cur));
  quoted->push_back(was_quoted);
  return util::Status::OK();
}

std::string EscapeCsvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

util::Result<Relation> ReadRelationCsvText(const std::string& text,
                                           const std::string& relation_name) {
  std::istringstream is(text);
  std::string line;

  if (!std::getline(is, line)) {
    return util::Status::ParseError("empty CSV input for relation " +
                                    relation_name);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();

  std::vector<std::string> header;
  std::vector<bool> header_quoted;
  JINFER_RETURN_NOT_OK(SplitCsvRecord(line, &header, &header_quoted));
  for (auto& h : header) h = std::string(util::Trim(h));
  JINFER_ASSIGN_OR_RETURN(Schema schema,
                          Schema::Make(relation_name, std::move(header)));

  Relation out(std::move(schema));
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    JINFER_RETURN_NOT_OK(SplitCsvRecord(line, &fields, &quoted));
    if (fields.size() != out.num_attributes()) {
      return util::Status::ParseError(util::StrFormat(
          "%s line %zu: expected %zu fields, got %zu",
          relation_name.c_str(), lineno, out.num_attributes(), fields.size()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      // A quoted field is always a string (even a quoted number or "").
      if (quoted[i]) {
        row.emplace_back(fields[i]);
      } else {
        row.push_back(Value::FromCsvField(fields[i]));
      }
    }
    JINFER_RETURN_NOT_OK(out.AppendRow(std::move(row)));
  }
  return out;
}

util::Result<Relation> ReadRelationCsvFile(const std::string& path,
                                           const std::string& relation_name) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::IoError("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadRelationCsvText(buf.str(), relation_name);
}

std::string WriteRelationCsv(const Relation& relation) {
  std::ostringstream os;
  const auto& names = relation.schema().attribute_names();
  for (size_t i = 0; i < names.size(); ++i) {
    os << (i ? "," : "") << EscapeCsvField(names[i]);
  }
  os << '\n';
  for (const auto& row : relation.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      if (row[i].is_string()) {
        os << EscapeCsvField(row[i].AsString());
      } else {
        os << row[i].ToString();
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace rel
}  // namespace jinfer
