#include "relational/csv.h"

#include <fstream>
#include <sstream>

#include "relational/column_table.h"
#include "util/string_util.h"

namespace jinfer {
namespace rel {

namespace {

struct CsvField {
  std::string_view text;
  bool quoted = false;
};

/// Scans one CSV record into fields — THE quote state machine, shared by
/// the header path and the streaming ingest path (one machine, so a field
/// count and the parsed fields can never disagree). Plain fields are
/// zero-copy slices of `line`; quoted fields unescape into `scratch`,
/// which is reserved to |line| up front so the returned views never move
/// (unescaping only shrinks). Quote semantics, unchanged from the seed: a
/// quote opens a quoted run only while the field is still empty, "" inside
/// a quoted run is an escaped quote, and text after a closing quote is
/// taken literally.
util::Status ScanCsvRecord(std::string_view line, std::string& scratch,
                           std::vector<CsvField>* fields) {
  fields->clear();
  scratch.clear();
  scratch.reserve(line.size());
  size_t pos = 0;
  while (true) {
    CsvField field;
    if (pos < line.size() && line[pos] == '"') {
      const size_t start = scratch.size();
      field.quoted = true;
      bool in_quotes = true;
      size_t i = pos + 1;
      for (; i < line.size(); ++i) {
        char c = line[i];
        if (in_quotes) {
          if (c == '"') {
            if (i + 1 < line.size() && line[i + 1] == '"') {
              scratch += '"';
              ++i;
            } else {
              in_quotes = false;
            }
          } else {
            scratch += c;
          }
        } else if (c == '"' && scratch.size() == start) {
          in_quotes = true;
        } else if (c == ',') {
          break;
        } else {
          scratch += c;
        }
      }
      if (in_quotes) {
        return util::Status::ParseError("unterminated quote in CSV record: " +
                                        std::string(line));
      }
      field.text = std::string_view(scratch).substr(start);
      pos = i;  // At the separating comma or end of record.
    } else {
      size_t comma = line.find(',', pos);
      size_t end = comma == std::string_view::npos ? line.size() : comma;
      field.text = line.substr(pos, end - pos);
      pos = end;
    }
    fields->push_back(field);
    if (pos >= line.size()) break;
    ++pos;  // Skip the comma; an immediately following end of record means
            // one more (empty) field, which the next loop turn emits.
  }
  return util::Status::OK();
}

/// Appends one scanned field straight into the cursor column, with no
/// Value temporary. A quoted field is always a string (even a quoted
/// number or ""); unquoted fields go through the one shared classifier
/// (ClassifyCsvField, the same rule Value::FromCsvField applies).
void AppendTypedField(ColumnTable& t, std::string_view field, bool quoted) {
  if (quoted) {
    t.AppendString(field);
    return;
  }
  CsvScalar scalar = ClassifyCsvField(field);
  switch (scalar.type) {
    case ValueType::kNull:
      t.AppendNull();
      return;
    case ValueType::kInt:
      t.AppendInt(scalar.int_value);
      return;
    case ValueType::kDouble:
      t.AppendDouble(scalar.double_value);
      return;
    case ValueType::kString:
      break;
  }
  t.AppendString(field);
}

std::string EscapeCsvField(std::string_view s) {
  if (s.find_first_of(",\"\n") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

util::Result<Relation> ReadRelationCsvText(const std::string& text,
                                           const std::string& relation_name) {
  // Single pass over the buffer: slice records at newlines, scan each once,
  // and stream the fields straight into the relation's columns. The arity
  // check runs on the scanned record before any cell is appended, so a
  // malformed line never leaves a partial row behind.
  size_t cursor = 0;
  auto next_line = [&](std::string_view* line) -> bool {
    if (cursor >= text.size()) return false;
    size_t nl = text.find('\n', cursor);
    size_t end = nl == std::string::npos ? text.size() : nl;
    *line = std::string_view(text).substr(cursor, end - cursor);
    cursor = end + 1;
    if (!line->empty() && line->back() == '\r') line->remove_suffix(1);
    return true;
  };

  std::string_view line;
  if (!next_line(&line)) {
    return util::Status::ParseError("empty CSV input for relation " +
                                    relation_name);
  }

  std::vector<CsvField> fields;
  std::string scratch;
  JINFER_RETURN_NOT_OK(ScanCsvRecord(line, scratch, &fields));
  std::vector<std::string> header;
  header.reserve(fields.size());
  for (const CsvField& f : fields) {
    header.emplace_back(util::Trim(f.text));
  }
  JINFER_ASSIGN_OR_RETURN(Schema schema,
                          Schema::Make(relation_name, std::move(header)));

  Relation out(std::move(schema));
  ColumnTable& table = out.mutable_columns();
  size_t lineno = 1;
  while (next_line(&line)) {
    ++lineno;
    if (line.empty()) continue;
    JINFER_RETURN_NOT_OK(ScanCsvRecord(line, scratch, &fields));
    if (fields.size() != out.num_attributes()) {
      return util::Status::ParseError(util::StrFormat(
          "%s line %zu: expected %zu fields, got %zu",
          relation_name.c_str(), lineno, out.num_attributes(),
          fields.size()));
    }
    for (const CsvField& f : fields) AppendTypedField(table, f.text, f.quoted);
    table.FinishRow();
  }
  return out;
}

util::Result<Relation> ReadRelationCsvFile(const std::string& path,
                                           const std::string& relation_name) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::IoError("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadRelationCsvText(buf.str(), relation_name);
}

std::string WriteRelationCsv(const Relation& relation) {
  std::ostringstream os;
  const auto& names = relation.schema().attribute_names();
  for (size_t i = 0; i < names.size(); ++i) {
    os << (i ? "," : "") << EscapeCsvField(names[i]);
  }
  os << '\n';
  const ColumnTable& t = relation.columns();
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    for (size_t c = 0; c < relation.num_attributes(); ++c) {
      if (c) os << ',';
      CellView cell = t.cell(r, c);
      if (cell.type == ValueType::kString) {
        os << EscapeCsvField(cell.str);
      } else if (!cell.is_null()) {
        os << cell.ToValue().ToString();
      }  // NULL renders as the empty field.
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace rel
}  // namespace jinfer
