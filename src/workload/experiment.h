// Experiment harness: runs (instance, goal, strategy) grids and aggregates
// the paper's two measures — number of interactions and inference time —
// validating on every run that the inferred predicate is instance-
// equivalent to the goal (§3.3), so a bench that prints numbers has also
// proven correctness.
//
// Sessions are driven through the runtime::Session step API (the same
// surface the concurrent runtime serves), with a GoalOracle answering
// inline — so the harness measures exactly what production sessions run.

#ifndef JINFER_WORKLOAD_EXPERIMENT_H_
#define JINFER_WORKLOAD_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/inference.h"
#include "core/signature_index.h"
#include "core/strategy.h"
#include "util/result.h"

namespace jinfer {
namespace workload {

struct StrategyStats {
  core::StrategyKind kind = core::StrategyKind::kRandom;
  double mean_interactions = 0;
  double mean_seconds = 0;
  size_t runs = 0;
};

/// Runs `runs` inference sessions for one goal under one strategy (only RND
/// varies across runs; deterministic strategies still honor `runs` so time
/// averaging is uniform). Fails if any session errors or produces a
/// predicate not instance-equivalent to the goal.
util::Result<StrategyStats> MeasureStrategy(const core::SignatureIndex& index,
                                            const core::JoinPredicate& goal,
                                            core::StrategyKind kind,
                                            size_t runs, uint64_t seed);

/// Pools MeasureStrategy over a set of goals (the synthetic experiments
/// average over all goals of a size group).
util::Result<StrategyStats> MeasureStrategyOverGoals(
    const core::SignatureIndex& index,
    const std::vector<core::JoinPredicate>& goals, core::StrategyKind kind,
    size_t runs_per_goal, uint64_t seed);

/// Index of the strategy with the fewest mean interactions, ties broken by
/// mean time (the paper's "best strategy" column in Table 1).
size_t BestStrategyIndex(const std::vector<StrategyStats>& stats);

/// One goal-size group: all sampled goals with |θ| == size. Supports
/// structured bindings (`for (const auto& [size, goals] : buckets)`), which
/// is how every caller consumes the grouping.
struct GoalSizeBucket {
  size_t size = 0;
  std::vector<core::JoinPredicate> goals;

  friend bool operator==(const GoalSizeBucket& a, const GoalSizeBucket& b) {
    return a.size == b.size && a.goals == b.goals;
  }
};

/// Groups the instance's non-nullable predicates by |θ| and uniformly
/// samples at most `max_per_size` goals from each group — the synthetic
/// experiments' goal sets. (The paper uses *all* non-nullable predicates;
/// sampling bounds bench time and is reported in the bench output.)
/// Buckets come back sorted ascending by size in a flat vector — there are
/// only a handful of distinct sizes, so a sorted vector beats the
/// red-black-tree node churn of the old std::map grouping in the
/// experiment driver.
util::Result<std::vector<GoalSizeBucket>> SampleGoalsBySize(
    const core::SignatureIndex& index, size_t max_per_size, uint64_t seed);

}  // namespace workload
}  // namespace jinfer

#endif  // JINFER_WORKLOAD_EXPERIMENT_H_
