#include "workload/experiment.h"

#include <algorithm>

#include "core/lattice.h"
#include "core/oracle.h"
#include "runtime/session.h"
#include "util/string_util.h"

namespace jinfer {
namespace workload {

util::Result<StrategyStats> MeasureStrategy(const core::SignatureIndex& index,
                                            const core::JoinPredicate& goal,
                                            core::StrategyKind kind,
                                            size_t runs, uint64_t seed) {
  if (runs == 0) {
    return util::Status::InvalidArgument("runs must be positive");
  }
  StrategyStats stats;
  stats.kind = kind;
  stats.runs = runs;
  runtime::SessionOptions options;
  options.record_trace = false;

  for (size_t run = 0; run < runs; ++run) {
    // Step-driven session (same loop shape as the production runtime); the
    // oracle answers inline, so this measures pure inference time.
    runtime::Session session(index, core::MakeStrategy(kind, seed + run),
                             options);
    core::GoalOracle oracle(goal);
    while (std::optional<core::ClassId> question = session.NextQuestion()) {
      JINFER_RETURN_NOT_OK(session.Answer(oracle.LabelClass(index, *question)));
    }
    core::InferenceResult result = session.Result();
    if (!index.EquivalentOnInstance(result.predicate, goal)) {
      return util::Status::FailedPrecondition(util::StrFormat(
          "strategy %s inferred a predicate not instance-equivalent to the "
          "goal %s",
          core::StrategyKindName(kind),
          index.omega().Format(goal).c_str()));
    }
    stats.mean_interactions += static_cast<double>(result.num_interactions);
    stats.mean_seconds += result.seconds;
  }
  stats.mean_interactions /= static_cast<double>(runs);
  stats.mean_seconds /= static_cast<double>(runs);
  return stats;
}

util::Result<StrategyStats> MeasureStrategyOverGoals(
    const core::SignatureIndex& index,
    const std::vector<core::JoinPredicate>& goals, core::StrategyKind kind,
    size_t runs_per_goal, uint64_t seed) {
  if (goals.empty()) {
    return util::Status::InvalidArgument("goal set must be non-empty");
  }
  StrategyStats pooled;
  pooled.kind = kind;
  for (size_t g = 0; g < goals.size(); ++g) {
    JINFER_ASSIGN_OR_RETURN(
        StrategyStats one,
        MeasureStrategy(index, goals[g], kind, runs_per_goal,
                        seed + g * 7919));
    pooled.mean_interactions += one.mean_interactions;
    pooled.mean_seconds += one.mean_seconds;
    pooled.runs += one.runs;
  }
  pooled.mean_interactions /= static_cast<double>(goals.size());
  pooled.mean_seconds /= static_cast<double>(goals.size());
  return pooled;
}

size_t BestStrategyIndex(const std::vector<StrategyStats>& stats) {
  JINFER_CHECK(!stats.empty(), "no strategies measured");
  size_t best = 0;
  for (size_t i = 1; i < stats.size(); ++i) {
    if (stats[i].mean_interactions < stats[best].mean_interactions ||
        (stats[i].mean_interactions == stats[best].mean_interactions &&
         stats[i].mean_seconds < stats[best].mean_seconds)) {
      best = i;
    }
  }
  return best;
}

util::Result<std::vector<GoalSizeBucket>> SampleGoalsBySize(
    const core::SignatureIndex& index, size_t max_per_size, uint64_t seed) {
  JINFER_ASSIGN_OR_RETURN(std::vector<core::JoinPredicate> all,
                          core::NonNullablePredicates(index));
  // Flat sorted buckets: distinct sizes number at most |Ω| + 1, so a
  // linear scan + sorted insert is cheaper than a std::map and keeps both
  // the bucket order (ascending size) and the per-bucket goal order
  // identical to the old map grouping — the sampling RNG below consumes
  // draws in the same order, so sampled goal sets are unchanged.
  std::vector<GoalSizeBucket> by_size;
  for (const auto& theta : all) {
    const size_t size = theta.Count();
    auto it = std::find_if(by_size.begin(), by_size.end(),
                           [size](const GoalSizeBucket& b) {
                             return b.size >= size;
                           });
    if (it == by_size.end() || it->size != size) {
      it = by_size.insert(it, GoalSizeBucket{size, {}});
    }
    it->goals.push_back(theta);
  }

  util::Rng rng(seed);
  for (auto& [size, goals] : by_size) {
    if (max_per_size > 0 && goals.size() > max_per_size) {
      // Partial Fisher-Yates: uniform sample without replacement.
      for (size_t i = 0; i < max_per_size; ++i) {
        size_t j = i + static_cast<size_t>(
                           rng.NextBelow(goals.size() - i));
        std::swap(goals[i], goals[j]);
      }
      goals.resize(max_per_size);
    }
  }
  return by_size;
}

}  // namespace workload
}  // namespace jinfer
