// Synthetic dataset generator (§5.2).
//
// A configuration is the paper's quadruple (|attrs(R)|, |attrs(P)|, l, v):
// both relations get l rows; every cell is an integer drawn uniformly from
// {0, ..., v-1}. The paper's six evaluation configurations are provided as
// constants.

#ifndef JINFER_WORKLOAD_SYNTHETIC_H_
#define JINFER_WORKLOAD_SYNTHETIC_H_

#include <string>
#include <vector>

#include "relational/relation.h"
#include "util/result.h"
#include "util/rng.h"

namespace jinfer {
namespace workload {

struct SyntheticConfig {
  size_t num_r_attrs = 0;  ///< |attrs(R)|
  size_t num_p_attrs = 0;  ///< |attrs(P)|
  size_t num_rows = 0;     ///< l — rows per relation
  int64_t num_values = 0;  ///< v — attribute domain {0..v-1}

  /// Paper notation: "(3,3,50,100)".
  std::string ToString() const;
};

/// The six configurations of Figure 7 / Table 1, in the paper's order.
std::vector<SyntheticConfig> PaperSyntheticConfigs();

struct SyntheticInstance {
  rel::Relation r;  ///< R(A1..An)
  rel::Relation p;  ///< P(B1..Bm)
};

/// Generates one instance; deterministic in (config, seed).
util::Result<SyntheticInstance> GenerateSynthetic(const SyntheticConfig& config,
                                                  uint64_t seed);

}  // namespace workload
}  // namespace jinfer

#endif  // JINFER_WORKLOAD_SYNTHETIC_H_
