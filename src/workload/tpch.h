// TPC-H-style data generator (§5.1 substitution — see DESIGN.md).
//
// Emits the six tables the paper's five goal joins touch, with TPC-H's
// schema, key/foreign-key structure, and deliberately overlapping value
// domains: keys, sizes, quantities, priorities, dates and prices share
// integer ranges, and status flags share single-letter vocabularies, so a
// value "15" may be a key, a size, a price or a quantity (§5.1). The
// inference strategies are never told which attributes are keys; evicting
// the coincidental matches is exactly the behaviour under test.
//
// Scale points are row counts chosen so the five Cartesian products keep
// the paper's ordering: |Join1| = |Join2| < |Join3| < |Join5| < |Join4|.

#ifndef JINFER_WORKLOAD_TPCH_H_
#define JINFER_WORKLOAD_TPCH_H_

#include <string>
#include <vector>

#include "relational/relation.h"
#include "util/result.h"

namespace jinfer {
namespace workload {

struct TpchScale {
  std::string name;
  size_t parts = 0;
  size_t suppliers = 0;
  size_t partsupp_per_part = 0;
  size_t customers = 0;
  size_t orders = 0;
  size_t max_lineitems_per_order = 0;
};

/// The two scale points reported in the benches (the paper reports its
/// smallest and largest TPC-H scaling factors; these are our analogues).
TpchScale MiniScaleA();  ///< small: Cartesian products 6.0e4 .. 1.4e6
TpchScale MiniScaleB();  ///< large: Cartesian products 4.0e5 .. 9.0e6

struct TpchDatabase {
  rel::Relation part;      ///< Part(p_partkey, ..., p_comment)         9 attrs
  rel::Relation supplier;  ///< Supplier(s_suppkey, ..., s_comment)     7 attrs
  rel::Relation partsupp;  ///< Partsupp(ps_partkey, ..., ps_comment)   5 attrs
  rel::Relation customer;  ///< Customer(c_custkey, ..., c_comment)     8 attrs
  rel::Relation orders;    ///< Orders(o_orderkey, ..., o_comment)      9 attrs
  rel::Relation lineitem;  ///< Lineitem(l_orderkey, ..., l_comment)   16 attrs
};

/// Generates a database; deterministic in (scale, seed). Foreign keys are
/// honored: every ps_partkey references a part, every l_suppkey one of the
/// suppliers offering that part, etc.
util::Result<TpchDatabase> GenerateTpch(const TpchScale& scale, uint64_t seed);

/// One of the paper's five goal joins (§5.1), described against a database.
struct TpchJoin {
  int number = 0;           ///< 1..5 as in the paper.
  std::string description;  ///< e.g. "Part[Partkey] = Partsupp[Partkey]"
  const rel::Relation* r = nullptr;
  const rel::Relation* p = nullptr;
  /// Key/foreign-key equalities by attribute name (R side, P side).
  std::vector<std::pair<std::string, std::string>> equalities;
};

/// The five goal joins over `db` (which must outlive the result).
std::vector<TpchJoin> PaperTpchJoins(const TpchDatabase& db);

}  // namespace workload
}  // namespace jinfer

#endif  // JINFER_WORKLOAD_TPCH_H_
