#include "workload/tpch.h"

#include "util/rng.h"
#include "util/string_util.h"

namespace jinfer {
namespace workload {

namespace {

const char* kColors[] = {"almond", "azure",  "beige",  "blush",  "chartreuse",
                         "coral",  "forest", "indigo", "maroon", "sienna"};
const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                         "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                              "CAN", "DRUM"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kInstructions[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                        "FOB"};

template <size_t N>
const char* Pick(const char* (&vocab)[N], util::Rng& rng) {
  return vocab[rng.NextBelow(N)];
}

/// A date as the integer YYYYMMDD, uniform over 1992-01-01..1998-08-02
/// (TPC-H's date window). Day-in-month capped at 28 for simplicity.
int64_t RandomDate(util::Rng& rng) {
  int64_t year = rng.NextInRange(1992, 1998);
  int64_t month = rng.NextInRange(1, 12);
  int64_t day = rng.NextInRange(1, 28);
  return year * 10000 + month * 100 + day;
}

/// Shifts a YYYYMMDD date by up to `max_days` days (coarse: only within the
/// month grid, clamping at 28). Good enough for commit/receipt dates.
int64_t ShiftDate(int64_t date, int64_t days, util::Rng&) {
  int64_t day = date % 100 + days;
  int64_t month = (date / 100) % 100;
  int64_t year = date / 10000;
  while (day > 28) {
    day -= 28;
    if (++month > 12) {
      month = 1;
      ++year;
    }
  }
  return year * 10000 + month * 100 + day;
}

/// Opaque short token for comment columns: unlikely to collide, but typed
/// like every other text column.
std::string Token(const char* prefix, util::Rng& rng) {
  return util::StrFormat("%s%06llx",
                         prefix,
                         static_cast<unsigned long long>(rng.Next() & 0xffffff));
}

std::string Phone(util::Rng& rng) {
  return util::StrFormat(
      "%02lld-%03lld-%03lld-%04lld", static_cast<long long>(rng.NextInRange(10, 34)),
      static_cast<long long>(rng.NextInRange(100, 999)),
      static_cast<long long>(rng.NextInRange(100, 999)),
      static_cast<long long>(rng.NextInRange(1000, 9999)));
}

}  // namespace

TpchScale MiniScaleA() {
  return TpchScale{"SF-A", /*parts=*/150, /*suppliers=*/150,
                   /*partsupp_per_part=*/3, /*customers=*/200,
                   /*orders=*/600, /*max_lineitems_per_order=*/4};
}

TpchScale MiniScaleB() {
  return TpchScale{"SF-B", /*parts=*/400, /*suppliers=*/400,
                   /*partsupp_per_part=*/3, /*customers=*/500,
                   /*orders=*/1500, /*max_lineitems_per_order=*/4};
}

// Each AppendRow({...}) below binds the initializer-list overload, which
// dictionary-encodes the cells straight into the relation's columns — the
// braced row never materializes as a stored rel::Row. Key/date/quantity
// columns intern a few thousand distinct ints; the Token/Phone comment
// columns are where the per-column string arenas earn their keep.
util::Result<TpchDatabase> GenerateTpch(const TpchScale& scale,
                                        uint64_t seed) {
  if (scale.parts == 0 || scale.suppliers == 0 ||
      scale.partsupp_per_part == 0 || scale.customers == 0 ||
      scale.orders == 0 || scale.max_lineitems_per_order == 0) {
    return util::Status::InvalidArgument(
        "all TPC-H scale components must be positive");
  }
  util::Rng rng(seed);
  TpchDatabase db;

  // --- Part ---------------------------------------------------------------
  {
    JINFER_ASSIGN_OR_RETURN(
        rel::Schema schema,
        rel::Schema::Make("Part",
                          {"p_partkey", "p_name", "p_mfgr", "p_brand",
                           "p_type", "p_size", "p_container", "p_retailprice",
                           "p_comment"}));
    db.part = rel::Relation(std::move(schema));
    for (size_t i = 1; i <= scale.parts; ++i) {
      int64_t mfgr = rng.NextInRange(1, 5);
      JINFER_RETURN_NOT_OK(db.part.AppendRow({
          static_cast<int64_t>(i),
          util::StrFormat("%s %s", Pick(kColors, rng), Pick(kColors, rng)),
          util::StrFormat("Manufacturer#%lld", static_cast<long long>(mfgr)),
          util::StrFormat("Brand#%lld%lld", static_cast<long long>(mfgr),
                          static_cast<long long>(rng.NextInRange(1, 5))),
          util::StrFormat("%s %s %s", Pick(kTypes1, rng), Pick(kTypes2, rng),
                          Pick(kTypes3, rng)),
          rng.NextInRange(1, 50),                // p_size: collides with keys,
                                                 // quantities, availqty
          util::StrFormat("%s %s", Pick(kContainers1, rng),
                          Pick(kContainers2, rng)),
          rng.NextInRange(901, 2098),            // whole-dollar price
          Token("p", rng),
      }));
    }
  }

  // --- Supplier -----------------------------------------------------------
  {
    JINFER_ASSIGN_OR_RETURN(
        rel::Schema schema,
        rel::Schema::Make("Supplier",
                          {"s_suppkey", "s_name", "s_address", "s_nationkey",
                           "s_phone", "s_acctbal", "s_comment"}));
    db.supplier = rel::Relation(std::move(schema));
    for (size_t i = 1; i <= scale.suppliers; ++i) {
      JINFER_RETURN_NOT_OK(db.supplier.AppendRow({
          static_cast<int64_t>(i),
          util::StrFormat("Supplier#%09zu", i),
          Token("addr", rng),
          rng.NextInRange(0, 24),  // s_nationkey: shared domain with customer
          Phone(rng),
          rng.NextInRange(-999, 9999),
          Token("s", rng),
      }));
    }
  }

  // --- Partsupp -----------------------------------------------------------
  // TPC-H assigns each part its suppliers by a fixed stride so the pairs
  // are distinct; we do the same.
  {
    JINFER_ASSIGN_OR_RETURN(
        rel::Schema schema,
        rel::Schema::Make("Partsupp", {"ps_partkey", "ps_suppkey",
                                       "ps_availqty", "ps_supplycost",
                                       "ps_comment"}));
    db.partsupp = rel::Relation(std::move(schema));
    for (size_t i = 1; i <= scale.parts; ++i) {
      for (size_t k = 0; k < scale.partsupp_per_part; ++k) {
        size_t suppkey =
            (i + k * (scale.suppliers / scale.partsupp_per_part + 1)) %
                scale.suppliers +
            1;
        JINFER_RETURN_NOT_OK(db.partsupp.AppendRow({
            static_cast<int64_t>(i),
            static_cast<int64_t>(suppkey),
            rng.NextInRange(1, 9999),   // availqty: overlaps keys and sizes
            rng.NextInRange(1, 1000),   // supplycost: overlaps keys, prices
            Token("ps", rng),
        }));
      }
    }
  }

  // --- Customer -----------------------------------------------------------
  {
    JINFER_ASSIGN_OR_RETURN(
        rel::Schema schema,
        rel::Schema::Make("Customer",
                          {"c_custkey", "c_name", "c_address", "c_nationkey",
                           "c_phone", "c_acctbal", "c_mktsegment",
                           "c_comment"}));
    db.customer = rel::Relation(std::move(schema));
    for (size_t i = 1; i <= scale.customers; ++i) {
      JINFER_RETURN_NOT_OK(db.customer.AppendRow({
          static_cast<int64_t>(i),
          util::StrFormat("Customer#%09zu", i),
          Token("addr", rng),
          rng.NextInRange(0, 24),
          Phone(rng),
          rng.NextInRange(-999, 9999),  // c_acctbal: overlaps keys
          std::string(Pick(kSegments, rng)),
          Token("c", rng),
      }));
    }
  }

  // --- Orders -------------------------------------------------------------
  std::vector<int64_t> order_dates(scale.orders + 1);
  {
    JINFER_ASSIGN_OR_RETURN(
        rel::Schema schema,
        rel::Schema::Make("Orders",
                          {"o_orderkey", "o_custkey", "o_orderstatus",
                           "o_totalprice", "o_orderdate", "o_orderpriority",
                           "o_clerk", "o_shippriority", "o_comment"}));
    db.orders = rel::Relation(std::move(schema));
    const char* statuses[] = {"F", "O", "P"};
    for (size_t i = 1; i <= scale.orders; ++i) {
      order_dates[i] = RandomDate(rng);
      JINFER_RETURN_NOT_OK(db.orders.AppendRow({
          static_cast<int64_t>(i),
          rng.NextInRange(1, static_cast<int64_t>(scale.customers)),
          std::string(statuses[rng.NextBelow(3)]),  // shares "F","O" with
                                                    // l_linestatus
          rng.NextInRange(1000, 30000),
          order_dates[i],  // shares the YYYYMMDD domain with lineitem dates
          std::string(Pick(kPriorities, rng)),
          util::StrFormat("Clerk#%09lld",
                          static_cast<long long>(rng.NextInRange(1, 20))),
          int64_t{0},  // o_shippriority is constant 0 in TPC-H
          Token("o", rng),
      }));
    }
  }

  // --- Lineitem -----------------------------------------------------------
  {
    JINFER_ASSIGN_OR_RETURN(
        rel::Schema schema,
        rel::Schema::Make(
            "Lineitem",
            {"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
             "l_quantity", "l_extendedprice", "l_discount", "l_tax",
             "l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate",
             "l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment"}));
    db.lineitem = rel::Relation(std::move(schema));
    const char* returnflags[] = {"R", "A", "N"};
    const char* linestatuses[] = {"O", "F"};
    for (size_t o = 1; o <= scale.orders; ++o) {
      int64_t lines = rng.NextInRange(
          1, static_cast<int64_t>(scale.max_lineitems_per_order));
      for (int64_t ln = 1; ln <= lines; ++ln) {
        // FK chain: the line's (partkey, suppkey) is one of the part's
        // actual Partsupp offerings.
        int64_t partkey =
            rng.NextInRange(1, static_cast<int64_t>(scale.parts));
        size_t k = rng.NextBelow(scale.partsupp_per_part);
        int64_t suppkey = static_cast<int64_t>(
            (static_cast<size_t>(partkey) +
             k * (scale.suppliers / scale.partsupp_per_part + 1)) %
                scale.suppliers +
            1);
        int64_t shipdate = ShiftDate(order_dates[o],
                                     rng.NextInRange(1, 121), rng);
        JINFER_RETURN_NOT_OK(db.lineitem.AppendRow({
            static_cast<int64_t>(o),
            partkey,
            suppkey,
            ln,                       // l_linenumber: tiny ints, collide with
                                      // keys/sizes/priorities
            rng.NextInRange(1, 50),   // l_quantity: same domain as p_size
            rng.NextInRange(901, 104400),
            rng.NextInRange(0, 10),   // l_discount (%): contains 0 —
                                      // collides with o_shippriority
            rng.NextInRange(0, 8),
            std::string(returnflags[rng.NextBelow(3)]),
            std::string(linestatuses[rng.NextBelow(2)]),
            shipdate,
            ShiftDate(shipdate, rng.NextInRange(1, 30), rng),
            ShiftDate(shipdate, rng.NextInRange(1, 30), rng),
            std::string(Pick(kInstructions, rng)),
            std::string(Pick(kModes, rng)),
            Token("l", rng),
        }));
      }
    }
  }

  return db;
}

std::vector<TpchJoin> PaperTpchJoins(const TpchDatabase& db) {
  std::vector<TpchJoin> joins;
  joins.push_back(TpchJoin{1, "Part[Partkey] = Partsupp[Partkey]", &db.part,
                           &db.partsupp,
                           {{"p_partkey", "ps_partkey"}}});
  joins.push_back(TpchJoin{2, "Supplier[Suppkey] = Partsupp[Suppkey]",
                           &db.supplier,
                           &db.partsupp,
                           {{"s_suppkey", "ps_suppkey"}}});
  joins.push_back(TpchJoin{3, "Customer[Custkey] = Orders[Custkey]",
                           &db.customer,
                           &db.orders,
                           {{"c_custkey", "o_custkey"}}});
  joins.push_back(TpchJoin{4, "Orders[Orderkey] = Lineitem[Orderkey]",
                           &db.orders,
                           &db.lineitem,
                           {{"o_orderkey", "l_orderkey"}}});
  joins.push_back(TpchJoin{
      5,
      "Partsupp[Partkey] = Lineitem[Partkey] AND "
      "Partsupp[Suppkey] = Lineitem[Suppkey]",
      &db.partsupp,
      &db.lineitem,
      {{"ps_partkey", "l_partkey"}, {"ps_suppkey", "l_suppkey"}}});
  return joins;
}

}  // namespace workload
}  // namespace jinfer
