#include "workload/synthetic.h"

#include "util/string_util.h"

namespace jinfer {
namespace workload {

std::string SyntheticConfig::ToString() const {
  return util::StrFormat("(%zu,%zu,%zu,%lld)", num_r_attrs, num_p_attrs,
                         num_rows, static_cast<long long>(num_values));
}

std::vector<SyntheticConfig> PaperSyntheticConfigs() {
  return {
      {3, 3, 100, 100}, {3, 3, 50, 100}, {3, 4, 50, 100},
      {2, 5, 50, 100},  {2, 4, 50, 50},  {2, 4, 50, 100},
  };
}

namespace {

/// Streams cells straight into the relation's columns. The cell domain is
/// the dense integer range {0..v-1}, so each column's dictionary is
/// pre-seeded with code == value and every cell append is a bare code push —
/// no Value temporaries, no hashing — which is what makes Fig. 7-scale
/// (10⁶-row) instances ingestible. Domains too large to pre-seed fall back
/// to per-cell interning; either way the drawn rng stream (and therefore
/// the generated instance) is identical.
util::Result<rel::Relation> GenerateRelation(const std::string& name,
                                             const char* attr_prefix,
                                             size_t num_attrs, size_t num_rows,
                                             int64_t num_values,
                                             util::Rng& rng) {
  std::vector<std::string> attrs;
  for (size_t i = 1; i <= num_attrs; ++i) {
    attrs.push_back(util::StrFormat("%s%zu", attr_prefix, i));
  }
  JINFER_ASSIGN_OR_RETURN(rel::Schema schema,
                          rel::Schema::Make(name, std::move(attrs)));
  rel::Relation out(std::move(schema));
  rel::ColumnTable& table = out.mutable_columns();
  // Pre-seeding costs one intern per domain value, so it only pays when
  // the domain is no larger than the cell count it amortizes over (a
  // 10-row relation over a 10⁶-value domain must not intern 3M entries).
  const int64_t num_cells =
      static_cast<int64_t>(num_rows) * static_cast<int64_t>(num_attrs);
  const bool dense =
      num_values <= (int64_t{1} << 20) && num_values <= num_cells;
  if (dense) {
    for (size_t c = 0; c < num_attrs; ++c) {
      table.dictionary(c).SeedDenseIntDomain(num_values);
    }
  }
  for (size_t r = 0; r < num_rows; ++r) {
    for (size_t c = 0; c < num_attrs; ++c) {
      uint64_t draw = rng.NextBelow(static_cast<uint64_t>(num_values));
      if (dense) {
        table.AppendCode(static_cast<uint32_t>(draw));
      } else {
        table.AppendInt(static_cast<int64_t>(draw));
      }
    }
    table.FinishRow();
  }
  return out;
}

}  // namespace

util::Result<SyntheticInstance> GenerateSynthetic(
    const SyntheticConfig& config, uint64_t seed) {
  if (config.num_r_attrs == 0 || config.num_p_attrs == 0 ||
      config.num_rows == 0 || config.num_values <= 0) {
    return util::Status::InvalidArgument(
        "synthetic configuration components must be positive");
  }
  util::Rng rng(seed);
  JINFER_ASSIGN_OR_RETURN(
      rel::Relation r,
      GenerateRelation("R", "A", config.num_r_attrs, config.num_rows,
                       config.num_values, rng));
  JINFER_ASSIGN_OR_RETURN(
      rel::Relation p,
      GenerateRelation("P", "B", config.num_p_attrs, config.num_rows,
                       config.num_values, rng));
  return SyntheticInstance{std::move(r), std::move(p)};
}

}  // namespace workload
}  // namespace jinfer
