#include "workload/synthetic.h"

#include "util/string_util.h"

namespace jinfer {
namespace workload {

std::string SyntheticConfig::ToString() const {
  return util::StrFormat("(%zu,%zu,%zu,%lld)", num_r_attrs, num_p_attrs,
                         num_rows, static_cast<long long>(num_values));
}

std::vector<SyntheticConfig> PaperSyntheticConfigs() {
  return {
      {3, 3, 100, 100}, {3, 3, 50, 100}, {3, 4, 50, 100},
      {2, 5, 50, 100},  {2, 4, 50, 50},  {2, 4, 50, 100},
  };
}

namespace {

util::Result<rel::Relation> GenerateRelation(const std::string& name,
                                             const char* attr_prefix,
                                             size_t num_attrs, size_t num_rows,
                                             int64_t num_values,
                                             util::Rng& rng) {
  std::vector<std::string> attrs;
  for (size_t i = 1; i <= num_attrs; ++i) {
    attrs.push_back(util::StrFormat("%s%zu", attr_prefix, i));
  }
  JINFER_ASSIGN_OR_RETURN(rel::Schema schema,
                          rel::Schema::Make(name, std::move(attrs)));
  rel::Relation out(std::move(schema));
  for (size_t r = 0; r < num_rows; ++r) {
    rel::Row row;
    row.reserve(num_attrs);
    for (size_t c = 0; c < num_attrs; ++c) {
      row.emplace_back(static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(num_values))));
    }
    JINFER_RETURN_NOT_OK(out.AppendRow(std::move(row)));
  }
  return out;
}

}  // namespace

util::Result<SyntheticInstance> GenerateSynthetic(
    const SyntheticConfig& config, uint64_t seed) {
  if (config.num_r_attrs == 0 || config.num_p_attrs == 0 ||
      config.num_rows == 0 || config.num_values <= 0) {
    return util::Status::InvalidArgument(
        "synthetic configuration components must be positive");
  }
  util::Rng rng(seed);
  JINFER_ASSIGN_OR_RETURN(
      rel::Relation r,
      GenerateRelation("R", "A", config.num_r_attrs, config.num_rows,
                       config.num_values, rng));
  JINFER_ASSIGN_OR_RETURN(
      rel::Relation p,
      GenerateRelation("P", "B", config.num_p_attrs, config.num_rows,
                       config.num_values, rng));
  return SyntheticInstance{std::move(r), std::move(p)};
}

}  // namespace workload
}  // namespace jinfer
