#include "workload/crowd.h"

namespace jinfer {
namespace workload {

CrowdOracle::CrowdOracle(core::JoinPredicate goal, const CrowdConfig& config)
    : goal_(goal), config_(config), rng_(config.seed) {
  JINFER_CHECK(config.num_workers > 0, "need at least one worker");
  JINFER_CHECK(config.error_rate >= 0 && config.error_rate <= 1,
               "error rate %f out of [0,1]", config.error_rate);
}

core::Label CrowdOracle::LabelClass(const core::SignatureIndex& index,
                                    core::ClassId cls) {
  core::Label truth = goal_.IsSubsetOf(index.cls(cls).signature)
                          ? core::Label::kPositive
                          : core::Label::kNegative;
  size_t positive_votes = 0;
  for (size_t w = 0; w < config_.num_workers; ++w) {
    core::Label vote = truth;
    if (rng_.NextBool(config_.error_rate)) {
      vote = truth == core::Label::kPositive ? core::Label::kNegative
                                             : core::Label::kPositive;
    }
    if (vote == core::Label::kPositive) ++positive_votes;
    ++votes_purchased_;
  }
  core::Label majority = 2 * positive_votes >= config_.num_workers
                             ? core::Label::kPositive
                             : core::Label::kNegative;
  if (majority != truth) ++majority_errors_;
  return majority;
}

util::Result<CrowdTrialResult> RunCrowdTrial(
    const core::SignatureIndex& index, const core::JoinPredicate& goal,
    core::StrategyKind kind, const CrowdConfig& config) {
  auto strategy = core::MakeStrategy(kind, config.seed ^ 0xc0ffee);
  CrowdOracle oracle(goal, config);
  core::InferenceOptions options;
  options.record_trace = false;

  CrowdTrialResult trial;
  auto result = core::RunInference(index, *strategy, oracle, options);
  if (!result.ok()) {
    // A noisy crowd can label an already-certain tuple inconsistently only
    // through a custom strategy; with the bundled informative-only
    // strategies this branch is unreachable, but a caller plugging in a
    // custom strategy still gets a well-formed "not recovered" trial.
    if (result.status().IsInconsistentSample()) {
      trial.recovered = false;
      trial.votes_purchased = oracle.votes_purchased();
      trial.majority_errors = oracle.majority_errors();
      return trial;
    }
    return result.status();
  }
  trial.recovered = index.EquivalentOnInstance(result->predicate, goal);
  trial.interactions = result->num_interactions;
  trial.votes_purchased = oracle.votes_purchased();
  trial.majority_errors = oracle.majority_errors();
  return trial;
}

util::Result<CrowdSweepPoint> MeasureCrowdPoint(
    const core::SignatureIndex& index, const core::JoinPredicate& goal,
    core::StrategyKind kind, size_t num_workers, double error_rate,
    size_t trials, uint64_t seed) {
  if (trials == 0) {
    return util::Status::InvalidArgument("trials must be positive");
  }
  CrowdSweepPoint point;
  point.num_workers = num_workers;
  point.error_rate = error_rate;
  for (size_t t = 0; t < trials; ++t) {
    CrowdConfig config;
    config.num_workers = num_workers;
    config.error_rate = error_rate;
    config.seed = seed + t * 6151;
    JINFER_ASSIGN_OR_RETURN(CrowdTrialResult trial,
                            RunCrowdTrial(index, goal, kind, config));
    point.recovery_rate += trial.recovered ? 1.0 : 0.0;
    point.mean_interactions += static_cast<double>(trial.interactions);
    point.mean_votes += static_cast<double>(trial.votes_purchased);
  }
  point.recovery_rate /= static_cast<double>(trials);
  point.mean_interactions /= static_cast<double>(trials);
  point.mean_votes /= static_cast<double>(trials);
  return point;
}

}  // namespace workload
}  // namespace jinfer
