// Crowdsourced labeling (§1 and §7): the paper motivates join inference by
// crowdsourcing scenarios, where each membership question is answered by
// paid, *noisy* workers and minimizing interactions minimizes cost.
//
// This module simulates that deployment: a CrowdOracle aggregates k
// independent workers (each a goal-following labeler with its own error
// rate) by majority vote, tracking the number of votes purchased. The
// inference engine is unchanged — the oracle abstraction absorbs the
// crowd. CrowdTrial measures the end-to-end effect of noise: whether the
// inferred predicate is still instance-equivalent to the goal, and what
// the session cost.
//
// A design consequence documented in core/inference.h applies here with
// force: lies on informative tuples are *individually consistent*, so a
// noisy crowd silently redirects the inference instead of failing it —
// redundancy (more workers), not the consistency check, is what buys
// accuracy back.

#ifndef JINFER_WORKLOAD_CROWD_H_
#define JINFER_WORKLOAD_CROWD_H_

#include <cstdint>

#include "core/inference.h"
#include "core/oracle.h"
#include "util/result.h"
#include "util/rng.h"

namespace jinfer {
namespace workload {

struct CrowdConfig {
  size_t num_workers = 3;      ///< Votes per question (odd ⇒ no ties).
  double error_rate = 0.1;     ///< Per-worker independent flip probability.
  uint64_t seed = 0;           ///< Seeds all workers deterministically.
};

/// Majority vote over `num_workers` simulated workers, each following the
/// goal predicate but flipping each answer independently with
/// `error_rate`. Ties (even worker counts) resolve positive.
class CrowdOracle : public core::Oracle {
 public:
  CrowdOracle(core::JoinPredicate goal, const CrowdConfig& config);

  core::Label LabelClass(const core::SignatureIndex& index,
                         core::ClassId cls) override;

  /// Total worker answers purchased so far (questions × workers).
  uint64_t votes_purchased() const { return votes_purchased_; }

  /// Questions whose majority answer disagreed with the true label.
  uint64_t majority_errors() const { return majority_errors_; }

 private:
  core::JoinPredicate goal_;
  CrowdConfig config_;
  util::Rng rng_;
  uint64_t votes_purchased_ = 0;
  uint64_t majority_errors_ = 0;
};

struct CrowdTrialResult {
  bool recovered = false;  ///< Inferred predicate instance-equivalent?
  size_t interactions = 0;
  uint64_t votes_purchased = 0;
  uint64_t majority_errors = 0;
};

/// Runs one full inference session against a crowd.
util::Result<CrowdTrialResult> RunCrowdTrial(
    const core::SignatureIndex& index, const core::JoinPredicate& goal,
    core::StrategyKind kind, const CrowdConfig& config);

struct CrowdSweepPoint {
  size_t num_workers = 0;
  double error_rate = 0;
  double recovery_rate = 0;   ///< Fraction of trials that recovered θG.
  double mean_interactions = 0;
  double mean_votes = 0;
};

/// Recovery rate and cost across `trials` sessions at one (workers, error)
/// setting.
util::Result<CrowdSweepPoint> MeasureCrowdPoint(
    const core::SignatureIndex& index, const core::JoinPredicate& goal,
    core::StrategyKind kind, size_t num_workers, double error_rate,
    size_t trials, uint64_t seed);

}  // namespace workload
}  // namespace jinfer

#endif  // JINFER_WORKLOAD_CROWD_H_
