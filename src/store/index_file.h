// Index file format: one flat, relocatable, little-endian binary file
// holding a serialized core::SignatureIndex — the RDF-3X-style on-disk
// layout (flat sections, offsets in a fixed header, cast-in-place records)
// that lets the loader adapt a mapped file without copying the large
// arrays. See DESIGN.md §8 for the layout diagram and the determinism
// argument.
//
// Layout (all offsets from byte 0 of the file):
//
//   [ IndexFileHeader ]          fixed-size, magic/version/byte-order,
//                                instance fingerprint, counts, and a
//                                section directory {offset, bytes} × 4
//   [ names section ]            u32-length-prefixed strings: R relation
//                                name, R attribute names, P relation name,
//                                P attribute names (counts in the header)
//   [ classes section ]          num_classes × SignatureClass records,
//                                layout pinned by the static_asserts below
//                                (signature words, count, representatives,
//                                maximality flag; padding written as zero)
//   [ r_codes section ]          num_r_rows × num_r_attrs uint32, row-major
//   [ p_codes section ]          num_p_rows × num_p_attrs uint32, row-major
//   [ IndexFileFooter ]          Checksum64 of every byte before the
//                                footer, and the magic again
//
// Every section offset is 64-byte aligned (pages are, so mapped section
// pointers are too). Serialization is deterministic: serializing the same
// index twice yields byte-identical files, so content-addressed file names
// (IndexStore) never alias distinct bytes.
//
// Validation is pure over a byte span — no I/O — so the corruption tests
// exercise every rejection path without a file system, and the mmap loader
// (mapped_index.h) shares exactly the code the tests cover.

#ifndef JINFER_STORE_INDEX_FILE_H_
#define JINFER_STORE_INDEX_FILE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "core/signature_index.h"
#include "store/fingerprint.h"
#include "util/result.h"

namespace jinfer {
namespace store {

inline constexpr uint32_t kIndexFileMagic = 0x5844494a;  // "JIDX" on LE.
inline constexpr uint32_t kIndexFileVersion = 1;
/// Written as the native byte order; a loader seeing it byte-swapped is on
/// a foreign-endian platform and must refuse (zero-copy cannot swap).
inline constexpr uint32_t kByteOrderMarker = 0x01020304;
inline constexpr size_t kSectionAlignment = 64;

enum SectionId : uint32_t {
  kSectionNames = 0,
  kSectionClasses = 1,
  kSectionRCodes = 2,
  kSectionPCodes = 3,
  kNumSections = 4,
};

struct SectionExtent {
  uint64_t offset = 0;
  uint64_t bytes = 0;
};

struct IndexFileHeader {
  uint32_t magic = kIndexFileMagic;
  uint32_t version = kIndexFileVersion;
  uint32_t byte_order = kByteOrderMarker;
  uint32_t flags = 0;  ///< bit 0: signature-class compression was on.
  uint64_t fingerprint_hi = 0;
  uint64_t fingerprint_lo = 0;
  uint64_t file_bytes = 0;  ///< Total file size including the footer.
  uint64_t num_tuples = 0;
  uint64_t num_classes = 0;
  uint32_t num_r_attrs = 0;
  uint32_t num_p_attrs = 0;
  uint64_t num_r_rows = 0;
  uint64_t num_p_rows = 0;
  SectionExtent sections[kNumSections];
};

struct IndexFileFooter {
  uint64_t checksum = 0;  ///< Checksum64 of bytes [0, file_bytes - 16).
  uint32_t magic = kIndexFileMagic;
  uint32_t reserved = 0;
};

inline constexpr uint32_t kFlagCompressed = 1u << 0;

// The classes section is a cast-in-place array of core::SignatureClass, so
// its layout is part of the format: any change to the struct is a format
// version bump. These asserts make that contract fail loudly at compile
// time instead of corrupting files quietly.
static_assert(std::is_trivially_copyable_v<core::SignatureClass>);
static_assert(std::is_standard_layout_v<core::SignatureClass>);
static_assert(sizeof(core::JoinPredicate) == 32);
static_assert(sizeof(core::SignatureClass) == 56);
static_assert(offsetof(core::SignatureClass, signature) == 0);
static_assert(offsetof(core::SignatureClass, count) == 32);
static_assert(offsetof(core::SignatureClass, rep_r) == 40);
static_assert(offsetof(core::SignatureClass, rep_p) == 44);
static_assert(offsetof(core::SignatureClass, maximal) == 48);
static_assert(std::is_trivially_copyable_v<IndexFileHeader>);
static_assert(std::is_trivially_copyable_v<IndexFileFooter>);
static_assert(sizeof(IndexFileHeader) == 144);
static_assert(sizeof(IndexFileFooter) == 16);

/// Everything a validated file exposes, as views into the original bytes
/// (the spans alias `bytes`; the decoded names are copies — they are tiny).
struct IndexFileView {
  const IndexFileHeader* header = nullptr;
  InstanceFingerprint fingerprint;
  bool compressed = false;
  std::string r_relation;
  std::string p_relation;
  std::vector<std::string> r_attrs;
  std::vector<std::string> p_attrs;
  std::span<const core::SignatureClass> classes;
  std::span<const uint32_t> r_codes;
  std::span<const uint32_t> p_codes;
};

/// Serializes `index` into the format above. Deterministic: struct padding
/// is explicitly zeroed before fields are copied in.
std::vector<uint8_t> SerializeIndexFile(const core::SignatureIndex& index,
                                        const InstanceFingerprint& fingerprint);

/// Validates a complete file image and returns views into it. Rejects —
/// with a ParseError naming the offending field — truncation, bad magic,
/// unsupported version, foreign byte order, out-of-bounds / overlapping /
/// misaligned sections, count mismatches, malformed names and checksum
/// failures. Never reads outside `bytes`.
util::Result<IndexFileView> ValidateIndexFile(std::span<const uint8_t> bytes);

}  // namespace store
}  // namespace jinfer

#endif  // JINFER_STORE_INDEX_FILE_H_
